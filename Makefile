GO ?= go

.PHONY: all build vet test race race-check fuzz-short cover bench bench-scale scale-smoke bench-http bench-predict bench-predict-full recovery-smoke telemetry-smoke chaos trace-demo lint check

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The metrics subsystem is lock-light by design; the race target is the gate
# that keeps it honest (see internal/metrics/stress_test.go). With the
# replication runner driving whole simulated worlds concurrently
# (internal/experiment/replicate.go) and the sharded market plane fanning
# bid application, batch clears and two-phase bank transfers across shard
# goroutines (internal/marketplane, internal/bank two-phase primitives,
# internal/sim FanOut), this covers every concurrent path end to end.
race:
	$(GO) test -race ./...

race-check: race

# Short fuzz pass over the grammar-shaped inputs: the xRSL job-description
# parser and the W3C traceparent header decoder. Seed corpora live under each
# package's testdata/fuzz/; FUZZTIME is per target. Go allows one fuzz target
# per invocation, hence two runs.
FUZZTIME ?= 5s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/xrsl
	$(GO) test -run '^$$' -fuzz '^FuzzParseTraceparent$$' -fuzztime $(FUZZTIME) ./internal/tracing
	$(GO) test -run '^$$' -fuzz '^FuzzRing$$' -fuzztime $(FUZZTIME) ./internal/pricefeed
	$(GO) test -run '^$$' -fuzz '^FuzzWALRecover$$' -fuzztime $(FUZZTIME) ./internal/durable
	$(GO) test -run '^$$' -fuzz '^FuzzHistoryQuery$$' -fuzztime $(FUZZTIME) ./internal/telemetry
	$(GO) test -run '^$$' -fuzz '^FuzzMechanismClear$$' -fuzztime $(FUZZTIME) ./internal/mechanism
	$(GO) test -run '^$$' -fuzz '^FuzzParseValuation$$' -fuzztime $(FUZZTIME) ./internal/sla

# Coverage gate for the market-critical packages: the clearing mechanisms,
# the SLA terms/valuation layer, and the prediction models (batch + streaming
# — every scheduling decision flows through their forecasts) must stay
# >= $(COVER_MIN)% statement coverage. Money changes hands through these
# packages; untested branches there are billing bugs waiting to happen.
COVER_MIN ?= 85
cover:
	@for pkg in ./internal/mechanism ./internal/sla ./internal/predict; do \
		pct=$$($(GO) test -count=1 -cover $$pkg | awk '/coverage:/ { gsub("%","",$$(NF-2)); print $$(NF-2) }'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN { print (p >= m) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover: $$pkg at $$pct% < $(COVER_MIN)%"; exit 1; fi; \
		echo "cover: $$pkg $$pct% >= $(COVER_MIN)%"; \
	done

# Static analysis beyond go vet. Pinned so results are reproducible; the
# binary is not vendored and this environment cannot fetch it, so the target
# degrades to a skip (with the install hint) when staticcheck is absent.
STATICCHECK_VERSION ?= 2025.1
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping" ; \
		echo "lint: install with: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

# Paper-artifact regeneration plus the metrics and tracing micro-benchmarks,
# including the auction-clear overhead bars (metrics overhead_% < 5, tracing
# overhead_% < 2 with sampling off).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Horizontal-scale benchmark: the 10000-host, million-bid workload at shard
# counts 1/2/4/8, recording throughput, clear rate and bid latency into
# BENCH_scale.json (the committed trajectory artifact).
bench-scale:
	$(GO) run ./cmd/marketbench -hosts 10000 -jobs 1000000 -shards 1,2,4,8

# Fast benchmark-mode health check: a small sharded run whose money
# conservation, escrow-drained and no-orphaned-holds invariants must all
# pass. Wired into `check`; the JSON artifact is not overwritten.
scale-smoke:
	$(GO) run ./cmd/marketbench -hosts 200 -jobs 2000 -shards 4 -bench-out ""

# Forecast-throughput regression gate: measure the batch copy-and-refit
# pipeline vs the streaming incremental predictors at 100 host streams
# (matching the committed baseline's workload shape) and fail on a >20%
# streaming ns/op regression, a speedup below 10x, or batch/streaming
# forecast disagreement, against the committed BENCH_predict.json. Wired
# into `check`; the committed artifact is not overwritten.
bench-predict:
	$(GO) run ./cmd/marketbench -bench predict -bench-hosts 100 -bench-out /tmp/bench_predict_smoke.json
	$(GO) run ./cmd/benchguard -baseline BENCH_predict.json -current /tmp/bench_predict_smoke.json

# Full sweep (100/1k/10k host streams) that regenerates BENCH_predict.json.
# Run when a predictor change intentionally moves the baseline, and commit
# the result.
bench-predict-full:
	$(GO) run ./cmd/marketbench -bench predict
	$(GO) run ./cmd/benchguard -baseline BENCH_predict.json -current BENCH_predict.json

# Million-request HTTP load harness: signed transfers through the real bankd
# serving stack per durability mode (in-memory, fsync=interval, fsync=always),
# recording latency percentiles and allocs/op into BENCH_http.json (the
# committed trajectory artifact).
bench-http:
	$(GO) run ./cmd/loadgen -requests 1000000 -clients 8 -out BENCH_http.json

# Fast crash-recovery health check: the crash-storm test SIGKILLs a real
# bankd mid-traffic (external kills plus failpoints inside the WAL append,
# fsync and snapshot paths) and asserts exact money conservation, no orphaned
# escrow holds and no duplicate receipt application. Wired into `check`; the
# full 20-cycle storm runs in `go test ./cmd/bankd`.
recovery-smoke:
	$(GO) test -run '^TestCrashStorm$$' -count=1 ./cmd/bankd -args -storm.cycles=6

# Observability smoke: run the quickstart under tracing and assert the job's
# lifecycle timeline came back non-empty — the "completed" event proves the
# whole funded -> bid -> placed -> completed chain recorded.
trace-demo:
	@out=$$($(GO) run ./examples/quickstart); \
	echo "$$out" | grep -q 'timeline (trace ' || { echo "trace-demo: no timeline header"; exit 1; }; \
	echo "$$out" | grep -q 'completed' || { echo "trace-demo: no completed event"; exit 1; }; \
	echo "trace-demo: timeline OK"

# Telemetry-plane smoke: boot real bankd (handler-latency chaos armed via
# TYCOON_CHAOS_HANDLER_*) and slsd hosting the fleet aggregator, assert
# /metrics/history and /slo respond, the injected latency trips the
# request-latency-p99 SLO within one evaluation window, and gridtop -once
# renders the violation (daemon mode) and the peer table (fleet mode).
telemetry-smoke:
	$(GO) test -run '^TestTelemetrySmoke$$' -count=1 ./cmd/gridtop

# End-to-end fault-tolerance run: the full market under 20%+ host churn,
# race-checked. Deterministic — rerun a failure with the same seed.
CHAOS_SEED ?= 1
chaos:
	$(GO) test -race -count=1 ./internal/chaos -args -chaos.seed=$(CHAOS_SEED)

check: vet lint race-check cover fuzz-short chaos trace-demo scale-smoke bench-predict recovery-smoke telemetry-smoke
