GO ?= go

.PHONY: all build vet test race bench chaos check

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The metrics subsystem is lock-light by design; the race target is the gate
# that keeps it honest (see internal/metrics/stress_test.go).
race:
	$(GO) test -race ./...

# Paper-artifact regeneration plus the metrics micro-benchmarks, including
# the auction-clear overhead bar (overhead_% must stay < 5).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# End-to-end fault-tolerance run: the full market under 20%+ host churn,
# race-checked. Deterministic — rerun a failure with the same seed.
CHAOS_SEED ?= 1
chaos:
	$(GO) test -race -count=1 ./internal/chaos -args -chaos.seed=$(CHAOS_SEED)

check: vet race chaos
