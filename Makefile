GO ?= go

.PHONY: all build vet test race bench chaos trace-demo check

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The metrics subsystem is lock-light by design; the race target is the gate
# that keeps it honest (see internal/metrics/stress_test.go).
race:
	$(GO) test -race ./...

# Paper-artifact regeneration plus the metrics and tracing micro-benchmarks,
# including the auction-clear overhead bars (metrics overhead_% < 5, tracing
# overhead_% < 2 with sampling off).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Observability smoke: run the quickstart under tracing and assert the job's
# lifecycle timeline came back non-empty — the "completed" event proves the
# whole funded -> bid -> placed -> completed chain recorded.
trace-demo:
	@out=$$($(GO) run ./examples/quickstart); \
	echo "$$out" | grep -q 'timeline (trace ' || { echo "trace-demo: no timeline header"; exit 1; }; \
	echo "$$out" | grep -q 'completed' || { echo "trace-demo: no completed event"; exit 1; }; \
	echo "trace-demo: timeline OK"

# End-to-end fault-tolerance run: the full market under 20%+ host churn,
# race-checked. Deterministic — rerun a failure with the same seed.
CHAOS_SEED ?= 1
chaos:
	$(GO) test -race -count=1 ./internal/chaos -args -chaos.seed=$(CHAOS_SEED)

check: vet race chaos trace-demo
