// Priceprediction: the paper's §4 prediction suite on a live market trace.
//
// The example runs a bursty grid-market simulation for 20 hours, records the
// spot-price history of the busiest host, and then exercises each prediction
// tool a user would consult before funding a job:
//
//   - the stateless normal model: "how much capacity do I get with 90%
//     certainty for X credits/day, and how much should I spend for 1.6 GHz?"
//   - the budget recommendation and deadline probability (§4.2),
//   - the AR(6) model with smoothing-spline pre-pass vs the persistence
//     benchmark (§4.3, Figure 4),
//   - the moving-window moments and slot-table distribution (§4.5).
//
// Run with:  go run ./examples/priceprediction
package main

import (
	"fmt"
	"log"
	"time"

	"tycoongrid/internal/experiment"
	"tycoongrid/internal/predict"
	"tycoongrid/internal/stats"
)

func main() {
	// --- Record a market trace ------------------------------------------
	load := experiment.DefaultLoadParams()
	load.Hours = 20
	load.BatchPeriod = 4 * time.Hour
	load.BatchJobs = 3
	res, err := experiment.RunLoad(load)
	if err != nil {
		log.Fatal(err)
	}
	series := res.Recorder.Series(res.BusiestID)
	xs := series.Values()
	fmt.Printf("recorded %d price snapshots on %s (%d jobs submitted)\n",
		len(xs), res.BusiestID, res.JobsSent)

	host, err := res.World.Cluster.Host(res.BusiestID)
	if err != nil {
		log.Fatal(err)
	}
	d := stats.DescribeSample(xs)
	hp := predict.HostPrice{
		HostID:     res.BusiestID,
		Preference: host.Market.CapacityMHz(),
		Mu:         d.Mean,
		Sigma:      d.StdDev,
	}
	fmt.Printf("price: mean %.6f, sd %.6f credits/s (host %.0f MHz)\n\n",
		hp.Mu, hp.Sigma, hp.Preference)

	// --- Normal model (§4.2) ---------------------------------------------
	fmt.Println("== stateless normal-distribution prediction ==")
	for _, budgetPerDay := range []float64{10, 22, 60} {
		rate := budgetPerDay / 86400
		for _, p := range []float64{0.80, 0.90, 0.99} {
			c, err := predict.GuaranteedCapacityMHz(hp, rate, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %3.0f credits/day at %2.0f%% guarantee -> %6.0f MHz\n",
				budgetPerDay, p*100, c)
		}
	}
	target := 1600.0
	if target < hp.Preference {
		x, err := predict.RecommendBudget(hp, target, 0.90)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  to hold %.1f GHz with 90%% certainty spend %.1f credits/day\n",
			target/1000, x*86400)
	}
	pDeadline, err := predict.DeadlineProbability(30.0/86400, 1000, []predict.HostPrice{hp})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  a 30 credits/day job needing 1000 MHz makes its deadline with p ~= %.2f\n\n", pDeadline)

	// --- AR model (§4.3) --------------------------------------------------
	fmt.Println("== AR(6) forecast with smoothing vs persistence ==")
	// Work on 10-minute buckets; forecast one hour (6 steps) ahead.
	bucket := 60
	agg := make([]float64, 0, len(xs)/bucket)
	for i := 0; i+bucket <= len(xs); i += bucket {
		var s float64
		for _, v := range xs[i : i+bucket] {
			s += v
		}
		agg = append(agg, s/float64(bucket))
	}
	fit := len(agg) / 2
	ar := predict.NewWindowedSmoothedForecaster(6, 10, 0)
	predAR, measAR, err := predict.HorizonErrors(ar, agg, fit, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	epsAR, err := predict.PredictionError(predAR, measAR)
	if err != nil {
		log.Fatal(err)
	}
	predP, measP, err := predict.HorizonErrors(predict.Persistence{}, agg, fit, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	epsP, err := predict.PredictionError(predP, measP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  AR(6)+smoothing epsilon: %.2f%%\n", epsAR*100)
	fmt.Printf("  persistence epsilon:     %.2f%%\n\n", epsP*100)

	// --- Moving windows (§4.5) --------------------------------------------
	fmt.Println("== moving-window statistics (last hour vs whole trace) ==")
	mm, err := stats.NewMovingMoments(360)
	if err != nil {
		log.Fatal(err)
	}
	wd, err := stats.NewWindowDistribution(360, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, x := range xs {
		mm.Observe(x)
		wd.Observe(x)
	}
	snap := mm.Snapshot()
	fmt.Printf("  hour window: mean %.6f sd %.6f skew %+.2f kurtosis %+.2f\n",
		snap.Mean, snap.StdDev, snap.Skewness, snap.Kurtosis)
	fmt.Printf("  whole trace: mean %.6f sd %.6f skew %+.2f kurtosis %+.2f\n",
		d.Mean, d.StdDev, d.Skewness, d.Kurtosis)
	fmt.Println("  hour-window price brackets:")
	for _, b := range wd.Buckets() {
		fmt.Printf("    [%.6f, %.6f): %5.1f%%\n", b.Lo, b.Hi, b.Proportion*100)
	}
}
