// Portfolio: Markowitz risk management across hosts (paper §4.4, Figure 5).
//
// Host "return" is performance per money unit — CPU cycles per second
// delivered per credit per second spent, i.e. host capacity divided by the
// spot price. The example records each host's return series from a live
// market simulation, estimates means and covariances, and then:
//
//   - computes the risk-free (minimum variance) portfolio,
//   - traces the efficient frontier,
//   - compares risk-free vs equal-share funding on fresh data, showing the
//     improved downside risk the paper reports.
//
// Two practical notes the paper also raises (§4.4): raw covariance estimates
// from short windows are noisy, so we apply diagonal loading before
// inverting; and negative weights (shorting a host) are meaningless for
// funding decisions, so the deployed portfolio is the long-only projection.
//
// Run with:  go run ./examples/portfolio
package main

import (
	"fmt"
	"log"
	"math"

	"tycoongrid/internal/experiment"
	"tycoongrid/internal/portfolio"
)

func main() {
	// --- Record per-host return series from a market simulation ----------
	load := experiment.DefaultLoadParams()
	load.Hours = 16
	load.World.Hosts = 8
	res, err := experiment.RunLoad(load)
	if err != nil {
		log.Fatal(err)
	}

	hosts := res.Recorder.Hosts()
	var returns [][]float64
	minLen := math.MaxInt
	for _, h := range hosts {
		host, err := res.World.Cluster.Host(h)
		if err != nil {
			log.Fatal(err)
		}
		capacity := host.Market.CapacityMHz()
		vals := res.Recorder.Series(h).Values()
		rets := make([]float64, len(vals))
		for i, price := range vals {
			// GHz-seconds delivered per credit spent.
			rets[i] = capacity / math.Max(price, 1e-9) / 1e6
		}
		returns = append(returns, rets)
		if len(rets) < minLen {
			minLen = len(rets)
		}
	}
	// Align lengths and aggregate to 5-minute buckets to de-noise.
	const bucket = 30
	series := make([][]float64, len(returns))
	for i, rets := range returns {
		rets = rets[:minLen]
		agg := make([]float64, 0, minLen/bucket)
		for j := 0; j+bucket <= len(rets); j += bucket {
			var s float64
			for _, v := range rets[j : j+bucket] {
				s += v
			}
			agg = append(agg, s/bucket)
		}
		series[i] = agg
	}
	// Train on the first half.
	half := len(series[0]) / 2
	train := make([][]float64, len(series))
	for i := range series {
		train[i] = series[i][:half]
	}
	means := portfolio.MeansFromSeries(train)
	assets := make([]portfolio.Asset, len(hosts))
	for i, h := range hosts {
		assets[i] = portfolio.Asset{ID: h, Return: means[i]}
	}
	cov, err := portfolio.CovarianceFromSeries(train)
	if err != nil {
		log.Fatal(err)
	}
	// Diagonal loading: short-window covariances are noisy and nearly
	// singular; add 25% of the average variance to the diagonal.
	var avgVar float64
	for i := 0; i < cov.Rows(); i++ {
		avgVar += cov.At(i, i)
	}
	avgVar /= float64(cov.Rows())
	for i := 0; i < cov.Rows(); i++ {
		cov.Set(i, i, cov.At(i, i)+0.25*avgVar)
	}

	// --- Risk-free portfolio ----------------------------------------------
	rf, err := portfolio.MinimumVariance(assets, cov)
	if err != nil {
		log.Fatal(err)
	}
	rf.Weights = longOnly(rf.Weights)
	eq, err := portfolio.EqualShares(assets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== risk-free (minimum variance, long-only) portfolio ==")
	for i, a := range assets {
		fmt.Printf("  %-5s mean return %8.2f GHz·s/credit   weight %6.3f\n",
			a.ID, a.Return, rf.Weights[i])
	}
	rfRisk, _ := rf.Risk(cov)
	eqRisk, _ := eq.Risk(cov)
	fmt.Printf("portfolio return %.2f risk %.3f (equal-share risk %.3f)\n\n",
		rf.Return(), rfRisk, eqRisk)

	// --- Efficient frontier -----------------------------------------------
	var maxMean float64
	for _, a := range assets {
		if a.Return > maxMean {
			maxMean = a.Return
		}
	}
	pts, err := portfolio.Frontier(assets, cov, maxMean, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== efficient frontier (return vs risk) ==")
	for _, pt := range pts {
		fmt.Printf("  return %8.2f  risk %8.3f\n", pt.Return, pt.Risk)
	}

	// --- Out-of-sample comparison -----------------------------------------
	fmt.Println("\n== out-of-sample aggregate performance (GHz·s per credit) ==")
	perf := func(w []float64, k int) float64 {
		var s float64
		for i := range w {
			s += w[i] * series[i][k]
		}
		return s
	}
	worstRF, worstEQ := math.Inf(1), math.Inf(1)
	var sumRF, sumEQ float64
	n := 0
	for k := half; k < len(series[0]); k++ {
		a, b := perf(rf.Weights, k), perf(eq.Weights, k)
		sumRF += a
		sumEQ += b
		if a < worstRF {
			worstRF = a
		}
		if b < worstEQ {
			worstEQ = b
		}
		n++
	}
	fmt.Printf("  risk-free:   mean %8.2f  worst %8.2f\n", sumRF/float64(n), worstRF)
	fmt.Printf("  equal-share: mean %8.2f  worst %8.2f\n", sumEQ/float64(n), worstEQ)
}

// longOnly clamps negative weights to zero and renormalizes — hosts cannot
// be funded negatively.
func longOnly(w []float64) []float64 {
	out := make([]float64, len(w))
	var sum float64
	for i, v := range w {
		if v > 0 {
			out[i] = v
			sum += v
		}
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
