// Reservations: the paper's §7 future work, running — Service Level
// Agreements and swing options built on the §4 prediction infrastructure.
//
// The example records a spot-price trace from a live market simulation and
// then acts as a resource broker selling reservations against it:
//
//  1. It quotes capacity SLAs at several confidence levels, priced from
//     the normal model *and* from the empirical price distribution (the
//     paper's "handle arbitrary distributions" extension), and replays the
//     trace to measure realized violation rates against the 1-p target.
//  2. It prices a swing option (the right to buy CPU at a strike price for
//     up to N intervals) with the Bachelier formula and simulates a rational
//     holder exercising against the spot market.
//
// Run with:  go run ./examples/reservations
package main

import (
	"fmt"
	"log"
	"time"

	"tycoongrid/internal/experiment"
	"tycoongrid/internal/predict"
	"tycoongrid/internal/sla"
	"tycoongrid/internal/stats"
)

func main() {
	// --- Record a trace ----------------------------------------------------
	load := experiment.DefaultLoadParams()
	load.Hours = 24
	load.BatchPeriod = 4 * time.Hour
	load.BatchJobs = 3
	res, err := experiment.RunLoad(load)
	if err != nil {
		log.Fatal(err)
	}
	host, err := res.World.Cluster.Host(res.BusiestID)
	if err != nil {
		log.Fatal(err)
	}
	hostMHz := host.Market.CapacityMHz()
	xs := res.Recorder.Series(res.BusiestID).Values()
	d := stats.DescribeSample(xs)
	fmt.Printf("host %s: %.0f MHz, %d snapshots, price mean %.6f sd %.6f skew %+.2f\n\n",
		res.BusiestID, hostMHz, len(xs), d.Mean, d.StdDev, d.Skewness)

	normal := predict.HostPrice{HostID: res.BusiestID, Preference: hostMHz, Mu: d.Mean, Sigma: d.StdDev}
	empirical, err := predict.NewEmpiricalPriceFromSample(res.BusiestID, hostMHz, xs, 64)
	if err != nil {
		log.Fatal(err)
	}

	// --- Capacity SLAs ------------------------------------------------------
	fmt.Println("== capacity SLAs: 1400 MHz for the whole window, 20% margin ==")
	window := time.Duration(len(xs)) * 10 * time.Second
	fmt.Printf("%-10s %-9s %10s %12s %12s\n", "model", "p", "premium", "target-viol", "realized")
	for _, p := range []float64{0.80, 0.90, 0.95} {
		for _, m := range []struct {
			name  string
			model predict.QuantileModel
		}{{"normal", normal}, {"empirical", empirical}} {
			q, err := sla.PriceAgreement(m.model, res.BusiestID, hostMHz, 1400, window, p, 0.2, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			a, err := sla.Accept(q, "alice", time.Now())
			if err != nil {
				log.Fatal(err)
			}
			for _, spot := range xs {
				delivered := hostMHz * q.SpendRate / (q.SpendRate + spot)
				if err := a.Observe(delivered, 10*time.Second); err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("%-10s %-9.2f %10s %12.3f %12.3f\n",
				m.name, p, q.Premium, 1-p, a.ViolationRate())
		}
	}

	// --- Swing option -------------------------------------------------------
	fmt.Println("\n== swing option: right to buy at the median price, 60 of 360 intervals ==")
	strike, err := normal.QuantilePrice(0.5)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := sla.PriceSwing(res.BusiestID, d.Mean, d.StdDev, strike, 60, 360, 10*time.Second, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strike %.6f credits/s, premium %s credits\n", strike, opt.Premium)
	// Rational holder walks the last 360 snapshots of the trace.
	tail := xs[len(xs)-360:]
	exercised := 0
	for _, spot := range tail {
		if opt.ShouldExercise(spot) {
			if _, err := opt.Exercise(spot); err != nil {
				log.Fatal(err)
			}
			exercised++
		}
	}
	fmt.Printf("exercised %d rights (%d unused), payoff %.4f credits vs premium %s\n",
		exercised, opt.Remaining(), opt.Payoff(), opt.Premium)
	if opt.Payoff() > opt.Premium.Credits() {
		fmt.Println("the option paid off: the market spiked above the strike often enough")
	} else {
		fmt.Println("the option expired mostly unused: the market stayed below the strike")
	}
}
