// Quickstart: the full grid-market flow in one file.
//
// It assembles the stack (PKI, bank, a 4-host Tycoon cluster, the
// best-response scheduling agent), then walks the paper's §3.1 user journey:
//
//  1. Alice gets a bank account bound to her bank key and a Grid
//     certificate for her Grid identity key (two separate keys, both local).
//  2. She transfers 50 credits to the resource broker and binds the signed
//     receipt to her Grid DN — a transfer token.
//  3. The broker verifies the token, funds a sub-account, distributes bids
//     with the Best Response algorithm, and runs her 6-chunk job.
//  4. When the job completes the unspent balance is refunded.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"time"

	"tycoongrid/internal/agent"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/grid"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/token"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/xrsl"
)

func main() {
	tracing.InitSlog("quickstart", os.Stderr, slog.LevelInfo)
	// --- Assemble the market -------------------------------------------
	eng := sim.NewEngine()
	ca, err := pki.NewCA("/O=Grid/CN=DemoCA", pki.WithTimeSource(eng.Now))
	check(err)
	bankID, err := ca.Issue("/CN=Bank")
	check(err)
	brokerID, err := ca.Issue("/CN=Broker")
	check(err)

	ledger := bank.New(bankID, eng)
	_, err = ledger.CreateAccount("broker", brokerID.Public())
	check(err)

	specs := make([]grid.HostSpec, 4)
	for i := range specs {
		specs[i] = grid.HostSpec{
			ID: fmt.Sprintf("h%02d", i), CPUs: 2, CPUMHz: 2800, MaxVMs: 30,
			CreateOverhead: 30 * time.Second,
		}
	}
	cluster, err := grid.New(eng, grid.Config{Hosts: specs, ReservePrice: 1.0 / 3600})
	check(err)
	check(cluster.Start())

	verifier, err := token.NewVerifier(ledger.PublicKey(), ca.Certificate(), "broker", nil)
	check(err)
	broker, err := agent.New(agent.Config{
		Cluster: cluster, Bank: ledger, Identity: brokerID,
		Account: "broker", Verifier: verifier,
	})
	check(err)

	// --- Alice: two keys, one grant ------------------------------------
	aliceGrid, err := ca.Issue("/O=Grid/OU=KTH/CN=Alice")
	check(err)
	aliceBank, err := ca.Issue("/CN=Alice-bank-key")
	check(err)
	_, err = ledger.CreateAccount("alice", aliceBank.Public())
	check(err)
	check(ledger.Deposit("alice", 200*bank.Credit, "yearly allocation"))

	// --- Mint a transfer token (paper §3.1) -----------------------------
	req := bank.TransferRequest{From: "alice", To: "broker",
		Amount: 50 * bank.Credit, Nonce: "quickstart-1"}
	req.Sig = aliceBank.Sign(req.SigningBytes())
	receipt, err := ledger.Transfer(req)
	check(err)
	tok := token.Attach(receipt, aliceGrid)
	fmt.Printf("minted transfer token %s for %s (%s credits)\n",
		receipt.TransferID, tok.GridDN, receipt.Amount)

	// --- Submit the job --------------------------------------------------
	jr := &xrsl.JobRequest{
		JobName:     "quickstart",
		Executable:  "scan.sh",
		Count:       3,             // up to 3 concurrent VMs
		WallTime:    2 * time.Hour, // bid deadline
		RuntimeEnvs: []string{"APPS/BIO/BLAST-2.0"},
	}
	chunks := make([]float64, 6) // 6 sub-jobs of 10 CPU-minutes each
	for i := range chunks {
		chunks[i] = 10 * 60 * 2800
	}
	// Submitting under a pushed span scope makes that span the job's
	// lifecycle span: every funding move, bid, placement and completion the
	// market records becomes an event on it — the job's timeline.
	tr := tracing.Default()
	root, _ := tr.StartSpan(context.Background(), "quickstart.job")
	release := tr.PushScope(root)
	job, err := broker.Submit(tok, jr, chunks)
	release()
	check(err)
	fmt.Printf("job %s submitted for %s; best response funded hosts %v\n",
		job.ID, job.DN, job.Hosts)

	// --- Run the market until the job completes -------------------------
	eng.RunFor(3 * time.Hour)

	fmt.Printf("\njob state: %s (%d/%d sub-jobs)\n", job.State, job.Completed(), job.Total())
	fmt.Printf("wall time: %.1f minutes, mean sub-job latency %.1f minutes\n",
		job.Duration().Minutes(), job.MeanLatency().Minutes())
	fmt.Printf("charged %s credits (%.2f credits/hour), on %d nodes\n",
		job.Charged, job.CostRate(), job.NodesUsed())

	brokerBal, _ := ledger.Balance("broker")
	earned, _ := ledger.Balance("grid-earnings")
	fmt.Printf("refund held at broker: %s credits; host earnings: %s credits\n",
		brokerBal, earned)

	root.End()
	fmt.Printf("\ntimeline (trace %s):\n", root.Context().TraceID)
	for _, e := range root.Events() {
		fmt.Printf("  %s  %-12s", e.Time.Format("15:04:05"), e.Name)
		for _, a := range e.Attrs {
			fmt.Printf(" %s=%s", a.Key, a.Value)
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		slog.Error("quickstart failed", "err", err)
		os.Exit(1)
	}
}
