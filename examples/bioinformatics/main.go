// Bioinformatics: the paper's pilot application end to end (§5).
//
// Part 1 actually runs the science on this machine: it synthesizes a small
// proteome, runs the sliding-window similarity scan for a query protein, and
// reports the regions with the highest and lowest similarity to the rest of
// the proteome — the application's stated goal.
//
// Part 2 runs the paper's §5.3 market experiment: five users submit the same
// bag-of-tasks proteome scan to a 30-host Tycoon grid with two-point funding
// (100, 100, 500, 500, 500 credits) and a 5.5 h deadline, demonstrating that
// transfer-token funding buys differentiated quality of service.
//
// Run with:  go run ./examples/bioinformatics
package main

import (
	"fmt"
	"log"
	"time"

	"tycoongrid/internal/experiment"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/workload"
)

func main() {
	runScience()
	runMarketExperiment()
}

// runScience executes a real (scaled-down) proteome scan in-process.
func runScience() {
	fmt.Println("== Part 1: sliding-window proteome similarity scan ==")
	src := rng.New(42)
	db, err := workload.GenerateProteome(src, 60, 120, 400)
	if err != nil {
		log.Fatal(err)
	}
	var residues int
	for _, p := range db {
		residues += len(p.Seq)
	}
	fmt.Printf("synthetic proteome: %d proteins, %d residues\n", len(db), residues)

	query := db[7]
	start := time.Now()
	reports, err := workload.ScanProtein(query, db, 25, 10)
	if err != nil {
		log.Fatal(err)
	}
	high, low, err := workload.Extremes(reports)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %s (%d residues) in %d windows (%.0f ms)\n",
		query.ID, len(query.Seq), len(reports), time.Since(start).Seconds()*1000)
	fmt.Printf("  most similar region:  offset %d, score %d\n", high.Offset, high.Score)
	fmt.Printf("  least similar region: offset %d, score %d\n", low.Offset, low.Score)

	// The full human proteome would be partitioned into chunks that each
	// take ~212 minutes on one node; show the partitioning.
	chunks, err := workload.Chunks(db, 15, workload.PaperChunkDuration)
	if err != nil {
		log.Fatal(err)
	}
	app, err := workload.NewApplication("proteome-scan", len(chunks), workload.PaperChunkDuration, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid run: %d chunks of %v; ideal on 15 nodes: %v\n\n",
		len(chunks), workload.PaperChunkDuration, app.IdealDuration(15))
}

// runMarketExperiment reproduces the two-point funding table.
func runMarketExperiment() {
	fmt.Println("== Part 2: five competing users on the Tycoon grid (paper Table 2) ==")
	p := experiment.Table2Params()
	res, err := experiment.RunBestResponseTable(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)

	fmt.Println("\nper-user details:")
	for _, r := range res.Rows {
		fmt.Printf("  %-6s budget %4s: %2d/%2d sub-jobs, %.2f h, %.1f min/job, %.0f nodes\n",
			r.User, r.Budget, r.Completed, r.Total, r.TimeHours, r.LatencyMin, r.Nodes)
	}
	hi := res.Groups[len(res.Groups)-1]
	lo := res.Groups[0]
	fmt.Printf("\nQoS differentiation: %.0fx funding bought %.1fx better latency at %.1fx the cost rate\n",
		hi.Budget.Credits()/lo.Budget.Credits(),
		lo.LatencyMin/hi.LatencyMin, hi.CostPerH/lo.CostPerH)
}
