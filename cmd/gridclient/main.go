// Command gridclient is the user-side CLI for the grid market daemons:
// key management, bank accounts and signed transfers, SLS queries, and
// market bids.
//
// Subcommands:
//
//	gridclient key new -out alice.key
//	gridclient key show -key alice.key
//	gridclient account create -bank URL -id alice -key alice.key
//	gridclient account show   -bank URL -id alice
//	gridclient deposit  -bank URL -id alice -amount 100
//	gridclient transfer -bank URL -from alice -to broker -amount 20 -key alice.key [-nonce n]
//	gridclient hosts    -sls URL [-min-capacity X] [-site S]
//	gridclient status   -auctioneer URL
//	gridclient bid      -auctioneer URL -bidder alice -amount 10 -deadline 1h
//	gridclient boost    -auctioneer URL -bidder alice -amount 5
//	gridclient cancel   -auctioneer URL -bidder alice
//	gridclient stats    -auctioneer URL -window hour
//	gridclient submit   -grid URL -xrsl job.xrsl [-wait]
//	gridclient timeline -grid URL -id JOBID
//	gridclient trace    -grid URL -id TRACEID
package main

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"tycoongrid/internal/arc"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/sls"
	"tycoongrid/internal/tracing"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "key":
		err = keyCmd(os.Args[2:])
	case "account":
		err = accountCmd(os.Args[2:])
	case "deposit":
		err = depositCmd(os.Args[2:])
	case "transfer":
		err = transferCmd(os.Args[2:])
	case "hosts":
		err = hostsCmd(os.Args[2:])
	case "status", "bid", "boost", "cancel", "stats":
		err = marketCmd(os.Args[1], os.Args[2:])
	case "submit":
		err = submitCmd(os.Args[2:])
	case "timeline":
		err = timelineCmd(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridclient:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gridclient <key|account|deposit|transfer|hosts|status|bid|boost|cancel|stats|submit|timeline|trace> [flags]
run "gridclient <cmd> -h" for flags`)
	os.Exit(2)
}

// keyFile is the on-disk key format: just the Ed25519 seed, base64.
type keyFile struct {
	Seed string `json:"seed"`
}

func loadKey(path string) (ed25519.PrivateKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var kf keyFile
	if err := json.Unmarshal(raw, &kf); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	seed, err := base64.RawURLEncoding.DecodeString(kf.Seed)
	if err != nil || len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("bad seed in %s", path)
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

func keyCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("key: want new|show")
	}
	fs := flag.NewFlagSet("key", flag.ExitOnError)
	out := fs.String("out", "", "output key file (new)")
	key := fs.String("key", "", "key file (show)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	switch args[0] {
	case "new":
		if *out == "" {
			return fmt.Errorf("key new: -out required")
		}
		seed := make([]byte, ed25519.SeedSize)
		if _, err := rand.Read(seed); err != nil {
			return err
		}
		raw, err := json.MarshalIndent(keyFile{Seed: base64.RawURLEncoding.EncodeToString(seed)}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, raw, 0o600); err != nil {
			return err
		}
		priv := ed25519.NewKeyFromSeed(seed)
		fmt.Printf("wrote %s\npublic key: %s\n", *out,
			httpapi.EncodeKey(priv.Public().(ed25519.PublicKey)))
		return nil
	case "show":
		if *key == "" {
			return fmt.Errorf("key show: -key required")
		}
		priv, err := loadKey(*key)
		if err != nil {
			return err
		}
		fmt.Printf("public key: %s\n", httpapi.EncodeKey(priv.Public().(ed25519.PublicKey)))
		return nil
	default:
		return fmt.Errorf("key: unknown action %q", args[0])
	}
}

func accountCmd(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("account: want create|show")
	}
	fs := flag.NewFlagSet("account", flag.ExitOnError)
	bankURL := fs.String("bank", "http://localhost:7700", "bank base URL")
	id := fs.String("id", "", "account id")
	keyPath := fs.String("key", "", "owner key file (create)")
	parent := fs.String("parent", "", "parent account (sub-accounts)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("account: -id required")
	}
	c := httpapi.NewBankClient(*bankURL, nil)
	switch args[0] {
	case "create":
		priv, err := loadKey(*keyPath)
		if err != nil {
			return err
		}
		a, err := c.CreateAccount(*id, priv.Public().(ed25519.PublicKey), *parent)
		if err != nil {
			return err
		}
		fmt.Printf("created %s (balance %s)\n", a.ID, a.Balance)
		return nil
	case "show":
		a, err := c.Account(*id)
		if err != nil {
			return err
		}
		fmt.Printf("%s balance=%s parent=%q created=%s\n", a.ID, a.Balance, a.Parent, a.Created)
		return nil
	default:
		return fmt.Errorf("account: unknown action %q", args[0])
	}
}

func depositCmd(args []string) error {
	fs := flag.NewFlagSet("deposit", flag.ExitOnError)
	bankURL := fs.String("bank", "http://localhost:7700", "bank base URL")
	id := fs.String("id", "", "account id")
	amount := fs.String("amount", "", "credits to grant")
	memo := fs.String("memo", "operator grant", "ledger memo")
	if err := fs.Parse(args); err != nil {
		return err
	}
	amt, err := bank.ParseAmount(*amount)
	if err != nil {
		return err
	}
	c := httpapi.NewBankClient(*bankURL, nil)
	if err := c.Deposit(*id, amt, *memo); err != nil {
		return err
	}
	bal, err := c.Balance(*id)
	if err != nil {
		return err
	}
	fmt.Printf("deposited %s; %s balance is now %s\n", amt, *id, bal)
	return nil
}

func transferCmd(args []string) error {
	fs := flag.NewFlagSet("transfer", flag.ExitOnError)
	bankURL := fs.String("bank", "http://localhost:7700", "bank base URL")
	from := fs.String("from", "", "source account")
	to := fs.String("to", "", "destination account")
	amount := fs.String("amount", "", "credits")
	keyPath := fs.String("key", "", "source owner key file")
	nonce := fs.String("nonce", "", "transfer nonce (default: time-derived)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	amt, err := bank.ParseAmount(*amount)
	if err != nil {
		return err
	}
	priv, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	n := *nonce
	if n == "" {
		n = fmt.Sprintf("%s-%d", *from, time.Now().UnixNano())
	}
	req := bank.TransferRequest{
		From: bank.AccountID(*from), To: bank.AccountID(*to), Amount: amt, Nonce: n,
	}
	req.Sig = ed25519.Sign(priv, req.SigningBytes())
	c := httpapi.NewBankClient(*bankURL, nil)
	receipt, err := c.Transfer(req)
	if err != nil {
		return err
	}
	fmt.Printf("transfer %s: %s -> %s %s at %s\n",
		receipt.TransferID, receipt.From, receipt.To, receipt.Amount, receipt.At)
	return nil
}

func hostsCmd(args []string) error {
	fs := flag.NewFlagSet("hosts", flag.ExitOnError)
	slsURL := fs.String("sls", "http://localhost:7701", "SLS base URL")
	minCap := fs.Float64("min-capacity", 0, "minimum capacity MHz")
	site := fs.String("site", "", "site filter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := httpapi.NewSLSClient(*slsURL, nil)
	hosts, err := c.Select(sls.Query{MinCapacityMHz: *minCap, Site: *site})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-24s %10s %5s %6s %10s %s\n",
		"HOST", "ENDPOINT", "MHZ", "CPUS", "VMS", "PRICE", "SITE")
	for _, h := range hosts {
		fmt.Printf("%-8s %-24s %10.0f %5d %6d %10.6f %s\n",
			h.ID, h.Endpoint, h.CapacityMHz, h.CPUs, h.MaxVMs, h.SpotPrice, h.Site)
	}
	return nil
}

func marketCmd(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	auct := fs.String("auctioneer", "http://localhost:7710", "auctioneer base URL")
	bidder := fs.String("bidder", "", "bidder account id")
	amount := fs.String("amount", "0", "credits")
	deadline := fs.Duration("deadline", time.Hour, "bid deadline from now")
	window := fs.String("window", "hour", "stats window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := httpapi.NewAuctioneerClient(*auct, nil)
	switch cmd {
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		fmt.Printf("host %s: capacity %.0f MHz, spot price %.6g credits/s (%.3g per MHz), %d bidders\n",
			st.HostID, st.CapacityMHz, st.SpotPrice, st.PricePerMHz, st.Bidders)
		shares, err := c.Shares()
		if err != nil {
			return err
		}
		for _, s := range shares {
			fmt.Printf("  %-20s share %5.1f%% rate %.6g remaining %s\n",
				s.Bidder, s.Fraction*100, s.Rate, s.Remaining)
		}
		return nil
	case "bid":
		amt, err := bank.ParseAmount(*amount)
		if err != nil {
			return err
		}
		refund, err := c.PlaceBid(*bidder, amt, time.Now().Add(*deadline))
		if err != nil {
			return err
		}
		fmt.Printf("bid placed; replaced-bid refund %s\n", refund)
		return nil
	case "boost":
		amt, err := bank.ParseAmount(*amount)
		if err != nil {
			return err
		}
		if err := c.Boost(*bidder, amt); err != nil {
			return err
		}
		fmt.Println("boosted")
		return nil
	case "cancel":
		refund, err := c.CancelBid(*bidder)
		if err != nil {
			return err
		}
		fmt.Printf("cancelled; refund %s\n", refund)
		return nil
	case "stats":
		ws, err := c.WindowStats(*window)
		if err != nil {
			return err
		}
		fmt.Printf("window %s: n=%d mean=%.6g sd=%.6g skew=%+.2f kurt=%+.2f\n",
			ws.Window, ws.Count, ws.Mean, ws.StdDev, ws.Skewness, ws.Kurtosis)
		for _, b := range ws.Buckets {
			fmt.Printf("  [%.6g, %.6g): %5.1f%%\n", b.Lo, b.Hi, b.Proportion*100)
		}
		return nil
	}
	return fmt.Errorf("unknown market command %q", cmd)
}

func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	gridURL := fs.String("grid", "http://localhost:7750", "grid market base URL")
	xrslPath := fs.String("xrsl", "", "xRSL job description file (- for stdin)")
	wait := fs.Bool("wait", false, "poll until the job finishes, then print its timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		text []byte
		err  error
	)
	switch *xrslPath {
	case "":
		return fmt.Errorf("submit: -xrsl required")
	case "-":
		text, err = io.ReadAll(os.Stdin)
	default:
		text, err = os.ReadFile(*xrslPath)
	}
	if err != nil {
		return err
	}

	// Root the whole submission in one client-side trace: the scope makes the
	// span the parent of every RPC the typed client issues below, and the
	// traceparent header carries it into the daemon.
	tr := tracing.Default()
	span, _ := tr.StartSpan(context.Background(), "gridclient.submit")
	release := tr.PushScope(span)
	defer func() { release(); span.End() }()

	c := httpapi.NewJobClient(*gridURL, nil)
	jw, err := c.Submit(string(text))
	if err != nil {
		span.EndErr(err)
		return err
	}
	fmt.Printf("submitted %s (%s)\n", jw.ID, jw.State)
	fmt.Printf("trace %s\n", span.Context().TraceID)
	if !*wait {
		return nil
	}
	for {
		time.Sleep(500 * time.Millisecond)
		jw, err = c.Job(jw.ID)
		if err != nil {
			return err
		}
		if jw.State == "FINISHED" || jw.State == "FAILED" || jw.State == "KILLED" {
			break
		}
	}
	fmt.Printf("job %s: %s\n", jw.ID, jw.State)
	tl, err := c.Timeline(jw.ID)
	if err != nil {
		return err
	}
	printTimeline(tl)
	return nil
}

func timelineCmd(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	gridURL := fs.String("grid", "http://localhost:7750", "grid market base URL")
	id := fs.String("id", "", "job id (gsiftp URL)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("timeline: -id required")
	}
	tl, err := httpapi.NewJobClient(*gridURL, nil).Timeline(*id)
	if err != nil {
		return err
	}
	printTimeline(tl)
	return nil
}

func printTimeline(tl arc.Timeline) {
	fmt.Printf("job %s state=%s", tl.JobID, tl.State)
	if tl.Error != "" {
		fmt.Printf(" error=%q", tl.Error)
	}
	if tl.TraceID != "" {
		fmt.Printf(" trace=%s", tl.TraceID)
	}
	fmt.Println()
	for _, e := range tl.Events {
		fmt.Printf("  %s  %-12s", e.Time.Format("2006-01-02T15:04:05.000"), e.Name)
		for _, a := range e.Attrs {
			fmt.Printf(" %s=%s", a.Key, a.Value)
		}
		fmt.Println()
	}
	if tl.Dropped > 0 {
		fmt.Printf("  (%d events dropped)\n", tl.Dropped)
	}
}

func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	gridURL := fs.String("grid", "http://localhost:7750", "daemon base URL")
	id := fs.String("id", "", "trace id (32 hex chars)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("trace: -id required")
	}
	resp, err := http.Get(strings.TrimSuffix(*gridURL, "/") + "/debug/traces/" + url.PathEscape(*id) + "?format=tree")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fmt.Print(string(body))
	return nil
}
