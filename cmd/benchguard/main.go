// Command benchguard compares a fresh forecast-throughput measurement
// against the committed BENCH_predict.json baseline and fails (exit 1) when
// the streaming pipeline regressed — a benchcmp-style gate for `make check`,
// so a change that quietly reintroduces per-forecast refitting or per-read
// allocation is caught before it lands.
//
// Usage:
//
//	benchguard -baseline BENCH_predict.json -current /tmp/smoke.json
//	benchguard -baseline BENCH_predict.json -current new.json -max-regress 0.20 -min-speedup 10
//
// Host counts present in only one file are reported but not compared, so a
// cheap smoke run (one small host count) can be gated against the full
// committed sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tycoongrid/internal/predict"
)

// benchFile mirrors marketbench's BENCH_predict.json shape.
type benchFile struct {
	Forecasts int                   `json:"forecasts"`
	Seed      int64                 `json:"seed"`
	Runs      []predict.BenchResult `json:"runs"`
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Runs) == 0 {
		return f, fmt.Errorf("%s: no runs", path)
	}
	return f, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_predict.json", "committed baseline sweep")
	currentPath := flag.String("current", "", "fresh measurement to gate (required)")
	maxRegress := flag.Float64("max-regress", 0.20,
		"max allowed fractional streaming ns/op regression vs baseline")
	minSpeedup := flag.Float64("min-speedup", 10,
		"min required batch/streaming speedup in every current run (0 disables)")
	maxRelDiff := flag.Float64("max-rel-diff", 1e-9,
		"max allowed batch-vs-streaming forecast disagreement (0 disables)")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: current: %v\n", err)
		os.Exit(2)
	}

	base := make(map[int]predict.BenchResult, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[r.Hosts] = r
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}
	for _, cur := range current.Runs {
		if *minSpeedup > 0 && cur.Speedup < *minSpeedup {
			fail("hosts=%d: speedup %.1fx < required %.1fx", cur.Hosts, cur.Speedup, *minSpeedup)
		}
		if *maxRelDiff > 0 && cur.MaxRelDiff > *maxRelDiff {
			fail("hosts=%d: batch/streaming forecasts disagree: max rel diff %.3g > %.3g",
				cur.Hosts, cur.MaxRelDiff, *maxRelDiff)
		}
		b, ok := base[cur.Hosts]
		if !ok {
			fmt.Printf("skip: hosts=%d not in baseline (speedup %.1fx, stream %.0f ns/op)\n",
				cur.Hosts, cur.Speedup, cur.StreamNsPerOp)
			continue
		}
		limit := b.StreamNsPerOp * (1 + *maxRegress)
		verdict := "ok"
		if cur.StreamNsPerOp > limit {
			fail("hosts=%d: streaming %.0f ns/op vs baseline %.0f (+%.0f%% > +%.0f%% allowed)",
				cur.Hosts, cur.StreamNsPerOp, b.StreamNsPerOp,
				100*(cur.StreamNsPerOp/b.StreamNsPerOp-1), 100**maxRegress)
			verdict = "REGRESSED"
		}
		fmt.Printf("%s: hosts=%d stream %.0f ns/op (baseline %.0f, %+.1f%%), %.1f allocs/op, speedup %.1fx\n",
			verdict, cur.Hosts, cur.StreamNsPerOp, b.StreamNsPerOp,
			100*(cur.StreamNsPerOp/b.StreamNsPerOp-1), cur.StreamAllocsPerOp, cur.Speedup)
	}
	if failed {
		os.Exit(1)
	}
}
