// Command loadgen is the million-request HTTP load harness for the durable
// bank: it stands up the exact bankd serving stack in-process (real TCP
// listener, real signed-transfer JSON API), drives it with concurrent
// signing clients, and records latency percentiles and allocation counts
// per durability mode into a JSON artifact.
//
// Usage:
//
//	loadgen -requests 1000000 -clients 32 -durability memory,interval,always \
//	    -out BENCH_http.json
//
// Each mode gets a fresh bank (and for the durable modes a fresh WAL
// directory under the system temp dir). Reported allocs/op cover client and
// server together, since both run in this process.
package main

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/durable"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/metrics"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/tsdb"
)

type runResult struct {
	Mode          string  `json:"mode"` // memory | interval | always
	Requests      int     `json:"requests"`
	Clients       int     `json:"clients"`
	ElapsedMs     float64 `json:"elapsed_ms"`
	RequestsPerS  float64 `json:"requests_per_sec"`
	P50Us         float64 `json:"p50_latency_us"`
	P99Us         float64 `json:"p99_latency_us"`
	P999Us        float64 `json:"p999_latency_us"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	WALBytes      int64   `json:"wal_bytes"`
	MoneyConserve bool    `json:"money_conserved"`
	SlowdownVsMem float64 `json:"slowdown_vs_memory"`
	// Telemetry recorded during the run by a tsdb self-scrape collector —
	// the same plane the daemons run, so the artifact carries the
	// server-side view next to the client-side percentiles above. The rate
	// is the mean of the per-scrape http_requests_total:rate points (delta
	// based, so correct per mode even though the process registry is shared
	// across modes); the drift gauge must be exactly zero.
	TelemetrySeries  int     `json:"telemetry_series"`
	TelemetrySamples int     `json:"telemetry_samples"`
	ServerReqPerSec  float64 `json:"server_requests_per_sec"`
	DriftCredits     float64 `json:"conservation_drift_credits"`
}

type artifact struct {
	Requests  int         `json:"requests"`
	Clients   int         `json:"clients"`
	Accounts  int         `json:"accounts"`
	Seed      int64       `json:"seed"`
	GoVersion string      `json:"go_version"`
	Runs      []runResult `json:"runs"`
}

func main() {
	requests := flag.Int("requests", 1_000_000, "signed transfer requests per mode")
	clients := flag.Int("clients", 32, "concurrent client goroutines")
	accounts := flag.Int("accounts", 64, "bank accounts transfers rotate through")
	modes := flag.String("durability", "memory,interval,always",
		"comma-separated durability modes to benchmark")
	out := flag.String("out", "BENCH_http.json", "JSON artifact path (empty = stdout table only)")
	seed := flag.Int64("seed", 1, "deterministic key seed")
	snapshotEvery := flag.Int("snapshot-every", 0,
		"records between snapshots in durable modes (0 = none during the run)")
	flag.Parse()
	tracing.Default().SetSampleRatio(0) // measure the serving path, not the tracer

	art := artifact{
		Requests: *requests, Clients: *clients, Accounts: *accounts,
		Seed: *seed, GoVersion: runtime.Version(),
	}
	var memRate float64
	for _, mode := range strings.Split(*modes, ",") {
		mode = strings.TrimSpace(mode)
		if mode == "" {
			continue
		}
		res, err := runMode(mode, *requests, *clients, *accounts, *seed, *snapshotEvery)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %s: %v\n", mode, err)
			os.Exit(1)
		}
		if mode == "memory" {
			memRate = res.RequestsPerS
		}
		if memRate > 0 {
			res.SlowdownVsMem = memRate / res.RequestsPerS
		}
		art.Runs = append(art.Runs, res)
	}

	fmt.Printf("%-10s %12s %12s %10s %10s %10s %10s %8s\n",
		"mode", "req/s", "elapsed", "p50", "p99", "p999", "allocs/op", "vs-mem")
	for _, r := range art.Runs {
		fmt.Printf("%-10s %12.0f %11.1fs %9.0fµs %9.0fµs %9.0fµs %10.1f %7.2fx\n",
			r.Mode, r.RequestsPerS, r.ElapsedMs/1000,
			r.P50Us, r.P99Us, r.P999Us, r.AllocsPerOp, r.SlowdownVsMem)
		if !r.MoneyConserve {
			fmt.Fprintf(os.Stderr, "loadgen: %s: MONEY NOT CONSERVED\n", r.Mode)
			os.Exit(1)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}

// runMode benchmarks one durability configuration end to end.
func runMode(mode string, requests, clients, accounts int, seed int64, snapshotEvery int) (runResult, error) {
	res := runResult{Mode: mode, Requests: requests, Clients: clients}

	caSeed := [32]byte{byte(seed), 1}
	ca, err := pki.NewDeterministicCA("/CN=LoadCA", caSeed)
	if err != nil {
		return res, err
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", [32]byte{byte(seed), 2})
	if err != nil {
		return res, err
	}
	owner, err := ca.IssueDeterministic("/CN=Owner", [32]byte{byte(seed), 3})
	if err != nil {
		return res, err
	}

	b := bank.New(bankID, sim.WallClock{})
	var store *durable.Store
	var dataDir string
	if mode != "memory" {
		policy, err := durable.ParseSyncPolicy(mode)
		if err != nil {
			return res, fmt.Errorf("unknown durability mode %q", mode)
		}
		dataDir, err = os.MkdirTemp("", "loadgen-"+mode+"-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dataDir)
		store, err = durable.Open(dataDir, durable.Options{Sync: policy})
		if err != nil {
			return res, err
		}
		if snapshotEvery <= 0 {
			snapshotEvery = requests + 1 // measure the WAL path, not snapshot pauses
		}
		if _, err := b.AttachDurability(store, snapshotEvery); err != nil {
			return res, err
		}
	}

	// Fund the rotation: client c sends acct[c%accounts] -> acct[(c+1)%accounts].
	perClient := requests / clients
	for i := 0; i < accounts; i++ {
		id := bank.AccountID(fmt.Sprintf("a%03d", i))
		if _, err := b.CreateAccount(id, owner.Public()); err != nil {
			return res, err
		}
		if err := b.Deposit(id, bank.Amount(requests)*bank.Credit, "seed"); err != nil {
			return res, err
		}
	}

	// The same serving stack bankd uses: observed mux over the bank service
	// on a real TCP listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srv := &http.Server{Handler: httpapi.ObservedMux("loadgen", httpapi.NewBankService(b))}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String() + "/transfers"

	transport := &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}
	httpClient := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	// Self-scrape telemetry for the duration of the run — the same collector
	// plane the daemons run, so its cost is part of what we measure. The DB
	// is fresh per mode and the seeding Collect here establishes the delta
	// baseline against the (cumulative, process-wide) registry, so the rate
	// series cover only this mode's traffic.
	tdb := tsdb.NewDB(512)
	col := tsdb.NewCollector(metrics.Default(), tdb, time.Now)
	col.Collect()
	stopScrape := make(chan struct{})
	go col.Run(stopScrape, 100*time.Millisecond)

	latencies := make([][]int64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup

	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lats := make([]int64, 0, perClient)
			from := bank.AccountID(fmt.Sprintf("a%03d", c%accounts))
			to := bank.AccountID(fmt.Sprintf("a%03d", (c+1)%accounts))
			for i := 0; i < perClient; i++ {
				req := bank.TransferRequest{
					From: from, To: to, Amount: bank.Credit,
					Nonce: fmt.Sprintf("c%d-%d", c, i),
				}
				req.Sig = owner.Sign(req.SigningBytes())
				body, _ := json.Marshal(httpapi.TransferWire{
					From: string(req.From), To: string(req.To),
					Amount: req.Amount.String(), Nonce: req.Nonce,
					Sig: base64.RawURLEncoding.EncodeToString(req.Sig),
				})
				t0 := time.Now()
				resp, err := httpClient.Post(base, "application/json", bytes.NewReader(body))
				if err != nil {
					errs[c] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				lats = append(lats, time.Since(t0).Nanoseconds())
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("transfer %s: HTTP %d", req.Nonce, resp.StatusCode)
					return
				}
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()

	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	srv.Close()
	if store != nil {
		if err := store.Close(); err != nil {
			return res, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	total, held, landed := b.Totals()
	want := bank.Amount(accounts) * bank.Amount(requests) * bank.Credit
	res.MoneyConserve = total+held-landed == want

	// Stop the scrape loop, publish the drift gauge, and take one final
	// collect so the artifact's server-side view includes the last interval.
	close(stopScrape)
	b.RecordConservation()
	col.Collect()
	for _, n := range tdb.Names() {
		s, ok := tdb.Lookup(n)
		if !ok {
			continue
		}
		pts := s.Window(24 * time.Hour)
		res.TelemetrySeries++
		res.TelemetrySamples += len(pts)
		// Server throughput: sum each per-label child's mean rate.
		if strings.HasPrefix(n, "http_requests_total{") &&
			strings.HasSuffix(n, tsdb.SuffixRate) && len(pts) > 0 {
			var sum float64
			for _, p := range pts {
				sum += p.V
			}
			res.ServerReqPerSec += sum / float64(len(pts))
		}
	}
	if s, ok := tdb.Lookup("bank_conservation_drift_credits"); ok {
		if pts := s.Window(24 * time.Hour); len(pts) > 0 {
			res.DriftCredits = pts[len(pts)-1].V
		}
	}

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / 1e3
	}
	res.ElapsedMs = float64(elapsed.Nanoseconds()) / 1e6
	res.RequestsPerS = float64(len(all)) / elapsed.Seconds()
	res.P50Us, res.P99Us, res.P999Us = pct(0.50), pct(0.99), pct(0.999)
	res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(len(all))
	if dataDir != "" {
		filepath.WalkDir(dataDir, func(_ string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() {
				if info, ierr := d.Info(); ierr == nil {
					res.WALBytes += info.Size()
				}
			}
			return nil
		})
	}
	return res, nil
}
