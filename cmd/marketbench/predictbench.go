package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tycoongrid/internal/predict"
)

// predictBenchFile is the serialized forecast-throughput sweep — the
// committed BENCH_predict.json artifact cmd/benchguard gates against.
type predictBenchFile struct {
	Forecasts int                   `json:"forecasts"`
	Seed      int64                 `json:"seed"`
	Runs      []predict.BenchResult `json:"runs"`
}

// runPredictBench measures batch-refit vs streaming forecast throughput at
// each requested host count, prints a summary table, and writes the sweep to
// outPath.
func runPredictBench(hostsCSV string, forecasts int, outPath string, seed int64) error {
	var hostCounts []int
	for _, f := range strings.Split(hostsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -bench-hosts entry %q", f)
		}
		hostCounts = append(hostCounts, n)
	}
	if len(hostCounts) == 0 {
		return fmt.Errorf("empty -bench-hosts list")
	}

	file := predictBenchFile{Forecasts: forecasts, Seed: seed}
	fmt.Printf("%-7s %14s %12s %14s %12s %13s %9s %12s\n",
		"hosts", "batch ns/op", "allocs/op", "stream ns/op", "allocs/op",
		"observe ns", "speedup", "max rel diff")
	for _, n := range hostCounts {
		res, err := predict.RunForecastBench(predict.BenchConfig{
			Hosts: n, Forecasts: forecasts, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("hosts=%d: %w", n, err)
		}
		file.Runs = append(file.Runs, res)
		fmt.Printf("%-7d %14.0f %12.1f %14.0f %12.1f %13.1f %8.1fx %12.2e\n",
			n, res.BatchNsPerOp, res.BatchAllocsPerOp, res.StreamNsPerOp,
			res.StreamAllocsPerOp, res.StreamObserveNsPerSample, res.Speedup,
			res.MaxRelDiff)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
