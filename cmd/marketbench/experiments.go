package main

import (
	"fmt"
	"strings"
	"time"

	"tycoongrid/internal/experiment"
)

// mechanismsParams applies the -mechanism flag on top of the experiment's
// defaults: a comma-separated subset of mechanism.Names() to compare, or
// empty/"all" for every registered clearing rule.
func mechanismsParams(mechs string) experiment.MechanismsParams {
	p := experiment.DefaultMechanismsParams()
	if mechs != "" && mechs != "all" {
		p.Mechanisms = strings.Split(mechs, ",")
	}
	return p
}

// strategiesParams applies the -strategy / -horizon flags on top of the
// experiment's defaults.
func strategiesParams(strat string, horizon time.Duration) experiment.StrategiesParams {
	p := experiment.DefaultStrategiesParams()
	if strat != "" && strat != "all" {
		p.Strategies = strings.Split(strat, ",")
	}
	if horizon > 0 {
		p.Horizon = horizon
	}
	return p
}

// runReplicated runs an experiment's replication spec across a worker pool
// and returns the aggregate table. Experiments without a spec (deterministic
// sweeps) fall back to a single run.
func runReplicated(name string, seed int64, csvDir string, reps, parallel int, strat string, horizon time.Duration, mechs string) (string, error) {
	var spec experiment.RepSpec
	var err error
	switch name {
	case "strategies":
		// Honor the strategy/horizon flags rather than the stock spec.
		spec = experiment.RepSpecStrategies(strategiesParams(strat, horizon))
	case "mechanisms":
		spec = experiment.RepSpecMechanisms(mechanismsParams(mechs))
	default:
		spec, err = experiment.DefaultRepSpec(name)
	}
	if err != nil {
		out, err := runExperiment(name, seed, csvDir, strat, horizon, mechs)
		if err != nil {
			return "", err
		}
		return "(deterministic experiment; single run)\n" + out, nil
	}
	agg, err := experiment.Replicate(spec, experiment.ReplicationConfig{
		Reps: reps, Parallel: parallel, BaseSeed: seed,
	})
	if err != nil {
		return "", err
	}
	if csvDir != "" {
		if err := agg.WriteCSV(csvDir); err != nil {
			return "", err
		}
	}
	return agg.String(), nil
}

// runExperiment dispatches one named experiment with the given seed and
// returns its printable result.
func runExperiment(name string, seed int64, csvDir string, strat string, horizon time.Duration, mechs string) (string, error) {
	switch name {
	case "mechanisms":
		p := mechanismsParams(mechs)
		p.World.Seed = seed
		res, err := experiment.RunMechanisms(p)
		if err != nil {
			return "", err
		}
		return "Clearing-rule comparison: proportional share vs posted price vs VCG\n" + res.String(), nil
	case "strategies":
		p := strategiesParams(strat, horizon)
		p.World.Seed = seed
		res, err := experiment.RunStrategies(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "Matchmaking strategy comparison on a bursty/steady partitioned grid\n" + res.String(), nil
	case "predictors":
		p := experiment.DefaultPredictorsParams()
		p.Scenario.World.Seed = seed
		if horizon > 0 {
			p.Scenario.Horizon = horizon
		}
		res, err := experiment.RunPredictors(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "Batch-refit vs streaming incremental prediction pipelines (paired seeds)\n" + res.String(), nil
	case "table1":
		p := experiment.Table1Params()
		p.World.Seed = seed
		res, err := experiment.RunBestResponseTable(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir, "table1.csv"); err != nil {
				return "", err
			}
		}
		return "Equal distribution of funds (paper Table 1)\n" + res.String(), nil
	case "table2":
		p := experiment.Table2Params()
		p.World.Seed = seed
		res, err := experiment.RunBestResponseTable(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir, "table2.csv"); err != nil {
				return "", err
			}
		}
		return "Two-point distribution of funds 100/100/500/500/500 (paper Table 2)\n" + res.String(), nil
	case "figure3":
		p := experiment.DefaultFigure3Params()
		p.Load.World.Seed = seed
		res, err := experiment.RunFigure3(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "Normal-distribution prediction with guarantee levels (paper Figure 3)\n" + res.String(), nil
	case "figure4":
		p := experiment.DefaultFigure4Params()
		p.Load.World.Seed = seed
		res, err := experiment.RunFigure4(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "AR(6) one-hour forecast vs persistence benchmark (paper Figure 4)\n" + res.String(), nil
	case "figure5":
		p := experiment.DefaultFigure5Params()
		p.Seed = seed
		res, err := experiment.RunFigure5(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "Risk-free portfolio vs equal shares (paper Figure 5)\n" + res.String(), nil
	case "figure6":
		p := experiment.DefaultFigure6Params()
		p.Load.World.Seed = seed
		res, err := experiment.RunFigure6(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "Price distribution in hour/day/week windows (paper Figure 6)\n" + res.String(), nil
	case "figure7":
		p := experiment.DefaultFigure7Params()
		p.Seed = seed
		res, err := experiment.RunFigure7(p)
		if err != nil {
			return "", err
		}
		if csvDir != "" {
			if err := res.WriteCSV(csvDir); err != nil {
				return "", err
			}
		}
		return "Window approximation of Normal/Exp/Beta inputs (paper Figure 7)\n" + res.String(), nil
	case "scale":
		p := experiment.DefaultScaleParams()
		p.World.Seed = seed
		res, err := experiment.RunScale(p)
		if err != nil {
			return "", err
		}
		return "Workload outcomes across auctioneer shard counts (marketplane)\n" + res.String(), nil
	case "ablation-scheduler":
		p := experiment.Table2Params()
		p.World.Seed = seed
		p.SubJobs = 30
		res, err := experiment.RunAblationScheduler(p)
		if err != nil {
			return "", err
		}
		return "Market vs FIFO batch scheduling on the Table 2 workload\n" + res.String(), nil
	case "ablation-cap":
		res, err := experiment.RunAblationCap()
		if err != nil {
			return "", err
		}
		return "Host-cap ranking: utility contribution vs raw bid size\n" + res.String(), nil
	case "ablation-smoothing":
		p := experiment.DefaultFigure4Params()
		p.Load.World.Seed = seed
		p.ResampleSnapshots = 1
		p.Lambda = 2000
		p.HorizonSteps = 360
		p.Stride = 360
		p.FitWindow = 17280
		res, err := experiment.RunAblationSmoothing(p)
		if err != nil {
			return "", err
		}
		return "AR smoothing pre-pass ablation (raw 10 s snapshots)\n" + res.String(), nil
	case "sla":
		p := experiment.DefaultSLAParams()
		p.Load.World.Seed = seed
		res, err := experiment.RunSLACalibration(p)
		if err != nil {
			return "", err
		}
		return "SLA pricing calibration, normal vs empirical model (paper §7 future work)\n" + res.String(), nil
	case "ablation-interval":
		res, err := experiment.RunAblationInterval([]time.Duration{
			10 * time.Second, time.Minute, 5 * time.Minute,
		})
		if err != nil {
			return "", err
		}
		return "Reallocation-interval sweep on the Table 2 workload\n" + res.String(), nil
	}
	return "", fmt.Errorf("unknown experiment %q", name)
}
