package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tycoongrid/internal/marketplane"
)

// scaleBenchFile is the serialized form of one benchmark sweep — the
// committed BENCH_scale.json artifact.
type scaleBenchFile struct {
	Hosts int                       `json:"hosts"`
	Jobs  int                       `json:"jobs"`
	Seed  int64                     `json:"seed"`
	Runs  []marketplane.BenchResult `json:"runs"`
}

// runScaleBench executes the horizontal-scale benchmark at each requested
// shard count, prints a summary table, and writes the sweep to outPath.
func runScaleBench(hosts, jobs int, shardsCSV, outPath string, seed int64) error {
	var shardCounts []int
	for _, f := range strings.Split(shardsCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -shards entry %q", f)
		}
		shardCounts = append(shardCounts, n)
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("empty -shards list")
	}

	file := scaleBenchFile{Hosts: hosts, Jobs: jobs, Seed: seed}
	var baseline float64 // 1-shard jobs/sec
	fmt.Printf("%-7s %12s %12s %14s %14s %9s\n",
		"shards", "jobs/sec", "clears/sec", "p50 bid (us)", "p99 bid (us)", "speedup")
	for _, n := range shardCounts {
		res, err := marketplane.RunScaleBench(marketplane.BenchConfig{
			Hosts: hosts, Jobs: jobs, Shards: n, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		if n == 1 {
			baseline = res.JobsPerSec
		}
		if baseline > 0 {
			res.SpeedupVsOneShard = res.JobsPerSec / baseline
		}
		file.Runs = append(file.Runs, res)
		speedup := "-"
		if res.SpeedupVsOneShard > 0 {
			speedup = fmt.Sprintf("%.2fx", res.SpeedupVsOneShard)
		}
		fmt.Printf("%-7d %12.0f %12.0f %14.1f %14.1f %9s\n",
			n, res.JobsPerSec, res.ClearsPerSec, res.P50BidMicros, res.P99BidMicros,
			speedup)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	return nil
}
