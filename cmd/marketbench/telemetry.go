package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tycoongrid/internal/metrics"
	"tycoongrid/internal/slo"
	"tycoongrid/internal/tsdb"
)

// telemetryFinish runs the end-of-run telemetry capture — two tsdb collects
// bracketing one SLO evaluation, so the derived :rate series and the slo_*
// gauge families all exist — and renders the final snapshot.
//
// Two renderings share the capture:
//
//   - full (single runs): the complete metrics snapshot with values, the
//     tsdb series with point counts, and the SLO table. Values include wall
//     timings, so this stays out of replicated output.
//   - deterministic (replicated runs): the telemetry *catalogue* — sorted
//     sample and series names plus per-objective status, no values. Which
//     families and series exist is a function of the seeded workload alone,
//     so replicated runs stay byte-identical across reruns and across any
//     -parallel worker count.
func telemetryFinish(deterministic bool) string {
	db := tsdb.NewDB(256)
	collector := tsdb.NewCollector(metrics.Default(), db, time.Now)
	collector.Collect() // seeds the rate baseline; stores gauges + quantiles
	eval := slo.New("marketbench", db, slo.DefaultObjectives())
	statuses := eval.Evaluate() // binds slo_* gauges into the default registry
	collector.Collect()         // second pass: derived :rate series + slo_* gauges

	var sb strings.Builder
	if deterministic {
		sb.WriteString("=== TELEMETRY CATALOGUE ===\n")
		snap := metrics.Default().Snapshot()
		var names []string
		for _, c := range snap.Counters {
			names = append(names, metrics.SampleName(c.Name, c.Labels))
		}
		for _, g := range snap.Gauges {
			names = append(names, metrics.SampleName(g.Name, g.Labels))
		}
		for _, h := range snap.Histograms {
			names = append(names, metrics.SampleName(h.Name, h.Labels))
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&sb, "metric %s\n", n)
		}
		for _, n := range db.Names() { // Names() comes back sorted
			fmt.Fprintf(&sb, "series %s\n", n)
		}
		for _, st := range statuses {
			fmt.Fprintf(&sb, "slo %s %s\n", st.Objective.Name, statusWord(st))
		}
		return sb.String()
	}

	sb.WriteString("=== METRICS SNAPSHOT ===\n")
	metrics.Default().Snapshot().WriteText(&sb)
	sb.WriteString("=== TSDB SERIES ===\n")
	for _, n := range db.Names() {
		s, ok := db.Lookup(n)
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "%s points=%d\n", n, len(s.Window(24*time.Hour)))
	}
	sb.WriteString("=== SLO ===\n")
	for _, st := range statuses {
		fmt.Fprintf(&sb, "%-24s %-8s burn_fast=%.3g burn_slow=%.3g samples=%d bad=%d\n",
			st.Objective.Name, statusWord(st), st.BurnFast, st.BurnSlow,
			st.Samples, st.BadSamples)
	}
	return sb.String()
}

func statusWord(st slo.Status) string {
	switch {
	case st.Violating:
		return "VIOLATING"
	case st.NoData:
		return "no-data"
	default:
		return "ok"
	}
}
