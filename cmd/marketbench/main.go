// Command marketbench regenerates every table and figure of the paper's
// evaluation section on the simulated grid market. Each experiment prints
// rows shaped like the paper's artifact; see EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	marketbench -run all            # everything (default)
//	marketbench -run table1         # Table 1: equal funding
//	marketbench -run table2         # Table 2: two-point funding
//	marketbench -run figure3        # normal-distribution prediction
//	marketbench -run figure4        # AR(6) forecast vs persistence
//	marketbench -run figure5        # risk-free vs equal-share portfolio
//	marketbench -run figure6        # hour/day/week price distributions
//	marketbench -run figure7        # window approximation accuracy
//	marketbench -seed 2006          # alternate RNG seed
//	marketbench -reps 8 -parallel 4 # 8 seeded replications on 4 workers
//
// Horizontal-scale benchmark mode (enabled by -hosts > 0): pushes a synthetic
// bid workload through the sharded market plane at each requested shard count
// and records throughput, clear rate and bid latency into BENCH_scale.json:
//
//	marketbench -hosts 10000 -jobs 1000000 -shards 1,2,4,8
//	marketbench -hosts 200 -jobs 2000 -shards 4 -bench-out /dev/null  # smoke
//
// Forecast-throughput benchmark mode (-bench predict): measures the legacy
// batch copy-and-refit prediction pipeline against the streaming incremental
// predictors at each host-stream count and records ns/op + allocs/op into
// BENCH_predict.json (gated by cmd/benchguard):
//
//	marketbench -bench predict -bench-hosts 100,1000,10000 -forecasts 2000
//	marketbench -bench predict -bench-hosts 100 -forecasts 200 -bench-out ""  # smoke
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"tycoongrid/internal/tracing"
)

func main() {
	run := flag.String("run", "all",
		"experiment: all|table1|table2|figure3|...|figure7|strategies|predictors|mechanisms|ablation-scheduler|ablation-cap|ablation-smoothing|ablation-interval")
	experimentAlias := flag.String("experiment", "", "alias for -run")
	seed := flag.Int64("seed", 2006, "RNG seed for all experiments")
	csvDir := flag.String("csv", "", "directory to write plot-ready CSV files (optional)")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	reps := flag.Int("reps", 1, "independent replications per experiment (1 = single run)")
	parallel := flag.Int("parallel", 0, "replication workers; 0 = GOMAXPROCS (output is identical for any value)")
	strat := flag.String("strategy", "",
		"strategies experiment: comma-separated matchmaking strategies to compare (default all registered)")
	mechs := flag.String("mechanism", "",
		"mechanisms experiment: comma-separated clearing rules to compare (default all registered)")
	horizon := flag.Duration("horizon", 0,
		"strategies experiment: forecast horizon (0 = experiment default)")
	benchMode := flag.String("bench", "",
		"micro-benchmark mode: predict (forecast throughput, BENCH_predict.json); empty = run experiments")
	benchHosts := flag.Int("hosts", 0,
		"scale benchmark: host markets (> 0 switches to benchmark mode)")
	benchJobs := flag.Int("jobs", 1_000_000, "scale benchmark: bids pushed through the plane")
	benchShards := flag.String("shards", "1,2,4,8",
		"scale benchmark: comma-separated auctioneer shard counts")
	benchOut := flag.String("bench-out", "",
		"benchmark output JSON path (default BENCH_scale.json / BENCH_predict.json per mode; empty string after an explicit -bench-out= means don't write)")
	predictHosts := flag.String("bench-hosts", "100,1000,10000",
		"predict benchmark: comma-separated host-stream counts")
	forecasts := flag.Int("forecasts", 2000,
		"predict benchmark: forecast reads measured per host count")
	flag.Parse()
	if *experimentAlias != "" {
		run = experimentAlias
	}
	tracing.InitSlog("marketbench", os.Stderr, slog.LevelWarn)
	tracing.Default().SetSampleRatio(*traceRatio)

	benchOutSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "bench-out" {
			benchOutSet = true
		}
	})
	outPath := func(def string) string {
		if benchOutSet {
			return *benchOut
		}
		return def
	}

	switch *benchMode {
	case "predict":
		if err := runPredictBench(*predictHosts, *forecasts, outPath("BENCH_predict.json"), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "marketbench: predict bench: %v\n", err)
			os.Exit(1)
		}
		return
	case "":
	default:
		fmt.Fprintf(os.Stderr, "marketbench: unknown -bench mode %q (want predict)\n", *benchMode)
		os.Exit(1)
	}

	if *benchHosts > 0 {
		if err := runScaleBench(*benchHosts, *benchJobs, *benchShards, outPath("BENCH_scale.json"), *seed); err != nil {
			fmt.Fprintf(os.Stderr, "marketbench: scale bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := []string{
		"table1", "table2", "figure3", "figure4", "figure5", "figure6", "figure7",
		"strategies", "predictors", "scale", "mechanisms",
		"ablation-scheduler", "ablation-cap", "ablation-smoothing", "ablation-interval",
		"sla",
	}
	if *run != "all" {
		found := false
		for _, n := range names {
			if n == *run {
				names = []string{n}
				found = true
				break
			}
		}
		if !found {
			slog.Error("marketbench: unknown experiment", "run", *run)
			os.Exit(1)
		}
	}
	for _, name := range names {
		fmt.Printf("=== %s ===\n", strings.ToUpper(name))
		start := time.Now()
		span, _ := tracing.Default().StartSpan(context.Background(), "experiment."+name)
		release := tracing.Default().PushScope(span)
		var out string
		var err error
		if *reps > 1 {
			out, err = runReplicated(name, *seed, *csvDir, *reps, *parallel, *strat, *horizon, *mechs)
		} else {
			out, err = runExperiment(name, *seed, *csvDir, *strat, *horizon, *mechs)
		}
		release()
		if err != nil {
			span.EndErr(err)
			fmt.Fprintf(os.Stderr, "marketbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		span.End()
		fmt.Print(out)
		if *reps > 1 {
			// Keep wall-clock noise off stdout so replicated output is
			// byte-for-byte comparable across runs and worker counts.
			fmt.Println()
			fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", name, time.Since(start).Seconds())
		} else {
			fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
	}

	// Every experiment above drove the instrumented market internals
	// (auction clears, bank moves, grid ticks), so the final telemetry of
	// the run is a free by-product: the metrics snapshot plus the tsdb
	// series and SLO statuses the end-of-run capture derives from it. When
	// replicating, concurrent worlds interleave writes into the process-wide
	// registry and values depend on completion order, so the replicated
	// output carries only the telemetry catalogue — sorted names and
	// statuses, byte-identical across reruns and worker counts.
	fmt.Print(telemetryFinish(*reps > 1))

	// Each experiment ran under its own root span; the slowest one is the
	// optimization target, so dump its tree as the run's parting diagnostic.
	// Trace IDs and durations are run-dependent, so this too stays out of
	// the replicated (deterministic) output.
	if *reps <= 1 {
		if sum, ok := tracing.Default().Slowest(); ok {
			fmt.Println("=== SLOWEST TRACE ===")
			fmt.Print(tracing.RenderTree(tracing.Default().Spans(sum.TraceID)))
		}
	}
}
