// Command bankd runs the Tycoon Bank as an HTTP daemon: accounts bound to
// Ed25519 keys, owner-signed transfers, bank-signed receipts, and an audit
// ledger. See README.md for the API surface.
//
// Usage:
//
//	bankd -addr :7700 -dn "/O=Grid/CN=Bank" [-keyseed secret]
//
// With -keyseed the bank's signing key is derived deterministically (useful
// for reproducible testbeds); otherwise a fresh random key is generated and
// its public half printed at startup.
package main

import (
	"crypto/sha256"
	"flag"
	"log/slog"
	"os"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":7700", "listen address")
	dn := flag.String("dn", "/O=Grid/CN=Bank", "bank distinguished name")
	keyseed := flag.String("keyseed", "", "optional deterministic key seed")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()
	tracing.InitSlog("bankd", os.Stderr, slog.LevelInfo)
	tracing.Default().SetSampleRatio(*traceRatio)

	ca, id, err := identityFor(*dn, *keyseed)
	if err != nil {
		slog.Error("bankd: identity setup failed", "err", err)
		os.Exit(1)
	}
	_ = ca
	b := bank.New(id, sim.WallClock{})
	svc := httpapi.NewBankService(b)

	// The bank has no upstream dependencies; it is ready as soon as it binds.
	health := httpapi.NewHealth("bankd")
	opts := []httpapi.MuxOption{httpapi.WithHealth(health)}
	if *pprofOn {
		opts = append(opts, httpapi.WithPprof())
	}

	slog.Info("bankd: listening", "addr", *addr,
		"receipt_key", httpapi.EncodeKey(b.PublicKey()))
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("bankd", svc, opts...), health.StartDrain); err != nil {
		slog.Error("bankd: serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("bankd: shut down cleanly")
}

// identityFor builds a self-contained identity for a standalone daemon: a
// one-off CA issues the daemon's certificate (daemons trust each other via
// exchanged public keys, not the throwaway CA).
func identityFor(dn, keyseed string) (*pki.CA, *pki.Identity, error) {
	if keyseed != "" {
		seed := sha256.Sum256([]byte(keyseed))
		ca, err := pki.NewDeterministicCA(pki.DN(dn), seed)
		if err != nil {
			return nil, nil, err
		}
		caSeed := sha256.Sum256([]byte(keyseed + "/service"))
		id, err := ca.IssueDeterministic(pki.DN(dn), caSeed)
		return ca, id, err
	}
	ca, err := pki.NewCA(pki.DN(dn))
	if err != nil {
		return nil, nil, err
	}
	id, err := ca.Issue(pki.DN(dn))
	return ca, id, err
}
