// Command bankd runs the Tycoon Bank as an HTTP daemon: accounts bound to
// Ed25519 keys, owner-signed transfers, bank-signed receipts, and an audit
// ledger. See README.md for the API surface.
//
// Usage:
//
//	bankd -addr :7700 -dn "/O=Grid/CN=Bank" [-keyseed secret]
//	bankd -addr :7700 -data-dir /var/lib/bankd -fsync always
//
// With -keyseed the bank's signing key is derived deterministically (useful
// for reproducible testbeds); otherwise a fresh random key is generated and
// its public half printed at startup.
//
// With -data-dir the ledger is durable: every mutation is journaled to a
// write-ahead log under that directory before it is acknowledged, snapshots
// bound the log, and a restart recovers the exact acknowledged state. The
// bank's signing key is persisted alongside (identity.seed) so receipts
// issued before a crash still verify after it. Without -data-dir the bank is
// purely in-memory, exactly as before. While recovery runs, /healthz/ready
// and every API route answer 503.
package main

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/durable"
	"tycoongrid/internal/fault"
	"tycoongrid/internal/fault/failpoint"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/telemetry"
	"tycoongrid/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":7700", "listen address")
	dn := flag.String("dn", "/O=Grid/CN=Bank", "bank distinguished name")
	keyseed := flag.String("keyseed", "", "optional deterministic key seed")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	dataDir := flag.String("data-dir", "",
		"directory for the durable ledger (WAL + snapshots); empty = in-memory")
	fsyncMode := flag.String("fsync", "interval",
		"WAL fsync policy with -data-dir: always|interval|none")
	fsyncEvery := flag.Duration("fsync-interval", durable.DefaultInterval,
		"flush period for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", bank.DefaultSnapshotEvery,
		"records between snapshots with -data-dir")
	scrapeEvery := flag.Duration("scrape-interval", telemetry.DefaultScrapeInterval,
		"self-scrape cadence feeding /metrics/history and the SLO evaluator")
	flag.Parse()
	tracing.InitSlog("bankd", os.Stderr, slog.LevelInfo)
	tracing.Default().SetSampleRatio(*traceRatio)
	if n, err := failpoint.ArmFromEnv(); err != nil {
		slog.Error("bankd: bad failpoint spec", "err", err)
		os.Exit(1)
	} else if n > 0 {
		slog.Warn("bankd: crash failpoints armed", "count", n)
	}

	seed := *keyseed
	if *dataDir != "" {
		var err error
		if seed, err = persistentKeySeed(*dataDir, seed); err != nil {
			slog.Error("bankd: key seed setup failed", "err", err)
			os.Exit(1)
		}
	}
	ca, id, err := identityFor(*dn, seed)
	if err != nil {
		slog.Error("bankd: identity setup failed", "err", err)
		os.Exit(1)
	}
	_ = ca
	b := bank.New(id, sim.WallClock{})
	svc := httpapi.NewBankService(b)

	var health *httpapi.Health
	var store *durable.Store
	if *dataDir == "" {
		// No upstream dependencies and nothing to recover: ready at bind.
		health = httpapi.NewHealth("bankd")
	} else {
		health = httpapi.NewHealth("bankd", "wal")
		policy, err := durable.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			slog.Error("bankd: bad -fsync", "err", err)
			os.Exit(1)
		}
		store, err = durable.Open(*dataDir, durable.Options{Sync: policy, Interval: *fsyncEvery})
		if err != nil {
			slog.Error("bankd: open data dir", "err", err)
			os.Exit(1)
		}
		// Recover concurrently with binding the listener: until replay
		// finishes, the readiness probe and every API route answer 503, so
		// clients see "starting" instead of connection-refused during long
		// recoveries.
		go func() {
			start := time.Now()
			stats, err := b.AttachDurability(store, *snapshotEvery)
			if err != nil {
				slog.Error("bankd: recovery failed", "err", err)
				os.Exit(1)
			}
			health.MarkReady("wal")
			slog.Info("bankd: recovered",
				"records", stats.Records,
				"snapshot_bytes", stats.SnapshotBytes,
				"truncated_bytes", stats.TruncatedBytes,
				"took", time.Since(start),
				"fsync", policy.String())
		}()
	}

	// Telemetry plane: self-scrape into the embedded tsdb, evaluate the
	// stock SLOs (the conservation probe recomputes the drift gauge each
	// tick), and expose /metrics/history + /slo.
	plane := telemetry.NewPlane(telemetry.Config{
		Service:  "bankd",
		Interval: *scrapeEvery,
		Probes:   []func(){b.RecordConservation},
	})
	stopTelemetry := make(chan struct{})
	go plane.Run(stopTelemetry)

	opts := []httpapi.MuxOption{httpapi.WithHealth(health)}
	opts = append(opts, plane.MuxOptions()...)
	if *pprofOn {
		opts = append(opts, httpapi.WithPprof())
	}

	var app = health.GateUntilReady(svc)
	if ccfg, armed, cerr := fault.HandlerFromEnv(); cerr != nil {
		slog.Error("bankd: bad chaos handler spec", "err", cerr)
		os.Exit(1)
	} else if armed {
		slog.Warn("bankd: handler chaos armed",
			"max_latency", ccfg.MaxLatency, "error_rate", ccfg.ErrorRate)
		app = fault.Handler(ccfg, app)
	}

	slog.Info("bankd: listening", "addr", *addr,
		"receipt_key", httpapi.EncodeKey(b.PublicKey()))
	err = httpapi.Serve(*addr,
		httpapi.ObservedMux("bankd", app, opts...),
		func() {
			close(stopTelemetry)
			health.StartDrain()
			if store != nil {
				if cerr := store.Close(); cerr != nil {
					slog.Error("bankd: wal close failed", "err", cerr)
				}
			}
		})
	if err != nil {
		slog.Error("bankd: serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("bankd: shut down cleanly")
}

// persistentKeySeed makes the bank's signing identity survive restarts: the
// seed is stored in dataDir/identity.seed on first boot and read back on
// every later one, so receipts issued before a crash verify after it. An
// explicit -keyseed wins (and is persisted for consistency checking).
func persistentKeySeed(dataDir, explicit string) (string, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dataDir, "identity.seed")
	existing, err := os.ReadFile(path)
	switch {
	case err == nil:
		stored := string(existing)
		if explicit != "" && explicit != stored {
			return "", fmt.Errorf("-keyseed differs from %s; refusing to switch signing keys over durable state", path)
		}
		return stored, nil
	case os.IsNotExist(err):
		seed := explicit
		if seed == "" {
			var raw [32]byte
			if _, err := rand.Read(raw[:]); err != nil {
				return "", err
			}
			seed = hex.EncodeToString(raw[:])
		}
		if err := os.WriteFile(path, []byte(seed), 0o600); err != nil {
			return "", err
		}
		return seed, nil
	default:
		return "", err
	}
}

// identityFor builds a self-contained identity for a standalone daemon: a
// one-off CA issues the daemon's certificate (daemons trust each other via
// exchanged public keys, not the throwaway CA).
func identityFor(dn, keyseed string) (*pki.CA, *pki.Identity, error) {
	if keyseed != "" {
		seed := sha256.Sum256([]byte(keyseed))
		ca, err := pki.NewDeterministicCA(pki.DN(dn), seed)
		if err != nil {
			return nil, nil, err
		}
		caSeed := sha256.Sum256([]byte(keyseed + "/service"))
		id, err := ca.IssueDeterministic(pki.DN(dn), caSeed)
		return ca, id, err
	}
	ca, err := pki.NewCA(pki.DN(dn))
	if err != nil {
		return nil, nil, err
	}
	id, err := ca.Issue(pki.DN(dn))
	return ca, id, err
}
