package main

// Crash-storm test: run the real bankd binary against a durable data dir,
// SIGKILL it mid-traffic over and over (sometimes via externally-timed
// kills, sometimes via failpoints armed inside the WAL append/fsync/snapshot
// paths), and verify after the dust settles that money is exactly conserved,
// no escrow hold is orphaned, and no acknowledged transfer was applied
// twice.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/fault/failpoint"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/pki"
)

var stormCycles = flag.Int("storm.cycles", 20, "SIGKILL/restart cycles in TestCrashStorm")

// stormProc manages one bankd process lifetime. A reaper goroutine owns
// Wait, so both "we killed it" and "a failpoint killed it" end up in the
// same done channel.
type stormProc struct {
	bin     string
	addr    string
	dataDir string
	cmd     *exec.Cmd
	done    chan struct{}
}

func (p *stormProc) start(t *testing.T, failpoints string) {
	t.Helper()
	cmd := exec.Command(p.bin,
		"-addr", p.addr,
		"-data-dir", p.dataDir,
		"-fsync", "always",
		"-keyseed", "storm",
		"-snapshot-every", "64",
		"-trace", "0",
	)
	cmd.Env = append(os.Environ(), failpoint.EnvVar+"="+failpoints)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start bankd: %v", err)
	}
	p.cmd = cmd
	p.done = make(chan struct{})
	go func(c *exec.Cmd, done chan struct{}) {
		c.Wait()
		close(done)
	}(cmd, p.done)
}

// kill SIGKILLs the process (tolerating one that already crashed itself via
// a failpoint) and waits for the reaper.
func (p *stormProc) kill() {
	p.cmd.Process.Signal(syscall.SIGKILL)
	<-p.done
	p.cmd = nil
}

// waitReady polls the readiness probe. It returns false early if the
// process dies first (a failpoint fired during startup or recovery).
func (p *stormProc) waitReady(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	url := "http://" + p.addr + "/healthz/ready"
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		select {
		case <-p.done:
			return false
		case <-time.After(5 * time.Millisecond):
		}
	}
	return false
}

// stormClient is a minimal retrying JSON client: the storm keeps killing the
// server, so every call loops until it gets a definitive HTTP status or the
// stop channel closes.
type stormClient struct {
	base string
	stop <-chan struct{}
}

var errStormStopped = errors.New("storm finished")

func (c *stormClient) do(method, path string, body, out any) (int, error) {
	var payload []byte
	if body != nil {
		payload, _ = json.Marshal(body)
	}
	for {
		select {
		case <-c.stop:
			return 0, errStormStopped
		default:
		}
		req, err := http.NewRequest(method, c.base+path, bytes.NewReader(payload))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			time.Sleep(5 * time.Millisecond) // server is down; wait out the restart
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			time.Sleep(5 * time.Millisecond) // recovering; not an answer yet
			continue
		}
		if resp.StatusCode/100 != 2 {
			return resp.StatusCode, fmt.Errorf("%s %s: %d %s", method, path, resp.StatusCode, data)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}
}

func transferWire(req bank.TransferRequest) httpapi.TransferWire {
	return httpapi.TransferWire{
		From:   string(req.From),
		To:     string(req.To),
		Amount: req.Amount.String(),
		Nonce:  req.Nonce,
		Sig:    base64.RawURLEncoding.EncodeToString(req.Sig),
	}
}

func TestCrashStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("crash storm builds and repeatedly kills a real bankd binary")
	}
	bin := filepath.Join(t.TempDir(), "bankd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build bankd: %v\n%s", err, out)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	proc := &stormProc{bin: bin, addr: addr, dataDir: t.TempDir()}
	proc.start(t, "")
	if !proc.waitReady(10 * time.Second) {
		t.Fatal("bankd never became ready")
	}
	defer func() {
		if proc.cmd != nil {
			proc.kill()
		}
	}()

	// Client-side identities; the bank only ever sees public keys.
	ca, err := pki.NewDeterministicCA("/CN=StormCA", [32]byte{41})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.IssueDeterministic("/CN=Alice", [32]byte{42})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	boot := &stormClient{base: "http://" + addr, stop: stop}
	for _, id := range []string{"alice", "bob"} {
		if _, err := boot.do("POST", "/accounts", httpapi.CreateAccountRequest{
			ID: id, OwnerKey: httpapi.EncodeKey(alice.Public()),
		}, nil); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
	}
	const deposit = 100_000
	if _, err := boot.do("POST", "/deposits", httpapi.DepositRequest{
		ID: "alice", Amount: (deposit * bank.Credit).String(), Memo: "storm seed",
	}, nil); err != nil {
		t.Fatalf("deposit: %v", err)
	}

	// Acknowledged state, for the post-storm audit.
	var mu sync.Mutex
	acked := map[string]struct {
		wire    httpapi.TransferWire
		receipt httpapi.ReceiptWire
	}{}
	prepares := 0

	var wg sync.WaitGroup

	// Plain-transfer worker: every acknowledged receipt is recorded so it
	// can be replay-audited after the storm. Retried POSTs whose first
	// attempt actually landed are answered from the receipt store, so any
	// non-2xx here is a real bug.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &stormClient{base: "http://" + addr, stop: stop}
		for i := 0; ; i++ {
			req := bank.TransferRequest{
				From: "alice", To: "bob",
				Amount: bank.Amount(1+i%5) * bank.Credit,
				Nonce:  fmt.Sprintf("t-%04d", i),
			}
			req.Sig = alice.Sign(req.SigningBytes())
			wire := transferWire(req)
			var rc httpapi.ReceiptWire
			if _, err := c.do("POST", "/transfers", wire, &rc); err != nil {
				if !errors.Is(err, errStormStopped) {
					t.Errorf("transfer %s: %v", req.Nonce, err)
				}
				return
			}
			mu.Lock()
			acked[req.Nonce] = struct {
				wire    httpapi.TransferWire
				receipt httpapi.ReceiptWire
			}{wire, rc}
			mu.Unlock()
		}
	}()

	// Two-phase worker: drives holds through the full protocol so kills
	// land inside every window (post-prepare, post-commit, post-credit).
	// Because a kill can eat the response to an applied step, retried steps
	// legitimately answer 409 (prepare: duplicate hold) or 404 (abort /
	// finalize: hold already gone); those statuses mean "already done".
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &stormClient{base: "http://" + addr, stop: stop}
		step := func(path string, body any, alreadyDone ...int) bool {
			status, err := c.do("POST", path, body, nil)
			if err == nil {
				return true
			}
			if errors.Is(err, errStormStopped) {
				return false
			}
			for _, s := range alreadyDone {
				if status == s {
					return true
				}
			}
			t.Errorf("%s: %v", path, err)
			return false
		}
		for j := 0; ; j++ {
			tx := fmt.Sprintf("p-%04d", j)
			req := bank.TransferRequest{
				From: "alice", To: "bob",
				Amount: bank.Amount(1+j%3) * bank.Credit,
				Nonce:  tx,
			}
			req.Sig = alice.Sign(req.SigningBytes())
			if !step("/tx/prepare", transferWire(req), http.StatusConflict) {
				return
			}
			mu.Lock()
			prepares++
			mu.Unlock()
			if j%3 == 0 {
				if !step("/tx/"+tx+"/abort", nil, http.StatusNotFound) {
					return
				}
				continue
			}
			if !step("/tx/"+tx+"/commit", nil) {
				return
			}
			if !step("/tx/"+tx+"/credit", nil) {
				return
			}
			if !step("/tx/"+tx+"/finalize", nil, http.StatusNotFound) {
				return
			}
		}
	}()

	// The storm: alternate externally-timed SIGKILLs with failpoint-armed
	// runs that crash inside the durability layer itself.
	rng := rand.New(rand.NewSource(4117))
	for cycle := 0; cycle < *stormCycles; cycle++ {
		time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
		proc.kill()

		var failpoints string
		switch cycle % 3 {
		case 1:
			failpoints = fmt.Sprintf("durable.wal.append=0.002@%d,durable.wal.sync=0.002@%d",
				cycle, cycle+1000)
		case 2:
			failpoints = fmt.Sprintf("durable.snapshot.written=0.05@%d,durable.snapshot.rotate=0.05@%d",
				cycle, cycle+2000)
		}
		proc.start(t, failpoints)
		if !proc.waitReady(10 * time.Second) {
			// The failpoint fired during startup or recovery; restart clean.
			proc.kill()
			proc.start(t, "")
			if !proc.waitReady(10 * time.Second) {
				t.Fatalf("cycle %d: bankd did not recover", cycle)
			}
		}
	}

	close(stop)
	wg.Wait()

	// One final clean restart, then audit.
	proc.kill()
	proc.start(t, "")
	if !proc.waitReady(10 * time.Second) {
		t.Fatal("bankd did not recover for the audit")
	}
	audit := &stormClient{base: "http://" + addr, stop: make(chan struct{})}

	// Resolve every in-doubt hold the way a recovering coordinator would:
	// committed holds complete, uncommitted holds abort.
	var holds []httpapi.HoldWire
	if _, err := audit.do("GET", "/tx", nil, &holds); err != nil {
		t.Fatalf("list holds: %v", err)
	}
	resolved := len(holds)
	for _, h := range holds {
		if h.Committed {
			if _, err := audit.do("POST", "/tx/"+h.TX+"/credit", nil, nil); err != nil {
				t.Errorf("credit %s: %v", h.TX, err)
			}
			if _, err := audit.do("POST", "/tx/"+h.TX+"/finalize", nil, nil); err != nil {
				t.Errorf("finalize %s: %v", h.TX, err)
			}
		} else {
			if _, err := audit.do("POST", "/tx/"+h.TX+"/abort", nil, nil); err != nil {
				t.Errorf("abort %s: %v", h.TX, err)
			}
		}
	}

	// No orphaned escrow holds.
	holds = nil
	if _, err := audit.do("GET", "/tx", nil, &holds); err != nil {
		t.Fatal(err)
	}
	if len(holds) != 0 {
		t.Errorf("%d orphaned holds after resolution: %+v", len(holds), holds)
	}

	// Money exactly conserved: every credit deposited is still there, no
	// matter where the kills landed.
	var totals httpapi.TotalsResponse
	if _, err := audit.do("GET", "/total", nil, &totals); err != nil {
		t.Fatal(err)
	}
	if want := (deposit * bank.Credit).String(); totals.Conserved != want {
		t.Errorf("conserved = %s (total %s held %s landed %s), want %s",
			totals.Conserved, totals.Total, totals.Held, totals.Landed, want)
	}

	// No duplicate receipt application: replaying every acknowledged
	// transfer returns the original bank signature (stored receipt), and the
	// replays move no money.
	var before httpapi.AccountInfo
	if _, err := audit.do("GET", "/accounts/bob", nil, &before); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	t.Logf("storm summary: %d cycles, %d acked transfers, %d acked prepares, %d in-doubt holds resolved",
		*stormCycles, len(acked), prepares, resolved)
	for nonce, a := range acked {
		var rc httpapi.ReceiptWire
		if _, err := audit.do("POST", "/transfers", a.wire, &rc); err != nil {
			t.Fatalf("replay %s: %v", nonce, err)
		}
		if rc.BankSig != a.receipt.BankSig {
			t.Errorf("transfer %s: replayed receipt differs — applied more than once?", nonce)
		}
	}
	mu.Unlock()
	var after httpapi.AccountInfo
	if _, err := audit.do("GET", "/accounts/bob", nil, &after); err != nil {
		t.Fatal(err)
	}
	if before.Balance != after.Balance {
		t.Errorf("replay audit moved money: bob %s -> %s", before.Balance, after.Balance)
	}
}
