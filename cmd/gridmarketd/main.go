// Command gridmarketd runs the complete grid market in one process — PKI,
// bank, a simulated Tycoon cluster, the best-response scheduling agent and
// the ARC-analog job manager — served over HTTP with the cluster advancing
// in real time. It is the quickest way to poke at the whole system with
// nothing but curl:
//
//	gridmarketd -addr :7750 -hosts 8 &
//
//	# create a funded demo user (demo keys live server-side; see
//	# examples/quickstart for the production local-key flow)
//	curl -X POST localhost:7750/demo/users -d '{"name":"alice","grant":"500"}'
//
//	# mint a transfer token for 50 credits
//	TOKEN=$(curl -sX POST localhost:7750/demo/tokens \
//	    -d '{"user":"alice","amount":"50"}' | sed 's/.*"token":"//;s/".*//')
//
//	# submit a 4-node proteome-scan style job
//	curl -X POST localhost:7750/jobs --data-binary \
//	  "&(executable=scan.sh)(jobname=demo)(count=4)(cputime=2)(walltime=30)(transfertoken=$TOKEN)"
//
//	# watch it run
//	curl localhost:7750/jobs
//	curl localhost:7750/monitor
//	curl localhost:7750/bank/accounts/alice
package main

import (
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/box"
	"tycoongrid/internal/durable"
	"tycoongrid/internal/fault"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/mechanism"
	"tycoongrid/internal/telemetry"
	"tycoongrid/internal/token"
	"tycoongrid/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":7750", "listen address")
	hosts := flag.Int("hosts", 8, "simulated hosts")
	cpus := flag.Int("cpus", 2, "CPUs per host")
	mhz := flag.Float64("mhz", 2800, "MHz per CPU")
	interval := flag.Duration("interval", 10*time.Second, "market reallocation interval")
	speedup := flag.Float64("speedup", 60, "simulated seconds per wall second")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	partitions := flag.Int("partitions", 1,
		"agent partitions under the meta-scheduler (1 = single agent; hosts must divide evenly)")
	strategyName := flag.String("strategy", "",
		"meta-scheduler matchmaking strategy: current-price|predicted-mean|predicted-quantile|portfolio")
	horizon := flag.Duration("horizon", 30*time.Minute, "forecast horizon for prediction strategies")
	mechName := flag.String("mechanism", mechanism.Proportional,
		"host market clearing rule: "+strings.Join(mechanism.Names(), "|"))
	dataDir := flag.String("data-dir", "",
		"directory for the broker's durable spent-token log; empty = in-memory (spent ids lost on restart)")
	scrapeEvery := flag.Duration("scrape-interval", telemetry.DefaultScrapeInterval,
		"self-scrape cadence feeding /metrics/history and the SLO evaluator")
	flag.Parse()
	tracing.InitSlog("gridmarketd", os.Stderr, slog.LevelInfo)
	if *speedup <= 0 {
		slog.Error("gridmarketd: -speedup must be positive")
		os.Exit(1)
	}
	tracing.Default().SetSampleRatio(*traceRatio)

	cfg := box.DefaultConfig()
	cfg.Hosts = *hosts
	cfg.CPUsPerHost = *cpus
	cfg.CPUMHz = *mhz
	cfg.Interval = *interval
	cfg.Start = time.Now()
	cfg.Partitions = *partitions
	cfg.Strategy = *strategyName
	cfg.Horizon = *horizon
	cfg.Mechanism = *mechName
	if *dataDir != "" {
		st, err := durable.Open(*dataDir, durable.Options{Sync: durable.SyncInterval})
		if err != nil {
			slog.Error("gridmarketd: open data dir", "err", err)
			os.Exit(1)
		}
		defer st.Close()
		spent, err := token.NewDurableSpentStore(st, 0)
		if err != nil {
			slog.Error("gridmarketd: recover spent-token log", "err", err)
			os.Exit(1)
		}
		cfg.SpentStore = spent
		slog.Info("gridmarketd: durable spent-token log", "dir", *dataDir)
	}
	b, err := box.New(cfg)
	if err != nil {
		slog.Error("gridmarketd: box construction failed", "err", err)
		os.Exit(1)
	}
	jobs, err := httpapi.NewJobService(b.Scheduler(), b.Engine)
	if err != nil {
		slog.Error("gridmarketd: job service construction failed", "err", err)
		os.Exit(1)
	}

	// Readiness gates on the simulation pump having advanced the engine at
	// least once, so early requests never race the first reallocation.
	health := httpapi.NewHealth("gridmarketd", "engine")

	// Drive the simulation along the wall clock, accelerated: one wall
	// second advances the market by -speedup simulated seconds, so a
	// "2-CPU-minute" demo job completes in a couple of wall seconds.
	go func() {
		wallStart := time.Now()
		simStart := cfg.Start
		for range time.Tick(200 * time.Millisecond) {
			elapsed := time.Since(wallStart)
			jobs.Drive(simStart.Add(time.Duration(float64(elapsed) * *speedup)))
			health.MarkReady("engine")
		}
	}()

	demo := &demoAPI{box: b, jobs: jobs}
	mux := http.NewServeMux()
	mux.Handle("/jobs", jobs)
	mux.Handle("/jobs/", jobs) // subtree: GET /jobs/{id}/timeline
	mux.Handle("/boosts", jobs)
	mux.Handle("/cancels", jobs)
	mux.Handle("/monitor", jobs)
	mux.Handle("/bank/", http.StripPrefix("/bank", httpapi.NewBankService(b.Bank)))
	mux.HandleFunc("POST /demo/users", demo.createUser)
	mux.HandleFunc("POST /demo/tokens", demo.mintToken)

	// Telemetry plane: self-scrape into the embedded tsdb, evaluate the
	// stock SLOs, expose /metrics/history + /slo. The conservation probe
	// runs against the box's single in-process bank.
	plane := telemetry.NewPlane(telemetry.Config{
		Service:  "gridmarketd",
		Interval: *scrapeEvery,
		Probes:   []func(){b.Bank.RecordConservation},
	})
	stopTelemetry := make(chan struct{})
	go plane.Run(stopTelemetry)

	opts := []httpapi.MuxOption{httpapi.WithHealth(health)}
	opts = append(opts, plane.MuxOptions()...)
	if *pprofOn {
		opts = append(opts, httpapi.WithPprof())
	}

	var app http.Handler = mux
	if ccfg, armed, cerr := fault.HandlerFromEnv(); cerr != nil {
		slog.Error("gridmarketd: bad chaos handler spec", "err", cerr)
		os.Exit(1)
	} else if armed {
		slog.Warn("gridmarketd: handler chaos armed",
			"max_latency", ccfg.MaxLatency, "error_rate", ccfg.ErrorRate)
		app = fault.Handler(ccfg, app)
	}

	drain := func() {
		close(stopTelemetry)
		health.StartDrain()
	}
	slog.Info("gridmarketd: listening",
		"hosts", *hosts, "cpus", *cpus, "speedup", *speedup, "addr", *addr)
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("gridmarketd", app, opts...), drain); err != nil {
		slog.Error("gridmarketd: serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("gridmarketd: shut down cleanly")
}

// demoAPI mints server-side demo identities; the box serializes access to
// the single-threaded engine through the job service lock, so the demo API
// needs its own mutex only for the box's user map.
type demoAPI struct {
	mu   sync.Mutex
	box  *box.Box
	jobs *httpapi.JobService
}

type userReq struct {
	Name  string `json:"name"`
	Grant string `json:"grant"`
}

type tokenReq struct {
	User   string `json:"user"`
	Amount string `json:"amount"`
}

func (d *demoAPI) createUser(w http.ResponseWriter, r *http.Request) {
	var req userReq
	if err := httpapi.ReadJSON(r, &req); err != nil {
		httpapi.WriteError(w, httpapi.ReadStatus(err), err)
		return
	}
	grant, err := bank.ParseAmount(req.Grant)
	if err != nil || grant < 0 {
		httpapi.WriteError(w, http.StatusBadRequest, errors.New("gridmarketd: bad grant amount"))
		return
	}
	d.mu.Lock()
	var u *box.User
	d.jobs.WithLock(func() { u, err = d.box.CreateUser(req.Name, grant) })
	d.mu.Unlock()
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, err)
		return
	}
	httpapi.WriteJSON(w, map[string]string{
		"name": u.Name, "account": string(u.Account), "grant": grant.String(),
	})
}

func (d *demoAPI) mintToken(w http.ResponseWriter, r *http.Request) {
	var req tokenReq
	if err := httpapi.ReadJSON(r, &req); err != nil {
		httpapi.WriteError(w, httpapi.ReadStatus(err), err)
		return
	}
	amount, err := bank.ParseAmount(req.Amount)
	if err != nil || amount <= 0 {
		httpapi.WriteError(w, http.StatusBadRequest, errors.New("gridmarketd: bad token amount"))
		return
	}
	d.mu.Lock()
	var tok string
	d.jobs.WithLock(func() { tok, err = d.box.MintToken(req.User, amount) })
	d.mu.Unlock()
	if err != nil {
		httpapi.WriteError(w, http.StatusBadRequest, err)
		return
	}
	httpapi.WriteJSON(w, map[string]string{"token": tok})
}
