package main

import (
	"strings"
	"testing"
	"time"
)

func TestSparkline(t *testing.T) {
	got := sparkline(
		[]float64{0, 1, 2, 3, 4, 5, 6, 7},
		[]bool{true, true, true, true, true, true, true, true})
	if got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	// Flat series renders mid-height, not bottom — distinguishable from 0.
	flat := sparkline([]float64{5, 5, 5}, []bool{true, true, true})
	if flat != "▅▅▅" {
		t.Fatalf("flat sparkline = %q", flat)
	}
	// Absent buckets render as spaces.
	gappy := sparkline([]float64{1, 0, 2}, []bool{true, false, true})
	if gappy != "▁ █" {
		t.Fatalf("gappy sparkline = %q", gappy)
	}
}

func TestSparkSeriesRightAligns(t *testing.T) {
	buckets := []bucketStat{
		{Count: 1, Mean: 1},
		{Count: 1, Mean: 2},
	}
	got := sparkSeries(buckets, 5)
	if len([]rune(got)) != 5 {
		t.Fatalf("width = %d, want 5 (%q)", len([]rune(got)), got)
	}
	if !strings.HasPrefix(got, "   ") {
		t.Fatalf("short history must left-pad: %q", got)
	}
}

func TestFmtVal(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		1500000:  "1.50M",
		2500:     "2.50k",
		3.25:     "3.25",
		0.042:    "42.00m",
		0.000007: "7.00µ",
	}
	for in, want := range cases {
		if got := fmtVal(in); got != want {
			t.Errorf("fmtVal(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderFrame(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	f := frame{
		Target: "http://localhost:7701",
		At:     at,
		Window: 5 * time.Minute,
		Fleet: &fleetReport{
			At: at,
			Peers: []fleetPeer{
				{Name: "bankd", BaseURL: "http://localhost:7700", Up: true, Samples: 42},
				{Name: "h1", BaseURL: "http://localhost:7710", Up: false, LastError: "connection refused"},
			},
			Exemplars: []fleetExemplar{
				{Peer: "bankd", Family: "bank_transfer_seconds", TraceID: "deadbeef", Value: 0.2, At: at},
			},
		},
		SLO: &sloReport{
			Service: "slsd", At: at, Violating: 1,
			Statuses: []sloStatus{
				{Objective: sloObjective{Name: "request-latency-p99"}, Violating: true, BurnFast: 12, BurnSlow: 4},
				{Objective: sloObjective{Name: "money-conservation"}, NoData: true},
			},
		},
		History: []historySeries{
			{Name: "bankd/http_requests_total:rate", Buckets: []bucketStat{
				{Count: 3, Mean: 1}, {Count: 3, Mean: 9},
			}},
		},
		FetchErr: []string{"history x: boom"},
	}
	out := render(f, 10)
	for _, want := range []string{
		"gridtop — http://localhost:7701 (fleet)",
		"UP   bankd",
		"DOWN h1",
		"connection refused",
		"[VIOL] request-latency-p99",
		"[n/d ] money-conservation",
		"bankd/http_requests_total:rate",
		"bank_transfer_seconds",
		"trace=deadbeef",
		"! history x: boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// Daemon mode renders without a fleet section.
	f.Fleet = nil
	out = render(f, 10)
	if strings.Contains(out, "PEERS") {
		t.Fatalf("daemon-mode frame must not show PEERS:\n%s", out)
	}
	if !strings.Contains(out, "(daemon)") {
		t.Fatalf("daemon-mode header missing:\n%s", out)
	}
}
