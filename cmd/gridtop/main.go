// Command gridtop is a terminal dashboard for the market telemetry plane:
// it polls a daemon's /slo and /metrics/history — or, pointed at an
// aggregator host (slsd -peers), the /fleet rollup — and renders live
// sparklines, the SLO burn-rate table, per-peer scrape health and the
// slowest traced exemplars.
//
// Usage:
//
//	gridtop -target http://localhost:7701            # live, redraws every 2s
//	gridtop -target http://localhost:7700 -once      # one frame, for scripts/CI
//	gridtop -target http://localhost:7701 -series 'bankd/*'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"tycoongrid/internal/httpapi"
)

func main() {
	target := flag.String("target", "http://localhost:7701",
		"daemon or aggregator base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll and redraw interval")
	once := flag.Bool("once", false, "render a single frame and exit (CI mode)")
	window := flag.Duration("window", 5*time.Minute, "history window for sparklines")
	seriesFlag := flag.String("series", "",
		"comma-separated series names or trailing-'*' patterns (default: an automatic pick)")
	maxSeries := flag.Int("max-series", 12, "series rows shown")
	sparkWidth := flag.Int("spark-width", 40, "sparkline width in buckets")
	flag.Parse()

	poller := newPoller(*target, *window, *seriesFlag, *maxSeries, *sparkWidth)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), *interval+5*time.Second)
		f := poller.poll(ctx)
		cancel()
		if *once {
			fmt.Print(render(f, *sparkWidth))
			if f.SLO == nil && f.Fleet == nil && len(f.History) == 0 {
				// Nothing reachable: exit nonzero so smoke tests fail loudly.
				os.Exit(1)
			}
			return
		}
		// Clear screen + home, then the frame.
		fmt.Print("\x1b[2J\x1b[H" + render(f, *sparkWidth))
		time.Sleep(*interval)
	}
}

// poller fetches one frame's worth of telemetry per tick.
type poller struct {
	target     string
	client     *httpapi.TelemetryClient
	window     time.Duration
	series     []string // explicit patterns; empty = auto-pick
	maxSeries  int
	sparkWidth int
}

func newPoller(target string, window time.Duration, seriesSpec string, maxSeries, sparkWidth int) *poller {
	p := &poller{
		target:     strings.TrimSuffix(target, "/"),
		client:     httpapi.NewTelemetryClient(target, nil),
		window:     window,
		maxSeries:  maxSeries,
		sparkWidth: sparkWidth,
	}
	for _, s := range strings.Split(seriesSpec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			p.series = append(p.series, s)
		}
	}
	return p
}

// poll assembles a frame. Every fetch is best-effort: a daemon that lacks an
// endpoint (or is down) contributes a footer note, not a crash — gridtop
// must stay useful while the fleet it watches is misbehaving.
func (p *poller) poll(ctx context.Context) frame {
	f := frame{Target: p.target, At: time.Now(), Window: p.window}

	if raw, err := p.client.Fleet(ctx); err == nil {
		var fr fleetReport
		if jerr := json.Unmarshal(raw, &fr); jerr == nil {
			f.Fleet = &fr
		} else {
			f.FetchErr = append(f.FetchErr, "fleet: bad JSON: "+jerr.Error())
		}
	}

	if raw, err := p.client.SLO(ctx); err == nil {
		var rep sloReport
		if jerr := json.Unmarshal(raw, &rep); jerr == nil {
			f.SLO = &rep
		} else {
			f.FetchErr = append(f.FetchErr, "slo: bad JSON: "+jerr.Error())
		}
	} else {
		f.FetchErr = append(f.FetchErr, "slo: "+err.Error())
	}

	patterns := p.series
	if len(patterns) == 0 {
		patterns = p.autoPick(ctx, f.Fleet)
	}
	f.History = p.fetchHistory(ctx, f.Fleet != nil, patterns, &f.FetchErr)
	return f
}

// autoPick chooses default series: in fleet mode the derived rate/p99
// series across peers; in daemon mode a stock set of market vitals.
func (p *poller) autoPick(ctx context.Context, fleet *fleetReport) []string {
	if fleet != nil {
		var picks []string
		for _, name := range fleet.Series {
			if strings.HasSuffix(name, ":rate") || strings.HasSuffix(name, ":p99") {
				picks = append(picks, name)
			}
		}
		sort.Strings(picks)
		if len(picks) > p.maxSeries {
			picks = picks[:p.maxSeries]
		}
		if len(picks) > 0 {
			return picks
		}
		return fleet.Series
	}
	// Daemon mode: ask the daemon what it has and keep the derived series.
	raw, err := p.client.History(ctx, "")
	if err != nil {
		return nil
	}
	var resp historyResponse
	if json.Unmarshal(raw, &resp) != nil {
		return nil
	}
	var picks []string
	for _, name := range resp.Names {
		if strings.HasSuffix(name, ":rate") || strings.HasSuffix(name, ":p99") ||
			strings.HasPrefix(name, "slo_burn_rate") ||
			strings.HasPrefix(name, "bank_conservation") {
			picks = append(picks, name)
		}
	}
	sort.Strings(picks)
	if len(picks) > p.maxSeries {
		picks = picks[:p.maxSeries]
	}
	return picks
}

// fetchHistory pulls downsampled buckets for each pattern from the right
// history endpoint (fleet vs daemon).
func (p *poller) fetchHistory(ctx context.Context, fleetMode bool, patterns []string, errs *[]string) []historySeries {
	var out []historySeries
	seen := make(map[string]bool)
	for _, pattern := range patterns {
		if len(out) >= p.maxSeries {
			break
		}
		q := url.Values{}
		q.Set("series", pattern)
		q.Set("window", p.window.String())
		q.Set("buckets", fmt.Sprint(p.sparkWidth))
		var raw json.RawMessage
		var err error
		if fleetMode {
			raw, err = p.client.FleetHistory(ctx, q.Encode())
		} else {
			raw, err = p.client.History(ctx, q.Encode())
		}
		if err != nil {
			*errs = append(*errs, "history "+pattern+": "+err.Error())
			continue
		}
		var resp historyResponse
		if jerr := json.Unmarshal(raw, &resp); jerr != nil {
			*errs = append(*errs, "history "+pattern+": bad JSON: "+jerr.Error())
			continue
		}
		for _, hs := range resp.Series {
			if seen[hs.Name] || len(out) >= p.maxSeries {
				continue
			}
			seen[hs.Name] = true
			out = append(out, hs)
		}
	}
	return out
}
