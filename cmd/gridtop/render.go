package main

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Wire shapes mirrored from internal/telemetry and internal/slo — gridtop
// decodes the daemons' public JSON, deliberately not their Go types, so it
// exercises the same contract any external dashboard would.

type bucketStat struct {
	Start int64   `json:"start"`
	End   int64   `json:"end"`
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P99   float64 `json:"p99"`
}

type historySeries struct {
	Name    string       `json:"name"`
	Buckets []bucketStat `json:"buckets"`
	Dropped uint64       `json:"dropped"`
}

type historyResponse struct {
	WindowSeconds float64         `json:"window_seconds"`
	Names         []string        `json:"names"`
	Series        []historySeries `json:"series"`
	Truncated     bool            `json:"truncated"`
}

type sloObjective struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Series      string  `json:"series"`
	Threshold   float64 `json:"threshold"`
}

type sloStatus struct {
	Objective  sloObjective `json:"objective"`
	NoData     bool         `json:"no_data"`
	Violating  bool         `json:"violating"`
	BurnFast   float64      `json:"burn_fast"`
	BurnSlow   float64      `json:"burn_slow"`
	Samples    int          `json:"samples"`
	BadSamples int          `json:"bad_samples"`
	LastValue  float64      `json:"last_value"`
}

type sloReport struct {
	Service   string      `json:"service"`
	At        time.Time   `json:"at"`
	Violating int         `json:"violating"`
	NoData    int         `json:"no_data"`
	Statuses  []sloStatus `json:"objectives"`
}

type fleetPeer struct {
	Name       string    `json:"name"`
	BaseURL    string    `json:"url"`
	Up         bool      `json:"up"`
	LastScrape time.Time `json:"last_scrape"`
	LastError  string    `json:"last_error"`
	Samples    int       `json:"samples"`
}

type fleetExemplar struct {
	Peer    string    `json:"peer"`
	Family  string    `json:"family"`
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	At      time.Time `json:"at"`
}

type fleetReport struct {
	At        time.Time       `json:"at"`
	Peers     []fleetPeer     `json:"peers"`
	Series    []string        `json:"series"`
	Exemplars []fleetExemplar `json:"exemplars"`
}

// frame is everything one render needs, assembled by the poller.
type frame struct {
	Target   string
	At       time.Time
	Fleet    *fleetReport // nil when the target is a plain daemon
	SLO      *sloReport   // nil when /slo was unreachable
	History  []historySeries
	Window   time.Duration
	FetchErr []string // non-fatal fetch problems, shown in the footer
}

// sparkRunes are the eight-level bar glyphs, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a fixed-width bar strip scaled to the slice's
// own min..max; a flat series renders mid-height so "constant" and "absent"
// look different. Empty buckets (NaN-free by construction — the caller feeds
// bucket means with Count>0) render as spaces.
func sparkline(vals []float64, present []bool) string {
	lo, hi := 0.0, 0.0
	first := true
	for i, v := range vals {
		if !present[i] {
			continue
		}
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for i, v := range vals {
		if !present[i] {
			b.WriteByte(' ')
			continue
		}
		if hi == lo {
			b.WriteRune(sparkRunes[len(sparkRunes)/2])
			continue
		}
		idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// sparkSeries turns downsampled buckets into a sparkline over bucket means,
// padded on the left to width so short histories right-align at "now".
func sparkSeries(buckets []bucketStat, width int) string {
	if width <= 0 {
		width = len(buckets)
	}
	vals := make([]float64, width)
	present := make([]bool, width)
	off := width - len(buckets)
	for i, bk := range buckets {
		if off+i < 0 {
			continue // more buckets than width: keep the newest
		}
		vals[off+i] = bk.Mean
		present[off+i] = bk.Count > 0
	}
	return sparkline(vals, present)
}

// fmtVal renders a sample value compactly: SI-ish, stable width.
func fmtVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	case av >= 1e-3:
		return fmt.Sprintf("%.2fm", v*1e3)
	default:
		return fmt.Sprintf("%.2fµ", v*1e6)
	}
}

// lastMean returns the newest non-empty bucket's mean.
func lastMean(buckets []bucketStat) (float64, bool) {
	for i := len(buckets) - 1; i >= 0; i-- {
		if buckets[i].Count > 0 {
			return buckets[i].Mean, true
		}
	}
	return 0, false
}

// render draws one full dashboard frame as plain text. Pure: no I/O, no
// clock — everything comes from the frame, so tests can assert exact output.
func render(f frame, sparkWidth int) string {
	var b strings.Builder
	mode := "daemon"
	if f.Fleet != nil {
		mode = "fleet"
	}
	fmt.Fprintf(&b, "gridtop — %s (%s)  window %s  %s\n",
		f.Target, mode, f.Window, f.At.Format("15:04:05"))
	b.WriteString(strings.Repeat("─", 72) + "\n")

	if f.Fleet != nil {
		b.WriteString("PEERS\n")
		peers := append([]fleetPeer(nil), f.Fleet.Peers...)
		sort.Slice(peers, func(i, j int) bool { return peers[i].Name < peers[j].Name })
		for _, p := range peers {
			state := "UP  "
			if !p.Up {
				state = "DOWN"
			}
			fmt.Fprintf(&b, "  %-4s %-14s %-28s samples=%d", state, p.Name, p.BaseURL, p.Samples)
			if p.LastError != "" {
				fmt.Fprintf(&b, "  err=%s", p.LastError)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}

	if f.SLO != nil {
		fmt.Fprintf(&b, "SLO — %s  violating=%d no-data=%d\n",
			f.SLO.Service, f.SLO.Violating, f.SLO.NoData)
		for _, st := range f.SLO.Statuses {
			badge := " ok "
			switch {
			case st.Violating:
				badge = "VIOL"
			case st.NoData:
				badge = "n/d "
			}
			fmt.Fprintf(&b, "  [%s] %-24s burn fast=%-8s slow=%-8s last=%s\n",
				badge, st.Objective.Name,
				fmtVal(st.BurnFast), fmtVal(st.BurnSlow), fmtVal(st.LastValue))
		}
		b.WriteByte('\n')
	}

	if len(f.History) > 0 {
		b.WriteString("SERIES\n")
		for _, hs := range f.History {
			last := "   -"
			if v, ok := lastMean(hs.Buckets); ok {
				last = fmtVal(v)
			}
			fmt.Fprintf(&b, "  %-44s %s %8s\n",
				trim(hs.Name, 44), sparkSeries(hs.Buckets, sparkWidth), last)
		}
		b.WriteByte('\n')
	}

	if f.Fleet != nil && len(f.Fleet.Exemplars) > 0 {
		b.WriteString("EXEMPLARS (slowest traced requests)\n")
		ex := append([]fleetExemplar(nil), f.Fleet.Exemplars...)
		sort.Slice(ex, func(i, j int) bool { return ex[i].Value > ex[j].Value })
		if len(ex) > 5 {
			ex = ex[:5]
		}
		for _, e := range ex {
			fmt.Fprintf(&b, "  %8ss  %-12s %-32s trace=%s\n",
				fmtVal(e.Value), e.Peer, trim(e.Family, 32), e.TraceID)
		}
		b.WriteByte('\n')
	}

	for _, msg := range f.FetchErr {
		fmt.Fprintf(&b, "! %s\n", msg)
	}
	return b.String()
}

// trim shortens s to max runes with a trailing ellipsis.
func trim(s string, max int) string {
	r := []rune(s)
	if len(r) <= max {
		return s
	}
	return string(r[:max-1]) + "…"
}
