package main

// Telemetry smoke test (`make telemetry-smoke`): boot the real bankd and
// slsd binaries — bankd with handler-latency chaos armed via the
// TYCOON_CHAOS_HANDLER_* environment — drive traffic, and assert that
//
//   - /metrics/history and /slo respond on a live daemon,
//   - the injected latency trips the request-latency-p99 SLO within one
//     evaluation window,
//   - slsd's fleet aggregator scrapes the peer and serves /fleet, and
//   - gridtop -once renders a frame showing the violation (daemon mode)
//     and the peer table (fleet mode).

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tycoongrid/internal/fault"
)

// buildBinary compiles a command package into dir and returns the path.
func buildBinary(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	build := exec.Command("go", "build", "-o", bin, pkg)
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// freeAddr reserves an ephemeral localhost port (released just before the
// daemon binds it — the same small race the crash-storm test accepts).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches bin with args/env and registers cleanup.
func startDaemon(t *testing.T, bin string, args []string, extraEnv ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
}

// waitReady polls a readiness probe until it answers 200.
func waitReady(t *testing.T, base string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test")
	}
	dir := t.TempDir()
	bankd := buildBinary(t, dir, "./cmd/bankd")
	slsd := buildBinary(t, dir, "./cmd/slsd")
	gridtop := buildBinary(t, dir, "./cmd/gridtop")

	// bankd with 120ms max injected handler latency: every service request
	// is delayed Uniform[0,120ms), so the request p99 blows through the
	// 50ms SLO threshold as soon as traffic flows.
	bankAddr := freeAddr(t)
	startDaemon(t, bankd,
		[]string{"-addr", bankAddr, "-keyseed", "smoke", "-trace", "0",
			"-scrape-interval", "200ms"},
		fault.EnvHandlerLatency+"=120ms",
		fault.EnvHandlerSeed+"=1",
	)
	bankBase := "http://" + bankAddr
	waitReady(t, bankBase, 10*time.Second)

	// slsd hosting the fleet aggregator over bankd.
	slsAddr := freeAddr(t)
	startDaemon(t, slsd,
		[]string{"-addr", slsAddr, "-scrape-interval", "200ms",
			"-peers", "bankd=" + bankBase})
	slsBase := "http://" + slsAddr
	waitReady(t, slsBase, 10*time.Second)

	// Drive traffic through the chaos-wrapped service routes so the
	// latency histogram accumulates injected delay. Unknown account reads
	// are still instrumented requests; a handful is plenty at 200ms scrape.
	trafficStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-trafficStop:
				return
			default:
			}
			resp, err := http.Get(bankBase + "/accounts/nobody")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	defer close(trafficStop)

	// The observability surface answers immediately.
	var hist struct {
		Names []string `json:"names"`
	}
	if code := getJSON(t, bankBase+"/metrics/history", &hist); code != http.StatusOK {
		t.Fatalf("/metrics/history = %d", code)
	}
	if code := getJSON(t, bankBase+"/slo", nil); code != http.StatusOK {
		t.Fatalf("/slo = %d", code)
	}

	// The injected latency must trip request-latency-p99 within one
	// evaluation window. The fast window is Window/12 = 25s; with a 200ms
	// self-scrape the bad p99 samples land within a couple of seconds, so
	// 30s of polling is already generous.
	deadline := time.Now().Add(30 * time.Second)
	violated := false
	for time.Now().Before(deadline) {
		var rep sloReport
		getJSON(t, bankBase+"/slo", &rep)
		for _, st := range rep.Statuses {
			if st.Objective.Name == "request-latency-p99" && st.Violating {
				violated = true
			}
		}
		if violated {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !violated {
		t.Fatal("latency chaos never tripped request-latency-p99")
	}

	// The self-scraped history now has the derived p99 series.
	getJSON(t, bankBase+"/metrics/history", &hist)
	hasP99 := false
	for _, name := range hist.Names {
		if strings.HasPrefix(name, "http_request_duration_seconds") &&
			strings.HasSuffix(name, ":p99") {
			hasP99 = true
		}
	}
	if !hasP99 {
		t.Fatalf("no derived request-latency p99 series in history names: %v", hist.Names)
	}

	// The aggregator sees the peer as up with samples ingested.
	fleetDeadline := time.Now().Add(15 * time.Second)
	peerUp := false
	for time.Now().Before(fleetDeadline) {
		var fr fleetReport
		getJSON(t, slsBase+"/fleet", &fr)
		for _, p := range fr.Peers {
			if p.Name == "bankd" && p.Up && p.Samples > 0 {
				peerUp = true
			}
		}
		if peerUp {
			break
		}
		time.Sleep(250 * time.Millisecond)
	}
	if !peerUp {
		t.Fatal("aggregator never scraped bankd successfully")
	}

	// gridtop -once in daemon mode shows the violation.
	out, err := exec.Command(gridtop, "-once", "-target", bankBase).CombinedOutput()
	if err != nil {
		t.Fatalf("gridtop -once (daemon): %v\n%s", err, out)
	}
	frameText := string(out)
	if !strings.Contains(frameText, "(daemon)") {
		t.Errorf("daemon frame missing mode header:\n%s", frameText)
	}
	if !strings.Contains(frameText, "[VIOL] request-latency-p99") {
		t.Errorf("daemon frame missing SLO violation:\n%s", frameText)
	}

	// gridtop -once in fleet mode shows the peer table.
	out, err = exec.Command(gridtop, "-once", "-target", slsBase).CombinedOutput()
	if err != nil {
		t.Fatalf("gridtop -once (fleet): %v\n%s", err, out)
	}
	frameText = string(out)
	if !strings.Contains(frameText, "(fleet)") {
		t.Errorf("fleet frame missing mode header:\n%s", frameText)
	}
	if !strings.Contains(frameText, "bankd") {
		t.Errorf("fleet frame missing peer row:\n%s", frameText)
	}
}
