// Command auctioneerd runs one host's market daemon: the continuous
// proportional-share auction with its price-statistics windows, reallocating
// every interval (the paper's 10 seconds) and optionally registering with a
// Service Location Service.
//
// Usage:
//
//	auctioneerd -addr :7710 -host h1 -capacity 5600 \
//	    -interval 10s -sls http://localhost:7701 -site hplabs
package main

import (
	"flag"
	"log"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/sls"
)

func main() {
	addr := flag.String("addr", ":7710", "listen address")
	host := flag.String("host", "h1", "host id")
	capacity := flag.Float64("capacity", 5600, "host CPU capacity in MHz")
	cpus := flag.Int("cpus", 2, "physical CPUs (advertised to the SLS)")
	maxVMs := flag.Int("maxvms", 30, "virtual machine limit (advertised)")
	interval := flag.Duration("interval", auction.DefaultInterval, "reallocation interval")
	reserve := flag.Float64("reserve", 1.0/3600, "reserve price, credits/second")
	slsURL := flag.String("sls", "", "SLS base URL to register with (optional)")
	site := flag.String("site", "", "owning site label")
	endpoint := flag.String("endpoint", "", "advertised endpoint (default http://<addr>)")
	flag.Parse()

	market, err := auction.NewMarket(auction.Config{
		HostID:       *host,
		CapacityMHz:  *capacity,
		ReservePrice: *reserve,
		Start:        time.Now(),
	})
	if err != nil {
		log.Fatalf("auctioneerd: %v", err)
	}
	svc, err := httpapi.NewAuctioneerService(market, map[string]int{
		"hour": int(time.Hour / *interval),
		"day":  int(24 * time.Hour / *interval),
		"week": int(7 * 24 * time.Hour / *interval),
	})
	if err != nil {
		log.Fatalf("auctioneerd: %v", err)
	}

	// Reallocation loop.
	go func() {
		for now := range time.Tick(*interval) {
			charges, refunds := market.Tick(now)
			if len(charges)+len(refunds) > 0 {
				log.Printf("auctioneerd: tick price=%.6g charges=%d refunds=%d",
					market.SpotPrice(), len(charges), len(refunds))
			}
		}
	}()

	// SLS registration and heartbeats.
	if *slsURL != "" {
		ep := *endpoint
		if ep == "" {
			ep = "http://localhost" + *addr
		}
		client := httpapi.NewSLSClient(*slsURL, nil)
		info := sls.HostInfo{
			ID: *host, Endpoint: ep, CapacityMHz: *capacity,
			CPUs: *cpus, MaxVMs: *maxVMs, Site: *site,
		}
		if err := client.Register(info); err != nil {
			log.Printf("auctioneerd: SLS registration failed: %v", err)
		}
		go func() {
			for range time.Tick(*interval * 3) {
				if err := client.Heartbeat(*host, market.SpotPrice()); err != nil {
					log.Printf("auctioneerd: heartbeat: %v", err)
					_ = client.Register(info) // SLS may have restarted
				}
			}
		}()
	}

	log.Printf("auctioneerd: host %s (%.0f MHz) listening on %s", *host, *capacity, *addr)
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("auctioneerd", svc)); err != nil {
		log.Fatalf("auctioneerd: %v", err)
	}
	log.Print("auctioneerd: shut down cleanly")
}
