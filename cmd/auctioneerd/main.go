// Command auctioneerd runs one host's market daemon: the continuous
// proportional-share auction with its price-statistics windows, reallocating
// every interval (the paper's 10 seconds) and optionally registering with a
// Service Location Service.
//
// Usage:
//
//	auctioneerd -addr :7710 -host h1 -capacity 5600 \
//	    -interval 10s -sls http://localhost:7701 -site hplabs
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/durable"
	"tycoongrid/internal/fault"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/mechanism"
	"tycoongrid/internal/sls"
	"tycoongrid/internal/telemetry"
	"tycoongrid/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":7710", "listen address")
	host := flag.String("host", "h1", "host id")
	capacity := flag.Float64("capacity", 5600, "host CPU capacity in MHz")
	cpus := flag.Int("cpus", 2, "physical CPUs (advertised to the SLS)")
	maxVMs := flag.Int("maxvms", 30, "virtual machine limit (advertised)")
	interval := flag.Duration("interval", auction.DefaultInterval, "reallocation interval")
	reserve := flag.Float64("reserve", 1.0/3600, "reserve price, credits/second")
	mechName := flag.String("mechanism", mechanism.Proportional,
		"clearing rule: "+strings.Join(mechanism.Names(), "|"))
	slsURL := flag.String("sls", "", "SLS base URL to register with (optional)")
	site := flag.String("site", "", "owning site label")
	endpoint := flag.String("endpoint", "", "advertised endpoint (default http://<addr>)")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	dataDir := flag.String("data-dir", "",
		"directory for the durable price log (WAL + snapshots); empty = in-memory")
	fsyncMode := flag.String("fsync", "interval",
		"WAL fsync policy with -data-dir: always|interval|none")
	snapshotEvery := flag.Int("snapshot-every", 0,
		"price records between snapshots with -data-dir (0 = one week of ticks)")
	scrapeEvery := flag.Duration("scrape-interval", telemetry.DefaultScrapeInterval,
		"self-scrape cadence feeding /metrics/history and the SLO evaluator")
	flag.Parse()
	tracing.InitSlog("auctioneerd", os.Stderr, slog.LevelInfo)
	tracing.Default().SetSampleRatio(*traceRatio)

	mech, err := mechanism.New(*mechName, mechanism.Config{})
	if err != nil {
		slog.Error("auctioneerd: bad -mechanism", "err", err)
		os.Exit(1)
	}
	market, err := auction.NewMarket(auction.Config{
		HostID:       *host,
		CapacityMHz:  *capacity,
		ReservePrice: *reserve,
		Start:        time.Now(),
		Mechanism:    mech,
	})
	if err != nil {
		slog.Error("auctioneerd: market construction failed", "err", err)
		os.Exit(1)
	}
	slog.Info("auctioneerd: market", "host", *host, "mechanism", market.MechanismName())
	svc, err := httpapi.NewAuctioneerService(market, map[string]int{
		"hour": int(time.Hour / *interval),
		"day":  int(24 * time.Hour / *interval),
		"week": int(7 * 24 * time.Hour / *interval),
	})
	if err != nil {
		slog.Error("auctioneerd: service construction failed", "err", err)
		os.Exit(1)
	}

	// Durable price history: recover the logged samples into the prediction
	// windows, then journal every subsequent tick's spot price.
	var prices *priceLog
	if *dataDir != "" {
		policy, err := durable.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			slog.Error("auctioneerd: bad -fsync", "err", err)
			os.Exit(1)
		}
		prices, err = openPriceLog(*dataDir, durable.Options{Sync: policy}, *snapshotEvery)
		if err != nil {
			slog.Error("auctioneerd: open price log", "err", err)
			os.Exit(1)
		}
		recovered := prices.recovered()
		svc.ReplayPrices(recovered)
		slog.Info("auctioneerd: price history recovered",
			"samples", len(recovered), "dir", *dataDir)
		market.Observe(prices.record)
	}

	// Readiness: with an SLS configured, not ready until the directory has
	// acknowledged us once; standalone markets are ready immediately.
	var health *httpapi.Health
	if *slsURL != "" {
		health = httpapi.NewHealth("auctioneerd", "sls")
	} else {
		health = httpapi.NewHealth("auctioneerd")
	}

	// Reallocation loop.
	go func() {
		for now := range time.Tick(*interval) {
			charges, refunds := market.Tick(now)
			if len(charges)+len(refunds) > 0 {
				slog.Info("auctioneerd: tick", "price", market.SpotPrice(),
					"charges", len(charges), "refunds", len(refunds))
			}
		}
	}()

	// SLS registration and heartbeats.
	if *slsURL != "" {
		ep := *endpoint
		if ep == "" {
			ep = "http://localhost" + *addr
		}
		client := httpapi.NewSLSClient(*slsURL, nil)
		info := sls.HostInfo{
			ID: *host, Endpoint: ep, CapacityMHz: *capacity,
			CPUs: *cpus, MaxVMs: *maxVMs, Site: *site,
		}
		if err := client.Register(info); err != nil {
			slog.Warn("auctioneerd: SLS registration failed", "err", err)
		} else {
			health.MarkReady("sls")
		}
		go func() {
			for range time.Tick(*interval * 3) {
				if err := client.Heartbeat(*host, market.SpotPrice()); err != nil {
					slog.Warn("auctioneerd: heartbeat failed", "err", err)
					if client.Register(info) == nil { // SLS may have restarted
						health.MarkReady("sls")
					}
				} else {
					health.MarkReady("sls")
				}
			}
		}()
	}

	plane := telemetry.NewPlane(telemetry.Config{
		Service:  "auctioneerd",
		Interval: *scrapeEvery,
	})
	stopTelemetry := make(chan struct{})
	go plane.Run(stopTelemetry)

	opts := []httpapi.MuxOption{httpapi.WithHealth(health)}
	opts = append(opts, plane.MuxOptions()...)
	if *pprofOn {
		opts = append(opts, httpapi.WithPprof())
	}

	var app http.Handler = svc
	if ccfg, armed, cerr := fault.HandlerFromEnv(); cerr != nil {
		slog.Error("auctioneerd: bad chaos handler spec", "err", cerr)
		os.Exit(1)
	} else if armed {
		slog.Warn("auctioneerd: handler chaos armed",
			"max_latency", ccfg.MaxLatency, "error_rate", ccfg.ErrorRate)
		app = fault.Handler(ccfg, app)
	}

	slog.Info("auctioneerd: listening", "host", *host, "capacity_mhz", *capacity, "addr", *addr)
	drain := func() {
		close(stopTelemetry)
		health.StartDrain()
		if prices != nil {
			if err := prices.close(); err != nil {
				slog.Error("auctioneerd: price log close failed", "err", err)
			}
		}
	}
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("auctioneerd", app, opts...), drain); err != nil {
		slog.Error("auctioneerd: serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("auctioneerd: shut down cleanly")
}
