package main

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"tycoongrid/internal/durable"
)

// maxPriceSamples bounds the retained price history at one week of
// 10-second reallocation ticks — enough to rebuild the widest ("week")
// prediction window after a restart.
const maxPriceSamples = 7 * 24 * 360

// priceLog makes the auctioneer's price history durable: one 16-byte record
// (price float bits, unixnano) per reallocation tick, snapshotted as the
// bounded sample tail so the WAL never grows past roughly one week.
type priceLog struct {
	mu      sync.Mutex
	store   *durable.Store
	samples []float64
	every   int
	since   int
}

// openPriceLog recovers the retained samples from dir and returns the log
// ready for recording. snapshotEvery <= 0 snapshots once per maxPriceSamples
// records.
func openPriceLog(dir string, opts durable.Options, snapshotEvery int) (*priceLog, error) {
	st, err := durable.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if snapshotEvery <= 0 {
		snapshotEvery = maxPriceSamples
	}
	l := &priceLog{store: st, every: snapshotEvery}
	_, err = st.Recover(
		func(snap []byte) error {
			for len(snap) >= 8 {
				l.push(math.Float64frombits(binary.LittleEndian.Uint64(snap)))
				snap = snap[8:]
			}
			return nil
		},
		func(rec []byte) error {
			if len(rec) >= 8 {
				l.push(math.Float64frombits(binary.LittleEndian.Uint64(rec)))
			}
			return nil
		},
	)
	if err != nil {
		st.Close()
		return nil, err
	}
	return l, nil
}

func (l *priceLog) push(p float64) {
	l.samples = append(l.samples, p)
	if len(l.samples) > 2*maxPriceSamples {
		drop := len(l.samples) - maxPriceSamples
		l.samples = append(l.samples[:0], l.samples[drop:]...)
	}
}

// recovered returns the replayed sample history, oldest first.
func (l *priceLog) recovered() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) > maxPriceSamples {
		return l.samples[len(l.samples)-maxPriceSamples:]
	}
	return l.samples
}

// record journals one tick's spot price. Price history is telemetry, not
// money: the append is asynchronous and errors surface on close.
func (l *priceLog) record(price float64, at time.Time) {
	var rec [16]byte
	binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(price))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(at.UnixNano()))

	// l.mu also serializes Append with Snapshot, which the durable.Store
	// contract requires of its caller.
	l.mu.Lock()
	defer l.mu.Unlock()
	l.push(price)
	l.store.AppendAsync(rec[:])
	l.since++
	if l.since >= l.every {
		l.since = 0
		tail := l.samples
		if len(tail) > maxPriceSamples {
			tail = tail[len(tail)-maxPriceSamples:]
		}
		state := make([]byte, 0, 8*len(tail))
		for _, p := range tail {
			state = binary.LittleEndian.AppendUint64(state, math.Float64bits(p))
		}
		l.store.Snapshot(state)
	}
}

func (l *priceLog) close() error { return l.store.Close() }
