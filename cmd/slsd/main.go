// Command slsd runs the Service Location Service daemon: the directory of
// live auctioneers. Auctioneers register and heartbeat here; scheduling
// agents query it for candidate hosts.
//
// With -peers, slsd additionally hosts the fleet telemetry aggregator — the
// natural home, since the SLS already plays the "who is alive" index role:
// it scrapes each peer's /metrics on the scrape interval and serves
// fleet-wide rollups at /fleet and /fleet/history.
//
// Usage:
//
//	slsd -addr :7701 -ttl 60s
//	slsd -addr :7701 -peers bankd=http://localhost:7700,h1=http://localhost:7710
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"time"

	"tycoongrid/internal/fault"
	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/sls"
	"tycoongrid/internal/telemetry"
	"tycoongrid/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":7701", "listen address")
	ttl := flag.Duration("ttl", 60*time.Second, "host liveness TTL")
	prune := flag.Duration("prune", 5*time.Minute, "expired-entry sweep interval")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	peers := flag.String("peers", "",
		"comma-separated name=url scrape targets; non-empty hosts the fleet aggregator at /fleet")
	scrapeEvery := flag.Duration("scrape-interval", telemetry.DefaultScrapeInterval,
		"self-scrape and fleet-scrape cadence")
	flag.Parse()
	tracing.InitSlog("slsd", os.Stderr, slog.LevelInfo)
	tracing.Default().SetSampleRatio(*traceRatio)

	reg := sls.New(sim.WallClock{}, sls.WithTTL(*ttl))
	go func() {
		for range time.Tick(*prune) {
			if n := reg.Prune(); n > 0 {
				slog.Info("slsd: pruned expired hosts", "count", n)
			}
		}
	}()

	plane := telemetry.NewPlane(telemetry.Config{
		Service:  "slsd",
		Interval: *scrapeEvery,
	})
	stopTelemetry := make(chan struct{})
	go plane.Run(stopTelemetry)

	// The directory is ready as soon as it binds.
	health := httpapi.NewHealth("slsd")
	opts := []httpapi.MuxOption{httpapi.WithHealth(health)}
	opts = append(opts, plane.MuxOptions()...)
	if *pprofOn {
		opts = append(opts, httpapi.WithPprof())
	}

	if *peers != "" {
		peerList, err := telemetry.ParsePeers(*peers)
		if err != nil {
			slog.Error("slsd: bad -peers", "err", err)
			os.Exit(1)
		}
		agg := telemetry.NewAggregator(telemetry.AggregatorConfig{Peers: peerList})
		go agg.Run(stopTelemetry, *scrapeEvery)
		opts = append(opts, agg.MuxOptions()...)
		slog.Info("slsd: hosting fleet aggregator", "peers", len(peerList))
	}

	var app http.Handler = httpapi.NewSLSService(reg)
	if ccfg, armed, cerr := fault.HandlerFromEnv(); cerr != nil {
		slog.Error("slsd: bad chaos handler spec", "err", cerr)
		os.Exit(1)
	} else if armed {
		slog.Warn("slsd: handler chaos armed",
			"max_latency", ccfg.MaxLatency, "error_rate", ccfg.ErrorRate)
		app = fault.Handler(ccfg, app)
	}

	drain := func() {
		close(stopTelemetry)
		health.StartDrain()
	}
	slog.Info("slsd: listening", "addr", *addr, "ttl", ttl.String())
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("slsd", app, opts...), drain); err != nil {
		slog.Error("slsd: serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("slsd: shut down cleanly")
}
