// Command slsd runs the Service Location Service daemon: the directory of
// live auctioneers. Auctioneers register and heartbeat here; scheduling
// agents query it for candidate hosts.
//
// Usage:
//
//	slsd -addr :7701 -ttl 60s
package main

import (
	"flag"
	"log/slog"
	"os"
	"time"

	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/sls"
	"tycoongrid/internal/tracing"
)

func main() {
	addr := flag.String("addr", ":7701", "listen address")
	ttl := flag.Duration("ttl", 60*time.Second, "host liveness TTL")
	prune := flag.Duration("prune", 5*time.Minute, "expired-entry sweep interval")
	traceRatio := flag.Float64("trace", 1, "fraction of root traces recorded, 0..1")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	flag.Parse()
	tracing.InitSlog("slsd", os.Stderr, slog.LevelInfo)
	tracing.Default().SetSampleRatio(*traceRatio)

	reg := sls.New(sim.WallClock{}, sls.WithTTL(*ttl))
	go func() {
		for range time.Tick(*prune) {
			if n := reg.Prune(); n > 0 {
				slog.Info("slsd: pruned expired hosts", "count", n)
			}
		}
	}()

	// The directory is ready as soon as it binds.
	health := httpapi.NewHealth("slsd")
	opts := []httpapi.MuxOption{httpapi.WithHealth(health)}
	if *pprofOn {
		opts = append(opts, httpapi.WithPprof())
	}

	slog.Info("slsd: listening", "addr", *addr, "ttl", ttl.String())
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("slsd", httpapi.NewSLSService(reg), opts...), health.StartDrain); err != nil {
		slog.Error("slsd: serve failed", "err", err)
		os.Exit(1)
	}
	slog.Info("slsd: shut down cleanly")
}
