// Command slsd runs the Service Location Service daemon: the directory of
// live auctioneers. Auctioneers register and heartbeat here; scheduling
// agents query it for candidate hosts.
//
// Usage:
//
//	slsd -addr :7701 -ttl 60s
package main

import (
	"flag"
	"log"
	"time"

	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/sls"
)

func main() {
	addr := flag.String("addr", ":7701", "listen address")
	ttl := flag.Duration("ttl", 60*time.Second, "host liveness TTL")
	prune := flag.Duration("prune", 5*time.Minute, "expired-entry sweep interval")
	flag.Parse()

	reg := sls.New(sim.WallClock{}, sls.WithTTL(*ttl))
	go func() {
		for range time.Tick(*prune) {
			if n := reg.Prune(); n > 0 {
				log.Printf("slsd: pruned %d expired hosts", n)
			}
		}
	}()

	log.Printf("slsd: listening on %s (ttl %v)", *addr, *ttl)
	if err := httpapi.Serve(*addr, httpapi.ObservedMux("slsd", httpapi.NewSLSService(reg))); err != nil {
		log.Fatalf("slsd: %v", err)
	}
	log.Print("slsd: shut down cleanly")
}
