module tycoongrid

go 1.22
