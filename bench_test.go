package tycoongrid_test

// One benchmark per table and figure of the paper's evaluation section.
// Each iteration regenerates the full artifact (simulation + analysis), so
// ns/op is the cost of reproducing that experiment end to end:
//
//	go test -bench=. -benchmem
//
// The same harnesses are printable via `go run ./cmd/marketbench`.

import (
	"testing"

	"tycoongrid/internal/experiment"
)

// BenchmarkTable1EqualFunds regenerates Table 1: five users with equal
// funding on 30 dual-CPU hosts; late arrivals receive lower QoS.
func BenchmarkTable1EqualFunds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunBestResponseTable(experiment.Table1Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable2TwoPoint regenerates Table 2: funding 100/100/500/500/500
// with a 5.5 h deadline; money buys latency.
func BenchmarkTable2TwoPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunBestResponseTable(experiment.Table2Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 2 {
			b.Fatal("want two funding groups")
		}
	}
}

// BenchmarkFigure3NormalPrediction regenerates the guarantee-level capacity
// curves of Figure 3 from a fresh market trace.
func BenchmarkFigure3NormalPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure3(experiment.DefaultFigure3Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CurvesMHz) != 3 {
			b.Fatal("want three curves")
		}
	}
}

// BenchmarkFigure4ARForecast regenerates the AR(6)-vs-persistence epsilon
// comparison of Figure 4 on a 40 h batch-load trace.
func BenchmarkFigure4ARForecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure4(experiment.DefaultFigure4Params())
		if err != nil {
			b.Fatal(err)
		}
		if res.EpsilonAR <= 0 {
			b.Fatal("degenerate epsilon")
		}
	}
}

// BenchmarkFigure5Portfolio regenerates the risk-free vs equal-share
// portfolio comparison of Figure 5.
func BenchmarkFigure5Portfolio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure5(experiment.DefaultFigure5Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.RiskFree) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFigure6Windows regenerates the hour/day/week price-distribution
// windows of Figure 6 over a simulated week of diurnal load.
func BenchmarkFigure6Windows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure6(experiment.DefaultFigure6Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Windows) != 3 {
			b.Fatal("want three windows")
		}
	}
}

// BenchmarkFigure7Approximation regenerates the window-approximation
// accuracy simulation of Figure 7 (Normal, Exponential, Beta inputs).
func BenchmarkFigure7Approximation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure7(experiment.DefaultFigure7Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) != 3 {
			b.Fatal("want three distributions")
		}
	}
}

// BenchmarkAblationScheduler compares the market against the FIFO batch
// baseline on the Table 2 workload (DESIGN.md ablation A).
func BenchmarkAblationScheduler(b *testing.B) {
	p := experiment.Table2Params()
	p.SubJobs = 30
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationScheduler(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Market.HighLatency <= 0 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkAblationCap compares utility-ranked vs bid-ranked host capping
// (DESIGN.md ablation B).
func BenchmarkAblationCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationCap()
		if err != nil {
			b.Fatal(err)
		}
		if res.UtilityRanked <= res.BidRanked {
			b.Fatal("ablation shape broke")
		}
	}
}

// BenchmarkSLACalibration prices SLAs from normal and empirical price models
// and measures realized violation rates (the paper's §7 future work).
func BenchmarkSLACalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSLACalibration(experiment.DefaultSLAParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("want three confidence levels")
		}
	}
}
