package tycoongrid_test

// One benchmark per table and figure of the paper's evaluation section.
// Each iteration regenerates the full artifact (simulation + analysis), so
// ns/op is the cost of reproducing that experiment end to end:
//
//	go test -bench=. -benchmem
//
// The same harnesses are printable via `go run ./cmd/marketbench`.

import (
	"fmt"
	"testing"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/experiment"
	"tycoongrid/internal/metrics"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/tsdb"
)

// BenchmarkTable1EqualFunds regenerates Table 1: five users with equal
// funding on 30 dual-CPU hosts; late arrivals receive lower QoS.
func BenchmarkTable1EqualFunds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunBestResponseTable(experiment.Table1Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable2TwoPoint regenerates Table 2: funding 100/100/500/500/500
// with a 5.5 h deadline; money buys latency.
func BenchmarkTable2TwoPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunBestResponseTable(experiment.Table2Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 2 {
			b.Fatal("want two funding groups")
		}
	}
}

// BenchmarkFigure3NormalPrediction regenerates the guarantee-level capacity
// curves of Figure 3 from a fresh market trace.
func BenchmarkFigure3NormalPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure3(experiment.DefaultFigure3Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CurvesMHz) != 3 {
			b.Fatal("want three curves")
		}
	}
}

// BenchmarkFigure4ARForecast regenerates the AR(6)-vs-persistence epsilon
// comparison of Figure 4 on a 40 h batch-load trace.
func BenchmarkFigure4ARForecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure4(experiment.DefaultFigure4Params())
		if err != nil {
			b.Fatal(err)
		}
		if res.EpsilonAR <= 0 {
			b.Fatal("degenerate epsilon")
		}
	}
}

// BenchmarkReplicatedFigure4 measures the replication runner: four seeded
// Figure 4 replications reduced into mean/CI aggregates, serial vs a
// four-worker pool. On a multi-core machine the parallel variant approaches
// a 4x speedup; the aggregates are byte-identical either way.
func BenchmarkReplicatedFigure4(b *testing.B) {
	p := experiment.DefaultFigure4Params()
	// Shrink the scenario so one iteration stays in benchmark territory
	// while still exercising the full world build per replication.
	p.Load.Hours = 6
	p.Load.World.Hosts = 4
	p.Order = 3
	p.HorizonSteps = 3
	p.Stride = 2
	p.FitWindow = 100
	p.ResampleSnapshots = 30
	spec := experiment.RepSpecFigure4(p)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"Serial", 1},
		{"Parallel4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agg, err := experiment.Replicate(spec, experiment.ReplicationConfig{
					Reps: 4, Parallel: bc.workers, BaseSeed: 2006,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(agg.Mean) == 0 {
					b.Fatal("empty aggregate")
				}
			}
		})
	}
}

// BenchmarkFigure5Portfolio regenerates the risk-free vs equal-share
// portfolio comparison of Figure 5.
func BenchmarkFigure5Portfolio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure5(experiment.DefaultFigure5Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.RiskFree) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkFigure6Windows regenerates the hour/day/week price-distribution
// windows of Figure 6 over a simulated week of diurnal load.
func BenchmarkFigure6Windows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure6(experiment.DefaultFigure6Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Windows) != 3 {
			b.Fatal("want three windows")
		}
	}
}

// BenchmarkFigure7Approximation regenerates the window-approximation
// accuracy simulation of Figure 7 (Normal, Exponential, Beta inputs).
func BenchmarkFigure7Approximation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure7(experiment.DefaultFigure7Params())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) != 3 {
			b.Fatal("want three distributions")
		}
	}
}

// BenchmarkAblationScheduler compares the market against the FIFO batch
// baseline on the Table 2 workload (DESIGN.md ablation A).
func BenchmarkAblationScheduler(b *testing.B) {
	p := experiment.Table2Params()
	p.SubJobs = 30
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationScheduler(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.Market.HighLatency <= 0 {
			b.Fatal("degenerate result")
		}
	}
}

// BenchmarkAblationCap compares utility-ranked vs bid-ranked host capping
// (DESIGN.md ablation B).
func BenchmarkAblationCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAblationCap()
		if err != nil {
			b.Fatal(err)
		}
		if res.UtilityRanked <= res.BidRanked {
			b.Fatal("ablation shape broke")
		}
	}
}

// BenchmarkSLACalibration prices SLAs from normal and empirical price models
// and measures realized violation rates (the paper's §7 future work).
func BenchmarkSLACalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunSLACalibration(experiment.DefaultSLAParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatal("want three confidence levels")
		}
	}
}

// BenchmarkMetricsCounterInc measures a single-goroutine increment of a
// sharded counter, the cheapest operation the instrumentation performs.
func BenchmarkMetricsCounterInc(b *testing.B) {
	c := metrics.NewRegistry().Counter("bench_counter_total", "benchmark counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkMetricsCounterIncParallel hammers one counter from every P; the
// per-shard cache-line padding is what keeps this from collapsing into a
// single contended word.
func BenchmarkMetricsCounterIncParallel(b *testing.B) {
	c := metrics.NewRegistry().Counter("bench_counter_total", "benchmark counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkMetricsHistogramObserve measures one latency observation against
// the default bucket layout (bucket scan + count + CAS'd float sum).
func BenchmarkMetricsHistogramObserve(b *testing.B) {
	h := metrics.NewRegistry().Histogram("bench_seconds", "benchmark histogram", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

// BenchmarkAuctionClearMetricsOverhead quantifies what the instrumentation
// costs on the auction clear hot path. One Market.Tick performs exactly one
// counter increment and one gauge set (plus one increment per expired bid,
// zero here), so the reported overhead_% is the cost of those two operations
// relative to a whole clear over 64 live bids. The acceptance bar for the
// observability subsystem is overhead_% < 5.
func BenchmarkAuctionClearMetricsOverhead(b *testing.B) {
	start := time.Unix(1_000_000, 0)
	m, err := auction.NewMarket(auction.Config{
		HostID:       "bench",
		CapacityMHz:  5600,
		ReservePrice: 1.0 / 3600,
		Start:        start,
	})
	if err != nil {
		b.Fatal(err)
	}
	deadline := start.Add(1000 * time.Hour)
	for i := 0; i < 64; i++ {
		budget, err := bank.FromCredits(100)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.PlaceBid(auction.BidderID(fmt.Sprintf("u%02d", i)), budget, deadline); err != nil {
			b.Fatal(err)
		}
	}

	// Clear repeatedly at a frozen clock: dt = 0 charges nothing, so all 64
	// bids survive every iteration and each Tick is a full-price clear.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick(start)
	}
	b.StopTimer()
	tickNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Price the two metric operations a clear performs, on their own registry
	// so the probe does not pollute the process-wide families.
	reg := metrics.NewRegistry()
	clears := reg.Counter("bench_clears_total", "probe")
	price := reg.Gauge("bench_price", "probe")
	const probes = 1 << 21
	probeStart := time.Now()
	for i := 0; i < probes; i++ {
		clears.Inc()
		price.Set(0.000123)
	}
	metricNs := float64(time.Since(probeStart).Nanoseconds()) / probes

	b.ReportMetric(tickNs, "tick_ns")
	b.ReportMetric(metricNs, "metric_ns")
	b.ReportMetric(100*metricNs/tickNs, "overhead_%")
}

// BenchmarkAuctionClearTelemetryOverhead prices the full telemetry plane on
// the auction clear hot path: the clear-latency histogram observation with
// exemplars enabled (a recording span is current, so every Tick takes the
// ObserveExemplar branch) while a tsdb collector self-scrapes the process
// registry concurrently, exactly as a live daemon does. The probe prices
// the per-clear telemetry delta — one time.Now, one scope load, one
// exemplar observation — and the acceptance bar is overhead_% < 2.
func BenchmarkAuctionClearTelemetryOverhead(b *testing.B) {
	tr := tracing.Default()
	oldRatio := tr.SampleRatio()
	tr.SetSampleRatio(1)
	defer tr.SetSampleRatio(oldRatio)
	span := tr.StartRemote(tracing.SpanContext{}, "bench.telemetry")
	release := tr.PushScope(span)
	defer func() { release(); span.End() }()

	start := time.Unix(1_000_000, 0)
	m, err := auction.NewMarket(auction.Config{
		HostID:       "bench-telemetry",
		CapacityMHz:  5600,
		ReservePrice: 1.0 / 3600,
		Start:        start,
	})
	if err != nil {
		b.Fatal(err)
	}
	deadline := start.Add(1000 * time.Hour)
	for i := 0; i < 64; i++ {
		budget, err := bank.FromCredits(100)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.PlaceBid(auction.BidderID(fmt.Sprintf("u%02d", i)), budget, deadline); err != nil {
			b.Fatal(err)
		}
	}

	// Self-scrape loop: collect the whole default registry into a tsdb on a
	// tight cadence so the clears race real snapshot traffic.
	collector := tsdb.NewCollector(metrics.Default(), tsdb.NewDB(512), time.Now)
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		collector.Run(stopScrape, 5*time.Millisecond)
	}()
	defer func() { close(stopScrape); <-scrapeDone }()

	// Clear repeatedly at a frozen clock: every Tick is a full 64-bid clear
	// with the exemplar-carrying latency observation live.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick(start)
	}
	b.StopTimer()
	tickNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Price what the telemetry plane added to each clear: reading the wall
	// clock, loading the current scope, and the exemplar observation.
	reg := metrics.NewRegistry()
	h := reg.Histogram("bench_clear_seconds", "probe", []float64{1e-5, 1e-4, 1e-3})
	traceID := span.Context().TraceID.String()
	const probes = 1 << 20
	probeStart := time.Now()
	for i := 0; i < probes; i++ {
		t0 := time.Now()
		if s := tr.Current(); s.Recording() {
			h.ObserveExemplar(time.Since(t0).Seconds(), traceID)
		} else {
			h.Observe(time.Since(t0).Seconds())
		}
	}
	telemetryNs := float64(time.Since(probeStart).Nanoseconds()) / probes

	overhead := 100 * telemetryNs / tickNs
	b.ReportMetric(tickNs, "tick_ns")
	b.ReportMetric(telemetryNs, "telemetry_ns")
	b.ReportMetric(overhead, "overhead_%")
	if overhead >= 2 {
		b.Errorf("telemetry costs %.3f%% of an auction clear, want < 2%%", overhead)
	}
}

// benchSink defeats dead-code elimination in the tracing probe loop.
var benchSink bool

// BenchmarkAuctionClearTracingOverhead quantifies what the tracing hooks cost
// on the auction clear hot path when sampling is off. With no job scope
// pushed the per-clear probe is one atomic scope load plus a nil-receiver
// Recording check, so the reported overhead_% must stay under 2 — the
// acceptance bar for leaving the hooks compiled into the hot path.
func BenchmarkAuctionClearTracingOverhead(b *testing.B) {
	tr := tracing.Default()
	oldRatio := tr.SampleRatio()
	tr.SetSampleRatio(0)
	defer tr.SetSampleRatio(oldRatio)

	start := time.Unix(1_000_000, 0)
	m, err := auction.NewMarket(auction.Config{
		HostID:       "bench-trace",
		CapacityMHz:  5600,
		ReservePrice: 1.0 / 3600,
		Start:        start,
	})
	if err != nil {
		b.Fatal(err)
	}
	deadline := start.Add(1000 * time.Hour)
	for i := 0; i < 64; i++ {
		budget, err := bank.FromCredits(100)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.PlaceBid(auction.BidderID(fmt.Sprintf("u%02d", i)), budget, deadline); err != nil {
			b.Fatal(err)
		}
	}

	// Clear repeatedly at a frozen clock, exactly as the metrics-overhead
	// benchmark does: every Tick is a full 64-bid clear.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick(start)
	}
	b.StopTimer()
	tickNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

	// Price the probe Tick performs: load the current scope, nil-check it.
	const probes = 1 << 22
	probeStart := time.Now()
	for i := 0; i < probes; i++ {
		benchSink = tr.Current().Recording()
	}
	traceNs := float64(time.Since(probeStart).Nanoseconds()) / probes

	overhead := 100 * traceNs / tickNs
	b.ReportMetric(tickNs, "tick_ns")
	b.ReportMetric(traceNs, "trace_ns")
	b.ReportMetric(overhead, "overhead_%")
	if overhead >= 2 {
		b.Errorf("tracing probe costs %.3f%% of an auction clear, want < 2%%", overhead)
	}
}
