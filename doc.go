// Package tycoongrid is a from-scratch Go reproduction of "Market-Based
// Resource Allocation using Price Prediction in a High Performance Computing
// Grid for Scientific Applications" (Sandholm, Lai, Andrade Ortíz, Odeberg —
// HPDC 2006).
//
// The repository implements the full system the paper describes: the Tycoon
// market substrate (bank, service location service, per-host proportional-
// share auctioneers), the Best Response bid optimizer, the Grid integration
// (xRSL job descriptions, an ARC-analog job manager, the scheduling agent),
// the transfer-token security model over an Ed25519 PKI, the §4 price
// prediction suite (stateless normal model, AR(k) with smoothing-spline
// pre-pass, Markowitz portfolios, moving-window statistics), and a
// discrete-event cluster simulator standing in for the paper's physical
// testbed. All of it is observable through internal/metrics, a
// dependency-free registry whose counters, gauges and latency histograms the
// daemons expose on GET /metrics (Prometheus text format) next to
// GET /healthz/live and GET /healthz/ready probes, and through
// internal/tracing, a dependency-free distributed tracer: W3C traceparent
// propagation stitches every retry attempt, daemon handler and job-lifecycle
// span of one submission into a single tree, structured slog records carry
// the active trace and span ids, and each job's span events assemble into a
// per-job timeline (GET /jobs/{id}/timeline) of every funding move, bid and
// placement with prices and escrow balances attached.
//
// A fault-tolerance layer hardens the stack against host and network
// failure: internal/retry provides context-aware exponential backoff with
// full jitter plus three-state circuit breakers (shared by every HTTP
// client in internal/httpapi), and internal/fault provides a deterministic
// seeded injector of host crashes/recoveries and a chaos http.RoundTripper.
// The scheduling agent resubmits killed sub-jobs to surviving hosts and
// refunds unspent escrow on permanent failure; internal/chaos runs the
// whole market under churn and checks that no money is ever lost.
//
// Start with README.md for the architecture overview, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate every
// table and figure of the paper's evaluation; `cmd/marketbench` prints them.
package tycoongrid
