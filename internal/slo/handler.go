package slo

import (
	"encoding/json"
	"net/http"
	"time"

	"tycoongrid/internal/tsdb"
)

// report is the GET /slo wire shape.
type report struct {
	Service   string    `json:"service"`
	At        time.Time `json:"at"`
	Violating int       `json:"violating"`
	NoData    int       `json:"no_data"`
	Statuses  []Status  `json:"objectives"`
}

// Handler serves the current evaluation as JSON. Every request re-evaluates;
// the judged windows are tsdb reads, cheap by construction, and re-judging
// means /slo never serves a verdict staler than the request.
func (e *Evaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		statuses := e.Evaluate()
		rep := report{Service: e.service, At: e.now(), Statuses: statuses}
		for _, st := range statuses {
			if st.Violating {
				rep.Violating++
			}
			if st.NoData {
				rep.NoData++
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// DefaultWindow is the slow window for the stock objectives.
const DefaultWindow = 5 * time.Minute

// DefaultObjectives returns the stock rule set for a market daemon. The
// series names reference what the tsdb collector derives from the standard
// metric families; objectives whose series a given daemon never emits
// simply report no-data there.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:        "request-latency-p99",
			Description: "HTTP request p99 stays under 50ms",
			Series:      "http_request_duration_seconds{*" + tsdb.SuffixP99,
			Op:          OpLT,
			Threshold:   0.050,
			Window:      DefaultWindow,
			Budget:      0.05, // 5% of scrape intervals may run hot
		},
		{
			Name:        "bid-apply-latency-p99",
			Description: "marketplane bid apply p99 stays under 50ms",
			Series:      "marketplane_bid_apply_seconds" + tsdb.SuffixP99,
			Op:          OpLT,
			Threshold:   0.050,
			Window:      DefaultWindow,
			Budget:      0.05,
		},
		{
			Name:        "money-conservation",
			Description: "bank conservation drift is exactly zero",
			Series:      "bank_conservation_drift_credits",
			Op:          OpEQ,
			Threshold:   0,
			Window:      DefaultWindow,
			Budget:      0, // zero tolerance: any drift saturates the burn rate
		},
		{
			Name:        "shard-clear-balance",
			Description: "busiest shard clears at most 2x the quietest",
			Series:      "marketplane_shard_clears_total{*" + tsdb.SuffixRate,
			Op:          OpLT,
			Threshold:   2,
			Window:      DefaultWindow,
			Budget:      0.10,
			Reduce:      ReduceMaxOverMin,
		},
	}
}
