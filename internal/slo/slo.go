// Package slo evaluates declarative service-level objectives against the
// embedded time-series store (internal/tsdb) using multi-window burn rates.
//
// An Objective names a tsdb series (or a pattern over several), a goodness
// predicate ("p99 < 50ms", "drift == 0", "max/min imbalance < 2x") and an
// error budget: the fraction of samples inside the window that may be bad
// before the objective is considered burning. Each evaluation computes the
// bad-sample fraction over two tail-anchored windows — the objective's full
// window and a fast window one twelfth its size — and reports the burn rate
// (bad fraction / budget) for both. An objective is violating when both
// burn rates reach the alert threshold: the slow window proves the problem
// is sustained, the fast window proves it is still happening, the classic
// multi-window construction that keeps one transient spike from paging and
// one smoldering regression from hiding.
//
// Evaluations are pure reads of the tsdb plus gauge writes, cheap enough to
// run on every self-scrape tick and on every GET /slo. Violation
// transitions additionally emit slog warnings and a tracer event, so an SLO
// breach is visible in logs, in /metrics (slo_burn_rate, slo_violations_total),
// in /slo and in /debug/traces without any external alerting stack — the
// Tycoon SLS-status-index argument applied to objectives instead of hosts.
package slo

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"time"

	"tycoongrid/internal/metrics"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/tsdb"
)

// Op is a goodness comparison: a sample v is good when "v Op Threshold".
type Op string

// Comparison operators.
const (
	OpLT Op = "<"
	OpLE Op = "<="
	OpGT Op = ">"
	OpGE Op = ">="
	OpEQ Op = "=="
)

func (o Op) good(v, threshold float64) bool {
	switch o {
	case OpLT:
		return v < threshold
	case OpLE:
		return v <= threshold
	case OpGT:
		return v > threshold
	case OpGE:
		return v >= threshold
	case OpEQ:
		return v == threshold
	default:
		return false
	}
}

// Reduce selects how samples from multiple matching series fold into the
// judged value stream.
type Reduce string

const (
	// ReduceEach judges every sample of every matching series independently.
	ReduceEach Reduce = "each"
	// ReduceMaxOverMin groups samples by timestamp and judges the ratio of
	// the largest to the smallest value across series — the shard-imbalance
	// shape. Timestamps with fewer than two series present are skipped; a
	// zero minimum with a non-zero maximum judges as +Inf (always bad for
	// upper-bound objectives).
	ReduceMaxOverMin Reduce = "max_over_min"
)

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in /slo, metrics labels and logs.
	Name string `json:"name"`
	// Description is the operator-facing one-liner.
	Description string `json:"description,omitempty"`
	// Series is the tsdb series to judge: an exact name, or a pattern with
	// one '*' matching any substring ("http_request_duration_seconds{*:p99").
	Series string `json:"series"`
	// Op and Threshold define goodness: a sample is good when v Op Threshold.
	Op        Op      `json:"op"`
	Threshold float64 `json:"threshold"`
	// Window is the slow evaluation window; the fast window is Window/12
	// (floored at one second).
	Window time.Duration `json:"-"`
	// Budget is the fraction of samples in a window allowed to be bad
	// before the burn rate reaches 1. Zero means zero tolerance: any bad
	// sample saturates the burn rate.
	Budget float64 `json:"budget"`
	// Alert is the burn-rate threshold at which the objective violates
	// (both windows must reach it). Zero means 1.
	Alert float64 `json:"alert,omitempty"`
	// Reduce folds multi-series matches; empty means ReduceEach.
	Reduce Reduce `json:"reduce,omitempty"`
}

// fastWindow derives the short window of the pair.
func (o Objective) fastWindow() time.Duration {
	f := o.Window / 12
	if f < time.Second {
		f = time.Second
	}
	return f
}

// saturatedBurn stands in for "budget is zero and a bad sample exists" —
// effectively an infinite burn rate, capped so JSON stays finite.
const saturatedBurn = 1e6

// Status is one objective's evaluation result.
type Status struct {
	Objective Objective `json:"objective"`
	// NoData is true when the slow window held no samples (fresh boot,
	// series gap after a restart, or a daemon that never emits the series).
	// A no-data objective is not violating: absence of evidence pages nobody.
	NoData bool `json:"no_data"`
	// Violating is true when both burn rates reached the alert threshold.
	Violating bool `json:"violating"`
	// BurnFast and BurnSlow are badFraction/budget over each window.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// Samples counts judged samples in the slow window.
	Samples int `json:"samples"`
	// BadSamples counts judged-bad samples in the slow window.
	BadSamples int `json:"bad_samples"`
	// LastValue and LastAt describe the newest judged sample.
	LastValue float64   `json:"last_value"`
	LastAt    time.Time `json:"last_at"`
	// WindowSeconds/FastWindowSeconds make the windows visible on the wire.
	WindowSeconds     float64 `json:"window_seconds"`
	FastWindowSeconds float64 `json:"fast_window_seconds"`
}

// Evaluator judges a rule set against one tsdb.DB.
type Evaluator struct {
	db      *tsdb.DB
	rules   []Objective
	now     func() time.Time
	tracer  *tracing.Tracer
	service string

	// Burn metrics live on the evaluator's registry (the daemon's own), so
	// the self-scrape collector stores slo_burn_rate history like any other
	// gauge and fleet scrapes can aggregate burn rates across daemons.
	mBurnRate   *metrics.GaugeVec
	mViolating  *metrics.GaugeVec
	mViolations *metrics.CounterVec

	// violating tracks each objective's last state for transition logging;
	// Evaluate is called from one goroutine (the collector loop) and from
	// HTTP handlers, so it is guarded by the tsdb's own synchronization plus
	// this map's owner lock living in Plane. To keep the evaluator
	// self-contained it uses its own tiny mutex via the gauge side effects
	// being idempotent; the map below is only read/written under evalMu.
	evalMu  chan struct{} // 1-buffered semaphore; avoids importing sync for one lock
	wasViol map[string]bool
}

// Option configures an Evaluator.
type Option func(*Evaluator)

// WithNow injects the evaluation clock (tests, simulations). Windows are
// anchored at this clock, so a series that stops being fed ages out of its
// window instead of freezing its last verdict.
func WithNow(fn func() time.Time) Option {
	return func(e *Evaluator) {
		if fn != nil {
			e.now = fn
		}
	}
}

// WithTracer routes violation events to a specific tracer (default: the
// process tracer).
func WithTracer(t *tracing.Tracer) Option {
	return func(e *Evaluator) {
		if t != nil {
			e.tracer = t
		}
	}
}

// WithRegistry places the slo_* burn metrics on reg (default: the process
// registry).
func WithRegistry(reg *metrics.Registry) Option {
	return func(e *Evaluator) {
		if reg != nil {
			e.bindMetrics(reg)
		}
	}
}

// New builds an evaluator for db over rules. service labels log lines.
func New(service string, db *tsdb.DB, rules []Objective, opts ...Option) *Evaluator {
	e := &Evaluator{
		db:      db,
		rules:   append([]Objective(nil), rules...),
		now:     time.Now,
		tracer:  tracing.Default(),
		service: service,
		evalMu:  make(chan struct{}, 1),
		wasViol: make(map[string]bool),
	}
	e.bindMetrics(metrics.Default())
	for _, o := range opts {
		o(e)
	}
	return e
}

func (e *Evaluator) bindMetrics(reg *metrics.Registry) {
	e.mBurnRate = reg.GaugeVec("slo_burn_rate",
		"Error-budget burn rate per objective and window (bad fraction / budget).",
		"objective", "window")
	e.mViolating = reg.GaugeVec("slo_violating",
		"1 while the objective is in violation, else 0.", "objective")
	e.mViolations = reg.CounterVec("slo_violations_total",
		"Transitions into violation, by objective.", "objective")
}

// Objectives returns the rule set.
func (e *Evaluator) Objectives() []Objective { return append([]Objective(nil), e.rules...) }

// Evaluate judges every objective now, updates the slo_* metrics, logs
// violation transitions and returns the statuses sorted by objective name.
func (e *Evaluator) Evaluate() []Status {
	e.evalMu <- struct{}{}
	defer func() { <-e.evalMu }()

	at := e.now()
	out := make([]Status, 0, len(e.rules))
	for _, rule := range e.rules {
		st := e.evaluateOne(rule, at)
		out = append(out, st)

		e.mBurnRate.With(rule.Name, "fast").Set(st.BurnFast)
		e.mBurnRate.With(rule.Name, "slow").Set(st.BurnSlow)
		if st.Violating {
			e.mViolating.With(rule.Name).Set(1)
		} else {
			e.mViolating.With(rule.Name).Set(0)
		}
		was := e.wasViol[rule.Name]
		if st.Violating && !was {
			e.mViolations.With(rule.Name).Inc()
			slog.Warn("slo: objective violating",
				"service", e.service, "objective", rule.Name,
				"burn_fast", st.BurnFast, "burn_slow", st.BurnSlow,
				"bad", st.BadSamples, "samples", st.Samples,
				"last_value", st.LastValue, "series", rule.Series)
			span := e.tracer.StartRemote(tracing.SpanContext{}, "slo.violation",
				tracing.String("objective", rule.Name),
				tracing.String("service", e.service),
				tracing.String("series", rule.Series),
				tracing.String("burn_slow", fmt.Sprintf("%.3f", st.BurnSlow)))
			span.AddEvent("violation-entered",
				tracing.String("last_value", fmt.Sprintf("%g", st.LastValue)))
			span.End()
		} else if !st.Violating && was {
			slog.Info("slo: objective recovered",
				"service", e.service, "objective", rule.Name,
				"burn_fast", st.BurnFast, "burn_slow", st.BurnSlow)
		}
		e.wasViol[rule.Name] = st.Violating
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective.Name < out[j].Objective.Name })
	return out
}

// evaluateOne computes one objective's status at the anchor instant.
func (e *Evaluator) evaluateOne(rule Objective, at time.Time) Status {
	st := Status{
		Objective:         rule,
		WindowSeconds:     rule.Window.Seconds(),
		FastWindowSeconds: rule.fastWindow().Seconds(),
	}
	names := matchSeries(e.db, rule.Series)
	slow := e.judged(rule, names, at, rule.Window)
	fast := e.judged(rule, names, at, rule.fastWindow())
	if len(slow) == 0 {
		st.NoData = true
		return st
	}
	last := slow[len(slow)-1]
	st.Samples = len(slow)
	st.LastValue = last.v
	st.LastAt = time.Unix(0, last.t)
	for _, s := range slow {
		if !s.good {
			st.BadSamples++
		}
	}
	st.BurnSlow = burnRate(slow, rule.Budget)
	st.BurnFast = burnRate(fast, rule.Budget)
	alert := rule.Alert
	if alert <= 0 {
		alert = 1
	}
	st.Violating = st.BurnSlow >= alert && st.BurnFast >= alert
	return st
}

// judgedSample is one reduced, judged observation.
type judgedSample struct {
	t    int64
	v    float64
	good bool
}

// judged gathers the window's samples across matching series, applies the
// reduction and the goodness predicate. Results are ascending by time.
func (e *Evaluator) judged(rule Objective, names []string, at time.Time, window time.Duration) []judgedSample {
	switch rule.reduceOrDefault() {
	case ReduceMaxOverMin:
		byTime := map[int64][]float64{}
		for _, name := range names {
			s, ok := e.db.Lookup(name)
			if !ok {
				continue
			}
			for _, p := range s.WindowBefore(at, window) {
				byTime[p.T] = append(byTime[p.T], p.V)
			}
		}
		ts := make([]int64, 0, len(byTime))
		for t := range byTime {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		var out []judgedSample
		for _, t := range ts {
			vs := byTime[t]
			if len(vs) < 2 {
				continue
			}
			lo, hi := vs[0], vs[0]
			for _, v := range vs[1:] {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			ratio := math.Inf(1)
			switch {
			case hi == 0 && lo == 0:
				ratio = 1 // all shards idle: perfectly balanced
			case lo > 0:
				ratio = hi / lo
			}
			out = append(out, judgedSample{t: t, v: ratio, good: rule.Op.good(ratio, rule.Threshold)})
		}
		return out
	default: // ReduceEach
		var out []judgedSample
		for _, name := range names {
			s, ok := e.db.Lookup(name)
			if !ok {
				continue
			}
			for _, p := range s.WindowBefore(at, window) {
				out = append(out, judgedSample{t: p.T, v: p.V, good: rule.Op.good(p.V, rule.Threshold)})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].t < out[j].t })
		return out
	}
}

func (o Objective) reduceOrDefault() Reduce {
	if o.Reduce == "" {
		return ReduceEach
	}
	return o.Reduce
}

// burnRate maps a judged window to badFraction/budget. An empty window
// burns nothing; a zero budget saturates on the first bad sample.
func burnRate(samples []judgedSample, budget float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	bad := 0
	for _, s := range samples {
		if !s.good {
			bad++
		}
	}
	frac := float64(bad) / float64(len(samples))
	if budget <= 0 {
		if bad > 0 {
			return saturatedBurn
		}
		return 0
	}
	rate := frac / budget
	if rate > saturatedBurn {
		return saturatedBurn
	}
	return rate
}

// matchSeries resolves an objective's series pattern: exact name, or one '*'
// matching any substring ("prefix*suffix").
func matchSeries(db *tsdb.DB, pattern string) []string {
	star := strings.IndexByte(pattern, '*')
	if star < 0 {
		if _, ok := db.Lookup(pattern); ok {
			return []string{pattern}
		}
		return nil
	}
	prefix, suffix := pattern[:star], pattern[star+1:]
	var out []string
	for _, name := range db.Names() {
		if len(name) >= len(prefix)+len(suffix) &&
			strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) {
			out = append(out, name)
		}
	}
	return out
}
