package slo

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"tycoongrid/internal/metrics"
	"tycoongrid/internal/tsdb"
)

// feed appends one point per second ending at end-1s on the named series.
func feed(db *tsdb.DB, name string, end time.Time, vals ...float64) {
	start := end.Add(-time.Duration(len(vals)) * time.Second)
	s := db.Series(name)
	for i, v := range vals {
		s.AppendNanos(start.Add(time.Duration(i)*time.Second).UnixNano(), v)
	}
}

func newEval(t *testing.T, db *tsdb.DB, now time.Time, rules ...Objective) (*Evaluator, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	e := New("test", db, rules, WithNow(func() time.Time { return now }), WithRegistry(reg))
	return e, reg
}

func TestBurnRateViolationAndRecovery(t *testing.T) {
	now := time.Unix(10_000, 0)
	db := tsdb.NewDB(256)
	rule := Objective{
		Name: "latency", Series: "lat:p99", Op: OpLT, Threshold: 0.05,
		Window: 60 * time.Second, Budget: 0.10,
	}
	e, reg := newEval(t, db, now, rule)

	// 60 good samples: no burn.
	feed(db, "lat:p99", now, repeat(0.01, 60)...)
	st := e.Evaluate()[0]
	if st.Violating || st.BurnSlow != 0 || st.NoData {
		t.Fatalf("clean window: %+v", st)
	}

	// Overwrite the tail: last 20 samples bad. Slow window: 20/60 bad over a
	// 0.10 budget -> burn ~3.3; fast window (5s) all bad -> burn 10.
	db2 := tsdb.NewDB(256)
	e2, reg2 := newEval(t, db2, now, rule)
	feed(db2, "lat:p99", now, append(repeat(0.01, 40), repeat(0.2, 20)...)...)
	st = e2.Evaluate()[0]
	if !st.Violating {
		t.Fatalf("sustained bad tail must violate: %+v", st)
	}
	// 59, not 60: the oldest sample lands exactly on the window boundary and
	// WindowBefore is exclusive at the start.
	if st.BadSamples != 20 || st.Samples != 59 {
		t.Fatalf("bad/samples = %d/%d, want 20/59", st.BadSamples, st.Samples)
	}
	if st.BurnSlow < 3.2 || st.BurnSlow > 3.5 {
		t.Fatalf("burn slow = %g, want ~3.33", st.BurnSlow)
	}
	if got := reg2.CounterValue("slo_violations_total", "latency"); got != 1 {
		t.Fatalf("violations counter = %d, want 1", got)
	}
	// Second evaluation while still violating must not double-count.
	e2.Evaluate()
	if got := reg2.CounterValue("slo_violations_total", "latency"); got != 1 {
		t.Fatalf("violations counter after re-eval = %d, want still 1", got)
	}
	_ = reg
}

// TestBurnRateTransientSpikeDoesNotPage: a bad burst older than the fast
// window keeps the slow burn high but the fast burn low -> no violation.
// This is the whole point of the multi-window construction.
func TestBurnRateTransientSpikeDoesNotPage(t *testing.T) {
	now := time.Unix(10_000, 0)
	db := tsdb.NewDB(256)
	rule := Objective{
		Name: "latency", Series: "lat:p99", Op: OpLT, Threshold: 0.05,
		Window: 60 * time.Second, Budget: 0.10,
	}
	e, _ := newEval(t, db, now, rule)
	// 20 bad samples, then 40 good: the spike ended 40s ago; the 5s fast
	// window sees only good samples.
	feed(db, "lat:p99", now, append(repeat(0.2, 20), repeat(0.01, 40)...)...)
	st := e.Evaluate()[0]
	if st.BurnSlow < 3 {
		t.Fatalf("slow burn should still see the spike: %+v", st)
	}
	if st.BurnFast != 0 {
		t.Fatalf("fast burn should be clean: %+v", st)
	}
	if st.Violating {
		t.Fatalf("ended spike must not violate: %+v", st)
	}
}

// TestBurnRateWithSeriesGap models a daemon restart: the series stops, the
// evaluator clock keeps moving. Windows are anchored at the evaluator clock
// (WindowBefore), so stale data ages out instead of freezing its verdict.
func TestBurnRateWithSeriesGap(t *testing.T) {
	rule := Objective{
		Name: "latency", Series: "lat:p99", Op: OpLT, Threshold: 0.05,
		Window: 60 * time.Second, Budget: 0.10,
	}
	db := tsdb.NewDB(256)
	dataEnd := time.Unix(10_000, 0)
	feed(db, "lat:p99", dataEnd, repeat(0.2, 60)...) // all bad, then silence

	// Evaluated right at the data tail: violating.
	e, _ := newEval(t, db, dataEnd, rule)
	if st := e.Evaluate()[0]; !st.Violating {
		t.Fatalf("fresh bad data must violate: %+v", st)
	}

	// 2 minutes of silence later (restarted daemon, nothing re-fed): the
	// window is empty -> no-data, not violating, burn rates zero.
	later := dataEnd.Add(2 * time.Minute)
	e2, _ := newEval(t, db, later, rule)
	st := e2.Evaluate()[0]
	if !st.NoData || st.Violating || st.BurnSlow != 0 || st.BurnFast != 0 {
		t.Fatalf("silent series must age out to no-data: %+v", st)
	}

	// The daemon comes back and emits 10 good samples after the gap: only
	// the live samples are judged; the pre-gap bad run is outside the window.
	resumed := dataEnd.Add(3 * time.Minute)
	feed(db, "lat:p99", resumed, repeat(0.01, 10)...)
	e3, _ := newEval(t, db, resumed, rule)
	st = e3.Evaluate()[0]
	if st.NoData || st.Violating || st.BadSamples != 0 || st.Samples != 10 {
		t.Fatalf("post-gap recovery must judge only live samples: %+v", st)
	}
}

func TestZeroBudgetSaturates(t *testing.T) {
	now := time.Unix(10_000, 0)
	db := tsdb.NewDB(64)
	rule := Objective{
		Name: "conservation", Series: "bank_conservation_drift_credits",
		Op: OpEQ, Threshold: 0, Window: 60 * time.Second, Budget: 0,
	}
	e, _ := newEval(t, db, now, rule)
	feed(db, "bank_conservation_drift_credits", now, 0, 0, 0, 0, 7) // one drifted sample
	st := e.Evaluate()[0]
	if !st.Violating || st.BurnSlow != saturatedBurn || st.BurnFast != saturatedBurn {
		t.Fatalf("any drift under a zero budget must saturate: %+v", st)
	}

	db2 := tsdb.NewDB(64)
	e2, _ := newEval(t, db2, now, rule)
	feed(db2, "bank_conservation_drift_credits", now, 0, 0, 0, 0, 0)
	if st := e2.Evaluate()[0]; st.Violating || st.BurnSlow != 0 {
		t.Fatalf("zero drift must not burn: %+v", st)
	}
}

func TestMaxOverMinImbalance(t *testing.T) {
	now := time.Unix(10_000, 0)
	rule := Objective{
		Name: "shard-balance", Series: "clears{shard=*" + tsdb.SuffixRate,
		Op: OpLT, Threshold: 2, Window: 60 * time.Second, Budget: 0.10,
		Reduce: ReduceMaxOverMin,
	}

	db := tsdb.NewDB(256)
	e, _ := newEval(t, db, now, rule)
	feed(db, `clears{shard="0"}`+tsdb.SuffixRate, now, repeat(10, 30)...)
	feed(db, `clears{shard="1"}`+tsdb.SuffixRate, now, repeat(45, 30)...) // 4.5x
	st := e.Evaluate()[0]
	if !st.Violating || st.LastValue != 4.5 {
		t.Fatalf("4.5x imbalance must violate: %+v", st)
	}

	db2 := tsdb.NewDB(256)
	e2, _ := newEval(t, db2, now, rule)
	feed(db2, `clears{shard="0"}`+tsdb.SuffixRate, now, repeat(10, 30)...)
	feed(db2, `clears{shard="1"}`+tsdb.SuffixRate, now, repeat(12, 30)...)
	if st := e2.Evaluate()[0]; st.Violating || st.LastValue != 1.2 {
		t.Fatalf("1.2x must pass: %+v", st)
	}

	// All shards idle: ratio defined as 1 (balanced), not a division blowup.
	db3 := tsdb.NewDB(256)
	e3, _ := newEval(t, db3, now, rule)
	feed(db3, `clears{shard="0"}`+tsdb.SuffixRate, now, repeat(0, 10)...)
	feed(db3, `clears{shard="1"}`+tsdb.SuffixRate, now, repeat(0, 10)...)
	if st := e3.Evaluate()[0]; st.Violating || st.LastValue != 1 {
		t.Fatalf("idle shards must judge balanced: %+v", st)
	}

	// Only one shard reporting: timestamps with <2 series are skipped.
	db4 := tsdb.NewDB(256)
	e4, _ := newEval(t, db4, now, rule)
	feed(db4, `clears{shard="0"}`+tsdb.SuffixRate, now, repeat(10, 10)...)
	if st := e4.Evaluate()[0]; !st.NoData {
		t.Fatalf("single series cannot form a ratio: %+v", st)
	}
}

// TestPatternMidStar guards the classic footgun: a pattern ending in ":p99"
// with a mid-string '*' must not sweep in ":rate" series.
func TestPatternMidStar(t *testing.T) {
	db := tsdb.NewDB(16)
	db.Series(`http_request_duration_seconds{route="/bids"}` + tsdb.SuffixP99)
	db.Series(`http_request_duration_seconds{route="/bids"}` + tsdb.SuffixRate)
	db.Series(`http_request_duration_seconds{route="/auction"}` + tsdb.SuffixP99)

	got := matchSeries(db, "http_request_duration_seconds{*"+tsdb.SuffixP99)
	if len(got) != 2 {
		t.Fatalf("mid-star match = %v, want the two :p99 series only", got)
	}
	for _, name := range got {
		if name[len(name)-4:] != tsdb.SuffixP99 {
			t.Fatalf("matched non-p99 series %q", name)
		}
	}
	if got := matchSeries(db, "nope*"+tsdb.SuffixP99); got != nil {
		t.Fatalf("unmatched pattern = %v, want nil", got)
	}
}

func TestHandler(t *testing.T) {
	now := time.Unix(10_000, 0)
	db := tsdb.NewDB(64)
	rule := Objective{
		Name: "latency", Series: "lat:p99", Op: OpLT, Threshold: 0.05,
		Window: 60 * time.Second, Budget: 0.10,
	}
	e, _ := newEval(t, db, now, rule)
	feed(db, "lat:p99", now, repeat(0.2, 60)...)

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var rep struct {
		Service    string `json:"service"`
		Violating  int    `json:"violating"`
		Objectives []struct {
			Violating bool `json:"violating"`
		} `json:"objectives"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if rep.Service != "test" || rep.Violating != 1 || len(rep.Objectives) != 1 || !rep.Objectives[0].Violating {
		t.Fatalf("report = %+v", rep)
	}

	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/slo", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestDefaultObjectivesShape(t *testing.T) {
	rules := DefaultObjectives()
	if len(rules) < 3 {
		t.Fatalf("want at least 3 stock objectives, got %d", len(rules))
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Name == "" || r.Series == "" || r.Window <= 0 {
			t.Fatalf("malformed stock objective: %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate objective name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if !seen["money-conservation"] || !seen["shard-clear-balance"] {
		t.Fatal("stock set must include conservation and shard-balance rules")
	}
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
