package marketplane

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
)

// The horizontal-scale benchmark: a synthetic open workload of short-lived
// bids pushed through the full market plane — escrow funding through the
// (sharded) bank, price discovery, bid placement, per-tick clears, and
// settlement of every charge and refund back through the bank — at a host
// and job count three orders of magnitude above the paper's testbed.
//
// -shards 1 is the compatibility baseline and models today's unsharded
// plane faithfully: price discovery queries each candidate host with
// auction.Market.PriceExcluding (a lock acquisition plus a sorted float fold
// per query, exactly what the Best Response agent does per host today), and
// every placed bid is followed by an immediate single-bid clear. -shards N
// (N >= 2) is the plane's batched mode: discovery reads the lock-free price
// cache, bids queue for the owning shard's once-per-tick batch clear, and N
// workers drive the shards. The speedup is therefore algorithmic — batching
// amortizes the per-bid folds into one clear per host per tick — and holds
// even on a single-core machine; on multi-core hardware the per-shard
// workers add parallelism on top.

// BenchConfig parameterizes one benchmark run.
type BenchConfig struct {
	Hosts  int // host markets
	Jobs   int // bids pushed through the plane
	Shards int // 1 = compatibility baseline, >= 2 = batched sharded mode
	// Users is the number of funded user accounts jobs draw escrow from
	// (default 1000).
	Users int
	// ArrivalTicks spreads job arrivals over this many ticks (default 25).
	ArrivalTicks int
	// LifetimeTicks is each bid's life from placement to deadline, in ticks
	// (default 3).
	LifetimeTicks int
	// Candidates is how many hosts each job prices before bidding on the
	// cheapest (default 32). The paper's Best Response agent prices every
	// host; 32 of 10000 is already a generous concession to the baseline.
	Candidates int
	// BudgetCredits is each job's bid budget (default 2).
	BudgetCredits float64
	// Interval is the virtual reallocation period (default 10s).
	Interval time.Duration
	Seed     int64
}

func (c *BenchConfig) setDefaults() error {
	if c.Hosts <= 0 || c.Jobs <= 0 {
		return fmt.Errorf("marketplane: bench needs hosts and jobs, got %d/%d", c.Hosts, c.Jobs)
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Users <= 0 {
		c.Users = 1000
	}
	if c.Users > c.Jobs {
		c.Users = c.Jobs
	}
	if c.ArrivalTicks <= 0 {
		c.ArrivalTicks = 25
	}
	if c.LifetimeTicks <= 0 {
		c.LifetimeTicks = 3
	}
	if c.Candidates <= 0 {
		c.Candidates = 32
	}
	if c.Candidates > c.Hosts {
		c.Candidates = c.Hosts
	}
	if c.BudgetCredits <= 0 {
		c.BudgetCredits = 2
	}
	if c.Interval <= 0 {
		c.Interval = auction.DefaultInterval
	}
	return nil
}

// BenchResult is one run's record, serialized into BENCH_scale.json.
type BenchResult struct {
	Hosts     int     `json:"hosts"`
	Jobs      int     `json:"jobs"`
	Shards    int     `json:"shards"`
	ElapsedMS float64 `json:"elapsed_ms"`

	JobsPerSec   float64 `json:"jobs_per_sec"`
	ClearsPerSec float64 `json:"clears_per_sec"`
	Clears       uint64  `json:"clears"`
	P50BidMicros float64 `json:"p50_bid_latency_us"`
	P99BidMicros float64 `json:"p99_bid_latency_us"`

	LocalTransfers      uint64 `json:"local_transfers"`
	CrossShardTransfers uint64 `json:"cross_shard_transfers"`

	MoneyConserved  bool `json:"money_conserved"`
	EscrowDrained   bool `json:"escrow_drained"`
	NoOrphanedHolds bool `json:"no_orphaned_holds"`

	// SpeedupVsOneShard is filled by the CLI when a 1-shard run is present.
	SpeedupVsOneShard float64 `json:"speedup_vs_1_shard,omitempty"`
}

// escrowState accumulates one live bid's money movement until its expiry
// tick, when the total charge is remitted to the host and any leftover
// refunded — Tycoon's "settle locally per interval, remit in aggregate".
type escrowState struct {
	host    string
	charged bank.Amount
	refund  bank.Amount
	expiry  int
}

// benchWorker is the per-shard driver state. Worker w submits jobs with
// j % W == w and settles the clears of shard w's hosts.
type benchWorker struct {
	src     *rng.Source
	lat     []float64 // bid latency samples, microseconds
	pending map[auction.BidderID]*escrowState
	local   uint64
	cross   uint64
	clears  uint64
	err     error
}

func (w *benchWorker) fail(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// RunScaleBench executes one benchmark configuration and verifies the money
// invariants at the end. It is deliberately self-contained: it builds its
// own markets, plane and sharded bank, so runs at different shard counts
// share nothing.
func RunScaleBench(cfg BenchConfig) (BenchResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return BenchResult{}, err
	}

	// --- World construction (outside the timed section) ---
	var caSeed [32]byte
	copy(caSeed[:], []byte(fmt.Sprintf("scale-bench-%016x", uint64(cfg.Seed))))
	ca, err := pki.NewDeterministicCA("/O=Grid/CN=ScaleBenchCA", caSeed)
	if err != nil {
		return BenchResult{}, err
	}
	var opSeed [32]byte
	copy(opSeed[:], []byte(fmt.Sprintf("scale-bench-op-%08x", uint64(cfg.Seed))))
	op, err := ca.IssueDeterministic("/CN=ScaleBenchOperator", opSeed)
	if err != nil {
		return BenchResult{}, err
	}
	quiet := tracing.New(tracing.WithCapacity(8))
	quiet.SetSampleRatio(0)

	markets := make([]HostMarket, cfg.Hosts)
	hostIDs := make([]string, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hostIDs[i] = fmt.Sprintf("h%05d", i)
		m, err := auction.NewMarket(auction.Config{
			HostID:      hostIDs[i],
			CapacityMHz: 2800,
			Start:       sim.Epoch,
			Tracer:      quiet,
		})
		if err != nil {
			return BenchResult{}, err
		}
		markets[i] = m
	}
	plane, err := New(Config{Shards: cfg.Shards, Markets: markets})
	if err != nil {
		return BenchResult{}, err
	}

	sbank := NewShardedBank(op, fixedClock(sim.Epoch), cfg.Shards,
		[]bank.Option{bank.WithLedgerRetention(8192), bank.WithTracer(quiet)})

	budget := bank.MustCredits(cfg.BudgetCredits)
	users := make([]bank.AccountID, cfg.Users)
	perUser := bank.Amount(cfg.Jobs/cfg.Users+2) * budget
	var deposited bank.Amount
	for u := range users {
		users[u] = bank.AccountID(fmt.Sprintf("u%05d", u))
		if _, err := sbank.CreateAccount(users[u], op.Public()); err != nil {
			return BenchResult{}, err
		}
		if err := sbank.Deposit(users[u], perUser, "bench allocation"); err != nil {
			return BenchResult{}, err
		}
		deposited += perUser
	}
	earn := make([]bank.AccountID, cfg.Hosts)
	for h := range earn {
		earn[h] = bank.AccountID("e" + hostIDs[h][1:])
		if _, err := sbank.CreateAccount(earn[h], op.Public()); err != nil {
			return BenchResult{}, err
		}
	}

	// Pre-partition jobs: worker w owns jobs j % W == w; job j arrives at
	// tick j*ArrivalTicks/Jobs, spreading arrivals evenly.
	W := cfg.Shards
	totalTicks := cfg.ArrivalTicks + cfg.LifetimeTicks + 2
	byTick := make([][][]int, W)
	for w := 0; w < W; w++ {
		byTick[w] = make([][]int, totalTicks)
	}
	for j := 0; j < cfg.Jobs; j++ {
		w, t := j%W, j*cfg.ArrivalTicks/cfg.Jobs
		byTick[w][t] = append(byTick[w][t], j)
	}
	workers := make([]*benchWorker, W)
	for w := 0; w < W; w++ {
		workers[w] = &benchWorker{
			src:     rng.NewReplica(cfg.Seed, uint64(w)),
			lat:     make([]float64, 0, cfg.Jobs/W+1),
			pending: make(map[auction.BidderID]*escrowState, 4*cfg.Jobs/cfg.ArrivalTicks/W+16),
		}
	}
	escrowID := func(j int) auction.BidderID {
		return auction.BidderID(fmt.Sprintf("esc-%08d", j))
	}
	jobOf := func(b auction.BidderID) int {
		j, _ := strconv.Atoi(string(b)[len("esc-"):])
		return j
	}
	compat := cfg.Shards == 1

	// move transfers via the sharded bank, counting local vs cross-shard.
	move := func(w *benchWorker, from, to bank.AccountID, amt bank.Amount, kind bank.EntryKind) {
		if sbank.ShardFor(from) == sbank.ShardFor(to) {
			w.local++
		} else {
			w.cross++
		}
		if err := sbank.MoveInternal(op, from, to, amt, kind, ""); err != nil {
			w.fail(fmt.Errorf("settling %s -> %s: %w", from, to, err))
		}
	}

	// --- Timed section ---
	startWall := time.Now()
	for t := 0; t < totalTicks; t++ {
		nowT := sim.Epoch.Add(time.Duration(t) * cfg.Interval)
		clearT := sim.Epoch.Add(time.Duration(t+1) * cfg.Interval)
		deadline := sim.Epoch.Add(time.Duration(t+1+cfg.LifetimeTicks) * cfg.Interval)

		// Submit phase: every worker funds and places its arrivals for t.
		sim.FanOut(W, func(wi int) {
			w := workers[wi]
			for _, j := range byTick[wi][t] {
				esc := escrowID(j)
				user := users[j%cfg.Users]
				if _, err := sbank.CreateAccount(bank.AccountID(esc), op.Public()); err != nil {
					w.fail(err)
					continue
				}
				move(w, user, bank.AccountID(esc), budget, bank.EntryTransfer)

				begin := time.Now()
				best, bestPrice := -1, 0.0
				for c := 0; c < cfg.Candidates; c++ {
					h := w.src.Intn(cfg.Hosts)
					var p float64
					if compat {
						p = markets[h].(*auction.Market).PriceExcluding(esc)
					} else {
						p = plane.PriceAt(h)
					}
					if best < 0 || p < bestPrice {
						best, bestPrice = h, p
					}
				}
				if compat {
					if _, err := markets[best].PlaceBid(esc, budget, deadline); err != nil {
						w.fail(err)
					}
					// Today's plane recomputes the host's price on every bid:
					// a same-instant tick is exactly that single-bid clear.
					markets[best].Tick(nowT)
					w.clears++
				} else {
					plane.EnqueueBidAt(best, esc, budget, deadline)
				}
				w.lat = append(w.lat, float64(time.Since(begin).Nanoseconds())/1e3)
			}
		})

		// Clear phase: each shard batch-clears its hosts and settles expired
		// bids — accumulated charges to the host, leftovers back to the user.
		sim.FanOut(W, func(wi int) {
			w := workers[wi]
			var results []TickResult
			if compat {
				results = plane.TickShard(0, clearT, nil)
			} else {
				results = plane.TickShard(wi, clearT, nil)
			}
			w.clears += uint64(len(results))
			for _, r := range results {
				for _, ch := range r.Charges {
					es := w.pending[ch.Bidder]
					if es == nil {
						j := jobOf(ch.Bidder)
						es = &escrowState{host: r.Host, expiry: j*cfg.ArrivalTicks/cfg.Jobs + cfg.LifetimeTicks}
						w.pending[ch.Bidder] = es
					}
					es.charged += ch.Amount
				}
				for _, rf := range r.Refunds {
					es := w.pending[rf.Bidder]
					if es == nil {
						j := jobOf(rf.Bidder)
						es = &escrowState{host: r.Host, expiry: j*cfg.ArrivalTicks/cfg.Jobs + cfg.LifetimeTicks}
						w.pending[rf.Bidder] = es
					}
					es.refund += rf.Amount
				}
			}
			for b, es := range w.pending {
				if es.expiry != t {
					continue
				}
				hIdx, _ := plane.HostIndex(es.host)
				if es.charged > 0 {
					move(w, bank.AccountID(b), earn[hIdx], es.charged, bank.EntryCharge)
				}
				if es.refund > 0 {
					move(w, bank.AccountID(b), users[jobOf(b)%cfg.Users], es.refund, bank.EntryRefund)
				}
				delete(w.pending, b)
			}
		})
	}
	elapsed := time.Since(startWall)

	// --- Verification and reduction ---
	res := BenchResult{Hosts: cfg.Hosts, Jobs: cfg.Jobs, Shards: cfg.Shards}
	var all []float64
	for _, w := range workers {
		if w.err != nil {
			return res, w.err
		}
		if len(w.pending) != 0 {
			return res, fmt.Errorf("marketplane: %d bids never settled", len(w.pending))
		}
		all = append(all, w.lat...)
		res.Clears += w.clears
		res.LocalTransfers += w.local
		res.CrossShardTransfers += w.cross
	}
	sort.Float64s(all)
	res.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	res.JobsPerSec = float64(cfg.Jobs) / elapsed.Seconds()
	res.ClearsPerSec = float64(res.Clears) / elapsed.Seconds()
	res.P50BidMicros = quantile(all, 0.50)
	res.P99BidMicros = quantile(all, 0.99)

	res.MoneyConserved = sbank.TotalMoney() == deposited
	res.NoOrphanedHolds = len(sbank.Holds()) == 0
	res.EscrowDrained = true
	for _, id := range sbank.Accounts() {
		if !strings.HasPrefix(string(id), "esc-") {
			continue
		}
		if bal, err := sbank.Balance(id); err != nil || bal != 0 {
			res.EscrowDrained = false
			break
		}
	}
	if !res.MoneyConserved || !res.EscrowDrained || !res.NoOrphanedHolds {
		return res, fmt.Errorf("marketplane: invariant failure: conserved=%v drained=%v noholds=%v",
			res.MoneyConserved, res.EscrowDrained, res.NoOrphanedHolds)
	}
	return res, nil
}

// quantile returns the q-quantile of sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// fixedClock is an immutable Clock: the benchmark has no virtual engine, and
// ledger timestamps are irrelevant to throughput, so every entry is stamped
// with the epoch. Immutability makes it trivially safe across workers.
type fixedClock time.Time

// Now returns the fixed instant.
func (c fixedClock) Now() time.Time { return time.Time(c) }
