package marketplane

import (
	"strconv"

	"tycoongrid/internal/metrics"
)

// Plane and bank instrumentation. Families are registered once at package
// init and per-shard children are resolved at construction time: CounterVec
// .With() takes the family's read lock and a map lookup, which profiles as
// real contention when ten thousand hosts bid through a handful of shards,
// so no hot path here ever performs a name or label lookup — each shard
// holds its resolved children and pays one atomic add per event.
var (
	mPlaneTicks = metrics.Default().Counter("marketplane_ticks_total",
		"Whole-plane tick sweeps executed (all shards, one batch clear each).")
	mBidsEnqueued = metrics.Default().CounterVec("marketplane_bids_enqueued_total",
		"Bids queued for the next batch clear.", "shard")
	mBidsApplied = metrics.Default().CounterVec("marketplane_bids_applied_total",
		"Queued bids entered into host markets at a batch clear.", "shard")
	mBidsDropped = metrics.Default().CounterVec("marketplane_bids_dropped_total",
		"Queued bids discarded (host down or rejected by its market).", "shard")
	mShardClears = metrics.Default().CounterVec("marketplane_shard_clears_total",
		"Host-market clears executed, by shard.", "shard")
	mBidApplySeconds = metrics.Default().Histogram("marketplane_bid_apply_seconds",
		"Wall time to apply one shard's queued bid batch at a clear; exemplars carry the active trace.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 0.005, 0.01, 0.05, 0.1, 0.5})
	mShardSpotMean = metrics.Default().GaugeVec("marketplane_shard_spot_price_mean",
		"Mean spot price across the shard's host markets after its last clear.", "shard")

	m2pcPrepares = metrics.Default().Counter("marketplane_2pc_prepares_total",
		"Cross-shard transfers prepared (debit held at source shard).")
	m2pcCommits = metrics.Default().Counter("marketplane_2pc_commits_total",
		"Cross-shard transfers whose commit decision was recorded.")
	m2pcAborts = metrics.Default().Counter("marketplane_2pc_aborts_total",
		"Cross-shard transfers aborted (hold returned to source).")
	m2pcResolved = metrics.Default().Counter("marketplane_2pc_resolved_total",
		"In-doubt transfers completed by crash recovery.")
	mXferLocal = metrics.Default().Counter("marketplane_transfers_local_total",
		"Transfers settled entirely within one bank shard (single-lock fast path).")
	mXferCross = metrics.Default().Counter("marketplane_transfers_cross_shard_total",
		"Transfers settled with the two-phase cross-shard protocol.")
	mBankShardDown = metrics.Default().GaugeVec("marketplane_bank_shard_down",
		"1 while the bank shard is crashed, else 0.", "shard")
)

// shardCounters are the per-shard children a shard resolves once and holds.
type shardCounters struct {
	enqueued *metrics.Counter
	applied  *metrics.Counter
	dropped  *metrics.Counter
	clears   *metrics.Counter
	spotMean *metrics.Gauge
}

func countersFor(shard int) shardCounters {
	label := strconv.Itoa(shard)
	return shardCounters{
		enqueued: mBidsEnqueued.With(label),
		applied:  mBidsApplied.With(label),
		dropped:  mBidsDropped.With(label),
		clears:   mShardClears.With(label),
		spotMean: mShardSpotMean.With(label),
	}
}
