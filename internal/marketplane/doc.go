// Package marketplane is the horizontal-scaling layer of the market: it
// shards the per-host auctioneers and the bank across N in-process
// partitions so clears and transfers proceed under N independent locks
// instead of one.
//
// The shape follows the two systems the paper builds on. Tycoon (Lai et al.,
// cs/0412038) runs one auctioneer per host with only a thin stateless index
// on top, so the market itself has no central lock to saturate; Plane
// reproduces that by hash-partitioning host markets across shards, each
// clearing its hosts once per tick in a single batch (instead of recomputing
// prices per bid) and publishing spot prices to a lock-free cache that bid
// placement reads without touching the auctioneer. GridBank (Barmouta &
// Buyya, cs/0210002) distributes accounting across independent bank servers;
// ShardedBank reproduces that by hash-partitioning accounts across bank
// shards and moving money between shards with a two-phase prepare/commit
// protocol (bank/twophase.go) whose holds are part of the money supply — so
// conservation stays exactly checkable at every instant, under concurrent
// clears and under injected shard crashes.
//
// Determinism contract: a 1-shard plane and a 1-shard bank take the exact
// single-lock code paths of auction.Market and bank.Bank (sim.FanOut runs
// n == 1 inline), so -shards 1 output is bit-for-bit identical to the
// unsharded configuration and the replication guarantees of the experiment
// harness survive. With N >= 2 shards, per-shard work runs concurrently but
// every cross-shard merge happens in global host order, so simulation
// results are a deterministic function of (seed, N) — independent of
// goroutine scheduling — though not bit-identical across different N, since
// batching changes when prices are read.
package marketplane
