package marketplane

import keyshard "tycoongrid/internal/shard"

// ShardOf maps a key (a host id, an account id) to one of n shards by
// FNV-1a hash. The assignment depends only on the key and n, never on
// insertion order, so adding hosts or accounts does not migrate existing
// ones between shards within a run. The hash itself lives in internal/shard
// so lower layers (the pricefeed hub's lock stripes) can share it without
// importing the market plane.
func ShardOf(key string, n int) int {
	return keyshard.Of(key, n)
}
