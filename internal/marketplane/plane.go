package marketplane

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
)

// HostMarket is the slice of auction.Market the plane drives. *auction.Market
// satisfies it; the indirection keeps the plane testable with stub markets.
type HostMarket interface {
	HostID() string
	Tick(now time.Time) (charges, refunds []auction.Charge)
	PlaceBid(bidder auction.BidderID, budget bank.Amount, deadline time.Time) (refund bank.Amount, err error)
	SpotPrice() float64
}

// Config configures a Plane.
type Config struct {
	// Shards is the number of auctioneer partitions; minimum 1. One shard is
	// the exact sequential legacy path (see the package determinism contract).
	Shards int
	// Markets are the host markets, in the caller's canonical host order;
	// TickAll returns results in this order regardless of sharding.
	Markets []HostMarket
}

// TickResult is one host's outcome of a plane tick, in canonical host order.
// Hosts skipped by the tick predicate have nil Charges and Refunds.
type TickResult struct {
	Host    string
	Charges []auction.Charge
	Refunds []auction.Charge
}

// queuedBid is a bid awaiting the shard's next batch clear.
type queuedBid struct {
	local    int // market index within the shard
	bidder   auction.BidderID
	budget   bank.Amount
	deadline time.Time
}

// shard is one auctioneer partition: a subset of host markets, a bid queue
// under the shard's own lock, and pre-resolved metric children.
type shard struct {
	index   int
	markets []HostMarket
	globals []int // canonical index of each local market

	mu    sync.Mutex
	queue []queuedBid

	ctr shardCounters
}

// Plane is the sharded market: hosts hash-partitioned across auctioneer
// shards, each clearing its hosts once per tick in a batch, plus a lock-free
// spot-price cache refreshed at every clear. Safe for concurrent use.
type Plane struct {
	shards []*shard
	byHost map[string]int  // host id -> canonical index
	slot   []slotRef       // canonical index -> shard/local
	prices []atomic.Uint64 // Float64bits of each host's cached spot price
}

type slotRef struct {
	shard *shard
	local int
}

// Errors returned by the plane.
var (
	ErrUnknownPlaneHost = errors.New("marketplane: unknown host")
	ErrBadPlaneConfig   = errors.New("marketplane: invalid config")
)

// New partitions the given markets across cfg.Shards auctioneer shards.
func New(cfg Config) (*Plane, error) {
	if len(cfg.Markets) == 0 {
		return nil, fmt.Errorf("%w: no markets", ErrBadPlaneConfig)
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if n > len(cfg.Markets) {
		n = len(cfg.Markets)
	}
	p := &Plane{
		shards: make([]*shard, n),
		byHost: make(map[string]int, len(cfg.Markets)),
		slot:   make([]slotRef, len(cfg.Markets)),
		prices: make([]atomic.Uint64, len(cfg.Markets)),
	}
	for i := range p.shards {
		p.shards[i] = &shard{index: i, ctr: countersFor(i)}
	}
	for g, m := range cfg.Markets {
		if m == nil {
			return nil, fmt.Errorf("%w: nil market at %d", ErrBadPlaneConfig, g)
		}
		id := m.HostID()
		if _, dup := p.byHost[id]; dup {
			return nil, fmt.Errorf("%w: duplicate host %q", ErrBadPlaneConfig, id)
		}
		s := p.shards[ShardOf(id, n)]
		s.markets = append(s.markets, m)
		s.globals = append(s.globals, g)
		p.byHost[id] = g
		p.slot[g] = slotRef{shard: s, local: len(s.markets) - 1}
		p.prices[g].Store(math.Float64bits(m.SpotPrice()))
	}
	return p, nil
}

// ShardCount returns the number of auctioneer shards.
func (p *Plane) ShardCount() int { return len(p.shards) }

// Hosts returns the number of host markets.
func (p *Plane) Hosts() int { return len(p.slot) }

// HostIndex returns the canonical index of a host, for the index-addressed
// fast paths (PriceAt, EnqueueBidAt).
func (p *Plane) HostIndex(host string) (int, bool) {
	g, ok := p.byHost[host]
	return g, ok
}

// ShardIndexOf returns which shard owns a host.
func (p *Plane) ShardIndexOf(host string) (int, bool) {
	g, ok := p.byHost[host]
	if !ok {
		return 0, false
	}
	return p.slot[g].shard.index, true
}

// PriceAt returns the cached spot price of the host at canonical index i —
// one atomic load, no auctioneer lock. The cache is refreshed at each batch
// clear, so between clears the value is up to one tick stale; that staleness
// is the price of taking bid placement off the auctioneer's lock.
func (p *Plane) PriceAt(i int) float64 {
	return math.Float64frombits(p.prices[i].Load())
}

// CachedPrice returns the cached spot price for a host by id.
func (p *Plane) CachedPrice(host string) (float64, bool) {
	g, ok := p.byHost[host]
	if !ok {
		return 0, false
	}
	return p.PriceAt(g), true
}

// EnqueueBidAt queues a bid for the host at canonical index i; it is entered
// into the host's market at the owning shard's next batch clear. The call
// takes only the shard's queue lock, never the auctioneer's.
func (p *Plane) EnqueueBidAt(i int, bidder auction.BidderID, budget bank.Amount, deadline time.Time) {
	ref := p.slot[i]
	ref.shard.mu.Lock()
	ref.shard.queue = append(ref.shard.queue, queuedBid{
		local: ref.local, bidder: bidder, budget: budget, deadline: deadline,
	})
	ref.shard.mu.Unlock()
	ref.shard.ctr.enqueued.Inc()
}

// EnqueueBid queues a bid for a host by id.
func (p *Plane) EnqueueBid(host string, bidder auction.BidderID, budget bank.Amount, deadline time.Time) error {
	g, ok := p.byHost[host]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlaneHost, host)
	}
	p.EnqueueBidAt(g, bidder, budget, deadline)
	return nil
}

// TickAll advances every shard to now — applying queued bids, batch-clearing
// each host market, refreshing the price cache — and returns per-host
// results in canonical host order. skip (optional) excludes hosts (e.g.
// crashed ones) from the sweep. Shards run concurrently when the plane has
// more than one; with one shard the sweep is inline and sequential, matching
// the legacy single-auctioneer execution exactly.
func (p *Plane) TickAll(now time.Time, skip func(host string) bool) []TickResult {
	results := make([]TickResult, len(p.slot))
	sim.FanOut(len(p.shards), func(i int) {
		p.shards[i].tick(p, now, skip, results)
	})
	mPlaneTicks.Inc()
	return results
}

// TickShard advances one shard to now and returns results for that shard's
// hosts only, in canonical host order. Callers that already run one worker
// per shard (the scale benchmark) use this instead of TickAll so the
// goroutine structure stays theirs.
func (p *Plane) TickShard(i int, now time.Time, skip func(host string) bool) []TickResult {
	s := p.shards[i]
	results := make([]TickResult, len(s.markets))
	s.tickInto(p, now, skip, func(local int) *TickResult { return &results[local] })
	return results
}

// tick clears the shard, writing each host's result at its canonical index.
func (s *shard) tick(p *Plane, now time.Time, skip func(string) bool, results []TickResult) {
	s.tickInto(p, now, skip, func(local int) *TickResult { return &results[s.globals[local]] })
}

func (s *shard) tickInto(p *Plane, now time.Time, skip func(string) bool, out func(local int) *TickResult) {
	// Drain the queue under the shard lock, then apply in deterministic
	// (bidder, arrival) order: concurrent enqueuers from different goroutines
	// may interleave arbitrarily, and the sort erases that nondeterminism.
	s.mu.Lock()
	q := s.queue
	s.queue = nil
	s.mu.Unlock()
	sort.SliceStable(q, func(i, j int) bool { return q[i].bidder < q[j].bidder })

	applied, dropped := uint64(0), uint64(0)
	applyStart := time.Now()
	for _, b := range q {
		m := s.markets[b.local]
		if skip != nil && skip(m.HostID()) {
			dropped++
			continue
		}
		if _, err := m.PlaceBid(b.bidder, b.budget, b.deadline); err != nil {
			dropped++
			continue
		}
		applied++
	}
	if len(q) > 0 {
		// One observation per drained batch; the exemplar ties a slow apply
		// to the trace that was active when the batch cleared.
		elapsed := time.Since(applyStart).Seconds()
		if sp := tracing.Default().Current(); sp.Recording() {
			mBidApplySeconds.ObserveExemplar(elapsed, sp.Context().TraceID.String())
		} else {
			mBidApplySeconds.Observe(elapsed)
		}
	}
	if applied > 0 {
		s.ctr.applied.Add(applied)
	}
	if dropped > 0 {
		s.ctr.dropped.Add(dropped)
	}

	clears := uint64(0)
	spotSum := 0.0
	for local, m := range s.markets {
		r := out(local)
		r.Host = m.HostID()
		if skip != nil && skip(m.HostID()) {
			continue
		}
		r.Charges, r.Refunds = m.Tick(now)
		spot := m.SpotPrice()
		p.prices[s.globals[local]].Store(math.Float64bits(spot))
		spotSum += spot
		clears++
	}
	if clears > 0 {
		s.ctr.clears.Add(clears)
		s.ctr.spotMean.Set(spotSum / float64(clears))
	}
}
