package marketplane

import (
	"fmt"
	"testing"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/mechanism"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
)

func testMarkets(t *testing.T, n int) []HostMarket {
	return testMechanismMarkets(t, n, mechanism.Proportional)
}

func testMechanismMarkets(t *testing.T, n int, mechName string) []HostMarket {
	t.Helper()
	quiet := tracing.New(tracing.WithCapacity(8))
	quiet.SetSampleRatio(0)
	out := make([]HostMarket, n)
	for i := range out {
		mech, err := mechanism.New(mechName, mechanism.Config{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := auction.NewMarket(auction.Config{
			HostID:      fmt.Sprintf("h%03d", i),
			CapacityMHz: 1000,
			Start:       sim.Epoch,
			Tracer:      quiet,
			Mechanism:   mech,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func TestPlaneCanonicalOrder(t *testing.T) {
	markets := testMarkets(t, 20)
	p, err := New(Config{Shards: 3, Markets: markets})
	if err != nil {
		t.Fatal(err)
	}
	if p.ShardCount() != 3 || p.Hosts() != 20 {
		t.Fatalf("shards=%d hosts=%d", p.ShardCount(), p.Hosts())
	}
	results := p.TickAll(sim.Epoch.Add(auction.DefaultInterval), nil)
	if len(results) != 20 {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if want := fmt.Sprintf("h%03d", i); r.Host != want {
			t.Fatalf("result %d is %q, want %q — canonical order broken", i, r.Host, want)
		}
		if got, ok := p.CachedPrice(r.Host); !ok || got != markets[i].SpotPrice() {
			t.Fatalf("cached price for %s = %v, want %v", r.Host, got, markets[i].SpotPrice())
		}
	}
	if _, ok := p.HostIndex("h007"); !ok {
		t.Fatal("HostIndex lost a host")
	}
	if _, ok := p.CachedPrice("nope"); ok {
		t.Fatal("CachedPrice invented a host")
	}
	if err := p.EnqueueBid("nope", "b", bank.Credit, sim.Epoch.Add(time.Hour)); err == nil {
		t.Fatal("EnqueueBid accepted an unknown host")
	}
}

func TestPlaneSkipPredicate(t *testing.T) {
	markets := testMarkets(t, 6)
	p, err := New(Config{Shards: 2, Markets: markets})
	if err != nil {
		t.Fatal(err)
	}
	results := p.TickAll(sim.Epoch.Add(auction.DefaultInterval), func(h string) bool { return h == "h002" })
	for i, r := range results {
		if r.Host == "" {
			t.Fatalf("result %d has no host", i)
		}
	}
}

// The determinism contract: the same bid stream driven through planes at
// different shard counts over identical market sets yields identical charges,
// refunds and spot prices, tick for tick and host for host, under every
// registered clearing mechanism. Sharding changes who clears a host, never
// what the clear computes.
func TestShardCountInvariance(t *testing.T) {
	for _, mechName := range mechanism.Names() {
		t.Run(mechName, func(t *testing.T) { testShardCountInvariance(t, mechName) })
	}
}

func testShardCountInvariance(t *testing.T, mechName string) {
	const hosts = 16
	run := func(shards int) ([][]TickResult, []float64) {
		markets := testMechanismMarkets(t, hosts, mechName)
		p, err := New(Config{Shards: shards, Markets: markets})
		if err != nil {
			t.Fatal(err)
		}
		var ticks [][]TickResult
		for tk := 0; tk < 8; tk++ {
			// Deterministic bid pattern: several bidders per tick, spread
			// across hosts, short deadlines so refunds fire mid-run.
			for j := 0; j < 12; j++ {
				host := (tk*5 + j*3) % hosts
				bidder := auction.BidderID(fmt.Sprintf("b-%02d-%02d", tk, j))
				deadline := sim.Epoch.Add(time.Duration(tk+2) * auction.DefaultInterval)
				p.EnqueueBidAt(host, bidder, 3*bank.Credit, deadline)
			}
			now := sim.Epoch.Add(time.Duration(tk+1) * auction.DefaultInterval)
			ticks = append(ticks, p.TickAll(now, nil))
		}
		prices := make([]float64, hosts)
		for i := range prices {
			prices[i] = p.PriceAt(i)
		}
		return ticks, prices
	}

	baseTicks, basePrices := run(1)
	for _, shards := range []int{2, 4, 7} {
		gotTicks, gotPrices := run(shards)
		for tk := range baseTicks {
			for h := range baseTicks[tk] {
				a, b := baseTicks[tk][h], gotTicks[tk][h]
				if a.Host != b.Host {
					t.Fatalf("shards=%d tick %d host %d: %q vs %q", shards, tk, h, a.Host, b.Host)
				}
				if len(a.Charges) != len(b.Charges) || len(a.Refunds) != len(b.Refunds) {
					t.Fatalf("shards=%d tick %d %s: %d/%d charges, %d/%d refunds",
						shards, tk, a.Host, len(a.Charges), len(b.Charges), len(a.Refunds), len(b.Refunds))
				}
				for i := range a.Charges {
					if a.Charges[i] != b.Charges[i] {
						t.Fatalf("shards=%d tick %d %s charge %d: %+v vs %+v",
							shards, tk, a.Host, i, a.Charges[i], b.Charges[i])
					}
				}
				for i := range a.Refunds {
					if a.Refunds[i] != b.Refunds[i] {
						t.Fatalf("shards=%d tick %d %s refund %d: %+v vs %+v",
							shards, tk, a.Host, i, a.Refunds[i], b.Refunds[i])
					}
				}
			}
		}
		for i := range basePrices {
			if basePrices[i] != gotPrices[i] {
				t.Fatalf("shards=%d host %d price %v vs %v", shards, i, basePrices[i], gotPrices[i])
			}
		}
	}
}

func TestScaleBenchSmoke(t *testing.T) {
	for _, shards := range []int{1, 4} {
		res, err := RunScaleBench(BenchConfig{
			Hosts: 50, Jobs: 400, Shards: shards,
			Users: 20, ArrivalTicks: 5, Candidates: 8, Seed: 11,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !res.MoneyConserved || !res.EscrowDrained || !res.NoOrphanedHolds {
			t.Fatalf("shards=%d invariants: %+v", shards, res)
		}
		if res.Clears == 0 || res.JobsPerSec <= 0 {
			t.Fatalf("shards=%d produced no work: %+v", shards, res)
		}
		if shards > 1 && res.CrossShardTransfers == 0 {
			t.Fatalf("shards=%d: no cross-shard transfers exercised", shards)
		}
	}
}
