package marketplane

import (
	"errors"
	"fmt"
	"testing"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/fault/failpoint"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/sim"
)

func benchIdentity(t *testing.T) *pki.Identity {
	t.Helper()
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{20})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.IssueDeterministic("/CN=Op", [32]byte{21})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// shardedAccounts creates n accounts spread across the bank's shards and
// returns their ids; each is funded with 100 credits.
func shardedAccounts(t *testing.T, sb *ShardedBank, op *pki.Identity, n int) []bank.AccountID {
	t.Helper()
	ids := make([]bank.AccountID, n)
	for i := range ids {
		ids[i] = bank.AccountID(fmt.Sprintf("acct-%03d", i))
		if _, err := sb.CreateAccount(ids[i], op.Public()); err != nil {
			t.Fatal(err)
		}
		if err := sb.Deposit(ids[i], 100*bank.Credit, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func TestShardOf(t *testing.T) {
	if got := ShardOf("anything", 1); got != 0 {
		t.Fatalf("ShardOf(_, 1) = %d, want 0", got)
	}
	for n := 2; n <= 16; n *= 2 {
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			s := ShardOf(fmt.Sprintf("host-%03d", i), n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf out of range: %d of %d", s, n)
			}
			seen[s] = true
			if s != ShardOf(fmt.Sprintf("host-%03d", i), n) {
				t.Fatal("ShardOf not stable")
			}
		}
		if len(seen) != n {
			t.Fatalf("200 hosts hit only %d of %d shards", len(seen), n)
		}
	}
}

// A 1-shard ShardedBank must behave exactly like a plain bank.Bank: every
// operation takes the same single-lock fast path, so balances, receipts and
// ledger histories agree entry for entry.
func TestOneShardMatchesPlainBank(t *testing.T) {
	op := benchIdentity(t)
	plain := bank.New(op, sim.NewEngine())
	sharded := NewShardedBank(op, sim.NewEngine(), 1, nil)

	for _, id := range []bank.AccountID{"u1", "u2", "esc"} {
		if _, err := plain.CreateAccount(id, op.Public()); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.CreateAccount(id, op.Public()); err != nil {
			t.Fatal(err)
		}
	}
	ops := func(deposit func(bank.AccountID, bank.Amount, string) error,
		move func(*pki.Identity, bank.AccountID, bank.AccountID, bank.Amount, bank.EntryKind, string) error) error {
		if err := deposit("u1", 50*bank.Credit, "grant"); err != nil {
			return err
		}
		if err := move(op, "u1", "esc", 20*bank.Credit, bank.EntryTransfer, "fund"); err != nil {
			return err
		}
		return move(op, "esc", "u2", 5*bank.Credit, bank.EntryCharge, "charge")
	}
	if err := ops(plain.Deposit, plain.MoveInternal); err != nil {
		t.Fatal(err)
	}
	if err := ops(sharded.Deposit, sharded.MoveInternal); err != nil {
		t.Fatal(err)
	}
	for _, id := range []bank.AccountID{"u1", "u2", "esc"} {
		pb, _ := plain.Balance(id)
		sb, err := sharded.Balance(id)
		if err != nil || pb != sb {
			t.Fatalf("%s: plain %v vs sharded %v (%v)", id, pb, sb, err)
		}
		ph, sh := plain.History(id), sharded.History(id)
		if len(ph) != len(sh) {
			t.Fatalf("%s history length %d vs %d", id, len(ph), len(sh))
		}
		for i := range ph {
			if ph[i] != sh[i] {
				t.Fatalf("%s history[%d]: %+v vs %+v", id, i, ph[i], sh[i])
			}
		}
	}
	if plain.TotalMoney() != sharded.TotalMoney() {
		t.Fatalf("total: %v vs %v", plain.TotalMoney(), sharded.TotalMoney())
	}
}

func TestCrossShardMoveAndTransfer(t *testing.T) {
	op := benchIdentity(t)
	sb := NewShardedBank(op, sim.NewEngine(), 4, nil)
	ids := shardedAccounts(t, sb, op, 8)

	// Find a pair on different shards.
	var from, to bank.AccountID
	for _, a := range ids {
		for _, b := range ids {
			if sb.ShardFor(a) != sb.ShardFor(b) {
				from, to = a, b
			}
		}
	}
	if from == "" {
		t.Fatal("no cross-shard pair found")
	}
	total := sb.TotalMoney()
	if err := sb.MoveInternal(op, from, to, 30*bank.Credit, bank.EntryTransfer, "x"); err != nil {
		t.Fatal(err)
	}
	if got, _ := sb.Balance(to); got != 130*bank.Credit {
		t.Fatalf("dest = %v, want 130", got)
	}
	if sb.TotalMoney() != total {
		t.Fatal("cross-shard move changed the money supply")
	}
	if n := len(sb.Holds()); n != 0 {
		t.Fatalf("%d holds left after clean transfer", n)
	}

	req := bank.TransferRequest{From: from, To: to, Amount: 10 * bank.Credit, Nonce: "xfer-1"}
	req.Sig = op.Sign(req.SigningBytes())
	r, err := sb.Transfer(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bank.VerifyReceipt(sb.PublicKey(), r) {
		t.Fatal("cross-shard receipt does not verify")
	}
	if err := sb.MoveInternal(op, from, to, 1000*bank.Credit, bank.EntryTransfer, "x"); !errors.Is(err, bank.ErrInsufficientFunds) {
		t.Fatalf("overdraft = %v, want ErrInsufficientFunds", err)
	}
	if sb.TotalMoney() != total {
		t.Fatal("failed transfer changed the money supply")
	}
}

// The satellite property test: two-phase transfers conserve money and leave
// no orphaned prepares when shards crash mid-protocol. A seeded failpoint.Points
// stream decides, at every protocol stage of every transfer, whether to
// crash the source or destination shard at exactly that instant; after each
// storm the crashed shards recover and resolve. Money — balances plus holds,
// across all shards — must be constant throughout, and no hold may survive
// the final recovery.
func TestTwoPhaseCrashConservesMoney(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1000003} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			op := benchIdentity(t)
			const shards = 4
			points := failpoint.NewPoints(seed, 0.25) // crash roughly every 4th stage
			pick := rng.New(seed + 1)

			var sb *ShardedBank
			var curSrc, curDst int
			sb = NewShardedBank(op, sim.NewEngine(), shards, nil,
				WithFailpoint(func(stage TwoPhaseStage, tx string) {
					if !points.Hit() {
						return
					}
					victim := curSrc
					if pick.Intn(2) == 1 {
						victim = curDst
					}
					_ = sb.CrashShard(victim)
				}))

			ids := shardedAccounts(t, sb, op, 12)
			want := sb.TotalMoney()
			if want != 12*100*bank.Credit {
				t.Fatalf("deposits = %v", want)
			}

			inDoubt, aborted, clean := 0, 0, 0
			for i := 0; i < 400; i++ {
				from := ids[pick.Intn(len(ids))]
				to := ids[pick.Intn(len(ids))]
				if from == to {
					continue
				}
				curSrc, curDst = sb.ShardFor(from), sb.ShardFor(to)
				amt := bank.Amount(pick.Intn(1000)+1) * bank.Millicredit
				err := sb.MoveInternal(op, from, to, amt, bank.EntryTransfer, "storm")
				switch {
				case err == nil:
					clean++
				case errors.Is(err, ErrInDoubt):
					inDoubt++
				case errors.Is(err, ErrShardDown):
					aborted++
				case errors.Is(err, bank.ErrInsufficientFunds):
					// fine: the storm may drain an account
				default:
					t.Fatalf("transfer %d: %v", i, err)
				}
				// Conservation holds at every instant, crashed shards included:
				// their ledgers and holds are durable.
				if got := sb.TotalMoney(); got != want {
					t.Fatalf("after transfer %d (err=%v): supply %v, want %v", i, err, got, want)
				}
				// Heal before the next iteration so the storm keeps moving.
				for s := 0; s < shards; s++ {
					if sb.ShardDown(s) {
						if err := sb.RecoverShard(s); err != nil {
							t.Fatalf("recover %d: %v", s, err)
						}
					}
				}
				if got := sb.TotalMoney(); got != want {
					t.Fatalf("after recovery %d: supply %v, want %v", i, got, want)
				}
			}
			if inDoubt == 0 || aborted == 0 || clean == 0 {
				t.Fatalf("storm not exercising all outcomes: clean=%d inDoubt=%d aborted=%d",
					clean, inDoubt, aborted)
			}
			if holds := sb.Holds(); len(holds) != 0 {
				t.Fatalf("orphaned prepares after final recovery: %+v", holds)
			}
			var sum bank.Amount
			for _, id := range ids {
				bal, err := sb.Balance(id)
				if err != nil {
					t.Fatal(err)
				}
				sum += bal
			}
			if sum != want {
				t.Fatalf("balances sum to %v, want %v", sum, want)
			}
		})
	}
}

// Crashing the destination after the commit decision must complete the
// transfer on recovery — never abort it — and the idempotent credit must
// absorb the recovery replay.
func TestInDoubtCompletesOnRecovery(t *testing.T) {
	op := benchIdentity(t)
	var sb *ShardedBank
	var crashAt TwoPhaseStage
	var victim int
	sb = NewShardedBank(op, sim.NewEngine(), 4, nil,
		WithFailpoint(func(stage TwoPhaseStage, tx string) {
			if stage == crashAt {
				_ = sb.CrashShard(victim)
			}
		}))
	ids := shardedAccounts(t, sb, op, 8)
	var from, to bank.AccountID
	for _, a := range ids {
		for _, b := range ids {
			if sb.ShardFor(a) != sb.ShardFor(b) {
				from, to = a, b
			}
		}
	}
	want := sb.TotalMoney()

	// Destination down at StageCommitted: money must still arrive.
	crashAt, victim = StageCommitted, sb.ShardFor(to)
	err := sb.MoveInternal(op, from, to, 25*bank.Credit, bank.EntryTransfer, "indoubt")
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("err = %v, want ErrInDoubt", err)
	}
	// The credit has not landed yet: the money sits in a committed hold.
	if sb.HeldTotal() != 25*bank.Credit {
		t.Fatalf("held = %v, want 25", sb.HeldTotal())
	}
	if sb.TotalMoney() != want {
		t.Fatalf("supply while in doubt = %v, want %v", sb.TotalMoney(), want)
	}
	crashAt = "" // stop crashing
	if err := sb.RecoverShard(victim); err != nil {
		t.Fatal(err)
	}
	if got, _ := sb.Balance(to); got != 125*bank.Credit {
		t.Fatalf("dest after recovery = %v, want 125", got)
	}
	if got, _ := sb.Balance(from); got != 75*bank.Credit {
		t.Fatalf("src after recovery = %v, want 75", got)
	}
	if sb.TotalMoney() != want || len(sb.Holds()) != 0 {
		t.Fatalf("supply %v (want %v), holds %d", sb.TotalMoney(), want, len(sb.Holds()))
	}

	// Source down at StagePrepared: no decision was recorded, so recovery
	// aborts and the money returns.
	crashAt, victim = StagePrepared, sb.ShardFor(from)
	err = sb.MoveInternal(op, from, to, 10*bank.Credit, bank.EntryTransfer, "abort")
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("err = %v, want ErrShardDown", err)
	}
	crashAt = ""
	if err := sb.RecoverShard(victim); err != nil {
		t.Fatal(err)
	}
	if got, _ := sb.Balance(from); got != 75*bank.Credit {
		t.Fatalf("src after abort = %v, want 75", got)
	}
	if sb.TotalMoney() != want || len(sb.Holds()) != 0 {
		t.Fatal("abort path broke conservation")
	}
}
