package marketplane

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/metrics"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
)

// TwoPhaseStage names the instants of the cross-shard transfer protocol at
// which a fail-point hook runs. The hook fires after the named step has
// taken effect.
type TwoPhaseStage string

// Fail-point stages.
const (
	StagePrepared  TwoPhaseStage = "prepared"  // debit held at source shard
	StageCommitted TwoPhaseStage = "committed" // commit decision recorded
	StageCredited  TwoPhaseStage = "credited"  // destination account credited
)

// Errors returned by ShardedBank.
var (
	ErrShardDown = errors.New("marketplane: bank shard is down")
	// ErrInDoubt reports a transfer whose commit decision was recorded but
	// whose completion was interrupted by a shard crash: the money is safe
	// in a committed hold and will reach the destination when the involved
	// shards recover (Resolve) — the caller must not retry.
	ErrInDoubt = errors.New("marketplane: transfer committed but interrupted; completes on recovery")
)

// bankShard is one accounting partition: an ordinary bank.Bank plus an
// availability flag. A "crash" makes the shard unavailable; its state —
// including prepared holds and the credited-set, GridBank's durable
// transaction journal — survives to recovery, like a write-ahead log on disk
// survives a process crash.
type bankShard struct {
	bank  *bank.Bank
	down  atomic.Bool
	gDown *metrics.Gauge
}

func (s *bankShard) isDown() bool { return s.down.Load() }

// ShardedBank partitions accounts across N bank shards by FNV-1a hash of the
// account id, GridBank's distributed Grid Bank Servers in miniature.
// Transfers within one shard take that shard's single-lock fast path —
// byte-identical behaviour to an unsharded bank.Bank, which is what makes
// the 1-shard configuration bit-for-bit compatible. Transfers between shards
// run the two-phase protocol of bank/twophase.go, coordinated by the calling
// goroutine with the commit decision logged at the source shard, so there is
// no central coordinator lock. Safe for concurrent use.
type ShardedBank struct {
	id     *pki.Identity
	clock  sim.Clock
	shards []*bankShard
	txSeq  atomic.Uint64

	failpoint func(stage TwoPhaseStage, tx string)
}

// ShardedOption customizes a ShardedBank.
type ShardedOption func(*ShardedBank)

// WithFailpoint installs a hook called after each stage of every cross-shard
// transfer. Tests crash shards from inside the hook to exercise recovery at
// exact protocol instants.
func WithFailpoint(fn func(stage TwoPhaseStage, tx string)) ShardedOption {
	return func(sb *ShardedBank) { sb.failpoint = fn }
}

// NewShardedBank creates a bank partitioned across n shards (minimum 1).
// Every shard signs receipts with the same identity, so clients verify
// against one key regardless of where an account lives. bankOpts apply to
// each shard (ledger retention, tracer).
func NewShardedBank(id *pki.Identity, clock sim.Clock, n int, bankOpts []bank.Option, opts ...ShardedOption) *ShardedBank {
	if n < 1 {
		n = 1
	}
	if clock == nil {
		clock = sim.WallClock{}
	}
	sb := &ShardedBank{id: id, clock: clock, shards: make([]*bankShard, n)}
	for i := range sb.shards {
		sb.shards[i] = &bankShard{
			bank:  bank.New(id, clock, bankOpts...),
			gDown: mBankShardDown.With(strconv.Itoa(i)),
		}
	}
	for _, o := range opts {
		o(sb)
	}
	return sb
}

// PublicKey returns the key every shard's receipts verify against.
func (sb *ShardedBank) PublicKey() ed25519.PublicKey { return sb.id.Public() }

// ShardCount returns the number of bank shards.
func (sb *ShardedBank) ShardCount() int { return len(sb.shards) }

// ShardFor returns the shard index owning an account id.
func (sb *ShardedBank) ShardFor(id bank.AccountID) int {
	return ShardOf(string(id), len(sb.shards))
}

func (sb *ShardedBank) shardOf(id bank.AccountID) *bankShard {
	return sb.shards[sb.ShardFor(id)]
}

func (sb *ShardedBank) fail(stage TwoPhaseStage, tx string) {
	if sb.failpoint != nil {
		sb.failpoint(stage, tx)
	}
}

// nextTx returns a coordinator-unique transaction id. The "x" prefix keeps
// the namespace disjoint from client-chosen transfer nonces.
func (sb *ShardedBank) nextTx() string {
	return fmt.Sprintf("x%09d", sb.txSeq.Add(1))
}

// CreateAccount registers a top-level account on its home shard.
func (sb *ShardedBank) CreateAccount(id bank.AccountID, owner ed25519.PublicKey) (*bank.Account, error) {
	s := sb.shardOf(id)
	if s.isDown() {
		return nil, fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(id))
	}
	return s.bank.CreateAccount(id, owner)
}

// CreateSubAccount registers "parent/child" on the child's home shard. The
// parent is verified on its own shard first; in a sharded deployment the two
// may differ, so the child shard skips the local parent check.
func (sb *ShardedBank) CreateSubAccount(parent bank.AccountID, child string, owner ed25519.PublicKey) (*bank.Account, error) {
	ps := sb.shardOf(parent)
	if ps.isDown() {
		return nil, fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(parent))
	}
	childID := bank.AccountID(string(parent) + "/" + child)
	cs := sb.shardOf(childID)
	if ps == cs {
		return ps.bank.CreateSubAccount(parent, child, owner)
	}
	if _, err := ps.bank.Lookup(parent); err != nil {
		return nil, err
	}
	if cs.isDown() {
		return nil, fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(childID))
	}
	return cs.bank.CreateChildAccount(parent, child, owner)
}

// Deposit credits an account on its home shard.
func (sb *ShardedBank) Deposit(id bank.AccountID, amount bank.Amount, memo string) error {
	s := sb.shardOf(id)
	if s.isDown() {
		return fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(id))
	}
	return s.bank.Deposit(id, amount, memo)
}

// Lookup returns an account record from its home shard.
func (sb *ShardedBank) Lookup(id bank.AccountID) (bank.Account, error) {
	s := sb.shardOf(id)
	if s.isDown() {
		return bank.Account{}, fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(id))
	}
	return s.bank.Lookup(id)
}

// Balance returns an account balance from its home shard.
func (sb *ShardedBank) Balance(id bank.AccountID) (bank.Amount, error) {
	a, err := sb.Lookup(id)
	if err != nil {
		return 0, err
	}
	return a.Balance, nil
}

// History returns the ledger entries touching id, from its home shard.
func (sb *ShardedBank) History(id bank.AccountID) []bank.Entry {
	s := sb.shardOf(id)
	if s.isDown() {
		return nil
	}
	return s.bank.History(id)
}

// MoveInternal transfers between two same-owner accounts on the owner's
// behalf. Same shard: the single-lock fast path. Different shards: the
// two-phase protocol.
func (sb *ShardedBank) MoveInternal(owner *pki.Identity, from, to bank.AccountID, amount bank.Amount, kind bank.EntryKind, memo string) error {
	src, dst := sb.shardOf(from), sb.shardOf(to)
	if src.isDown() {
		return fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(from))
	}
	if src == dst {
		err := src.bank.MoveInternal(owner, from, to, amount, kind, memo)
		if err == nil {
			mXferLocal.Inc()
		}
		return err
	}
	// The destination must exist before the debit is prepared: a committed
	// hold with nowhere to land would strand money in transit forever.
	if dst.isDown() {
		return fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(to))
	}
	if _, err := dst.bank.Lookup(to); err != nil {
		return err
	}
	tx := sb.nextTx()
	if err := src.bank.PrepareDebit(owner, from, to, amount, tx); err != nil {
		return err
	}
	return sb.completeCross(src, dst, to, amount, tx, memo)
}

// Transfer executes an owner-signed transfer and returns a bank-signed
// receipt. Cross-shard requests are prepared under the request's own nonce,
// so replay protection and the two-phase hold share one identifier.
func (sb *ShardedBank) Transfer(req bank.TransferRequest) (bank.Receipt, error) {
	src, dst := sb.shardOf(req.From), sb.shardOf(req.To)
	if src.isDown() {
		return bank.Receipt{}, fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(req.From))
	}
	if src == dst {
		r, err := src.bank.Transfer(req)
		if err == nil {
			mXferLocal.Inc()
		}
		return r, err
	}
	// The destination must exist before the debit is prepared: a committed
	// hold with nowhere to land would strand money in transit forever.
	if dst.isDown() {
		return bank.Receipt{}, fmt.Errorf("%w: shard %d", ErrShardDown, sb.ShardFor(req.To))
	}
	if _, err := dst.bank.Lookup(req.To); err != nil {
		return bank.Receipt{}, err
	}
	if err := src.bank.PrepareTransfer(req); err != nil {
		return bank.Receipt{}, err
	}
	if err := sb.completeCross(src, dst, req.To, req.Amount, req.Nonce, ""); err != nil {
		return bank.Receipt{}, err
	}
	r := bank.Receipt{
		TransferID: req.Nonce,
		From:       req.From,
		To:         req.To,
		Amount:     req.Amount,
		At:         sb.clock.Now(),
	}
	r.BankSig = sb.id.Sign(r.SigningBytes())
	return r, nil
}

// completeCross drives a prepared cross-shard transfer to completion:
// commit decision at the source, idempotent credit at the destination,
// finalize, prune. Fail-point hooks run after each stage; when a hook
// crashes an involved shard the protocol stops and reports how the transfer
// will conclude (abort before commit, completion-on-recovery after).
func (sb *ShardedBank) completeCross(src, dst *bankShard, to bank.AccountID, amount bank.Amount, tx, memo string) error {
	m2pcPrepares.Inc()
	sb.fail(StagePrepared, tx)
	if src.isDown() {
		// Decision never recorded: recovery aborts the hold.
		return fmt.Errorf("%w: tx %s before commit", ErrShardDown, tx)
	}
	if dst.isDown() {
		// Abort immediately: the money returns to the source now rather
		// than waiting for the destination shard to come back.
		if err := src.bank.AbortDebit(tx); err == nil {
			m2pcAborts.Inc()
		}
		return fmt.Errorf("%w: tx %s aborted, destination down", ErrShardDown, tx)
	}
	if err := src.bank.MarkCommitted(tx); err != nil {
		return err
	}
	m2pcCommits.Inc()
	sb.fail(StageCommitted, tx)
	if src.isDown() || dst.isDown() {
		return fmt.Errorf("%w (tx %s)", ErrInDoubt, tx)
	}
	if err := dst.bank.CreditPrepared(to, amount, tx, memo); err != nil {
		return fmt.Errorf("marketplane: crediting committed tx %s: %w", tx, err)
	}
	sb.fail(StageCredited, tx)
	if src.isDown() {
		// Credit landed; the committed hold finalizes on recovery, and the
		// idempotent credited-set absorbs the replay.
		return fmt.Errorf("%w (tx %s)", ErrInDoubt, tx)
	}
	if err := src.bank.FinalizeDebit(tx); err != nil {
		return err
	}
	dst.bank.ForgetCredit(tx)
	mXferCross.Inc()
	return nil
}

// CrashShard makes shard i unavailable. Its account state and transaction
// journal (holds, credited-set) persist, as GridBank's durable ledger would.
func (sb *ShardedBank) CrashShard(i int) error {
	if i < 0 || i >= len(sb.shards) {
		return fmt.Errorf("marketplane: no bank shard %d", i)
	}
	sb.shards[i].down.Store(true)
	sb.shards[i].gDown.Set(1)
	return nil
}

// ShardDown reports whether shard i is crashed.
func (sb *ShardedBank) ShardDown(i int) bool {
	return i >= 0 && i < len(sb.shards) && sb.shards[i].isDown()
}

// RecoverShard brings shard i back and resolves every in-doubt transfer that
// can now make progress: uncommitted holds on the recovered shard abort
// (their coordinator died before a decision), committed holds anywhere push
// their credit — idempotently — and finalize.
func (sb *ShardedBank) RecoverShard(i int) error {
	if i < 0 || i >= len(sb.shards) {
		return fmt.Errorf("marketplane: no bank shard %d", i)
	}
	if !sb.shards[i].isDown() {
		return fmt.Errorf("marketplane: bank shard %d is not down", i)
	}
	sb.shards[i].down.Store(false)
	sb.shards[i].gDown.Set(0)
	return sb.Resolve()
}

// Resolve walks the holds of every available shard and completes what it
// can: committed holds whose destination shard is up are credited
// (idempotent) and finalized; uncommitted holds on shards that crashed and
// recovered were abandoned before a decision, so they abort. Uncommitted
// holds are aborted here for every up shard — callers run Resolve from
// recovery events, never concurrently with in-flight transfers.
func (sb *ShardedBank) Resolve() error {
	var firstErr error
	for _, src := range sb.shards {
		if src.isDown() {
			continue
		}
		for _, h := range src.bank.Holds() {
			if !h.Committed {
				if err := src.bank.AbortDebit(h.TX); err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					m2pcAborts.Inc()
				}
				continue
			}
			dst := sb.shardOf(h.To)
			if dst.isDown() {
				continue // retried when that shard recovers
			}
			if err := dst.bank.CreditPrepared(h.To, h.Amount, h.TX, "recovered"); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := src.bank.FinalizeDebit(h.TX); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			dst.bank.ForgetCredit(h.TX)
			m2pcResolved.Inc()
		}
	}
	return firstErr
}

// Holds returns every outstanding hold across all shards, sorted by
// transaction id — empty once all transfers have settled and every crash
// has been recovered ("no orphaned prepares").
func (sb *ShardedBank) Holds() []bank.Hold {
	var out []bank.Hold
	for _, s := range sb.shards {
		out = append(out, s.bank.Holds()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TX < out[j].TX })
	return out
}

// HeldTotal returns the money parked in holds across all shards.
func (sb *ShardedBank) HeldTotal() bank.Amount {
	var total bank.Amount
	for _, s := range sb.shards {
		total += s.bank.HeldTotal()
	}
	return total
}

// TotalMoney returns the money supply: all balances plus all in-transit
// holds, across every shard (crashed ones included — their ledgers are
// durable). A committed hold whose credit has already landed at the
// destination is excluded: that money is counted in the destination balance,
// and the hold is only the finalize marker awaiting recovery. This is the
// conserved quantity: constant under any transfer interleaving and any crash
// schedule, changed only by Deposit.
func (sb *ShardedBank) TotalMoney() bank.Amount {
	var total bank.Amount
	for _, s := range sb.shards {
		total += s.bank.TotalMoney()
	}
	for _, s := range sb.shards {
		for _, h := range s.bank.Holds() {
			if h.Committed && sb.shardOf(h.To).bank.CreditRecorded(h.TX) {
				continue
			}
			total += h.Amount
		}
	}
	return total
}

// Accounts returns the ids of all accounts across shards, unordered.
func (sb *ShardedBank) Accounts() []bank.AccountID {
	var out []bank.AccountID
	for _, s := range sb.shards {
		out = append(out, s.bank.Accounts()...)
	}
	return out
}
