package httpapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"tycoongrid/internal/retry"
	"tycoongrid/internal/tracing"
)

// headerRecorder captures the traceparent header of every outgoing request
// before delegating, failed round trips included.
type headerRecorder struct {
	mu    sync.Mutex
	seen  []string
	inner http.RoundTripper
}

func (h *headerRecorder) RoundTrip(r *http.Request) (*http.Response, error) {
	h.mu.Lock()
	h.seen = append(h.seen, r.Header.Get(tracing.TraceparentHeader))
	h.mu.Unlock()
	return h.inner.RoundTrip(r)
}

func (h *headerRecorder) headers() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.seen...)
}

// TestTraceparentRoundTripThroughRetries drives a retried read through two
// transport failures and checks the span topology the Caller produces: one
// "rpc.sls" parent with three "rpc.attempt" children, each attempt carrying
// its own traceparent header on the wire, all under one trace.
func TestTraceparentRoundTripThroughRetries(t *testing.T) {
	tr := tracing.Default()
	tr.Reset()
	defer tr.Reset()

	srv := newSLSFixture(t)
	rec := &headerRecorder{inner: &flakyTransport{n: 2, inner: http.DefaultTransport}}
	client := NewSLSClient(srv.URL, &http.Client{Transport: rec})
	if _, err := client.Lookup("h1"); err != nil {
		t.Fatalf("Lookup through flaky transport: %v", err)
	}

	headers := rec.headers()
	if len(headers) != 3 {
		t.Fatalf("wire requests = %d, want 3 (2 failures + success)", len(headers))
	}
	var traceID tracing.TraceID
	wireSpans := make(map[tracing.SpanID]bool)
	for i, h := range headers {
		sc, ok := tracing.ParseTraceparent(h)
		if !ok {
			t.Fatalf("attempt %d traceparent %q did not parse", i+1, h)
		}
		if !sc.Sampled {
			t.Errorf("attempt %d traceparent not sampled: %q", i+1, h)
		}
		if i == 0 {
			traceID = sc.TraceID
		} else if sc.TraceID != traceID {
			t.Errorf("attempt %d trace id %s, want %s (one trace)", i+1, sc.TraceID, traceID)
		}
		if wireSpans[sc.SpanID] {
			t.Errorf("attempt %d reused span id %s; each attempt must be its own span", i+1, sc.SpanID)
		}
		wireSpans[sc.SpanID] = true
	}

	var parent *tracing.Span
	attempts := 0
	for _, s := range tr.Spans(traceID) {
		switch s.Name() {
		case "rpc.sls":
			parent = s
		case "rpc.attempt":
			attempts++
			if !wireSpans[s.Context().SpanID] {
				t.Errorf("attempt span %s never reached the wire", s.Context().SpanID)
			}
		}
	}
	if parent == nil {
		t.Fatal("no rpc.sls parent span recorded")
	}
	if attempts != 3 {
		t.Errorf("attempt spans = %d, want 3", attempts)
	}
	for _, s := range tr.Spans(traceID) {
		if s.Name() == "rpc.attempt" && s.Parent() != parent.Context().SpanID {
			t.Errorf("attempt span %s parented to %s, want rpc.sls %s",
				s.Context().SpanID, s.Parent(), parent.Context().SpanID)
		}
	}
}

// TestBreakerOpenRecordsAbortedAttempt trips the circuit breaker on a dead
// daemon and checks that the short-circuited call still records an attempt
// span — marked aborted, never reaching the wire.
func TestBreakerOpenRecordsAbortedAttempt(t *testing.T) {
	tr := tracing.Default()
	tr.Reset()
	defer tr.Reset()

	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	client := NewSLSClient(url, nil)
	var err error
	for i := 0; i < 3; i++ {
		if _, err = client.Lookup("h1"); err == nil {
			t.Fatal("Lookup of dead daemon succeeded")
		}
	}
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("breaker not open after repeated failures: %v", err)
	}

	tr.Reset() // drop the trip-phase spans; observe one short-circuited call
	if _, err = client.Lookup("h1"); err == nil {
		t.Fatal("Lookup with open breaker succeeded")
	}

	aborted := 0
	for _, sum := range tr.Summaries() {
		for _, s := range tr.Spans(sum.TraceID) {
			if s.Name() != "rpc.attempt" {
				continue
			}
			for _, a := range s.Attrs() {
				if a.Key == "aborted" && a.Value == "breaker-open" {
					aborted++
					if s.Err() == "" {
						t.Error("aborted attempt span recorded no error")
					}
				}
			}
		}
	}
	if aborted == 0 {
		t.Error("open-breaker call recorded no aborted rpc.attempt span")
	}
}
