package httpapi

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"tycoongrid/internal/metrics"
)

// HTTP-layer metric families, shared by every daemon. The route label is
// the first path segment ("/accounts/alice" -> "/accounts") so cardinality
// stays bounded no matter what ids clients put in paths.
var (
	mRequests = metrics.Default().CounterVec("http_requests_total",
		"HTTP requests served, by daemon, route, method and status code.",
		"service", "route", "method", "code")
	mErrors = metrics.Default().CounterVec("http_request_errors_total",
		"HTTP requests answered with a 4xx or 5xx status.",
		"service", "route")
	mInFlight = metrics.Default().GaugeVec("http_in_flight_requests",
		"Requests currently being served.", "service")
	mDuration = metrics.Default().HistogramVec("http_request_duration_seconds",
		"HTTP request latency.", nil, "service", "route")
)

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(p)
}

// routeLabel normalizes a request path to its first segment.
func routeLabel(path string) string {
	path = strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(path, '/'); i >= 0 {
		path = path[:i]
	}
	if path == "" {
		return "/"
	}
	return "/" + path
}

// Instrument wraps next so every request is recorded in the default
// registry: request count by route/method/code, error count, in-flight
// gauge and a latency histogram.
func Instrument(service string, next http.Handler) http.Handler {
	inFlight := mInFlight.With(service)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		inFlight.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start).Seconds()
		inFlight.Dec()
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		mRequests.With(service, route, r.Method, strconv3(rec.status)).Inc()
		mDuration.With(service, route).Observe(elapsed)
		if rec.status >= 400 {
			mErrors.With(service, route).Inc()
		}
	})
}

// strconv3 formats the three-digit HTTP statuses without an allocation-happy
// strconv.Itoa in the hot path.
func strconv3(code int) string {
	if code < 100 || code > 999 {
		return "000"
	}
	var b [3]byte
	b[0] = byte('0' + code/100)
	b[1] = byte('0' + code/10%10)
	b[2] = byte('0' + code%10)
	return string(b[:])
}

// MetricsHandler serves reg (nil means the default registry) in the
// Prometheus text exposition format by default, switching to OpenMetrics —
// exemplars on histogram buckets, explicit "# EOF" terminator — when the
// client's Accept header asks for application/openmetrics-text.
func MetricsHandler(reg *metrics.Registry) http.Handler {
	if reg == nil {
		reg = metrics.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", metrics.OpenMetricsContentType)
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// HealthzHandler reports liveness for a named daemon. Kept for callers that
// mount health probes outside ObservedMux; new code should use a Health.
func HealthzHandler(service string) http.Handler {
	return NewHealth(service).LivenessHandler()
}

// MuxOption configures ObservedMux.
type MuxOption func(*muxConfig)

type muxConfig struct {
	health *Health
	pprof  bool
	extra  []extraRoute
}

type extraRoute struct {
	pattern string
	handler http.Handler
}

// WithHealth supplies the daemon's Health so readiness reflects its real
// dependency state. Without it the daemon reports ready from boot.
func WithHealth(h *Health) MuxOption {
	return func(c *muxConfig) { c.health = h }
}

// WithHandler mounts an extra route on the observed mux, ahead of the
// application handler. The telemetry plane uses this to expose
// /metrics/history and /slo on every daemon without httpapi depending on the
// telemetry package.
func WithHandler(pattern string, h http.Handler) MuxOption {
	return func(c *muxConfig) {
		c.extra = append(c.extra, extraRoute{pattern: pattern, handler: h})
	}
}

// WithPprof mounts net/http/pprof under /debug/pprof/ — behind a flag in
// every daemon, because profile endpoints on a market daemon are a
// information leak in an untrusted network.
func WithPprof() MuxOption {
	return func(c *muxConfig) { c.pprof = true }
}

// ObservedMux wraps a daemon's application handler with the standard
// observability surface: GET /metrics (text exposition of the default
// registry), the /healthz liveness and /healthz/{live,ready} split,
// GET /debug/traces (+ /debug/traces/{id}) over the default tracer,
// optionally /debug/pprof/, and every other path delegated to app. The
// whole mux is instrumented, scrapes and health probes included, so a
// freshly booted daemon exposes http_requests_total from its first scrape
// on; application routes additionally run inside a server span (Traced).
func ObservedMux(service string, app http.Handler, opts ...MuxOption) http.Handler {
	var cfg muxConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.health == nil {
		cfg.health = NewHealth(service)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", MetricsHandler(nil))
	mux.Handle("GET /healthz", cfg.health.LivenessHandler())
	mux.Handle("GET /healthz/live", cfg.health.LivenessHandler())
	mux.Handle("GET /healthz/ready", cfg.health.ReadinessHandler())
	mux.Handle("GET /debug/traces", TraceListHandler(nil))
	mux.Handle("GET /debug/traces/{id}", TraceGetHandler(nil))
	for _, e := range cfg.extra {
		mux.Handle(e.pattern, e.handler)
	}
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", app)
	return Instrument(service, Traced(service, mux))
}
