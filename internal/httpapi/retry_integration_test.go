package httpapi

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"time"

	"tycoongrid/internal/fault"
	"tycoongrid/internal/retry"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/sls"
)

// flakyTransport fails the first n round trips with a transport error, then
// passes through.
type flakyTransport struct {
	n     int32
	inner http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if atomic.AddInt32(&f.n, -1) >= 0 {
		return nil, errors.New("connection reset by peer")
	}
	return f.inner.RoundTrip(r)
}

func newSLSFixture(t *testing.T) *httptest.Server {
	t.Helper()
	reg := sls.New(sim.WallClock{}, sls.WithTTL(time.Hour))
	srv := httptest.NewServer(NewSLSService(reg))
	t.Cleanup(srv.Close)
	client := NewSLSClient(srv.URL, nil)
	if err := client.Register(sls.HostInfo{ID: "h1", Endpoint: "http://h1:7711", CapacityMHz: 2800, CPUs: 2, MaxVMs: 30}); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestClientRetriesTransientFailures(t *testing.T) {
	srv := newSLSFixture(t)
	// Two transport failures, then clean: a 4-attempt GET must succeed.
	client := NewSLSClient(srv.URL, &http.Client{
		Transport: &flakyTransport{n: 2, inner: http.DefaultTransport},
	})
	h, err := client.Lookup("h1")
	if err != nil {
		t.Fatalf("Lookup through flaky transport: %v", err)
	}
	if h.ID != "h1" {
		t.Errorf("host = %+v", h)
	}
}

func TestClientSurvivesInjected5xx(t *testing.T) {
	srv := newSLSFixture(t)
	// A chaos transport answering ~30% of requests with 503: retries must
	// push every read through.
	client := NewSLSClient(srv.URL, &http.Client{
		Transport: fault.NewTransport(nil, fault.TransportConfig{Seed: 11, ServerErrorRate: 0.3}),
	})
	for i := 0; i < 20; i++ {
		if _, err := client.Lookup("h1"); err != nil {
			t.Fatalf("Lookup %d through 30%% 5xx: %v", i, err)
		}
	}
}

func TestClientBreakerTripsOnDeadDaemon(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close() // connection refused from here on
	client := NewSLSClient(url, nil)
	// Drive enough failures through to trip the default 5-failure breaker.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = client.Lookup("h1"); err == nil {
			t.Fatal("Lookup of dead daemon succeeded")
		}
	}
	if !errors.Is(err, retry.ErrOpen) {
		t.Errorf("err after repeated failures = %v, want breaker open", err)
	}
}

func TestClientErrorIsPermanentOn4xx(t *testing.T) {
	srv := newSLSFixture(t)
	client := NewSLSClient(srv.URL, nil)
	_, err := client.Lookup("ghost")
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("Lookup ghost = %v, want 404", err)
	}
	if !retry.IsPermanent(err) {
		t.Errorf("4xx not marked permanent: %v", err)
	}
}
