package httpapi

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

// TestServeGracefulShutdown boots Serve on an ephemeral port, confirms it
// answers, then delivers SIGTERM to the process and expects a clean drain.
func TestServeGracefulShutdown(t *testing.T) {
	// Install our own handler first so the signal can never kill the test
	// process even if it wins the race with Serve's notify registration.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	// Pick a free port, then release it for Serve.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	done := make(chan error, 1)
	go func() {
		done <- Serve(addr, ObservedMux("testd", http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				WriteJSON(w, map[string]string{"status": "ok"})
			})))
	}()

	// Wait for the server to come up.
	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(2 * ShutdownTimeout):
		t.Fatal("Serve did not return after SIGTERM")
	}

	// The listener must actually be closed.
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}

// TestServeListenError checks the pre-signal failure path: a bad address
// returns the listen error instead of hanging.
func TestServeListenError(t *testing.T) {
	err := Serve("256.256.256.256:0", http.NotFoundHandler())
	if err == nil {
		t.Fatal("expected listen error")
	}
}
