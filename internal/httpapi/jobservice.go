package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"tycoongrid/internal/arc"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
)

// JobManager is the scheduling surface the HTTP layer requires. Both
// *arc.Manager (a single partition) and *arc.Meta (strategy-driven
// matchmaking across partitions) satisfy it, so a daemon can swap in the
// partitioned deployment without the API changing shape.
type JobManager interface {
	Submit(xrslText string, chunkWork []float64) (*arc.GridJob, error)
	Job(id string) (*arc.GridJob, error)
	Jobs() []*arc.GridJob
	Boost(jobID, encodedToken string) error
	Cancel(jobID string) error
	Timeline(id string) (arc.Timeline, error)
	Monitor() arc.MonitorSnapshot
}

var (
	_ JobManager = (*arc.Manager)(nil)
	_ JobManager = (*arc.Meta)(nil)
)

// JobService exposes the ARC-analog job manager over HTTP: xRSL submission,
// job status, boosting, and the Grid-monitor view. Because the job manager
// and its grid cluster run on a single-threaded simulation engine, every
// request and every engine advance goes through one mutex; the Drive method
// pulls the engine along the wall clock, turning the simulated cluster into
// a live service ("grid market in a box").
type JobService struct {
	mu     sync.Mutex
	mgr    JobManager
	engine *sim.Engine
	mux    *http.ServeMux
}

// NewJobService wraps mgr (whose agent runs on engine).
func NewJobService(mgr JobManager, engine *sim.Engine) (*JobService, error) {
	if mgr == nil || engine == nil {
		return nil, errors.New("httpapi: nil job manager or engine")
	}
	s := &JobService{mgr: mgr, engine: engine, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}/timeline", s.timeline)
	s.mux.HandleFunc("POST /boosts", s.boost)
	s.mux.HandleFunc("POST /cancels", s.cancel)
	s.mux.HandleFunc("GET /monitor", s.monitor)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *JobService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drive advances the simulation engine to the given wall-clock instant.
// Daemons call it from a ticker goroutine; tests call it directly.
func (s *JobService) Drive(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now.After(s.engine.Now()) {
		s.engine.RunUntil(now)
	}
}

// WithLock runs fn while holding the service lock. Anything that touches the
// engine, the bank, or the job manager from outside an HTTP handler — e.g. a
// daemon's demo-token minting, which reads the engine clock — must go
// through here, because Drive mutates the engine concurrently.
func (s *JobService) WithLock(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// JobWire is the public view of a grid job.
type JobWire struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Error     string    `json:"error,omitempty"`
	JobName   string    `json:"job_name,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Agent-level detail, present once the job is running.
	SubJobsDone  int      `json:"sub_jobs_done"`
	SubJobsTotal int      `json:"sub_jobs_total"`
	Hosts        []string `json:"hosts,omitempty"`
	Charged      string   `json:"charged,omitempty"`
	DN           string   `json:"dn,omitempty"`
}

// BoostWire requests additional funding for a job.
type BoostWire struct {
	JobID string `json:"job_id"`
	Token string `json:"token"` // encoded transfer token
}

// CancelWire requests killing a job.
type CancelWire struct {
	JobID string `json:"job_id"`
}

func jobWire(gj *arc.GridJob) JobWire {
	w := JobWire{
		ID:        gj.ID,
		State:     string(gj.State),
		Error:     gj.Error,
		Submitted: gj.Submitted,
		Started:   gj.Started,
		Finished:  gj.Finished,
	}
	if gj.Request != nil {
		w.JobName = gj.Request.JobName
	}
	if aj := gj.AgentJob; aj != nil {
		w.SubJobsDone = aj.Completed()
		w.SubJobsTotal = aj.Total()
		w.Hosts = aj.Hosts
		w.Charged = aj.Charged.String()
		w.DN = string(aj.DN)
	}
	return w
}

func (s *JobService) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil || len(body) == 0 {
		WriteError(w, http.StatusBadRequest, errors.New("httpapi: empty xRSL body"))
		return
	}
	s.mu.Lock()
	// Scope the server span so the job's lifecycle span (and everything the
	// market core records beneath it) joins this request's trace. The scope
	// stack is safe here because the whole market runs under s.mu.
	release := tracing.Default().PushScope(tracing.SpanFromContext(r.Context()))
	gj, err := s.mgr.Submit(string(body), nil)
	release()
	var out JobWire
	if err == nil {
		out = jobWire(gj) // serialize under the lock; Drive mutates jobs
	}
	s.mu.Unlock()
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	WriteJSON(w, out)
}

// list returns all jobs, or a single job when the id query parameter is
// present (job ids are gsiftp URLs, so they travel as a query value rather
// than a path segment).
func (s *JobService) list(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		s.mu.Lock()
		gj, err := s.mgr.Job(id)
		var out JobWire
		if err == nil {
			out = jobWire(gj)
		}
		s.mu.Unlock()
		if err != nil {
			WriteError(w, http.StatusNotFound, err)
			return
		}
		WriteJSON(w, out)
		return
	}
	s.mu.Lock()
	jobs := s.mgr.Jobs()
	out := make([]JobWire, len(jobs))
	for i, gj := range jobs {
		out[i] = jobWire(gj)
	}
	s.mu.Unlock()
	WriteJSON(w, out)
}

func (s *JobService) boost(w http.ResponseWriter, r *http.Request) {
	var req BoostWire
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	s.mu.Lock()
	err := s.mgr.Boost(req.JobID, req.Token)
	s.mu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, arc.ErrUnknownJob) {
			status = http.StatusNotFound
		}
		WriteError(w, status, err)
		return
	}
	WriteJSON(w, map[string]string{"status": "ok"})
}

func (s *JobService) cancel(w http.ResponseWriter, r *http.Request) {
	var req CancelWire
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	s.mu.Lock()
	err := s.mgr.Cancel(req.JobID)
	s.mu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, arc.ErrUnknownJob) {
			status = http.StatusNotFound
		}
		WriteError(w, status, err)
		return
	}
	WriteJSON(w, map[string]string{"status": "killed"})
}

// timeline serves a job's lifecycle audit trail. Job ids are gsiftp URLs, so
// clients path-escape them into the single {id} segment.
func (s *JobService) timeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	tl, err := s.mgr.Timeline(id)
	s.mu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, arc.ErrUnknownJob) {
			status = http.StatusNotFound
		}
		WriteError(w, status, err)
		return
	}
	WriteJSON(w, tl)
}

func (s *JobService) monitor(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.mgr.Monitor()
	s.mu.Unlock()
	WriteJSON(w, snap)
}

// JobClient is the typed client for a JobService.
type JobClient struct {
	base string
	call Caller
}

// NewJobClient targets base. A nil client defaults to one with
// DefaultClientTimeout. Reads and the token-protected Boost (the bank's
// spent-store rejects a replayed transfer token) are retried with backoff;
// Submit and Cancel are single attempts. All calls share one circuit
// breaker named "job".
func NewJobClient(base string, client *http.Client) *JobClient {
	return &JobClient{base: strings.TrimSuffix(base, "/"), call: newCaller("job", client)}
}

// Submit posts an xRSL description and returns the accepted job.
func (c *JobClient) Submit(xrslText string) (JobWire, error) {
	var out JobWire
	err := c.call.rawPost(context.Background(), c.base+"/jobs", "text/plain", xrslText, &out)
	return out, err
}

// Job fetches one job.
func (c *JobClient) Job(id string) (JobWire, error) {
	var out JobWire
	err := c.call.get(context.Background(), c.base+"/jobs?id="+url.QueryEscape(id), &out)
	return out, err
}

// Jobs lists all jobs.
func (c *JobClient) Jobs() ([]JobWire, error) {
	var out []JobWire
	err := c.call.get(context.Background(), c.base+"/jobs", &out)
	return out, err
}

// Boost adds funding to a running job.
func (c *JobClient) Boost(jobID, encodedToken string) error {
	// Retried: the token can only be deposited once, so a replayed boost
	// whose first response was lost is rejected harmlessly by the bank.
	return c.call.postIdempotent(context.Background(), c.base+"/boosts", BoostWire{JobID: jobID, Token: encodedToken}, nil)
}

// Cancel kills a job.
func (c *JobClient) Cancel(jobID string) error {
	return c.call.post(context.Background(), c.base+"/cancels", CancelWire{JobID: jobID}, nil)
}

// Timeline fetches a job's lifecycle timeline.
func (c *JobClient) Timeline(id string) (arc.Timeline, error) {
	var out arc.Timeline
	err := c.call.get(context.Background(), c.base+"/jobs/"+url.PathEscape(id)+"/timeline", &out)
	return out, err
}

// Monitor fetches the Grid-monitor snapshot.
func (c *JobClient) Monitor() (arc.MonitorSnapshot, error) {
	var out arc.MonitorSnapshot
	err := c.call.get(context.Background(), c.base+"/monitor", &out)
	return out, err
}
