// Package httpapi exposes the market services over JSON/HTTP: the Bank, the
// Service Location Service, and per-host Auctioneers, each with a typed Go
// client. These are the deployable counterparts of the in-process components
// the simulator wires directly — the same bank.Bank, sls.Registry and
// auction.Market instances sit behind the handlers, so daemon and simulation
// behaviour cannot drift apart.
//
// Authentication follows the paper's model: operations that move money carry
// an application-level Ed25519 signature inside the request body (the bank
// verifies it against the account's registered key), so the transport needs
// no session state and no ACLs.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// apiError is the wire form of a failure.
type apiError struct {
	Error string `json:"error"`
}

// MaxBodyBytes caps request and response bodies at 1 MiB.
const MaxBodyBytes = 1 << 20

// ErrBodyTooLarge reports a request body over MaxBodyBytes; handlers map it
// to 413 Request Entity Too Large via ReadStatus.
var ErrBodyTooLarge = errors.New("httpapi: request body exceeds 1 MiB limit")

// ReadStatus maps a ReadJSON error to its HTTP status.
func ReadStatus(err error) int {
	if errors.Is(err, ErrBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// WriteJSON emits a 200 response with a JSON body.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more we can do.
		return
	}
}

// WriteError maps service errors to HTTP statuses.
func WriteError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// ReadJSON decodes a request body with a size cap. Bodies over MaxBodyBytes
// are rejected with ErrBodyTooLarge rather than silently truncated into a
// confusing decode error.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes+1))
	if err != nil {
		return fmt.Errorf("httpapi: reading body: %w", err)
	}
	if len(body) > MaxBodyBytes {
		return ErrBodyTooLarge
	}
	if len(body) == 0 {
		return errors.New("httpapi: empty request body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("httpapi: decoding body: %w", err)
	}
	return nil
}

// do executes a client request and decodes the JSON response into out
// (which may be nil). Non-2xx responses are turned into errors carrying the
// server's message.
func do(client *http.Client, method, url string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("httpapi: encoding request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("httpapi: %s %s: %s (status %d)", method, url, ae.Error, resp.StatusCode)
		}
		return fmt.Errorf("httpapi: %s %s: status %d", method, url, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("httpapi: decoding response: %w", err)
		}
	}
	return nil
}
