// Package httpapi exposes the market services over JSON/HTTP: the Bank, the
// Service Location Service, and per-host Auctioneers, each with a typed Go
// client. These are the deployable counterparts of the in-process components
// the simulator wires directly — the same bank.Bank, sls.Registry and
// auction.Market instances sit behind the handlers, so daemon and simulation
// behaviour cannot drift apart.
//
// Authentication follows the paper's model: operations that move money carry
// an application-level Ed25519 signature inside the request body (the bank
// verifies it against the account's registered key), so the transport needs
// no session state and no ACLs.
package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"tycoongrid/internal/retry"
	"tycoongrid/internal/tracing"
)

// apiError is the wire form of a failure.
type apiError struct {
	Error string `json:"error"`
}

// MaxBodyBytes caps request and response bodies at 1 MiB.
const MaxBodyBytes = 1 << 20

// ErrBodyTooLarge reports a request body over MaxBodyBytes; handlers map it
// to 413 Request Entity Too Large via ReadStatus.
var ErrBodyTooLarge = errors.New("httpapi: request body exceeds 1 MiB limit")

// ReadStatus maps a ReadJSON error to its HTTP status.
func ReadStatus(err error) int {
	if errors.Is(err, ErrBodyTooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// WriteJSON emits a 200 response with a JSON body.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing more we can do.
		return
	}
}

// WriteError maps service errors to HTTP statuses.
func WriteError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// ReadJSON decodes a request body with a size cap. Bodies over MaxBodyBytes
// are rejected with ErrBodyTooLarge rather than silently truncated into a
// confusing decode error.
func ReadJSON(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes+1))
	if err != nil {
		return fmt.Errorf("httpapi: reading body: %w", err)
	}
	if len(body) > MaxBodyBytes {
		return ErrBodyTooLarge
	}
	if len(body) == 0 {
		return errors.New("httpapi: empty request body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("httpapi: decoding body: %w", err)
	}
	return nil
}

// DefaultClientTimeout bounds a whole client exchange (dial, request,
// response) when a New*Client constructor is handed a nil *http.Client.
// http.DefaultClient would wait forever on a hung daemon.
const DefaultClientTimeout = 15 * time.Second

// Caller is the shared fault-tolerant transport of the four typed clients:
// an HTTP client plus a retry.Policy and a circuit breaker, both labeled
// with the client's name in /metrics. Idempotent calls go through the retry
// policy; single-shot calls still get the breaker, so a dead daemon fails
// fast everywhere.
type Caller struct {
	name    string
	client  *http.Client
	policy  retry.Policy
	breaker *retry.Breaker
}

// newCaller builds a Caller named name (the metrics label). A nil client
// defaults to one with DefaultClientTimeout.
func newCaller(name string, client *http.Client) Caller {
	if client == nil {
		client = &http.Client{Timeout: DefaultClientTimeout}
	}
	return Caller{
		name:    name,
		client:  client,
		policy:  retry.Policy{Name: name},
		breaker: retry.NewBreaker(retry.BreakerConfig{Name: name}),
	}
}

// attempt runs one exchange under the breaker inside its own child span
// ("rpc.attempt", numbered), so a retried call renders as one parent span
// with N attempt children and a breaker-fast-fail is visible as an aborted
// attempt that never reached the wire. A Permanent (4xx) error is recorded
// as breaker success: the daemon answered, the request was just wrong, and
// wrong requests must not blow the circuit for everyone else.
func (c *Caller) attempt(ctx context.Context, n int, method, url, contentType string, body []byte, out any) error {
	span, ctx := tracing.Default().StartSpan(ctx, "rpc.attempt",
		tracing.String("client", c.name),
		tracing.String("method", method),
		tracing.String("url", url),
		tracing.String("attempt", strconv.Itoa(n)))
	if err := c.breaker.Allow(); err != nil {
		span.SetAttr(tracing.String("aborted", "breaker-open"))
		span.EndErr(err)
		return err
	}
	err := send(ctx, c.client, method, url, contentType, body, out)
	if retry.IsPermanent(err) {
		c.breaker.Record(nil)
	} else {
		c.breaker.Record(err)
	}
	span.EndErr(err)
	return err
}

// call wraps a whole exchange — all attempts — in one "rpc.<client>" span
// whose parent comes from ctx or, for the context-free typed clients, the
// tracer's current scope. retries > 1 means the retry policy drives it.
func (c *Caller) call(ctx context.Context, retries bool, method, url, contentType string, body []byte, out any) error {
	parent, ctx := tracing.Default().StartSpan(ctx, "rpc."+c.name,
		tracing.String("method", method), tracing.String("url", url))
	var err error
	if retries {
		n := 0
		err = c.policy.Do(ctx, func(actx context.Context) error {
			n++
			return c.attempt(actx, n, method, url, contentType, body, out)
		})
	} else {
		err = c.attempt(ctx, 1, method, url, contentType, body, out)
	}
	parent.EndErr(err)
	return err
}

// get fetches url with retries — GETs are idempotent by construction.
func (c *Caller) get(ctx context.Context, url string, out any) error {
	return c.call(ctx, true, http.MethodGet, url, "", nil, out)
}

// post sends one non-idempotent JSON request: a single attempt under the
// breaker, because replaying it could repeat a side effect.
func (c *Caller) post(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("httpapi: encoding request: %w", err)
	}
	return c.call(ctx, false, http.MethodPost, url, "application/json", body, out)
}

// postIdempotent sends a JSON request that is safe to replay — the server
// deduplicates it (nonce-protected transfers, token-protected boosts) or the
// operation is a state refresh (heartbeats) — with full retries.
func (c *Caller) postIdempotent(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("httpapi: encoding request: %w", err)
	}
	return c.call(ctx, true, http.MethodPost, url, "application/json", body, out)
}

// del sends a DELETE as a single attempt under the breaker: deletes answer
// 404 on replay, so a retry after a lost response would mask the outcome.
func (c *Caller) del(ctx context.Context, url string, out any) error {
	return c.call(ctx, false, http.MethodDelete, url, "", nil, out)
}

// rawPost sends a non-JSON body (xRSL submissions) as a single attempt.
func (c *Caller) rawPost(ctx context.Context, url, contentType, body string, out any) error {
	return c.call(ctx, false, http.MethodPost, url, contentType, []byte(body), out)
}

// send executes one HTTP exchange and decodes the JSON response into out
// (which may be nil). The response body is capped at MaxBodyBytes and always
// drained before close so the connection returns to the pool. Non-2xx
// responses become errors carrying the server's message; 4xx ones are marked
// retry.Permanent since re-sending an invalid request cannot succeed.
func send(ctx context.Context, client *http.Client, method, url, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return retry.Permanent(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	// Propagate the active span (the rpc.attempt child) so the server joins
	// this trace; each retry attempt therefore has its own wire identity.
	if sc := tracing.SpanFromContext(ctx).Context(); sc.Valid() {
		req.Header.Set(tracing.TraceparentHeader, tracing.FormatTraceparent(sc))
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes+1))
	if err != nil {
		return err
	}
	if len(raw) > MaxBodyBytes {
		return fmt.Errorf("httpapi: %s %s: response body exceeds %d byte limit", method, url, MaxBodyBytes)
	}
	if resp.StatusCode/100 != 2 {
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			err = fmt.Errorf("httpapi: %s %s: %s (status %d)", method, url, ae.Error, resp.StatusCode)
		} else {
			err = fmt.Errorf("httpapi: %s %s: status %d", method, url, resp.StatusCode)
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			err = retry.Permanent(err)
		}
		return err
	}
	switch dst := out.(type) {
	case nil:
	case *[]byte:
		// Raw capture for non-JSON payloads (the telemetry scraper pulling
		// a peer's text exposition) — bytes pass through untouched.
		*dst = raw
	default:
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("httpapi: decoding response: %w", err)
		}
	}
	return nil
}
