package httpapi

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ShutdownTimeout is how long Serve waits for in-flight requests to drain
// after SIGINT/SIGTERM before the process exits anyway.
const ShutdownTimeout = 5 * time.Second

// Server-side timeouts. Every market exchange is a small JSON document, so
// generous single-digit-to-low-double-digit bounds lose no legitimate
// traffic while denying slow-loris clients an open-ended connection hold.
const (
	ServerReadHeaderTimeout = 10 * time.Second
	ServerReadTimeout       = 30 * time.Second
	ServerWriteTimeout      = 30 * time.Second
	ServerIdleTimeout       = 120 * time.Second
)

// NewServer builds the http.Server all four market daemons run: handler on
// addr with the full set of slow-client timeouts configured.
func NewServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: ServerReadHeaderTimeout,
		ReadTimeout:       ServerReadTimeout,
		WriteTimeout:      ServerWriteTimeout,
		IdleTimeout:       ServerIdleTimeout,
	}
}

// Serve runs NewServer(addr, handler) and blocks until the listener fails or
// a SIGINT/SIGTERM arrives, in which case it runs every onDrain hook (daemons
// pass their Health's StartDrain so readiness flips to 503 first), drains
// in-flight requests for up to ShutdownTimeout and returns nil on a clean
// drain. All four market daemons use this instead of
// log.Fatal(http.ListenAndServe(...)) so a deploy rollover never drops
// accepted requests.
func Serve(addr string, handler http.Handler, onDrain ...func()) error {
	srv := NewServer(addr, handler)

	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case sig := <-sigCh:
		slog.Info("draining on signal", "signal", sig.String(), "timeout", ShutdownTimeout.String())
		for _, fn := range onDrain {
			fn()
		}
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain deadline hit: close whatever is still open.
			_ = srv.Close()
			return err
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
