package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tycoongrid/internal/metrics"
)

func TestInstrumentRecordsRequests(t *testing.T) {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			WriteError(w, http.StatusBadRequest, http.ErrBodyNotAllowed)
			return
		}
		WriteJSON(w, map[string]string{"status": "ok"})
	})
	srv := httptest.NewServer(ObservedMux("testsvc", app))
	defer srv.Close()

	before := metrics.Default().CounterValue("http_requests_total", "testsvc", "/accounts", "GET", "200")
	errBefore := metrics.Default().CounterValue("http_request_errors_total", "testsvc", "/boom")

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/accounts/alice")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	got := metrics.Default().CounterValue("http_requests_total", "testsvc", "/accounts", "GET", "200")
	if got-before != 3 {
		t.Fatalf("http_requests_total for /accounts grew by %d, want 3", got-before)
	}
	errGot := metrics.Default().CounterValue("http_request_errors_total", "testsvc", "/boom")
	if errGot-errBefore != 1 {
		t.Fatalf("http_request_errors_total for /boom grew by %d, want 1", errGot-errBefore)
	}
}

func TestObservedMuxMetricsEndpoint(t *testing.T) {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, map[string]string{"status": "ok"})
	})
	srv := httptest.NewServer(ObservedMux("scrapesvc", app))
	defer srv.Close()

	// Generate one observed request, then scrape.
	resp, err := http.Get(srv.URL + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{service="scrapesvc",route="/anything",method="GET",code="200"}`,
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{service="scrapesvc",route="/anything",le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(ObservedMux("healthsvc", http.NotFoundHandler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Service != "healthsvc" {
		t.Fatalf("healthz body = %+v", hr)
	}
	if hr.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", hr.UptimeSeconds)
	}
}

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/":               "/",
		"":                "/",
		"/accounts":       "/accounts",
		"/accounts/alice": "/accounts",
		"/jobs/a/b/c":     "/jobs",
	}
	for in, want := range cases {
		if got := routeLabel(in); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestReadJSONRejectsOversizedBody is the regression test for the 1 MiB
// cap: an oversized body must produce ErrBodyTooLarge and a 413 status,
// not a silent truncation followed by a confusing decode error.
func TestReadJSONRejectsOversizedBody(t *testing.T) {
	big := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), MaxBodyBytes)...)
	big = append(big, `"}`...)
	r := httptest.NewRequest(http.MethodPost, "/x", bytes.NewReader(big))
	var v map[string]string
	err := ReadJSON(r, &v)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if err != ErrBodyTooLarge {
		t.Fatalf("err = %v, want ErrBodyTooLarge", err)
	}
	if got := ReadStatus(err); got != http.StatusRequestEntityTooLarge {
		t.Fatalf("ReadStatus = %d, want 413", got)
	}

	// A body exactly at the cap still decodes.
	payload := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), MaxBodyBytes-10)...)
	payload = append(payload, `"}`...)
	if len(payload) > MaxBodyBytes {
		t.Fatalf("test payload misconstructed: %d bytes", len(payload))
	}
	r = httptest.NewRequest(http.MethodPost, "/x", bytes.NewReader(payload))
	if err := ReadJSON(r, &v); err != nil {
		t.Fatalf("at-cap body rejected: %v", err)
	}
	if got := ReadStatus(nil); got != http.StatusBadRequest {
		t.Fatalf("ReadStatus(nil-ish) = %d, want 400 default", got)
	}
}
