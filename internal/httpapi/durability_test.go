package httpapi

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/durable"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
)

func durableBank(t *testing.T, dir string, id *pki.Identity) (*bank.Bank, *durable.Store) {
	t.Helper()
	st, err := durable.Open(dir, durable.Options{Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	b := bank.New(id, sim.WallClock{})
	if _, err := b.AttachDurability(st, 0); err != nil {
		t.Fatal(err)
	}
	return b, st
}

// TestTransferRetryAcrossBankRestart is the regression test for the
// double-apply bug: a client that re-sends the identical signed transfer
// after the bank restarted must get the original receipt back from the
// recovered ledger, not a second execution (and not a 409 that would strand
// the retry loop).
func TestTransferRetryAcrossBankRestart(t *testing.T) {
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.IssueDeterministic("/CN=Alice", [32]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	b1, st1 := durableBank(t, dir, bankID)
	srv1 := httptest.NewServer(NewBankService(b1))
	client := NewBankClient(srv1.URL, nil)
	if _, err := client.CreateAccount("alice", alice.Public(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateAccount("bob", alice.Public(), ""); err != nil {
		t.Fatal(err)
	}
	if err := client.Deposit("alice", 100*bank.Credit, "seed"); err != nil {
		t.Fatal(err)
	}
	req := bank.TransferRequest{From: "alice", To: "bob", Amount: 40 * bank.Credit, Nonce: "retry-1"}
	req.Sig = alice.Sign(req.SigningBytes())
	first, err := client.Transfer(req)
	if err != nil {
		t.Fatal(err)
	}
	srv1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process recovers the same data dir.
	b2, st2 := durableBank(t, dir, bankID)
	defer st2.Close()
	srv2 := httptest.NewServer(NewBankService(b2))
	defer srv2.Close()
	client2 := NewBankClient(srv2.URL, nil)

	// The client replays the exact same signed wire request (as its retry
	// loop would after the original response was lost to the crash).
	again, err := client2.Transfer(req)
	if err != nil {
		t.Fatalf("retry after restart: %v", err)
	}
	if !bytes.Equal(again.BankSig, first.BankSig) || !again.At.Equal(first.At) {
		t.Errorf("retry receipt differs: %+v vs %+v", again, first)
	}
	if bal, _ := client2.Balance("alice"); bal != 60*bank.Credit {
		t.Errorf("transfer applied twice: alice = %v", bal)
	}
	if bal, _ := client2.Balance("bob"); bal != 40*bank.Credit {
		t.Errorf("bob = %v", bal)
	}
}

func TestTwoPhaseOverHTTP(t *testing.T) {
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.IssueDeterministic("/CN=Alice", [32]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	b := bank.New(bankID, sim.WallClock{})
	srv := httptest.NewServer(NewBankService(b))
	defer srv.Close()
	client := NewBankClient(srv.URL, nil)
	if _, err := client.CreateAccount("alice", alice.Public(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := client.CreateAccount("bob", alice.Public(), ""); err != nil {
		t.Fatal(err)
	}
	if err := client.Deposit("alice", 100*bank.Credit, "seed"); err != nil {
		t.Fatal(err)
	}

	req := bank.TransferRequest{From: "alice", To: "bob", Amount: 25 * bank.Credit, Nonce: "tx2pc"}
	req.Sig = alice.Sign(req.SigningBytes())
	hold, err := client.PrepareTransfer(req)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if hold.Committed || hold.Amount != (25*bank.Credit).String() {
		t.Fatalf("hold = %+v", hold)
	}
	// Conservation mid-protocol: balances 75, held 25.
	totals, err := client.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if totals.Conserved != (100 * bank.Credit).String() {
		t.Errorf("mid-protocol conserved = %s", totals.Conserved)
	}

	if _, err := client.CreditTx("tx2pc"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("credit before commit: %v", err)
	}
	if hold, err = client.CommitTx("tx2pc"); err != nil || !hold.Committed {
		t.Fatalf("commit: %v %+v", err, hold)
	}
	if err := client.AbortTx("tx2pc"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("abort after commit: %v", err)
	}
	if hold, err = client.CreditTx("tx2pc"); err != nil || !hold.CreditRecorded {
		t.Fatalf("credit: %v %+v", err, hold)
	}
	// Credit landed but hold not finalized: /total must not double-count.
	totals, err = client.Totals()
	if err != nil {
		t.Fatal(err)
	}
	if totals.Conserved != (100 * bank.Credit).String() {
		t.Errorf("post-credit conserved = %s (total %s held %s landed %s)",
			totals.Conserved, totals.Total, totals.Held, totals.Landed)
	}
	if err := client.FinalizeTx("tx2pc"); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	holds, err := client.Holds()
	if err != nil {
		t.Fatal(err)
	}
	if len(holds) != 0 {
		t.Errorf("outstanding holds after finalize: %+v", holds)
	}
	if bal, _ := client.Balance("bob"); bal != 25*bank.Credit {
		t.Errorf("bob = %v", bal)
	}
}

func TestGateUntilReady(t *testing.T) {
	h := NewHealth("bankd", "wal")
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	gated := h.GateUntilReady(app)

	rec := httptest.NewRecorder()
	gated.ServeHTTP(rec, httptest.NewRequest("GET", "/accounts/x", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-recovery status = %d, want 503", rec.Code)
	}

	h.MarkReady("wal")
	rec = httptest.NewRecorder()
	gated.ServeHTTP(rec, httptest.NewRequest("GET", "/accounts/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-recovery status = %d, want 200", rec.Code)
	}

	// Draining must not re-engage the gate — in-flight clients finish.
	h.StartDrain()
	rec = httptest.NewRecorder()
	gated.ServeHTTP(rec, httptest.NewRequest("GET", "/accounts/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("draining status = %d, want 200", rec.Code)
	}
}
