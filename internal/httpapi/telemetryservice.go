package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"

	"tycoongrid/internal/metrics"
)

// TelemetryClient scrapes a peer daemon's observability surface — /metrics
// in the OpenMetrics exposition (exemplars included), /slo, and
// /metrics/history — over the same fault-tolerant Caller the service
// clients use: retries with backoff for these idempotent GETs, a circuit
// breaker so a dead peer fails fast, and rpc.attempt spans so a slow scrape
// is itself traceable.
type TelemetryClient struct {
	base string
	c    Caller
}

// NewTelemetryClient builds a scrape client for the daemon at baseURL
// ("http://host:port"). A nil client gets DefaultClientTimeout. The Accept
// header asks for OpenMetrics so the scrape carries exemplars; peers that
// only speak the Prometheus 0.0.4 format ignore the header and still parse.
func NewTelemetryClient(baseURL string, client *http.Client) *TelemetryClient {
	if client == nil {
		client = &http.Client{Timeout: DefaultClientTimeout}
	}
	wrapped := *client
	wrapped.Transport = acceptTransport{base: client.Transport, accept: metrics.OpenMetricsContentType}
	return &TelemetryClient{
		base: strings.TrimSuffix(baseURL, "/"),
		c:    newCaller("telemetry", &wrapped),
	}
}

// BaseURL returns the scrape target.
func (t *TelemetryClient) BaseURL() string { return t.base }

// ScrapeMetrics fetches the peer's /metrics exposition text.
func (t *TelemetryClient) ScrapeMetrics(ctx context.Context) ([]byte, error) {
	var raw []byte
	if err := t.c.get(ctx, t.base+"/metrics", &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// SLO fetches the peer's /slo report as raw JSON for pass-through display.
func (t *TelemetryClient) SLO(ctx context.Context) (json.RawMessage, error) {
	var raw []byte
	if err := t.c.get(ctx, t.base+"/slo", &raw); err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// History fetches one series' windowed history from the peer's
// /metrics/history endpoint, already query-encoded by the caller.
func (t *TelemetryClient) History(ctx context.Context, rawQuery string) (json.RawMessage, error) {
	var raw []byte
	if err := t.c.get(ctx, t.base+"/metrics/history?"+rawQuery, &raw); err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// Fleet fetches an aggregator host's /fleet rollup as raw JSON. A 404 means
// the target is a plain daemon, not an aggregator host; callers fall back to
// the single-daemon surface.
func (t *TelemetryClient) Fleet(ctx context.Context) (json.RawMessage, error) {
	var raw []byte
	if err := t.c.get(ctx, t.base+"/fleet", &raw); err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// FleetHistory fetches windowed fleet-series history from an aggregator
// host's /fleet/history endpoint, already query-encoded by the caller.
func (t *TelemetryClient) FleetHistory(ctx context.Context, rawQuery string) (json.RawMessage, error) {
	var raw []byte
	if err := t.c.get(ctx, t.base+"/fleet/history?"+rawQuery, &raw); err != nil {
		return nil, err
	}
	return json.RawMessage(raw), nil
}

// acceptTransport stamps every scrape request with an Accept header; the
// Caller below it owns retries, so this layer stays a pure header decorator.
type acceptTransport struct {
	base   http.RoundTripper
	accept string
}

func (t acceptTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rt := t.base
	if rt == nil {
		rt = http.DefaultTransport
	}
	req.Header.Set("Accept", t.accept)
	return rt.RoundTrip(req)
}
