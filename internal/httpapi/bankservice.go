package httpapi

import (
	"context"
	"crypto/ed25519"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"tycoongrid/internal/bank"
)

// BankService exposes a bank.Bank over HTTP.
type BankService struct {
	bank *bank.Bank
	mux  *http.ServeMux
}

// NewBankService wraps b.
func NewBankService(b *bank.Bank) *BankService {
	s := &BankService{bank: b, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /accounts", s.createAccount)
	s.mux.HandleFunc("GET /accounts/{id...}", s.getAccount)
	s.mux.HandleFunc("POST /deposits", s.deposit)
	s.mux.HandleFunc("POST /transfers", s.transfer)
	s.mux.HandleFunc("GET /history/{id...}", s.history)
	s.mux.HandleFunc("GET /publickey", s.publicKey)
	// Two-phase transfer protocol: a coordinator (or an operator resolving
	// in-doubt transfers after a crash) drives each hold through
	// prepare -> commit -> credit -> finalize, or prepare -> abort.
	s.mux.HandleFunc("POST /tx/prepare", s.txPrepare)
	s.mux.HandleFunc("POST /tx/{tx}/commit", s.txCommit)
	s.mux.HandleFunc("POST /tx/{tx}/credit", s.txCredit)
	s.mux.HandleFunc("POST /tx/{tx}/finalize", s.txFinalize)
	s.mux.HandleFunc("POST /tx/{tx}/abort", s.txAbort)
	s.mux.HandleFunc("GET /tx", s.txList)
	s.mux.HandleFunc("GET /total", s.total)
	return s
}

// ServeHTTP implements http.Handler.
func (s *BankService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Wire types.
type (
	// CreateAccountRequest registers a new account bound to an owner key.
	CreateAccountRequest struct {
		ID       string `json:"id"`
		OwnerKey string `json:"owner_key"` // base64 raw-url Ed25519 public key
		Parent   string `json:"parent,omitempty"`
	}
	// AccountInfo is the public view of an account.
	AccountInfo struct {
		ID      string    `json:"id"`
		Parent  string    `json:"parent,omitempty"`
		Balance string    `json:"balance"` // decimal credits
		Created time.Time `json:"created"`
	}
	// DepositRequest grants funds (operator API).
	DepositRequest struct {
		ID     string `json:"id"`
		Amount string `json:"amount"`
		Memo   string `json:"memo,omitempty"`
	}
	// TransferWire is the signed transfer authorization.
	TransferWire struct {
		From   string `json:"from"`
		To     string `json:"to"`
		Amount string `json:"amount"`
		Nonce  string `json:"nonce"`
		Sig    string `json:"sig"` // base64 raw-url signature over SigningBytes
	}
	// ReceiptWire is the bank-signed transfer proof.
	ReceiptWire struct {
		TransferID string    `json:"transfer_id"`
		From       string    `json:"from"`
		To         string    `json:"to"`
		Amount     string    `json:"amount"`
		At         time.Time `json:"at"`
		BankSig    string    `json:"bank_sig"`
	}
	// EntryWire is one ledger row.
	EntryWire struct {
		Seq    uint64    `json:"seq"`
		Kind   string    `json:"kind"`
		From   string    `json:"from,omitempty"`
		To     string    `json:"to"`
		Amount string    `json:"amount"`
		Memo   string    `json:"memo,omitempty"`
		At     time.Time `json:"at"`
	}
	// PublicKeyResponse carries the bank's receipt-verification key.
	PublicKeyResponse struct {
		Key string `json:"key"`
	}
	// HoldWire is one outstanding two-phase hold — the in-doubt set a
	// recovering coordinator walks.
	HoldWire struct {
		TX        string    `json:"tx"`
		From      string    `json:"from"`
		To        string    `json:"to"`
		Amount    string    `json:"amount"`
		Committed bool      `json:"committed"`
		At        time.Time `json:"at"`
		// CreditRecorded reports whether the idempotent credit for this tx
		// has already landed on this same bank.
		CreditRecorded bool `json:"credit_recorded"`
	}
	// TotalsResponse is the single-bank conservation check. Conserved =
	// Total + Held − Landed: money in balances, plus money parked in holds,
	// minus held money whose credit already landed on this bank (it would
	// otherwise be counted twice).
	TotalsResponse struct {
		Total     string `json:"total"`
		Held      string `json:"held"`
		Landed    string `json:"landed"`
		Conserved string `json:"conserved"`
	}
)

func decodeKey(s string) (ed25519.PublicKey, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(raw) != ed25519.PublicKeySize {
		return nil, errors.New("httpapi: bad key length")
	}
	return ed25519.PublicKey(raw), nil
}

// EncodeKey renders a public key for wire use.
func EncodeKey(k ed25519.PublicKey) string {
	return base64.RawURLEncoding.EncodeToString(k)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, bank.ErrNoAccount), errors.Is(err, bank.ErrUnknownHold):
		return http.StatusNotFound
	case errors.Is(err, bank.ErrDuplicateAccount), errors.Is(err, bank.ErrNonceReused),
		errors.Is(err, bank.ErrDuplicateHold), errors.Is(err, bank.ErrHoldState):
		return http.StatusConflict
	case errors.Is(err, bank.ErrBadAuthorization):
		return http.StatusForbidden
	case errors.Is(err, bank.ErrInsufficientFunds):
		return http.StatusPaymentRequired
	default:
		return http.StatusBadRequest
	}
}

func (s *BankService) createAccount(w http.ResponseWriter, r *http.Request) {
	var req CreateAccountRequest
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	key, err := decodeKey(req.OwnerKey)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	var acct *bank.Account
	if req.Parent != "" {
		child := strings.TrimPrefix(req.ID, req.Parent+"/")
		acct, err = s.bank.CreateSubAccount(bank.AccountID(req.Parent), child, key)
	} else {
		acct, err = s.bank.CreateAccount(bank.AccountID(req.ID), key)
	}
	if err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	WriteJSON(w, accountInfo(*acct))
}

func accountInfo(a bank.Account) AccountInfo {
	return AccountInfo{
		ID:      string(a.ID),
		Parent:  string(a.Parent),
		Balance: a.Balance.String(),
		Created: a.Created,
	}
}

func (s *BankService) getAccount(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a, err := s.bank.Lookup(bank.AccountID(id))
	if err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	WriteJSON(w, accountInfo(a))
}

func (s *BankService) deposit(w http.ResponseWriter, r *http.Request) {
	var req DepositRequest
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	amount, err := bank.ParseAmount(req.Amount)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.bank.Deposit(bank.AccountID(req.ID), amount, req.Memo); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	bal, err := s.bank.Balance(bank.AccountID(req.ID))
	if err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	WriteJSON(w, AccountInfo{ID: req.ID, Balance: bal.String()})
}

func (s *BankService) transfer(w http.ResponseWriter, r *http.Request) {
	var req TransferWire
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	amount, err := bank.ParseAmount(req.Amount)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	sig, err := base64.RawURLEncoding.DecodeString(req.Sig)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	receipt, err := s.bank.Transfer(bank.TransferRequest{
		From:   bank.AccountID(req.From),
		To:     bank.AccountID(req.To),
		Amount: amount,
		Nonce:  req.Nonce,
		Sig:    sig,
	})
	if err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	WriteJSON(w, receiptWire(receipt))
}

func receiptWire(rc bank.Receipt) ReceiptWire {
	return ReceiptWire{
		TransferID: rc.TransferID,
		From:       string(rc.From),
		To:         string(rc.To),
		Amount:     rc.Amount.String(),
		At:         rc.At,
		BankSig:    base64.RawURLEncoding.EncodeToString(rc.BankSig),
	}
}

// ToReceipt converts the wire form back into a verifiable receipt.
func (rw ReceiptWire) ToReceipt() (bank.Receipt, error) {
	amount, err := bank.ParseAmount(rw.Amount)
	if err != nil {
		return bank.Receipt{}, err
	}
	sig, err := base64.RawURLEncoding.DecodeString(rw.BankSig)
	if err != nil {
		return bank.Receipt{}, err
	}
	return bank.Receipt{
		TransferID: rw.TransferID,
		From:       bank.AccountID(rw.From),
		To:         bank.AccountID(rw.To),
		Amount:     amount,
		At:         rw.At,
		BankSig:    sig,
	}, nil
}

func (s *BankService) history(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.bank.Lookup(bank.AccountID(id)); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	entries := s.bank.History(bank.AccountID(id))
	out := make([]EntryWire, len(entries))
	for i, e := range entries {
		out[i] = EntryWire{
			Seq: e.Seq, Kind: string(e.Kind), From: string(e.From), To: string(e.To),
			Amount: e.Amount.String(), Memo: e.Memo, At: e.At,
		}
	}
	WriteJSON(w, out)
}

func (s *BankService) publicKey(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, PublicKeyResponse{Key: EncodeKey(s.bank.PublicKey())})
}

// txPrepare starts a two-phase transfer from a signed authorization: the
// money moves into a hold named by the request nonce instead of landing at
// the destination.
func (s *BankService) txPrepare(w http.ResponseWriter, r *http.Request) {
	var req TransferWire
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	amount, err := bank.ParseAmount(req.Amount)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	sig, err := base64.RawURLEncoding.DecodeString(req.Sig)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.bank.PrepareTransfer(bank.TransferRequest{
		From:   bank.AccountID(req.From),
		To:     bank.AccountID(req.To),
		Amount: amount,
		Nonce:  req.Nonce,
		Sig:    sig,
	}); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	s.writeHold(w, req.Nonce)
}

func (s *BankService) writeHold(w http.ResponseWriter, tx string) {
	for _, h := range s.bank.Holds() {
		if h.TX == tx {
			WriteJSON(w, holdWire(h, s.bank.CreditRecorded(tx)))
			return
		}
	}
	WriteError(w, http.StatusNotFound, bank.ErrUnknownHold)
}

func holdWire(h bank.Hold, credited bool) HoldWire {
	return HoldWire{
		TX: h.TX, From: string(h.From), To: string(h.To),
		Amount: h.Amount.String(), Committed: h.Committed, At: h.At,
		CreditRecorded: credited,
	}
}

func (s *BankService) txCommit(w http.ResponseWriter, r *http.Request) {
	tx := r.PathValue("tx")
	if err := s.bank.MarkCommitted(tx); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	s.writeHold(w, tx)
}

// txCredit applies the destination half of a committed hold on this bank.
// It is idempotent by tx id, so a coordinator may replay it after a crash.
func (s *BankService) txCredit(w http.ResponseWriter, r *http.Request) {
	tx := r.PathValue("tx")
	var hold *bank.Hold
	for _, h := range s.bank.Holds() {
		if h.TX == tx {
			c := h
			hold = &c
			break
		}
	}
	if hold == nil {
		WriteError(w, http.StatusNotFound, bank.ErrUnknownHold)
		return
	}
	if !hold.Committed {
		WriteError(w, http.StatusConflict,
			fmt.Errorf("%w: credit of uncommitted %q", bank.ErrHoldState, tx))
		return
	}
	if err := s.bank.CreditPrepared(hold.To, hold.Amount, tx, "2pc"); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	s.writeHold(w, tx)
}

func (s *BankService) txFinalize(w http.ResponseWriter, r *http.Request) {
	tx := r.PathValue("tx")
	if err := s.bank.FinalizeDebit(tx); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	WriteJSON(w, map[string]string{"tx": tx, "state": "finalized"})
}

func (s *BankService) txAbort(w http.ResponseWriter, r *http.Request) {
	tx := r.PathValue("tx")
	if err := s.bank.AbortDebit(tx); err != nil {
		WriteError(w, statusFor(err), err)
		return
	}
	WriteJSON(w, map[string]string{"tx": tx, "state": "aborted"})
}

func (s *BankService) txList(w http.ResponseWriter, r *http.Request) {
	holds := s.bank.Holds()
	out := make([]HoldWire, len(holds))
	for i, h := range holds {
		out[i] = holdWire(h, s.bank.CreditRecorded(h.TX))
	}
	WriteJSON(w, out)
}

func (s *BankService) total(w http.ResponseWriter, r *http.Request) {
	total, held, landed := s.bank.Totals()
	WriteJSON(w, TotalsResponse{
		Total:     total.String(),
		Held:      held.String(),
		Landed:    landed.String(),
		Conserved: (total + held - landed).String(),
	})
}

// BankClient is the typed client for a BankService.
type BankClient struct {
	base string
	call Caller
}

// NewBankClient targets base (e.g. "http://localhost:7700"). A nil client
// defaults to one with DefaultClientTimeout. Reads and the nonce-protected
// Transfer are retried with backoff; CreateAccount and Deposit are single
// attempts. All calls share one circuit breaker named "bank".
func NewBankClient(base string, client *http.Client) *BankClient {
	return &BankClient{base: strings.TrimSuffix(base, "/"), call: newCaller("bank", client)}
}

// CreateAccount registers an account.
func (c *BankClient) CreateAccount(id string, owner ed25519.PublicKey, parent string) (AccountInfo, error) {
	var out AccountInfo
	err := c.call.post(context.Background(), c.base+"/accounts",
		CreateAccountRequest{ID: id, OwnerKey: EncodeKey(owner), Parent: parent}, &out)
	return out, err
}

// Account fetches an account's public view.
func (c *BankClient) Account(id string) (AccountInfo, error) {
	var out AccountInfo
	err := c.call.get(context.Background(), c.base+"/accounts/"+id, &out)
	return out, err
}

// Balance returns the account balance.
func (c *BankClient) Balance(id string) (bank.Amount, error) {
	a, err := c.Account(id)
	if err != nil {
		return 0, err
	}
	return bank.ParseAmount(a.Balance)
}

// Deposit grants funds (operator API).
func (c *BankClient) Deposit(id string, amount bank.Amount, memo string) error {
	return c.call.post(context.Background(), c.base+"/deposits",
		DepositRequest{ID: id, Amount: amount.String(), Memo: memo}, nil)
}

// Transfer executes a signed transfer; sign must produce a signature over
// the request's canonical bytes (use bank.TransferRequest.SigningBytes via
// SignTransfer).
func (c *BankClient) Transfer(req bank.TransferRequest) (bank.Receipt, error) {
	wirereq := TransferWire{
		From:   string(req.From),
		To:     string(req.To),
		Amount: req.Amount.String(),
		Nonce:  req.Nonce,
		Sig:    base64.RawURLEncoding.EncodeToString(req.Sig),
	}
	var out ReceiptWire
	// Retried: the bank's nonce spent-store rejects replays, so a transfer
	// whose response was lost can be re-sent without double-spending.
	if err := c.call.postIdempotent(context.Background(), c.base+"/transfers", wirereq, &out); err != nil {
		return bank.Receipt{}, err
	}
	return out.ToReceipt()
}

// PrepareTransfer starts a two-phase transfer; the hold is named by the
// request nonce. Idempotently retried like Transfer — a duplicate-hold
// conflict after a lost response means the prepare already took.
func (c *BankClient) PrepareTransfer(req bank.TransferRequest) (HoldWire, error) {
	wirereq := TransferWire{
		From:   string(req.From),
		To:     string(req.To),
		Amount: req.Amount.String(),
		Nonce:  req.Nonce,
		Sig:    base64.RawURLEncoding.EncodeToString(req.Sig),
	}
	var out HoldWire
	err := c.call.postIdempotent(context.Background(), c.base+"/tx/prepare", wirereq, &out)
	return out, err
}

// CommitTx durably records the commit decision for a hold.
func (c *BankClient) CommitTx(tx string) (HoldWire, error) {
	var out HoldWire
	err := c.call.postIdempotent(context.Background(), c.base+"/tx/"+tx+"/commit", nil, &out)
	return out, err
}

// CreditTx applies the destination credit of a committed hold (idempotent).
func (c *BankClient) CreditTx(tx string) (HoldWire, error) {
	var out HoldWire
	err := c.call.postIdempotent(context.Background(), c.base+"/tx/"+tx+"/credit", nil, &out)
	return out, err
}

// FinalizeTx burns a committed, credited hold.
func (c *BankClient) FinalizeTx(tx string) error {
	return c.call.postIdempotent(context.Background(), c.base+"/tx/"+tx+"/finalize", nil, nil)
}

// AbortTx cancels an uncommitted hold, refunding the source.
func (c *BankClient) AbortTx(tx string) error {
	return c.call.postIdempotent(context.Background(), c.base+"/tx/"+tx+"/abort", nil, nil)
}

// Holds lists the outstanding two-phase holds.
func (c *BankClient) Holds() ([]HoldWire, error) {
	var out []HoldWire
	err := c.call.get(context.Background(), c.base+"/tx", &out)
	return out, err
}

// Totals fetches the bank's conservation numbers.
func (c *BankClient) Totals() (TotalsResponse, error) {
	var out TotalsResponse
	err := c.call.get(context.Background(), c.base+"/total", &out)
	return out, err
}

// History lists ledger entries touching id.
func (c *BankClient) History(id string) ([]EntryWire, error) {
	var out []EntryWire
	err := c.call.get(context.Background(), c.base+"/history/"+id, &out)
	return out, err
}

// PublicKey fetches the bank's receipt-verification key.
func (c *BankClient) PublicKey() (ed25519.PublicKey, error) {
	var out PublicKeyResponse
	if err := c.call.get(context.Background(), c.base+"/publickey", &out); err != nil {
		return nil, err
	}
	return decodeKey(out.Key)
}
