package httpapi

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/sls"
	"tycoongrid/internal/token"
)

// services spins up bank, SLS and one auctioneer on httptest servers.
type services struct {
	bank      *bank.Bank
	bankC     *BankClient
	slsC      *SLSClient
	market    *auction.Market
	auctC     *AuctioneerClient
	ca        *pki.CA
	alice     *pki.Identity // bank key
	aliceGrid *pki.Identity
}

func startServices(t *testing.T) *services {
	t.Helper()
	ca, err := pki.NewDeterministicCA("/O=Grid/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	bankID, _ := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	alice, _ := ca.IssueDeterministic("/CN=AliceBank", [32]byte{3})
	aliceGrid, _ := ca.IssueDeterministic("/O=Grid/CN=Alice", [32]byte{4})

	b := bank.New(bankID, sim.WallClock{})
	bankSrv := httptest.NewServer(NewBankService(b))
	t.Cleanup(bankSrv.Close)

	reg := sls.New(sim.WallClock{}, sls.WithTTL(time.Hour))
	slsSrv := httptest.NewServer(NewSLSService(reg))
	t.Cleanup(slsSrv.Close)

	market, err := auction.NewMarket(auction.Config{
		HostID: "h1", CapacityMHz: 2800, Start: time.Now(),
	})
	if err != nil {
		t.Fatal(err)
	}
	auctSvc, err := NewAuctioneerService(market, map[string]int{"hour": 360})
	if err != nil {
		t.Fatal(err)
	}
	auctSrv := httptest.NewServer(auctSvc)
	t.Cleanup(auctSrv.Close)

	return &services{
		bank:      b,
		bankC:     NewBankClient(bankSrv.URL, nil),
		slsC:      NewSLSClient(slsSrv.URL, nil),
		market:    market,
		auctC:     NewAuctioneerClient(auctSrv.URL, nil),
		ca:        ca,
		alice:     alice,
		aliceGrid: aliceGrid,
	}
}

func TestBankServiceAccountLifecycle(t *testing.T) {
	s := startServices(t)
	acct, err := s.bankC.CreateAccount("alice", s.alice.Public(), "")
	if err != nil {
		t.Fatal(err)
	}
	if acct.ID != "alice" || acct.Balance != "0" {
		t.Errorf("account = %+v", acct)
	}
	// Duplicate is a 409.
	if _, err := s.bankC.CreateAccount("alice", s.alice.Public(), ""); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate: %v", err)
	}
	if err := s.bankC.Deposit("alice", 100*bank.Credit, "grant"); err != nil {
		t.Fatal(err)
	}
	bal, err := s.bankC.Balance("alice")
	if err != nil || bal != 100*bank.Credit {
		t.Errorf("balance = %v, %v", bal, err)
	}
	// Unknown account is a 404.
	if _, err := s.bankC.Account("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("ghost: %v", err)
	}
}

func TestBankServiceSignedTransferOverHTTP(t *testing.T) {
	s := startServices(t)
	broker, _ := s.ca.IssueDeterministic("/CN=Broker", [32]byte{9})
	if _, err := s.bankC.CreateAccount("alice", s.alice.Public(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.bankC.CreateAccount("broker", broker.Public(), ""); err != nil {
		t.Fatal(err)
	}
	if err := s.bankC.Deposit("alice", 50*bank.Credit, ""); err != nil {
		t.Fatal(err)
	}
	req := bank.TransferRequest{From: "alice", To: "broker", Amount: 20 * bank.Credit, Nonce: "http-1"}
	req.Sig = s.alice.Sign(req.SigningBytes())
	receipt, err := s.bankC.Transfer(req)
	if err != nil {
		t.Fatal(err)
	}
	// The receipt that crossed the wire still verifies and still feeds the
	// token layer.
	key, err := s.bankC.PublicKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bank.VerifyReceipt(key, receipt) {
		t.Error("wire receipt does not verify")
	}
	tok := token.Attach(receipt, s.aliceGrid)
	v, err := token.NewVerifier(key, s.ca.Certificate(), "broker", nil)
	if err != nil {
		t.Fatal(err)
	}
	amount, err := v.Verify(tok, time.Now())
	if err != nil {
		t.Fatalf("token from wire receipt: %v", err)
	}
	if amount != 20*bank.Credit {
		t.Errorf("amount = %v", amount)
	}
	// Replaying the identical signed request is an idempotent retry: same
	// receipt back, no second debit.
	again, err := s.bankC.Transfer(req)
	if err != nil {
		t.Fatalf("idempotent replay: %v", err)
	}
	if !bytes.Equal(again.BankSig, receipt.BankSig) {
		t.Error("replay returned a different receipt")
	}
	if bal, _ := s.bankC.Balance("alice"); bal != 30*bank.Credit {
		t.Errorf("replay moved money twice: alice = %v", bal)
	}
	// Reusing the nonce with different terms is a 409.
	reuse := bank.TransferRequest{From: "alice", To: "broker", Amount: 5 * bank.Credit, Nonce: "http-1"}
	reuse.Sig = s.alice.Sign(reuse.SigningBytes())
	if _, err := s.bankC.Transfer(reuse); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("nonce reuse: %v", err)
	}
	// Forged signature is a 403.
	bad := bank.TransferRequest{From: "alice", To: "broker", Amount: bank.Credit, Nonce: "http-2"}
	bad.Sig = broker.Sign(bad.SigningBytes())
	if _, err := s.bankC.Transfer(bad); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("forged: %v", err)
	}
	// Overdraft is a 402.
	big := bank.TransferRequest{From: "alice", To: "broker", Amount: 1000 * bank.Credit, Nonce: "http-3"}
	big.Sig = s.alice.Sign(big.SigningBytes())
	if _, err := s.bankC.Transfer(big); err == nil || !strings.Contains(err.Error(), "402") {
		t.Errorf("overdraft: %v", err)
	}
}

func TestBankServiceSubAccountsAndHistory(t *testing.T) {
	s := startServices(t)
	broker, _ := s.ca.IssueDeterministic("/CN=Broker", [32]byte{9})
	if _, err := s.bankC.CreateAccount("broker", broker.Public(), ""); err != nil {
		t.Fatal(err)
	}
	sub, err := s.bankC.CreateAccount("broker/job-1", broker.Public(), "broker")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Parent != "broker" {
		t.Errorf("sub = %+v", sub)
	}
	if err := s.bankC.Deposit("broker", 5*bank.Credit, "seed"); err != nil {
		t.Fatal(err)
	}
	hist, err := s.bankC.History("broker")
	if err != nil || len(hist) != 1 || hist[0].Kind != "deposit" {
		t.Errorf("history = %+v, %v", hist, err)
	}
	if _, err := s.bankC.History("ghost"); err == nil {
		t.Error("ghost history accepted")
	}
}

func TestSLSServiceOverHTTP(t *testing.T) {
	s := startServices(t)
	h := sls.HostInfo{ID: "h1", Endpoint: "http://h1:7800", CapacityMHz: 5600, CPUs: 2, MaxVMs: 30, Site: "hplabs"}
	if err := s.slsC.Register(h); err != nil {
		t.Fatal(err)
	}
	if err := s.slsC.Register(sls.HostInfo{ID: "h2", Endpoint: "e", CapacityMHz: 2800, CPUs: 1, Site: "sics"}); err != nil {
		t.Fatal(err)
	}
	got, err := s.slsC.Lookup("h1")
	if err != nil || got.CapacityMHz != 5600 {
		t.Errorf("lookup = %+v, %v", got, err)
	}
	hosts, err := s.slsC.Select(sls.Query{MinCapacityMHz: 3000})
	if err != nil || len(hosts) != 1 || hosts[0].ID != "h1" {
		t.Errorf("select = %+v, %v", hosts, err)
	}
	hosts, err = s.slsC.Select(sls.Query{Site: "sics"})
	if err != nil || len(hosts) != 1 || hosts[0].ID != "h2" {
		t.Errorf("site select = %+v, %v", hosts, err)
	}
	if err := s.slsC.Heartbeat("h1", 0.25); err != nil {
		t.Fatal(err)
	}
	got, _ = s.slsC.Lookup("h1")
	if got.SpotPrice != 0.25 {
		t.Errorf("heartbeat price = %v", got.SpotPrice)
	}
	if err := s.slsC.Deregister("h1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.slsC.Lookup("h1"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("after deregister: %v", err)
	}
	if err := s.slsC.Heartbeat("ghost", 0); err == nil {
		t.Error("ghost heartbeat accepted")
	}
	if err := s.slsC.Register(sls.HostInfo{ID: ""}); err == nil {
		t.Error("invalid host accepted")
	}
}

func TestAuctioneerServiceOverHTTP(t *testing.T) {
	s := startServices(t)
	st, err := s.auctC.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.HostID != "h1" || st.CapacityMHz != 2800 || st.Bidders != 0 {
		t.Errorf("status = %+v", st)
	}
	deadline := time.Now().Add(time.Hour)
	if _, err := s.auctC.PlaceBid("alice", 36*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	if _, err := s.auctC.PlaceBid("bob", 36*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	// Tick the market manually (the daemon would do this on a timer).
	s.market.Tick(time.Now())
	shares, err := s.auctC.Shares()
	if err != nil || len(shares) != 2 {
		t.Fatalf("shares = %+v, %v", shares, err)
	}
	if shares[0].Fraction != 0.5 {
		t.Errorf("share = %+v", shares[0])
	}
	if err := s.auctC.Boost("alice", 36*bank.Credit); err != nil {
		t.Fatal(err)
	}
	if err := s.auctC.Boost("ghost", bank.Credit); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("ghost boost: %v", err)
	}
	refund, err := s.auctC.CancelBid("bob")
	if err != nil {
		t.Fatal(err)
	}
	// The wall-clock tick charged a few milliseconds of spend; the refund is
	// the budget minus that sliver.
	if refund <= 35*bank.Credit || refund > 36*bank.Credit {
		t.Errorf("refund = %v", refund)
	}
	// Replacing a bid reports the old (boosted) budget as refund.
	r2, err := s.auctC.PlaceBid("alice", bank.Credit, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= 71*bank.Credit || r2 > 72*bank.Credit {
		t.Errorf("replace refund = %v", r2)
	}
	// Bad requests are 400s.
	if _, err := s.auctC.PlaceBid("", bank.Credit, deadline); err == nil {
		t.Error("empty bidder accepted")
	}
}

func TestAuctioneerWindowStatsOverHTTP(t *testing.T) {
	s := startServices(t)
	deadline := time.Now().Add(time.Hour)
	if _, err := s.auctC.PlaceBid("alice", 36*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 0; i < 5; i++ {
		now = now.Add(10 * time.Second)
		s.market.Tick(now)
	}
	ws, err := s.auctC.WindowStats("hour")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Count != 5 || ws.Mean <= 0 {
		t.Errorf("window stats = %+v", ws)
	}
	var sum float64
	for _, b := range ws.Buckets {
		sum += b.Proportion
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("bucket proportions sum to %v", sum)
	}
	if _, err := s.auctC.WindowStats("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown window: %v", err)
	}
}

func TestReceiptWireRoundTrip(t *testing.T) {
	rw := ReceiptWire{
		TransferID: "t1", From: "a", To: "b", Amount: "12.5",
		At: time.Now().UTC(), BankSig: "c2ln",
	}
	r, err := rw.ToReceipt()
	if err != nil {
		t.Fatal(err)
	}
	if r.Amount != bank.MustCredits(12.5) || string(r.BankSig) != "sig" {
		t.Errorf("receipt = %+v", r)
	}
	if _, err := (ReceiptWire{Amount: "x"}).ToReceipt(); err == nil {
		t.Error("bad amount accepted")
	}
	if _, err := (ReceiptWire{Amount: "1", BankSig: "!!"}).ToReceipt(); err == nil {
		t.Error("bad sig accepted")
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	if _, err := decodeKey("!!!"); err == nil {
		t.Error("bad base64 accepted")
	}
	if _, err := decodeKey("c2hvcnQ"); err == nil {
		t.Error("short key accepted")
	}
}
