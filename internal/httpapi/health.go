package httpapi

import (
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Health tracks a daemon's liveness and readiness separately. Liveness is
// "the process is up" and never degrades; readiness is "safe to route
// traffic here" — false until every declared dependency (bank, auctioneer,
// SLS, ...) has answered at least once, and false again for good once the
// graceful-shutdown drain starts, so load balancers stop sending work to a
// daemon that is about to exit.
type Health struct {
	service string
	start   time.Time

	mu       sync.Mutex
	deps     map[string]bool
	draining bool
}

// NewHealth declares a daemon and the dependencies it must hear from before
// reporting ready. With no deps the daemon is ready from boot.
func NewHealth(service string, deps ...string) *Health {
	h := &Health{service: service, start: time.Now(), deps: make(map[string]bool, len(deps))}
	for _, d := range deps {
		h.deps[d] = false
	}
	return h
}

// MarkReady records that dependency dep has responded once. Unknown deps are
// added as satisfied, so late-discovered dependencies don't flip readiness.
func (h *Health) MarkReady(dep string) {
	h.mu.Lock()
	h.deps[dep] = true
	h.mu.Unlock()
}

// StartDrain flips readiness off permanently; called when graceful shutdown
// begins.
func (h *Health) StartDrain() {
	h.mu.Lock()
	h.draining = true
	h.mu.Unlock()
}

// Ready reports readiness plus the sorted list of dependencies still being
// waited on (empty while draining — the cause is the drain, not a dep).
func (h *Health) Ready() (ok bool, draining bool, waiting []string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return false, true, nil
	}
	for d, seen := range h.deps {
		if !seen {
			waiting = append(waiting, d)
		}
	}
	sort.Strings(waiting)
	return len(waiting) == 0, false, waiting
}

// GateUntilReady wraps app so every request is answered 503 until the
// daemon reports ready. Daemons that must finish WAL recovery before
// serving (bankd) gate their whole API this way: a client can never read
// or mutate a half-recovered ledger. Once ready the gate is a single
// mutex-guarded boolean check; draining does NOT re-engage it, so in-flight
// clients finish cleanly during graceful shutdown.
func (h *Health) GateUntilReady(app http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ok, _, waiting := h.Ready(); !ok {
			h.mu.Lock()
			draining := h.draining
			h.mu.Unlock()
			if !draining {
				w.Header().Set("Retry-After", "1")
				WriteError(w, http.StatusServiceUnavailable,
					errGate{service: h.service, waiting: waiting})
				return
			}
		}
		app.ServeHTTP(w, r)
	})
}

type errGate struct {
	service string
	waiting []string
}

func (e errGate) Error() string {
	return e.service + " still recovering: waiting for " + strings.Join(e.waiting, ", ")
}

// HealthResponse is the body of the /healthz endpoints.
type HealthResponse struct {
	Status        string   `json:"status"`
	Service       string   `json:"service"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	WaitingFor    []string `json:"waiting_for,omitempty"`
}

// LivenessHandler always answers 200: the process is serving requests.
func (h *Health) LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, HealthResponse{
			Status:        "ok",
			Service:       h.service,
			UptimeSeconds: time.Since(h.start).Seconds(),
		})
	})
}

// ReadinessHandler answers 200 once all dependencies have responded, 503
// while still waiting ("starting") or once draining has begun ("draining").
func (h *Health) ReadinessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok, draining, waiting := h.Ready()
		resp := HealthResponse{
			Status:        "ok",
			Service:       h.service,
			UptimeSeconds: time.Since(h.start).Seconds(),
			WaitingFor:    waiting,
		}
		if !ok {
			resp.Status = "starting"
			if draining {
				resp.Status = "draining"
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		WriteJSON(w, resp)
	})
}
