package httpapi

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"tycoongrid/internal/tracing"
)

// Traced wraps next so every application request runs inside a server span.
// An incoming W3C traceparent header joins the caller's trace (each retry
// attempt arrives with its own parent span id); without one the request
// starts a new trace. Scrapes, health probes and debug endpoints are left
// untraced — they would drown the ring in noise.
func Traced(service string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if p == "/metrics" || strings.HasPrefix(p, "/healthz") || strings.HasPrefix(p, "/debug/") {
			next.ServeHTTP(w, r)
			return
		}
		sc, _ := tracing.ParseTraceparent(r.Header.Get(tracing.TraceparentHeader))
		span := tracing.Default().StartRemote(sc, "http.server "+r.Method+" "+routeLabel(p),
			tracing.String("service", service),
			tracing.String("path", p))
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(tracing.ContextWithSpan(r.Context(), span)))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		span.SetAttr(tracing.String("status", strconv3(rec.status)))
		if rec.status >= 500 {
			span.EndErr(fmt.Errorf("status %d", rec.status))
		} else {
			span.End()
		}
	})
}

// SpanWire is the JSON form of one span on /debug/traces/{id}.
type SpanWire struct {
	TraceID    string          `json:"trace_id"`
	SpanID     string          `json:"span_id"`
	ParentID   string          `json:"parent_id,omitempty"`
	Name       string          `json:"name"`
	Start      time.Time       `json:"start"`
	End        *time.Time      `json:"end,omitempty"`
	DurationMS float64         `json:"duration_ms"`
	Error      string          `json:"error,omitempty"`
	Attrs      []tracing.Attr  `json:"attrs,omitempty"`
	Events     []tracing.Event `json:"events,omitempty"`
	Dropped    int             `json:"dropped,omitempty"`
}

// spanWire flattens a span for the wire.
func spanWire(s *tracing.Span) SpanWire {
	w := SpanWire{
		TraceID:    s.Context().TraceID.String(),
		SpanID:     s.Context().SpanID.String(),
		Name:       s.Name(),
		Start:      s.StartTime(),
		DurationMS: float64(s.Duration()) / float64(time.Millisecond),
		Error:      s.Err(),
		Attrs:      s.Attrs(),
		Events:     s.Events(),
		Dropped:    s.Dropped(),
	}
	if p := s.Parent(); !p.IsZero() {
		w.ParentID = p.String()
	}
	if e := s.EndTime(); !e.IsZero() {
		w.End = &e
	}
	return w
}

// TraceSummaryWire is one row of the /debug/traces listing.
type TraceSummaryWire struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Spans      int       `json:"spans"`
	Errors     int       `json:"errors"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
}

// TraceListHandler lists stored traces, most recent first (nil tracer means
// the default one).
func TraceListHandler(t *tracing.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := t
		if tr == nil {
			tr = tracing.Default()
		}
		sums := tr.Summaries()
		out := make([]TraceSummaryWire, 0, len(sums))
		for _, s := range sums {
			out = append(out, TraceSummaryWire{
				TraceID:    s.TraceID.String(),
				Root:       s.Root,
				Spans:      s.Spans,
				Errors:     s.Errors,
				Start:      s.Start,
				DurationMS: float64(s.Duration) / float64(time.Millisecond),
			})
		}
		WriteJSON(w, out)
	})
}

// TraceGetHandler serves one trace's spans as JSON, or as an ASCII tree with
// ?format=tree (nil tracer means the default one).
func TraceGetHandler(t *tracing.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := t
		if tr == nil {
			tr = tracing.Default()
		}
		id, ok := tracing.ParseTraceID(r.PathValue("id"))
		if !ok {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("httpapi: bad trace id"))
			return
		}
		spans := tr.Spans(id)
		if len(spans) == 0 {
			WriteError(w, http.StatusNotFound, fmt.Errorf("httpapi: unknown trace"))
			return
		}
		if r.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(tracing.RenderTree(spans)))
			return
		}
		out := make([]SpanWire, 0, len(spans))
		for _, s := range spans {
			out = append(out, spanWire(s))
		}
		WriteJSON(w, out)
	})
}
