package httpapi

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/stats"
)

// AuctioneerService exposes one host's market over HTTP, with the §4
// statistics trackers attached: moving-window moments and slot-table
// distributions per configured window.
type AuctioneerService struct {
	market *auction.Market
	mux    *http.ServeMux

	mu       sync.Mutex
	trackers map[string]*windowTracker
}

type windowTracker struct {
	moments *stats.MovingMoments
	dist    *stats.WindowDistribution
}

// NewAuctioneerService wraps a market and attaches statistics windows named
// by label ("hour" -> 360 snapshots etc.).
func NewAuctioneerService(m *auction.Market, windows map[string]int) (*AuctioneerService, error) {
	s := &AuctioneerService{
		market:   m,
		mux:      http.NewServeMux(),
		trackers: make(map[string]*windowTracker),
	}
	for name, n := range windows {
		mm, err := stats.NewMovingMoments(n)
		if err != nil {
			return nil, err
		}
		wd, err := stats.NewWindowDistribution(n, 20)
		if err != nil {
			return nil, err
		}
		s.trackers[name] = &windowTracker{moments: mm, dist: wd}
	}
	m.Observe(func(price float64, _ time.Time) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, t := range s.trackers {
			t.moments.Observe(price)
			t.dist.Observe(price)
		}
	})
	s.mux.HandleFunc("GET /status", s.status)
	s.mux.HandleFunc("POST /bids", s.placeBid)
	s.mux.HandleFunc("POST /boosts", s.boost)
	s.mux.HandleFunc("DELETE /bids/{bidder...}", s.cancelBid)
	s.mux.HandleFunc("GET /shares", s.shares)
	s.mux.HandleFunc("GET /stats/{window}", s.windowStats)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *AuctioneerService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ReplayPrices seeds every statistics window with historical price samples,
// oldest first. A restarting auctioneerd feeds its recovered price log
// through this before serving, so prediction quantiles and moving moments
// pick up where the crashed process left off instead of relearning from an
// empty window.
func (s *AuctioneerService) ReplayPrices(prices []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range prices {
		for _, t := range s.trackers {
			t.moments.Observe(p)
			t.dist.Observe(p)
		}
	}
}

// Wire types.
type (
	// MarketStatus is the host's public market state.
	MarketStatus struct {
		HostID      string  `json:"host_id"`
		CapacityMHz float64 `json:"capacity_mhz"`
		SpotPrice   float64 `json:"spot_price"`    // credits/second
		PricePerMHz float64 `json:"price_per_mhz"` // the paper's $/s per cycles/s
		Bidders     int     `json:"bidders"`
	}
	// BidRequest places or replaces a bid.
	BidRequest struct {
		Bidder   string    `json:"bidder"`
		Budget   string    `json:"budget"` // decimal credits
		Deadline time.Time `json:"deadline"`
	}
	// BidResponse reports the refund of a replaced bid.
	BidResponse struct {
		Refund string `json:"refund"`
	}
	// BoostRequest adds funds to an existing bid.
	BoostRequest struct {
		Bidder string `json:"bidder"`
		Extra  string `json:"extra"`
	}
	// ShareWire is one bidder's current allocation.
	ShareWire struct {
		Bidder    string  `json:"bidder"`
		Fraction  float64 `json:"fraction"`
		Rate      float64 `json:"rate"`
		Remaining string  `json:"remaining"`
	}
	// WindowStats reports §4 statistics for one moving window.
	WindowStats struct {
		Window   string         `json:"window"`
		Mean     float64        `json:"mean"`
		StdDev   float64        `json:"std_dev"`
		Skewness float64        `json:"skewness"`
		Kurtosis float64        `json:"kurtosis"`
		Count    int64          `json:"count"`
		Buckets  []stats.Bucket `json:"buckets"`
	}
)

func auctionStatus(err error) int {
	switch {
	case errors.Is(err, auction.ErrUnknownBidder):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func (s *AuctioneerService) status(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, MarketStatus{
		HostID:      s.market.HostID(),
		CapacityMHz: s.market.CapacityMHz(),
		SpotPrice:   s.market.SpotPrice(),
		PricePerMHz: s.market.PricePerMHz(),
		Bidders:     s.market.Bidders(),
	})
}

func (s *AuctioneerService) placeBid(w http.ResponseWriter, r *http.Request) {
	var req BidRequest
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	budget, err := bank.ParseAmount(req.Budget)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	refund, err := s.market.PlaceBid(auction.BidderID(req.Bidder), budget, req.Deadline)
	if err != nil {
		WriteError(w, auctionStatus(err), err)
		return
	}
	WriteJSON(w, BidResponse{Refund: refund.String()})
}

func (s *AuctioneerService) boost(w http.ResponseWriter, r *http.Request) {
	var req BoostRequest
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	extra, err := bank.ParseAmount(req.Extra)
	if err != nil {
		WriteError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.market.Boost(auction.BidderID(req.Bidder), extra); err != nil {
		WriteError(w, auctionStatus(err), err)
		return
	}
	WriteJSON(w, map[string]string{"status": "ok"})
}

func (s *AuctioneerService) cancelBid(w http.ResponseWriter, r *http.Request) {
	refund, err := s.market.CancelBid(auction.BidderID(r.PathValue("bidder")))
	if err != nil {
		WriteError(w, auctionStatus(err), err)
		return
	}
	WriteJSON(w, BidResponse{Refund: refund.String()})
}

func (s *AuctioneerService) shares(w http.ResponseWriter, r *http.Request) {
	shares := s.market.Shares()
	out := make([]ShareWire, len(shares))
	for i, sh := range shares {
		out[i] = ShareWire{
			Bidder:    string(sh.Bidder),
			Fraction:  sh.Fraction,
			Rate:      sh.Rate,
			Remaining: sh.Remaining.String(),
		}
	}
	WriteJSON(w, out)
}

func (s *AuctioneerService) windowStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("window")
	s.mu.Lock()
	t, ok := s.trackers[name]
	if !ok {
		s.mu.Unlock()
		WriteError(w, http.StatusNotFound, errors.New("httpapi: unknown stats window "+name))
		return
	}
	snap := t.moments.Snapshot()
	buckets := t.dist.Buckets()
	s.mu.Unlock()
	WriteJSON(w, WindowStats{
		Window:   name,
		Mean:     snap.Mean,
		StdDev:   snap.StdDev,
		Skewness: snap.Skewness,
		Kurtosis: snap.Kurtosis,
		Count:    snap.Count,
		Buckets:  buckets,
	})
}

// AuctioneerClient is the typed client for one host's auctioneer.
type AuctioneerClient struct {
	base string
	call Caller
}

// NewAuctioneerClient targets base. A nil client defaults to one with
// DefaultClientTimeout. Reads are retried with backoff; PlaceBid, Boost and
// CancelBid move money without replay protection, so they are single
// attempts. All calls share one circuit breaker named "auctioneer".
func NewAuctioneerClient(base string, client *http.Client) *AuctioneerClient {
	return &AuctioneerClient{base: strings.TrimSuffix(base, "/"), call: newCaller("auctioneer", client)}
}

// Status fetches the market state.
func (c *AuctioneerClient) Status() (MarketStatus, error) {
	var out MarketStatus
	err := c.call.get(context.Background(), c.base+"/status", &out)
	return out, err
}

// PlaceBid enters a bid; the returned amount is the refund of any replaced
// bid.
func (c *AuctioneerClient) PlaceBid(bidder string, budget bank.Amount, deadline time.Time) (bank.Amount, error) {
	var out BidResponse
	err := c.call.post(context.Background(), c.base+"/bids",
		BidRequest{Bidder: bidder, Budget: budget.String(), Deadline: deadline}, &out)
	if err != nil {
		return 0, err
	}
	return bank.ParseAmount(out.Refund)
}

// Boost adds funds to a bid.
func (c *AuctioneerClient) Boost(bidder string, extra bank.Amount) error {
	return c.call.post(context.Background(), c.base+"/boosts",
		BoostRequest{Bidder: bidder, Extra: extra.String()}, nil)
}

// CancelBid withdraws a bid, returning the unspent budget.
func (c *AuctioneerClient) CancelBid(bidder string) (bank.Amount, error) {
	var out BidResponse
	if err := c.call.del(context.Background(), c.base+"/bids/"+bidder, &out); err != nil {
		return 0, err
	}
	return bank.ParseAmount(out.Refund)
}

// Shares lists current allocations.
func (c *AuctioneerClient) Shares() ([]ShareWire, error) {
	var out []ShareWire
	err := c.call.get(context.Background(), c.base+"/shares", &out)
	return out, err
}

// WindowStats fetches the §4 statistics for one window label.
func (c *AuctioneerClient) WindowStats(window string) (WindowStats, error) {
	var out WindowStats
	err := c.call.get(context.Background(), c.base+"/stats/"+window, &out)
	return out, err
}
