package httpapi

import (
	"net/http/httptest"
	"strings"
	"testing"

	"tycoongrid/internal/metrics"
)

// TestMetricsContentNegotiation pins the /metrics format contract: the
// Prometheus 0.0.4 text format by default, OpenMetrics (exemplars, "# EOF"
// terminator) when the Accept header asks for it. The telemetry aggregator
// scrapes with the OpenMetrics Accept header, so both arms are load-bearing.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("negotiation_requests_total", "test counter")
	c.Inc()
	h := reg.Histogram("negotiation_latency_seconds", "test histogram", []float64{0.01, 0.1})
	h.ObserveExemplar(0.05, "00000000000000000000000000abc123")
	handler := MetricsHandler(reg)

	t.Run("default is prometheus text", func(t *testing.T) {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
			t.Fatalf("Content-Type = %q", got)
		}
		body := rec.Body.String()
		if !strings.Contains(body, "negotiation_requests_total 1") {
			t.Errorf("missing counter sample:\n%s", body)
		}
		if strings.Contains(body, "# EOF") {
			t.Errorf("prometheus text must not carry the OpenMetrics terminator:\n%s", body)
		}
		if strings.Contains(body, "# {") {
			t.Errorf("prometheus text must not carry exemplars:\n%s", body)
		}
	})

	t.Run("openmetrics on accept", func(t *testing.T) {
		req := httptest.NewRequest("GET", "/metrics", nil)
		req.Header.Set("Accept", metrics.OpenMetricsContentType)
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if got := rec.Header().Get("Content-Type"); got != metrics.OpenMetricsContentType {
			t.Fatalf("Content-Type = %q", got)
		}
		body := rec.Body.String()
		if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
			t.Errorf("missing # EOF terminator:\n%s", body)
		}
		if !strings.Contains(body, `trace_id="00000000000000000000000000abc123"`) {
			t.Errorf("missing bucket exemplar:\n%s", body)
		}
	})

	t.Run("accept list containing openmetrics wins", func(t *testing.T) {
		req := httptest.NewRequest("GET", "/metrics", nil)
		req.Header.Set("Accept", "text/html, application/openmetrics-text; version=1.0.0, */*")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		if got := rec.Header().Get("Content-Type"); got != metrics.OpenMetricsContentType {
			t.Fatalf("Content-Type = %q", got)
		}
	})
}
