package httpapi

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/box"
)

// jobWorld spins up a box behind a JobService.
func jobWorld(t *testing.T) (*box.Box, *JobClient, *JobService) {
	t.Helper()
	b, err := box.New(box.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewJobService(b.Manager, b.Engine)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	t.Cleanup(srv.Close)
	return b, NewJobClient(srv.URL, nil), svc
}

func (s *JobService) driveFor(d time.Duration) {
	s.Drive(s.engine.Now().Add(d))
}

func TestNewJobServiceValidation(t *testing.T) {
	if _, err := NewJobService(nil, nil); err == nil {
		t.Error("nil manager accepted")
	}
}

func TestJobSubmissionOverHTTP(t *testing.T) {
	b, client, svc := jobWorld(t)
	if _, err := b.CreateUser("alice", 100*bank.Credit); err != nil {
		t.Fatal(err)
	}
	tok, err := b.MintToken("alice", 25*bank.Credit)
	if err != nil {
		t.Fatal(err)
	}
	xrsl := fmt.Sprintf(
		"&(executable=scan.sh)(jobname=http-job)(count=2)(cputime=5)(walltime=60)(transfertoken=%s)", tok)
	jw, err := client.Submit(xrsl)
	if err != nil {
		t.Fatal(err)
	}
	if jw.State != "PREPARING" && jw.State != "INLRMS:R" {
		t.Errorf("initial state = %q", jw.State)
	}
	svc.driveFor(time.Hour)
	got, err := client.Job(jw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "FINISHED" {
		t.Fatalf("state = %q (%s)", got.State, got.Error)
	}
	if got.SubJobsDone != 2 || got.SubJobsTotal != 2 {
		t.Errorf("sub-jobs %d/%d", got.SubJobsDone, got.SubJobsTotal)
	}
	if got.JobName != "http-job" || got.DN == "" || got.Charged == "" {
		t.Errorf("wire fields missing: %+v", got)
	}
	jobs, err := client.Jobs()
	if err != nil || len(jobs) != 1 {
		t.Errorf("jobs = %v, %v", jobs, err)
	}
}

func TestJobSubmitErrorsOverHTTP(t *testing.T) {
	_, client, _ := jobWorld(t)
	if _, err := client.Submit("not xrsl"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := client.Submit(""); err == nil {
		t.Error("empty body accepted")
	}
	if _, err := client.Job("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("ghost job: %v", err)
	}
}

func TestJobBoostOverHTTP(t *testing.T) {
	b, client, svc := jobWorld(t)
	if _, err := b.CreateUser("alice", 1000*bank.Credit); err != nil {
		t.Fatal(err)
	}
	tok, err := b.MintToken("alice", 20*bank.Credit)
	if err != nil {
		t.Fatal(err)
	}
	xrsl := fmt.Sprintf(
		"&(executable=x)(count=2)(cputime=30)(walltime=600)(transfertoken=%s)", tok)
	jw, err := client.Submit(xrsl)
	if err != nil {
		t.Fatal(err)
	}
	svc.driveFor(time.Minute)
	boost, err := b.MintToken("alice", 50*bank.Credit)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Boost(jw.ID, boost); err != nil {
		t.Fatalf("boost: %v", err)
	}
	if err := client.Boost("ghost", boost); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("ghost boost: %v", err)
	}
	if err := client.Boost(jw.ID, "garbage"); err == nil {
		t.Error("garbage token accepted")
	}
}

func TestMonitorOverHTTP(t *testing.T) {
	b, client, svc := jobWorld(t)
	snap, err := client.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	if snap.PhysicalNodes != 8 || snap.ClusterName != "tycoon-box" {
		t.Errorf("snapshot = %+v", snap)
	}
	if _, err := b.CreateUser("alice", 100*bank.Credit); err != nil {
		t.Fatal(err)
	}
	tok, err := b.MintToken("alice", 10*bank.Credit)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(fmt.Sprintf(
		"&(executable=x)(count=2)(cputime=30)(walltime=300)(transfertoken=%s)", tok)); err != nil {
		t.Fatal(err)
	}
	svc.driveFor(time.Minute)
	snap, err = client.Monitor()
	if err != nil {
		t.Fatal(err)
	}
	if snap.JobsRunning != 1 || snap.VirtualCPUs == 0 {
		t.Errorf("running snapshot = %+v", snap)
	}
}

func TestJobCancelOverHTTP(t *testing.T) {
	b, client, svc := jobWorld(t)
	if _, err := b.CreateUser("alice", 200*bank.Credit); err != nil {
		t.Fatal(err)
	}
	tok, err := b.MintToken("alice", 50*bank.Credit)
	if err != nil {
		t.Fatal(err)
	}
	jw, err := client.Submit(fmt.Sprintf(
		"&(executable=x)(count=2)(cputime=120)(walltime=600)(transfertoken=%s)", tok))
	if err != nil {
		t.Fatal(err)
	}
	svc.driveFor(5 * time.Minute)
	if err := client.Cancel(jw.ID); err != nil {
		t.Fatal(err)
	}
	got, err := client.Job(jw.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "KILLED" {
		t.Errorf("state = %q", got.State)
	}
	if err := client.Cancel(jw.ID); err == nil {
		t.Error("double cancel accepted")
	}
	if err := client.Cancel("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("ghost cancel: %v", err)
	}
}

func TestConcurrentDriveAndRequests(t *testing.T) {
	// The daemon drives the engine from a goroutine while HTTP requests
	// arrive concurrently; under -race this catches any locking gap.
	b, client, svc := jobWorld(t)
	if _, err := b.CreateUser("alice", 10000*bank.Credit); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			svc.driveFor(time.Minute)
		}
	}()
	for i := 0; i < 10; i++ {
		var tok string
		var mintErr error
		svc.WithLock(func() { tok, mintErr = b.MintToken("alice", 10*bank.Credit) })
		if mintErr != nil {
			t.Fatal(mintErr)
		}
		if _, err := client.Submit(fmt.Sprintf(
			"&(executable=x)(count=2)(cputime=2)(walltime=60)(transfertoken=%s)", tok)); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Jobs(); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Monitor(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	svc.driveFor(2 * time.Hour)
	jobs, err := client.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	finished := 0
	for _, j := range jobs {
		if j.State == "FINISHED" {
			finished++
		}
	}
	if finished != 10 {
		t.Errorf("finished %d/10 jobs", finished)
	}
}

func TestDriveIsMonotonic(t *testing.T) {
	_, _, svc := jobWorld(t)
	now := svc.engine.Now()
	svc.Drive(now.Add(-time.Hour)) // must not rewind or panic
	if svc.engine.Now().Before(now) {
		t.Error("Drive went backwards")
	}
}
