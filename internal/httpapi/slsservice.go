package httpapi

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"tycoongrid/internal/sls"
)

// SLSService exposes the Service Location Service over HTTP.
type SLSService struct {
	reg *sls.Registry
	mux *http.ServeMux
}

// NewSLSService wraps reg.
func NewSLSService(reg *sls.Registry) *SLSService {
	s := &SLSService{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /hosts", s.register)
	s.mux.HandleFunc("GET /hosts", s.query)
	s.mux.HandleFunc("GET /hosts/{id}", s.lookup)
	s.mux.HandleFunc("DELETE /hosts/{id}", s.deregister)
	s.mux.HandleFunc("POST /heartbeats", s.heartbeat)
	return s
}

// ServeHTTP implements http.Handler.
func (s *SLSService) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// HeartbeatRequest refreshes a host's liveness.
type HeartbeatRequest struct {
	ID        string  `json:"id"`
	SpotPrice float64 `json:"spot_price"` // negative = no update
}

func slsStatus(err error) int {
	if errors.Is(err, sls.ErrUnknownHost) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func (s *SLSService) register(w http.ResponseWriter, r *http.Request) {
	var h sls.HostInfo
	if err := ReadJSON(r, &h); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	if err := s.reg.Register(h); err != nil {
		WriteError(w, slsStatus(err), err)
		return
	}
	WriteJSON(w, h)
}

func (s *SLSService) query(w http.ResponseWriter, r *http.Request) {
	q := sls.Query{Site: r.URL.Query().Get("site")}
	if v := r.URL.Query().Get("min_capacity"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		q.MinCapacityMHz = f
	}
	if v := r.URL.Query().Get("max_price"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		q.MaxSpotPrice = f
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		q.Limit = n
	}
	WriteJSON(w, s.reg.Select(q))
}

func (s *SLSService) lookup(w http.ResponseWriter, r *http.Request) {
	h, err := s.reg.Lookup(r.PathValue("id"))
	if err != nil {
		WriteError(w, slsStatus(err), err)
		return
	}
	WriteJSON(w, h)
}

func (s *SLSService) deregister(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Deregister(r.PathValue("id")); err != nil {
		WriteError(w, slsStatus(err), err)
		return
	}
	WriteJSON(w, map[string]string{"status": "ok"})
}

func (s *SLSService) heartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := ReadJSON(r, &req); err != nil {
		WriteError(w, ReadStatus(err), err)
		return
	}
	if err := s.reg.Heartbeat(req.ID, req.SpotPrice); err != nil {
		WriteError(w, slsStatus(err), err)
		return
	}
	WriteJSON(w, map[string]string{"status": "ok"})
}

// SLSClient is the typed client for an SLSService.
type SLSClient struct {
	base string
	call Caller
}

// NewSLSClient targets base. A nil client defaults to one with
// DefaultClientTimeout. Reads, Register and Heartbeat (idempotent state
// refreshes) are retried with backoff; Deregister is a single attempt. All
// calls share one circuit breaker named "sls".
func NewSLSClient(base string, client *http.Client) *SLSClient {
	return &SLSClient{base: strings.TrimSuffix(base, "/"), call: newCaller("sls", client)}
}

// Register announces a host.
func (c *SLSClient) Register(h sls.HostInfo) error {
	// Retried: registration upserts the host record.
	return c.call.postIdempotent(context.Background(), c.base+"/hosts", h, nil)
}

// Heartbeat refreshes liveness and (optionally) the advertised spot price.
func (c *SLSClient) Heartbeat(id string, spotPrice float64) error {
	// Retried: a heartbeat just refreshes liveness and price.
	return c.call.postIdempotent(context.Background(), c.base+"/heartbeats",
		HeartbeatRequest{ID: id, SpotPrice: spotPrice}, nil)
}

// Select queries live hosts.
func (c *SLSClient) Select(q sls.Query) ([]sls.HostInfo, error) {
	u := c.base + "/hosts?min_capacity=" + strconv.FormatFloat(q.MinCapacityMHz, 'g', -1, 64) +
		"&max_price=" + strconv.FormatFloat(q.MaxSpotPrice, 'g', -1, 64) +
		"&limit=" + strconv.Itoa(q.Limit)
	if q.Site != "" {
		u += "&site=" + q.Site
	}
	var out []sls.HostInfo
	err := c.call.get(context.Background(), u, &out)
	return out, err
}

// Lookup fetches one host.
func (c *SLSClient) Lookup(id string) (sls.HostInfo, error) {
	var out sls.HostInfo
	err := c.call.get(context.Background(), c.base+"/hosts/"+id, &out)
	return out, err
}

// Deregister removes a host.
func (c *SLSClient) Deregister(id string) error {
	return c.call.del(context.Background(), c.base+"/hosts/"+id, nil)
}
