package mechanism

// proportional is the paper's §2.2 rule and the repository default: each
// bidder receives the fraction of the host equal to its spend rate divided by
// the sum of all spend rates, pays exactly its own rate while active, and the
// published spot price is the rate sum floored at the reserve.
//
// Bit-identity note: the price fold below is a plain += over bids in
// ascending bidder order — the same add sequence as mathx.SortedSum over the
// legacy auction's bid map — so the refactored auction reproduces the
// pre-mechanism spot prices exactly (see the golden test in
// internal/experiment).
type proportional struct{}

func (proportional) Name() string { return Proportional }

func (proportional) Quote(bids []Bid, capacity Capacity) Outcome {
	bids = normalize(bids)
	capacity, allocatable := saneCapacity(capacity)
	var total float64
	for _, b := range bids {
		total += b.Rate
	}
	price := total
	if price < capacity.Reserve {
		price = capacity.Reserve
	}
	out := Outcome{Price: price}
	if !allocatable {
		return out
	}
	out.Lines = make([]Line, 0, len(bids))
	for _, b := range bids {
		frac := 0.0
		if total > 0 {
			frac = b.Rate / total
		}
		out.Lines = append(out.Lines, Line{Bidder: b.Bidder, Fraction: frac, PayRate: b.Rate})
	}
	return out
}

// Clear is identical to Quote: proportional share carries no state.
func (p proportional) Clear(bids []Bid, capacity Capacity) Outcome {
	return p.Quote(bids, capacity)
}
