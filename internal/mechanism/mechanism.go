// Package mechanism holds the pluggable clearing rules of the per-host
// market. internal/auction owns bid lifecycle (budgets, deadlines, boosts,
// charging, expiry); a Mechanism owns only the economics of one reallocation:
// given the live bids and the host's capacity, who gets what fraction of the
// CPU, at what pay rate, and what spot price gets published.
//
// Three mechanisms ship:
//
//   - proportional: the paper's proportional-share rule (§2.2). Share =
//     rate/Σrates, pay rate = bid rate, price = Σrates. The default, and
//     bit-for-bit identical to the pre-refactor auction (golden-tested).
//   - posted-price: a commodity market in the sense of Buyya's economic-model
//     survey. The host publishes a price; bidders are admitted greedily at
//     that price until capacity runs out; the price adjusts tatonnement-style
//     toward a demand target after every clear.
//   - vcg: welfare-maximizing allocation over concave piecewise-linear SLA
//     valuations (internal/sla), each winner paying the externality its
//     presence imposes on the rest — truthful and individually rational.
//
// # Determinism contract
//
// Mechanisms are pure functions of (bids, capacity) plus their own explicit
// state; they never read clocks, maps in range order, or global RNGs. Callers
// pass bids sorted ascending by bidder with unique bidders; every float fold
// inside a mechanism runs in a deterministic order so the same inputs produce
// the same bits on every run, any shard layout, and any worker count.
// Defensively (for fuzzing), mechanisms tolerate unsorted, duplicate and
// non-finite input by normalizing first — the normalization is the identity
// on contract-conforming input, which is how the proportional path keeps the
// legacy fold order exactly.
package mechanism

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"tycoongrid/internal/sla"
)

// Bid is one bidder's standing request as the mechanism sees it.
type Bid struct {
	Bidder string
	// Rate is the reported spend rate in credits/second — the budget
	// amortized over the time to deadline (paper §2.2).
	Rate float64
	// Valuation optionally carries a concave piecewise-linear value curve
	// (credits/second at each capacity level) for value-aware mechanisms.
	// When nil, such mechanisms derive one from Rate via
	// sla.ValuationFromRate.
	Valuation *sla.Valuation
}

// Capacity describes the host being allocated.
type Capacity struct {
	MHz     float64 // CPU capacity
	Reserve float64 // price floor, credits/second, models opportunity cost
}

// Line is one bidder's row in an Outcome.
type Line struct {
	Bidder   string
	Fraction float64 // share of the host CPU, in [0, 1]
	PayRate  float64 // credits/second charged while the bidder is active
}

// Outcome is the result of one clearing: allocation lines sorted ascending by
// bidder and the published spot price (>= the reserve, finite, non-negative).
type Outcome struct {
	Lines []Line
	Price float64
}

// Line returns the line for a bidder and whether one exists.
func (o Outcome) Line(bidder string) (Line, bool) {
	i := sort.Search(len(o.Lines), func(i int) bool { return o.Lines[i].Bidder >= bidder })
	if i < len(o.Lines) && o.Lines[i].Bidder == bidder {
		return o.Lines[i], true
	}
	return Line{}, false
}

// Mechanism is a clearing rule. Quote computes the outcome without advancing
// any internal state (safe to call for inspection, e.g. share queries between
// ticks); Clear is the authoritative per-interval reallocation and may update
// state such as the posted price. For stateless mechanisms the two coincide.
type Mechanism interface {
	Name() string
	Quote(bids []Bid, cap Capacity) Outcome
	Clear(bids []Bid, cap Capacity) Outcome
}

// Canonical mechanism names accepted by New and the -mechanism CLI flags.
const (
	Proportional = "proportional"
	PostedPrice  = "posted-price"
	VCG          = "vcg"
)

// Config carries mechanism tuning knobs; zero values select defaults.
type Config struct {
	// PostedInitialPrice seeds the posted-price mechanism's published price
	// (credits/second for the whole host). Default: the capacity reserve at
	// first clear.
	PostedInitialPrice float64
	// PostedAlpha is the tatonnement step size. Default 0.1.
	PostedAlpha float64
	// PostedTarget is the demand-share target the posted price steers toward
	// (1 = fully subscribed). Default 1.
	PostedTarget float64
}

// ErrUnknown reports an unrecognized mechanism name.
var ErrUnknown = errors.New("mechanism: unknown mechanism")

// New builds a fresh mechanism instance by canonical name. Each host market
// needs its own instance: posted-price carries per-host price state. The
// empty name selects the proportional default.
func New(name string, cfg Config) (Mechanism, error) {
	switch name {
	case "", Proportional:
		return proportional{}, nil
	case PostedPrice, "posted":
		return newPostedPrice(cfg), nil
	case VCG:
		return vcg{}, nil
	}
	return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknown, name, Names())
}

// Names lists the canonical mechanism names in deterministic order.
func Names() []string { return []string{Proportional, PostedPrice, VCG} }

// saneRate reports whether a reported rate is usable: positive, finite, and
// below an absurdity bound that keeps every in-mechanism price fold finite
// (no real spend rate comes within hundreds of orders of magnitude of it).
func saneRate(r float64) bool { return r > 0 && r < 1e300 }

// normalize enforces the input contract — sane rates, sorted ascending by
// bidder, unique bidders — copying only when the input violates it, so the
// conforming path (the auction core) hands its slice through untouched and
// fold order is exactly the legacy order.
func normalize(bids []Bid) []Bid {
	ok := true
	for i, b := range bids {
		if !saneRate(b.Rate) || b.Bidder == "" || (i > 0 && bids[i-1].Bidder >= b.Bidder) {
			ok = false
			break
		}
	}
	if ok {
		return bids
	}
	out := make([]Bid, 0, len(bids))
	for _, b := range bids {
		if saneRate(b.Rate) && b.Bidder != "" {
			out = append(out, b)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Bidder < out[j].Bidder })
	// Keep the first occurrence of each duplicate bidder.
	uniq := out[:0]
	for _, b := range out {
		if len(uniq) == 0 || uniq[len(uniq)-1].Bidder != b.Bidder {
			uniq = append(uniq, b)
		}
	}
	return uniq
}

// saneCapacity clamps a Capacity to usable values: non-finite or negative
// reserves become 0, and the boolean reports whether the MHz is allocatable.
func saneCapacity(cap Capacity) (Capacity, bool) {
	if math.IsNaN(cap.Reserve) || math.IsInf(cap.Reserve, 0) || cap.Reserve < 0 {
		cap.Reserve = 0
	}
	if !(cap.MHz > 0) || math.IsInf(cap.MHz, 1) {
		return cap, false
	}
	return cap, true
}
