package mechanism

import (
	"math"
	"testing"

	"tycoongrid/internal/rng"
	"tycoongrid/internal/sla"
)

var testCap = Capacity{MHz: 3000, Reserve: 1e-6}

func TestNewRegistry(t *testing.T) {
	for _, name := range append(Names(), "", "posted") {
		m, err := New(name, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if name != "" && name != "posted" && m.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := New("dutch", Config{}); err == nil {
		t.Error("New accepted unknown mechanism name")
	}
	if m, _ := New("", Config{}); m.Name() != Proportional {
		t.Errorf("empty name selected %q, want proportional default", m.Name())
	}
}

func TestProportionalMatchesLegacyRule(t *testing.T) {
	bids := []Bid{
		{Bidder: "a", Rate: 0.3},
		{Bidder: "b", Rate: 0.1},
		{Bidder: "c", Rate: 0.6},
	}
	m, _ := New(Proportional, Config{})
	out := m.Clear(bids, testCap)
	if math.Abs(out.Price-1.0) > 1e-15 {
		t.Errorf("price = %v, want rate sum 1.0", out.Price)
	}
	for i, want := range []float64{0.3, 0.1, 0.6} {
		if got := out.Lines[i].Fraction; math.Abs(got-want) > 1e-15 {
			t.Errorf("line %d fraction = %v, want %v", i, got, want)
		}
		if out.Lines[i].PayRate != bids[i].Rate {
			t.Errorf("line %d pay rate = %v, want pass-through %v", i, out.Lines[i].PayRate, bids[i].Rate)
		}
	}
	// Idle host: reserve floor.
	if out := m.Clear(nil, testCap); out.Price != testCap.Reserve {
		t.Errorf("idle price = %v, want reserve", out.Price)
	}
}

// randomBids draws n bids with unique sorted bidders and positive rates.
func randomBids(src *rng.Source, n int, withValuations bool) []Bid {
	bids := make([]Bid, 0, n)
	for i := 0; i < n; i++ {
		b := Bid{
			Bidder: string(rune('a'+i%26)) + string(rune('a'+i/26)),
			Rate:   src.Uniform(0.001, 2),
		}
		if withValuations {
			v := sla.RandomValuation(src, testCap.MHz)
			b.Valuation = &v
		}
		bids = append(bids, b)
	}
	return bids
}

// utility computes bidder i's true utility under an outcome: true value of
// the received fraction minus the pay rate.
func utility(trueVal sla.Valuation, out Outcome, bidder string, capMHz float64) float64 {
	l, ok := out.Line(bidder)
	if !ok {
		return 0
	}
	return trueVal.ValueRate(l.Fraction*capMHz) - l.PayRate
}

// TestVCGTruthfulness checks the dominant-strategy property over >= 1000
// seeded random profiles: misreporting a scaled valuation never increases a
// bidder's true utility beyond float noise.
func TestVCGTruthfulness(t *testing.T) {
	src := rng.New(rng.DeriveSeed(2006, 1))
	m, _ := New(VCG, Config{})
	profiles := 0
	for trial := 0; profiles < 1000; trial++ {
		n := 2 + src.Intn(5)
		bids := randomBids(src, n, true)
		truthful := m.Clear(bids, testCap)
		for i := range bids {
			trueVal := *bids[i].Valuation
			base := utility(trueVal, truthful, bids[i].Bidder, testCap.MHz)
			for _, scale := range []float64{0, 0.25, 0.5, 0.9, 1.1, 2, 10} {
				lie := trueVal.Scale(scale)
				deviated := make([]Bid, len(bids))
				copy(deviated, bids)
				deviated[i].Valuation = &lie
				devOut := m.Clear(deviated, testCap)
				devUtil := utility(trueVal, devOut, bids[i].Bidder, testCap.MHz)
				if devUtil > base+1e-9 {
					t.Fatalf("profile %d bidder %d: lying with scale %v raised utility %v -> %v",
						trial, i, scale, base, devUtil)
				}
				profiles++
			}
		}
	}
	t.Logf("checked %d deviation profiles", profiles)
}

// TestVCGIndividualRationality: payment never exceeds the reported value of
// the capacity received, and never goes negative, over >= 1000 profiles.
func TestVCGIndividualRationality(t *testing.T) {
	src := rng.New(rng.DeriveSeed(2006, 2))
	m, _ := New(VCG, Config{})
	for trial := 0; trial < 1200; trial++ {
		withVals := trial%2 == 0
		bids := randomBids(src, 1+src.Intn(6), withVals)
		out := m.Clear(bids, testCap)
		for _, b := range bids {
			l, ok := out.Line(b.Bidder)
			if !ok {
				t.Fatalf("trial %d: no line for %q", trial, b.Bidder)
			}
			if l.PayRate < 0 {
				t.Fatalf("trial %d: negative payment %v for %q", trial, l.PayRate, b.Bidder)
			}
			reported := valuationOf(b, testCap.MHz)
			if v := reported.ValueRate(l.Fraction * testCap.MHz); l.PayRate > v+1e-12 {
				t.Fatalf("trial %d: payment %v exceeds reported value %v for %q",
					trial, l.PayRate, v, b.Bidder)
			}
			if l.PayRate > b.Rate*(1+1e-12) && !withVals {
				t.Fatalf("trial %d: payment %v exceeds spend rate %v for rate-only bid %q",
					trial, l.PayRate, b.Rate, b.Bidder)
			}
		}
	}
}

// TestPricesNonNegativeFinite: every mechanism publishes a finite price >=
// the reserve on random inputs, and allocations stay within the host.
func TestPricesNonNegativeFinite(t *testing.T) {
	src := rng.New(rng.DeriveSeed(2006, 3))
	for _, name := range Names() {
		m, _ := New(name, Config{})
		for trial := 0; trial < 400; trial++ {
			bids := randomBids(src, src.Intn(8), trial%3 == 0)
			out := m.Clear(bids, testCap)
			if math.IsNaN(out.Price) || math.IsInf(out.Price, 0) || out.Price < testCap.Reserve {
				t.Fatalf("%s trial %d: price %v out of range", name, trial, out.Price)
			}
			var alloc, pay float64
			for i, l := range out.Lines {
				if i > 0 && out.Lines[i-1].Bidder >= l.Bidder {
					t.Fatalf("%s trial %d: lines not sorted/unique", name, trial)
				}
				if l.Fraction < 0 || l.Fraction > 1 || math.IsNaN(l.Fraction) {
					t.Fatalf("%s trial %d: fraction %v", name, trial, l.Fraction)
				}
				if l.PayRate < 0 || math.IsNaN(l.PayRate) || math.IsInf(l.PayRate, 0) {
					t.Fatalf("%s trial %d: pay rate %v", name, trial, l.PayRate)
				}
				alloc += l.Fraction
				pay += l.PayRate
			}
			if alloc > 1+1e-9 {
				t.Fatalf("%s trial %d: allocated %v of the host", name, trial, alloc)
			}
			_ = pay
		}
	}
}

// TestProportionalBudgetBalance: what bidders pay per second equals the
// published price when the market is competitive (sum of rates >= reserve),
// i.e. proportional share is budget balanced: revenue = price.
func TestProportionalBudgetBalance(t *testing.T) {
	src := rng.New(rng.DeriveSeed(2006, 4))
	m, _ := New(Proportional, Config{})
	for trial := 0; trial < 500; trial++ {
		bids := randomBids(src, 1+src.Intn(9), false)
		out := m.Clear(bids, testCap)
		var revenue, share float64
		for _, l := range out.Lines {
			revenue += l.PayRate
			share += l.Fraction
		}
		if math.Abs(revenue-out.Price) > 1e-12*math.Max(1, out.Price) {
			t.Fatalf("trial %d: revenue %v != price %v", trial, revenue, out.Price)
		}
		if math.Abs(share-1) > 1e-9 {
			t.Fatalf("trial %d: shares sum to %v, want 1", trial, share)
		}
	}
}

// TestPostedPriceAdmissionMonotonicity: at a fixed posted price, raising your
// own rate never shrinks your admitted share, and payment always equals
// price x share (never more than the reported rate).
func TestPostedPriceAdmissionMonotonicity(t *testing.T) {
	src := rng.New(rng.DeriveSeed(2006, 5))
	for trial := 0; trial < 500; trial++ {
		bids := randomBids(src, 2+src.Intn(6), false)
		m, _ := New(PostedPrice, Config{PostedInitialPrice: src.Uniform(0.05, 3)})
		base := m.Quote(bids, testCap)
		i := src.Intn(len(bids))
		raised := make([]Bid, len(bids))
		copy(raised, bids)
		raised[i].Rate *= src.Uniform(1, 4)
		more := m.Quote(raised, testCap)

		bl, _ := base.Line(bids[i].Bidder)
		ml, _ := more.Line(bids[i].Bidder)
		if ml.Fraction+1e-12 < bl.Fraction {
			t.Fatalf("trial %d: raising rate %v->%v shrank share %v->%v",
				trial, bids[i].Rate, raised[i].Rate, bl.Fraction, ml.Fraction)
		}
		for _, out := range []Outcome{base, more} {
			for _, l := range out.Lines {
				if want := out.Price * l.Fraction; math.Abs(l.PayRate-want) > 1e-12 {
					t.Fatalf("trial %d: pay %v != price*share %v", trial, l.PayRate, want)
				}
			}
		}
		if bl.PayRate > bids[i].Rate+1e-12 {
			t.Fatalf("trial %d: posted payment %v exceeds rate %v", trial, bl.PayRate, bids[i].Rate)
		}
	}
}

// TestPostedPriceTatonnement: excess demand raises the posted price, zero
// demand decays it toward the reserve, and the price never leaves
// [reserve, +inf) nor moves more than the bounded step per clear.
func TestPostedPriceTatonnement(t *testing.T) {
	m, _ := New(PostedPrice, Config{PostedInitialPrice: 1})
	hot := []Bid{{Bidder: "a", Rate: 5}, {Bidder: "b", Rate: 5}}
	p0 := m.Clear(hot, testCap).Price
	p1 := m.Clear(hot, testCap).Price
	if !(p1 > p0) {
		t.Errorf("excess demand did not raise price: %v -> %v", p0, p1)
	}
	if p1 > p0*1.5+1e-12 {
		t.Errorf("price step %v -> %v exceeds bound", p0, p1)
	}
	for i := 0; i < 200; i++ {
		m.Clear(nil, testCap)
	}
	if p := m.Clear(nil, testCap).Price; math.Abs(p-testCap.Reserve) > 1e-12 {
		t.Errorf("idle price %v did not decay to reserve %v", p, testCap.Reserve)
	}
}

// TestVCGWelfareOptimal cross-checks the greedy fill against brute force on
// tiny discretized instances: no alternative split of the host achieves
// higher reported welfare.
func TestVCGWelfareOptimal(t *testing.T) {
	src := rng.New(rng.DeriveSeed(2006, 6))
	m, _ := New(VCG, Config{})
	for trial := 0; trial < 100; trial++ {
		bids := randomBids(src, 2, true)
		out := m.Clear(bids, testCap)
		got := 0.0
		for _, b := range bids {
			l, _ := out.Line(b.Bidder)
			got += b.Valuation.ValueRate(l.Fraction * testCap.MHz)
		}
		const steps = 300
		best := 0.0
		for k := 0; k <= steps; k++ {
			qa := testCap.MHz * float64(k) / steps
			w := bids[0].Valuation.ValueRate(qa) + bids[1].Valuation.ValueRate(testCap.MHz-qa)
			if w > best {
				best = w
			}
		}
		if got+1e-6 < best {
			t.Fatalf("trial %d: greedy welfare %v below brute-force %v", trial, got, best)
		}
	}
}

func TestNormalizeDefensive(t *testing.T) {
	messy := []Bid{
		{Bidder: "z", Rate: 1},
		{Bidder: "a", Rate: math.NaN()},
		{Bidder: "a", Rate: 2},
		{Bidder: "a", Rate: 3},
		{Bidder: "", Rate: 4},
		{Bidder: "m", Rate: math.Inf(1)},
		{Bidder: "k", Rate: -1},
	}
	got := normalize(messy)
	if len(got) != 2 || got[0].Bidder != "a" || got[0].Rate != 2 || got[1].Bidder != "z" {
		t.Fatalf("normalize(messy) = %+v", got)
	}
	clean := []Bid{{Bidder: "a", Rate: 1}, {Bidder: "b", Rate: 2}}
	if out := normalize(clean); &out[0] != &clean[0] {
		t.Error("normalize copied a conforming slice; must be identity to preserve fold order")
	}
}

func TestOutcomeLine(t *testing.T) {
	out := Outcome{Lines: []Line{{Bidder: "a"}, {Bidder: "c"}}}
	if _, ok := out.Line("b"); ok {
		t.Error("found line for absent bidder")
	}
	if l, ok := out.Line("c"); !ok || l.Bidder != "c" {
		t.Error("missed line for present bidder")
	}
}
