package mechanism

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzMechanismClear throws arbitrary — unsorted, duplicated, non-finite —
// bid sets and capacities at every mechanism and checks the safety
// invariants: no panic, total allocation within the host, price and pay
// rates finite and non-negative, lines sorted and unique. Each mechanism is
// cleared twice so stateful price updates (posted-price) are exercised too.
//
// Input encoding: mechIdx selects the mechanism; capMHz/reserve come in raw;
// each 9-byte chunk of data is one bid — 1 byte of bidder name, 8 bytes of
// IEEE-754 rate — so the fuzzer can reach negative, NaN and infinite rates.
func FuzzMechanismClear(f *testing.F) {
	rate := func(r float64) []byte {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(r))
		return b[:]
	}
	chunk := func(name byte, r float64) []byte { return append([]byte{name}, rate(r)...) }
	cat := func(chunks ...[]byte) []byte {
		var out []byte
		for _, c := range chunks {
			out = append(out, c...)
		}
		return out
	}
	f.Add(uint8(0), 3000.0, 1e-6, cat(chunk('a', 0.3), chunk('b', 0.1), chunk('c', 0.6)))
	f.Add(uint8(1), 3000.0, 0.01, cat(chunk('z', 5), chunk('a', 5)))
	f.Add(uint8(2), 2800.0, 1e-6, cat(chunk('a', 1), chunk('a', 2), chunk('b', math.NaN())))
	f.Add(uint8(2), 0.0, -1.0, cat(chunk('q', math.Inf(1))))
	f.Add(uint8(0), math.Inf(1), math.NaN(), []byte{})

	f.Fuzz(func(t *testing.T, mechIdx uint8, capMHz, reserve float64, data []byte) {
		names := Names()
		m, err := New(names[int(mechIdx)%len(names)], Config{})
		if err != nil {
			t.Fatal(err)
		}
		var bids []Bid
		for len(data) >= 9 {
			bids = append(bids, Bid{
				Bidder: string(rune(data[0])),
				Rate:   math.Float64frombits(binary.LittleEndian.Uint64(data[1:9])),
			})
			data = data[9:]
		}
		capacity := Capacity{MHz: capMHz, Reserve: reserve}
		for round := 0; round < 2; round++ {
			out := m.Clear(bids, capacity)
			if math.IsNaN(out.Price) || math.IsInf(out.Price, 0) || out.Price < 0 {
				t.Fatalf("%s: price %v", m.Name(), out.Price)
			}
			var alloc float64
			for i, l := range out.Lines {
				if i > 0 && out.Lines[i-1].Bidder >= l.Bidder {
					t.Fatalf("%s: lines unsorted or duplicated at %d", m.Name(), i)
				}
				if math.IsNaN(l.Fraction) || l.Fraction < 0 || l.Fraction > 1 {
					t.Fatalf("%s: fraction %v", m.Name(), l.Fraction)
				}
				if math.IsNaN(l.PayRate) || math.IsInf(l.PayRate, 0) || l.PayRate < 0 {
					t.Fatalf("%s: pay rate %v", m.Name(), l.PayRate)
				}
				alloc += l.Fraction
			}
			if alloc > 1+1e-9 {
				t.Fatalf("%s: allocated %v of the host", m.Name(), alloc)
			}
		}
	})
}
