package mechanism

import (
	"sort"

	"tycoongrid/internal/sla"
)

// vcg is the Vickrey–Clarke–Groves mechanism over concave piecewise-linear
// SLA valuations (internal/sla). The allocation maximizes reported welfare:
// because every valuation is concave, the LP optimum is reached by sorting
// all bidders' segments by marginal value and filling the host greedily from
// the top — the same pivot-by-best-column discipline as internal/matrix's
// elimination, with no external solver. Each winner then pays the externality
// it imposes: the welfare the others would have had without it, minus the
// welfare the others actually get. That payment rule is what makes truthful
// reporting a dominant strategy and guarantees payment <= value received
// (individual rationality) — both checked over thousands of seeded profiles
// by the property battery in this package.
//
// Bids that carry no explicit valuation get a synthetic concave one derived
// from their spend rate (sla.ValuationFromRate), normalized so the value of
// the whole host equals the rate; the market path therefore never pays more
// than the bid's amortized budget.
type vcg struct{}

func (vcg) Name() string { return VCG }

func valuationOf(b Bid, capMHz float64) sla.Valuation {
	if b.Valuation != nil && len(b.Valuation.Segments) > 0 && b.Valuation.Validate() == nil {
		return *b.Valuation
	}
	return sla.ValuationFromRate(b.Rate, capMHz)
}

// vcgSeg is one valuation segment tagged with its owner for the greedy fill.
type vcgSeg struct {
	owner    int // index into the bid slice
	idx      int // segment index within the owner's valuation
	width    float64
	marginal float64
}

// vcgFill greedily fills capMHz from the highest-marginal segments, skipping
// the bidder at index skip (-1 for nobody). It returns each bidder's
// allocated MHz and the achieved welfare in credits/second. The fill order is
// totally deterministic: marginal descending, then owner ascending, then
// segment index ascending; welfare accumulates in that same order.
func vcgFill(segs []vcgSeg, n int, capMHz float64, skip int) (q []float64, welfare float64) {
	q = make([]float64, n)
	free := capMHz
	for _, s := range segs {
		if free <= 0 {
			break
		}
		if s.owner == skip {
			continue
		}
		take := s.width
		if take > free {
			take = free
		}
		q[s.owner] += take
		welfare += take * s.marginal
		free -= take
	}
	return q, welfare
}

func (v vcg) Quote(bids []Bid, capacity Capacity) Outcome {
	bids = normalize(bids)
	capacity, allocatable := saneCapacity(capacity)
	out := Outcome{Price: capacity.Reserve}
	if out.Price <= 0 {
		out.Price = 1e-6
	}
	if !allocatable || len(bids) == 0 {
		return out
	}

	vals := make([]sla.Valuation, len(bids))
	var segs []vcgSeg
	for i, b := range bids {
		vals[i] = valuationOf(b, capacity.MHz)
		for j, s := range vals[i].Segments {
			if s.Marginal > 0 {
				segs = append(segs, vcgSeg{owner: i, idx: j, width: s.WidthMHz, marginal: s.Marginal})
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].marginal != segs[j].marginal {
			return segs[i].marginal > segs[j].marginal
		}
		if segs[i].owner != segs[j].owner {
			return segs[i].owner < segs[j].owner
		}
		return segs[i].idx < segs[j].idx
	})

	q, total := vcgFill(segs, len(bids), capacity.MHz, -1)

	out.Lines = make([]Line, 0, len(bids))
	var priceSum float64
	for i, b := range bids {
		got := vals[i].ValueRate(q[i])
		_, without := vcgFill(segs, len(bids), capacity.MHz, i)
		pay := without - (total - got)
		// VCG payments are provably in [0, value received]; clamp away the
		// last-ulp float noise so the invariants hold exactly.
		if pay < 0 {
			pay = 0
		}
		if pay > got {
			pay = got
		}
		frac := q[i] / capacity.MHz
		if frac > 1 {
			frac = 1
		}
		out.Lines = append(out.Lines, Line{Bidder: b.Bidder, Fraction: frac, PayRate: pay})
		priceSum += pay
	}
	if priceSum > out.Price {
		out.Price = priceSum
	}
	return out
}

// Clear is identical to Quote: VCG carries no state between intervals.
func (v vcg) Clear(bids []Bid, capacity Capacity) Outcome {
	return v.Quote(bids, capacity)
}
