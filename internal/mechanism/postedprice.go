package mechanism

import (
	"math"
	"sort"
)

// postedPrice is a commodity market: the host publishes a take-it-or-leave-it
// price P (credits/second for the whole host). A bid with spend rate r
// demands the share r/P it can afford at that price. Admission is greedy by
// descending rate (ties broken ascending by bidder) until the host is full;
// the marginal bidder receives whatever partial share is left. Admitted
// bidders pay P times their share — by construction never more than their
// reported rate.
//
// Clear then adjusts the published price tatonnement-style toward a demand
// target: excess demand raises P, slack lowers it, with the per-clear step
// bounded so one pathological interval cannot destabilize the price, and the
// result floored at the reserve.
type postedPrice struct {
	price  float64 // published price; 0 until first clear seeds it
	init   float64
	alpha  float64
	target float64
}

func newPostedPrice(cfg Config) *postedPrice {
	alpha := cfg.PostedAlpha
	if alpha <= 0 {
		alpha = 0.1
	}
	target := cfg.PostedTarget
	if target <= 0 {
		target = 1
	}
	return &postedPrice{init: cfg.PostedInitialPrice, alpha: alpha, target: target}
}

func (p *postedPrice) Name() string { return PostedPrice }

// published returns the current posted price, seeding it from config or the
// reserve on first use. Never below the reserve, never non-positive.
func (p *postedPrice) published(capacity Capacity) float64 {
	price := p.price
	if price <= 0 {
		price = p.init
	}
	if price < capacity.Reserve {
		price = capacity.Reserve
	}
	if price <= 0 {
		price = 1e-6 // match the auction's idle floor of one microcredit/s
	}
	return price
}

func (p *postedPrice) Quote(bids []Bid, capacity Capacity) Outcome {
	bids = normalize(bids)
	capacity, allocatable := saneCapacity(capacity)
	price := p.published(capacity)
	out := Outcome{Price: price}
	if !allocatable || len(bids) == 0 {
		return out
	}

	// Admission order: biggest spenders first, ties by bidder name so the
	// order — and therefore the allocation — is fully deterministic.
	order := make([]Bid, len(bids))
	copy(order, bids)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Rate != order[j].Rate {
			return order[i].Rate > order[j].Rate
		}
		return order[i].Bidder < order[j].Bidder
	})

	out.Lines = make([]Line, 0, len(bids))
	free := 1.0
	for _, b := range order {
		if free <= 0 {
			break
		}
		want := b.Rate / price
		if want > free {
			want = free
		}
		free -= want
		out.Lines = append(out.Lines, Line{Bidder: b.Bidder, Fraction: want, PayRate: price * want})
	}
	sort.Slice(out.Lines, func(i, j int) bool { return out.Lines[i].Bidder < out.Lines[j].Bidder })
	return out
}

// Clear quotes at the current posted price, then moves the price toward the
// demand target for the next interval.
func (p *postedPrice) Clear(bids []Bid, capacity Capacity) Outcome {
	out := p.Quote(bids, capacity)
	price := out.Price

	// Total demanded share at the posted price, in ascending bidder order
	// (the normalized input order) for a deterministic fold.
	var demand float64
	for _, b := range normalize(bids) {
		demand += b.Rate / price
	}
	step := 1 + p.alpha*(demand-p.target)
	// Bound the per-clear move: at most halve or 1.5x the price.
	if step < 0.5 {
		step = 0.5
	} else if step > 1.5 {
		step = 1.5
	}
	next := price * step
	if next < capacity.Reserve {
		next = capacity.Reserve
	}
	if next <= 0 {
		next = 1e-6
	}
	if math.IsInf(next, 1) {
		next = math.MaxFloat64
	}
	p.price = next
	return out
}
