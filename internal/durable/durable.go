// Package durable is the crash-safe persistence layer under bankd and its
// siblings: a length-prefixed, CRC32C-checksummed write-ahead log with
// group-commit batching and a configurable fsync policy, plus periodic
// snapshots with log truncation. It stores opaque byte records — the bank
// (internal/bank), the token spent-store (internal/token) and the
// auctioneer's price log each define their own record encoding on top.
//
// # On-disk layout
//
// A store owns one directory holding numbered generations:
//
//	wal-00000003.log    records appended since snapshot 3
//	snap-00000003.snap  state as of the moment wal-00000003.log was created
//
// Snapshot(state) writes snap-(g+1) via write-to-temp + fsync + atomic
// rename, opens an empty wal-(g+1), then deletes generation g. A crash at
// any point between those steps leaves a directory that Open still recovers:
// the latest valid snapshot is loaded and every WAL generation at or above
// it replays in order.
//
// # Record framing and torn tails
//
// Each record is [len uint32][crc32c uint32][payload], little-endian, CRC
// over the payload (Castagnoli polynomial). Recovery scans until the first
// frame that is short, oversized, or fails its checksum, truncates the file
// back to the last valid frame, and resumes appending there — the
// truncate-to-last-valid contract a torn final write requires. Only records
// the policy had made durable are guaranteed to survive, and recovered
// state is always some prefix of acknowledged operations, never a mix.
//
// # Sync policies
//
//   - SyncAlways: Append returns only after the record is fsynced. Waiters
//     batch behind a single leader fsync (group commit), so N concurrent
//     appends cost ~1 fsync, not N.
//   - SyncInterval: appends return once buffered; a background flusher
//     fsyncs every Interval. Bounded loss window, near-memory throughput.
//   - SyncNone: appends are flushed to the OS but never fsynced; a process
//     kill loses at most the user-space buffer, a machine crash anything
//     the kernel had not written back.
package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"tycoongrid/internal/fault/failpoint"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

// The three fsync policies.
const (
	SyncAlways SyncPolicy = iota
	SyncInterval
	SyncNone
)

// String renders the policy as its flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "none"
	}
}

// ParseSyncPolicy parses the -fsync flag values "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always|interval|none)", s)
}

// DefaultInterval is the flush period of SyncInterval when Options.Interval
// is zero.
const DefaultInterval = 100 * time.Millisecond

// MaxRecord bounds a single record frame; larger lengths in a header are
// treated as corruption.
const MaxRecord = 16 << 20

// Options configures a Store.
type Options struct {
	Sync     SyncPolicy
	Interval time.Duration // SyncInterval flush period; 0 = DefaultInterval
}

// Errors returned by the store.
var (
	ErrClosed       = errors.New("durable: store is closed")
	ErrNotRecovered = errors.New("durable: Recover must run before Append")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8 // uint32 length + uint32 crc32c
	snapMagic   = "TGSNAP01"
)

// Store is a write-ahead log plus snapshots in one directory. Append and the
// read-only accessors are safe for concurrent use; Snapshot must be
// serialized with Append by the caller (the bank calls both under its own
// lock), which is what makes a snapshot a consistent cut of the record
// stream.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	w         *bufio.Writer
	gen       uint64
	staged    uint64 // records written into w since open
	synced    uint64 // records known durable
	syncing   bool   // a leader fsync or snapshot rotation is in flight
	firstErr  error  // first unrecoverable write/sync error; poisons the store
	recovered bool
	closed    bool

	stopFlush chan struct{}
	flushDone chan struct{}
}

// RecoverStats reports what Recover found.
type RecoverStats struct {
	SnapshotBytes  int   // size of the snapshot payload restored (0 = none)
	Records        int   // WAL records replayed
	TruncatedBytes int64 // torn/corrupt tail bytes discarded
}

// Open prepares the store rooted at dir, creating it if needed. No data is
// read yet: call Recover next, then Append/Snapshot.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	s := &Store{dir: dir, opts: opts}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Sync returns the store's fsync policy.
func (s *Store) Sync() SyncPolicy { return s.opts.Sync }

// Recover loads the latest valid snapshot (calling snapshot with its
// payload, if one exists) and replays every WAL record written after it
// through record, in append order. It then truncates any torn tail and opens
// the log for appending. It must be called exactly once, before Append or
// Snapshot, even on an empty directory.
func (s *Store) Recover(snapshot func(payload []byte) error, record func(payload []byte) error) (RecoverStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var stats RecoverStats
	if s.closed {
		return stats, ErrClosed
	}
	if s.recovered {
		return stats, errors.New("durable: Recover called twice")
	}

	snapGens, walGens, err := s.scan()
	if err != nil {
		return stats, err
	}

	// Latest valid snapshot wins; invalid ones (disk corruption — the
	// write-temp-rename protocol never leaves a torn rename in place) fall
	// back to the previous generation, whose WAL chain still replays to the
	// same state.
	base := uint64(0)
	var snapPayload []byte
	for i := len(snapGens) - 1; i >= 0; i-- {
		payload, err := readSnapshotFile(s.snapPath(snapGens[i]))
		if err == nil {
			base = snapGens[i]
			snapPayload = payload
			break
		}
	}
	if snapPayload != nil && snapshot != nil {
		if err := snapshot(snapPayload); err != nil {
			return stats, fmt.Errorf("durable: restoring snapshot %d: %w", base, err)
		}
		stats.SnapshotBytes = len(snapPayload)
	}

	// Replay every WAL generation at or above the base, in order. Normally
	// that is exactly one file; after a crash mid-snapshot there may be two
	// (the pre-rotation log plus the fresh one), and state(snap g) ==
	// state(snap g-1) + wal g-1 makes chaining them equivalent.
	var replay []uint64
	for _, g := range walGens {
		if g >= base {
			replay = append(replay, g)
		}
	}
	for i, g := range replay {
		last := i == len(replay)-1
		n, truncated, err := s.replayFile(s.walPath(g), last, record)
		if err != nil {
			return stats, err
		}
		stats.Records += n
		stats.TruncatedBytes += truncated
	}
	mRecoveredRecords.Add(uint64(stats.Records))
	if stats.TruncatedBytes > 0 {
		mTruncatedBytes.Add(uint64(stats.TruncatedBytes))
	}

	// Open (or create) the active segment for appending.
	s.gen = base
	if len(replay) > 0 {
		s.gen = replay[len(replay)-1]
	}
	f, err := os.OpenFile(s.walPath(s.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return stats, fmt.Errorf("durable: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriterSize(f, 1<<16)
	s.recovered = true

	if s.opts.Sync == SyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return stats, nil
}

// scan lists snapshot and WAL generations present in dir, ascending, and
// removes leftover temp files from an interrupted snapshot.
func (s *Store) scan() (snapGens, walGens []uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(s.dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var g uint64
			if _, err := fmt.Sscanf(name, "wal-%08d.log", &g); err == nil {
				walGens = append(walGens, g)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			var g uint64
			if _, err := fmt.Sscanf(name, "snap-%08d.snap", &g); err == nil {
				snapGens = append(snapGens, g)
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	return snapGens, walGens, nil
}

func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%08d.log", gen))
}

func (s *Store) snapPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snap-%08d.snap", gen))
}

// replayFile scans one WAL file, invoking record per valid frame. When
// truncate is set (the final, active segment) a torn or corrupt tail is cut
// back to the last valid frame so appends resume on a clean boundary.
func (s *Store) replayFile(path string, truncate bool, record func([]byte) error) (n int, truncated int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("durable: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<16)
	var valid int64
	var header [frameHeader]byte
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			break // clean EOF or torn header — either way the tail ends here
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecord {
			break // corrupt length — everything after is unreadable
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or interleaved torn write
		}
		if record != nil {
			if err := record(payload); err != nil {
				return n, truncated, fmt.Errorf("durable: replaying %s record %d: %w", filepath.Base(path), n, err)
			}
		}
		n++
		valid += frameHeader + int64(length)
	}

	info, err := f.Stat()
	if err != nil {
		return n, 0, fmt.Errorf("durable: %w", err)
	}
	truncated = info.Size() - valid
	if truncated > 0 && truncate {
		if err := os.Truncate(path, valid); err != nil {
			return n, truncated, fmt.Errorf("durable: truncating torn tail: %w", err)
		}
	}
	return n, truncated, nil
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+frameHeader || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("durable: bad snapshot header")
	}
	body := raw[len(snapMagic):]
	length := binary.LittleEndian.Uint32(body[0:4])
	sum := binary.LittleEndian.Uint32(body[4:8])
	payload := body[frameHeader:]
	if uint32(len(payload)) != length {
		return nil, errors.New("durable: snapshot length mismatch")
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, errors.New("durable: snapshot checksum mismatch")
	}
	return payload, nil
}

// Append stages one record and blocks until it is durable per the sync
// policy. Equivalent to AppendAsync(p)().
func (s *Store) Append(payload []byte) error {
	return s.AppendAsync(payload)()
}

// AppendAsync stages one record in log order and returns a wait function
// that blocks until the record is durable per the sync policy. Callers that
// hold a state lock stage under it — fixing the record's position relative
// to the state mutation — then release the lock before waiting, so one
// leader fsync commits every record staged behind it (group commit).
func (s *Store) AppendAsync(payload []byte) func() error {
	s.mu.Lock()
	if err := s.appendLocked(payload); err != nil {
		s.mu.Unlock()
		return func() error { return err }
	}
	my := s.staged
	s.mu.Unlock()
	failpoint.Maybe("durable.wal.append")

	switch s.opts.Sync {
	case SyncAlways:
		return func() error { return s.syncUpTo(my) }
	case SyncInterval:
		// Acknowledge immediately; the flush loop bounds the loss window.
		return func() error { return s.errNow() }
	default: // SyncNone
		return func() error { return s.errNow() }
	}
}

// appendLocked frames payload into the write buffer; callers hold s.mu.
func (s *Store) appendLocked(payload []byte) error {
	switch {
	case s.closed:
		return ErrClosed
	case !s.recovered:
		return ErrNotRecovered
	case s.firstErr != nil:
		return s.firstErr
	case len(payload) == 0 || len(payload) > MaxRecord:
		return fmt.Errorf("durable: record size %d out of range", len(payload))
	}
	var header [frameHeader]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.w.Write(header[:]); err != nil {
		s.poison(err)
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		s.poison(err)
		return err
	}
	s.staged++
	mRecords.Inc()
	return nil
}

// poison records the first unrecoverable error; callers hold s.mu. A store
// that cannot write its log must stop acknowledging operations.
func (s *Store) poison(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.cond.Broadcast()
}

func (s *Store) errNow() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

// syncUpTo blocks until record number target is fsynced. The first waiter
// becomes the leader: it flushes and fsyncs everything staged so far,
// releasing every follower whose record made that batch.
func (s *Store) syncUpTo(target uint64) error {
	s.mu.Lock()
	for s.synced < target && s.firstErr == nil && !s.closed {
		if s.syncing {
			s.cond.Wait()
			continue
		}
		s.syncing = true
		batch := s.staged
		err := s.w.Flush()
		f := s.f
		s.mu.Unlock()

		if err == nil {
			failpoint.Maybe("durable.wal.sync")
			start := time.Now()
			err = f.Sync()
			mFsync.Observe(time.Since(start).Seconds())
		}

		s.mu.Lock()
		s.syncing = false
		if err != nil {
			s.poison(err)
		} else if batch > s.synced {
			s.synced = batch
		}
		s.cond.Broadcast()
	}
	err := s.firstErr
	if err == nil && s.closed && s.synced < target {
		err = ErrClosed
	}
	s.mu.Unlock()
	return err
}

// flushLoop is the SyncInterval background flusher.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopFlush:
			return
		case <-t.C:
			s.flushOnce()
		}
	}
}

// flushOnce flushes and fsyncs everything staged. Used by the interval loop
// and by Close; safe against concurrent snapshot rotation via the syncing
// flag.
func (s *Store) flushOnce() {
	s.mu.Lock()
	for s.syncing && s.firstErr == nil && !s.closed {
		s.cond.Wait()
	}
	if s.closed || s.firstErr != nil || s.staged == s.synced {
		s.mu.Unlock()
		return
	}
	s.syncing = true
	batch := s.staged
	err := s.w.Flush()
	f := s.f
	s.mu.Unlock()

	if err == nil {
		start := time.Now()
		err = f.Sync()
		mFsync.Observe(time.Since(start).Seconds())
	}

	s.mu.Lock()
	s.syncing = false
	if err != nil {
		s.poison(err)
	} else if batch > s.synced {
		s.synced = batch
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Records returns how many records have been staged since Recover.
func (s *Store) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.staged
}

// Close flushes and fsyncs outstanding records (whatever the policy — a
// graceful shutdown should never lose acknowledged state) and releases the
// file. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if s.stopFlush != nil {
		close(s.stopFlush)
	}
	for s.syncing {
		s.cond.Wait()
	}
	var err error
	if s.recovered && s.firstErr == nil {
		if err = s.w.Flush(); err == nil {
			err = s.f.Sync()
		}
	}
	s.closed = true
	s.cond.Broadcast()
	f := s.f
	done := s.flushDone
	s.mu.Unlock()
	if done != nil {
		<-done
	}
	if f != nil {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
