package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"tycoongrid/internal/fault/failpoint"
)

// Snapshot durably records state as the new recovery base and truncates the
// log: outstanding records are flushed and fsynced, the snapshot is written
// via temp-file + fsync + atomic rename, a fresh empty WAL generation is
// opened, and only then is the previous generation deleted. A crash at any
// point leaves a directory Recover handles (see the package comment).
//
// The caller must serialize Snapshot against Append — the bank invokes both
// under its own lock — so that state is a consistent cut of the record
// stream: every record staged before the call is covered by state, and
// every record staged after lands in the new generation.
func (s *Store) Snapshot(state []byte) error {
	start := time.Now()

	// Exclude in-flight leader fsyncs, then make the current log durable up
	// to its end: the snapshot claims to cover those records, so they must
	// not outlive it only in a user-space buffer.
	s.mu.Lock()
	for s.syncing && s.firstErr == nil && !s.closed {
		s.cond.Wait()
	}
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrClosed
	case !s.recovered:
		s.mu.Unlock()
		return ErrNotRecovered
	case s.firstErr != nil:
		err := s.firstErr
		s.mu.Unlock()
		return err
	}
	s.syncing = true // blocks leader fsyncs and the interval flusher
	batch := s.staged
	err := s.w.Flush()
	oldF, oldGen := s.f, s.gen
	s.mu.Unlock()

	finish := func(err error) error {
		s.mu.Lock()
		s.syncing = false
		if err != nil {
			s.poison(err)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return err
	}

	if err == nil {
		err = oldF.Sync()
	}
	if err != nil {
		return finish(fmt.Errorf("durable: snapshot flush: %w", err))
	}

	// Write snap-(g+1): temp file, fsync, atomic rename, fsync dir.
	newGen := oldGen + 1
	tmp := s.snapPath(newGen) + ".tmp"
	if err := writeSnapshotFile(tmp, state); err != nil {
		return finish(err)
	}
	failpoint.Maybe("durable.snapshot.tmp")
	if err := os.Rename(tmp, s.snapPath(newGen)); err != nil {
		return finish(fmt.Errorf("durable: %w", err))
	}
	if err := syncDir(s.dir); err != nil {
		return finish(err)
	}
	failpoint.Maybe("durable.snapshot.written")

	// Open the new generation's empty log and swap it in.
	newF, err := os.OpenFile(s.walPath(newGen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return finish(fmt.Errorf("durable: %w", err))
	}
	if err := syncDir(s.dir); err != nil {
		newF.Close()
		return finish(err)
	}

	s.mu.Lock()
	s.f = newF
	s.w.Reset(newF)
	s.gen = newGen
	if batch > s.synced {
		s.synced = batch // everything up to the rotation point is durable
	}
	s.mu.Unlock()
	_ = oldF.Close()

	// The old generation is now redundant; its deletion is pure cleanup and
	// recovery tolerates it being interrupted.
	failpoint.Maybe("durable.snapshot.rotate")
	_ = os.Remove(s.walPath(oldGen))
	_ = os.Remove(s.snapPath(oldGen))
	// A recovery that chained multiple generations leaves older files too.
	if gens, wals, err := s.scan(); err == nil {
		for _, g := range gens {
			if g < newGen {
				_ = os.Remove(s.snapPath(g))
			}
		}
		for _, g := range wals {
			if g < newGen {
				_ = os.Remove(s.walPath(g))
			}
		}
	}

	mSnapshots.Inc()
	mSnapshotSeconds.Observe(time.Since(start).Seconds())
	return finish(nil)
}

// writeSnapshotFile writes magic + framed payload to path and fsyncs it.
func writeSnapshotFile(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	var header [frameHeader]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	_, err = f.Write([]byte(snapMagic))
	if err == nil {
		_, err = f.Write(header[:])
	}
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(path)
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: fsync dir: %w", err)
	}
	return nil
}
