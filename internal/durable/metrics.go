package durable

import "tycoongrid/internal/metrics"

// WAL instrumentation. The fsync histogram is the one to watch: group
// commit means its _count is batches, not records, so records_total /
// fsync_count is the achieved batching factor under load.
var (
	mRecords = metrics.Default().Counter("wal_records_total",
		"Records appended to the write-ahead log.")
	mFsync = metrics.Default().Histogram("wal_fsync_seconds",
		"Latency of each WAL fsync (one per group-commit batch).",
		[]float64{0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 1})
	mSnapshots = metrics.Default().Counter("wal_snapshots_total",
		"Snapshots written (each truncates the log).")
	mSnapshotSeconds = metrics.Default().Histogram("wal_snapshot_seconds",
		"Time to write a snapshot and rotate the log.",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
	mRecoveredRecords = metrics.Default().Counter("wal_recovered_records_total",
		"Records replayed from the log during recovery.")
	mTruncatedBytes = metrics.Default().Counter("wal_truncated_bytes_total",
		"Torn or corrupt tail bytes discarded during recovery.")
)
