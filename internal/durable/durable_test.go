package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// reopen recovers a store at dir and returns the snapshot payload plus the
// replayed records.
func reopen(t *testing.T, dir string, opts Options) (*Store, []byte, [][]byte) {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var snap []byte
	var recs [][]byte
	_, err = st.Recover(
		func(p []byte) error { snap = append([]byte(nil), p...); return nil },
		func(p []byte) error { recs = append(recs, append([]byte(nil), p...)); return nil },
	)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return st, snap, recs
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, snap, recs := reopen(t, dir, Options{Sync: policy})
			if snap != nil || len(recs) != 0 {
				t.Fatalf("fresh dir recovered snap=%v recs=%d", snap, len(recs))
			}
			var want [][]byte
			for i := 0; i < 100; i++ {
				p := []byte(fmt.Sprintf("record-%03d", i))
				want = append(want, p)
				if err := st.Append(p); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			st2, snap, recs := reopen(t, dir, Options{Sync: policy})
			defer st2.Close()
			if snap != nil {
				t.Fatalf("unexpected snapshot")
			}
			if len(recs) != len(want) {
				t.Fatalf("recovered %d records, want %d", len(recs), len(want))
			}
			for i := range want {
				if !bytes.Equal(recs[i], want[i]) {
					t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
				}
			}
		})
	}
}

func TestSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 10; i++ {
		if err := st.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot([]byte("state-after-10")); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Old generation files must be gone.
	if _, err := os.Stat(filepath.Join(dir, "wal-00000000.log")); !os.IsNotExist(err) {
		t.Fatalf("generation 0 wal still present: %v", err)
	}

	st2, snap, recs := reopen(t, dir, Options{Sync: SyncAlways})
	defer st2.Close()
	if string(snap) != "state-after-10" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(recs) != 3 || string(recs[0]) != "post-0" {
		t.Fatalf("post-snapshot records = %q", recs)
	}
}

func TestTornTailTruncatedToLastValid(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: drop its last 2 bytes.
	path := filepath.Join(dir, "wal-00000000.log")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-2); err != nil {
		t.Fatal(err)
	}

	st2, _, recs := reopen(t, dir, Options{Sync: SyncAlways})
	if len(recs) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(recs))
	}
	// The torn bytes must be gone from disk so appends resume cleanly.
	if err := st2.Append([]byte("rec-4b")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, _, recs := reopen(t, dir, Options{Sync: SyncAlways})
	defer st3.Close()
	if len(recs) != 5 || string(recs[4]) != "rec-4b" {
		t.Fatalf("after re-append: %q", recs)
	}
}

func TestCorruptMiddleRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := st.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of record 2: replay must stop at the last valid
	// prefix (records 0 and 1) rather than deliver corrupt data.
	path := filepath.Join(dir, "wal-00000000.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := frameHeader + len("rec-0")
	raw[2*recLen+frameHeader] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, _, recs := reopen(t, dir, Options{Sync: SyncAlways})
	defer st2.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records past corruption, want 2", len(recs))
	}
}

func TestCorruptSnapshotFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncAlways})
	if err := st.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the snapshot payload; its checksum no longer matches, so
	// recovery must refuse it (no older generation remains -> no snapshot,
	// and only the current WAL replays).
	path := filepath.Join(dir, "snap-00000001.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, snap, recs := reopen(t, dir, Options{Sync: SyncAlways})
	defer st2.Close()
	if snap != nil {
		t.Fatalf("corrupt snapshot was accepted: %q", snap)
	}
	if len(recs) != 1 || string(recs[0]) != "b" {
		t.Fatalf("records = %q", recs)
	}
}

func TestInterruptedSnapshotGenerationsChain(t *testing.T) {
	// Simulate a crash after the new snapshot + wal were created but before
	// the old generation was deleted: both generations on disk. Recovery
	// must load the new snapshot and replay only the new WAL... and a crash
	// even earlier (snapshot renamed, no new wal yet) must also work.
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncAlways})
	if err := st.Append([]byte("old-1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-write snap-1 as if Snapshot died right after the rename.
	if err := writeSnapshotFile(filepath.Join(dir, "snap-00000001.snap"), []byte("cut")); err != nil {
		t.Fatal(err)
	}

	st2, snap, recs := reopen(t, dir, Options{Sync: SyncAlways})
	if string(snap) != "cut" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(recs) != 0 {
		t.Fatalf("records = %q, want none (wal generation 0 predates the snapshot)", recs)
	}
	if err := st2.Append([]byte("new-1")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, snap, recs := reopen(t, dir, Options{Sync: SyncAlways})
	defer st3.Close()
	if string(snap) != "cut" || len(recs) != 1 || string(recs[0]) != "new-1" {
		t.Fatalf("snap=%q recs=%q", snap, recs)
	}
}

func TestConcurrentAppendsGroupCommit(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncAlways})
	const workers, per = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := st.Append([]byte(fmt.Sprintf("w%02d-%03d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, recs := reopen(t, dir, Options{Sync: SyncAlways})
	defer st2.Close()
	if len(recs) != workers*per {
		t.Fatalf("recovered %d records, want %d", len(recs), workers*per)
	}
}

func TestAppendBeforeRecoverRejected(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]byte("x")); err != ErrNotRecovered {
		t.Fatalf("err = %v, want ErrNotRecovered", err)
	}
}

func TestRecoverIdempotentAcrossReopen(t *testing.T) {
	// Recovering twice from the same directory must yield identical record
	// streams — the determinism contract crash-recovery relies on.
	dir := t.TempDir()
	st, _, _ := reopen(t, dir, Options{Sync: SyncNone})
	for i := 0; i < 20; i++ {
		if err := st.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st1, _, recs1 := reopen(t, dir, Options{Sync: SyncNone})
	st1.Close()
	st2, _, recs2 := reopen(t, dir, Options{Sync: SyncNone})
	st2.Close()
	if len(recs1) != len(recs2) {
		t.Fatalf("replays differ: %d vs %d", len(recs1), len(recs2))
	}
	for i := range recs1 {
		if !bytes.Equal(recs1[i], recs2[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

// buildFrame builds one valid WAL frame for corpus construction.
func buildFrame(payload []byte) []byte {
	var header [frameHeader]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	return append(header[:], payload...)
}
