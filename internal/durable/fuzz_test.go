package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecover throws arbitrary bytes at the WAL decoder as if they were a
// log file left behind by a crash. Recovery must never panic, must deliver
// only checksum-valid records, and must leave the file in a state where a
// second recovery replays the identical stream (truncate-to-last-valid is
// idempotent).
func FuzzWALRecover(f *testing.F) {
	// Seeds: empty, one valid record, two valid records with a torn third,
	// a corrupt-CRC record, an oversized length header, and raw garbage.
	f.Add([]byte{})
	f.Add(buildFrame([]byte("hello")))
	torn := append(buildFrame([]byte("first")), buildFrame([]byte("second"))...)
	torn = append(torn, []byte{0x0B, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 't', 'o', 'r'}...)
	f.Add(torn)
	func() {
		bad := buildFrame([]byte("checksum-me"))
		bad[len(bad)-1] ^= 0xFF
		f.Add(bad)
	}()
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte("not a wal file at all, just prose"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}

		st, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		if _, err := st.Recover(nil, func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("Recover errored on fuzz input: %v", err)
		}
		// Appending after recovery must work: the torn tail is gone.
		if err := st.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		st2, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		var second [][]byte
		if _, err := st2.Recover(nil, func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("second Recover: %v", err)
		}
		st2.Close()

		if len(second) != len(first)+1 {
			t.Fatalf("second recovery saw %d records, want %d valid + 1 appended",
				len(second), len(first))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d changed between recoveries", i)
			}
		}
		if string(second[len(second)-1]) != "appended-after-recovery" {
			t.Fatalf("appended record lost: %q", second[len(second)-1])
		}
	})
}
