package tsdb

import (
	"testing"
	"time"

	"tycoongrid/internal/metrics"
)

// fakeClock steps a deterministic clock by a fixed interval per reading.
type fakeClock struct {
	at   time.Time
	step time.Duration
}

func (f *fakeClock) now() time.Time {
	f.at = f.at.Add(f.step)
	return f.at
}

func TestCollectorDerivesSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("clears_total", "clears")
	g := reg.Gauge("price", "price")
	h := reg.Histogram("lat_seconds", "lat", []float64{0.01, 0.1, 1})

	db := NewDB(128)
	clock := &fakeClock{at: time.Unix(1000, 0), step: 5 * time.Second}
	col := NewCollector(reg, db, clock.now)

	g.Set(0.5)
	col.Collect() // seeds deltas; gauge recorded

	c.Add(50) // 50 events over the next 5s interval -> 10/s
	g.Set(0.75)
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	col.Collect()

	rate, ok := db.Lookup("clears_total" + SuffixRate)
	if !ok {
		t.Fatalf("missing rate series; have %v", db.Names())
	}
	if last, _ := rate.Latest(); last.V != 10 {
		t.Fatalf("counter rate = %g, want 10/s", last.V)
	}
	price, ok := db.Lookup("price")
	if !ok {
		t.Fatal("missing gauge series")
	}
	if price.Len() != 2 {
		t.Fatalf("gauge points = %d, want 2 (recorded from the seed scrape on)", price.Len())
	}
	if last, _ := price.Latest(); last.V != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", last.V)
	}
	hr, ok := db.Lookup("lat_seconds" + SuffixRate)
	if !ok {
		t.Fatal("missing histogram rate series")
	}
	if last, _ := hr.Latest(); last.V != 20 {
		t.Fatalf("histogram rate = %g, want 20/s", last.V)
	}
	if _, ok := db.Lookup("lat_seconds" + SuffixP99); !ok {
		t.Fatal("missing histogram p99 series")
	}
	mean, ok := db.Lookup("lat_seconds" + SuffixMean)
	if !ok {
		t.Fatal("missing histogram mean series")
	}
	if last, _ := mean.Latest(); last.V < 0.049 || last.V > 0.051 {
		t.Fatalf("interval mean = %g, want ~0.05", last.V)
	}
}

// TestCollectorDeterministicUnderInjectedClock runs two identical workloads
// under two identical injected clocks and requires identical stored series.
func TestCollectorDeterministicUnderInjectedClock(t *testing.T) {
	run := func() map[string][]Point {
		reg := metrics.NewRegistry()
		c := reg.Counter("ops_total", "ops")
		g := reg.Gauge("depth", "d")
		db := NewDB(64)
		clock := &fakeClock{at: time.Unix(42, 0), step: 2 * time.Second}
		col := NewCollector(reg, db, clock.now)
		for i := 0; i < 10; i++ {
			c.Add(uint64(i))
			g.Set(float64(i * i))
			col.Collect()
		}
		out := map[string][]Point{}
		for _, name := range db.Names() {
			s, _ := db.Lookup(name)
			out[name] = s.Since(0)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("series sets differ: %d vs %d", len(a), len(b))
	}
	for name, pa := range a {
		pb := b[name]
		if len(pa) != len(pb) {
			t.Fatalf("%s: %d vs %d points", name, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s[%d]: %+v vs %+v", name, i, pa[i], pb[i])
			}
		}
	}
}
