package tsdb

import (
	"math"
	"testing"
	"time"
)

func tn(sec int64) int64 { return sec * int64(time.Second) }

func fill(s *Series, secs ...int64) {
	for _, sec := range secs {
		if !s.AppendNanos(tn(sec), float64(sec)) {
			panic("append rejected in fixture")
		}
	}
}

func TestSeriesMonotonicAppend(t *testing.T) {
	s := newSeries(8)
	if !s.AppendNanos(tn(10), 1) {
		t.Fatal("first append rejected")
	}
	if s.AppendNanos(tn(10), 2) {
		t.Fatal("equal timestamp must be dropped")
	}
	if s.AppendNanos(tn(9), 2) {
		t.Fatal("older timestamp must be dropped")
	}
	if s.AppendNanos(tn(11), math.NaN()) || s.AppendNanos(tn(12), math.Inf(1)) {
		t.Fatal("non-finite values must be dropped")
	}
	if got := s.Dropped(); got != 4 {
		t.Fatalf("dropped = %d, want 4", got)
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("len = %d, want 1", got)
	}
}

// TestSeriesWindowAtWraparound drives a capacity-4 ring past wraparound and
// asserts tail-aligned window queries at every boundary the ring can
// present: window entirely inside the live tail, window spanning the
// physical wrap point, window larger than retention, and the exact
// inclusive/exclusive edges of the window start.
func TestSeriesWindowAtWraparound(t *testing.T) {
	s := newSeries(4)
	fill(s, 1, 2, 3, 4, 5, 6) // retains 3,4,5,6; physical buffer wrapped twice

	if got := s.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	last, ok := s.Latest()
	if !ok || last.T != tn(6) || last.V != 6 {
		t.Fatalf("latest = %+v, want t=6s v=6", last)
	}

	cases := []struct {
		window time.Duration
		want   []int64 // expected point values (== their seconds)
	}{
		{1 * time.Second, []int64{6}},                          // window smaller than spacing: newest only
		{2 * time.Second, []int64{5, 6}},                       // crosses the head slot
		{3 * time.Second, []int64{4, 5, 6}},                    // spans the physical wrap point
		{4 * time.Second, []int64{3, 4, 5, 6}},                 // exactly the full retention
		{time.Hour, []int64{3, 4, 5, 6}},                       // bigger than retention: clipped, no phantom points
		{3*time.Second + time.Nanosecond, []int64{3, 4, 5, 6}}, // boundary: start lands exactly on oldest
	}
	for _, tc := range cases {
		got := s.Window(tc.window)
		if len(got) != len(tc.want) {
			t.Fatalf("Window(%v) returned %d points %v, want %v", tc.window, len(got), got, tc.want)
		}
		for i, w := range tc.want {
			if got[i].T != tn(w) || got[i].V != float64(w) {
				t.Fatalf("Window(%v)[%d] = %+v, want t=%ds", tc.window, i, got[i], w)
			}
			if i > 0 && got[i].T <= got[i-1].T {
				t.Fatalf("Window(%v) not ascending: %v", tc.window, got)
			}
		}
	}

	// Since with a cutoff inside the overwritten prefix returns only live data.
	if got := s.Since(tn(1)); len(got) != 4 || got[0].T != tn(3) {
		t.Fatalf("Since(1s) = %v, want the 4 retained points from 3s", got)
	}
	if got := s.Since(tn(7)); got != nil {
		t.Fatalf("Since(future) = %v, want nil", got)
	}
}

// TestSeriesWindowBoundaryExactlyAtWrapSlot appends one more point after
// every window query, so the wrap cursor sits at each physical index at
// least once while queries keep returning the correct logical tail.
func TestSeriesWindowBoundaryExactlyAtWrapSlot(t *testing.T) {
	s := newSeries(3)
	for sec := int64(1); sec <= 12; sec++ {
		s.AppendNanos(tn(sec), float64(sec))
		pts := s.Window(2 * time.Second)
		wantLen := 2
		if sec == 1 {
			wantLen = 1
		}
		if len(pts) != wantLen {
			t.Fatalf("after %ds: window len = %d, want %d (%v)", sec, len(pts), wantLen, pts)
		}
		if pts[len(pts)-1].T != tn(sec) {
			t.Fatalf("after %ds: window tail = %+v, want newest", sec, pts[len(pts)-1])
		}
	}
}

func TestWindowBefore(t *testing.T) {
	s := newSeries(8)
	fill(s, 10, 20, 30)
	end := time.Unix(25, 0)
	got := s.WindowBefore(end, 10*time.Second)
	if len(got) != 1 || got[0].T != tn(20) {
		t.Fatalf("WindowBefore(25s, 10s) = %v, want just t=20s", got)
	}
	// Anchored after the data: empty window, no phantom freshness.
	if got := s.WindowBefore(time.Unix(100, 0), 5*time.Second); len(got) != 0 {
		t.Fatalf("WindowBefore far future = %v, want empty", got)
	}
}

func TestDownsample(t *testing.T) {
	var pts []Point
	for i := int64(0); i < 100; i++ {
		pts = append(pts, Point{T: tn(i), V: float64(i)})
	}
	got := Downsample(pts, 10)
	if len(got) != 10 {
		t.Fatalf("bucket count = %d, want 10", len(got))
	}
	total := 0
	for i, b := range got {
		total += b.Count
		if b.Count == 0 {
			t.Fatalf("bucket %d empty on dense input", i)
		}
		if b.Min > b.Mean || b.Mean > b.Max || b.P99 > b.Max || b.P99 < b.Min {
			t.Fatalf("bucket %d stats out of order: %+v", i, b)
		}
		if i > 0 && got[i-1].End != b.Start {
			t.Fatalf("buckets %d/%d not contiguous: %d vs %d", i-1, i, got[i-1].End, b.Start)
		}
	}
	if total != 100 {
		t.Fatalf("points partitioned = %d, want all 100", total)
	}
	if got[9].End != tn(99) {
		t.Fatalf("final bucket must end at the newest point, got %d", got[9].End)
	}

	// Sparse input: empty buckets stay in place with Count 0.
	sparse := []Point{{T: tn(0), V: 1}, {T: tn(9), V: 3}}
	buckets := Downsample(sparse, 3)
	if len(buckets) != 3 || buckets[0].Count != 1 || buckets[1].Count != 0 || buckets[2].Count != 1 {
		t.Fatalf("sparse downsample = %+v, want occupied/empty/occupied", buckets)
	}
	if Downsample(nil, 5) != nil {
		t.Fatal("empty input must return nil")
	}
	if one := Downsample([]Point{{T: tn(5), V: 2}}, 7); len(one) != 1 || one[0].Count != 1 {
		t.Fatalf("single point must collapse to one bucket, got %+v", one)
	}
}

func TestDBMatch(t *testing.T) {
	db := NewDB(16)
	db.Series("a{shard=\"0\"}:rate")
	db.Series("a{shard=\"1\"}:rate")
	db.Series("b")
	if got := db.Match("a{shard=*"); len(got) != 2 {
		t.Fatalf("prefix match = %v, want 2 series", got)
	}
	if got := db.Match("b"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("exact match = %v", got)
	}
	if got := db.Match("zzz"); got != nil {
		t.Fatalf("missing exact = %v, want nil", got)
	}
	if got := db.Names(); len(got) != 3 || got[2] != "b" {
		t.Fatalf("names = %v, want sorted 3", got)
	}
}
