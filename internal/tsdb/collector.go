package tsdb

import (
	"time"

	"tycoongrid/internal/metrics"
)

// Series-name suffixes the Collector derives from one metrics snapshot.
// Gauges keep their bare sample name; cumulative metrics become rates so
// the stored series are directly plottable.
const (
	SuffixRate = ":rate" // counters & histogram counts: events per second
	SuffixP99  = ":p99"  // histograms: interpolated 99th percentile
	SuffixMean = ":mean" // histograms: delta sum / delta count per interval
)

// Collector turns a metrics.Registry into tsdb series by self-scraping
// Snapshot on each Collect call:
//
//   - every counter child appends "<sample>:rate" — its per-second rate over
//     the interval since the previous Collect,
//   - every gauge child appends "<sample>" — its instantaneous value,
//   - every histogram child appends "<sample>:p99", "<sample>:mean" (over
//     the interval) and "<sample>:rate" (observations per second).
//
// The clock is injected: daemons run Collect on a wall ticker, tests and the
// simulation harness drive it with engine time, making the stored history
// deterministic under a deterministic workload. Collect is not safe for
// concurrent use with itself; one goroutine (or the engine loop) owns it.
type Collector struct {
	reg *metrics.Registry
	db  *DB
	now func() time.Time

	prev   metrics.Snapshot
	prevAt time.Time
	seeded bool
}

// NewCollector builds a collector feeding db from reg (nil means the default
// registry) stamped by now (nil means time.Now).
func NewCollector(reg *metrics.Registry, db *DB, now func() time.Time) *Collector {
	if reg == nil {
		reg = metrics.Default()
	}
	if now == nil {
		now = time.Now
	}
	return &Collector{reg: reg, db: db, now: now}
}

// DB returns the database the collector feeds.
func (c *Collector) DB() *DB { return c.db }

// Collect performs one self-scrape and returns how many series points were
// appended. The first call only seeds the delta baseline for cumulative
// metrics (gauges and histogram quantiles still record), so rates never
// report a cold process's lifetime totals as one giant spike.
func (c *Collector) Collect() int {
	at := c.now()
	snap := c.reg.Snapshot()
	appended := 0
	tn := at.UnixNano()

	for _, g := range snap.Gauges {
		if c.db.Series(metrics.SampleName(g.Name, g.Labels)).AppendNanos(tn, g.Value) {
			appended++
		}
	}
	for _, h := range snap.Histograms {
		name := metrics.SampleName(h.Name, h.Labels)
		if h.Count > 0 {
			if c.db.Series(name+SuffixP99).AppendNanos(tn, h.P99) {
				appended++
			}
		}
	}

	if c.seeded {
		dt := at.Sub(c.prevAt).Seconds()
		if dt > 0 {
			delta := snap.Delta(c.prev)
			for _, ctr := range delta.Counters {
				name := metrics.SampleName(ctr.Name, ctr.Labels)
				if c.db.Series(name+SuffixRate).AppendNanos(tn, float64(ctr.Value)/dt) {
					appended++
				}
			}
			for _, h := range delta.Histograms {
				name := metrics.SampleName(h.Name, h.Labels)
				if c.db.Series(name+SuffixRate).AppendNanos(tn, float64(h.Count)/dt) {
					appended++
				}
				if h.Count > 0 {
					if c.db.Series(name+SuffixMean).AppendNanos(tn, h.Sum/float64(h.Count)) {
						appended++
					}
				}
			}
		}
	}
	c.prev = snap
	c.prevAt = at
	c.seeded = true
	return appended
}

// Run collects every interval until stop closes. Daemons run this in one
// goroutine per process; everything it touches is concurrency-safe.
func (c *Collector) Run(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	c.Collect() // seed immediately so the first real sample lands one interval in
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			c.Collect()
		}
	}
}
