// Package tsdb is the repository's dependency-free embedded time-series
// store: fixed-capacity rings of (timestamp, value) points, one per named
// series, with monotonic append, tail-aligned windowed queries and
// downsampling into min/max/mean/p99 buckets.
//
// It exists because the paper's central claim — price prediction stabilizes
// cost in a volatile spot market — is only checkable in production when the
// market's history is observable: /metrics is a point-in-time reading, and
// any run longer than one scrape interval is otherwise flying blind. Every
// daemon feeds its own DB by self-scraping its metrics.Snapshot on a ticker
// (Collector), the telemetry aggregator feeds one from peer scrapes, and the
// experiment harness feeds one from engine time — the store itself never
// reads a clock, so a simulated world's telemetry is exactly as
// deterministic as the world.
//
// Memory is strictly bounded: a series is one pre-allocated ring of
// DefaultCapacity points (64 KiB at the default), appends past capacity
// overwrite the oldest point, and out-of-order appends are dropped and
// counted rather than sorted in.
package tsdb

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultCapacity is the per-series ring size of a zero-configured DB: at
// the daemons' default 5 s self-scrape interval it holds ~5.7 hours of
// history in 64 KiB per series.
const DefaultCapacity = 4096

// Point is one sample: a unix-nanosecond timestamp and a value.
type Point struct {
	T int64   `json:"t"` // unix nanoseconds
	V float64 `json:"v"`
}

// Series is one named metric's ring of points. Appends are monotonic: a
// point not strictly newer than the last accepted one is dropped (and
// counted), so the ring is always sorted by construction and window queries
// never need a sort. Safe for concurrent use.
type Series struct {
	mu      sync.Mutex
	buf     []Point
	head    int // next write slot once full
	n       int // points stored
	dropped uint64
}

func newSeries(capacity int) *Series {
	return &Series{buf: make([]Point, 0, capacity)}
}

// Append records (t, v). It reports whether the point was accepted: NaN/Inf
// values and timestamps not after the newest stored point are dropped.
func (s *Series) Append(t time.Time, v float64) bool {
	return s.AppendNanos(t.UnixNano(), v)
}

// AppendNanos is Append with a raw unix-nanosecond timestamp.
func (s *Series) AppendNanos(tn int64, v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		last := s.at(s.n - 1)
		if tn <= last.T {
			s.dropped++
			return false
		}
	}
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, Point{T: tn, V: v})
		s.n++
		return true
	}
	// Ring is full: overwrite the oldest point.
	s.buf[s.head] = Point{T: tn, V: v}
	s.head = (s.head + 1) % len(s.buf)
	return true
}

// at returns the i-th oldest stored point. Caller holds mu.
func (s *Series) at(i int) Point {
	if len(s.buf) < cap(s.buf) {
		return s.buf[i]
	}
	return s.buf[(s.head+i)%len(s.buf)]
}

// Len returns how many points are stored.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many appends were rejected (non-monotonic timestamps
// or non-finite values).
func (s *Series) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Latest returns the newest point, if any.
func (s *Series) Latest() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Point{}, false
	}
	return s.at(s.n - 1), true
}

// Since returns a copy of every point with T >= tn, in ascending time order.
func (s *Series) Since(tn int64) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Binary search over the logically-ordered ring for the first index with
	// T >= tn.
	lo := sort.Search(s.n, func(i int) bool { return s.at(i).T >= tn })
	if lo == s.n {
		return nil
	}
	out := make([]Point, 0, s.n-lo)
	for i := lo; i < s.n; i++ {
		out = append(out, s.at(i))
	}
	return out
}

// Window returns the tail-aligned window of the series: every point within d
// of the newest point, the newest included. The window is anchored at the
// data's own tail, not the wall clock, so a simulated or idle series still
// answers "the last five minutes of what I have" exactly.
func (s *Series) Window(d time.Duration) []Point {
	last, ok := s.Latest()
	if !ok {
		return nil
	}
	return s.Since(last.T - d.Nanoseconds() + 1)
}

// WindowBefore returns every point in (end-d, end], for callers that anchor
// the window at an explicit instant (the SLO evaluator anchors at its clock
// so a silent daemon violates "freshness" instead of forever re-reporting
// its last good window).
func (s *Series) WindowBefore(end time.Time, d time.Duration) []Point {
	endN := end.UnixNano()
	pts := s.Since(endN - d.Nanoseconds() + 1)
	// Trim points after end (possible only when the caller's clock lags the
	// appender's; keep the semantics exact anyway).
	for len(pts) > 0 && pts[len(pts)-1].T > endN {
		pts = pts[:len(pts)-1]
	}
	return pts
}

// DB is a registry of series by name. Safe for concurrent use.
type DB struct {
	mu       sync.RWMutex
	capacity int
	series   map[string]*Series
}

// NewDB creates a DB whose series hold capacity points each (<= 0 means
// DefaultCapacity).
func NewDB(capacity int) *DB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &DB{capacity: capacity, series: make(map[string]*Series)}
}

// Series returns the named series, creating it on first use.
func (db *DB) Series(name string) *Series {
	db.mu.RLock()
	s, ok := db.series[name]
	db.mu.RUnlock()
	if ok {
		return s
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if s, ok := db.series[name]; ok {
		return s
	}
	s = newSeries(db.capacity)
	db.series[name] = s
	return s
}

// Lookup returns the named series without creating it.
func (db *DB) Lookup(name string) (*Series, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.series[name]
	return s, ok
}

// Names returns every series name, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.series))
	for name := range db.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Match returns the sorted names matching pattern: an exact name, or a
// prefix when the pattern ends in '*'. SLO rules use the wildcard form to
// cover per-label children ("...{shard=*}:rate") without enumerating them.
func (db *DB) Match(pattern string) []string {
	if len(pattern) == 0 {
		return nil
	}
	if pattern[len(pattern)-1] != '*' {
		if _, ok := db.Lookup(pattern); ok {
			return []string{pattern}
		}
		return nil
	}
	prefix := pattern[:len(pattern)-1]
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for name := range db.series {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
