package tsdb

import "sort"

// BucketStat is one downsampling bucket: the points of a fixed time slice
// reduced to count/min/max/mean/p99. Empty buckets keep Count == 0 with
// zeroed values so a rendered series keeps its regular time axis across
// gaps (a restarted daemon shows a hole, not a seam).
type BucketStat struct {
	Start int64   `json:"start"` // unix nanoseconds, inclusive
	End   int64   `json:"end"`   // unix nanoseconds, exclusive (last bucket: inclusive)
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P99   float64 `json:"p99"`
}

// Downsample reduces points (ascending by T) into n equal-width buckets
// spanning [first.T, last.T], tail-aligned so the final bucket always ends
// exactly at the newest point. n <= 1 or a single point collapses to one
// bucket.
func Downsample(points []Point, n int) []BucketStat {
	if len(points) == 0 {
		return nil
	}
	first, last := points[0].T, points[len(points)-1].T
	if n <= 1 || first == last {
		return []BucketStat{reduce(points, first, last)}
	}
	span := last - first
	out := make([]BucketStat, n)
	// Partition by index walk rather than per-point division: points are
	// sorted, so each bucket is one contiguous slice.
	lo := 0
	for b := 0; b < n; b++ {
		// Integer bucket edges that exactly tile [first, last].
		start := first + span*int64(b)/int64(n)
		end := first + span*int64(b+1)/int64(n)
		hi := lo
		for hi < len(points) && (points[hi].T < end || (b == n-1 && points[hi].T <= end)) {
			hi++
		}
		out[b] = reduce(points[lo:hi], start, end)
		lo = hi
	}
	return out
}

// reduce computes one bucket's stats. P99 is nearest-rank over a sorted
// copy — bucket populations are small by construction, so the sort is
// cheaper than maintaining a streaming sketch would be.
func reduce(points []Point, start, end int64) BucketStat {
	b := BucketStat{Start: start, End: end, Count: len(points)}
	if len(points) == 0 {
		return b
	}
	vals := make([]float64, len(points))
	sum := 0.0
	for i, p := range points {
		vals[i] = p.V
		sum += p.V
	}
	sort.Float64s(vals)
	b.Min = vals[0]
	b.Max = vals[len(vals)-1]
	b.Mean = sum / float64(len(vals))
	idx := int(0.99 * float64(len(vals)-1))
	b.P99 = vals[idx]
	return b
}
