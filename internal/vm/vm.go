// Package vm models the virtualization substrate Tycoon runs on (Xen in the
// paper; see DESIGN.md §2 for the substitution). A Manager tracks the
// virtual machines of one physical host: creation with a configurable setup
// overhead, automatic software installation ("yum") for requested runtime
// environments, reuse of a user's existing VM between jobs on the same host
// (with scratch space wiped — "no application data or scratch space is
// shared by different jobs"), hibernation and purging to free capacity, and
// the host-wide VM limit that caps how many virtual CPUs the Grid monitor
// can report (the paper's ~15 VMs per physical node).
package vm

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// State is a virtual machine lifecycle state.
type State int

// VM lifecycle states.
const (
	StateCreating State = iota
	StateIdle
	StateRunning
	StateHibernated
	StatePurged
)

// String renders the state for logs and the grid monitor.
func (s State) String() string {
	switch s {
	case StateCreating:
		return "creating"
	case StateIdle:
		return "idle"
	case StateRunning:
		return "running"
	case StateHibernated:
		return "hibernated"
	case StatePurged:
		return "purged"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// VM is one virtual machine.
type VM struct {
	ID       string
	Owner    string // the user the VM is dedicated to
	State    State
	Envs     map[string]bool // installed runtime environments
	ReadyAt  time.Time       // when creation/installation completes
	Scratch  int             // generation counter; bumps when scratch is wiped
	JobsRun  int
	Created  time.Time
	LastUsed time.Time
}

// Config tunes a host's VM manager.
type Config struct {
	HostID string
	// MaxVMs caps concurrently existing (non-purged) VMs; the paper reports
	// about 15 virtual CPUs per physical node.
	MaxVMs int
	// CreateOverhead is the virtual-machine boot cost.
	CreateOverhead time.Duration
	// InstallOverhead is the per-runtime-environment software install cost.
	InstallOverhead time.Duration
	// VirtOverhead is the fraction of CPU lost to virtualization, in [0, 0.5];
	// the paper cites 1-5% for Xen.
	VirtOverhead float64
}

// Manager owns the VMs of one host. It is not safe for concurrent use; the
// grid layer serializes access per host.
type Manager struct {
	cfg                     Config
	vms                     map[string]*VM
	byOwner                 map[string]map[string]*VM
	seq                     int
	created, reused, purged int
}

// Errors returned by the manager.
var (
	ErrHostFull  = errors.New("vm: host VM limit reached")
	ErrUnknownVM = errors.New("vm: unknown vm")
	ErrBadState  = errors.New("vm: operation invalid in current state")
)

// NewManager validates cfg and returns a manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.HostID == "" {
		return nil, errors.New("vm: empty host id")
	}
	if cfg.MaxVMs < 1 {
		return nil, fmt.Errorf("vm: MaxVMs %d, want >= 1", cfg.MaxVMs)
	}
	if cfg.VirtOverhead < 0 || cfg.VirtOverhead > 0.5 {
		return nil, fmt.Errorf("vm: VirtOverhead %v outside [0, 0.5]", cfg.VirtOverhead)
	}
	return &Manager{
		cfg:     cfg,
		vms:     make(map[string]*VM),
		byOwner: make(map[string]map[string]*VM),
	}, nil
}

// EffectiveCapacity converts raw host MHz to what VMs actually deliver after
// the virtualization overhead.
func (m *Manager) EffectiveCapacity(rawMHz float64) float64 {
	return rawMHz * (1 - m.cfg.VirtOverhead)
}

// Acquire finds or creates a VM for owner with the given runtime
// environments installed, at time now. Reuse policy (paper §3): a user may
// reuse their own idle or hibernated VM on the same physical host; scratch
// is always wiped. The returned VM is in StateRunning; its ReadyAt tells the
// caller when the job can actually start (boot/install overheads).
func (m *Manager) Acquire(owner string, envs []string, now time.Time) (*VM, error) {
	if owner == "" {
		return nil, errors.New("vm: empty owner")
	}
	// Prefer reusing the owner's idle VM with the most environments already
	// installed; deterministic tie-break on ID. Selection scans only this
	// owner's VMs (the per-owner index) — this sits on the scheduler's
	// retry path, so it must stay cheap even on hosts crowded with other
	// users' machines.
	var best *VM
	bestMissing := 0
	for _, v := range m.byOwner[owner] {
		if v.State != StateIdle && v.State != StateHibernated {
			continue
		}
		miss := missingEnvs(v, envs)
		if best == nil || miss < bestMissing || (miss == bestMissing && v.ID < best.ID) {
			best = v
			bestMissing = miss
		}
	}
	if best != nil {
		ready := now
		if best.State == StateHibernated {
			ready = ready.Add(m.cfg.CreateOverhead / 2) // resume is cheaper than boot
		}
		ready = ready.Add(time.Duration(missingEnvs(best, envs)) * m.cfg.InstallOverhead)
		for _, e := range envs {
			best.Envs[e] = true
		}
		best.State = StateRunning
		best.ReadyAt = ready
		best.Scratch++ // no scratch sharing between jobs
		best.JobsRun++
		best.LastUsed = now
		m.reused++
		return best, nil
	}

	if m.liveCount() >= m.cfg.MaxVMs {
		// Returned unwrapped: this is the scheduler's hot retry path and
		// formatting a fresh error each attempt dominated profiles.
		return nil, ErrHostFull
	}
	m.seq++
	v := &VM{
		ID:       fmt.Sprintf("%s-vm%03d", m.cfg.HostID, m.seq),
		Owner:    owner,
		State:    StateRunning,
		Envs:     make(map[string]bool, len(envs)),
		Created:  now,
		LastUsed: now,
		JobsRun:  1,
		ReadyAt:  now.Add(m.cfg.CreateOverhead + time.Duration(len(envs))*m.cfg.InstallOverhead),
	}
	for _, e := range envs {
		v.Envs[e] = true
	}
	m.vms[v.ID] = v
	if m.byOwner[owner] == nil {
		m.byOwner[owner] = make(map[string]*VM)
	}
	m.byOwner[owner][v.ID] = v
	m.created++
	return v, nil
}

func missingEnvs(v *VM, envs []string) int {
	n := 0
	for _, e := range envs {
		if !v.Envs[e] {
			n++
		}
	}
	return n
}

// Release marks a running VM idle after its job finishes.
func (m *Manager) Release(id string, now time.Time) error {
	v, ok := m.vms[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVM, id)
	}
	if v.State != StateRunning {
		return fmt.Errorf("%w: release of %s vm", ErrBadState, v.State)
	}
	v.State = StateIdle
	v.LastUsed = now
	return nil
}

// Hibernate parks an idle VM, keeping its image but freeing runtime
// resources — the paper's suggested model for offering more virtual CPUs
// than are concurrently active.
func (m *Manager) Hibernate(id string) error {
	v, ok := m.vms[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVM, id)
	}
	if v.State != StateIdle {
		return fmt.Errorf("%w: hibernate of %s vm", ErrBadState, v.State)
	}
	v.State = StateHibernated
	return nil
}

// Purge destroys an idle or hibernated VM, freeing a slot.
func (m *Manager) Purge(id string) error {
	v, ok := m.vms[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVM, id)
	}
	if v.State == StateRunning || v.State == StateCreating {
		return fmt.Errorf("%w: purge of %s vm", ErrBadState, v.State)
	}
	v.State = StatePurged
	delete(m.vms, id)
	if own := m.byOwner[v.Owner]; own != nil {
		delete(own, id)
		if len(own) == 0 {
			delete(m.byOwner, v.Owner)
		}
	}
	m.purged++
	return nil
}

// PurgeIdleOlderThan purges VMs idle since before cutoff; returns how many.
// It runs every reallocation tick when the cluster enables purging, so it
// avoids sorting: purge order does not affect the outcome (every victim is
// removed).
func (m *Manager) PurgeIdleOlderThan(cutoff time.Time) int {
	var victims []string
	for id, v := range m.vms {
		if (v.State == StateIdle || v.State == StateHibernated) && v.LastUsed.Before(cutoff) {
			victims = append(victims, id)
		}
	}
	n := 0
	for _, id := range victims {
		if err := m.Purge(id); err == nil {
			n++
		}
	}
	return n
}

// PurgeAll destroys every VM regardless of state and returns how many were
// destroyed. This is the host-crash path: a crashed node loses all VM images
// at once, running ones included, so the usual Purge state check does not
// apply.
func (m *Manager) PurgeAll() int {
	n := len(m.vms)
	for _, v := range m.vms {
		v.State = StatePurged
	}
	m.vms = make(map[string]*VM)
	m.byOwner = make(map[string]map[string]*VM)
	m.purged += n
	return n
}

// Get returns a VM by id.
func (m *Manager) Get(id string) (*VM, error) {
	v, ok := m.vms[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVM, id)
	}
	return v, nil
}

// liveCount counts non-purged VMs.
func (m *Manager) liveCount() int { return len(m.vms) }

// Live returns the number of existing VMs.
func (m *Manager) Live() int { return m.liveCount() }

// Running returns the number of VMs currently executing jobs.
func (m *Manager) Running() int {
	n := 0
	for _, v := range m.vms {
		if v.State == StateRunning {
			n++
		}
	}
	return n
}

// Stats reports manager counters for the grid monitor.
type Stats struct {
	Live, Running, Created, Reused, Purged int
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Live:    m.liveCount(),
		Running: m.Running(),
		Created: m.created,
		Reused:  m.reused,
		Purged:  m.purged,
	}
}

// sorted returns VMs ordered by ID for deterministic iteration.
func (m *Manager) sorted() []*VM {
	out := make([]*VM, 0, len(m.vms))
	for _, v := range m.vms {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
