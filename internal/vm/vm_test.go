package vm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tycoongrid/internal/sim"
)

func mgr(t *testing.T, maxVMs int) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		HostID:          "h1",
		MaxVMs:          maxVMs,
		CreateOverhead:  60 * time.Second,
		InstallOverhead: 30 * time.Second,
		VirtOverhead:    0.03,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(Config{MaxVMs: 1}); err == nil {
		t.Error("empty host accepted")
	}
	if _, err := NewManager(Config{HostID: "h", MaxVMs: 0}); err == nil {
		t.Error("MaxVMs=0 accepted")
	}
	if _, err := NewManager(Config{HostID: "h", MaxVMs: 1, VirtOverhead: 0.9}); err == nil {
		t.Error("90% overhead accepted")
	}
}

func TestEffectiveCapacity(t *testing.T) {
	m := mgr(t, 5)
	if got := m.EffectiveCapacity(1000); got != 970 {
		t.Errorf("effective = %v, want 970", got)
	}
}

func TestAcquireCreatesWithOverheads(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	v, err := m.Acquire("alice", []string{"BLAST", "PYTHON"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateRunning {
		t.Errorf("state = %v", v.State)
	}
	// Boot 60s + 2 installs x 30s.
	if want := now.Add(2 * time.Minute); !v.ReadyAt.Equal(want) {
		t.Errorf("ReadyAt = %v, want %v", v.ReadyAt, want)
	}
	if !v.Envs["BLAST"] || !v.Envs["PYTHON"] {
		t.Error("envs not installed")
	}
	if _, err := m.Acquire("", nil, now); err == nil {
		t.Error("empty owner accepted")
	}
}

func TestReuseSameOwnerWipesScratch(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	v1, err := m.Acquire("alice", []string{"BLAST"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(v1.ID, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	gen := v1.Scratch
	v2, err := m.Acquire("alice", []string{"BLAST"}, now.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID {
		t.Error("same-owner VM not reused")
	}
	// No new installs needed: ready immediately.
	if !v2.ReadyAt.Equal(now.Add(2 * time.Hour)) {
		t.Errorf("reuse ReadyAt = %v", v2.ReadyAt)
	}
	if v2.Scratch == gen {
		t.Error("scratch not wiped between jobs")
	}
	if v2.JobsRun != 2 {
		t.Errorf("JobsRun = %d", v2.JobsRun)
	}
	if m.Stats().Reused != 1 {
		t.Errorf("reused = %d", m.Stats().Reused)
	}
}

func TestReuseInstallsMissingEnvs(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	v1, _ := m.Acquire("alice", []string{"BLAST"}, now)
	if err := m.Release(v1.ID, now); err != nil {
		t.Fatal(err)
	}
	v2, err := m.Acquire("alice", []string{"BLAST", "R"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID {
		t.Fatal("expected reuse")
	}
	if want := now.Add(30 * time.Second); !v2.ReadyAt.Equal(want) {
		t.Errorf("ReadyAt = %v, want one install overhead", v2.ReadyAt)
	}
}

func TestNoCrossOwnerReuse(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	v1, _ := m.Acquire("alice", nil, now)
	if err := m.Release(v1.ID, now); err != nil {
		t.Fatal(err)
	}
	v2, err := m.Acquire("bob", nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID == v1.ID {
		t.Error("bob received alice's VM")
	}
}

func TestHostFull(t *testing.T) {
	m := mgr(t, 2)
	now := sim.Epoch
	for i := 0; i < 2; i++ {
		if _, err := m.Acquire(fmt.Sprintf("u%d", i), nil, now); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Acquire("u9", nil, now); !errors.Is(err, ErrHostFull) {
		t.Errorf("full host: %v", err)
	}
	if m.Live() != 2 || m.Running() != 2 {
		t.Errorf("live=%d running=%d", m.Live(), m.Running())
	}
}

func TestHibernateAndResume(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	v, _ := m.Acquire("alice", nil, now)
	if err := m.Hibernate(v.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("hibernate running: %v", err)
	}
	if err := m.Release(v.ID, now); err != nil {
		t.Fatal(err)
	}
	if err := m.Hibernate(v.ID); err != nil {
		t.Fatal(err)
	}
	// Resuming costs half the boot overhead.
	v2, err := m.Acquire("alice", nil, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v.ID {
		t.Fatal("hibernated VM not reused")
	}
	if want := now.Add(time.Hour).Add(30 * time.Second); !v2.ReadyAt.Equal(want) {
		t.Errorf("resume ReadyAt = %v, want %v", v2.ReadyAt, want)
	}
}

func TestPurge(t *testing.T) {
	m := mgr(t, 2)
	now := sim.Epoch
	v, _ := m.Acquire("alice", nil, now)
	if err := m.Purge(v.ID); !errors.Is(err, ErrBadState) {
		t.Errorf("purge running: %v", err)
	}
	if err := m.Release(v.ID, now); err != nil {
		t.Fatal(err)
	}
	if err := m.Purge(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(v.ID); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("purged VM still visible: %v", err)
	}
	// Slot freed: a full host can admit again.
	if _, err := m.Acquire("bob", nil, now); err != nil {
		t.Errorf("slot not freed: %v", err)
	}
	if m.Stats().Purged != 1 {
		t.Errorf("purged = %d", m.Stats().Purged)
	}
}

func TestPurgeIdleOlderThan(t *testing.T) {
	m := mgr(t, 10)
	now := sim.Epoch
	for i := 0; i < 3; i++ {
		v, _ := m.Acquire(fmt.Sprintf("u%d", i), nil, now)
		if err := m.Release(v.ID, now.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	busy, _ := m.Acquire("busy", nil, now)
	_ = busy
	n := m.PurgeIdleOlderThan(now.Add(90 * time.Minute))
	if n != 2 {
		t.Errorf("purged %d, want 2 (idle at t0 and t+1h)", n)
	}
	if m.Live() != 2 {
		t.Errorf("live = %d", m.Live())
	}
}

func TestReleaseErrors(t *testing.T) {
	m := mgr(t, 5)
	if err := m.Release("nope", sim.Epoch); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("unknown release: %v", err)
	}
	v, _ := m.Acquire("a", nil, sim.Epoch)
	if err := m.Release(v.ID, sim.Epoch); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(v.ID, sim.Epoch); !errors.Is(err, ErrBadState) {
		t.Errorf("double release: %v", err)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateCreating: "creating", StateIdle: "idle", StateRunning: "running",
		StateHibernated: "hibernated", StatePurged: "purged", State(99): "state(99)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestReusePrefersFewestMissingEnvs(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	a, _ := m.Acquire("u", []string{"BLAST"}, now)
	if err := m.Release(a.ID, now); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Acquire("u", []string{"R", "PYTHON"}, now)
	if b.ID == a.ID {
		// Reused a; install both. Fine, but then release both and ask for R.
		t.Skip("single VM reused; preference unobservable")
	}
	if err := m.Release(b.ID, now); err != nil {
		t.Fatal(err)
	}
	c, err := m.Acquire("u", []string{"R"}, now)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != b.ID {
		t.Errorf("picked %s, want the VM that already has R (%s)", c.ID, b.ID)
	}
}

func TestPurgeAll(t *testing.T) {
	m := mgr(t, 5)
	now := sim.Epoch
	running, err := m.Acquire("alice", nil, now)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := m.Acquire("bob", nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(idle.ID, now); err != nil {
		t.Fatal(err)
	}
	if n := m.PurgeAll(); n != 2 {
		t.Errorf("PurgeAll = %d, want 2", n)
	}
	if m.Live() != 0 {
		t.Errorf("Live = %d after PurgeAll", m.Live())
	}
	if running.State != StatePurged || idle.State != StatePurged {
		t.Errorf("states = %v, %v, want purged", running.State, idle.State)
	}
	if _, err := m.Get(running.ID); !errors.Is(err, ErrUnknownVM) {
		t.Errorf("Get after PurgeAll: %v", err)
	}
	if got := m.Stats().Purged; got != 2 {
		t.Errorf("Stats().Purged = %d, want 2", got)
	}
	// The host is empty again: new acquisitions start fresh.
	fresh, err := m.Acquire("alice", nil, now)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == running.ID {
		t.Error("purged VM ID reused for a fresh VM")
	}
	_ = fmt.Sprintf("%v", fresh)
}
