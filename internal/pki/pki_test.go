package pki

import (
	"testing"
	"time"
)

func testCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewDeterministicCA("/O=Grid/CN=TestCA", [32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestDNValidate(t *testing.T) {
	good := []DN{"/O=Grid/CN=Alice", "/CN=x", "/O=Grid/OU=KTH/CN=Jorge Andrade"}
	for _, d := range good {
		if err := d.Validate(); err != nil {
			t.Errorf("%q: unexpected error %v", d, err)
		}
	}
	bad := []DN{"", "CN=x", "/", "/CN", "/=x", "//CN=x", "/CN=a//O=b"}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%q: want error", d)
		}
	}
}

func TestDNCommonName(t *testing.T) {
	if cn := DN("/O=Grid/CN=Alice").CommonName(); cn != "Alice" {
		t.Errorf("CN = %q", cn)
	}
	if cn := DN("/O=Grid").CommonName(); cn != "" {
		t.Errorf("CN = %q, want empty", cn)
	}
}

func TestIssueAndVerify(t *testing.T) {
	ca := testCA(t)
	id, err := ca.Issue("/O=Grid/CN=Alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.VerifyCert(id.Cert, time.Now()); err != nil {
		t.Errorf("verify: %v", err)
	}
	if id.DN() != "/O=Grid/CN=Alice" {
		t.Errorf("DN = %q", id.DN())
	}
	if id.Cert.Issuer != ca.DN() {
		t.Errorf("issuer = %q", id.Cert.Issuer)
	}
}

func TestVerifyAgainstTrustedCertOnly(t *testing.T) {
	ca := testCA(t)
	id, _ := ca.Issue("/O=Grid/CN=Bob")
	// A broker that only holds the CA certificate can verify.
	if err := VerifyCertAgainst(ca.Certificate(), id.Cert, time.Now()); err != nil {
		t.Errorf("verify against cert: %v", err)
	}
}

func TestRejectsForgedCertificate(t *testing.T) {
	ca := testCA(t)
	id, _ := ca.Issue("/O=Grid/CN=Mallory")
	forged := id.Cert
	forged.Subject = "/O=Grid/CN=Admin" // tamper with the DN
	if err := ca.VerifyCert(forged, time.Now()); err != ErrBadSignature {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
	// Tampered public key must also fail.
	forged2 := id.Cert
	other, _ := ca.Issue("/O=Grid/CN=Other")
	forged2.PublicKey = other.Cert.PublicKey
	if err := ca.VerifyCert(forged2, time.Now()); err != ErrBadSignature {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestRejectsWrongIssuer(t *testing.T) {
	ca := testCA(t)
	other, _ := NewDeterministicCA("/O=Evil/CN=OtherCA", [32]byte{9})
	id, _ := other.Issue("/O=Grid/CN=Alice")
	if err := ca.VerifyCert(id.Cert, time.Now()); err != ErrWrongIssuer {
		t.Errorf("err = %v, want ErrWrongIssuer", err)
	}
	// Same issuer name but different key must fail the signature check.
	impostor, _ := NewDeterministicCA("/O=Grid/CN=TestCA", [32]byte{7})
	id2, _ := impostor.Issue("/O=Grid/CN=Alice")
	if err := ca.VerifyCert(id2.Cert, time.Now()); err != ErrBadSignature {
		t.Errorf("err = %v, want ErrBadSignature", err)
	}
}

func TestExpiry(t *testing.T) {
	base := time.Date(2006, 6, 19, 0, 0, 0, 0, time.UTC)
	ca, err := NewDeterministicCA("/CN=CA", [32]byte{5},
		WithTTL(time.Hour), WithTimeSource(func() time.Time { return base }))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := ca.Issue("/CN=U")
	if err := ca.VerifyCert(id.Cert, base.Add(30*time.Minute)); err != nil {
		t.Errorf("inside window: %v", err)
	}
	if err := ca.VerifyCert(id.Cert, base.Add(2*time.Hour)); err != ErrExpired {
		t.Errorf("after expiry: %v, want ErrExpired", err)
	}
	if err := ca.VerifyCert(id.Cert, base.Add(-time.Minute)); err != ErrExpired {
		t.Errorf("before validity: %v, want ErrExpired", err)
	}
}

func TestSignVerifyMessages(t *testing.T) {
	ca := testCA(t)
	id, _ := ca.Issue("/CN=Signer")
	msg := []byte("transfer 100 credits to broker")
	sig := id.Sign(msg)
	if !Verify(id.Public(), msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(id.Public(), []byte("transfer 999 credits"), sig) {
		t.Error("signature accepted for altered message")
	}
	if Verify(id.Public()[:10], msg, sig) {
		t.Error("truncated key accepted")
	}
	other, _ := ca.Issue("/CN=Other")
	if Verify(other.Public(), msg, sig) {
		t.Error("signature accepted under wrong key")
	}
}

func TestSerialNumbersIncrease(t *testing.T) {
	ca := testCA(t)
	a, _ := ca.Issue("/CN=A")
	b, _ := ca.Issue("/CN=B")
	if b.Cert.Serial <= a.Cert.Serial {
		t.Errorf("serials %d, %d not increasing", a.Cert.Serial, b.Cert.Serial)
	}
}

func TestDeterministicIssueStableKeys(t *testing.T) {
	ca := testCA(t)
	a, _ := ca.IssueDeterministic("/CN=Seeded", [32]byte{42})
	b, _ := ca.IssueDeterministic("/CN=Seeded", [32]byte{42})
	if !a.Public().Equal(b.Public()) {
		t.Error("same seed must give same key")
	}
}

func TestIssueRejectsBadDN(t *testing.T) {
	ca := testCA(t)
	if _, err := ca.Issue("no-slash"); err == nil {
		t.Error("want DN validation error")
	}
	if _, err := NewCA("bad"); err == nil {
		t.Error("want DN validation error for CA name")
	}
}

func TestFingerprintStable(t *testing.T) {
	ca := testCA(t)
	id, _ := ca.IssueDeterministic("/CN=F", [32]byte{8})
	f1 := id.Cert.Fingerprint()
	f2 := id.Cert.Fingerprint()
	if f1 != f2 || len(f1) != 16 {
		t.Errorf("fingerprint %q/%q", f1, f2)
	}
}

func TestNewCARandomKeys(t *testing.T) {
	a, err := NewCA("/CN=A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCA("/CN=B")
	if err != nil {
		t.Fatal(err)
	}
	if a.Certificate().Fingerprint() == b.Certificate().Fingerprint() {
		t.Error("two random CAs share a key")
	}
}
