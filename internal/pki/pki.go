// Package pki models the Grid public-key infrastructure the paper's security
// design builds on: a certificate authority that binds a Distinguished Name
// (DN) to a public key, identities that can sign arbitrary statements, and
// verification helpers. The paper's integration keeps the Grid identity key
// and the bank account key both local to the user; this package issues and
// verifies both kinds.
//
// X.509/GSI is replaced by Ed25519 signatures over a canonical binary
// encoding — the evaluation depends on the verify-signature-over-DN
// semantics, not on the ASN.1 wire format (see DESIGN.md §2).
package pki

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"
)

// DN is a Grid distinguished name such as "/O=Grid/OU=KTH/CN=Alice".
type DN string

// Validate checks the DN is non-empty, slash-rooted, and consists of
// KEY=VALUE components.
func (d DN) Validate() error {
	s := string(d)
	if s == "" {
		return errors.New("pki: empty DN")
	}
	if !strings.HasPrefix(s, "/") {
		return fmt.Errorf("pki: DN %q must start with '/'", s)
	}
	for _, part := range strings.Split(s[1:], "/") {
		if part == "" {
			return fmt.Errorf("pki: DN %q has an empty component", s)
		}
		k, _, ok := strings.Cut(part, "=")
		if !ok || k == "" {
			return fmt.Errorf("pki: DN component %q is not KEY=VALUE", part)
		}
	}
	return nil
}

// CommonName returns the CN component, or "" if absent.
func (d DN) CommonName() string {
	for _, part := range strings.Split(strings.TrimPrefix(string(d), "/"), "/") {
		if v, ok := strings.CutPrefix(part, "CN="); ok {
			return v
		}
	}
	return ""
}

// Certificate binds a DN to an Ed25519 public key, signed by a CA.
type Certificate struct {
	Subject   DN
	PublicKey ed25519.PublicKey
	Issuer    DN
	Serial    uint64
	NotBefore time.Time
	NotAfter  time.Time
	Signature []byte
}

// tbs returns the deterministic to-be-signed encoding of the certificate.
func (c *Certificate) tbs() []byte {
	var b bytes.Buffer
	writeField := func(p []byte) {
		var l [8]byte
		binary.BigEndian.PutUint64(l[:], uint64(len(p)))
		b.Write(l[:])
		b.Write(p)
	}
	writeField([]byte("tycoongrid-cert-v1"))
	writeField([]byte(c.Subject))
	writeField(c.PublicKey)
	writeField([]byte(c.Issuer))
	var ser [8]byte
	binary.BigEndian.PutUint64(ser[:], c.Serial)
	writeField(ser[:])
	writeField([]byte(c.NotBefore.UTC().Format(time.RFC3339Nano)))
	writeField([]byte(c.NotAfter.UTC().Format(time.RFC3339Nano)))
	return b.Bytes()
}

// Fingerprint returns a short printable digest of the public key, used in
// logs and account ids.
func (c Certificate) Fingerprint() string {
	return base64.RawURLEncoding.EncodeToString(c.PublicKey)[:16]
}

// Identity is a private key plus its certificate.
type Identity struct {
	Cert Certificate
	priv ed25519.PrivateKey
}

// Sign signs msg with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// Public returns the identity's public key.
func (id *Identity) Public() ed25519.PublicKey {
	return id.priv.Public().(ed25519.PublicKey)
}

// DN returns the identity's distinguished name.
func (id *Identity) DN() DN { return id.Cert.Subject }

// Verify checks sig over msg against the identity's public key.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	return len(pub) == ed25519.PublicKeySize && ed25519.Verify(pub, msg, sig)
}

// CA is a certificate authority. It is safe to copy only by pointer.
type CA struct {
	id     *Identity
	serial uint64
	ttl    time.Duration
	now    func() time.Time
}

// CAOption customizes a CA.
type CAOption func(*CA)

// WithTTL sets the validity period of issued certificates (default 10 years).
func WithTTL(ttl time.Duration) CAOption {
	return func(ca *CA) { ca.ttl = ttl }
}

// WithTimeSource overrides the CA's clock, letting simulations issue
// certificates in virtual time.
func WithTimeSource(now func() time.Time) CAOption {
	return func(ca *CA) { ca.now = now }
}

// NewCA creates a CA with a fresh random key and a self-signed certificate.
func NewCA(name DN, opts ...CAOption) (*CA, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating CA key: %w", err)
	}
	return newCAFromKey(name, priv, opts...)
}

// NewDeterministicCA creates a CA keyed from a 32-byte seed; experiments use
// it so certificate bytes are reproducible across runs.
func NewDeterministicCA(name DN, seed [32]byte, opts ...CAOption) (*CA, error) {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return newCAFromKey(name, priv, opts...)
}

func newCAFromKey(name DN, priv ed25519.PrivateKey, opts ...CAOption) (*CA, error) {
	if err := name.Validate(); err != nil {
		return nil, err
	}
	ca := &CA{ttl: 10 * 365 * 24 * time.Hour, now: time.Now}
	for _, o := range opts {
		o(ca)
	}
	now := ca.now()
	cert := Certificate{
		Subject:   name,
		PublicKey: priv.Public().(ed25519.PublicKey),
		Issuer:    name,
		Serial:    0,
		NotBefore: now,
		NotAfter:  now.Add(ca.ttl),
	}
	cert.Signature = ed25519.Sign(priv, cert.tbs())
	ca.id = &Identity{Cert: cert, priv: priv}
	return ca, nil
}

// Certificate returns the CA's self-signed certificate.
func (ca *CA) Certificate() Certificate { return ca.id.Cert }

// DN returns the CA's name.
func (ca *CA) DN() DN { return ca.id.Cert.Subject }

// Issue creates a new identity for subject with a fresh random key.
func (ca *CA) Issue(subject DN) (*Identity, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generating key for %s: %w", subject, err)
	}
	return ca.issueFromKey(subject, priv)
}

// IssueDeterministic creates an identity keyed from a seed.
func (ca *CA) IssueDeterministic(subject DN, seed [32]byte) (*Identity, error) {
	return ca.issueFromKey(subject, ed25519.NewKeyFromSeed(seed[:]))
}

func (ca *CA) issueFromKey(subject DN, priv ed25519.PrivateKey) (*Identity, error) {
	if err := subject.Validate(); err != nil {
		return nil, err
	}
	ca.serial++
	now := ca.now()
	cert := Certificate{
		Subject:   subject,
		PublicKey: priv.Public().(ed25519.PublicKey),
		Issuer:    ca.id.Cert.Subject,
		Serial:    ca.serial,
		NotBefore: now,
		NotAfter:  now.Add(ca.ttl),
	}
	cert.Signature = ed25519.Sign(ca.id.priv, cert.tbs())
	return &Identity{Cert: cert, priv: priv}, nil
}

// Verification errors.
var (
	ErrBadSignature = errors.New("pki: bad certificate signature")
	ErrExpired      = errors.New("pki: certificate expired or not yet valid")
	ErrWrongIssuer  = errors.New("pki: certificate issuer mismatch")
)

// VerifyCert checks that cert was signed by this CA and is valid at time t.
func (ca *CA) VerifyCert(cert Certificate, t time.Time) error {
	return VerifyCertAgainst(ca.id.Cert, cert, t)
}

// VerifyCertAgainst checks cert against an out-of-band trusted CA
// certificate — what a resource broker holds instead of the CA itself.
func VerifyCertAgainst(caCert Certificate, cert Certificate, t time.Time) error {
	if cert.Issuer != caCert.Subject {
		return ErrWrongIssuer
	}
	if !ed25519.Verify(caCert.PublicKey, cert.tbs(), cert.Signature) {
		return ErrBadSignature
	}
	if t.Before(cert.NotBefore) || t.After(cert.NotAfter) {
		return ErrExpired
	}
	return nil
}
