package sim

import (
	"testing"
	"time"
)

func TestEngineStartsAtEpoch(t *testing.T) {
	e := NewEngine()
	if !e.Now().Equal(Epoch) {
		t.Errorf("Now = %v, want Epoch", e.Now())
	}
	if e.Elapsed() != 0 {
		t.Errorf("Elapsed = %v", e.Elapsed())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	if _, err := e.After(3*time.Second, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.After(1*time.Second, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.After(2*time.Second, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	e.RunFor(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Elapsed() != 10*time.Second {
		t.Errorf("clock = %v, want 10s", e.Elapsed())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := e.After(time.Second, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunFor(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Minute)
	if _, err := e.At(Epoch, func() {}); err != ErrPastEvent {
		t.Errorf("err = %v, want ErrPastEvent", err)
	}
	if _, err := e.After(-time.Second, func() {}); err != ErrPastEvent {
		t.Errorf("err = %v, want ErrPastEvent", err)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h, err := e.After(time.Second, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	h.Cancel() // double cancel is a no-op
	e.RunFor(2 * time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
	Handle{}.Cancel() // zero handle is safe
}

func TestClockDuringEvent(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	if _, err := e.After(42*time.Second, func() { at = e.Elapsed() }); err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Minute)
	if at != 42*time.Second {
		t.Errorf("event saw clock %v, want 42s", at)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var hits []time.Duration
	if _, err := e.After(time.Second, func() {
		hits = append(hits, e.Elapsed())
		if _, err := e.After(time.Second, func() { hits = append(hits, e.Elapsed()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	e.RunFor(5 * time.Second)
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 2*time.Second {
		t.Errorf("hits = %v", hits)
	}
}

func TestRunUntilStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine()
	fired := false
	if _, err := e.After(time.Hour, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Minute)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.RunFor(time.Hour)
	if !fired {
		t.Error("event inside horizon did not fire")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []time.Duration
	tk, err := e.Every(10*time.Second, func() { ticks = append(ticks, e.Elapsed()) })
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(35 * time.Second)
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, want := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		if ticks[i] != want {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
	tk.Stop()
	e.RunFor(time.Minute)
	if len(ticks) != 3 {
		t.Error("ticker fired after Stop")
	}
}

func TestTickerStopFromWithinCallback(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk, err := e.Every(time.Second, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	e.RunFor(time.Minute)
	if n != 2 {
		t.Errorf("ticks = %d, want 2", n)
	}
}

func TestEveryValidation(t *testing.T) {
	e := NewEngine()
	if _, err := e.Every(0, func() {}); err == nil {
		t.Error("want error for zero interval")
	}
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		if _, err := e.After(time.Duration(i)*time.Second, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	n, done := e.Drain(100)
	if n != 5 || !done {
		t.Errorf("drain = %d, %v", n, done)
	}
	// Runaway process bounded by maxSteps.
	var reschedule func()
	reschedule = func() {
		if _, err := e.After(time.Second, reschedule); err != nil {
			t.Error(err)
		}
	}
	reschedule()
	n, done = e.Drain(10)
	if n != 10 || done {
		t.Errorf("runaway drain = %d, %v", n, done)
	}
	if e.Steps() == 0 {
		t.Error("steps counter not advancing")
	}
}

func TestWallClock(t *testing.T) {
	var c Clock = WallClock{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("WallClock.Now outside bracket")
	}
}
