package sim

import "sync"

// FanOut runs fn(0) … fn(n-1) and waits for all of them. With n == 1 it
// calls fn inline on the caller's goroutine — no goroutine, no
// synchronization, and therefore exactly the single-threaded execution the
// deterministic engine contract requires. With n >= 2 each index runs on its
// own goroutine; callers must ensure the work items share no mutable state
// except through their own synchronization.
//
// This is the one concurrency primitive the simulation stack uses for
// intra-tick parallelism (the sharded market plane fans a tick out across
// shards); keeping it here makes the n == 1 inline guarantee — the basis of
// the 1-shard bit-for-bit compatibility contract — easy to audit.
func FanOut(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
