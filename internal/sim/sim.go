// Package sim provides the discrete-event simulation engine under the grid
// market experiments: a virtual clock, an event queue, and periodic
// processes. The market services (auctioneers, agents, job managers) are
// written against the Clock interface so the exact same code runs in real
// time behind the HTTP daemons and in virtual time inside the experiment
// harnesses, where 40 hours of grid activity replay in milliseconds.
package sim

import (
	"container/heap"
	"errors"
	"time"
)

// Clock supplies the current time. Implementations: *Engine (virtual) and
// WallClock (real).
type Clock interface {
	Now() time.Time
}

// WallClock is the real-time Clock used by the daemons.
type WallClock struct{}

// Now returns the current wall time.
func (WallClock) Now() time.Time { return time.Now() }

// Epoch is the virtual time origin of every simulation.
var Epoch = time.Date(2006, time.June, 19, 0, 0, 0, 0, time.UTC) // HPDC'06 week

// event is a scheduled callback. Events are pooled: after firing (or being
// popped as cancelled) the struct returns to the engine's free list and its
// generation is bumped, so stale Handles can no longer touch it.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among simultaneous events
	fn  func()
	idx int
	gen uint64 // incremented on recycle; Handles bind to a generation
	off bool   // cancelled
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; simulations are deterministic by construction. Distinct
// engines share nothing, so independent replications may run concurrently.
type Engine struct {
	now   time.Time
	queue eventQueue
	seq   uint64
	steps uint64
	free  []*event // recycled events, reused by At/After
}

// defaultEventCapacity pre-sizes the heap and free list: a paper-scale world
// keeps a few hundred events in flight (one ticker per market plus task
// completions), so starting here avoids the append-doubling walk on every
// fresh replication.
const defaultEventCapacity = 256

func newEngine(start time.Time) *Engine {
	e := &Engine{
		now:   start,
		queue: make(eventQueue, 0, defaultEventCapacity),
		free:  make([]*event, 0, defaultEventCapacity),
	}
	// One contiguous slab instead of per-event allocations.
	slab := make([]event, defaultEventCapacity)
	for i := range slab {
		e.free = append(e.free, &slab[i])
	}
	return e
}

// NewEngine returns an engine whose clock starts at Epoch.
func NewEngine() *Engine {
	return newEngine(Epoch)
}

// NewEngineAt returns an engine starting at the given instant — used by
// daemons that drive a simulation engine along the wall clock.
func NewEngineAt(start time.Time) *Engine {
	return newEngine(start)
}

// alloc takes an event from the free list, growing it when empty.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle bumps the event's generation (invalidating outstanding Handles),
// drops the callback so captured state can be collected, and returns the
// struct to the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.off = false
	e.free = append(e.free, ev)
}

// Now returns the current virtual time, satisfying Clock.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns virtual time since Epoch.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(Epoch) }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.off {
			n++
		}
	}
	return n
}

// Handle identifies a scheduled event so it can be cancelled. The handle
// remembers the event's generation, so one that outlives its event (which
// may have been recycled for a new schedule) cancels nothing.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil && h.ev.gen == h.gen {
		h.ev.off = true
	}
}

// ErrPastEvent is returned when scheduling before the current virtual time.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// At schedules fn at absolute virtual time t.
func (e *Engine) At(t time.Time, fn func()) (Handle, error) {
	if t.Before(e.now) {
		return Handle{}, ErrPastEvent
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return Handle{ev: ev, gen: ev.gen}, nil
}

// After schedules fn d from now. Negative d is an error.
func (e *Engine) After(d time.Duration, fn func()) (Handle, error) {
	return e.At(e.now.Add(d), fn)
}

// Every schedules fn every interval, starting one interval from now, until
// the returned Ticker is stopped. fn runs with the clock set to each tick.
func (e *Engine) Every(interval time.Duration, fn func()) (*Ticker, error) {
	if interval <= 0 {
		return nil, errors.New("sim: non-positive tick interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	if err := t.arm(); err != nil {
		return nil, err
	}
	return t, nil
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	engine   *Engine
	interval time.Duration
	fn       func()
	handle   Handle
	stopped  bool
}

func (t *Ticker) arm() error {
	h, err := t.engine.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			_ = t.arm() // After from current tick cannot be in the past
		}
	})
	if err != nil {
		return err
	}
	t.handle = h
	return nil
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}

// Step executes the next event, advancing the clock. It reports false when
// the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.off {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.steps++
		fn := ev.fn
		// Recycle before running: the callback's own rescheduling can then
		// reuse the slot, and the generation bump shields stale Handles.
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is exhausted or the next event is
// after t; the clock finishes exactly at t.
func (e *Engine) RunUntil(t time.Time) {
	for e.queue.Len() > 0 {
		// Peek.
		next := e.queue[0]
		if next.off {
			e.recycle(heap.Pop(&e.queue).(*event))
			continue
		}
		if next.at.After(t) {
			break
		}
		e.Step()
	}
	if t.After(e.now) {
		e.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now.Add(d))
}

// Drain executes every remaining event (bounded by maxSteps to catch
// runaway self-rescheduling processes). It returns the number of events run
// and whether the queue fully drained.
func (e *Engine) Drain(maxSteps int) (int, bool) {
	for i := 0; i < maxSteps; i++ {
		if !e.Step() {
			return i, true
		}
	}
	return maxSteps, e.queue.Len() == 0
}
