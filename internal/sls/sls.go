// Package sls implements Tycoon's Service Location Service: the directory
// that "maintains information on available resources" (paper §2.2).
// Auctioneers register and heartbeat their host descriptions; agents query
// for candidate hosts to run the Best Response bid distribution over.
//
// Entries expire when a configurable TTL passes without a heartbeat, so a
// crashed auctioneer silently drops out of placement decisions — the
// decentralization property the paper's architecture relies on.
package sls

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tycoongrid/internal/sim"
)

// HostInfo describes one auctioneer-managed host.
type HostInfo struct {
	ID          string  // unique host id
	Endpoint    string  // where the auctioneer listens (URL or logical name)
	CapacityMHz float64 // total CPU capacity of the host
	CPUs        int     // physical CPUs
	MaxVMs      int     // virtual machine limit (paper: ~15x physical nodes)
	SpotPrice   float64 // latest spot price, credits/hour, advisory
	Site        string  // owning site, e.g. "hplabs", "sics"
}

// entry is a registered host plus bookkeeping.
type entry struct {
	info HostInfo
	seen time.Time
}

// Registry is the in-memory SLS. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	ttl   time.Duration
	clock sim.Clock
	hosts map[string]*entry
}

// Option customizes a Registry.
type Option func(*Registry)

// WithTTL sets the heartbeat expiry (default 60 s).
func WithTTL(ttl time.Duration) Option {
	return func(r *Registry) { r.ttl = ttl }
}

// New returns an empty registry using clock for expiry decisions.
func New(clock sim.Clock, opts ...Option) *Registry {
	if clock == nil {
		clock = sim.WallClock{}
	}
	r := &Registry{ttl: 60 * time.Second, clock: clock, hosts: make(map[string]*entry)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Errors returned by the registry.
var (
	ErrUnknownHost = errors.New("sls: unknown host")
	ErrBadHost     = errors.New("sls: invalid host description")
)

// Register adds or replaces a host record and marks it alive now.
func (r *Registry) Register(h HostInfo) error {
	if h.ID == "" || h.CapacityMHz <= 0 || h.CPUs <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadHost, h)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hosts[h.ID] = &entry{info: h, seen: r.clock.Now()}
	return nil
}

// Heartbeat refreshes a host's liveness and optionally its spot price.
func (r *Registry) Heartbeat(id string, spotPrice float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hosts[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, id)
	}
	e.seen = r.clock.Now()
	if spotPrice >= 0 {
		e.info.SpotPrice = spotPrice
	}
	return nil
}

// Deregister removes a host.
func (r *Registry) Deregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.hosts[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownHost, id)
	}
	delete(r.hosts, id)
	return nil
}

// Lookup returns a live host's record.
func (r *Registry) Lookup(id string) (HostInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.hosts[id]
	if !ok || r.expired(e) {
		return HostInfo{}, fmt.Errorf("%w: %q", ErrUnknownHost, id)
	}
	return e.info, nil
}

// Query selects live hosts matching the filter, sorted by ID for
// deterministic placement.
type Query struct {
	MinCapacityMHz float64
	MaxSpotPrice   float64 // 0 = no limit
	Site           string  // "" = any
	Limit          int     // 0 = all
}

// Select returns live hosts matching q.
func (r *Registry) Select(q Query) []HostInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []HostInfo
	for _, e := range r.hosts {
		if r.expired(e) {
			continue
		}
		h := e.info
		if h.CapacityMHz < q.MinCapacityMHz {
			continue
		}
		if q.MaxSpotPrice > 0 && h.SpotPrice > q.MaxSpotPrice {
			continue
		}
		if q.Site != "" && h.Site != q.Site {
			continue
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// All returns every live host.
func (r *Registry) All() []HostInfo { return r.Select(Query{}) }

// Prune removes expired entries and returns how many were dropped.
func (r *Registry) Prune() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for id, e := range r.hosts {
		if r.expired(e) {
			delete(r.hosts, id)
			n++
		}
	}
	return n
}

// Len returns the number of live hosts.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.hosts {
		if !r.expired(e) {
			n++
		}
	}
	return n
}

func (r *Registry) expired(e *entry) bool {
	return r.clock.Now().Sub(e.seen) > r.ttl
}
