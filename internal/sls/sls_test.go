package sls

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tycoongrid/internal/sim"
)

func host(id string, mhz float64) HostInfo {
	return HostInfo{ID: id, Endpoint: "mem://" + id, CapacityMHz: mhz, CPUs: 2, MaxVMs: 30}
}

func TestRegisterAndLookup(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng)
	if err := r.Register(host("h1", 2800)); err != nil {
		t.Fatal(err)
	}
	h, err := r.Lookup("h1")
	if err != nil {
		t.Fatal(err)
	}
	if h.CapacityMHz != 2800 {
		t.Errorf("capacity = %v", h.CapacityMHz)
	}
	if _, err := r.Lookup("ghost"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("ghost: %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New(sim.NewEngine())
	bad := []HostInfo{
		{},
		{ID: "x", CapacityMHz: 0, CPUs: 1},
		{ID: "x", CapacityMHz: 100, CPUs: 0},
	}
	for i, h := range bad {
		if err := r.Register(h); !errors.Is(err, ErrBadHost) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestRegisterReplaces(t *testing.T) {
	r := New(sim.NewEngine())
	if err := r.Register(host("h1", 1000)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(host("h1", 3000)); err != nil {
		t.Fatal(err)
	}
	h, _ := r.Lookup("h1")
	if h.CapacityMHz != 3000 {
		t.Errorf("capacity = %v, replace failed", h.CapacityMHz)
	}
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
}

func TestTTLExpiry(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, WithTTL(30*time.Second))
	if err := r.Register(host("h1", 1000)); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(29 * time.Second)
	if _, err := r.Lookup("h1"); err != nil {
		t.Errorf("inside TTL: %v", err)
	}
	eng.RunFor(2 * time.Second)
	if _, err := r.Lookup("h1"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("after TTL: %v", err)
	}
	if r.Len() != 0 {
		t.Errorf("len = %d after expiry", r.Len())
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, WithTTL(30*time.Second))
	if err := r.Register(host("h1", 1000)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		eng.RunFor(20 * time.Second)
		if err := r.Heartbeat("h1", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	h, err := r.Lookup("h1")
	if err != nil {
		t.Fatalf("heartbeated host expired: %v", err)
	}
	if h.SpotPrice != 4 {
		t.Errorf("spot price = %v, want 4", h.SpotPrice)
	}
	// Negative price means "no update".
	if err := r.Heartbeat("h1", -1); err != nil {
		t.Fatal(err)
	}
	h, _ = r.Lookup("h1")
	if h.SpotPrice != 4 {
		t.Errorf("negative heartbeat price overwrote: %v", h.SpotPrice)
	}
	if err := r.Heartbeat("ghost", 0); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("ghost heartbeat: %v", err)
	}
}

func TestDeregister(t *testing.T) {
	r := New(sim.NewEngine())
	if err := r.Register(host("h1", 1000)); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("h1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister("h1"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("double deregister: %v", err)
	}
}

func TestSelectFilters(t *testing.T) {
	r := New(sim.NewEngine())
	for i := 1; i <= 10; i++ {
		h := host(fmt.Sprintf("h%02d", i), float64(i)*500)
		h.SpotPrice = float64(i)
		if i%2 == 0 {
			h.Site = "hplabs"
		} else {
			h.Site = "sics"
		}
		if err := r.Register(h); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.All()); got != 10 {
		t.Fatalf("all = %d", got)
	}
	if got := len(r.Select(Query{MinCapacityMHz: 2600})); got != 5 {
		t.Errorf("min capacity filter = %d, want 5", got)
	}
	if got := len(r.Select(Query{MaxSpotPrice: 3})); got != 3 {
		t.Errorf("max price filter = %d, want 3", got)
	}
	if got := len(r.Select(Query{Site: "hplabs"})); got != 5 {
		t.Errorf("site filter = %d, want 5", got)
	}
	if got := len(r.Select(Query{Limit: 4})); got != 4 {
		t.Errorf("limit = %d, want 4", got)
	}
	// Deterministic order.
	hosts := r.All()
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1].ID >= hosts[i].ID {
			t.Fatal("hosts not sorted by ID")
		}
	}
}

func TestPrune(t *testing.T) {
	eng := sim.NewEngine()
	r := New(eng, WithTTL(10*time.Second))
	for i := 0; i < 4; i++ {
		if err := r.Register(host(fmt.Sprintf("h%d", i), 1000)); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(5 * time.Second)
	if err := r.Heartbeat("h0", -1); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(6 * time.Second)
	if n := r.Prune(); n != 3 {
		t.Errorf("pruned %d, want 3", n)
	}
	if r.Len() != 1 {
		t.Errorf("len = %d, want 1", r.Len())
	}
}
