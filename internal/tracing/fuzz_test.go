package tracing

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent checks the header decoder never panics, only accepts
// contexts that are valid, and that anything it accepts survives a
// format -> re-parse round trip with the identical SpanContext. The decoder
// normalizes on the way in (case, surrounding whitespace, extra flag bits),
// so the round trip is on the decoded value, not the wire bytes.
func FuzzParseTraceparent(f *testing.F) {
	seeds := []string{
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00",
		"00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01",
		"  00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01  ",
		"cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",
		"",
		"traceparent",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sc, ok := ParseTraceparent(in)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected input %q returned non-zero context %+v", in, sc)
			}
			return // rejection is fine; panics are not
		}
		if !sc.Valid() {
			t.Fatalf("accepted input %q decoded to invalid context %+v", in, sc)
		}
		out := FormatTraceparent(sc)
		if out == "" {
			t.Fatalf("valid context from %q failed to format: %+v", in, sc)
		}
		if len(out) != tpTotalLen || strings.ToLower(out) != out {
			t.Fatalf("formatted header %q is not canonical", out)
		}
		sc2, ok := ParseTraceparent(out)
		if !ok {
			t.Fatalf("formatted header rejected: %q -> %q", in, out)
		}
		if sc2 != sc {
			t.Fatalf("round trip changed context: %+v vs %+v", sc, sc2)
		}
	})
}
