package tracing

import "strings"

// TraceparentHeader is the W3C Trace Context header name carrying a span's
// identity between daemons.
const TraceparentHeader = "traceparent"

// traceparent wire constants (W3C Trace Context, version 00):
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
const (
	tpVersion    = "00"
	flagSampled  = byte(0x01)
	tpTotalLen   = 2 + 1 + 32 + 1 + 16 + 1 + 2
	tpSampledSet = "01"
	tpSampledOff = "00"
)

// FormatTraceparent renders sc as a traceparent header value. An invalid
// context renders as "" (callers skip the header).
func FormatTraceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	flags := tpSampledOff
	if sc.Sampled {
		flags = tpSampledSet
	}
	var b strings.Builder
	b.Grow(tpTotalLen)
	b.WriteString(tpVersion)
	b.WriteByte('-')
	b.WriteString(sc.TraceID.String())
	b.WriteByte('-')
	b.WriteString(sc.SpanID.String())
	b.WriteByte('-')
	b.WriteString(flags)
	return b.String()
}

// ParseTraceparent decodes a traceparent header value. It accepts any
// version except the reserved "ff", per the spec's forward-compatibility
// rule, and rejects all-zero ids.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	if len(h) < tpTotalLen {
		return SpanContext{}, false
	}
	// version "ff" is forbidden; later versions may append fields after the
	// flags, so only the prefix is parsed.
	if h[0:2] == "ff" || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	if len(h) > tpTotalLen && h[0:2] == tpVersion {
		return SpanContext{}, false // version 00 has exactly four fields
	}
	tid, ok := ParseTraceID(h[3:35])
	if !ok {
		return SpanContext{}, false
	}
	var sid SpanID
	if !parseHex(h[36:52], sid[:]) || sid.IsZero() {
		return SpanContext{}, false
	}
	hi, lo := hexVal(h[53]), hexVal(h[54])
	if hi == 0xff || lo == 0xff {
		return SpanContext{}, false
	}
	flags := hi<<4 | lo
	return SpanContext{TraceID: tid, SpanID: sid, Sampled: flags&flagSampled != 0}, true
}

// parseHex decodes exactly len(dst)*2 lowercase/uppercase hex digits.
func parseHex(s string, dst []byte) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, lo := hexVal(s[2*i]), hexVal(s[2*i+1])
		if hi == 0xff || lo == 0xff {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	default:
		return 0xff
	}
}
