package tracing

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"
)

// sortSpans orders spans by start time, breaking ties by span id, so tree
// reconstruction is deterministic.
func sortSpans(spans []*Span) {
	sort.Slice(spans, func(i, j int) bool {
		si, sj := spans[i], spans[j]
		if !si.start.Equal(sj.start) {
			return si.start.Before(sj.start)
		}
		return bytes.Compare(si.id[:], sj.id[:]) < 0
	})
}

// Node is one span plus its children in a reconstructed trace tree.
type Node struct {
	Span     *Span
	Children []*Node
}

// BuildTree reconstructs the parent/child forest of a trace's spans. Spans
// whose parent is missing (evicted from the ring, or remote and never
// collected here) become roots, so a partial trace still renders.
func BuildTree(spans []*Span) []*Node {
	sorted := append([]*Span(nil), spans...)
	sortSpans(sorted)
	nodes := make(map[SpanID]*Node, len(sorted))
	for _, s := range sorted {
		nodes[s.id] = &Node{Span: s}
	}
	var roots []*Node
	for _, s := range sorted {
		n := nodes[s.id]
		if p, ok := nodes[s.parent]; ok && !s.parent.IsZero() && s.parent != s.id {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// RenderTree renders a trace's spans as an indented ASCII tree with
// durations, errors and event counts — the marketbench exit report and the
// gridclient `trace` subcommand both print this.
func RenderTree(spans []*Span) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", spans[0].traceID.String(), len(spans))
	for _, root := range BuildTree(spans) {
		renderNode(&b, root, 0)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, depth int) {
	s := n.Span
	b.WriteString(strings.Repeat("  ", depth))
	dur := "live"
	if d := s.Duration(); !s.EndTime().IsZero() {
		dur = d.Round(time.Microsecond).String()
	}
	fmt.Fprintf(b, "- %s [%s] %s", s.Name(), s.id.String(), dur)
	if errMsg := s.Err(); errMsg != "" {
		fmt.Fprintf(b, " ERROR=%q", errMsg)
	}
	if ev := len(s.Events()); ev > 0 {
		fmt.Fprintf(b, " events=%d", ev)
	}
	if d := s.Dropped(); d > 0 {
		fmt.Fprintf(b, " dropped=%d", d)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}

// TraceSummary is one trace's aggregate view, as listed by /debug/traces.
type TraceSummary struct {
	TraceID  TraceID
	Root     string // root span name ("" when the root was evicted)
	Spans    int
	Errors   int
	Start    time.Time
	Duration time.Duration // span of [earliest start, latest end]
}

// Summaries aggregates every trace with at least one completed span in the
// ring, most recently started first.
func (t *Tracer) Summaries() []TraceSummary {
	t.mu.Lock()
	byTrace := make(map[TraceID][]*Span)
	for _, s := range t.ring {
		byTrace[s.traceID] = append(byTrace[s.traceID], s)
	}
	for _, s := range t.active {
		if _, ok := byTrace[s.traceID]; ok {
			byTrace[s.traceID] = append(byTrace[s.traceID], s)
		}
	}
	t.mu.Unlock()

	out := make([]TraceSummary, 0, len(byTrace))
	for id, spans := range byTrace {
		sortSpans(spans)
		sum := TraceSummary{TraceID: id, Spans: len(spans), Start: spans[0].start}
		var latest time.Time
		for _, s := range spans {
			if s.Err() != "" {
				sum.Errors++
			}
			if e := s.EndTime(); e.After(latest) {
				latest = e
			}
			if s.parent.IsZero() && sum.Root == "" {
				sum.Root = s.name
			}
		}
		if sum.Root == "" {
			sum.Root = spans[0].name
		}
		if !latest.IsZero() {
			sum.Duration = latest.Sub(sum.Start)
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Slowest returns the stored trace with the longest duration, or false when
// the ring is empty. marketbench prints its tree at exit.
func (t *Tracer) Slowest() (TraceSummary, bool) {
	var best TraceSummary
	found := false
	for _, s := range t.Summaries() {
		if !found || s.Duration > best.Duration {
			best, found = s, true
		}
	}
	return best, found
}
