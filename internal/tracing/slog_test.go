package tracing

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func logLine(t *testing.T, buf *bytes.Buffer) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		t.Fatalf("bad JSON log line %q: %v", buf.String(), err)
	}
	return m
}

func TestHandlerStampsContextSpan(t *testing.T) {
	tr := newTestTracer()
	var buf bytes.Buffer
	logger := slog.New(NewHandler(slog.NewJSONHandler(&buf, nil), tr))

	s, ctx := tr.StartSpan(context.Background(), "op")
	logger.InfoContext(ctx, "hello")
	s.End()

	m := logLine(t, &buf)
	if m["trace_id"] != s.Context().TraceID.String() || m["span_id"] != s.Context().SpanID.String() {
		t.Fatalf("log line missing span ids: %v", m)
	}
}

func TestHandlerStampsScopeSpan(t *testing.T) {
	tr := newTestTracer()
	var buf bytes.Buffer
	logger := slog.New(NewHandler(slog.NewJSONHandler(&buf, nil), tr))

	s, _ := tr.StartSpan(context.Background(), "op")
	release := tr.PushScope(s)
	logger.Info("scoped") // background ctx — falls back to the scope stack
	release()
	s.End()

	m := logLine(t, &buf)
	if m["trace_id"] != s.Context().TraceID.String() {
		t.Fatalf("scope span not stamped: %v", m)
	}
}

func TestHandlerNoSpanNoStamp(t *testing.T) {
	tr := newTestTracer()
	var buf bytes.Buffer
	logger := slog.New(NewHandler(slog.NewJSONHandler(&buf, nil), tr))
	logger.Info("plain")
	m := logLine(t, &buf)
	if _, ok := m["trace_id"]; ok {
		t.Fatalf("unexpected trace_id on plain line: %v", m)
	}
}

func TestInitSlogServiceAttr(t *testing.T) {
	var buf bytes.Buffer
	logger := InitSlog("bankd", &buf, slog.LevelInfo)
	defer slog.SetDefault(slog.New(slog.NewJSONHandler(bytes.NewBuffer(nil), nil)))
	logger.Info("up")
	m := logLine(t, &buf)
	if m["service"] != "bankd" {
		t.Fatalf("missing service attr: %v", m)
	}
	buf.Reset()
	logger.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug leaked at info level: %q", buf.String())
	}
}
