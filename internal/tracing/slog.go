package tracing

import (
	"context"
	"io"
	"log/slog"
)

// Handler wraps a slog.Handler and stamps trace_id/span_id onto every record
// whose context (or, failing that, the tracer's current scope) carries a
// span. All daemons share it via InitSlog so log lines join up with traces.
type Handler struct {
	inner  slog.Handler
	tracer *Tracer
}

// NewHandler wraps inner; a nil tracer means Default().
func NewHandler(inner slog.Handler, tracer *Tracer) *Handler {
	if tracer == nil {
		tracer = Default()
	}
	return &Handler{inner: inner, tracer: tracer}
}

// Enabled implements slog.Handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle stamps the active span's ids onto the record, then delegates.
func (h *Handler) Handle(ctx context.Context, rec slog.Record) error {
	s := SpanFromContext(ctx)
	if s == nil {
		s = h.tracer.Current()
	}
	if sc := s.Context(); sc.Valid() {
		rec.AddAttrs(
			slog.String("trace_id", sc.TraceID.String()),
			slog.String("span_id", sc.SpanID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs implements slog.Handler.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &Handler{inner: h.inner.WithAttrs(attrs), tracer: h.tracer}
}

// WithGroup implements slog.Handler.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name), tracer: h.tracer}
}

// InitSlog installs the process-wide logger: JSON records to w with a
// "service" attribute on every line and trace/span ids stamped from the
// active span. Returns the logger for callers that want a handle.
func InitSlog(service string, w io.Writer, level slog.Level) *slog.Logger {
	inner := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	logger := slog.New(NewHandler(inner, Default())).With(slog.String("service", service))
	slog.SetDefault(logger)
	return logger
}
