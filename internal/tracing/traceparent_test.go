package tracing

import "testing"

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Sampled: true}
	for i := range sc.TraceID {
		sc.TraceID[i] = byte(i + 1)
	}
	for i := range sc.SpanID {
		sc.SpanID[i] = byte(0xa0 + i)
	}
	h := FormatTraceparent(sc)
	want := "00-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01"
	if h != want {
		t.Fatalf("format = %q, want %q", h, want)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v", got, ok)
	}

	sc.Sampled = false
	got, ok = ParseTraceparent(FormatTraceparent(sc))
	if !ok || got.Sampled {
		t.Fatalf("unsampled flag lost: %+v ok=%v", got, ok)
	}
}

func TestFormatTraceparentInvalid(t *testing.T) {
	if h := FormatTraceparent(SpanContext{}); h != "" {
		t.Fatalf("invalid context formatted as %q", h)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7",      // missing flags
		"ff-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01",   // reserved version
		"00-00000000000000000000000000000000-a0a1a2a3a4a5a6a7-01",   // zero trace id
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01",   // zero span id
		"00-0102030405060708090a0b0c0d0e0fXY-a0a1a2a3a4a5a6a7-01",   // bad hex
		"00-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-0Z",   // bad flags
		"00-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01-x", // v00 extra field
		"00_0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01",   // bad delimiter
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Future versions may carry extra fields after the flags; the prefix
	// still parses (W3C forward compatibility).
	h := "01-0102030405060708090a0b0c0d0e0f10-a0a1a2a3a4a5a6a7-01-extrafield"
	sc, ok := ParseTraceparent(h)
	if !ok || !sc.Sampled {
		t.Fatalf("future version rejected: %+v ok=%v", sc, ok)
	}
	// Whitespace is trimmed.
	if _, ok := ParseTraceparent("  " + FormatTraceparent(sc) + "  "); !ok {
		t.Fatal("padded header rejected")
	}
}
