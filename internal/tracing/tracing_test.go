package tracing

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func newTestTracer(opts ...Option) *Tracer {
	base := []Option{WithSeed(42)}
	return New(append(base, opts...)...)
}

func TestSpanLifecycle(t *testing.T) {
	tr := newTestTracer()
	root, ctx := tr.StartSpan(context.Background(), "root", String("k", "v"))
	if !root.Recording() {
		t.Fatal("root should record at ratio 1")
	}
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("ctx span = %v, want root", got)
	}
	child, _ := tr.StartSpan(ctx, "child")
	cc, rc := child.Context(), root.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatal("child joined a different trace")
	}
	if child.parent != rc.SpanID {
		t.Fatal("child parent link wrong")
	}
	child.AddEvent("ev", String("a", "b"))
	child.EndErr(errors.New("boom"))
	root.End()

	spans := tr.Spans(rc.TraceID)
	if len(spans) != 2 {
		t.Fatalf("stored %d spans, want 2", len(spans))
	}
	if spans[0] != root {
		t.Fatal("spans not sorted by start time")
	}
	if child.Err() != "boom" {
		t.Fatalf("child err = %q", child.Err())
	}
	if evs := child.Events(); len(evs) != 1 || evs[0].Name != "ev" {
		t.Fatalf("child events = %+v", evs)
	}
	if d := root.Duration(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetAttr(String("k", "v"))
	s.AddEvent("ev")
	s.AddEventAt(time.Now(), "ev2")
	s.End()
	s.EndErr(errors.New("x"))
	if s.Recording() || s.StartChild("c") != nil || s.Name() != "" {
		t.Fatal("nil span methods must be no-ops")
	}
	if s.Context().Valid() {
		t.Fatal("nil span context must be invalid")
	}
}

func TestSamplingZeroRecordsNothing(t *testing.T) {
	tr := newTestTracer()
	tr.SetSampleRatio(0)
	s, ctx := tr.StartSpan(context.Background(), "root")
	if s.Recording() {
		t.Fatal("ratio 0 span should not record")
	}
	// Children inherit the decision and stay cheap.
	c, _ := tr.StartSpan(ctx, "child")
	if c.Recording() {
		t.Fatal("child of unsampled span should not record")
	}
	c.End()
	s.End()
	started, sampled, stored, live := tr.Stats()
	if started != 2 || sampled != 0 || stored != 0 || live != 0 {
		t.Fatalf("stats = %d %d %d %d", started, sampled, stored, live)
	}
}

func TestChildInheritsSampledDecisionAcrossRatioChange(t *testing.T) {
	tr := newTestTracer()
	root, ctx := tr.StartSpan(context.Background(), "root")
	tr.SetSampleRatio(0) // flip after the root rolled
	child, _ := tr.StartSpan(ctx, "child")
	if !child.Recording() {
		t.Fatal("child must inherit the parent's sampled=true decision")
	}
	child.End()
	root.End()
}

func TestRingEviction(t *testing.T) {
	tr := newTestTracer(WithCapacity(4))
	var last SpanContext
	for i := 0; i < 10; i++ {
		s, _ := tr.StartSpan(context.Background(), fmt.Sprintf("s%d", i))
		last = s.Context()
		s.End()
	}
	_, _, stored, _ := tr.Stats()
	if stored != 4 {
		t.Fatalf("stored = %d, want 4", stored)
	}
	if got := tr.Spans(last.TraceID); len(got) != 1 {
		t.Fatalf("latest trace evicted too early: %d spans", len(got))
	}
}

func TestEventAndAttrCaps(t *testing.T) {
	tr := newTestTracer()
	s, _ := tr.StartSpan(context.Background(), "busy")
	for i := 0; i < MaxEventsPerSpan+10; i++ {
		s.AddEvent("ev")
	}
	for i := 0; i < MaxAttrsPerSpan+5; i++ {
		s.SetAttr(String("k", "v"))
	}
	if n := len(s.Events()); n != MaxEventsPerSpan {
		t.Fatalf("events = %d, want cap %d", n, MaxEventsPerSpan)
	}
	if n := len(s.Attrs()); n != MaxAttrsPerSpan {
		t.Fatalf("attrs = %d, want cap %d", n, MaxAttrsPerSpan)
	}
	if d := s.Dropped(); d != 15 {
		t.Fatalf("dropped = %d, want 15", d)
	}
	s.End()
}

func TestEndTwiceIsIdempotent(t *testing.T) {
	tr := newTestTracer()
	s, _ := tr.StartSpan(context.Background(), "once")
	s.End()
	end1 := s.EndTime()
	s.EndErr(errors.New("late"))
	if s.Err() != "" || !s.EndTime().Equal(end1) {
		t.Fatal("second End mutated the span")
	}
	_, _, stored, _ := tr.Stats()
	if stored != 1 {
		t.Fatalf("stored = %d, want 1 (no double-record)", stored)
	}
}

func TestScopeStack(t *testing.T) {
	tr := newTestTracer()
	if tr.Current() != nil {
		t.Fatal("fresh tracer should have empty scope")
	}
	a, _ := tr.StartSpan(context.Background(), "a")
	relA := tr.PushScope(a)
	if tr.Current() != a {
		t.Fatal("Current != a after push")
	}
	// StartSpan with a background ctx picks up the scope as parent.
	b, _ := tr.StartSpan(context.Background(), "b")
	if b.Context().TraceID != a.Context().TraceID {
		t.Fatal("scope parent not used")
	}
	relB := tr.PushScope(b)
	if tr.Current() != b {
		t.Fatal("Current != b")
	}
	relB()
	relB() // double release is safe
	if tr.Current() != a {
		t.Fatal("Current != a after inner release")
	}
	relA()
	if tr.Current() != nil {
		t.Fatal("scope not empty after releases")
	}
	relNil := tr.PushScope(nil)
	relNil()
	b.End()
	a.End()
}

func TestStartRemoteContinuesTrace(t *testing.T) {
	tr := newTestTracer()
	up, _ := tr.StartSpan(context.Background(), "client")
	hdr := FormatTraceparent(up.Context())
	sc, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", hdr)
	}
	srv := tr.StartRemote(sc, "server")
	if srv.Context().TraceID != up.Context().TraceID {
		t.Fatal("remote span did not join the trace")
	}
	if srv.parent != up.Context().SpanID {
		t.Fatal("remote span parent mismatch")
	}
	srv.End()
	up.End()
}

func TestStartRemoteInvalidStartsRoot(t *testing.T) {
	tr := newTestTracer()
	s := tr.StartRemote(SpanContext{}, "orphan")
	if !s.Context().Valid() {
		t.Fatal("orphan should start a fresh root trace")
	}
	s.End()
}

func TestReset(t *testing.T) {
	tr := newTestTracer()
	s, _ := tr.StartSpan(context.Background(), "x")
	tr.PushScope(s)
	s.End()
	tr.Reset()
	_, _, stored, live := tr.Stats()
	if stored != 0 || live != 0 || tr.Current() != nil {
		t.Fatal("Reset left state behind")
	}
}

func TestAddEventAtUsesExplicitTime(t *testing.T) {
	tr := newTestTracer()
	s, _ := tr.StartSpan(context.Background(), "sim")
	at := time.Date(2006, 6, 19, 12, 0, 0, 0, time.UTC) // engine time
	s.AddEventAt(at, "placed", String("price", "0.25"))
	evs := s.Events()
	if len(evs) != 1 || !evs[0].Time.Equal(at) {
		t.Fatalf("events = %+v", evs)
	}
	s.End()
}

func TestConcurrentSpansNoRace(t *testing.T) {
	tr := newTestTracer()
	root, ctx := tr.StartSpan(context.Background(), "root")
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 50; j++ {
				s, _ := tr.StartSpan(ctx, "worker")
				s.AddEvent("tick")
				s.SetAttr(String("i", "x"))
				s.End()
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	if got := tr.Spans(root.Context().TraceID); len(got) < 100 {
		t.Fatalf("spans = %d, want >= 100", len(got))
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	id := func() string {
		tr := New(WithSeed(7))
		s, _ := tr.StartSpan(context.Background(), "x")
		defer s.End()
		return s.Context().TraceID.String()
	}
	if id() != id() {
		t.Fatal("WithSeed should make trace ids reproducible")
	}
}

func TestRenderTreeShape(t *testing.T) {
	tr := newTestTracer()
	root, ctx := tr.StartSpan(context.Background(), "submit")
	c1, cctx := tr.StartSpan(ctx, "bid")
	c2, _ := tr.StartSpan(cctx, "transfer")
	c2.EndErr(errors.New("no funds"))
	c1.End()
	root.AddEvent("done")
	root.End()

	out := RenderTree(tr.Spans(root.Context().TraceID))
	for _, want := range []string{"submit", "bid", "transfer", `ERROR="no funds"`, "events=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree missing %q:\n%s", want, out)
		}
	}
	// transfer nests two levels under submit.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "transfer") && !strings.HasPrefix(line, "    - ") {
			t.Fatalf("transfer not at depth 2: %q", line)
		}
	}
}

func TestSummariesAndSlowest(t *testing.T) {
	now := time.Unix(0, 0)
	tr := newTestTracer(WithNow(func() time.Time { return now }))

	fast, _ := tr.StartSpan(context.Background(), "fast")
	now = now.Add(10 * time.Millisecond)
	fast.End()

	slow, sctx := tr.StartSpan(context.Background(), "slow")
	child, _ := tr.StartSpan(sctx, "inner")
	now = now.Add(2 * time.Second)
	child.EndErr(errors.New("x"))
	slow.End()

	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries = %d, want 2", len(sums))
	}
	best, ok := tr.Slowest()
	if !ok || best.Root != "slow" {
		t.Fatalf("slowest = %+v ok=%v, want root 'slow'", best, ok)
	}
	if best.Spans != 2 || best.Errors != 1 {
		t.Fatalf("slowest spans=%d errors=%d", best.Spans, best.Errors)
	}
	if best.Duration != 2*time.Second {
		t.Fatalf("slowest duration = %v", best.Duration)
	}
}

func TestBuildTreeOrphanBecomesRoot(t *testing.T) {
	tr := newTestTracer()
	// A span whose parent was never collected locally (remote parent).
	var remote SpanContext
	remote.TraceID, remote.SpanID = mustIDs(tr)
	remote.Sampled = true
	s := tr.StartRemote(remote, "server")
	s.End()
	roots := BuildTree(tr.Spans(s.Context().TraceID))
	if len(roots) != 1 || roots[0].Span != s {
		t.Fatalf("orphan should render as a root, got %d roots", len(roots))
	}
}

func mustIDs(t *Tracer) (TraceID, SpanID) { return t.newIDs(true) }
