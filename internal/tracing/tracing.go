// Package tracing is the repository's dependency-free distributed-tracing
// core: spans with parent links, attributes and timestamped events, recorded
// into a bounded in-memory ring with sampling, and propagated across daemon
// boundaries via W3C traceparent headers (traceparent.go).
//
// The motivation mirrors the accounting argument of the Tycoon and GridBank
// papers: a market allocator is only trustworthy when a single job can be
// followed end to end — submission, bidding, escrow transfers, VM placement,
// host failure, resubmission, completion. Metrics (internal/metrics) answer
// "how much"; this package answers "why did *this* job get *that* price".
//
// Two propagation styles coexist:
//
//   - context.Context carries the active span across HTTP boundaries
//     (ContextWithSpan / SpanFromContext); the httpapi middleware and the
//     retry-aware Caller translate it to and from traceparent headers.
//   - A tracer-level scope stack (PushScope / Current) carries the active
//     span through the single-threaded simulation core, where arc, agent,
//     auction and bank call each other synchronously without contexts. The
//     market engine is serialized behind one mutex (httpapi.JobService), so
//     a process-wide stack is race-free there; concurrent HTTP daemons use
//     contexts and never touch the scope stack.
//
// Hot paths stay cheap: Current is one atomic load, an unsampled span's
// methods are nil-check no-ops, and per-span attribute/event counts are
// capped so a runaway loop cannot grow memory without bound.
package tracing

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end trace (16 bytes, hex on the wire).
type TraceID [16]byte

// SpanID identifies one span within a trace (8 bytes, hex on the wire).
type SpanID [8]byte

// String renders the id as lowercase hex.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as lowercase hex.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// ParseTraceID decodes a 32-hex-digit trace id.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// SpanContext is the propagated identity of a span: what travels in a
// traceparent header. Sampled spans record; unsampled spans only carry ids so
// a downstream daemon still joins the right trace.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both ids are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Event is a timestamped occurrence within a span — the unit the per-job
// lifecycle timeline is assembled from.
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Per-span caps. A week-long simulated job can emit thousands of placement
// events; the caps bound memory while the dropped counter keeps the loss
// visible.
const (
	MaxEventsPerSpan = 512
	MaxAttrsPerSpan  = 64
)

// Span is one timed operation. All methods are safe on a nil receiver (the
// no-trace case) and safe for concurrent use.
type Span struct {
	tracer  *Tracer
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time
	sampled bool

	mu      sync.Mutex
	end     time.Time
	attrs   []Attr
	events  []Event
	dropped int
	errMsg  string
	ended   bool
}

// Context returns the span's propagated identity (zero when s is nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.id, Sampled: s.sampled}
}

// Parent returns the parent span id (zero for roots and nil spans).
func (s *Span) Parent() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parent
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartTime returns when the span began.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// EndTime returns when the span ended (zero while live).
func (s *Span) EndTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Duration returns end-start, or zero while the span is live.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Err returns the error message recorded by EndErr ("" when none).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// Recording reports whether the span stores data (false for nil and
// unsampled spans).
func (s *Span) Recording() bool { return s != nil && s.sampled }

// SetAttr appends attributes, up to MaxAttrsPerSpan.
func (s *Span) SetAttr(attrs ...Attr) {
	if !s.Recording() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range attrs {
		if len(s.attrs) >= MaxAttrsPerSpan {
			s.dropped++
			continue
		}
		s.attrs = append(s.attrs, a)
	}
}

// AddEvent records an event stamped with the tracer's clock.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if !s.Recording() {
		return
	}
	s.AddEventAt(s.tracer.now(), name, attrs...)
}

// AddEventAt records an event with an explicit timestamp — the simulation
// core stamps events with engine time so a job's timeline reads in simulated
// time even though the span itself is timed on the wall clock.
func (s *Span) AddEventAt(at time.Time, name string, attrs ...Attr) {
	if !s.Recording() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= MaxEventsPerSpan {
		s.dropped++
		return
	}
	s.events = append(s.events, Event{Time: at, Name: name, Attrs: attrs})
}

// Attrs returns a copy of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Events returns a copy of the span's events in recording order.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Dropped returns how many events/attributes were discarded by the caps.
func (s *Span) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// End closes the span and moves it into the tracer's completed ring.
// Ending twice is a no-op.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err's message when non-nil.
func (s *Span) EndErr(err error) {
	if s == nil || !s.sampled {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tracer.now()
	if err != nil {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
	s.tracer.record(s)
}

// StartChild starts a child span of s via s's tracer. On a nil receiver it
// returns nil, so deep call chains need no trace-enabled checks.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.newSpan(s.Context(), true, name, attrs)
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithCapacity bounds the completed-span ring (default DefaultCapacity).
func WithCapacity(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.capacity = n
		}
	}
}

// WithNow injects a clock (tests and simulations).
func WithNow(fn func() time.Time) Option {
	return func(t *Tracer) {
		if fn != nil {
			t.nowFn = fn
		}
	}
}

// WithSeed makes id generation and sampling draws deterministic.
func WithSeed(seed int64) Option {
	return func(t *Tracer) { t.rng = rand.New(rand.NewSource(seed)) }
}

// DefaultCapacity is the completed-span ring size of a zero-configured
// tracer: enough for several thousand request spans while keeping the
// worst-case footprint a few megabytes.
const DefaultCapacity = 4096

// Tracer creates spans and stores completed ones in a bounded ring. Safe for
// concurrent use.
type Tracer struct {
	mu       sync.Mutex
	rng      *rand.Rand
	capacity int
	ring     []*Span // completed spans, oldest overwritten first
	next     int     // ring write cursor
	active   map[SpanID]*Span
	scope    []*Span
	nowFn    func() time.Time

	top     atomic.Pointer[Span] // scope-stack top, read lock-free by Current
	ratio   atomic.Uint64        // sampling ratio as float64 bits
	started atomic.Uint64
	sampled atomic.Uint64
}

// New builds a tracer. Sampling starts at ratio 1 (record everything).
func New(opts ...Option) *Tracer {
	t := &Tracer{
		capacity: DefaultCapacity,
		nowFn:    time.Now,
		active:   make(map[SpanID]*Span),
	}
	for _, o := range opts {
		o(t)
	}
	if t.rng == nil {
		var seed [8]byte
		if _, err := crand.Read(seed[:]); err != nil {
			binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
		}
		t.rng = rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))
	}
	t.ring = make([]*Span, 0, min(t.capacity, 64))
	t.SetSampleRatio(1)
	return t
}

var defaultTracer = New()

// Default returns the process-wide tracer the instrumented packages and the
// httpapi middleware share.
func Default() *Tracer { return defaultTracer }

// SetSampleRatio sets the fraction of new root traces that record, in [0, 1].
// Child spans always inherit their parent's decision so a trace is recorded
// in full or not at all.
func (t *Tracer) SetSampleRatio(r float64) {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	t.ratio.Store(floatBits(r))
}

// SampleRatio returns the current root-sampling ratio.
func (t *Tracer) SampleRatio() float64 { return math.Float64frombits(t.ratio.Load()) }

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func (t *Tracer) now() time.Time { return t.nowFn() }

func (t *Tracer) newIDs(needTrace bool) (TraceID, SpanID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var tid TraceID
	if needTrace {
		for tid.IsZero() {
			t.rng.Read(tid[:])
		}
	}
	var sid SpanID
	for sid.IsZero() {
		t.rng.Read(sid[:])
	}
	return tid, sid
}

func (t *Tracer) sampleRoot() bool {
	r := t.SampleRatio()
	if r >= 1 {
		return true
	}
	if r <= 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64() < r
}

// newSpan is the single span constructor: with a parent it joins the
// parent's trace and inherits its sampling decision; without one it starts a
// new trace and rolls the sampler.
func (t *Tracer) newSpan(parent SpanContext, hasParent bool, name string, attrs []Attr) *Span {
	t.started.Add(1)
	var traceID TraceID
	var parentID SpanID
	var sampledFlag bool
	if hasParent && parent.Valid() {
		traceID = parent.TraceID
		parentID = parent.SpanID
		sampledFlag = parent.Sampled
		_, sid := t.newIDs(false)
		s := &Span{tracer: t, traceID: traceID, id: sid, parent: parentID,
			name: name, start: t.now(), sampled: sampledFlag}
		t.finishNew(s, attrs)
		return s
	}
	sampledFlag = t.sampleRoot()
	tid, sid := t.newIDs(true)
	s := &Span{tracer: t, traceID: tid, id: sid, name: name, start: t.now(), sampled: sampledFlag}
	t.finishNew(s, attrs)
	return s
}

func (t *Tracer) finishNew(s *Span, attrs []Attr) {
	if !s.sampled {
		return
	}
	t.sampled.Add(1)
	if len(attrs) > 0 {
		s.SetAttr(attrs...)
	}
	t.mu.Lock()
	if len(t.active) < 4*t.capacity { // backstop against never-ended spans
		t.active[s.id] = s
	}
	t.mu.Unlock()
}

// StartSpan starts a span named name. The parent is resolved in order: the
// span in ctx, then the tracer's current scope, then none (a new root
// trace). The returned context carries the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (*Span, context.Context) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		parent = t.Current()
	}
	var s *Span
	if parent != nil {
		s = t.newSpan(parent.Context(), true, name, attrs)
	} else {
		s = t.newSpan(SpanContext{}, false, name, attrs)
	}
	return s, ContextWithSpan(ctx, s)
}

// StartRemote starts a span continuing a trace received from another
// process (a parsed traceparent header). An invalid sc starts a new root.
func (t *Tracer) StartRemote(sc SpanContext, name string, attrs ...Attr) *Span {
	return t.newSpan(sc, sc.Valid(), name, attrs)
}

// record moves a completed sampled span into the bounded ring.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.active, s.id)
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next%t.capacity] = s
	t.next = (t.next + 1) % t.capacity
}

// Spans returns every stored span of the given trace — completed spans plus
// still-live ones — ordered by start time then id, so callers can rebuild
// the tree deterministically.
func (t *Tracer) Spans(id TraceID) []*Span {
	t.mu.Lock()
	out := make([]*Span, 0, 8)
	for _, s := range t.ring {
		if s.traceID == id {
			out = append(out, s)
		}
	}
	for _, s := range t.active {
		if s.traceID == id {
			out = append(out, s)
		}
	}
	t.mu.Unlock()
	sortSpans(out)
	return out
}

// Stats reports tracer counters: spans started, spans sampled, completed
// spans currently stored, live sampled spans.
func (t *Tracer) Stats() (started, sampled uint64, stored, live int) {
	t.mu.Lock()
	stored = len(t.ring)
	live = len(t.active)
	t.mu.Unlock()
	return t.started.Load(), t.sampled.Load(), stored, live
}

// Reset drops all stored and live spans and zeroes the scope stack — test
// isolation for packages sharing the Default tracer.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.active = make(map[SpanID]*Span)
	t.scope = nil
	t.top.Store(nil)
	t.mu.Unlock()
}

// PushScope makes s the tracer's current scope span until the returned
// release function runs. Scopes are how the single-threaded market core
// (arc → agent → auction → bank, all behind one engine mutex) and
// single-goroutine CLIs propagate the active span without threading
// contexts; concurrent servers must use contexts instead. Pushing nil is
// a recorded no-op so callers need no trace-enabled branches.
func (t *Tracer) PushScope(s *Span) (release func()) {
	if s == nil {
		return func() {}
	}
	t.mu.Lock()
	t.scope = append(t.scope, s)
	t.top.Store(s)
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			if n := len(t.scope); n > 0 && t.scope[n-1] == s {
				t.scope = t.scope[:n-1]
				if n-1 > 0 {
					t.top.Store(t.scope[n-2])
				} else {
					t.top.Store(nil)
				}
			}
			t.mu.Unlock()
		})
	}
}

// Current returns the innermost scope span, or nil. One atomic load — cheap
// enough for the auction-clear hot path to call unconditionally.
func (t *Tracer) Current() *Span { return t.top.Load() }

type ctxKey struct{}

// ContextWithSpan returns a context carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
