// Package rng provides the deterministic random variate generators used by
// the workload generators and the prediction simulations: uniform, normal,
// exponential, gamma, beta, lognormal and Pareto draws, all seeded explicitly
// so every experiment in the paper reproduction is replayable bit-for-bit.
//
// The Beta and Gamma samplers exist because Figure 7 of the paper validates
// the moving-window distribution approximation against Normal(0.5, 0.15),
// Exp(2) and Beta(5, 1) inputs.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic stream of random variates.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream; useful to give each simulated
// host its own stream so adding hosts does not perturb existing ones.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood, OOPSLA'14):
// a bijective avalanche mix whose outputs pass BigCrush even on sequential
// inputs, which is exactly the replication-seed use case.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed maps (base, index) to an independent replication seed. Unlike
// Split it is stateless: replication i's seed depends only on the base seed
// and i, so a parallel worker pool can seed replications in any execution
// order and still reproduce the exact streams of a serial run. Results are
// non-negative so they survive round trips through flag parsing and CSV.
func DeriveSeed(base int64, index uint64) int64 {
	z := splitmix64(uint64(base) ^ splitmix64(index+0x632be59bd9b4e019))
	return int64(z >> 1) // clear the sign bit
}

// NewReplica returns a Source for replication index of a base-seeded
// experiment family, via DeriveSeed.
func NewReplica(base int64, index uint64) *Source {
	return New(DeriveSeed(base, index))
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Normal returns a draw from N(mu, sigma^2).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// Exponential returns a draw from Exp(rate); mean is 1/rate.
// It panics on rate <= 0; distribution parameters are validated by the
// experiment configuration layer before sampling.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential requires rate > 0")
	}
	return s.r.ExpFloat64() / rate
}

// Gamma returns a draw from Gamma(shape k, scale theta) using the
// Marsaglia-Tsang squeeze method, with the Johnk boost for k < 1.
func (s *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k).
		u := s.r.Float64()
		for u == 0 {
			u = s.r.Float64()
		}
		return s.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a draw from Beta(a, b) via two gamma draws.
func (s *Source) Beta(a, b float64) float64 {
	x := s.Gamma(a, 1)
	y := s.Gamma(b, 1)
	return x / (x + y)
}

// LogNormal returns a draw whose logarithm is N(mu, sigma^2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a draw from a Pareto distribution with minimum xm and tail
// index alpha; used for heavy-tailed job-size workloads.
func (s *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires positive xm and alpha")
	}
	u := s.r.Float64()
	for u == 0 {
		u = s.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// TruncatedNormal returns a draw from N(mu, sigma^2) conditioned on
// [lo, hi], by rejection. The interval must have non-trivial mass; host
// capacity jitter uses mu well inside [lo, hi] so rejection terminates fast.
func (s *Source) TruncatedNormal(mu, sigma, lo, hi float64) float64 {
	if lo >= hi {
		panic("rng: TruncatedNormal requires lo < hi")
	}
	for i := 0; i < 10000; i++ {
		x := s.Normal(mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	// Distribution mass in the window is negligible; fall back to clamping,
	// preserving determinism rather than looping forever.
	return math.Min(math.Max(mu, lo), hi)
}
