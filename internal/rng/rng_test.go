package rng

import (
	"math"
	"testing"

	"tycoongrid/internal/mathx"
)

// moments draws n variates and returns their sample mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	var w mathx.Welford
	for i := 0; i < n; i++ {
		w.Add(draw())
	}
	return w.Mean(), w.SampleVariance()
}

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := New(124)
	same := true
	a2 := New(123)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(1)
	child := parent.Split()
	// Drawing from the child must not change the parent's future stream
	// relative to a parent that splits but never uses the child.
	parent2 := New(1)
	_ = parent2.Split()
	for i := 0; i < 50; i++ {
		_ = child.Float64()
	}
	for i := 0; i < 50; i++ {
		if parent.Float64() != parent2.Float64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 3)
		if v < 2 || v >= 3 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	mean, _ := moments(200000, func() float64 { return s.Uniform(2, 3) })
	if !mathx.AlmostEqual(mean, 2.5, 0.01) {
		t.Errorf("uniform mean = %v", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(7)
	mean, v := moments(200000, func() float64 { return s.Normal(0.5, 0.15) })
	if !mathx.AlmostEqual(mean, 0.5, 0.005) {
		t.Errorf("normal mean = %v", mean)
	}
	if !mathx.AlmostEqual(v, 0.15*0.15, 0.001) {
		t.Errorf("normal variance = %v, want %v", v, 0.15*0.15)
	}
}

func TestExponentialMoments(t *testing.T) {
	s := New(11)
	mean, v := moments(300000, func() float64 { return s.Exponential(2) })
	if !mathx.AlmostEqual(mean, 0.5, 0.01) {
		t.Errorf("exp mean = %v, want 0.5", mean)
	}
	if !mathx.AlmostEqual(v, 0.25, 0.01) {
		t.Errorf("exp variance = %v, want 0.25", v)
	}
	for i := 0; i < 1000; i++ {
		if s.Exponential(2) < 0 {
			t.Fatal("exponential draw negative")
		}
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(13)
	// Gamma(k=3, theta=2): mean 6, variance 12.
	mean, v := moments(300000, func() float64 { return s.Gamma(3, 2) })
	if !mathx.AlmostEqual(mean, 6, 0.05) {
		t.Errorf("gamma mean = %v, want 6", mean)
	}
	if !mathx.AlmostEqual(v, 12, 0.3) {
		t.Errorf("gamma variance = %v, want 12", v)
	}
}

func TestGammaSmallShape(t *testing.T) {
	s := New(17)
	// Gamma(k=0.5, theta=1): mean 0.5, variance 0.5.
	mean, v := moments(300000, func() float64 { return s.Gamma(0.5, 1) })
	if !mathx.AlmostEqual(mean, 0.5, 0.01) {
		t.Errorf("gamma(0.5) mean = %v", mean)
	}
	if !mathx.AlmostEqual(v, 0.5, 0.02) {
		t.Errorf("gamma(0.5) variance = %v", v)
	}
}

func TestBetaMoments(t *testing.T) {
	s := New(19)
	// Beta(5, 1): mean 5/6, variance 5/(36*7).
	mean, v := moments(300000, func() float64 { return s.Beta(5, 1) })
	if !mathx.AlmostEqual(mean, 5.0/6, 0.005) {
		t.Errorf("beta mean = %v, want %v", mean, 5.0/6)
	}
	wantVar := 5.0 / (36 * 7)
	if !mathx.AlmostEqual(v, wantVar, 0.002) {
		t.Errorf("beta variance = %v, want %v", v, wantVar)
	}
	for i := 0; i < 1000; i++ {
		b := s.Beta(5, 1)
		if b < 0 || b > 1 {
			t.Fatalf("beta out of [0,1]: %v", b)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := New(23)
	mu, sigma := 0.0, 0.25
	wantMean := math.Exp(mu + sigma*sigma/2)
	mean, _ := moments(300000, func() float64 { return s.LogNormal(mu, sigma) })
	if !mathx.AlmostEqual(mean, wantMean, 0.01) {
		t.Errorf("lognormal mean = %v, want %v", mean, wantMean)
	}
}

func TestParetoTail(t *testing.T) {
	s := New(29)
	xm, alpha := 1.0, 3.0
	wantMean := alpha * xm / (alpha - 1)
	mean, _ := moments(500000, func() float64 { return s.Pareto(xm, alpha) })
	if !mathx.AlmostEqual(mean, wantMean, 0.03) {
		t.Errorf("pareto mean = %v, want %v", mean, wantMean)
	}
	for i := 0; i < 1000; i++ {
		if s.Pareto(xm, alpha) < xm {
			t.Fatal("pareto draw below minimum")
		}
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	s := New(31)
	for i := 0; i < 5000; i++ {
		v := s.TruncatedNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("truncated normal out of bounds: %v", v)
		}
	}
	// Degenerate window far from the mean falls back to clamping.
	v := s.TruncatedNormal(0, 0.0001, 5, 6)
	if v != 5 {
		t.Errorf("fallback clamp = %v, want 5", v)
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	s := New(1)
	cases := []func(){
		func() { s.Exponential(0) },
		func() { s.Gamma(0, 1) },
		func() { s.Gamma(1, 0) },
		func() { s.Pareto(0, 1) },
		func() { s.Pareto(1, 0) },
		func() { s.TruncatedNormal(0, 1, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPermAndShuffle(t *testing.T) {
	s := New(37)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Error("shuffle lost elements")
	}
}

func BenchmarkGamma(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Gamma(5, 1)
	}
}

func BenchmarkBeta(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Beta(5, 1)
	}
}
