// Package retry is the fault-tolerance core of the grid market: a
// context-aware retry policy with exponential backoff, full jitter and
// per-attempt deadlines, plus a three-state circuit breaker (breaker.go).
//
// The paper's Grid is explicitly best-effort — hosts join and leave, and the
// Tycoon design paper (Lai et al.) stresses that a market allocator must
// degrade gracefully when auctioneers and banks are unreachable. Every typed
// HTTP client in internal/httpapi routes its calls through a Policy and a
// Breaker from this package.
//
// Determinism: both Policy and Breaker take injectable time and randomness
// (Sleep, Rand, Now), so tests exercise full backoff schedules and breaker
// timelines without a single wall-clock sleep. Production code leaves the
// hooks nil and gets real timers and math/rand jitter.
package retry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Defaults for a zero-value Policy. A policy taking four attempts with
// 50 ms base and 2x growth sleeps at most ~50+100+200 ms of jittered
// backoff before giving up — fast enough for an interactive bid path,
// patient enough to ride out a daemon restart.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
	DefaultMultiplier  = 2.0
)

// Policy describes how an operation is retried. The zero value (plus a Name)
// is a usable production policy; every field has a documented default.
type Policy struct {
	// Name labels this policy's metrics (retries_total{name=...}).
	Name string
	// MaxAttempts is the total number of tries including the first.
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter backoff.
	MaxDelay time.Duration
	// Multiplier grows the backoff between attempts.
	Multiplier float64
	// PerAttempt, when positive, bounds each attempt with its own
	// context deadline.
	PerAttempt time.Duration
	// Retryable reports whether an error is worth another attempt. Nil
	// means everything except Permanent-wrapped errors, breaker ErrOpen
	// and context cancellation/expiry.
	Retryable func(error) bool
	// Sleep waits between attempts. Nil means a real timer honoring ctx.
	// Tests inject a recording stub so schedules are checked instantly.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand supplies jitter draws in [0, 1). Nil means a locked math/rand
	// source. Tests inject a deterministic sequence.
	Rand func() float64
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so the default Retryable classifier refuses to retry
// it — used for application-level rejections (4xx responses, validation
// failures) where re-sending the same request can only fail the same way.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

var (
	jitterMu  sync.Mutex
	jitterSrc = rand.New(rand.NewSource(1)) // deterministic but shared; jitter needs no secrecy
)

func defaultRand() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterSrc.Float64()
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func defaultRetryable(err error) bool {
	return !IsPermanent(err) &&
		!errors.Is(err, ErrOpen) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (p Policy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return DefaultBaseDelay
}

func (p Policy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return DefaultMaxDelay
}

func (p Policy) multiplier() float64 {
	if p.Multiplier > 1 {
		return p.Multiplier
	}
	return DefaultMultiplier
}

// Backoff returns the pre-jitter delay before attempt+2 (attempt counts
// completed tries, zero-based): min(MaxDelay, BaseDelay * Multiplier^attempt).
func (p Policy) Backoff(attempt int) time.Duration {
	base := float64(p.baseDelay()) * math.Pow(p.multiplier(), float64(attempt))
	if cap := float64(p.maxDelay()); base > cap {
		base = cap
	}
	return time.Duration(base)
}

// jittered applies full jitter: a uniform draw in [0, Backoff(attempt)).
// Full jitter (rather than equal or decorrelated) maximally decorrelates a
// thundering herd of brokers retrying against one recovering auctioneer.
func (p Policy) jittered(attempt int) time.Duration {
	r := p.Rand
	if r == nil {
		r = defaultRand
	}
	return time.Duration(r() * float64(p.Backoff(attempt)))
}

// Do runs op until it succeeds, exhausts MaxAttempts, hits a non-retryable
// error, or ctx is cancelled. Each attempt gets a child context bounded by
// PerAttempt when set. The returned error is the last attempt's.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	sleep := p.Sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = defaultRetryable
	}
	attempts := p.maxAttempts()
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			mRetries.With(p.Name).Inc()
		}
		actx := ctx
		cancel := context.CancelFunc(nil)
		if p.PerAttempt > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttempt)
		}
		err = op(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if !retryable(err) || attempt == attempts-1 {
			break
		}
		if serr := sleep(ctx, p.jittered(attempt)); serr != nil {
			// Cancelled mid-backoff: surface the cancellation, not the
			// (stale) attempt error.
			return serr
		}
	}
	mGiveUps.With(p.Name).Inc()
	return err
}
