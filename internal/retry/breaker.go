package retry

import (
	"errors"
	"sync"
	"time"

	"tycoongrid/internal/metrics"
)

// State is a circuit breaker's position.
type State int

// Breaker states. The numeric values are exported verbatim through the
// breaker_state gauge.
const (
	Closed   State = 0 // calls flow; consecutive failures are counted
	Open     State = 1 // calls are rejected until the cool-down elapses
	HalfOpen State = 2 // a bounded number of probe calls test recovery
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// ErrOpen is returned by Allow/Do while the breaker is rejecting calls. The
// default Policy classifier treats it as non-retryable so an open breaker
// fails fast instead of burning the whole retry budget.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultOpenTimeout      = 30 * time.Second
	DefaultHalfOpenProbes   = 1
)

// BreakerConfig tunes a Breaker. The zero value (plus a Name) is usable.
type BreakerConfig struct {
	// Name labels the breaker's metrics (breaker_state{name=...}).
	Name string
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker.
	FailureThreshold int
	// OpenTimeout is the cool-down before an open breaker lets probes
	// through.
	OpenTimeout time.Duration
	// HalfOpenProbes bounds concurrent probe calls in the half-open state.
	HalfOpenProbes int
	// Now supplies the clock; nil means time.Now. Tests inject a manual
	// clock so breaker timelines run without sleeping.
	Now func() time.Time
}

// Breaker is a three-state circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // in-flight probes while half-open

	stateGauge *metrics.Gauge
	aborted    *metrics.Counter
	trips      *metrics.Counter
}

// NewBreaker builds a breaker, registering its metrics under cfg.Name.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = DefaultOpenTimeout
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = DefaultHalfOpenProbes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	b := &Breaker{
		cfg:        cfg,
		stateGauge: mBreakerState.With(cfg.Name),
		aborted:    mBreakerAborted.With(cfg.Name),
		trips:      mBreakerTrips.With(cfg.Name),
	}
	b.stateGauge.Set(float64(Closed))
	return b
}

// State returns the breaker's current position, advancing Open to HalfOpen
// when the cool-down has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

func (b *Breaker) setStateLocked(s State) {
	b.state = s
	b.stateGauge.Set(float64(s))
}

func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == Open && !b.cfg.Now().Before(b.openedAt.Add(b.cfg.OpenTimeout)) {
		b.setStateLocked(HalfOpen)
		b.probes = 0
	}
}

// Allow reports whether a call may proceed, reserving a probe slot in the
// half-open state. Every Allow that returns nil must be matched by exactly
// one Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case Closed:
		return nil
	case HalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return nil
		}
		b.aborted.Inc()
		return ErrOpen
	default: // Open
		b.aborted.Inc()
		return ErrOpen
	}
}

// Record reports a call's outcome. A success closes a half-open breaker and
// resets the failure count; a failure re-opens a half-open breaker
// immediately and trips a closed one at the threshold.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
	if err == nil {
		b.fails = 0
		if b.state != Closed {
			b.setStateLocked(Closed)
		}
		return
	}
	switch b.state {
	case HalfOpen:
		b.tripLocked()
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	}
}

func (b *Breaker) tripLocked() {
	b.setStateLocked(Open)
	b.openedAt = b.cfg.Now()
	b.fails = 0
	b.probes = 0
	b.trips.Inc()
}

// Do runs fn under the breaker: rejected with ErrOpen when open, otherwise
// executed with its outcome recorded.
func (b *Breaker) Do(fn func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := fn()
	b.Record(err)
	return err
}
