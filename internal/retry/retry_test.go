package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name    string
		policy  Policy
		attempt int
		want    time.Duration
	}{
		{"defaults attempt 0", Policy{}, 0, 50 * time.Millisecond},
		{"defaults attempt 1", Policy{}, 1, 100 * time.Millisecond},
		{"defaults attempt 2", Policy{}, 2, 200 * time.Millisecond},
		{"defaults capped", Policy{}, 10, 2 * time.Second},
		{"custom base", Policy{BaseDelay: time.Second}, 0, time.Second},
		{"custom growth", Policy{BaseDelay: time.Second, Multiplier: 3, MaxDelay: time.Minute}, 2, 9 * time.Second},
		{"custom cap", Policy{BaseDelay: time.Second, MaxDelay: 5 * time.Second}, 4, 5 * time.Second},
		{"multiplier below 1 falls back", Policy{BaseDelay: time.Second, Multiplier: 0.5}, 1, 2 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Backoff(tc.attempt); got != tc.want {
				t.Errorf("Backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestJitterBounds(t *testing.T) {
	// Full jitter: for any rand draw r in [0,1), delay = r * Backoff.
	for _, r := range []float64{0, 0.25, 0.5, 0.999999} {
		p := Policy{BaseDelay: time.Second, Rand: func() float64 { return r }}
		got := p.jittered(0)
		want := time.Duration(r * float64(time.Second))
		if got != want {
			t.Errorf("jittered(0) with r=%v = %v, want %v", r, got, want)
		}
		if got < 0 || got >= time.Second {
			t.Errorf("jitter %v outside [0, base)", got)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	calls := 0
	p := Policy{
		Name:      "test",
		BaseDelay: 100 * time.Millisecond,
		Rand:      func() float64 { return 0.5 },
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Two sleeps, at 0.5 * (100ms, 200ms).
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps = %v, want %v", slept, want)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	p := Policy{
		Name:        "exhaust",
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Rand:        func() float64 { return 0 },
	}
	boom := errors.New("down")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	p := Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(errors.New("bad request"))
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	if !IsPermanent(err) {
		t.Errorf("permanence lost: %v", err)
	}
	if err.Error() != "bad request" {
		t.Errorf("message mangled: %q", err.Error())
	}
}

func TestDoStopsOnBreakerOpen(t *testing.T) {
	calls := 0
	p := Policy{Sleep: func(context.Context, time.Duration) error { return nil }}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return fmt.Errorf("wrapped: %w", ErrOpen)
	})
	if calls != 1 {
		t.Errorf("open breaker retried: %d calls", calls)
	}
	if !errors.Is(err, ErrOpen) {
		t.Errorf("err = %v", err)
	}
}

func TestDoHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{
		Sleep: func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
	}
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return errors.New("flaky")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d after cancel", calls)
	}
}

func TestDoPerAttemptDeadline(t *testing.T) {
	p := Policy{
		MaxAttempts: 2,
		PerAttempt:  time.Millisecond,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Rand:        func() float64 { return 0 },
	}
	sawDeadline := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline++
		}
		return errors.New("flaky")
	})
	if err == nil {
		t.Fatal("expected failure")
	}
	if sawDeadline != 2 {
		t.Errorf("attempts with deadline = %d, want 2", sawDeadline)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	if IsPermanent(errors.New("x")) {
		t.Error("plain error reported permanent")
	}
}
