package retry

import (
	"errors"
	"testing"
	"time"
)

// manualClock is an injectable Now for breaker tests: time only moves when a
// test advances it, so cool-down timelines run without sleeping.
type manualClock struct{ t time.Time }

func (c *manualClock) Now() time.Time          { return c.t }
func (c *manualClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(name string, clk *manualClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Name:             name,
		FailureThreshold: 3,
		OpenTimeout:      10 * time.Second,
		HalfOpenProbes:   1,
		Now:              clk.Now,
	})
}

func TestBreakerTransitions(t *testing.T) {
	boom := errors.New("down")
	cases := []struct {
		name string
		run  func(b *Breaker, clk *manualClock)
		want State
	}{
		{"starts closed", func(b *Breaker, clk *manualClock) {}, Closed},
		{"stays closed below threshold", func(b *Breaker, clk *manualClock) {
			b.Record(boom)
			b.Record(boom)
		}, Closed},
		{"opens at threshold", func(b *Breaker, clk *manualClock) {
			b.Record(boom)
			b.Record(boom)
			b.Record(boom)
		}, Open},
		{"success resets failure count", func(b *Breaker, clk *manualClock) {
			b.Record(boom)
			b.Record(boom)
			b.Record(nil)
			b.Record(boom)
			b.Record(boom)
		}, Closed},
		{"half-open after cool-down", func(b *Breaker, clk *manualClock) {
			for i := 0; i < 3; i++ {
				b.Record(boom)
			}
			clk.Advance(10 * time.Second)
		}, HalfOpen},
		{"still open before cool-down", func(b *Breaker, clk *manualClock) {
			for i := 0; i < 3; i++ {
				b.Record(boom)
			}
			clk.Advance(9 * time.Second)
		}, Open},
		{"probe success closes", func(b *Breaker, clk *manualClock) {
			for i := 0; i < 3; i++ {
				b.Record(boom)
			}
			clk.Advance(10 * time.Second)
			if err := b.Allow(); err != nil {
				t.Fatalf("probe rejected: %v", err)
			}
			b.Record(nil)
		}, Closed},
		{"probe failure re-opens", func(b *Breaker, clk *manualClock) {
			for i := 0; i < 3; i++ {
				b.Record(boom)
			}
			clk.Advance(10 * time.Second)
			if err := b.Allow(); err != nil {
				t.Fatalf("probe rejected: %v", err)
			}
			b.Record(boom)
		}, Open},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &manualClock{t: time.Unix(0, 0)}
			b := newTestBreaker(testName("transitions", i), clk)
			tc.run(b, clk)
			if got := b.State(); got != tc.want {
				t.Errorf("state = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBreakerRejectsWhileOpen(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	b := newTestBreaker("reject-open", clk)
	for i := 0; i < 3; i++ {
		b.Record(errors.New("down"))
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Errorf("Allow while open = %v, want ErrOpen", err)
	}
	calls := 0
	err := b.Do(func() error { calls++; return nil })
	if !errors.Is(err, ErrOpen) || calls != 0 {
		t.Errorf("Do while open: err=%v calls=%d", err, calls)
	}
}

func TestBreakerHalfOpenProbeLimit(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	b := newTestBreaker("probe-limit", clk)
	for i := 0; i < 3; i++ {
		b.Record(errors.New("down"))
	}
	clk.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	// The single probe slot is taken; a second concurrent call is rejected.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Errorf("second probe = %v, want ErrOpen", err)
	}
	b.Record(nil)
	if err := b.Allow(); err != nil {
		t.Errorf("Allow after recovery = %v", err)
	}
	b.Record(nil)
}

func TestBreakerOpenCoolDownRestartsOnReTrip(t *testing.T) {
	clk := &manualClock{t: time.Unix(0, 0)}
	b := newTestBreaker("re-trip", clk)
	for i := 0; i < 3; i++ {
		b.Record(errors.New("down"))
	}
	clk.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Record(errors.New("still down")) // re-trips: cool-down restarts now
	clk.Advance(9 * time.Second)
	if got := b.State(); got != Open {
		t.Errorf("state 9s after re-trip = %v, want Open", got)
	}
	clk.Advance(time.Second)
	if got := b.State(); got != HalfOpen {
		t.Errorf("state 10s after re-trip = %v, want HalfOpen", got)
	}
}

// testName builds unique metric label names so per-test breakers don't share
// gauges in the process-global registry.
func testName(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i))
}
