package retry

import "tycoongrid/internal/metrics"

// Fault-tolerance instrumentation. The metric names are deliberately
// unprefixed (retries_total rather than retry_retries_total): the label is
// the policy/breaker name, which already carries the subsystem.
var (
	mRetries = metrics.Default().CounterVec("retries_total",
		"Retry re-attempts executed (attempts beyond the first), by policy name.",
		"name")
	mGiveUps = metrics.Default().CounterVec("retry_exhausted_total",
		"Operations that failed after their final attempt, by policy name.",
		"name")
	mBreakerState = metrics.Default().GaugeVec("breaker_state",
		"Circuit breaker state: 0=closed, 1=open, 2=half-open.", "name")
	mBreakerAborted = metrics.Default().CounterVec("breaker_aborted_calls_total",
		"Calls rejected without execution while the breaker was open.", "name")
	mBreakerTrips = metrics.Default().CounterVec("breaker_trips_total",
		"Transitions into the open state.", "name")
)
