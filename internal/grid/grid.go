// Package grid is the cluster substrate of the reproduction: a
// discrete-event simulation of Tycoon-controlled hosts that stands in for
// the paper's physical testbed (see DESIGN.md §2). Each host runs a real
// auction.Market and vm.Manager; every reallocation interval (10 s) the
// cluster ticks all markets, applies charges, and advances the CPU-bound
// work of running tasks by their allocated share — with the paper's
// dual-processor behaviour: a single task can use at most one physical CPU,
// so two users on a dual-CPU host may both get a full CPU without competing.
package grid

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/marketplane"
	"tycoongrid/internal/mechanism"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/vm"
)

// HostSpec describes one simulated host.
type HostSpec struct {
	ID              string
	Site            string
	CPUs            int     // physical processors
	CPUMHz          float64 // capacity of one processor
	MaxVMs          int
	CreateOverhead  time.Duration
	InstallOverhead time.Duration
	VirtOverhead    float64
}

// Host is one cluster node: a market plus a VM manager.
type Host struct {
	Spec   HostSpec
	Market *auction.Market
	VMs    *vm.Manager
	tasks  map[string]*Task
	down   bool
}

// Down reports whether the host is currently failed.
func (h *Host) Down() bool { return h.down }

// TotalMHz returns the host's aggregate CPU capacity after virtualization
// overhead.
func (h *Host) TotalMHz() float64 {
	return h.VMs.EffectiveCapacity(h.Spec.CPUMHz * float64(h.Spec.CPUs))
}

// PerCPUMHz returns one processor's effective capacity — the ceiling for a
// single-threaded task.
func (h *Host) PerCPUMHz() float64 {
	return h.VMs.EffectiveCapacity(h.Spec.CPUMHz)
}

// Task is one sub-job executing in a VM on one host.
type Task struct {
	ID        string
	HostID    string
	Owner     auction.BidderID
	Work      float64 // remaining MHz-seconds
	TotalWork float64
	VMID      string
	ReadyAt   time.Time // VM boot/install completes
	Started   time.Time // submission time
	DoneAt    time.Time // exact completion time (set when finished)
	OnDone    func(*Task)
}

// Config configures a cluster.
type Config struct {
	Hosts        []HostSpec
	Interval     time.Duration // reallocation period; default 10 s
	ReservePrice float64       // credits/second floor for every market
	// PurgeIdleAfter, when positive, destroys VMs idle longer than this at
	// every reallocation — the paper's "virtual machine purging or
	// hibernation model that could increase this number further" (§3),
	// freeing slots for other users at the price of a fresh boot later.
	PurgeIdleAfter time.Duration
	// Tracer supplies the active job scope for timeline events; it is also
	// handed to every host market. Nil means tracing.Default(). Replicated
	// experiments inject a per-world tracer so concurrent worlds never share
	// scope stacks.
	Tracer *tracing.Tracer
	// Shards partitions the host markets across this many marketplane
	// auctioneer shards. 0 or 1 keeps the legacy interleaved tick —
	// bit-for-bit identical to previous releases. >= 2 switches to the
	// phased tick: phase one clears every up host's market through the
	// plane (concurrently across shards), phase two applies charges,
	// refunds and task progress sequentially in host order.
	Shards int
	// Mechanism names the clearing rule every host market runs
	// (mechanism.Names: proportional, posted-price, vcg). Empty selects the
	// paper's proportional share. Each host gets its own mechanism instance,
	// since mechanisms may carry per-host state such as the posted price.
	Mechanism string
}

// Cluster is the simulated Tycoon network.
type Cluster struct {
	engine   *sim.Engine
	interval time.Duration
	purge    time.Duration
	hosts    map[string]*Host
	order    []string // deterministic host iteration order
	taskSeq  int
	tracer   *tracing.Tracer
	plane    *marketplane.Plane // non-nil when cfg.Shards >= 2

	// OnCharge and OnRefund, when set, observe every market charge/refund;
	// the agent layer uses them to move real bank money.
	OnCharge func(hostID string, c auction.Charge)
	OnRefund func(hostID string, c auction.Charge)
	// OnHostFailure and OnHostRecovery, when set, observe FailHost/
	// RecoverHost. The broker layer uses them to resubmit killed chunks and
	// reclaim escrow.
	OnHostFailure  func(HostFailure)
	OnHostRecovery func(hostID string)

	ticker *sim.Ticker
}

// HostFailure describes everything lost when a host crashed: the tasks that
// were running there (their OnDone callbacks do NOT fire) and the unspent
// remainder of every live bid, which the market refunds because a dead host
// can no longer deliver CPU.
type HostFailure struct {
	HostID string
	Tasks  []*Task          // killed tasks, sorted by ID
	Bids   []auction.Charge // refunded bid remainders, sorted by bidder
}

// Errors returned by the cluster.
var (
	ErrUnknownHost = errors.New("grid: unknown host")
	ErrBadSpec     = errors.New("grid: invalid host spec")
	ErrHostDown    = errors.New("grid: host is down")
)

// New builds a cluster on the given simulation engine.
func New(engine *sim.Engine, cfg Config) (*Cluster, error) {
	if engine == nil {
		return nil, errors.New("grid: nil engine")
	}
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("%w: no hosts", ErrBadSpec)
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = auction.DefaultInterval
	}
	tr := cfg.Tracer
	if tr == nil {
		tr = tracing.Default()
	}
	c := &Cluster{
		engine:   engine,
		interval: interval,
		purge:    cfg.PurgeIdleAfter,
		hosts:    make(map[string]*Host, len(cfg.Hosts)),
		tracer:   tr,
	}
	for _, spec := range cfg.Hosts {
		if spec.ID == "" || spec.CPUs < 1 || spec.CPUMHz <= 0 {
			return nil, fmt.Errorf("%w: %+v", ErrBadSpec, spec)
		}
		if spec.MaxVMs < 1 {
			spec.MaxVMs = 15 * spec.CPUs
		}
		if _, dup := c.hosts[spec.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate host %q", ErrBadSpec, spec.ID)
		}
		vmm, err := vm.NewManager(vm.Config{
			HostID:          spec.ID,
			MaxVMs:          spec.MaxVMs,
			CreateOverhead:  spec.CreateOverhead,
			InstallOverhead: spec.InstallOverhead,
			VirtOverhead:    spec.VirtOverhead,
		})
		if err != nil {
			return nil, err
		}
		mech, err := mechanism.New(cfg.Mechanism, mechanism.Config{})
		if err != nil {
			return nil, err
		}
		market, err := auction.NewMarket(auction.Config{
			HostID:       spec.ID,
			CapacityMHz:  vmm.EffectiveCapacity(spec.CPUMHz * float64(spec.CPUs)),
			ReservePrice: cfg.ReservePrice,
			Start:        engine.Now(),
			Tracer:       tr,
			Mechanism:    mech,
		})
		if err != nil {
			return nil, err
		}
		c.hosts[spec.ID] = &Host{Spec: spec, Market: market, VMs: vmm, tasks: make(map[string]*Task)}
		c.order = append(c.order, spec.ID)
	}
	sort.Strings(c.order)
	if cfg.Shards >= 2 {
		markets := make([]marketplane.HostMarket, len(c.order))
		for i, id := range c.order {
			markets[i] = c.hosts[id].Market
		}
		p, err := marketplane.New(marketplane.Config{Shards: cfg.Shards, Markets: markets})
		if err != nil {
			return nil, err
		}
		c.plane = p
	}
	return c, nil
}

// Plane returns the market plane driving the sharded tick, or nil when the
// cluster runs the legacy single-auctioneer path (Shards <= 1).
func (c *Cluster) Plane() *marketplane.Plane { return c.plane }

// Start begins the reallocation ticker. It must be called once before
// running the simulation.
func (c *Cluster) Start() error {
	if c.ticker != nil {
		return errors.New("grid: cluster already started")
	}
	t, err := c.engine.Every(c.interval, c.tick)
	if err != nil {
		return err
	}
	c.ticker = t
	return nil
}

// Stop halts the reallocation ticker.
func (c *Cluster) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

// Engine returns the simulation engine driving the cluster.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// Interval returns the reallocation period.
func (c *Cluster) Interval() time.Duration { return c.interval }

// Host returns a host by id.
func (c *Cluster) Host(id string) (*Host, error) {
	h, ok := c.hosts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHost, id)
	}
	return h, nil
}

// HostIDs returns all host ids in deterministic order.
func (c *Cluster) HostIDs() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// PlaceBid enters budget on a host's market for bidder, valid until
// deadline.
func (c *Cluster) PlaceBid(hostID string, bidder auction.BidderID, budget bank.Amount, deadline time.Time) (bank.Amount, error) {
	h, err := c.Host(hostID)
	if err != nil {
		return 0, err
	}
	if h.down {
		return 0, fmt.Errorf("%w: %q", ErrHostDown, hostID)
	}
	return h.Market.PlaceBid(bidder, budget, deadline)
}

// Boost adds funds to an existing bid.
func (c *Cluster) Boost(hostID string, bidder auction.BidderID, extra bank.Amount) error {
	h, err := c.Host(hostID)
	if err != nil {
		return err
	}
	if h.down {
		return fmt.Errorf("%w: %q", ErrHostDown, hostID)
	}
	return h.Market.Boost(bidder, extra)
}

// StartTask launches a sub-job for owner on a host: it acquires a VM (reuse
// first), and the task begins consuming CPU once the VM is ready. workMHzSec
// is the task's size in MHz-seconds (e.g. 212 minutes at 2800 MHz =
// 212*60*2800). onDone fires at the tick when the task completes, with
// DoneAt back-dated to the exact completion instant.
func (c *Cluster) StartTask(hostID string, owner auction.BidderID, envs []string, workMHzSec float64, onDone func(*Task)) (*Task, error) {
	if workMHzSec <= 0 || math.IsNaN(workMHzSec) || math.IsInf(workMHzSec, 0) {
		return nil, fmt.Errorf("grid: bad task size %v", workMHzSec)
	}
	h, err := c.Host(hostID)
	if err != nil {
		return nil, err
	}
	if h.down {
		return nil, fmt.Errorf("%w: %q", ErrHostDown, hostID)
	}
	machine, err := h.VMs.Acquire(string(owner), envs, c.engine.Now())
	if err != nil {
		return nil, err
	}
	c.taskSeq++
	t := &Task{
		ID:        fmt.Sprintf("task-%05d", c.taskSeq),
		HostID:    hostID,
		Owner:     owner,
		Work:      workMHzSec,
		TotalWork: workMHzSec,
		VMID:      machine.ID,
		ReadyAt:   machine.ReadyAt,
		Started:   c.engine.Now(),
		OnDone:    onDone,
	}
	h.tasks[t.ID] = t
	mTasksStarted.Inc()
	// VM acquisition inside a job scope lands on that job's timeline: which
	// machine the chunk got and when it becomes ready.
	if s := c.tracer.Current(); s.Recording() {
		s.AddEventAt(c.engine.Now(), "grid.vm-acquire",
			tracing.String("host", hostID),
			tracing.String("vm", machine.ID),
			tracing.String("task", t.ID),
			tracing.String("ready_at", machine.ReadyAt.Format(time.RFC3339)))
	}
	// The owner is consuming CPU on this host now.
	if err := h.Market.SetActive(owner, true); err != nil && !errors.Is(err, auction.ErrUnknownBidder) {
		return nil, err
	}
	return t, nil
}

// RunningTasks returns the number of live tasks on a host.
func (h *Host) RunningTasks() int { return len(h.tasks) }

// tick advances every market and every task by one interval.
func (c *Cluster) tick() {
	if c.plane != nil {
		c.tickPhased()
		return
	}
	now := c.engine.Now()
	running, busyHosts, downHosts := 0, 0, 0
	for _, id := range c.order {
		h := c.hosts[id]
		if h.down {
			downHosts++
			continue
		}
		charges, refunds := h.Market.Tick(now)
		if c.OnCharge != nil {
			for _, ch := range charges {
				c.OnCharge(id, ch)
			}
		}
		if c.OnRefund != nil {
			for _, r := range refunds {
				c.OnRefund(id, r)
			}
		}
		c.advanceTasks(h, now)
		if c.purge > 0 {
			h.VMs.PurgeIdleOlderThan(now.Add(-c.purge))
		}
		if n := len(h.tasks); n > 0 {
			running += n
			busyHosts++
		}
	}
	mTicks.Inc()
	mRunningTasks.Set(float64(running))
	mHostUtilization.Set(float64(busyHosts) / float64(len(c.order)))
	mHostsDown.Set(float64(downHosts))
}

// tickPhased is the sharded tick. Phase one batch-clears every up host's
// market through the plane, shards running concurrently; phase two delivers
// charges and refunds and advances task progress sequentially in host order,
// exactly as the legacy tick does. The observable difference from the legacy
// interleaving: a rebid placed by an OnDone callback during phase two lands
// on a market that already cleared this tick, so it starts accruing at the
// next one — whereas the legacy path lets a rebid on a later-ordered host
// clear within the same sweep. Output is deterministic for a fixed shard
// count but not bit-identical to the Shards <= 1 path.
func (c *Cluster) tickPhased() {
	now := c.engine.Now()
	results := c.plane.TickAll(now, func(id string) bool { return c.hosts[id].down })
	running, busyHosts, downHosts := 0, 0, 0
	for i, id := range c.order {
		h := c.hosts[id]
		if h.down {
			downHosts++
			continue
		}
		r := results[i]
		if c.OnCharge != nil {
			for _, ch := range r.Charges {
				c.OnCharge(id, ch)
			}
		}
		if c.OnRefund != nil {
			for _, rf := range r.Refunds {
				c.OnRefund(id, rf)
			}
		}
		c.advanceTasks(h, now)
		if c.purge > 0 {
			h.VMs.PurgeIdleOlderThan(now.Add(-c.purge))
		}
		if n := len(h.tasks); n > 0 {
			running += n
			busyHosts++
		}
	}
	mTicks.Inc()
	mRunningTasks.Set(float64(running))
	mHostUtilization.Set(float64(busyHosts) / float64(len(c.order)))
	mHostsDown.Set(float64(downHosts))
}

// FailHost crashes a host: every running task is killed (OnDone does not
// fire), all VM images are lost, and every live bid is cancelled with its
// unspent remainder collected for refund. The HostFailure handed to
// OnHostFailure is the broker's one chance to learn what died — the host
// itself forgets everything.
func (c *Cluster) FailHost(hostID string) (HostFailure, error) {
	h, err := c.Host(hostID)
	if err != nil {
		return HostFailure{}, err
	}
	if h.down {
		return HostFailure{}, fmt.Errorf("%w: %q", ErrHostDown, hostID)
	}
	h.down = true
	f := HostFailure{HostID: hostID}
	ids := make([]string, 0, len(h.tasks))
	for id := range h.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		f.Tasks = append(f.Tasks, h.tasks[id])
	}
	h.tasks = make(map[string]*Task)
	h.VMs.PurgeAll()
	for _, s := range h.Market.Shares() { // sorted by bidder
		remaining, err := h.Market.CancelBid(s.Bidder)
		if err != nil || remaining <= 0 {
			continue
		}
		f.Bids = append(f.Bids, auction.Charge{Bidder: s.Bidder, Amount: remaining})
	}
	mHostFailures.Inc()
	mTasksKilled.Add(uint64(len(f.Tasks)))
	if c.OnHostFailure != nil {
		c.OnHostFailure(f)
	}
	return f, nil
}

// RecoverHost brings a failed host back empty: no VMs, no bids, no tasks.
// The market clock is resynced to now so the outage window is never billed
// against future bids.
func (c *Cluster) RecoverHost(hostID string) error {
	h, err := c.Host(hostID)
	if err != nil {
		return err
	}
	if !h.down {
		return fmt.Errorf("grid: host %q is not down", hostID)
	}
	h.down = false
	h.Market.Tick(c.engine.Now()) // empty market: just advances its clock
	mHostRecoveries.Inc()
	if c.OnHostRecovery != nil {
		c.OnHostRecovery(hostID)
	}
	return nil
}

// advanceTasks applies one interval of CPU progress to a host's tasks.
func (c *Cluster) advanceTasks(h *Host, now time.Time) {
	if len(h.tasks) == 0 {
		return
	}
	shares := h.Market.Shares()
	frac := make(map[auction.BidderID]float64, len(shares))
	for _, s := range shares {
		frac[s.Bidder] = s.Fraction
	}
	// Count concurrent tasks per owner on this host: an owner's share is
	// divided among their tasks here.
	perOwner := make(map[auction.BidderID]int)
	for _, t := range h.tasks {
		perOwner[t.Owner]++
	}
	total := h.TotalMHz()
	perCPU := h.PerCPUMHz()
	dt := c.interval.Seconds()

	// Deterministic order.
	ids := make([]string, 0, len(h.tasks))
	for id := range h.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var finished []*Task
	for _, id := range ids {
		t := h.tasks[id]
		// Effective compute window within (now-dt, now]: clip by VM readiness.
		eff := dt
		if t.ReadyAt.After(now) {
			continue
		}
		if windowStart := now.Add(-c.interval); t.ReadyAt.After(windowStart) {
			eff = now.Sub(t.ReadyAt).Seconds()
		}
		share := frac[t.Owner] / float64(perOwner[t.Owner])
		rate := share * total
		// Dual-CPU rule: a single-threaded task caps at one processor.
		if rate > perCPU {
			rate = perCPU
		}
		if rate <= 0 || eff <= 0 {
			continue
		}
		t.Work -= rate * eff
		if t.Work <= 0 {
			// Back-date the exact completion instant within the interval.
			overshoot := -t.Work / rate
			t.DoneAt = now.Add(-time.Duration(overshoot * float64(time.Second)))
			t.Work = 0
			finished = append(finished, t)
		}
	}
	mTasksCompleted.Add(uint64(len(finished)))
	for _, t := range finished {
		delete(h.tasks, t.ID)
		if err := h.VMs.Release(t.VMID, now); err != nil {
			// A released VM in a bad state indicates an internal bug; tasks
			// own their VM exclusively between Acquire and Release.
			panic(fmt.Sprintf("grid: releasing %s: %v", t.VMID, err))
		}
		if perOwner[t.Owner] == 1 && !ownerHasTasks(h, t.Owner) {
			// Owner no longer computes here: stop charging them.
			_ = h.Market.SetActive(t.Owner, false)
		}
		if t.OnDone != nil {
			t.OnDone(t)
		}
	}
}

func ownerHasTasks(h *Host, owner auction.BidderID) bool {
	for _, t := range h.tasks {
		if t.Owner == owner {
			return true
		}
	}
	return false
}

// CancelTask aborts a running task: the VM is released, the owner is
// deactivated when this was their last task on the host, and OnDone does NOT
// fire. Progress already made is simply lost (the paper's jobs are
// restartable bag-of-tasks chunks).
func (c *Cluster) CancelTask(hostID, taskID string) error {
	h, err := c.Host(hostID)
	if err != nil {
		return err
	}
	t, ok := h.tasks[taskID]
	if !ok {
		return fmt.Errorf("grid: unknown task %q on %q", taskID, hostID)
	}
	delete(h.tasks, taskID)
	mTasksCancelled.Inc()
	if err := h.VMs.Release(t.VMID, c.engine.Now()); err != nil {
		panic(fmt.Sprintf("grid: cancelling %s: %v", t.VMID, err))
	}
	if !ownerHasTasks(h, t.Owner) {
		_ = h.Market.SetActive(t.Owner, false)
	}
	return nil
}

// Progress returns a task's completed fraction in [0, 1], or an error if the
// task is unknown on that host (completed tasks are forgotten).
func (c *Cluster) Progress(hostID, taskID string) (float64, error) {
	h, err := c.Host(hostID)
	if err != nil {
		return 0, err
	}
	t, ok := h.tasks[taskID]
	if !ok {
		return 0, fmt.Errorf("grid: unknown task %q on %q", taskID, hostID)
	}
	return 1 - t.Work/t.TotalWork, nil
}
