package grid

import (
	"errors"
	"testing"
	"time"

	"tycoongrid/internal/bank"
)

func TestFailHostKillsTasksAndRefundsBids(t *testing.T) {
	c, eng := testCluster(t, 2)
	deadline := eng.Now().Add(time.Hour)
	if _, err := c.PlaceBid("h00", "alice", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceBid("h00", "bob", 5*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	h00, _ := c.Host("h00")
	if err := h00.Market.SetActive("bob", false); err != nil { // bob reserves but does not compute
		t.Fatal(err)
	}
	doneFired := false
	if _, err := c.StartTask("h00", "alice", nil, 3600*2800, func(*Task) { doneFired = true }); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(30 * time.Second) // a few ticks: alice is charged, bob idles

	var seen *HostFailure
	c.OnHostFailure = func(f HostFailure) { seen = &f }
	f, err := c.FailHost("h00")
	if err != nil {
		t.Fatal(err)
	}
	if seen == nil || seen.HostID != "h00" {
		t.Fatalf("OnHostFailure = %+v", seen)
	}
	if len(f.Tasks) != 1 || f.Tasks[0].Owner != "alice" {
		t.Fatalf("killed tasks = %+v", f.Tasks)
	}
	if doneFired {
		t.Error("OnDone fired for a killed task")
	}
	// Both bids refunded; alice paid for 30s of exclusive use, bob was idle
	// so his full 5 credits come back.
	refunds := make(map[string]bank.Amount)
	for _, b := range f.Bids {
		refunds[string(b.Bidder)] = b.Amount
	}
	if refunds["bob"] != 5*bank.Credit {
		t.Errorf("bob refund = %v, want full 5 credits", refunds["bob"])
	}
	if r := refunds["alice"]; r <= 0 || r >= 10*bank.Credit {
		t.Errorf("alice refund = %v, want partial", r)
	}

	h, _ := c.Host("h00")
	if !h.Down() || h.RunningTasks() != 0 || h.VMs.Live() != 0 || h.Market.Bidders() != 0 {
		t.Errorf("host not fully cleared: down=%v tasks=%d vms=%d bidders=%d",
			h.Down(), h.RunningTasks(), h.VMs.Live(), h.Market.Bidders())
	}
}

func TestDownHostRejectsOperations(t *testing.T) {
	c, eng := testCluster(t, 1)
	if _, err := c.FailHost("h00"); err != nil {
		t.Fatal(err)
	}
	deadline := eng.Now().Add(time.Hour)
	if _, err := c.PlaceBid("h00", "alice", bank.Credit, deadline); !errors.Is(err, ErrHostDown) {
		t.Errorf("PlaceBid on down host: %v", err)
	}
	if err := c.Boost("h00", "alice", bank.Credit); !errors.Is(err, ErrHostDown) {
		t.Errorf("Boost on down host: %v", err)
	}
	if _, err := c.StartTask("h00", "alice", nil, 100, nil); !errors.Is(err, ErrHostDown) {
		t.Errorf("StartTask on down host: %v", err)
	}
	if _, err := c.FailHost("h00"); !errors.Is(err, ErrHostDown) {
		t.Errorf("double FailHost: %v", err)
	}
}

func TestRecoverHostResyncsMarketClock(t *testing.T) {
	c, eng := testCluster(t, 1)
	if _, err := c.FailHost("h00"); err != nil {
		t.Fatal(err)
	}
	// A long outage passes. On recovery the market clock must jump to now so
	// a fresh bid is not billed for the outage window at the next tick.
	eng.RunFor(time.Hour)
	if err := c.RecoverHost("h00"); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverHost("h00"); err == nil {
		t.Error("double RecoverHost accepted")
	}
	deadline := eng.Now().Add(time.Hour)
	if _, err := c.PlaceBid("h00", "alice", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartTask("h00", "alice", nil, 3600*2800, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * time.Second) // exactly one tick
	h, _ := c.Host("h00")
	remaining, err := h.Market.Remaining("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Bid rate = 10 credits / 1 hour; one 10 s interval of exclusive use must
	// charge ~10s worth, not an hour's worth.
	spent := 10*bank.Credit - remaining
	tickFraction := 10.0 / 3600.0                                          // one 10 s tick of a 1 h bid
	maxExpected := bank.Amount(2 * tickFraction * float64(10*bank.Credit)) // generous 2x bound
	if spent <= 0 || spent > maxExpected {
		t.Errorf("first-tick charge after recovery = %v, want (0, %v]", spent, maxExpected)
	}
}

func TestFailedHostSkippedByTick(t *testing.T) {
	c, eng := testCluster(t, 2)
	deadline := eng.Now().Add(time.Hour)
	if _, err := c.PlaceBid("h01", "alice", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	var done *Task
	if _, err := c.StartTask("h01", "alice", nil, 60*2800, func(t *Task) { done = t }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailHost("h00"); err != nil {
		t.Fatal(err)
	}
	// The surviving host still makes progress.
	eng.RunFor(2 * time.Minute)
	if done == nil {
		t.Error("task on surviving host did not finish while h00 was down")
	}
}
