package grid

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/mathx"
	"tycoongrid/internal/sim"
)

// testCluster builds a cluster of n dual-CPU 2800 MHz hosts with no
// virtualization overheads (so arithmetic in tests is exact).
func testCluster(t *testing.T, n int) (*Cluster, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	specs := make([]HostSpec, n)
	for i := range specs {
		specs[i] = HostSpec{ID: fmt.Sprintf("h%02d", i), CPUs: 2, CPUMHz: 2800, MaxVMs: 30}
	}
	c, err := New(eng, Config{Hosts: specs})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c, eng
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(nil, Config{Hosts: []HostSpec{{ID: "h", CPUs: 1, CPUMHz: 100}}}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, Config{}); !errors.Is(err, ErrBadSpec) {
		t.Error("no hosts accepted")
	}
	if _, err := New(eng, Config{Hosts: []HostSpec{{ID: "", CPUs: 1, CPUMHz: 100}}}); !errors.Is(err, ErrBadSpec) {
		t.Error("empty id accepted")
	}
	dup := []HostSpec{{ID: "h", CPUs: 1, CPUMHz: 100}, {ID: "h", CPUs: 1, CPUMHz: 100}}
	if _, err := New(eng, Config{Hosts: dup}); !errors.Is(err, ErrBadSpec) {
		t.Error("duplicate id accepted")
	}
}

func TestStartStop(t *testing.T) {
	c, _ := testCluster(t, 1)
	if err := c.Start(); err == nil {
		t.Error("double start accepted")
	}
	c.Stop()
	c.Stop() // idempotent
	if err := c.Start(); err != nil {
		t.Errorf("restart after stop: %v", err)
	}
}

func TestSingleTaskFullSpeed(t *testing.T) {
	c, eng := testCluster(t, 1)
	deadline := eng.Now().Add(2 * time.Hour)
	if _, err := c.PlaceBid("h00", "alice", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	// One single-threaded task: capped at one CPU (2800 MHz) even with a
	// 100% share of the 5600 MHz host. Work = 10 minutes at one CPU.
	work := 600 * 2800.0
	var done *Task
	if _, err := c.StartTask("h00", "alice", nil, work, func(t *Task) { done = t }); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(11 * time.Minute)
	if done == nil {
		t.Fatal("task did not finish")
	}
	elapsed := done.DoneAt.Sub(sim.Epoch)
	if !mathx.AlmostEqual(elapsed.Seconds(), 600, 1) {
		t.Errorf("task took %v, want ~10min (one-CPU cap)", elapsed)
	}
}

func TestDualCPUNoCompetition(t *testing.T) {
	c, eng := testCluster(t, 1)
	deadline := eng.Now().Add(2 * time.Hour)
	// Two users with equal bids on a dual-CPU host: each gets a 50% share
	// = 2800 MHz = one full CPU. Both finish as fast as running alone.
	for _, u := range []auction.BidderID{"u1", "u2"} {
		if _, err := c.PlaceBid("h00", u, 10*bank.Credit, deadline); err != nil {
			t.Fatal(err)
		}
	}
	work := 600 * 2800.0
	var times []time.Duration
	for _, u := range []auction.BidderID{"u1", "u2"} {
		if _, err := c.StartTask("h00", u, nil, work, func(t *Task) {
			times = append(times, t.DoneAt.Sub(sim.Epoch))
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(11 * time.Minute)
	if len(times) != 2 {
		t.Fatalf("finished %d tasks", len(times))
	}
	for i, d := range times {
		if !mathx.AlmostEqual(d.Seconds(), 600, 1) {
			t.Errorf("task %d took %v, want ~10min (no CPU competition)", i, d)
		}
	}
}

func TestThreeUsersCompeteOnDualCPU(t *testing.T) {
	c, eng := testCluster(t, 1)
	deadline := eng.Now().Add(4 * time.Hour)
	// Three equal bidders on 2 CPUs: share = 1/3 of 5600 = 1866.7 MHz < one
	// CPU, so everyone runs below full speed.
	work := 600 * 2800.0
	n := 0
	for _, u := range []auction.BidderID{"u1", "u2", "u3"} {
		if _, err := c.PlaceBid("h00", u, 10*bank.Credit, deadline); err != nil {
			t.Fatal(err)
		}
		if _, err := c.StartTask("h00", u, nil, work, func(task *Task) {
			n++
			elapsed := task.DoneAt.Sub(sim.Epoch).Seconds()
			if !mathx.AlmostEqual(elapsed, 900, 15) { // 600 * 3/2
				t.Errorf("task took %vs, want ~900s", elapsed)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(20 * time.Minute)
	if n != 3 {
		t.Fatalf("finished %d tasks", n)
	}
}

func TestProportionalProgress(t *testing.T) {
	c, eng := testCluster(t, 1)
	deadline := eng.Now().Add(4 * time.Hour)
	// u1 bids 3x u2: on 2 CPUs u1's share is 75% (4200 MHz) capped at 2800,
	// u2 gets 25% = 1400 MHz.
	if _, err := c.PlaceBid("h00", "u1", 30*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceBid("h00", "u2", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	work := 600 * 2800.0
	var tRich, tPoor time.Duration
	if _, err := c.StartTask("h00", "u1", nil, work, func(t *Task) { tRich = t.DoneAt.Sub(sim.Epoch) }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartTask("h00", "u2", nil, work, func(t *Task) { tPoor = t.DoneAt.Sub(sim.Epoch) }); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(40 * time.Minute)
	if tRich == 0 || tPoor == 0 {
		t.Fatal("tasks did not finish")
	}
	if !mathx.AlmostEqual(tRich.Seconds(), 600, 11) {
		t.Errorf("rich task %v, want ~600s (capped at one CPU)", tRich)
	}
	if !mathx.AlmostEqual(tPoor.Seconds(), 1200, 15) {
		t.Errorf("poor task %v, want ~1200s (1400 MHz)", tPoor)
	}
}

func TestVMOverheadDelaysStart(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{Hosts: []HostSpec{{
		ID: "h", CPUs: 1, CPUMHz: 1000, MaxVMs: 5,
		CreateOverhead: 2 * time.Minute,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceBid("h", "u", 10*bank.Credit, eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	var done *Task
	if _, err := c.StartTask("h", "u", nil, 600*1000, func(t *Task) { done = t }); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(15 * time.Minute)
	if done == nil {
		t.Fatal("task did not finish")
	}
	elapsed := done.DoneAt.Sub(sim.Epoch).Seconds()
	if !mathx.AlmostEqual(elapsed, 720, 11) { // 120s boot + 600s compute
		t.Errorf("elapsed = %vs, want ~720s (boot overhead included)", elapsed)
	}
}

func TestChargesFlowThroughCallback(t *testing.T) {
	c, eng := testCluster(t, 1)
	var charged bank.Amount
	var refunded bank.Amount
	c.OnCharge = func(host string, ch auction.Charge) {
		if host != "h00" || ch.Bidder != "u" {
			t.Errorf("unexpected charge %v on %s", ch, host)
		}
		charged += ch.Amount
	}
	c.OnRefund = func(host string, ch auction.Charge) { refunded += ch.Amount }
	deadline := eng.Now().Add(10 * time.Minute)
	if _, err := c.PlaceBid("h00", "u", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	// Long task: runs the full 10 minutes, consuming the whole budget.
	if _, err := c.StartTask("h00", "u", nil, 1e12, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(20 * time.Minute)
	if charged+refunded != 10*bank.Credit {
		t.Errorf("charged %v + refunded %v != budget", charged, refunded)
	}
	if charged != 10*bank.Credit {
		t.Errorf("active task should consume the full budget, charged %v", charged)
	}
}

func TestIdleOwnerRefundedNotCharged(t *testing.T) {
	c, eng := testCluster(t, 1)
	var charged, refunded bank.Amount
	c.OnCharge = func(string, auction.Charge) { t.Error("idle bidder charged") }
	c.OnRefund = func(_ string, ch auction.Charge) { refunded += ch.Amount }
	_ = charged
	deadline := eng.Now().Add(5 * time.Minute)
	if _, err := c.PlaceBid("h00", "idle", 10*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Host("h00")
	if err := h.Market.SetActive("idle", false); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(10 * time.Minute)
	if refunded != 10*bank.Credit {
		t.Errorf("refund = %v, want full budget back", refunded)
	}
}

func TestTaskCompletionFreesVMAndDeactivates(t *testing.T) {
	c, eng := testCluster(t, 1)
	deadline := eng.Now().Add(time.Hour)
	if _, err := c.PlaceBid("h00", "u", 36*bank.Credit, deadline); err != nil {
		t.Fatal(err)
	}
	if _, err := c.StartTask("h00", "u", nil, 60*2800, nil); err != nil {
		t.Fatal(err)
	}
	h, _ := c.Host("h00")
	if h.RunningTasks() != 1 {
		t.Fatal("task not registered")
	}
	eng.RunFor(5 * time.Minute)
	if h.RunningTasks() != 0 {
		t.Error("finished task still registered")
	}
	if h.VMs.Running() != 0 || h.VMs.Live() != 1 {
		t.Errorf("vm state: running=%d live=%d", h.VMs.Running(), h.VMs.Live())
	}
	// After completion the owner is inactive: no further charges.
	var lateCharges bank.Amount
	c.OnCharge = func(_ string, ch auction.Charge) { lateCharges += ch.Amount }
	eng.RunFor(5 * time.Minute)
	if lateCharges != 0 {
		t.Errorf("charged %v after task completion", lateCharges)
	}
}

func TestProgressReporting(t *testing.T) {
	c, eng := testCluster(t, 1)
	if _, err := c.PlaceBid("h00", "u", 100*bank.Credit, eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	task, err := c.StartTask("h00", "u", nil, 600*2800, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(5 * time.Minute)
	p, err := c.Progress("h00", task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(p, 0.5, 0.05) {
		t.Errorf("progress = %v, want ~0.5", p)
	}
	if _, err := c.Progress("h00", "nope"); err == nil {
		t.Error("unknown task accepted")
	}
	if _, err := c.Progress("ghost", task.ID); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("unknown host: %v", err)
	}
}

func TestStartTaskValidation(t *testing.T) {
	c, _ := testCluster(t, 1)
	if _, err := c.StartTask("ghost", "u", nil, 100, nil); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("ghost host: %v", err)
	}
	if _, err := c.StartTask("h00", "u", nil, -1, nil); err == nil {
		t.Error("negative work accepted")
	}
}

func TestBoostSpeedsUpTask(t *testing.T) {
	c, eng := testCluster(t, 1)
	deadline := eng.Now().Add(4 * time.Hour)
	// Three competitors saturate both CPUs; boosting one shifts shares.
	for _, u := range []auction.BidderID{"a", "b", "c"} {
		if _, err := c.PlaceBid("h00", u, 10*bank.Credit, deadline); err != nil {
			t.Fatal(err)
		}
		if _, err := c.StartTask("h00", u, nil, 1200*2800, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunFor(2 * time.Minute)
	before, _ := c.Progress("h00", "task-00001")
	if err := c.Boost("h00", "a", 100*bank.Credit); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(2 * time.Minute)
	after, _ := c.Progress("h00", "task-00001")
	// With the boost, "a" runs at the one-CPU cap; in 2 minutes it should
	// gain clearly more than in the first 2 minutes.
	if after-before <= before {
		t.Errorf("boost ineffective: first window %v, second %v", before, after-before)
	}
	if err := c.Boost("ghost", "a", bank.Credit); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("ghost boost: %v", err)
	}
}

func TestPurgeIdleVMs(t *testing.T) {
	eng := sim.NewEngine()
	c, err := New(eng, Config{
		Hosts:          []HostSpec{{ID: "h", CPUs: 1, CPUMHz: 1000, MaxVMs: 5}},
		PurgeIdleAfter: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceBid("h", "u", 100*bank.Credit, eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// A one-minute task leaves an idle VM behind.
	if _, err := c.StartTask("h", "u", nil, 60*1000, nil); err != nil {
		t.Fatal(err)
	}
	eng.RunFor(3 * time.Minute)
	h, _ := c.Host("h")
	if h.VMs.Live() != 1 {
		t.Fatalf("live VMs = %d after task", h.VMs.Live())
	}
	// After the purge horizon the idle VM is destroyed.
	eng.RunFor(10 * time.Minute)
	if h.VMs.Live() != 0 {
		t.Errorf("idle VM not purged: live = %d", h.VMs.Live())
	}
	if h.VMs.Stats().Purged != 1 {
		t.Errorf("purged = %d", h.VMs.Stats().Purged)
	}
}

func TestHostAccessors(t *testing.T) {
	c, _ := testCluster(t, 3)
	ids := c.HostIDs()
	if len(ids) != 3 || ids[0] != "h00" || ids[2] != "h02" {
		t.Errorf("ids = %v", ids)
	}
	h, err := c.Host("h01")
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalMHz() != 5600 || h.PerCPUMHz() != 2800 {
		t.Errorf("capacities: %v / %v", h.TotalMHz(), h.PerCPUMHz())
	}
	if c.Interval() != auction.DefaultInterval {
		t.Errorf("interval = %v", c.Interval())
	}
}
