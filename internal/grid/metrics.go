package grid

import "tycoongrid/internal/metrics"

// Cluster instrumentation. The gauges are recomputed once per reallocation
// tick (the natural sampling interval of the simulated grid) rather than on
// every task event.
var (
	mTicks = metrics.Default().Counter("grid_reallocation_ticks_total",
		"Cluster-wide reallocation ticks executed.")
	mTasksStarted = metrics.Default().Counter("grid_tasks_started_total",
		"Sub-job tasks launched into VMs.")
	mTasksCompleted = metrics.Default().Counter("grid_tasks_completed_total",
		"Tasks that ran to completion.")
	mTasksCancelled = metrics.Default().Counter("grid_tasks_cancelled_total",
		"Tasks aborted before completion.")
	mRunningTasks = metrics.Default().Gauge("grid_running_tasks",
		"Live tasks across all hosts, sampled at the last tick.")
	mHostUtilization = metrics.Default().Gauge("grid_host_utilization",
		"Fraction of hosts running at least one task, sampled at the last tick.")
	mHostFailures = metrics.Default().Counter("host_failures_total",
		"Host crashes injected or observed (FailHost calls).")
	mHostRecoveries = metrics.Default().Counter("host_recoveries_total",
		"Failed hosts brought back online (RecoverHost calls).")
	mHostsDown = metrics.Default().Gauge("hosts_down",
		"Hosts currently failed, sampled at the last tick.")
	mTasksKilled = metrics.Default().Counter("grid_tasks_killed_total",
		"Running tasks killed by host failures.")
)
