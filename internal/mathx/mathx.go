// Package mathx provides the numerical primitives shared by the market's
// prediction stack: the standard normal distribution (CDF, PDF, quantile),
// numerically stable accumulators, and small helpers for root finding.
//
// Everything here is pure and allocation-free so it can run inside the
// auctioneer's 10-second reallocation loop without GC pressure.
package mathx

import (
	"errors"
	"math"
)

// Sqrt2Pi is sqrt(2*pi), the normalization constant of the normal PDF.
const Sqrt2Pi = 2.5066282746310005024157652848110452530069867406099

// NormalPDF returns the density of the standard normal distribution at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / Sqrt2Pi
}

// NormalCDF returns Phi(x), the standard normal cumulative distribution
// function, using the relation Phi(x) = erfc(-x/sqrt(2))/2 which is accurate
// in both tails.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Phi^-1(p), the probit function, for p in (0, 1).
// It uses Acklam's rational approximation refined with one step of Halley's
// method, giving roughly full double precision. It panics on p outside
// (0, 1); callers validate user input first.
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("mathx: NormalQuantile requires 0 < p < 1")
	}
	x := acklam(p)
	// Halley refinement: e = Phi(x) - p; x -= e/phi(x) / (1 + x*e/(2*phi(x))).
	e := NormalCDF(x) - p
	u := e * Sqrt2Pi * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// acklam is Peter Acklam's rational approximation to the probit function,
// accurate to about 1.15e-9 before refinement.
func acklam(p float64) float64 {
	var (
		a = [6]float64{
			-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00,
		}
		b = [5]float64{
			-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01,
		}
		c = [6]float64{
			-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00,
		}
		d = [4]float64{
			7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00,
		}
	)
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) have the same sign.
var ErrNoBracket = errors.New("mathx: root not bracketed")

// Bisect finds x in [lo, hi] with f(x) ~= 0 to within tol using bisection.
// f must be continuous and f(lo), f(hi) must have opposite signs.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// KahanSum accumulates float64 values with compensated (Kahan) summation,
// which keeps the price statistics stable over millions of 10-second
// snapshots.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// Welford tracks a running mean and variance without storing samples,
// the "stateless" representation of §4.2 of the paper: only running sums
// are kept on the auctioneer.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased (n-1) variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into this one (parallel Welford / Chan et
// al.), used when a broker aggregates statistics from several auctioneers.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AlmostEqual reports whether a and b are within tol of each other, treating
// NaN as never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}
