// Package mathx provides the numerical primitives shared by the market's
// prediction stack: the standard normal distribution (CDF, PDF, quantile),
// numerically stable accumulators, and small helpers for root finding.
//
// Everything here is pure and allocation-free so it can run inside the
// auctioneer's 10-second reallocation loop without GC pressure.
package mathx

import (
	"errors"
	"math"
)

// Sqrt2Pi is sqrt(2*pi), the normalization constant of the normal PDF.
const Sqrt2Pi = 2.5066282746310005024157652848110452530069867406099

// NormalPDF returns the density of the standard normal distribution at x.
func NormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / Sqrt2Pi
}

// NormalCDF returns Phi(x), the standard normal cumulative distribution
// function, using the relation Phi(x) = erfc(-x/sqrt(2))/2 which is accurate
// in both tails.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Phi^-1(p), the probit function, for p in (0, 1).
// It uses Acklam's rational approximation refined with one step of Halley's
// method, giving roughly full double precision. It panics on p outside
// (0, 1); callers validate user input first.
func NormalQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("mathx: NormalQuantile requires 0 < p < 1")
	}
	x := acklam(p)
	// Halley refinement: e = Phi(x) - p; x -= e/phi(x) / (1 + x*e/(2*phi(x))).
	e := NormalCDF(x) - p
	u := e * Sqrt2Pi * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// acklam is Peter Acklam's rational approximation to the probit function,
// accurate to about 1.15e-9 before refinement.
func acklam(p float64) float64 {
	var (
		a = [6]float64{
			-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00,
		}
		b = [5]float64{
			-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01,
		}
		c = [6]float64{
			-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00,
		}
		d = [4]float64{
			7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00,
		}
	)
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// StudentTQuantile returns the inverse CDF of Student's t distribution with
// df degrees of freedom at probability p in (0, 1) — the critical value
// behind the replication runner's confidence intervals. df = 1 and df = 2
// use the closed forms; larger df start from the Cornish-Fisher expansion
// around the normal quantile (Abramowitz & Stegun 26.7.5) and polish with
// Newton steps on the exact CDF. It panics on p outside (0, 1) or df < 1;
// callers validate user input first.
func StudentTQuantile(p float64, df int) float64 {
	if !(p > 0 && p < 1) {
		panic("mathx: StudentTQuantile requires 0 < p < 1")
	}
	if df < 1 {
		panic("mathx: StudentTQuantile requires df >= 1")
	}
	if p == 0.5 {
		return 0
	}
	switch df {
	case 1: // Cauchy
		return math.Tan(math.Pi * (p - 0.5))
	case 2:
		a := 2*p - 1
		return a * math.Sqrt2 / math.Sqrt(1-a*a)
	}
	z := NormalQuantile(p)
	v := float64(df)
	z2 := z * z
	t := z +
		z*(z2+1)/(4*v) +
		z*(5*z2*z2+16*z2+3)/(96*v*v) +
		z*(3*z2*z2*z2+19*z2*z2+17*z2-15)/(384*v*v*v) +
		z*(79*z2*z2*z2*z2+776*z2*z2*z2+1482*z2*z2-1920*z2-945)/(92160*v*v*v*v)
	for i := 0; i < 3; i++ {
		d := studentTPDF(t, v)
		if d == 0 {
			break
		}
		t -= (studentTCDF(t, v) - p) / d
	}
	return t
}

func studentTPDF(x, v float64) float64 {
	lg1, _ := math.Lgamma((v + 1) / 2)
	lg2, _ := math.Lgamma(v / 2)
	return math.Exp(lg1 - lg2 - 0.5*math.Log(v*math.Pi) - (v+1)/2*math.Log1p(x*x/v))
}

func studentTCDF(x, v float64) float64 {
	ib := regIncBeta(v/2, 0.5, v/(v+x*x))
	if x >= 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// evaluated with the modified Lentz continued fraction.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	bt := math.Exp(lab - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(a, b, x) / a
	}
	return 1 - bt*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		eps  = 3e-16
		tiny = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 200; m++ {
		fm := float64(m)
		aa := fm * (b - fm) * x / ((qam + 2*fm) * (a + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + 2*fm) * (qap + 2*fm))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) have the same sign.
var ErrNoBracket = errors.New("mathx: root not bracketed")

// Bisect finds x in [lo, hi] with f(x) ~= 0 to within tol using bisection.
// f must be continuous and f(lo), f(hi) must have opposite signs.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// KahanSum accumulates float64 values with compensated (Kahan) summation,
// which keeps the price statistics stable over millions of 10-second
// snapshots.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// Welford tracks a running mean and variance without storing samples,
// the "stateless" representation of §4.2 of the paper: only running sums
// are kept on the auctioneer.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased (n-1) variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into this one (parallel Welford / Chan et
// al.), used when a broker aggregates statistics from several auctioneers.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AlmostEqual reports whether a and b are within tol of each other, treating
// NaN as never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}
