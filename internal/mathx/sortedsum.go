package mathx

import (
	"cmp"
	"slices"
)

// SortedSum folds value(k) over keys in ascending key order and returns the
// plain (uncompensated) float64 sum of every contribution whose ok result is
// true. It is the one shared definition of the repository's deterministic
// float fold: map-order summation perturbs totals in the last bit, and the
// market amplifies that into visibly different traces run over run, so every
// price-like sum — the auction's spot price, a shard's batched clear — must
// fold in the same fixed order. Plain += is deliberate: switching to
// compensated summation would change results in the last ulp and break
// bit-for-bit compatibility with recorded baselines.
//
// keys is sorted in place; callers pass a scratch slice they own.
func SortedSum[K cmp.Ordered](keys []K, value func(K) (float64, bool)) float64 {
	slices.Sort(keys)
	var sum float64
	for _, k := range keys {
		if v, ok := value(k); ok {
			sum += v
		}
	}
	return sum
}
