package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFSymmetricAndPeak(t *testing.T) {
	if got := NormalPDF(0); !AlmostEqual(got, 1/Sqrt2Pi, 1e-15) {
		t.Errorf("NormalPDF(0) = %v", got)
	}
	for _, x := range []float64{0.3, 1.7, 4.2} {
		if NormalPDF(x) != NormalPDF(-x) {
			t.Errorf("PDF not symmetric at %v", x)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.8, 0.8416212335729143},
		{0.9, 1.2815515655446004},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !AlmostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		// Map raw into (0.0001, 0.9999).
		p := 0.0001 + 0.9998*(math.Abs(math.Sin(raw)))
		if p <= 0 || p >= 1 {
			return true
		}
		x := NormalQuantile(p)
		return AlmostEqual(NormalCDF(x), p, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileTails(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 1e-3, 0.999, 1 - 1e-6} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !AlmostEqual(got, p, 1e-12*math.Max(1, 1/p)) {
			t.Errorf("tail p=%v: CDF(Q(p))=%v", p, got)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectEndpoints(t *testing.T) {
	f := func(x float64) float64 { return x - 1 }
	if r, err := Bisect(f, 1, 5, 1e-9); err != nil || r != 1 {
		t.Errorf("lo endpoint root: %v, %v", r, err)
	}
	if r, err := Bisect(f, -5, 1, 1e-9); err != nil || r != 1 {
		t.Errorf("hi endpoint root: %v, %v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-9)
	if err != ErrNoBracket {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	var k KahanSum
	// 1 + 1e-16 added 1e7 times loses the small term with naive summation.
	k.Add(1)
	for i := 0; i < 10_000_000; i++ {
		k.Add(1e-16)
	}
	want := 1 + 1e-9
	if !AlmostEqual(k.Sum(), want, 1e-12) {
		t.Errorf("Kahan sum = %.17g, want %.17g", k.Sum(), want)
	}
	k.Reset()
	if k.Sum() != 0 {
		t.Error("Reset did not zero the sum")
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	pv := v / float64(len(xs))
	sv := v / float64(len(xs)-1)
	if !AlmostEqual(w.Mean(), mean, 1e-12) {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if !AlmostEqual(w.Variance(), pv, 1e-12) {
		t.Errorf("variance = %v, want %v", w.Variance(), pv)
	}
	if !AlmostEqual(w.SampleVariance(), sv, 1e-12) {
		t.Errorf("sample variance = %v, want %v", w.SampleVariance(), sv)
	}
	if w.N() != int64(len(xs)) {
		t.Errorf("n = %d", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford should report zeros")
	}
	w.Add(7)
	if w.Mean() != 7 || w.Variance() != 0 || w.SampleVariance() != 0 {
		t.Error("single-sample Welford should have zero variance")
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		a := make([]float64, int(seedA)%17)
		b := make([]float64, int(seedB)%23)
		for i := range a {
			a[i] = float64(i)*1.3 + float64(seedA)
		}
		for i := range b {
			b[i] = float64(i)*-0.7 + float64(seedB)/3
		}
		var wa, wb, all Welford
		for _, x := range a {
			wa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			all.Add(x)
		}
		wa.Merge(wb)
		return wa.N() == all.N() &&
			AlmostEqual(wa.Mean(), all.Mean(), 1e-9) &&
			AlmostEqual(wa.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestAlmostEqualNaN(t *testing.T) {
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN should never compare equal")
	}
	if AlmostEqual(1, math.NaN(), 1) {
		t.Error("NaN should never compare equal")
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NormalQuantile(0.9)
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Two-sided 95% critical values t_{0.975,df} from standard tables.
	cases := []struct {
		df   int
		want float64
	}{
		{1, 12.706205},
		{2, 4.302653},
		{3, 3.182446},
		{5, 2.570582},
		{7, 2.364624},
		{10, 2.228139},
		{30, 2.042272},
		{120, 1.979930},
	}
	for _, c := range cases {
		if got := StudentTQuantile(0.975, c.df); !AlmostEqual(got, c.want, 1e-4) {
			t.Errorf("StudentTQuantile(0.975, %d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Off-center probability, exact median, and symmetry.
	if got := StudentTQuantile(0.6, 5); !AlmostEqual(got, 0.267181, 1e-4) {
		t.Errorf("StudentTQuantile(0.6, 5) = %v", got)
	}
	for _, df := range []int{1, 2, 4, 9, 50} {
		if got := StudentTQuantile(0.5, df); got != 0 {
			t.Errorf("median quantile df=%d: %v, want 0", df, got)
		}
		lo, hi := StudentTQuantile(0.1, df), StudentTQuantile(0.9, df)
		if !AlmostEqual(lo, -hi, 1e-9) {
			t.Errorf("df=%d not symmetric: %v vs %v", df, lo, hi)
		}
	}
	// Large df converges to the normal quantile.
	if n, s := NormalQuantile(0.975), StudentTQuantile(0.975, 100000); !AlmostEqual(n, s, 1e-3) {
		t.Errorf("large-df t %v should approach normal %v", s, n)
	}
}

func TestStudentTQuantilePanics(t *testing.T) {
	for _, bad := range []func(){
		func() { StudentTQuantile(0, 5) },
		func() { StudentTQuantile(1, 5) },
		func() { StudentTQuantile(-0.1, 5) },
		func() { StudentTQuantile(0.9, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-domain input")
				}
			}()
			bad()
		}()
	}
}
