package bank

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromCredits(t *testing.T) {
	cases := []struct {
		in   float64
		want Amount
	}{
		{1, Credit},
		{0.5, 500_000},
		{100, 100 * Credit},
		{0.000001, 1},
		{-2.25, -2_250_000},
		{0, 0},
	}
	for _, c := range cases {
		got, err := FromCredits(c.in)
		if err != nil {
			t.Errorf("FromCredits(%v): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("FromCredits(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFromCreditsErrors(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e19} {
		if _, err := FromCredits(v); err == nil {
			t.Errorf("FromCredits(%v): want error", v)
		}
	}
}

func TestMustCreditsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCredits(NaN) did not panic")
		}
	}()
	MustCredits(math.NaN())
}

func TestAmountString(t *testing.T) {
	cases := []struct {
		in   Amount
		want string
	}{
		{Credit, "1"},
		{500_000, "0.5"},
		{12_500_000, "12.5"},
		{1, "0.000001"},
		{-2_250_000, "-2.25"},
		{0, "0"},
		{100 * Credit, "100"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseAmount(t *testing.T) {
	cases := []struct {
		in   string
		want Amount
	}{
		{"1", Credit},
		{"0.5", 500_000},
		{"12.5", 12_500_000},
		{".25", 250_000},
		{"-2.25", -2_250_000},
		{"+3", 3 * Credit},
		{" 7 ", 7 * Credit},
		{"0.000001", 1},
		{"100", 100 * Credit},
	}
	for _, c := range cases {
		got, err := ParseAmount(c.in)
		if err != nil {
			t.Errorf("ParseAmount(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseAmount(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAmountErrors(t *testing.T) {
	for _, s := range []string{"", ".", "abc", "1.2.3", "0.0000001", "1e5", "9223372036854775807"} {
		if _, err := ParseAmount(s); err == nil {
			t.Errorf("ParseAmount(%q): want error", s)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		a := Amount(v % (1 << 50))
		got, err := ParseAmount(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCreditsRoundTrip(t *testing.T) {
	for _, a := range []Amount{0, 1, Credit, 42 * Credit, 123_456_789} {
		back, err := FromCredits(a.Credits())
		if err != nil || back != a {
			t.Errorf("round trip %v -> %v (%v)", a, back, err)
		}
	}
}

func TestAddChecked(t *testing.T) {
	if _, err := addChecked(MaxAmount, 1); err == nil {
		t.Error("want overflow error")
	}
	if _, err := addChecked(-MaxAmount, -2); err == nil {
		t.Error("want underflow error")
	}
	s, err := addChecked(40, 2)
	if err != nil || s != 42 {
		t.Errorf("addChecked = %v, %v", s, err)
	}
}
