package bank

import "tycoongrid/internal/metrics"

// Ledger instrumentation — the accounting visibility GridBank argues a grid
// economy needs before it is deployable. Rejection counters are split by
// cause so a spike in bad signatures (key mismatch, replayed clients) is
// distinguishable from ordinary insufficient-funds pressure.
var (
	mAccounts = metrics.Default().Gauge("bank_accounts",
		"Accounts currently registered, including sub-accounts.")
	mDeposits = metrics.Default().Counter("bank_deposits_total",
		"Operator deposits credited.")
	mTransfers = metrics.Default().Counter("bank_transfers_total",
		"Owner-signed transfers executed.")
	mTransferAmount = metrics.Default().Histogram("bank_transfer_amount_credits",
		"Amount of each executed transfer in credits; the _sum is total volume moved.",
		[]float64{0.1, 1, 10, 100, 1000, 10000, 100000})
	mRejectedSigs = metrics.Default().Counter("bank_rejected_signatures_total",
		"Transfers rejected because the owner signature failed verification.")
	mNonceReuse = metrics.Default().Counter("bank_nonce_reuse_total",
		"Transfers rejected for replaying an already-consumed nonce.")
	mInsufficient = metrics.Default().Counter("bank_insufficient_funds_total",
		"Transfers and internal moves rejected for insufficient balance.")
	mInternalMoves = metrics.Default().Counter("bank_internal_moves_total",
		"Broker/auctioneer-initiated moves (charges, refunds, funding).")
	mTransferReplays = metrics.Default().Counter("bank_transfer_replays_total",
		"Transfers answered from the stored receipt (idempotent client retry).")
	mRecoverySeconds = metrics.Default().Histogram("bank_recovery_seconds",
		"Time to rebuild bank state from the latest snapshot plus WAL replay.",
		[]float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 30})
	mTransferSeconds = metrics.Default().Histogram("bank_transfer_seconds",
		"Wall time of one executed transfer, group-commit wait included; exemplars carry the active trace.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 0.005, 0.01, 0.05, 0.1, 0.5})
)
