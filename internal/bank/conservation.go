package bank

import "tycoongrid/internal/metrics"

// mConservationDrift is set by RecordConservation — once per telemetry
// scrape tick, not per transaction, because computing the invariant walks
// every account and hold.
var mConservationDrift = metrics.Default().Gauge("bank_conservation_drift_credits",
	"Invariant total minus baseline minus minted deposits; nonzero means money was created or destroyed.")

// invariantLocked computes TotalMoney + HeldTotal − landed (see Totals for
// the derivation). Caller holds b.mu.
func (b *Bank) invariantLocked() Amount {
	var total, held, landed Amount
	for _, a := range b.accounts {
		total += a.Balance
	}
	for _, h := range b.holds {
		held += h.Amount
		if b.credited[h.TX] {
			landed += h.Amount
		}
	}
	return total + held - landed
}

// Drift returns how far the bank's invariant total has diverged from what
// its deposit history can explain. Zero always, if the ledger is sound.
//
// For a single bank (the bankd deployment) any nonzero value is corruption.
// In a sharded plane a cross-shard transfer legitimately shows −amount on
// the source shard and +amount on the destination between the two commit
// legs, so the conservation check there is the SUM of Drift across shards —
// which the marketbench and experiment harnesses compute before gauging it.
func (b *Bank) Drift() Amount {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.invariantLocked() - b.baseline - b.minted
}

// RecordConservation publishes Drift to the bank_conservation_drift_credits
// gauge. Single-bank daemons wire this as a telemetry probe; sharded
// harnesses sum Drift themselves and call RecordConservationSum instead.
func (b *Bank) RecordConservation() {
	mConservationDrift.Set(b.Drift().Credits())
}

// RecordConservationSum publishes a harness-computed fleet drift (the sum
// across all bank shards) to the same gauge.
func RecordConservationSum(banks []*Bank) {
	var sum Amount
	for _, b := range banks {
		sum += b.Drift()
	}
	mConservationDrift.Set(sum.Credits())
}
