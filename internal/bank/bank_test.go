package bank

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
)

// fixture bundles a bank with a few funded identities.
type fixture struct {
	bank  *Bank
	ca    *pki.CA
	alice *pki.Identity
	bob   *pki.Identity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.IssueDeterministic("/O=Grid/CN=Alice", [32]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := ca.IssueDeterministic("/O=Grid/CN=Bob", [32]byte{4})
	if err != nil {
		t.Fatal(err)
	}
	b := New(bankID, sim.NewEngine())
	for name, id := range map[AccountID]*pki.Identity{"alice": alice, "bob": bob} {
		if _, err := b.CreateAccount(name, id.Public()); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Deposit("alice", 100*Credit, "grant"); err != nil {
		t.Fatal(err)
	}
	return &fixture{bank: b, ca: ca, alice: alice, bob: bob}
}

// signedTransfer builds an owner-signed request.
func signedTransfer(id *pki.Identity, from, to AccountID, amount Amount, nonce string) TransferRequest {
	req := TransferRequest{From: from, To: to, Amount: amount, Nonce: nonce}
	req.Sig = id.Sign(req.SigningBytes())
	return req
}

func TestCreateAccountValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.bank.CreateAccount("alice", f.alice.Public()); !errors.Is(err, ErrDuplicateAccount) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := f.bank.CreateAccount("", f.alice.Public()); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := f.bank.CreateAccount("x", []byte{1, 2}); err == nil {
		t.Error("short key accepted")
	}
}

func TestDeposit(t *testing.T) {
	f := newFixture(t)
	bal, err := f.bank.Balance("alice")
	if err != nil || bal != 100*Credit {
		t.Fatalf("balance = %v, %v", bal, err)
	}
	if err := f.bank.Deposit("alice", 0, ""); !errors.Is(err, ErrNonPositive) {
		t.Errorf("zero deposit: %v", err)
	}
	if err := f.bank.Deposit("ghost", Credit, ""); !errors.Is(err, ErrNoAccount) {
		t.Errorf("ghost deposit: %v", err)
	}
}

func TestTransferHappyPath(t *testing.T) {
	f := newFixture(t)
	req := signedTransfer(f.alice, "alice", "bob", 30*Credit, "n1")
	r, err := f.bank.Transfer(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.TransferID != "n1" || r.From != "alice" || r.To != "bob" || r.Amount != 30*Credit {
		t.Errorf("receipt = %+v", r)
	}
	if !VerifyReceipt(f.bank.PublicKey(), r) {
		t.Error("bank receipt signature invalid")
	}
	aBal, _ := f.bank.Balance("alice")
	bBal, _ := f.bank.Balance("bob")
	if aBal != 70*Credit || bBal != 30*Credit {
		t.Errorf("balances %v / %v", aBal, bBal)
	}
}

func TestTransferRejectsForgedSignature(t *testing.T) {
	f := newFixture(t)
	// Bob signs a transfer out of Alice's account.
	req := TransferRequest{From: "alice", To: "bob", Amount: Credit, Nonce: "n2"}
	req.Sig = f.bob.Sign(req.SigningBytes())
	if _, err := f.bank.Transfer(req); !errors.Is(err, ErrBadAuthorization) {
		t.Errorf("forged: %v", err)
	}
	// Tampered amount after signing.
	req = signedTransfer(f.alice, "alice", "bob", Credit, "n3")
	req.Amount = 50 * Credit
	if _, err := f.bank.Transfer(req); !errors.Is(err, ErrBadAuthorization) {
		t.Errorf("tampered: %v", err)
	}
}

func TestTransferNonceReplay(t *testing.T) {
	f := newFixture(t)
	req := signedTransfer(f.alice, "alice", "bob", Credit, "dup")
	first, err := f.bank.Transfer(req)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the identical request is an idempotent retry: the stored
	// receipt comes back and no money moves a second time.
	again, err := f.bank.Transfer(req)
	if err != nil {
		t.Fatalf("idempotent replay: %v", err)
	}
	if !bytes.Equal(again.BankSig, first.BankSig) || again.At != first.At {
		t.Errorf("replay returned a different receipt: %+v vs %+v", again, first)
	}
	if bal, _ := f.bank.Balance("bob"); bal != Credit {
		t.Errorf("replay moved money twice: bob has %v", bal)
	}
	// Reusing the nonce with different terms is a replay attack and fails.
	other := signedTransfer(f.alice, "alice", "bob", 2*Credit, "dup")
	if _, err := f.bank.Transfer(other); !errors.Is(err, ErrNonceReused) {
		t.Errorf("nonce reuse with new terms: %v", err)
	}
}

func TestTransferInsufficientFunds(t *testing.T) {
	f := newFixture(t)
	req := signedTransfer(f.alice, "alice", "bob", 1000*Credit, "big")
	if _, err := f.bank.Transfer(req); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("overdraft: %v", err)
	}
	// Failed transfer must not consume the nonce.
	req2 := signedTransfer(f.alice, "alice", "bob", Credit, "big")
	if _, err := f.bank.Transfer(req2); err != nil {
		t.Errorf("nonce burned by failed transfer: %v", err)
	}
}

func TestTransferValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.bank.Transfer(signedTransfer(f.alice, "alice", "bob", 0, "z")); !errors.Is(err, ErrNonPositive) {
		t.Errorf("zero: %v", err)
	}
	if _, err := f.bank.Transfer(signedTransfer(f.alice, "alice", "ghost", Credit, "g")); !errors.Is(err, ErrNoAccount) {
		t.Errorf("ghost dest: %v", err)
	}
	if _, err := f.bank.Transfer(signedTransfer(f.alice, "ghost", "bob", Credit, "g2")); !errors.Is(err, ErrNoAccount) {
		t.Errorf("ghost src: %v", err)
	}
	req := signedTransfer(f.alice, "alice", "bob", Credit, "")
	if _, err := f.bank.Transfer(req); err == nil {
		t.Error("empty nonce accepted")
	}
}

func TestVerifyReceiptRejectsTampering(t *testing.T) {
	f := newFixture(t)
	r, err := f.bank.Transfer(signedTransfer(f.alice, "alice", "bob", Credit, "vr"))
	if err != nil {
		t.Fatal(err)
	}
	bad := r
	bad.Amount = 500 * Credit
	if VerifyReceipt(f.bank.PublicKey(), bad) {
		t.Error("tampered receipt verified")
	}
	bad = r
	bad.To = "mallory"
	if VerifyReceipt(f.bank.PublicKey(), bad) {
		t.Error("redirected receipt verified")
	}
}

func TestSubAccounts(t *testing.T) {
	f := newFixture(t)
	broker, _ := f.ca.IssueDeterministic("/CN=Broker", [32]byte{9})
	if _, err := f.bank.CreateAccount("broker", broker.Public()); err != nil {
		t.Fatal(err)
	}
	sub, err := f.bank.CreateSubAccount("broker", "job-1", broker.Public())
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID != "broker/job-1" || sub.Parent != "broker" {
		t.Errorf("sub = %+v", sub)
	}
	if _, err := f.bank.CreateSubAccount("ghost", "x", broker.Public()); !errors.Is(err, ErrNoAccount) {
		t.Errorf("ghost parent: %v", err)
	}
}

func TestMoveInternal(t *testing.T) {
	f := newFixture(t)
	broker, _ := f.ca.IssueDeterministic("/CN=Broker", [32]byte{9})
	if _, err := f.bank.CreateAccount("broker", broker.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateSubAccount("broker", "job-1", broker.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.Deposit("broker", 50*Credit, ""); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.MoveInternal(broker, "broker", "broker/job-1", 20*Credit, EntryTransfer, "fund job"); err != nil {
		t.Fatal(err)
	}
	bal, _ := f.bank.Balance("broker/job-1")
	if bal != 20*Credit {
		t.Errorf("sub balance = %v", bal)
	}
	// Alice's key cannot move broker funds.
	if err := f.bank.MoveInternal(f.alice, "broker", "broker/job-1", Credit, EntryTransfer, ""); !errors.Is(err, ErrBadAuthorization) {
		t.Errorf("wrong owner: %v", err)
	}
	if err := f.bank.MoveInternal(broker, "broker", "broker/job-1", 1000*Credit, EntryTransfer, ""); !errors.Is(err, ErrInsufficientFunds) {
		t.Errorf("overdraft: %v", err)
	}
}

func TestHistoryAndLedger(t *testing.T) {
	f := newFixture(t)
	if _, err := f.bank.Transfer(signedTransfer(f.alice, "alice", "bob", Credit, "h1")); err != nil {
		t.Fatal(err)
	}
	h := f.bank.History("alice")
	if len(h) != 2 { // deposit + transfer
		t.Fatalf("history = %d entries", len(h))
	}
	if h[0].Kind != EntryDeposit || h[1].Kind != EntryTransfer {
		t.Errorf("kinds = %v, %v", h[0].Kind, h[1].Kind)
	}
	if h[0].Seq >= h[1].Seq {
		t.Error("ledger sequence not increasing")
	}
	if len(f.bank.History("ghost")) != 0 {
		t.Error("ghost history should be empty")
	}
}

func TestMoneyConservation(t *testing.T) {
	f := newFixture(t)
	before := f.bank.TotalMoney()
	for i := 0; i < 20; i++ {
		nonce := fmt.Sprintf("c%d", i)
		if _, err := f.bank.Transfer(signedTransfer(f.alice, "alice", "bob", Credit, nonce)); err != nil {
			t.Fatal(err)
		}
	}
	if f.bank.TotalMoney() != before {
		t.Errorf("transfers changed total money: %v -> %v", before, f.bank.TotalMoney())
	}
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	f := newFixture(t)
	// Give bob funds so transfers flow both ways.
	if err := f.bank.Deposit("bob", 100*Credit, ""); err != nil {
		t.Fatal(err)
	}
	before := f.bank.TotalMoney()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var req TransferRequest
				if g%2 == 0 {
					req = signedTransfer(f.alice, "alice", "bob", Millicredit, fmt.Sprintf("a%d-%d", g, i))
				} else {
					req = signedTransfer(f.bob, "bob", "alice", Millicredit, fmt.Sprintf("b%d-%d", g, i))
				}
				// Insufficient funds under contention is acceptable; corruption is not.
				_, _ = f.bank.Transfer(req)
			}
		}(g)
	}
	wg.Wait()
	if got := f.bank.TotalMoney(); got != before {
		t.Errorf("concurrent transfers changed total: %v -> %v", before, got)
	}
	aBal, _ := f.bank.Balance("alice")
	bBal, _ := f.bank.Balance("bob")
	if aBal < 0 || bBal < 0 {
		t.Errorf("negative balance: alice=%v bob=%v", aBal, bBal)
	}
}

func TestAccountsListing(t *testing.T) {
	f := newFixture(t)
	ids := f.bank.Accounts()
	if len(ids) != 2 {
		t.Errorf("accounts = %v", ids)
	}
}
