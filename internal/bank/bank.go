package bank

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tycoongrid/internal/durable"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/tracing"
)

// Errors returned by Bank operations.
var (
	ErrNoAccount         = errors.New("bank: no such account")
	ErrDuplicateAccount  = errors.New("bank: account already exists")
	ErrInsufficientFunds = errors.New("bank: insufficient funds")
	ErrNonPositive       = errors.New("bank: amount must be positive")
	ErrBadAuthorization  = errors.New("bank: bad transfer authorization")
	ErrNonceReused       = errors.New("bank: transfer nonce already used")
	ErrNotSubAccount     = errors.New("bank: not a sub-account of the claimed parent")
)

// AccountID names an account. Sub-accounts use "parent/child" ids.
type AccountID string

// Account is the bank's view of one account.
type Account struct {
	ID      AccountID
	Owner   ed25519.PublicKey // key authorized to move funds out
	Parent  AccountID         // "" for top-level accounts
	Balance Amount
	Created time.Time
}

// EntryKind classifies ledger entries.
type EntryKind string

// Ledger entry kinds.
const (
	EntryDeposit  EntryKind = "deposit"
	EntryTransfer EntryKind = "transfer"
	EntryRefund   EntryKind = "refund"
	EntryCharge   EntryKind = "charge"
)

// Entry is one immutable ledger record.
type Entry struct {
	Seq    uint64
	Kind   EntryKind
	From   AccountID // "" for deposits
	To     AccountID
	Amount Amount
	Memo   string
	At     time.Time
}

// TransferRequest is the owner-signed authorization to move funds.
// The Nonce makes each authorization single-use.
type TransferRequest struct {
	From   AccountID
	To     AccountID
	Amount Amount
	Nonce  string
	Sig    []byte // owner signature over SigningBytes
}

// SigningBytes returns the canonical bytes the owner signs.
func (r *TransferRequest) SigningBytes() []byte {
	return canonical("tycoongrid-transfer-v1",
		string(r.From), string(r.To), amountBytes(r.Amount), r.Nonce)
}

// Receipt is the bank-signed proof that a transfer happened. It is the raw
// material of the paper's transfer tokens: the broker verifies the bank
// signature instead of querying the bank online.
type Receipt struct {
	TransferID string // equal to the request nonce
	From       AccountID
	To         AccountID
	Amount     Amount
	At         time.Time
	BankSig    []byte
}

// SigningBytes returns the canonical bytes the bank signs.
func (r *Receipt) SigningBytes() []byte {
	return canonical("tycoongrid-receipt-v1",
		r.TransferID, string(r.From), string(r.To),
		amountBytes(r.Amount), r.At.UTC().Format(time.RFC3339Nano))
}

// canonical builds a length-prefixed deterministic encoding of fields.
func canonical(fields ...any) []byte {
	var b bytes.Buffer
	for _, f := range fields {
		var p []byte
		switch v := f.(type) {
		case string:
			p = []byte(v)
		case []byte:
			p = v
		default:
			panic("bank: unsupported canonical field type")
		}
		var l [8]byte
		binary.BigEndian.PutUint64(l[:], uint64(len(p)))
		b.Write(l[:])
		b.Write(p)
	}
	return b.Bytes()
}

func amountBytes(a Amount) []byte {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], uint64(a))
	return p[:]
}

// Bank is a thread-safe ledger with signed receipts. By default it is purely
// in-memory; AttachDurability (wal.go) journals every mutation to a
// write-ahead log so the bank survives crashes.
type Bank struct {
	mu        sync.Mutex
	id        *pki.Identity
	clock     sim.Clock
	accounts  map[AccountID]*Account
	nonces    map[string]bool
	receipts  map[string]Receipt // issued receipts by nonce (idempotent replay)
	holds     map[string]*Hold   // prepared two-phase debits by tx (twophase.go)
	credited  map[string]bool    // applied two-phase credits by tx (idempotence)
	ledger    []Entry
	seq       uint64
	ledgerCap int // 0 = unbounded
	tracer    *tracing.Tracer

	// Conservation accounting (conservation.go): baseline is the invariant
	// total captured at construction or after WAL recovery; minted is the
	// money legitimately created by Deposit since then. Drift() should be
	// zero forever — the money-conservation SLO alerts when it is not.
	baseline Amount
	minted   Amount

	journal       *durable.Store // nil = in-memory only
	snapshotEvery int
	recSinceSnap  int
}

// Option customizes a Bank.
type Option func(*Bank)

// WithLedgerRetention caps the in-memory ledger at n entries; the oldest
// entries are dropped first. Balances are unaffected — only History is
// truncated. Long simulations produce millions of 10-second CPU
// micro-charges, so the experiment harnesses bound retention.
func WithLedgerRetention(n int) Option {
	return func(b *Bank) { b.ledgerCap = n }
}

// WithTracer makes the bank read its active job scope from t instead of the
// process-wide tracing.Default(). Replicated experiments give each world its
// own tracer so concurrent worlds never observe each other's scopes.
func WithTracer(t *tracing.Tracer) Option {
	return func(b *Bank) {
		if t != nil {
			b.tracer = t
		}
	}
}

// New creates a bank whose receipts are signed by identity id.
func New(id *pki.Identity, clock sim.Clock, opts ...Option) *Bank {
	if clock == nil {
		clock = sim.WallClock{}
	}
	b := &Bank{
		id:       id,
		clock:    clock,
		accounts: make(map[AccountID]*Account),
		nonces:   make(map[string]bool),
		receipts: make(map[string]Receipt),
		holds:    make(map[string]*Hold),
		credited: make(map[string]bool),
		tracer:   tracing.Default(),
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// PublicKey returns the key receipts are verified against.
func (b *Bank) PublicKey() ed25519.PublicKey { return b.id.Public() }

// CreateAccount registers a new top-level account owned by owner.
func (b *Bank) CreateAccount(id AccountID, owner ed25519.PublicKey) (*Account, error) {
	return b.createAccount(id, owner, "")
}

// CreateSubAccount registers child under parent, owned by owner (typically
// the broker's key). The paper's broker creates one sub-account per verified
// transfer token and funds host accounts from it.
func (b *Bank) CreateSubAccount(parent AccountID, child string, owner ed25519.PublicKey) (*Account, error) {
	b.mu.Lock()
	_, ok := b.accounts[parent]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: parent %q", ErrNoAccount, parent)
	}
	return b.createAccount(AccountID(string(parent)+"/"+child), owner, parent)
}

func (b *Bank) createAccount(id AccountID, owner ed25519.PublicKey, parent AccountID) (*Account, error) {
	if id == "" {
		return nil, errors.New("bank: empty account id")
	}
	if len(owner) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("bank: account %q: owner key has %d bytes, want %d",
			id, len(owner), ed25519.PublicKeySize)
	}
	cp, wait, err := b.createAccountLocked(id, owner, parent)
	if err != nil {
		return nil, err
	}
	if err := commitWait(wait); err != nil {
		return nil, err
	}
	return &cp, nil
}

func (b *Bank) createAccountLocked(id AccountID, owner ed25519.PublicKey, parent AccountID) (Account, func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.accounts[id]; ok {
		return Account{}, nil, fmt.Errorf("%w: %q", ErrDuplicateAccount, id)
	}
	a := &Account{ID: id, Owner: owner, Parent: parent, Created: b.clock.Now()}
	b.accounts[id] = a
	mAccounts.Inc()
	return *a, b.stage(encCreateAccount(a)), nil
}

// Lookup returns a copy of the account record.
func (b *Bank) Lookup(id AccountID) (Account, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.accounts[id]
	if !ok {
		return Account{}, fmt.Errorf("%w: %q", ErrNoAccount, id)
	}
	return *a, nil
}

// Balance returns the current balance of id.
func (b *Bank) Balance(id AccountID) (Amount, error) {
	a, err := b.Lookup(id)
	if err != nil {
		return 0, err
	}
	return a.Balance, nil
}

// Deposit credits amount to id out of thin air — the funding operation a
// grid operator uses to grant users periodic allocations.
func (b *Bank) Deposit(id AccountID, amount Amount, memo string) error {
	if amount <= 0 {
		return ErrNonPositive
	}
	wait, err := b.depositLocked(id, amount, memo)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) depositLocked(id AccountID, amount Amount, memo string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.accounts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, id)
	}
	nb, err := addChecked(a.Balance, amount)
	if err != nil {
		return nil, err
	}
	a.Balance = nb
	b.minted += amount
	at := b.clock.Now()
	b.appendEntryAt(EntryDeposit, "", id, amount, memo, at)
	mDeposits.Inc()
	return b.stage(encDeposit(id, amount, memo, at)), nil
}

// Transfer executes an owner-signed transfer request and returns a
// bank-signed receipt. The request nonce is consumed; replaying the exact
// same request (same from/to/amount, valid signature) returns the original
// receipt without moving money again — the idempotence HTTP clients rely on
// when they retry after a timeout or a bank restart. A request that reuses
// the nonce with different terms fails with ErrNonceReused.
func (b *Bank) Transfer(req TransferRequest) (Receipt, error) {
	if req.Amount <= 0 {
		return Receipt{}, ErrNonPositive
	}
	if req.Nonce == "" {
		return Receipt{}, errors.New("bank: empty transfer nonce")
	}
	wallStart := time.Now()
	r, wait, err := b.transferLocked(req)
	if err != nil {
		return Receipt{}, err
	}
	if err := commitWait(wait); err != nil {
		return Receipt{}, err
	}
	if s := b.tracer.Current(); s.Recording() {
		mTransferSeconds.ObserveExemplar(time.Since(wallStart).Seconds(), s.Context().TraceID.String())
	} else {
		mTransferSeconds.Observe(time.Since(wallStart).Seconds())
	}
	return r, nil
}

func (b *Bank) transferLocked(req TransferRequest) (Receipt, func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from, ok := b.accounts[req.From]
	if !ok {
		return Receipt{}, nil, fmt.Errorf("%w: %q", ErrNoAccount, req.From)
	}
	to, ok := b.accounts[req.To]
	if !ok {
		return Receipt{}, nil, fmt.Errorf("%w: %q", ErrNoAccount, req.To)
	}
	if !pki.Verify(from.Owner, req.SigningBytes(), req.Sig) {
		mRejectedSigs.Inc()
		return Receipt{}, nil, ErrBadAuthorization
	}
	if prev, ok := b.receipts[req.Nonce]; ok {
		if prev.From == req.From && prev.To == req.To && prev.Amount == req.Amount {
			mTransferReplays.Inc()
			return prev, nil, nil // already applied — return the stored receipt
		}
		mNonceReuse.Inc()
		return Receipt{}, nil, ErrNonceReused
	}
	if b.nonces[req.Nonce] {
		mNonceReuse.Inc()
		return Receipt{}, nil, ErrNonceReused
	}
	if from.Balance < req.Amount {
		mInsufficient.Inc()
		return Receipt{}, nil, fmt.Errorf("%w: %q has %v, needs %v",
			ErrInsufficientFunds, req.From, from.Balance, req.Amount)
	}
	nb, err := addChecked(to.Balance, req.Amount)
	if err != nil {
		return Receipt{}, nil, err
	}
	from.Balance -= req.Amount
	to.Balance = nb
	b.nonces[req.Nonce] = true
	mTransfers.Inc()
	mTransferAmount.Observe(req.Amount.Credits())

	r := Receipt{
		TransferID: req.Nonce,
		From:       req.From,
		To:         req.To,
		Amount:     req.Amount,
		At:         b.clock.Now(),
	}
	r.BankSig = b.id.Sign(r.SigningBytes())
	b.receipts[req.Nonce] = r
	b.appendEntryAt(EntryTransfer, req.From, req.To, req.Amount, "", r.At)
	return r, b.stage(encTransfer(r)), nil
}

// MoveInternal transfers between two accounts that share an owner key, on
// the owner's behalf, without a signed request. It is used by services that
// already hold the owner identity (the broker funding host accounts from a
// sub-account, or an auctioneer charging a host account).
func (b *Bank) MoveInternal(owner *pki.Identity, from, to AccountID, amount Amount, kind EntryKind, memo string) error {
	if amount <= 0 {
		return ErrNonPositive
	}
	wait, err := b.moveInternalLocked(owner, from, to, amount, kind, memo)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) moveInternalLocked(owner *pki.Identity, from, to AccountID, amount Amount, kind EntryKind, memo string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.accounts[from]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, from)
	}
	t, ok := b.accounts[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, to)
	}
	if !f.Owner.Equal(owner.Public()) {
		return nil, ErrBadAuthorization
	}
	if f.Balance < amount {
		mInsufficient.Inc()
		return nil, fmt.Errorf("%w: %q has %v, needs %v", ErrInsufficientFunds, from, f.Balance, amount)
	}
	nb, err := addChecked(t.Balance, amount)
	if err != nil {
		return nil, err
	}
	f.Balance -= amount
	t.Balance = nb
	at := b.clock.Now()
	b.appendEntryAt(kind, from, to, amount, memo, at)
	mInternalMoves.Inc()
	return b.stage(encMove(kind, from, to, amount, memo, at)), nil
}

// VerifyReceipt checks a receipt's bank signature against bankKey.
func VerifyReceipt(bankKey ed25519.PublicKey, r Receipt) bool {
	return pki.Verify(bankKey, r.SigningBytes(), r.BankSig)
}

// appendEntryAt records a ledger entry stamped at; callers hold b.mu. WAL
// replay passes the originally recorded time so recovered ledgers match the
// pre-crash ones.
func (b *Bank) appendEntryAt(kind EntryKind, from, to AccountID, amount Amount, memo string, at time.Time) {
	b.seq++
	b.ledger = append(b.ledger, Entry{
		Seq: b.seq, Kind: kind, From: from, To: to,
		Amount: amount, Memo: memo, At: at,
	})
	// Money moves executed inside a job scope (funding, refunds, boosts) show
	// up on that job's timeline — the GridBank-style per-job accounting trail.
	if s := b.tracer.Current(); s.Recording() {
		s.AddEventAt(at, "bank."+string(kind),
			tracing.String("from", string(from)),
			tracing.String("to", string(to)),
			tracing.String("amount", amount.String()),
			tracing.String("memo", memo))
	}
	// Trim lazily at 2x the cap so the copy cost amortizes to O(1).
	if b.ledgerCap > 0 && len(b.ledger) > 2*b.ledgerCap {
		drop := len(b.ledger) - b.ledgerCap
		b.ledger = append(b.ledger[:0], b.ledger[drop:]...)
	}
}

// History returns the ledger entries that touch id, oldest first.
func (b *Bank) History(id AccountID) []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Entry
	for _, e := range b.ledger {
		if e.From == id || e.To == id {
			out = append(out, e)
		}
	}
	return out
}

// TotalMoney returns the sum of all balances — conserved by every operation
// except Deposit; the invariant the property tests verify.
func (b *Bank) TotalMoney() Amount {
	total, _, _ := b.Totals()
	return total
}

// Totals returns the three quantities a single-bank conservation check
// needs: the sum of all balances, the money parked in outstanding holds,
// and the portion of held money whose two-phase credit has already landed
// on this same bank (so counting both the hold and the credited balance
// would double-count it). TotalMoney + HeldTotal − landed is invariant
// under every operation except Deposit, at every stage of the two-phase
// protocol and across any crash schedule.
func (b *Bank) Totals() (total, held, landed Amount) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, a := range b.accounts {
		total += a.Balance
	}
	for _, h := range b.holds {
		held += h.Amount
		if b.credited[h.TX] {
			landed += h.Amount
		}
	}
	return total, held, landed
}

// Accounts returns the ids of all accounts, in no particular order.
func (b *Bank) Accounts() []AccountID {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]AccountID, 0, len(b.accounts))
	for id := range b.accounts {
		out = append(out, id)
	}
	return out
}
