package bank

import (
	"testing"

	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
)

func TestDriftZeroAcrossOperations(t *testing.T) {
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	bankID, _ := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	alice, _ := ca.IssueDeterministic("/O=Grid/CN=Alice", [32]byte{3})
	bob, _ := ca.IssueDeterministic("/O=Grid/CN=Bob", [32]byte{4})

	b := New(bankID, sim.WallClock{})
	if got := b.Drift(); got != 0 {
		t.Fatalf("fresh bank drift = %v", got)
	}
	if _, err := b.CreateAccount("alice", alice.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateAccount("bob", bob.Public()); err != nil {
		t.Fatal(err)
	}
	if err := b.Deposit("alice", 500*Credit, "grant"); err != nil {
		t.Fatal(err)
	}
	if got := b.Drift(); got != 0 {
		t.Fatalf("drift after deposit = %v (minted must absorb deposits)", got)
	}
	req := TransferRequest{From: "alice", To: "bob", Amount: 120 * Credit, Nonce: "n1"}
	req.Sig = alice.Sign(req.SigningBytes())
	if _, err := b.Transfer(req); err != nil {
		t.Fatal(err)
	}
	if got := b.Drift(); got != 0 {
		t.Fatalf("drift after transfer = %v", got)
	}
	// RecordConservation must not panic and publishes the gauge.
	b.RecordConservation()
	RecordConservationSum([]*Bank{b})
}

// TestDriftBaselineSurvivesRecovery reopens a WAL-backed bank: the recovered
// balances become the new baseline, so drift is zero immediately after
// recovery even though the minted counter restarted.
func TestDriftBaselineSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture(t, dir, 2) // low threshold: force snapshots
	if _, err := f.bank.CreateAccount("alice", f.alice.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateAccount("bob", f.bob.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.Deposit("alice", 300*Credit, "grant"); err != nil {
		t.Fatal(err)
	}
	f.transfer(t, "alice", "bob", 50*Credit, "n1")
	if err := f.bank.Deposit("bob", 10*Credit, "bonus"); err != nil {
		t.Fatal(err)
	}
	if got := f.bank.Drift(); got != 0 {
		t.Fatalf("pre-restart drift = %v", got)
	}
	f.close(t)

	f.reopen(t, dir, 2)
	defer f.close(t)
	if got := f.bank.Drift(); got != 0 {
		t.Fatalf("post-recovery drift = %v (baseline must re-anchor)", got)
	}
	// And stays zero through post-recovery activity.
	if err := f.bank.Deposit("alice", 7*Credit, "more"); err != nil {
		t.Fatal(err)
	}
	f.transfer(t, "bob", "alice", 5*Credit, "n2")
	if got := f.bank.Drift(); got != 0 {
		t.Fatalf("post-recovery activity drift = %v", got)
	}
}
