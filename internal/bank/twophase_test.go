package bank

import (
	"errors"
	"testing"

	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
)

func twoPhaseFixture(t *testing.T) (*Bank, *pki.Identity) {
	t.Helper()
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{10})
	if err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", [32]byte{11})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.IssueDeterministic("/CN=Owner", [32]byte{12})
	if err != nil {
		t.Fatal(err)
	}
	b := New(bankID, sim.NewEngine())
	if _, err := b.CreateAccount("alice", id.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateAccount("bob", id.Public()); err != nil {
		t.Fatal(err)
	}
	if err := b.Deposit("alice", 100*Credit, "seed"); err != nil {
		t.Fatal(err)
	}
	return b, id
}

func TestTwoPhaseCommitPath(t *testing.T) {
	b, id := twoPhaseFixture(t)
	if err := b.PrepareDebit(id, "alice", "bob", 30*Credit, "tx1"); err != nil {
		t.Fatal(err)
	}
	if bal, _ := b.Balance("alice"); bal != 70*Credit {
		t.Fatalf("alice after prepare = %v, want 70", bal)
	}
	if got := b.HeldTotal(); got != 30*Credit {
		t.Fatalf("held = %v, want 30", got)
	}
	// Balances alone no longer conserve; balances + holds do.
	if b.TotalMoney()+b.HeldTotal() != 100*Credit {
		t.Fatal("money supply changed by prepare")
	}
	if err := b.FinalizeDebit("tx1"); !errors.Is(err, ErrHoldState) {
		t.Fatalf("finalize before commit = %v, want ErrHoldState", err)
	}
	if err := b.MarkCommitted("tx1"); err != nil {
		t.Fatal(err)
	}
	if err := b.AbortDebit("tx1"); !errors.Is(err, ErrHoldState) {
		t.Fatalf("abort after commit = %v, want ErrHoldState", err)
	}
	if err := b.CreditPrepared("bob", 30*Credit, "tx1", "pay"); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a recovery replay must not double-credit.
	if err := b.CreditPrepared("bob", 30*Credit, "tx1", "pay"); err != nil {
		t.Fatal(err)
	}
	if bal, _ := b.Balance("bob"); bal != 30*Credit {
		t.Fatalf("bob = %v, want 30", bal)
	}
	if err := b.FinalizeDebit("tx1"); err != nil {
		t.Fatal(err)
	}
	b.ForgetCredit("tx1")
	if len(b.Holds()) != 0 {
		t.Fatal("hold survived finalize")
	}
	if b.TotalMoney() != 100*Credit || b.HeldTotal() != 0 {
		t.Fatalf("supply after commit = %v + %v, want 100 + 0", b.TotalMoney(), b.HeldTotal())
	}
	// After ForgetCredit the tx id is reusable-looking but the hold is gone.
	if err := b.FinalizeDebit("tx1"); !errors.Is(err, ErrUnknownHold) {
		t.Fatalf("double finalize = %v, want ErrUnknownHold", err)
	}
}

func TestTwoPhaseAbortPath(t *testing.T) {
	b, id := twoPhaseFixture(t)
	if err := b.PrepareDebit(id, "alice", "bob", 40*Credit, "tx2"); err != nil {
		t.Fatal(err)
	}
	if err := b.AbortDebit("tx2"); err != nil {
		t.Fatal(err)
	}
	if bal, _ := b.Balance("alice"); bal != 100*Credit {
		t.Fatalf("alice after abort = %v, want 100", bal)
	}
	if len(b.Holds()) != 0 || b.HeldTotal() != 0 {
		t.Fatal("abort left a hold behind")
	}
	if err := b.AbortDebit("tx2"); !errors.Is(err, ErrUnknownHold) {
		t.Fatalf("double abort = %v, want ErrUnknownHold", err)
	}
}

func TestPrepareDebitValidation(t *testing.T) {
	b, id := twoPhaseFixture(t)
	if err := b.PrepareDebit(id, "alice", "bob", 200*Credit, "tx3"); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("overdraft prepare = %v, want ErrInsufficientFunds", err)
	}
	if err := b.PrepareDebit(id, "alice", "bob", 10*Credit, "tx4"); err != nil {
		t.Fatal(err)
	}
	if err := b.PrepareDebit(id, "alice", "bob", 10*Credit, "tx4"); !errors.Is(err, ErrDuplicateHold) {
		t.Fatalf("duplicate tx = %v, want ErrDuplicateHold", err)
	}
	other, err := pki.NewCA("/CN=Other")
	if err != nil {
		t.Fatal(err)
	}
	intruder, err := other.Issue("/CN=Intruder")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PrepareDebit(intruder, "alice", "bob", 1*Credit, "tx5"); !errors.Is(err, ErrBadAuthorization) {
		t.Fatalf("foreign identity prepare = %v, want ErrBadAuthorization", err)
	}
}

func TestPrepareTransferConsumesNonce(t *testing.T) {
	b, id := twoPhaseFixture(t)
	req := TransferRequest{From: "alice", To: "bob", Amount: 5 * Credit, Nonce: "n-1"}
	req.Sig = id.Sign(req.SigningBytes())
	if err := b.PrepareTransfer(req); err != nil {
		t.Fatal(err)
	}
	// The nonce is consumed at prepare time: a replay fails even before the
	// transfer completes.
	if err := b.AbortDebit("n-1"); err != nil {
		t.Fatal(err)
	}
	if err := b.PrepareTransfer(req); !errors.Is(err, ErrNonceReused) {
		t.Fatalf("replay = %v, want ErrNonceReused", err)
	}
}

func TestCreateChildAccountSkipsParentCheck(t *testing.T) {
	b, id := twoPhaseFixture(t)
	// Parent "broker" does not exist on this bank — the sharded coordinator
	// verified it elsewhere.
	a, err := b.CreateChildAccount("broker", "job-1", id.Public())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "broker/job-1" || a.Parent != "broker" {
		t.Fatalf("child = %+v", a)
	}
	if _, err := b.CreateSubAccount("broker2", "job-1", id.Public()); !errors.Is(err, ErrNoAccount) {
		t.Fatalf("CreateSubAccount without parent = %v, want ErrNoAccount", err)
	}
}
