package bank

// Durable bank state: every mutation is encoded as one write-ahead-log
// record and staged (in lock order) before the operation is acknowledged;
// snapshots serialize the complete ledger state. Recovery replays records
// atop the latest snapshot through apply functions that repeat the original
// mutation exactly — no signature re-verification, no re-deciding — so the
// recovered bank is bit-identical to some acknowledged prefix of the
// pre-crash bank. Two-phase transfers log a record at every protocol stage
// (prepare, commit, credit, finalize/abort), which is what lets a
// coordinator resolve in-doubt transfers identically after a restart.

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"tycoongrid/internal/durable"
)

// DefaultSnapshotEvery is the record count between snapshots when
// AttachDurability is given a non-positive interval.
const DefaultSnapshotEvery = 65536

// maxSnapshotLedger bounds the ledger tail carried in a snapshot; History
// may therefore be truncated to the most recent entries across a restart.
// Balances, nonces, receipts and holds are never truncated.
const maxSnapshotLedger = 65536

// WAL record kinds.
const (
	walCreateAccount byte = 1
	walDeposit       byte = 2
	walTransfer      byte = 3
	walMove          byte = 4
	walPrepare       byte = 5
	walCommit        byte = 6
	walCredit        byte = 7
	walFinalize      byte = 8
	walAbort         byte = 9
	walForget        byte = 10
)

const snapshotVersion byte = 1

// AttachDurability wires the bank to st: the latest snapshot and WAL are
// replayed into the (necessarily still empty) bank, and from then on every
// mutation is journaled before acknowledgment, with a fresh snapshot every
// snapshotEvery records (<=0 selects DefaultSnapshotEvery). It returns the
// recovery stats so daemons can log what was restored.
func (b *Bank) AttachDurability(st *durable.Store, snapshotEvery int) (durable.RecoverStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.journal != nil {
		return durable.RecoverStats{}, errors.New("bank: durability already attached")
	}
	if len(b.accounts) != 0 || b.seq != 0 {
		return durable.RecoverStats{}, errors.New("bank: attach durability before first use")
	}
	start := time.Now()
	stats, err := st.Recover(b.restoreSnapshot, b.applyRecord)
	if err != nil {
		return stats, err
	}
	mRecoverySeconds.Observe(time.Since(start).Seconds())
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	b.journal = st
	b.snapshotEvery = snapshotEvery
	// Recovered state is the new conservation baseline: replayed deposits
	// are already inside it, so the minted ledger restarts from zero.
	b.baseline = b.invariantLocked()
	b.minted = 0
	return stats, nil
}

// stage journals one record; callers hold b.mu. The returned wait function
// (nil when the bank has no journal) blocks until the record — and, when the
// snapshot threshold trips, the snapshot — is durable; callers invoke it
// after releasing b.mu so concurrent operations share group commits.
func (b *Bank) stage(rec []byte) func() error {
	if b.journal == nil {
		return nil
	}
	wait := b.journal.AppendAsync(rec)
	b.recSinceSnap++
	if b.recSinceSnap >= b.snapshotEvery {
		b.recSinceSnap = 0
		if err := b.journal.Snapshot(b.encodeSnapshot()); err != nil {
			return func() error {
				if werr := wait(); werr != nil {
					return werr
				}
				return err
			}
		}
	}
	return wait
}

// commitWait runs a stage wait function, treating nil as already-durable.
func commitWait(wait func() error) error {
	if wait == nil {
		return nil
	}
	return wait()
}

// ---- record encoding ----

type walEnc struct{ b []byte }

func (e *walEnc) kind(k byte)      { e.b = append(e.b, k) }
func (e *walEnc) u64(v uint64)     { e.b = binary.AppendUvarint(e.b, v) }
func (e *walEnc) i64(v int64)      { e.b = binary.AppendVarint(e.b, v) }
func (e *walEnc) flag(v bool)      { e.b = append(e.b, map[bool]byte{false: 0, true: 1}[v]) }
func (e *walEnc) time(t time.Time) { e.i64(t.UnixNano()) }
func (e *walEnc) bytes(p []byte) {
	e.b = binary.AppendUvarint(e.b, uint64(len(p)))
	e.b = append(e.b, p...)
}
func (e *walEnc) str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

type walDec struct {
	b   []byte
	err error
}

func (d *walDec) fail() {
	if d.err == nil {
		d.err = errors.New("bank: truncated wal record")
	}
}

func (d *walDec) kind() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	k := d.b[0]
	d.b = d.b[1:]
	return k
}

func (d *walDec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) flag() bool { return d.kind() != 0 }

func (d *walDec) time() time.Time { return time.Unix(0, d.i64()) }

func (d *walDec) bytes() []byte {
	n := d.u64()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	p := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return p
}

func (d *walDec) str() string { return string(d.bytes()) }

// ---- per-operation record builders (callers hold b.mu) ----

func encCreateAccount(a *Account) []byte {
	var e walEnc
	e.kind(walCreateAccount)
	e.str(string(a.ID))
	e.bytes(a.Owner)
	e.str(string(a.Parent))
	e.time(a.Created)
	return e.b
}

func encDeposit(id AccountID, amount Amount, memo string, at time.Time) []byte {
	var e walEnc
	e.kind(walDeposit)
	e.str(string(id))
	e.i64(int64(amount))
	e.str(memo)
	e.time(at)
	return e.b
}

func encTransfer(r Receipt) []byte {
	var e walEnc
	e.kind(walTransfer)
	e.str(string(r.From))
	e.str(string(r.To))
	e.i64(int64(r.Amount))
	e.str(r.TransferID)
	e.time(r.At)
	e.bytes(r.BankSig)
	return e.b
}

func encMove(kind EntryKind, from, to AccountID, amount Amount, memo string, at time.Time) []byte {
	var e walEnc
	e.kind(walMove)
	e.str(string(kind))
	e.str(string(from))
	e.str(string(to))
	e.i64(int64(amount))
	e.str(memo)
	e.time(at)
	return e.b
}

func encPrepare(h *Hold, nonceConsumed bool) []byte {
	var e walEnc
	e.kind(walPrepare)
	e.str(h.TX)
	e.str(string(h.From))
	e.str(string(h.To))
	e.i64(int64(h.Amount))
	e.time(h.At)
	e.flag(nonceConsumed)
	return e.b
}

func encTx(kind byte, tx string) []byte {
	var e walEnc
	e.kind(kind)
	e.str(tx)
	return e.b
}

func encCredit(tx string, to AccountID, amount Amount, memo string, at time.Time) []byte {
	var e walEnc
	e.kind(walCredit)
	e.str(tx)
	e.str(string(to))
	e.i64(int64(amount))
	e.str(memo)
	e.time(at)
	return e.b
}

func encAbort(tx string, at time.Time) []byte {
	var e walEnc
	e.kind(walAbort)
	e.str(tx)
	e.time(at)
	return e.b
}

// ---- replay ----

// applyRecord repeats one logged mutation during recovery; callers hold
// b.mu (AttachDurability). The apply paths touch no metrics and verify no
// signatures: both happened before the record was written.
func (b *Bank) applyRecord(rec []byte) error {
	d := walDec{b: rec}
	kind := d.kind()
	switch kind {
	case walCreateAccount:
		id := AccountID(d.str())
		owner := ed25519.PublicKey(d.bytes())
		parent := AccountID(d.str())
		created := d.time()
		if d.err != nil {
			return d.err
		}
		if _, ok := b.accounts[id]; ok {
			return fmt.Errorf("bank: replayed duplicate account %q", id)
		}
		b.accounts[id] = &Account{ID: id, Owner: owner, Parent: parent, Created: created}

	case walDeposit:
		id := AccountID(d.str())
		amount := Amount(d.i64())
		memo := d.str()
		at := d.time()
		if d.err != nil {
			return d.err
		}
		a, ok := b.accounts[id]
		if !ok {
			return fmt.Errorf("bank: replayed deposit to missing account %q", id)
		}
		a.Balance += amount
		b.appendEntryAt(EntryDeposit, "", id, amount, memo, at)

	case walTransfer:
		from := AccountID(d.str())
		to := AccountID(d.str())
		amount := Amount(d.i64())
		nonce := d.str()
		at := d.time()
		sig := d.bytes()
		if d.err != nil {
			return d.err
		}
		f, ok := b.accounts[from]
		if !ok {
			return fmt.Errorf("bank: replayed transfer from missing account %q", from)
		}
		t, ok := b.accounts[to]
		if !ok {
			return fmt.Errorf("bank: replayed transfer to missing account %q", to)
		}
		f.Balance -= amount
		t.Balance += amount
		b.nonces[nonce] = true
		b.receipts[nonce] = Receipt{
			TransferID: nonce, From: from, To: to, Amount: amount, At: at, BankSig: sig,
		}
		b.appendEntryAt(EntryTransfer, from, to, amount, "", at)

	case walMove:
		ekind := EntryKind(d.str())
		from := AccountID(d.str())
		to := AccountID(d.str())
		amount := Amount(d.i64())
		memo := d.str()
		at := d.time()
		if d.err != nil {
			return d.err
		}
		f, ok := b.accounts[from]
		if !ok {
			return fmt.Errorf("bank: replayed move from missing account %q", from)
		}
		t, ok := b.accounts[to]
		if !ok {
			return fmt.Errorf("bank: replayed move to missing account %q", to)
		}
		f.Balance -= amount
		t.Balance += amount
		b.appendEntryAt(ekind, from, to, amount, memo, at)

	case walPrepare:
		tx := d.str()
		from := AccountID(d.str())
		to := AccountID(d.str())
		amount := Amount(d.i64())
		at := d.time()
		nonceConsumed := d.flag()
		if d.err != nil {
			return d.err
		}
		f, ok := b.accounts[from]
		if !ok {
			return fmt.Errorf("bank: replayed prepare from missing account %q", from)
		}
		f.Balance -= amount
		b.holds[tx] = &Hold{TX: tx, From: from, To: to, Amount: amount, At: at}
		if nonceConsumed {
			b.nonces[tx] = true
		}
		b.appendEntryAt(EntryPrepare, from, "", amount, tx, at)

	case walCommit:
		tx := d.str()
		if d.err != nil {
			return d.err
		}
		h, ok := b.holds[tx]
		if !ok {
			return fmt.Errorf("bank: replayed commit of missing hold %q", tx)
		}
		h.Committed = true

	case walCredit:
		tx := d.str()
		to := AccountID(d.str())
		amount := Amount(d.i64())
		memo := d.str()
		at := d.time()
		if d.err != nil {
			return d.err
		}
		if b.credited[tx] {
			return nil
		}
		t, ok := b.accounts[to]
		if !ok {
			return fmt.Errorf("bank: replayed credit to missing account %q", to)
		}
		t.Balance += amount
		b.credited[tx] = true
		b.appendEntryAt(EntryCommitCredit, "", to, amount, memo, at)

	case walFinalize:
		tx := d.str()
		if d.err != nil {
			return d.err
		}
		delete(b.holds, tx)

	case walAbort:
		tx := d.str()
		at := d.time()
		if d.err != nil {
			return d.err
		}
		h, ok := b.holds[tx]
		if !ok {
			return fmt.Errorf("bank: replayed abort of missing hold %q", tx)
		}
		a, ok := b.accounts[h.From]
		if !ok {
			return fmt.Errorf("bank: replayed abort to missing account %q", h.From)
		}
		a.Balance += h.Amount
		delete(b.holds, tx)
		b.appendEntryAt(EntryAbort, "", h.From, h.Amount, tx, at)

	case walForget:
		tx := d.str()
		if d.err != nil {
			return d.err
		}
		delete(b.credited, tx)

	default:
		return fmt.Errorf("bank: unknown wal record kind %d", kind)
	}
	return d.err
}

// ---- snapshot ----

// encodeSnapshot serializes the whole bank state deterministically (sorted
// iteration everywhere); callers hold b.mu.
func (b *Bank) encodeSnapshot() []byte {
	var e walEnc
	e.kind(snapshotVersion)
	e.u64(b.seq)

	ids := make([]string, 0, len(b.accounts))
	for id := range b.accounts {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	e.u64(uint64(len(ids)))
	for _, id := range ids {
		a := b.accounts[AccountID(id)]
		e.str(id)
		e.bytes(a.Owner)
		e.str(string(a.Parent))
		e.i64(int64(a.Balance))
		e.time(a.Created)
	}

	nonces := make([]string, 0, len(b.nonces))
	for n := range b.nonces {
		nonces = append(nonces, n)
	}
	sort.Strings(nonces)
	e.u64(uint64(len(nonces)))
	for _, n := range nonces {
		e.str(n)
	}

	rids := make([]string, 0, len(b.receipts))
	for id := range b.receipts {
		rids = append(rids, id)
	}
	sort.Strings(rids)
	e.u64(uint64(len(rids)))
	for _, id := range rids {
		r := b.receipts[id]
		e.str(r.TransferID)
		e.str(string(r.From))
		e.str(string(r.To))
		e.i64(int64(r.Amount))
		e.time(r.At)
		e.bytes(r.BankSig)
	}

	txs := make([]string, 0, len(b.holds))
	for tx := range b.holds {
		txs = append(txs, tx)
	}
	sort.Strings(txs)
	e.u64(uint64(len(txs)))
	for _, tx := range txs {
		h := b.holds[tx]
		e.str(h.TX)
		e.str(string(h.From))
		e.str(string(h.To))
		e.i64(int64(h.Amount))
		e.flag(h.Committed)
		e.time(h.At)
	}

	creds := make([]string, 0, len(b.credited))
	for tx := range b.credited {
		creds = append(creds, tx)
	}
	sort.Strings(creds)
	e.u64(uint64(len(creds)))
	for _, tx := range creds {
		e.str(tx)
	}

	ledger := b.ledger
	if len(ledger) > maxSnapshotLedger {
		ledger = ledger[len(ledger)-maxSnapshotLedger:]
	}
	e.u64(uint64(len(ledger)))
	for _, ent := range ledger {
		e.u64(ent.Seq)
		e.str(string(ent.Kind))
		e.str(string(ent.From))
		e.str(string(ent.To))
		e.i64(int64(ent.Amount))
		e.str(ent.Memo)
		e.time(ent.At)
	}
	return e.b
}

// restoreSnapshot loads a snapshot payload into the empty bank; callers
// hold b.mu (AttachDurability).
func (b *Bank) restoreSnapshot(payload []byte) error {
	d := walDec{b: payload}
	if v := d.kind(); v != snapshotVersion {
		return fmt.Errorf("bank: unknown snapshot version %d", v)
	}
	b.seq = d.u64()

	n := d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		id := AccountID(d.str())
		owner := ed25519.PublicKey(d.bytes())
		parent := AccountID(d.str())
		balance := Amount(d.i64())
		created := d.time()
		b.accounts[id] = &Account{ID: id, Owner: owner, Parent: parent, Balance: balance, Created: created}
	}

	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		b.nonces[d.str()] = true
	}

	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		r := Receipt{
			TransferID: d.str(),
			From:       AccountID(d.str()),
			To:         AccountID(d.str()),
			Amount:     Amount(d.i64()),
			At:         d.time(),
			BankSig:    d.bytes(),
		}
		b.receipts[r.TransferID] = r
	}

	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		h := &Hold{
			TX:        d.str(),
			From:      AccountID(d.str()),
			To:        AccountID(d.str()),
			Amount:    Amount(d.i64()),
			Committed: d.flag(),
			At:        d.time(),
		}
		b.holds[h.TX] = h
	}

	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		b.credited[d.str()] = true
	}

	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		b.ledger = append(b.ledger, Entry{
			Seq:    d.u64(),
			Kind:   EntryKind(d.str()),
			From:   AccountID(d.str()),
			To:     AccountID(d.str()),
			Amount: Amount(d.i64()),
			Memo:   d.str(),
			At:     d.time(),
		})
	}
	return d.err
}
