// Package bank implements the Tycoon Bank: the service that "maintains
// information on users like their credit balance and public keys" (paper
// §2.2). It provides accounts bound to Ed25519 public keys, sub-accounts
// (the broker creates one per verified transfer token), owner-signed
// transfers, bank-signed receipts, refunds, and a full audit ledger.
//
// Money is fixed-point: an Amount is an integer number of microcredits
// (1 credit = 1 "dollar" of the paper = 1_000_000 microcredits), so ledger
// arithmetic is exact and overflow is checked.
package bank

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Amount is a quantity of money in microcredits.
type Amount int64

// Microcredits per credit ("dollar" in the paper's tables).
const (
	Microcredit Amount = 1
	Millicredit Amount = 1000
	Credit      Amount = 1_000_000
)

// MaxAmount is the largest representable amount.
const MaxAmount = Amount(math.MaxInt64)

// FromCredits converts a floating-point credit value to an Amount,
// rounding to the nearest microcredit. It returns an error when the value
// does not fit or is not finite.
func FromCredits(c float64) (Amount, error) {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return 0, fmt.Errorf("bank: non-finite amount %v", c)
	}
	v := c * float64(Credit)
	if v >= float64(math.MaxInt64) || v <= -float64(math.MaxInt64) {
		return 0, fmt.Errorf("bank: amount %v credits overflows", c)
	}
	return Amount(math.Round(v)), nil
}

// MustCredits is FromCredits for trusted constants; it panics on error.
func MustCredits(c float64) Amount {
	a, err := FromCredits(c)
	if err != nil {
		panic(err)
	}
	return a
}

// Credits returns the amount as a floating-point number of credits.
func (a Amount) Credits() float64 { return float64(a) / float64(Credit) }

// String renders the amount as a decimal credit value, e.g. "12.5".
func (a Amount) String() string {
	neg := a < 0
	if neg {
		a = -a
	}
	whole := a / Credit
	frac := a % Credit
	s := strconv.FormatInt(int64(whole), 10)
	if frac != 0 {
		f := fmt.Sprintf("%06d", int64(frac))
		f = strings.TrimRight(f, "0")
		s += "." + f
	}
	if neg {
		s = "-" + s
	}
	return s
}

// ParseAmount parses a decimal credit string ("12.5") into an Amount.
func ParseAmount(s string) (Amount, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errors.New("bank: empty amount")
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
	}
	whole, frac, hasFrac := strings.Cut(s, ".")
	if whole == "" && (!hasFrac || frac == "") {
		return 0, fmt.Errorf("bank: malformed amount %q", s)
	}
	var w int64
	var err error
	if whole != "" {
		w, err = strconv.ParseInt(whole, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bank: malformed amount %q", s)
		}
	}
	var f int64
	if hasFrac {
		if len(frac) > 6 {
			return 0, fmt.Errorf("bank: amount %q has sub-microcredit precision", s)
		}
		padded := frac + strings.Repeat("0", 6-len(frac))
		f, err = strconv.ParseInt(padded, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bank: malformed amount %q", s)
		}
	}
	if w > math.MaxInt64/int64(Credit)-1 {
		return 0, fmt.Errorf("bank: amount %q overflows", s)
	}
	v := Amount(w)*Credit + Amount(f)
	if neg {
		v = -v
	}
	return v, nil
}

// addChecked returns a+b with overflow detection.
func addChecked(a, b Amount) (Amount, error) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, errors.New("bank: amount overflow")
	}
	return s, nil
}
