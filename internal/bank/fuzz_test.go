package bank

import (
	"testing"
)

// FuzzParseAmount checks the money parser never panics, and that accepted
// values round-trip exactly through String — the property that makes the
// wire encoding safe for ledgers.
func FuzzParseAmount(f *testing.F) {
	for _, s := range []string{
		"0", "1", "-1", "12.5", ".25", "+3", "0.000001", "-0.5",
		"9999999999", "1.2.3", "1e5", "", ".", "-", "0.0000001",
		"92233720368547758.07",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		a, err := ParseAmount(in)
		if err != nil {
			return
		}
		back, err := ParseAmount(a.String())
		if err != nil {
			t.Fatalf("String() form rejected: %q -> %q: %v", in, a.String(), err)
		}
		if back != a {
			t.Fatalf("round trip changed value: %q -> %v -> %v", in, a, back)
		}
	})
}

// FuzzTokenDecode lives here logically with the codecs; see
// internal/token/fuzz_test.go for the transfer-token decoder fuzz.
