package bank

// Two-phase transfer primitives.
//
// When accounts are partitioned across independent bank shards (GridBank's
// distributed Grid Bank Servers, marketplane.ShardedBank here), a transfer
// whose source and destination live on different shards cannot be a single
// atomic balance swap. The coordinator instead runs a two-phase protocol
// built from the primitives below:
//
//	src.PrepareDebit(tx)   debit the source, park the money in a hold
//	src.MarkCommitted(tx)  durably record the commit decision on the source
//	dst.CreditPrepared(tx) credit the destination (idempotent by tx id)
//	src.FinalizeDebit(tx)  burn the hold — the money now lives at dst
//	dst.ForgetCredit(tx)   prune the idempotence record
//
// If anything dies before MarkCommitted, the decision is "abort" and
// AbortDebit returns the held money to the source. If it dies after, the
// decision is "commit" and recovery replays CreditPrepared (safe to repeat)
// and FinalizeDebit. Held money is part of the source shard's money supply —
// HeldTotal — so conservation (sum of balances plus holds, across shards,
// equals total deposits) is checkable at every instant of the protocol.
//
// The hold table and the credited set model GridBank's durable transaction
// journal: a simulated shard crash (marketplane.ShardedBank.CrashShard)
// makes the shard unavailable but, like a real bank's write-ahead log, never
// loses prepared or committed state.

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"time"

	"tycoongrid/internal/pki"
)

// Ledger entry kinds appended by the two-phase primitives.
const (
	// EntryPrepare records money leaving an account into a hold.
	EntryPrepare EntryKind = "2pc-prepare"
	// EntryCommitCredit records a prepared transfer landing at its
	// destination account.
	EntryCommitCredit EntryKind = "2pc-credit"
	// EntryAbort records a hold being returned to its source account.
	EntryAbort EntryKind = "2pc-abort"
)

// Errors returned by the two-phase primitives.
var (
	ErrUnknownHold   = errors.New("bank: no such hold")
	ErrDuplicateHold = errors.New("bank: hold already exists")
	ErrHoldState     = errors.New("bank: hold in wrong state for operation")
)

// Hold is a prepared debit: money already removed from the source account,
// parked until the transfer commits or aborts.
type Hold struct {
	TX        string
	From      AccountID
	To        AccountID // destination; may live on a different bank shard
	Amount    Amount
	Committed bool
	At        time.Time
}

// PrepareDebit starts a two-phase transfer: it debits from into a hold named
// tx, authorized by the account owner's identity exactly like MoveInternal.
// to names the destination account, which need not exist on this bank — it
// is recorded so recovery knows where committed money must go.
func (b *Bank) PrepareDebit(owner *pki.Identity, from, to AccountID, amount Amount, tx string) error {
	if amount <= 0 {
		return ErrNonPositive
	}
	if tx == "" {
		return errors.New("bank: empty transaction id")
	}
	wait, err := b.prepareDebitLocked(owner, from, to, amount, tx)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) prepareDebitLocked(owner *pki.Identity, from, to AccountID, amount Amount, tx string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.holds[tx]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateHold, tx)
	}
	f, ok := b.accounts[from]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, from)
	}
	if !f.Owner.Equal(owner.Public()) {
		return nil, ErrBadAuthorization
	}
	if f.Balance < amount {
		mInsufficient.Inc()
		return nil, fmt.Errorf("%w: %q has %v, needs %v", ErrInsufficientFunds, from, f.Balance, amount)
	}
	f.Balance -= amount
	h := &Hold{TX: tx, From: from, To: to, Amount: amount, At: b.clock.Now()}
	b.holds[tx] = h
	b.appendEntryAt(EntryPrepare, from, "", amount, tx, h.At)
	return b.stage(encPrepare(h, false)), nil
}

// PrepareTransfer is PrepareDebit authorized by an owner-signed
// TransferRequest instead of a held identity: signature and nonce are
// verified and consumed exactly like Transfer, but the money goes into a
// hold (named by the request nonce) instead of the destination account.
func (b *Bank) PrepareTransfer(req TransferRequest) error {
	if req.Amount <= 0 {
		return ErrNonPositive
	}
	if req.Nonce == "" {
		return errors.New("bank: empty transfer nonce")
	}
	wait, err := b.prepareTransferLocked(req)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) prepareTransferLocked(req TransferRequest) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.holds[req.Nonce]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateHold, req.Nonce)
	}
	f, ok := b.accounts[req.From]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, req.From)
	}
	if !pki.Verify(f.Owner, req.SigningBytes(), req.Sig) {
		mRejectedSigs.Inc()
		return nil, ErrBadAuthorization
	}
	if b.nonces[req.Nonce] {
		mNonceReuse.Inc()
		return nil, ErrNonceReused
	}
	if f.Balance < req.Amount {
		mInsufficient.Inc()
		return nil, fmt.Errorf("%w: %q has %v, needs %v",
			ErrInsufficientFunds, req.From, f.Balance, req.Amount)
	}
	f.Balance -= req.Amount
	b.nonces[req.Nonce] = true
	h := &Hold{
		TX: req.Nonce, From: req.From, To: req.To, Amount: req.Amount, At: b.clock.Now(),
	}
	b.holds[req.Nonce] = h
	b.appendEntryAt(EntryPrepare, req.From, "", req.Amount, req.Nonce, h.At)
	return b.stage(encPrepare(h, true)), nil
}

// MarkCommitted durably records the commit decision on the source bank. It
// is the protocol's point of no return: once marked, recovery must complete
// the credit rather than abort. The decision is journaled before this
// returns, so a bank that acknowledged a commit re-derives the same decision
// after a crash.
func (b *Bank) MarkCommitted(tx string) error {
	wait, err := b.markCommittedLocked(tx)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) markCommittedLocked(tx string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.holds[tx]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHold, tx)
	}
	if h.Committed {
		return nil, nil // already durable — idempotent replay
	}
	h.Committed = true
	return b.stage(encTx(walCommit, tx)), nil
}

// CreditPrepared applies the destination half of a committed transfer. It is
// idempotent by tx: replays during crash recovery credit the account exactly
// once. The destination account must exist on this bank.
func (b *Bank) CreditPrepared(to AccountID, amount Amount, tx, memo string) error {
	if amount <= 0 {
		return ErrNonPositive
	}
	if tx == "" {
		return errors.New("bank: empty transaction id")
	}
	wait, err := b.creditPreparedLocked(to, amount, tx, memo)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) creditPreparedLocked(to AccountID, amount Amount, tx, memo string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.credited[tx] {
		return nil, nil // already applied — recovery replay
	}
	t, ok := b.accounts[to]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, to)
	}
	nb, err := addChecked(t.Balance, amount)
	if err != nil {
		return nil, err
	}
	t.Balance = nb
	b.credited[tx] = true
	at := b.clock.Now()
	b.appendEntryAt(EntryCommitCredit, "", to, amount, memo, at)
	return b.stage(encCredit(tx, to, amount, memo, at)), nil
}

// FinalizeDebit burns a committed hold: the money has landed at the
// destination, so the source shard stops counting it. Finalizing an
// uncommitted hold is a protocol error.
func (b *Bank) FinalizeDebit(tx string) error {
	wait, err := b.finalizeDebitLocked(tx)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) finalizeDebitLocked(tx string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.holds[tx]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHold, tx)
	}
	if !h.Committed {
		return nil, fmt.Errorf("%w: finalize of uncommitted %q", ErrHoldState, tx)
	}
	delete(b.holds, tx)
	return b.stage(encTx(walFinalize, tx)), nil
}

// AbortDebit cancels an uncommitted hold, returning the money to the source
// account. Aborting a committed hold is a protocol error: the commit
// decision is final.
func (b *Bank) AbortDebit(tx string) error {
	wait, err := b.abortDebitLocked(tx)
	if err != nil {
		return err
	}
	return commitWait(wait)
}

func (b *Bank) abortDebitLocked(tx string) (func() error, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.holds[tx]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownHold, tx)
	}
	if h.Committed {
		return nil, fmt.Errorf("%w: abort of committed %q", ErrHoldState, tx)
	}
	a, ok := b.accounts[h.From]
	if !ok {
		// Accounts are never deleted; a missing source is an internal bug.
		return nil, fmt.Errorf("%w: %q", ErrNoAccount, h.From)
	}
	nb, err := addChecked(a.Balance, h.Amount)
	if err != nil {
		return nil, err
	}
	a.Balance = nb
	delete(b.holds, tx)
	at := b.clock.Now()
	b.appendEntryAt(EntryAbort, "", h.From, h.Amount, tx, at)
	return b.stage(encAbort(tx, at)), nil
}

// ForgetCredit prunes the idempotence record for tx once the coordinator has
// finalized the source hold — after that point no replay can arrive, so
// keeping the record would only grow memory without bound.
func (b *Bank) ForgetCredit(tx string) {
	b.mu.Lock()
	var wait func() error
	if b.credited[tx] {
		delete(b.credited, tx)
		wait = b.stage(encTx(walForget, tx))
	}
	b.mu.Unlock()
	// Pruning an idempotence record is garbage collection: losing the record
	// to a crash is safe (a replayed credit is simply deduplicated again), so
	// a journal error here is not surfaced — the store is already poisoned
	// and the next money-moving operation will report it.
	_ = commitWait(wait)
}

// Holds returns the outstanding holds sorted by transaction id — the
// in-doubt set recovery walks after a crash.
func (b *Bank) Holds() []Hold {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Hold, 0, len(b.holds))
	for _, h := range b.holds {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TX < out[j].TX })
	return out
}

// HeldTotal returns the money parked in outstanding holds. Conservation
// across a sharded deployment is sum over shards of TotalMoney() plus
// HeldTotal() — constant under transfers, whatever the crash schedule.
func (b *Bank) HeldTotal() Amount {
	b.mu.Lock()
	defer b.mu.Unlock()
	var total Amount
	for _, h := range b.holds {
		total += h.Amount
	}
	return total
}

// CreditRecorded reports whether the idempotent credit for tx has been
// applied on this bank and not yet forgotten. A coordinator (or a global
// conservation check) uses it to tell a committed hold whose money is still
// in transit from one whose money has already landed at the destination.
func (b *Bank) CreditRecorded(tx string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.credited[tx]
}

// CreateChildAccount registers "parent/child" on this bank without requiring
// the parent account to exist here — in a sharded deployment the parent
// typically lives on a different shard, and the coordinator has already
// verified it. Single-bank callers should use CreateSubAccount, which keeps
// the parent-existence check.
func (b *Bank) CreateChildAccount(parent AccountID, child string, owner ed25519.PublicKey) (*Account, error) {
	return b.createAccount(AccountID(string(parent)+"/"+child), owner, parent)
}
