package bank

import (
	"bytes"
	"errors"
	"testing"

	"tycoongrid/internal/durable"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/sim"
)

// durableFixture is the in-memory fixture plus a WAL-backed bank in dir.
type durableFixture struct {
	bank  *Bank
	store *durable.Store
	id    *pki.Identity
	alice *pki.Identity
	bob   *pki.Identity
}

func newDurableFixture(t *testing.T, dir string, snapshotEvery int) *durableFixture {
	t.Helper()
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := ca.IssueDeterministic("/O=Grid/CN=Alice", [32]byte{3})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := ca.IssueDeterministic("/O=Grid/CN=Bob", [32]byte{4})
	if err != nil {
		t.Fatal(err)
	}
	f := &durableFixture{id: bankID, alice: alice, bob: bob}
	f.reopen(t, dir, snapshotEvery)
	return f
}

// reopen simulates a restart: a fresh Bank recovers from dir.
func (f *durableFixture) reopen(t *testing.T, dir string, snapshotEvery int) {
	t.Helper()
	st, err := durable.Open(dir, durable.Options{Sync: durable.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	b := New(f.id, sim.WallClock{})
	if _, err := b.AttachDurability(st, snapshotEvery); err != nil {
		t.Fatalf("AttachDurability: %v", err)
	}
	f.bank, f.store = b, st
}

func (f *durableFixture) close(t *testing.T) {
	t.Helper()
	if err := f.store.Close(); err != nil {
		t.Fatal(err)
	}
}

func (f *durableFixture) transfer(t *testing.T, from, to AccountID, amount Amount, nonce string) Receipt {
	t.Helper()
	signer := f.alice
	if from == "bob" {
		signer = f.bob
	}
	req := TransferRequest{From: from, To: to, Amount: amount, Nonce: nonce}
	req.Sig = signer.Sign(req.SigningBytes())
	r, err := f.bank.Transfer(req)
	if err != nil {
		t.Fatalf("transfer %s: %v", nonce, err)
	}
	return r
}

func TestDurableBankRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture(t, dir, 0)
	if _, err := f.bank.CreateAccount("alice", f.alice.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateAccount("bob", f.bob.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateSubAccount("alice", "sub", f.alice.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.Deposit("alice", 100*Credit, "grant"); err != nil {
		t.Fatal(err)
	}
	receipt := f.transfer(t, "alice", "bob", 30*Credit, "n1")
	if err := f.bank.MoveInternal(f.alice, "alice", "alice/sub", 5*Credit, EntryCharge, "park"); err != nil {
		t.Fatal(err)
	}
	wantHistory := f.bank.History("alice")
	f.close(t)

	f.reopen(t, dir, 0)
	defer f.close(t)

	for id, want := range map[AccountID]Amount{
		"alice": 65 * Credit, "bob": 30 * Credit, "alice/sub": 5 * Credit,
	} {
		got, err := f.bank.Balance(id)
		if err != nil || got != want {
			t.Errorf("balance %q = %v, %v; want %v", id, got, err, want)
		}
	}
	if total := f.bank.TotalMoney(); total != 100*Credit {
		t.Errorf("TotalMoney = %v, want 100", total)
	}
	// Ledger history for alice matches the pre-crash ledger exactly.
	gotHistory := f.bank.History("alice")
	if len(gotHistory) != len(wantHistory) {
		t.Fatalf("history has %d entries, want %d", len(gotHistory), len(wantHistory))
	}
	for i := range wantHistory {
		w, g := wantHistory[i], gotHistory[i]
		// Compare At with Equal: the recovered time has no monotonic reading.
		if g.Seq != w.Seq || g.Kind != w.Kind || g.From != w.From || g.To != w.To ||
			g.Amount != w.Amount || g.Memo != w.Memo || !g.At.Equal(w.At) {
			t.Errorf("history[%d] = %+v, want %+v", i, g, w)
		}
	}

	// Accounts keep their owner keys: a post-restart transfer still verifies.
	f.transfer(t, "bob", "alice", 10*Credit, "n2")

	// Idempotent replay survives the restart: the identical signed request
	// returns the original receipt (same bank signature) without moving money.
	req := TransferRequest{From: "alice", To: "bob", Amount: 30 * Credit, Nonce: "n1"}
	req.Sig = f.alice.Sign(req.SigningBytes())
	again, err := f.bank.Transfer(req)
	if err != nil {
		t.Fatalf("replay after restart: %v", err)
	}
	if !bytes.Equal(again.BankSig, receipt.BankSig) {
		t.Errorf("replayed receipt signature differs from the original")
	}
	if got, _ := f.bank.Balance("bob"); got != 20*Credit {
		t.Errorf("replay moved money: bob = %v", got)
	}
}

func TestDurableBankSnapshotThreshold(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture(t, dir, 8) // snapshot every 8 records
	if _, err := f.bank.CreateAccount("alice", f.alice.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.Deposit("alice", 1000*Credit, "seed"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateAccount("bob", f.bob.Public()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		f.transfer(t, "alice", "bob", Credit, nonceN(i))
	}
	f.close(t)

	f.reopen(t, dir, 8)
	defer f.close(t)
	if got, _ := f.bank.Balance("bob"); got != 40*Credit {
		t.Errorf("bob = %v after snapshot-heavy recovery, want 40", got)
	}
	if total := f.bank.TotalMoney(); total != 1000*Credit {
		t.Errorf("TotalMoney = %v, want 1000", total)
	}
	// Nonces must have survived via the snapshot path too.
	req := TransferRequest{From: "alice", To: "bob", Amount: 2 * Credit, Nonce: nonceN(0)}
	req.Sig = f.alice.Sign(req.SigningBytes())
	if _, err := f.bank.Transfer(req); !errors.Is(err, ErrNonceReused) {
		t.Errorf("nonce forgotten across snapshot: %v", err)
	}
}

func nonceN(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestDurableBankTwoPhaseRecovery(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture(t, dir, 0)
	if _, err := f.bank.CreateAccount("alice", f.alice.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateAccount("bob", f.bob.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.Deposit("alice", 100*Credit, "seed"); err != nil {
		t.Fatal(err)
	}

	// tx-a: prepared only (in doubt, decision will be abort).
	if err := f.bank.PrepareDebit(f.alice, "alice", "bob", 10*Credit, "tx-a"); err != nil {
		t.Fatal(err)
	}
	// tx-b: prepared and committed (decision recorded, credit pending).
	if err := f.bank.PrepareDebit(f.alice, "alice", "bob", 20*Credit, "tx-b"); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.MarkCommitted("tx-b"); err != nil {
		t.Fatal(err)
	}
	// tx-c: full cycle completed before the crash.
	if err := f.bank.PrepareDebit(f.alice, "alice", "bob", 5*Credit, "tx-c"); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.MarkCommitted("tx-c"); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.CreditPrepared("bob", 5*Credit, "tx-c", "landed"); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.FinalizeDebit("tx-c"); err != nil {
		t.Fatal(err)
	}
	f.close(t)

	f.reopen(t, dir, 0)
	defer f.close(t)

	holds := f.bank.Holds()
	if len(holds) != 2 {
		t.Fatalf("recovered %d holds, want 2: %+v", len(holds), holds)
	}
	byTX := map[string]Hold{}
	for _, h := range holds {
		byTX[h.TX] = h
	}
	if h := byTX["tx-a"]; h.Committed || h.Amount != 10*Credit {
		t.Errorf("tx-a recovered wrong: %+v", h)
	}
	if h := byTX["tx-b"]; !h.Committed || h.Amount != 20*Credit {
		t.Errorf("tx-b lost its commit decision: %+v", h)
	}
	if f.bank.CreditRecorded("tx-b") {
		t.Error("tx-b credit should not have landed yet")
	}
	if !f.bank.CreditRecorded("tx-c") {
		t.Error("tx-c credit record lost")
	}

	// Resolve exactly as a recovering coordinator would: abort the
	// uncommitted hold, complete the committed one.
	if err := f.bank.AbortDebit("tx-a"); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.CreditPrepared("bob", 20*Credit, "tx-b", "recovered"); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.FinalizeDebit("tx-b"); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.bank.Balance("alice"); got != 75*Credit {
		t.Errorf("alice = %v, want 75", got)
	}
	if got, _ := f.bank.Balance("bob"); got != 25*Credit {
		t.Errorf("bob = %v, want 25", got)
	}
	if total := f.bank.TotalMoney(); total != 100*Credit {
		t.Errorf("money not conserved: %v", total)
	}
	if held := f.bank.HeldTotal(); held != 0 {
		t.Errorf("orphaned holds worth %v", held)
	}
}

func TestDurableBankCreditReplayedOnceAfterRestart(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture(t, dir, 0)
	if _, err := f.bank.CreateAccount("bob", f.bob.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.CreditPrepared("bob", 7*Credit, "tx-x", "inbound"); err != nil {
		t.Fatal(err)
	}
	f.close(t)

	f.reopen(t, dir, 0)
	defer f.close(t)
	// A recovering coordinator replays the credit; it must dedupe.
	if err := f.bank.CreditPrepared("bob", 7*Credit, "tx-x", "inbound"); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.bank.Balance("bob"); got != 7*Credit {
		t.Errorf("credit applied twice: bob = %v", got)
	}
}

func TestAttachDurabilityRejectsUsedBank(t *testing.T) {
	ca, err := pki.NewDeterministicCA("/CN=CA", [32]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := ca.IssueDeterministic("/CN=Bank", [32]byte{2})
	if err != nil {
		t.Fatal(err)
	}
	b := New(id, sim.WallClock{})
	if _, err := b.CreateAccount("a", id.Public()); err != nil {
		t.Fatal(err)
	}
	st, err := durable.Open(t.TempDir(), durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := b.AttachDurability(st, 0); err == nil {
		t.Fatal("attach to a non-empty bank must fail")
	}
}

func TestSnapshotEncodeRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := newDurableFixture(t, dir, 0)
	defer f.close(t)
	if _, err := f.bank.CreateAccount("alice", f.alice.Public()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.bank.CreateAccount("bob", f.bob.Public()); err != nil {
		t.Fatal(err)
	}
	if err := f.bank.Deposit("alice", 50*Credit, "seed"); err != nil {
		t.Fatal(err)
	}
	f.transfer(t, "alice", "bob", 10*Credit, "rt")
	if err := f.bank.PrepareDebit(f.alice, "alice", "bob", 5*Credit, "tx-rt"); err != nil {
		t.Fatal(err)
	}

	f.bank.mu.Lock()
	snap := f.bank.encodeSnapshot()
	f.bank.mu.Unlock()

	restored := New(f.id, sim.WallClock{})
	if err := restored.restoreSnapshot(snap); err != nil {
		t.Fatalf("restoreSnapshot: %v", err)
	}
	restored.mu.Lock()
	snap2 := restored.encodeSnapshot()
	restored.mu.Unlock()
	if !bytes.Equal(snap, snap2) {
		t.Error("snapshot round-trip is not byte-identical")
	}
}
