package telemetry

import (
	"bytes"
	"testing"

	"tycoongrid/internal/metrics"
)

const exampleExposition = `# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{code="200",route="/bids"} 42
requests_total{code="500",route="/bids"} 3
# TYPE queue_depth gauge
queue_depth 7.5
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.01"} 5 # {trace_id="aabbccdd"} 0.004 1700000000.0
lat_seconds_bucket{le="0.1"} 9
lat_seconds_bucket{le="+Inf"} 10
lat_seconds_sum 0.85
lat_seconds_count 10
# EOF
`

func TestParseExposition(t *testing.T) {
	sc := ParseExposition([]byte(exampleExposition))
	if len(sc.Samples) != 8 {
		t.Fatalf("samples = %d, want 8", len(sc.Samples))
	}
	if sc.KindOf("requests_total") != KindCounter {
		t.Fatalf("requests_total kind = %s", sc.KindOf("requests_total"))
	}
	if sc.KindOf("lat_seconds_bucket") != KindHistogram || sc.KindOf("lat_seconds_sum") != KindHistogram {
		t.Fatal("histogram components must resolve to their family kind")
	}
	if sc.KindOf("queue_depth") != KindGauge {
		t.Fatal("gauge kind lost")
	}
	if sc.KindOf("mystery") != KindUnknown {
		t.Fatal("unknown family must report unknown")
	}

	first := sc.Samples[0]
	if first.Key != `requests_total{code="200",route="/bids"}` || first.Value != 42 {
		t.Fatalf("first sample = %+v", first)
	}
	if got := first.Get("route"); got != "/bids" {
		t.Fatalf("label get = %q", got)
	}

	var ex *ScrapedExemplar
	for i := range sc.Samples {
		if sc.Samples[i].Exemplar != nil {
			ex = sc.Samples[i].Exemplar
		}
	}
	if ex == nil || ex.TraceID != "aabbccdd" || ex.Value != 0.004 {
		t.Fatalf("exemplar = %+v", ex)
	}
}

// TestParseRoundTripsOwnRegistry feeds our own writers' output back through
// the parser: whatever a daemon exposes, the aggregator must re-read. Both
// dialects are exercised.
func TestParseRoundTripsOwnRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.CounterVec("jobs_total", "jobs", "state").With("done").Add(9)
	reg.Gauge("price", "p").Set(1.25)
	h := reg.Histogram("lat_seconds", "lat", []float64{0.01, 0.1})
	h.ObserveExemplar(0.05, "deadbeefcafe0123")

	var prom, om bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}

	for name, text := range map[string][]byte{"prometheus": prom.Bytes(), "openmetrics": om.Bytes()} {
		sc := ParseExposition(text)
		byKey := map[string]float64{}
		for _, s := range sc.Samples {
			byKey[s.Key] = s.Value
		}
		if byKey[`jobs_total{state="done"}`] != 9 {
			t.Fatalf("%s: counter lost: %v", name, byKey)
		}
		if byKey["price"] != 1.25 {
			t.Fatalf("%s: gauge lost: %v", name, byKey)
		}
		if byKey["lat_seconds_count"] != 1 {
			t.Fatalf("%s: histogram count lost: %v", name, byKey)
		}
		if sc.KindOf("jobs_total") != KindCounter {
			t.Fatalf("%s: counter kind lost (types: %v)", name, sc.Types)
		}
	}

	// The OpenMetrics payload must carry the exemplar through the parser.
	sc := ParseExposition(om.Bytes())
	found := false
	for i := range sc.Samples {
		if e := sc.Samples[i].Exemplar; e != nil && e.TraceID == "deadbeefcafe0123" {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar did not round-trip:\n%s", om.String())
	}
}

func TestParseHostileInput(t *testing.T) {
	cases := []string{
		"", "\n\n", "# garbage", "name_only", "x{unclosed 1",
		`x{a="b} 1`, "y not-a-number", `z{a="b",} 1`,
		"inf_val +Inf\nnan_val NaN",
		`esc{a="q\"uo\\te\nnl"} 4`,
	}
	for _, c := range cases {
		sc := ParseExposition([]byte(c)) // must not panic
		for _, s := range sc.Samples {
			if s.Key == "" {
				t.Fatalf("parsed sample with empty key from %q", c)
			}
		}
	}
	sc := ParseExposition([]byte(`esc{a="q\"uo\\te\nnl"} 4`))
	if len(sc.Samples) != 1 || sc.Samples[0].Get("a") != "q\"uo\\te\nnl" {
		t.Fatalf("escape handling: %+v", sc.Samples)
	}
}
