package telemetry

import (
	"encoding/json"
	"net/http"
	"time"

	"tycoongrid/internal/httpapi"
)

// FleetReport is the aggregator's rollup wire shape: per-peer scrape
// health, the fleet series catalogue and recent cross-daemon exemplars.
// gridtop renders this directly; anything else (curl, scripts) gets the
// same JSON.
type FleetReport struct {
	At        time.Time       `json:"at"`
	Peers     []PeerStatus    `json:"peers"`
	Series    []string        `json:"series"`
	Exemplars []FleetExemplar `json:"exemplars,omitempty"`
}

// Report assembles the current rollup.
func (a *Aggregator) Report() FleetReport {
	return FleetReport{
		At:        a.now(),
		Peers:     a.Status(),
		Series:    a.db.Names(),
		Exemplars: a.Exemplars(),
	}
}

// Handler serves the aggregator surface:
//
//	GET /fleet            -> FleetReport JSON
//	GET /fleet/history    -> HistoryHandler over the fleet tsdb
//
// Mount it on a daemon's ObservedMux via WithHandler, or serve it straight
// from gridtop's in-process aggregator.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(a.Report())
	})
	mux.Handle("GET /fleet/history", HistoryHandler(a.db))
	return mux
}

// MuxOptions mounts the aggregator surface on an ObservedMux (the SLS
// daemon hosts this in the deployed topology — the paper's service
// location service already plays the "who is alive" directory role, so
// fleet state naturally lives beside it).
func (a *Aggregator) MuxOptions() []httpapi.MuxOption {
	return []httpapi.MuxOption{
		httpapi.WithHandler("GET /fleet", a.Handler()),
		httpapi.WithHandler("GET /fleet/history", a.Handler()),
	}
}
