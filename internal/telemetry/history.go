package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"time"

	"tycoongrid/internal/tsdb"
)

// History endpoint limits: bounded output no matter what the query asks.
const (
	maxHistoryBuckets = 1000
	maxHistorySeries  = 64
	maxHistoryWindow  = 24 * time.Hour
	defaultBuckets    = 60
	defaultWindow     = 5 * time.Minute
)

// historyQuery is a validated /metrics/history request.
type historyQuery struct {
	series  string // empty = list series names only
	window  time.Duration
	buckets int
	raw     bool
}

// parseHistoryQuery validates the query string. Errors are user errors
// (HTTP 400); the handler never panics on hostile input — FuzzHistoryQuery
// enforces exactly that.
func parseHistoryQuery(q url.Values) (historyQuery, error) {
	out := historyQuery{window: defaultWindow, buckets: defaultBuckets}
	out.series = q.Get("series")
	if w := q.Get("window"); w != "" {
		d, err := time.ParseDuration(w)
		if err != nil {
			return out, fmt.Errorf("bad window %q: %v", w, err)
		}
		if d <= 0 {
			return out, fmt.Errorf("window must be positive, got %q", w)
		}
		if d > maxHistoryWindow {
			d = maxHistoryWindow
		}
		out.window = d
	}
	if b := q.Get("buckets"); b != "" {
		var n int
		if _, err := fmt.Sscanf(b, "%d", &n); err != nil || n < 1 {
			return out, fmt.Errorf("bad buckets %q", b)
		}
		if n > maxHistoryBuckets {
			n = maxHistoryBuckets
		}
		out.buckets = n
	}
	switch q.Get("raw") {
	case "", "0", "false":
	case "1", "true":
		out.raw = true
	default:
		return out, fmt.Errorf("bad raw %q", q.Get("raw"))
	}
	return out, nil
}

// historySeries is one series' slice of the response.
type historySeries struct {
	Name    string            `json:"name"`
	Points  []tsdb.Point      `json:"points,omitempty"`
	Buckets []tsdb.BucketStat `json:"buckets,omitempty"`
	Dropped uint64            `json:"dropped,omitempty"`
}

// historyResponse is the /metrics/history wire shape.
type historyResponse struct {
	WindowSeconds float64         `json:"window_seconds,omitempty"`
	Names         []string        `json:"names,omitempty"`
	Series        []historySeries `json:"series,omitempty"`
	Truncated     bool            `json:"truncated,omitempty"`
}

// HistoryHandler serves windowed series history from db as JSON.
//
//	GET /metrics/history                          -> {"names":[...]}
//	GET /metrics/history?series=N&window=5m       -> downsampled buckets
//	GET /metrics/history?series=N&raw=1           -> raw points
//
// series accepts an exact name or a trailing-'*' prefix pattern; windows are
// tail-aligned at each series' newest point (tsdb.Series.Window semantics),
// so a quiet series shows its last activity instead of an empty frame.
func HistoryHandler(db *tsdb.DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q, err := parseHistoryQuery(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)

		if q.series == "" {
			_ = enc.Encode(historyResponse{Names: db.Names()})
			return
		}
		names := db.Match(q.series)
		sort.Strings(names)
		resp := historyResponse{WindowSeconds: q.window.Seconds()}
		if len(names) > maxHistorySeries {
			names = names[:maxHistorySeries]
			resp.Truncated = true
		}
		for _, name := range names {
			s, ok := db.Lookup(name)
			if !ok {
				continue
			}
			pts := s.Window(q.window)
			hs := historySeries{Name: name, Dropped: s.Dropped()}
			if q.raw {
				hs.Points = pts
			} else {
				hs.Buckets = tsdb.Downsample(pts, q.buckets)
			}
			resp.Series = append(resp.Series, hs)
		}
		_ = enc.Encode(resp)
	})
}
