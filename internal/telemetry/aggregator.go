package telemetry

import (
	"context"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/metrics"
	"tycoongrid/internal/tsdb"
)

// Peer names one scrape target.
type Peer struct {
	Name    string `json:"name"`
	BaseURL string `json:"url"`
}

// PeerStatus is a peer's health as seen from the aggregator.
type PeerStatus struct {
	Peer
	Up         bool      `json:"up"`
	LastScrape time.Time `json:"last_scrape,omitempty"`
	LastError  string    `json:"last_error,omitempty"`
	Samples    int       `json:"samples"`
}

// FleetExemplar is one exemplar surfaced from a peer scrape: a concrete
// traced request pinned to the latency family it landed in, so "the fleet
// p99 moved" links to "this exact trace is why".
type FleetExemplar struct {
	Peer    string    `json:"peer"`
	Family  string    `json:"family"`
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	At      time.Time `json:"at"`
}

// maxFleetExemplars bounds the aggregator's exemplar ring.
const maxFleetExemplars = 64

// Aggregator scrapes a fleet of peers' /metrics and rebuilds the derived
// series — the same :rate/:p99/:mean convention the per-daemon collector
// uses — in its own tsdb, prefixed "<peer>/". Scrapes ride the retrying,
// circuit-broken httpapi transport, so one dead daemon costs one fast
// breaker failure per sweep, not a hung fleet view.
type Aggregator struct {
	peers   []Peer
	clients []*httpapi.TelemetryClient
	db      *tsdb.DB
	now     func() time.Time

	mu        sync.Mutex
	prev      map[string]map[string]float64 // peer -> sample key -> value
	prevAt    map[string]time.Time
	status    map[string]*PeerStatus
	exemplars []FleetExemplar

	mScrapes  *metrics.CounterVec
	mErrors   *metrics.CounterVec
	mDuration *metrics.Histogram
	mUp       *metrics.GaugeVec
}

// AggregatorConfig wires an Aggregator.
type AggregatorConfig struct {
	Peers []Peer
	// Capacity per derived series; 0 means tsdb.DefaultCapacity.
	Capacity int
	// Client is the scrape transport; nil builds one per peer with the
	// default timeout.
	Client *http.Client
	// Registry receives the aggregator's own scrape metrics; nil means the
	// process default.
	Registry *metrics.Registry
	// Now stamps scrapes; nil means time.Now.
	Now func() time.Time
}

// NewAggregator builds an aggregator over cfg.Peers.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = tsdb.DefaultCapacity
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	a := &Aggregator{
		peers:  append([]Peer(nil), cfg.Peers...),
		db:     tsdb.NewDB(capacity),
		now:    now,
		prev:   map[string]map[string]float64{},
		prevAt: map[string]time.Time{},
		status: map[string]*PeerStatus{},
		mScrapes: reg.CounterVec("telemetry_scrapes_total",
			"Peer scrapes attempted by the aggregator.", "peer"),
		mErrors: reg.CounterVec("telemetry_scrape_errors_total",
			"Peer scrapes that failed.", "peer"),
		mDuration: reg.Histogram("telemetry_scrape_seconds",
			"Wall time of one full fleet sweep.", nil),
		mUp: reg.GaugeVec("telemetry_peer_up",
			"1 when the last scrape of the peer succeeded.", "peer"),
	}
	for _, p := range a.peers {
		a.clients = append(a.clients, httpapi.NewTelemetryClient(p.BaseURL, cfg.Client))
		a.status[p.Name] = &PeerStatus{Peer: p}
	}
	return a
}

// DB exposes the fleet series store (serve it with HistoryHandler).
func (a *Aggregator) DB() *tsdb.DB { return a.db }

// Peers lists the configured targets.
func (a *Aggregator) Peers() []Peer { return append([]Peer(nil), a.peers...) }

// ScrapeOnce sweeps every peer concurrently and folds the results into the
// fleet tsdb. Returns the number of peers that answered.
func (a *Aggregator) ScrapeOnce(ctx context.Context) int {
	start := a.now()
	type result struct {
		idx  int
		text []byte
		err  error
	}
	results := make([]result, len(a.peers))
	var wg sync.WaitGroup
	for i := range a.peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			text, err := a.clients[i].ScrapeMetrics(ctx)
			results[i] = result{idx: i, text: text, err: err}
		}(i)
	}
	wg.Wait()

	at := a.now()
	up := 0
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, res := range results {
		peer := a.peers[res.idx]
		st := a.status[peer.Name]
		a.mScrapes.With(peer.Name).Inc()
		if res.err != nil {
			a.mErrors.With(peer.Name).Inc()
			a.mUp.With(peer.Name).Set(0)
			st.Up = false
			st.LastError = res.err.Error()
			// A dead peer's delta baseline is poison: when it comes back its
			// counters restart, and rating across the outage would spike.
			delete(a.prev, peer.Name)
			delete(a.prevAt, peer.Name)
			continue
		}
		up++
		a.mUp.With(peer.Name).Set(1)
		st.Up = true
		st.LastError = ""
		st.LastScrape = at
		st.Samples = a.ingestLocked(peer.Name, ParseExposition(res.text), at)
	}
	a.mDuration.Observe(a.now().Sub(start).Seconds())
	return up
}

// Run sweeps every interval until stop closes.
func (a *Aggregator) Run(stop <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	a.ScrapeOnce(context.Background())
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			a.ScrapeOnce(context.Background())
		}
	}
}

// histAccum folds one histogram family's component samples back together.
type histAccum struct {
	buckets map[float64]float64 // le -> cumulative count
	sum     float64
	count   float64
	hasSum  bool
}

// ingestLocked derives fleet series from one parsed scrape. Caller holds mu.
func (a *Aggregator) ingestLocked(peer string, sc *Scrape, at time.Time) int {
	tn := at.UnixNano()
	cur := make(map[string]float64, len(sc.Samples))
	hists := map[string]*histAccum{}
	appended := 0

	prev := a.prev[peer]
	prevAt, seeded := a.prevAt[peer]
	dt := 0.0
	if seeded {
		dt = at.Sub(prevAt).Seconds()
	}

	for i := range sc.Samples {
		s := &sc.Samples[i]
		cur[s.Key] = s.Value
		switch sc.KindOf(s.Name) {
		case KindGauge:
			if a.db.Series(peer+"/"+s.Key).AppendNanos(tn, s.Value) {
				appended++
			}
		case KindCounter:
			if seeded && dt > 0 {
				if pv, ok := prev[s.Key]; ok && s.Value >= pv {
					if a.db.Series(peer+"/"+s.Key+tsdb.SuffixRate).AppendNanos(tn, (s.Value-pv)/dt) {
						appended++
					}
				}
			}
		case KindHistogram:
			a.foldHistogram(hists, s, peer, at)
		}
	}

	if seeded && dt > 0 {
		// Histogram families: delta the cumulative buckets against the
		// previous scrape and derive rate/mean/p99 over just this interval.
		famNames := make([]string, 0, len(hists))
		for fam := range hists {
			famNames = append(famNames, fam)
		}
		sort.Strings(famNames)
		for _, fam := range famNames {
			h := hists[fam]
			base := peer + "/" + fam
			pc, okC := prev[fam+"\x00count"]
			ps, okS := prev[fam+"\x00sum"]
			if !okC || !okS || h.count < pc {
				continue // family appeared, or the peer restarted
			}
			dcount := h.count - pc
			if a.db.Series(base+tsdb.SuffixRate).AppendNanos(tn, dcount/dt) {
				appended++
			}
			if dcount > 0 {
				if a.db.Series(base+tsdb.SuffixMean).AppendNanos(tn, (h.sum-ps)/dcount) {
					appended++
				}
				if p99, ok := bucketQuantile(h, prev, fam, 0.99); ok {
					if a.db.Series(base+tsdb.SuffixP99).AppendNanos(tn, p99) {
						appended++
					}
				}
			}
		}
	}

	// Stash histogram components in the flat prev map for the next delta.
	for fam, h := range hists {
		cur[fam+"\x00count"] = h.count
		cur[fam+"\x00sum"] = h.sum
		for le, v := range h.buckets {
			cur[fam+"\x00le\x00"+strconv.FormatFloat(le, 'g', -1, 64)] = v
		}
	}
	a.prev[peer] = cur
	a.prevAt[peer] = at
	return appended
}

// foldHistogram routes one _bucket/_sum/_count sample into its family
// accumulator, capturing bucket exemplars into the fleet ring.
func (a *Aggregator) foldHistogram(hists map[string]*histAccum, s *Sample, peer string, at time.Time) {
	var fam string
	switch {
	case len(s.Name) > 7 && s.Name[len(s.Name)-7:] == "_bucket":
		fam = withoutLabel(s.Name[:len(s.Name)-7], s.Labels, "le")
		h := histFor(hists, fam)
		le := math.Inf(1)
		if raw := s.Get("le"); raw != "" && raw != "+Inf" {
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				le = v
			}
		}
		h.buckets[le] = s.Value
		if s.Exemplar != nil {
			// The exposition re-serves the last exemplar until a new one
			// lands; only ring a trace the fleet view hasn't seen yet.
			dup := false
			for i := range a.exemplars {
				e := &a.exemplars[i]
				if e.Peer == peer && e.Family == fam && e.TraceID == s.Exemplar.TraceID {
					dup = true
					break
				}
			}
			if !dup {
				a.exemplars = append(a.exemplars, FleetExemplar{
					Peer:    peer,
					Family:  fam,
					TraceID: s.Exemplar.TraceID,
					Value:   s.Exemplar.Value,
					At:      at,
				})
				if len(a.exemplars) > maxFleetExemplars {
					a.exemplars = a.exemplars[len(a.exemplars)-maxFleetExemplars:]
				}
			}
		}
	case len(s.Name) > 4 && s.Name[len(s.Name)-4:] == "_sum":
		h := histFor(hists, sampleKey(s.Name[:len(s.Name)-4], s.Labels))
		h.sum = s.Value
		h.hasSum = true
	case len(s.Name) > 6 && s.Name[len(s.Name)-6:] == "_count":
		h := histFor(hists, sampleKey(s.Name[:len(s.Name)-6], s.Labels))
		h.count = s.Value
	}
}

func histFor(hists map[string]*histAccum, fam string) *histAccum {
	h, ok := hists[fam]
	if !ok {
		h = &histAccum{buckets: map[float64]float64{}}
		hists[fam] = h
	}
	return h
}

// bucketQuantile interpolates a quantile from the interval's bucket deltas,
// mirroring metrics.Histogram.Quantile so the fleet p99 and a daemon's own
// p99 agree on identical data.
func bucketQuantile(h *histAccum, prev map[string]float64, fam string, q float64) (float64, bool) {
	les := make([]float64, 0, len(h.buckets))
	for le := range h.buckets {
		les = append(les, le)
	}
	sort.Float64s(les)
	if len(les) == 0 {
		return 0, false
	}
	deltas := make([]float64, len(les))
	total := 0.0
	prevCum := 0.0
	for i, le := range les {
		pv := prev[fam+"\x00le\x00"+strconv.FormatFloat(le, 'g', -1, 64)]
		d := (h.buckets[le] - pv) - prevCum
		prevCum = h.buckets[le] - pv
		if d < 0 {
			return 0, false // restart mid-family
		}
		deltas[i] = d
		total += d
	}
	if total == 0 {
		return 0, false
	}
	rank := q * total
	cum := 0.0
	for i, d := range deltas {
		cum += d
		if cum < rank {
			continue
		}
		if math.IsInf(les[i], 1) {
			if i == 0 {
				return 0, false
			}
			return les[i-1], true
		}
		lower := 0.0
		if i > 0 {
			lower = les[i-1]
		}
		if d == 0 {
			return les[i], true
		}
		frac := (rank - (cum - d)) / d
		return lower + (les[i]-lower)*frac, true
	}
	return les[len(les)-1], true
}

// Exemplars returns the newest fleet exemplars, most recent last.
func (a *Aggregator) Exemplars() []FleetExemplar {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]FleetExemplar(nil), a.exemplars...)
}

// Status returns per-peer scrape health, sorted by peer name.
func (a *Aggregator) Status() []PeerStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PeerStatus, 0, len(a.status))
	for _, st := range a.status {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
