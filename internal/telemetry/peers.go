package telemetry

import (
	"fmt"
	"strings"
)

// ParsePeers parses a comma-separated "name=url" list (the slsd -peers flag
// syntax) into scrape targets:
//
//	bankd=http://localhost:7700,h1=http://localhost:7710
//
// Names must be unique — they prefix every fleet series, so a collision
// would silently merge two daemons' samples.
func ParsePeers(spec string) ([]Peer, error) {
	seen := make(map[string]bool)
	var peers []Peer
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, ok := strings.Cut(entry, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("telemetry: peer entry %q is not name=url", entry)
		}
		if strings.ContainsAny(name, "/ ") {
			return nil, fmt.Errorf("telemetry: peer name %q may not contain '/' or spaces", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("telemetry: duplicate peer name %q", name)
		}
		seen[name] = true
		peers = append(peers, Peer{Name: name, BaseURL: url})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("telemetry: peer list %q is empty", spec)
	}
	return peers, nil
}
