package telemetry

import (
	"time"

	"tycoongrid/internal/httpapi"
	"tycoongrid/internal/metrics"
	"tycoongrid/internal/slo"
	"tycoongrid/internal/tsdb"
)

// DefaultScrapeInterval is the self-scrape cadence daemons use unless
// configured otherwise. Five seconds keeps a 5m SLO window at ~60 judged
// samples per objective.
const DefaultScrapeInterval = 5 * time.Second

// Config wires a Plane.
type Config struct {
	// Service names the daemon in SLO logs ("bankd", "auctioneerd", ...).
	Service string
	// Registry to self-scrape; nil means the process default.
	Registry *metrics.Registry
	// Capacity is the per-series ring size; 0 means tsdb.DefaultCapacity.
	Capacity int
	// Interval between self-scrapes for Run; 0 means DefaultScrapeInterval.
	Interval time.Duration
	// Now is the scrape/evaluation clock; nil means time.Now. Simulations
	// inject engine time here so stored history is deterministic.
	Now func() time.Time
	// Objectives to evaluate; nil means slo.DefaultObjectives().
	// An explicitly empty, non-nil slice disables SLO evaluation.
	Objectives []slo.Objective
	// Probes run before every self-scrape. They exist for derived gauges
	// that are too expensive to maintain inline — the bank's conservation
	// drift walks every account, so it is computed once per scrape tick
	// rather than once per transfer.
	Probes []func()
}

// Plane is one daemon's telemetry stack: self-scrape collector, series
// store, SLO evaluator and the HTTP handlers that expose them.
type Plane struct {
	service   string
	db        *tsdb.DB
	collector *tsdb.Collector
	evaluator *slo.Evaluator
	probes    []func()
	interval  time.Duration
}

// NewPlane builds a telemetry plane from cfg.
func NewPlane(cfg Config) *Plane {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = tsdb.DefaultCapacity
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	rules := cfg.Objectives
	if rules == nil {
		rules = slo.DefaultObjectives()
	}
	db := tsdb.NewDB(capacity)
	p := &Plane{
		service:   cfg.Service,
		db:        db,
		collector: tsdb.NewCollector(reg, db, cfg.Now),
		probes:    cfg.Probes,
		interval:  interval,
	}
	if len(rules) > 0 {
		opts := []slo.Option{slo.WithRegistry(reg)}
		if cfg.Now != nil {
			opts = append(opts, slo.WithNow(cfg.Now))
		}
		p.evaluator = slo.New(cfg.Service, db, rules, opts...)
	}
	return p
}

// DB exposes the plane's series store.
func (p *Plane) DB() *tsdb.DB { return p.db }

// Evaluator returns the SLO evaluator (nil when objectives are disabled).
func (p *Plane) Evaluator() *slo.Evaluator { return p.evaluator }

// Collect runs one telemetry tick: probes, self-scrape, SLO evaluation.
// Returns the number of series points appended.
func (p *Plane) Collect() int {
	for _, probe := range p.probes {
		probe()
	}
	n := p.collector.Collect()
	if p.evaluator != nil {
		p.evaluator.Evaluate()
	}
	return n
}

// Run ticks Collect every interval until stop closes. The first tick runs
// immediately so the delta baseline is seeded at boot.
func (p *Plane) Run(stop <-chan struct{}) {
	t := time.NewTicker(p.interval)
	defer t.Stop()
	p.Collect()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.Collect()
		}
	}
}

// MuxOptions returns the ObservedMux options that mount the plane's
// endpoints: GET /metrics/history and, when SLOs are enabled, GET /slo.
func (p *Plane) MuxOptions() []httpapi.MuxOption {
	opts := []httpapi.MuxOption{
		httpapi.WithHandler("GET /metrics/history", HistoryHandler(p.db)),
	}
	if p.evaluator != nil {
		opts = append(opts, httpapi.WithHandler("GET /slo", p.evaluator.Handler()))
	}
	return opts
}
