package telemetry

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tycoongrid/internal/metrics"
	"tycoongrid/internal/tsdb"
)

// peerServer serves a synthetic exposition whose counters advance per
// scrape, like a live daemon would between sweeps.
func peerServer(scrapes *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := scrapes.Add(1)
		fmt.Fprintf(w, "# TYPE clears_total counter\n")
		fmt.Fprintf(w, "clears_total %d\n", n*100) // +100 per scrape
		fmt.Fprintf(w, "# TYPE spot_price gauge\n")
		fmt.Fprintf(w, "spot_price %g\n", 1.5)
		fmt.Fprintf(w, "# TYPE lat_seconds histogram\n")
		// Per scrape: +8 obs in (0, .01], +2 in (.01, .1]; p99 lands in the
		// second bucket.
		fmt.Fprintf(w, "lat_seconds_bucket{le=\"0.01\"} %d # {trace_id=\"trace%d\"} 0.005\n", n*8, n)
		fmt.Fprintf(w, "lat_seconds_bucket{le=\"0.1\"} %d\n", n*10)
		fmt.Fprintf(w, "lat_seconds_bucket{le=\"+Inf\"} %d\n", n*10)
		fmt.Fprintf(w, "lat_seconds_sum %g\n", float64(n)*0.1)
		fmt.Fprintf(w, "lat_seconds_count %d\n", n*10)
	}))
}

func TestAggregatorDerivesFleetSeries(t *testing.T) {
	var scrapesA, scrapesB atomic.Int64
	srvA := peerServer(&scrapesA)
	defer srvA.Close()
	srvB := peerServer(&scrapesB)
	defer srvB.Close()

	clock := &stepClock{at: time.Unix(7000, 0), step: 10 * time.Second}
	agg := NewAggregator(AggregatorConfig{
		Peers: []Peer{
			{Name: "auction-a", BaseURL: srvA.URL},
			{Name: "auction-b", BaseURL: srvB.URL},
		},
		Registry: metrics.NewRegistry(),
		Now:      clock.now,
	})

	if up := agg.ScrapeOnce(context.Background()); up != 2 {
		t.Fatalf("first sweep up = %d, want 2", up)
	}
	if up := agg.ScrapeOnce(context.Background()); up != 2 {
		t.Fatalf("second sweep up = %d, want 2", up)
	}

	// Counter rate: +100 clears between the two sweeps' ingest stamps. The
	// step clock advances on every now() call (three per sweep), so the
	// inter-sweep dt is 30s -> 100/30 per second.
	rate, ok := agg.DB().Lookup("auction-a/clears_total" + tsdb.SuffixRate)
	if !ok {
		t.Fatalf("missing clears rate; series: %v", agg.DB().Names())
	}
	if last, _ := rate.Latest(); last.V < 3.3 || last.V > 3.4 {
		t.Fatalf("clears rate = %g, want ~3.33/s", last.V)
	}

	// Gauge copied through for both peers.
	for _, peer := range []string{"auction-a", "auction-b"} {
		g, ok := agg.DB().Lookup(peer + "/spot_price")
		if !ok {
			t.Fatalf("missing %s spot price", peer)
		}
		if last, _ := g.Latest(); last.V != 1.5 {
			t.Fatalf("%s spot = %g", peer, last.V)
		}
	}

	// Histogram family: rate, mean and interpolated p99 from bucket deltas.
	hrate, ok := agg.DB().Lookup("auction-a/lat_seconds" + tsdb.SuffixRate)
	if !ok {
		t.Fatal("missing histogram rate")
	}
	if last, _ := hrate.Latest(); last.V < 0.33 || last.V > 0.34 {
		t.Fatalf("histogram rate = %g, want ~0.33/s (10 obs / 30s)", last.V)
	}
	mean, ok := agg.DB().Lookup("auction-a/lat_seconds" + tsdb.SuffixMean)
	if !ok {
		t.Fatal("missing histogram mean")
	}
	if last, _ := mean.Latest(); last.V < 0.0099 || last.V > 0.0101 {
		t.Fatalf("histogram mean = %g, want 0.01", last.V)
	}
	p99, ok := agg.DB().Lookup("auction-a/lat_seconds" + tsdb.SuffixP99)
	if !ok {
		t.Fatal("missing histogram p99")
	}
	// Deltas per interval: 8 in (0,.01], 2 in (.01,.1]; rank 9.9 of 10 ->
	// interpolated inside the second bucket: .01 + (.1-.01)*(1.9/2) = .0955.
	if last, _ := p99.Latest(); last.V < 0.095 || last.V > 0.096 {
		t.Fatalf("fleet p99 = %g, want ~0.0955", last.V)
	}

	// Exemplars surfaced with peer attribution, deduped by trace id.
	exs := agg.Exemplars()
	if len(exs) == 0 {
		t.Fatal("no fleet exemplars")
	}
	seen := map[string]bool{}
	for _, e := range exs {
		if e.Peer == "" || e.TraceID == "" {
			t.Fatalf("malformed exemplar %+v", e)
		}
		key := e.Peer + "/" + e.TraceID
		if seen[key] {
			t.Fatalf("duplicate exemplar %s", key)
		}
		seen[key] = true
	}

	// Rollup report includes both peers up.
	rep := agg.Report()
	if len(rep.Peers) != 2 || !rep.Peers[0].Up || !rep.Peers[1].Up {
		t.Fatalf("report peers = %+v", rep.Peers)
	}
	if len(rep.Series) == 0 {
		t.Fatal("report lists no series")
	}
}

// TestAggregatorPeerDownAndRecovery kills a peer mid-flight: the sweep must
// mark it down without poisoning the other peer's series, and when the peer
// returns (counters reset: restart) the rate baseline must re-seed instead
// of producing a negative or spiked rate.
func TestAggregatorPeerDownAndRecovery(t *testing.T) {
	var scrapes atomic.Int64
	live := peerServer(&scrapes)
	defer live.Close()

	var deadURL string
	{
		dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		deadURL = dead.URL
		dead.Close() // connection refused from here on
	}

	clock := &stepClock{at: time.Unix(8000, 0), step: 5 * time.Second}
	reg := metrics.NewRegistry()
	agg := NewAggregator(AggregatorConfig{
		Peers: []Peer{
			{Name: "live", BaseURL: live.URL},
			{Name: "dead", BaseURL: deadURL},
		},
		Registry: reg,
		Now:      clock.now,
		Client:   &http.Client{Timeout: 2 * time.Second},
	})

	if up := agg.ScrapeOnce(context.Background()); up != 1 {
		t.Fatalf("up = %d, want 1", up)
	}
	agg.ScrapeOnce(context.Background())

	sts := agg.Status()
	if sts[0].Name != "dead" || sts[0].Up || sts[0].LastError == "" {
		t.Fatalf("dead peer status = %+v", sts[0])
	}
	if sts[1].Name != "live" || !sts[1].Up {
		t.Fatalf("live peer status = %+v", sts[1])
	}
	if _, ok := agg.DB().Lookup("live/clears_total" + tsdb.SuffixRate); !ok {
		t.Fatal("live peer series missing despite dead neighbour")
	}
	if reg.CounterValue("telemetry_scrape_errors_total", "dead") == 0 {
		t.Fatal("scrape errors not counted")
	}

	// "Restart" the live peer: counters fall back to small values. The next
	// two sweeps re-seed; no negative-rate point may ever land.
	scrapes.Store(0)
	agg.ScrapeOnce(context.Background())
	agg.ScrapeOnce(context.Background())
	rate, _ := agg.DB().Lookup("live/clears_total" + tsdb.SuffixRate)
	for _, p := range rate.Since(0) {
		if p.V < 0 {
			t.Fatalf("negative rate %g after counter reset", p.V)
		}
	}
}
