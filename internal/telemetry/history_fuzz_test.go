package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"tycoongrid/internal/tsdb"
)

// FuzzHistoryQuery hammers the /metrics/history query parser and handler
// with arbitrary query strings: the handler must never panic, and must
// answer either HTTP 400 or valid JSON — nothing in between.
func FuzzHistoryQuery(f *testing.F) {
	seeds := []string{
		"",
		"series=price",
		"series=price&window=5m&buckets=60",
		"series=price&raw=1",
		"series=*&window=24h",
		"series=http_request_duration_seconds{*:p99&window=1h&buckets=1000",
		"window=banana",
		"buckets=-1",
		"buckets=99999999999999999999",
		"series=price&window=9999999h",
		"raw=maybe",
		"series=%00%ff&window=1ns",
		"series=a&series=b&window=1s&window=2s",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	db := tsdb.NewDB(64)
	s := db.Series("price")
	base := time.Unix(1000, 0)
	for i := 0; i < 50; i++ {
		s.AppendNanos(base.Add(time.Duration(i)*time.Second).UnixNano(), float64(i))
	}
	h := HistoryHandler(db)

	f.Fuzz(func(t *testing.T, rawQuery string) {
		req := httptest.NewRequest("GET", "/metrics/history", nil)
		req.URL.RawQuery = rawQuery
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic

		switch rec.Code {
		case 200:
			var v any
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Fatalf("200 with invalid JSON for query %q: %v", rawQuery, err)
			}
		case 400:
			// fine: rejected input
		default:
			t.Fatalf("query %q -> unexpected status %d", rawQuery, rec.Code)
		}

		// The parser alone must also be total.
		if vals, err := url.ParseQuery(rawQuery); err == nil {
			_, _ = parseHistoryQuery(vals)
		}
	})
}
