package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"tycoongrid/internal/metrics"
	"tycoongrid/internal/slo"
	"tycoongrid/internal/tsdb"
)

type stepClock struct {
	at   time.Time
	step time.Duration
}

func (c *stepClock) now() time.Time {
	c.at = c.at.Add(c.step)
	return c.at
}

func TestPlaneCollectFeedsProbesAndSLO(t *testing.T) {
	reg := metrics.NewRegistry()
	drift := reg.Gauge("bank_conservation_drift_credits", "drift")
	// 2s per now() call: the evaluator's clock reads one step after the
	// collector's append stamp, and the fast window (Window/12 = 5s) must
	// still contain the freshly appended sample.
	clock := &stepClock{at: time.Unix(5000, 0), step: 2 * time.Second}

	probeRan := 0
	p := NewPlane(Config{
		Service:  "bankd",
		Registry: reg,
		Now:      clock.now,
		Objectives: []slo.Objective{{
			Name: "conservation", Series: "bank_conservation_drift_credits",
			Op: slo.OpEQ, Threshold: 0, Window: time.Minute, Budget: 0,
		}},
		Probes: []func(){func() { probeRan++; drift.Set(0) }},
	})
	for i := 0; i < 3; i++ {
		p.Collect()
	}
	if probeRan != 3 {
		t.Fatalf("probe ran %d times, want 3", probeRan)
	}
	s, ok := p.DB().Lookup("bank_conservation_drift_credits")
	if !ok || s.Len() != 3 {
		t.Fatalf("drift series missing or short: %v", p.DB().Names())
	}
	// Burn gauges land back in the registry, so they self-scrape next tick.
	if reg.CounterValue("slo_violations_total", "conservation") != 0 {
		t.Fatal("zero drift must not violate")
	}

	// Now drift: the very next Collect must catch it (zero budget).
	p2 := NewPlane(Config{
		Service:  "bankd",
		Registry: reg,
		Now:      clock.now,
		Objectives: []slo.Objective{{
			Name: "conservation", Series: "bank_conservation_drift_credits",
			Op: slo.OpEQ, Threshold: 0, Window: time.Minute, Budget: 0,
		}},
		Probes: []func(){func() { drift.Set(3) }},
	})
	p2.Collect()
	if reg.CounterValue("slo_violations_total", "conservation") != 1 {
		t.Fatal("drift must violate within one collection tick")
	}
}

func TestHistoryHandler(t *testing.T) {
	db := tsdb.NewDB(128)
	s := db.Series("price")
	base := time.Unix(9000, 0)
	for i := 0; i < 100; i++ {
		s.AppendNanos(base.Add(time.Duration(i)*time.Second).UnixNano(), float64(i))
	}
	h := HistoryHandler(db)

	// Listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history", nil))
	var listing struct {
		Names []string `json:"names"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil || len(listing.Names) != 1 {
		t.Fatalf("listing = %s (err %v)", rec.Body.String(), err)
	}

	// Downsampled window.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history?series=price&window=50s&buckets=5", nil))
	var resp struct {
		WindowSeconds float64 `json:"window_seconds"`
		Series        []struct {
			Name    string `json:"name"`
			Buckets []struct {
				Count int     `json:"count"`
				Mean  float64 `json:"mean"`
			} `json:"buckets"`
		} `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Series) != 1 || len(resp.Series[0].Buckets) != 5 {
		t.Fatalf("resp = %s", rec.Body.String())
	}

	// Raw points.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history?series=price&window=10s&raw=1", nil))
	var rawResp struct {
		Series []struct {
			Points []tsdb.Point `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rawResp); err != nil {
		t.Fatal(err)
	}
	if len(rawResp.Series) != 1 || len(rawResp.Series[0].Points) == 0 {
		t.Fatalf("raw resp = %s", rec.Body.String())
	}

	// Bad queries are 400s, never panics.
	for _, q := range []string{"?series=price&window=banana", "?series=price&buckets=-3", "?series=price&raw=maybe", "?series=price&window=-5s"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history"+q, nil))
		if rec.Code != 400 {
			t.Fatalf("query %q -> %d, want 400", q, rec.Code)
		}
	}

	// Unknown series: empty but valid response.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/history?series=zzz", nil))
	if rec.Code != 200 {
		t.Fatalf("unknown series -> %d", rec.Code)
	}
}
