// Package telemetry is the market's observability plane. Each daemon runs a
// Plane: a self-scrape loop feeding the process registry into an embedded
// tsdb, an SLO evaluator over that history, and HTTP handlers
// (/metrics/history, /slo) mounted on the daemon's ObservedMux. An
// Aggregator — hosted by the SLS daemon or run in-process by gridtop —
// scrapes every peer's /metrics over the fault-tolerant httpapi transport
// and rebuilds the same derived series fleet-wide, so one query answers
// "what is the p99 across the grid" without any external monitoring stack.
package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SampleKind classifies a parsed family.
type SampleKind string

// Family kinds from the exposition's TYPE metadata.
const (
	KindGauge     SampleKind = "gauge"
	KindCounter   SampleKind = "counter"
	KindHistogram SampleKind = "histogram"
	KindUnknown   SampleKind = "unknown"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Key is the full sample identity as exposed: name plus rendered labels,
	// e.g. `http_requests_total{code="200",route="/bids"}`.
	Key string
	// Name is the bare metric name (with _bucket/_sum/_count suffixes kept).
	Name string
	// Labels holds the parsed label pairs, sorted by key.
	Labels []Label
	Value  float64
	// Exemplar carries the OpenMetrics exemplar riding this line, if any.
	Exemplar *ScrapedExemplar
}

// Label is one parsed label pair.
type Label struct{ Key, Value string }

// Get returns the value for a label key ("" when absent).
func (s *Sample) Get(key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// ScrapedExemplar is an exemplar parsed off an OpenMetrics bucket line.
type ScrapedExemplar struct {
	TraceID string
	Value   float64
}

// Scrape is one parsed exposition.
type Scrape struct {
	// Types maps family name -> kind, from "# TYPE" metadata. OpenMetrics
	// names counter families without the _total suffix; KindOf handles both.
	Types   map[string]SampleKind
	Samples []Sample
}

// KindOf resolves a sample name to its family kind, stripping the counter
// and histogram-component suffixes the two exposition dialects disagree on.
func (sc *Scrape) KindOf(name string) SampleKind {
	if k, ok := sc.Types[name]; ok {
		return k
	}
	for _, suf := range []string{"_total", "_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if k, ok := sc.Types[base]; ok {
				return k
			}
		}
	}
	return KindUnknown
}

// ParseExposition parses a Prometheus 0.0.4 or OpenMetrics 1.0 text payload.
// Unparseable lines are skipped, not fatal: a scrape that half-parses is
// more useful to an operator than no scrape at all.
func ParseExposition(text []byte) *Scrape {
	sc := &Scrape{Types: map[string]SampleKind{}}
	for _, line := range strings.Split(string(text), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			if name, kind, ok := parseTypeLine(rest); ok {
				sc.Types[name] = kind
			}
			continue
		}
		if s, ok := parseSampleLine(line); ok {
			sc.Samples = append(sc.Samples, s)
		}
	}
	return sc
}

// parseTypeLine handles `TYPE <name> <kind>` comment bodies.
func parseTypeLine(rest string) (string, SampleKind, bool) {
	fields := strings.Fields(rest)
	if len(fields) != 3 || fields[0] != "TYPE" {
		return "", "", false
	}
	switch SampleKind(fields[2]) {
	case KindGauge, KindCounter, KindHistogram:
		return fields[1], SampleKind(fields[2]), true
	default:
		return fields[1], KindUnknown, true
	}
}

// parseSampleLine handles `name{labels} value [ts] [# {ex} v [ts]]`.
func parseSampleLine(line string) (Sample, bool) {
	var s Sample

	// Split off an OpenMetrics exemplar first: ` # {...} value [ts]`.
	if i := strings.Index(line, " # "); i >= 0 {
		s.Exemplar = parseExemplar(line[i+3:])
		line = strings.TrimSpace(line[:i])
	}

	// Name and optional label block.
	rest := line
	if brace := strings.IndexByte(rest, '{'); brace >= 0 {
		s.Name = rest[:brace]
		close := strings.IndexByte(rest[brace:], '}')
		if close < 0 {
			return s, false
		}
		var ok bool
		s.Labels, ok = parseLabels(rest[brace+1 : brace+close])
		if !ok {
			return s, false
		}
		rest = strings.TrimSpace(rest[brace+close+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, false
		}
		s.Name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if s.Name == "" {
		return s, false
	}

	// Value, then an optional timestamp we ignore (the aggregator stamps
	// scrape time itself so peer clock skew cannot reorder its series).
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, false
	}
	s.Value = v
	s.Key = sampleKey(s.Name, s.Labels)
	return s, true
}

// parseLabels parses the inside of a label block. Escapes in label values
// (\\, \", \n) are unescaped; a malformed block rejects the sample.
func parseLabels(body string) ([]Label, bool) {
	var out []Label
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, strings.TrimSpace(body[i:]) == ""
		}
		key := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, false
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, false
			}
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(body[i+1])
				default:
					val.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		out = append(out, Label{Key: key, Value: val.String()})
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, true
}

// parseExemplar handles `{trace_id="..."} value [ts]`.
func parseExemplar(rest string) *ScrapedExemplar {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "{") {
		return nil
	}
	close := strings.IndexByte(rest, '}')
	if close < 0 {
		return nil
	}
	labels, ok := parseLabels(rest[1:close])
	if !ok {
		return nil
	}
	ex := &ScrapedExemplar{}
	for _, l := range labels {
		if l.Key == "trace_id" {
			ex.TraceID = l.Value
		}
	}
	fields := strings.Fields(rest[close+1:])
	if len(fields) > 0 {
		if v, err := strconv.ParseFloat(fields[0], 64); err == nil {
			ex.Value = v
		}
	}
	if ex.TraceID == "" {
		return nil
	}
	return ex
}

// sampleKey renders name + sorted labels back into the canonical series key.
func sampleKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// withoutLabel re-renders a sample key dropping one label (used to fold
// histogram _bucket series across their "le" label).
func withoutLabel(name string, labels []Label, drop string) string {
	kept := make([]Label, 0, len(labels))
	for _, l := range labels {
		if l.Key != drop {
			kept = append(kept, l)
		}
	}
	return sampleKey(name, kept)
}
