package experiment

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"tycoongrid/internal/agent"
	"tycoongrid/internal/arc"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/grid"
	"tycoongrid/internal/mathx"
	"tycoongrid/internal/metrics"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/strategy"
	"tycoongrid/internal/token"
	"tycoongrid/internal/trace"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/workload"
	"tycoongrid/internal/xrsl"
)

// This file is the end-to-end strategy comparison the prediction suite
// exists for: the same partitioned grid market is replayed once per
// matchmaking strategy (current price, predicted mean, predicted quantile,
// Markowitz portfolio) under identical seeds and identical measured jobs, so
// the only difference between runs is WHERE the meta-scheduler sent each
// job. Partition p0 carries the paper's bursty batch-wave load whose deep
// price troughs bait the reactive current-price policy; the steady
// partitions carry a continuous medium load. A strategy that sees through
// the transient troughs — because the predicted or historical price of the
// bursty partition is high — finishes the measured jobs sooner and cheaper.

// StrategiesParams shapes the strategy-comparison scenario.
type StrategiesParams struct {
	World      WorldConfig // cluster shape; Hosts are split evenly over Partitions
	Partitions int
	Hours      float64

	// Strategies to compare; empty means every registered strategy.
	Strategies []string
	// Horizon is the forecast horizon handed to prediction strategies and the
	// delay after which predicted-vs-realized error is scored.
	Horizon time.Duration
	// Predictor is the predict registry model for predicted-* strategies.
	Predictor string
	// Window is the history window (in market ticks) for predictors.
	Window int
	// Streaming, when non-empty, names a streaming predictor family
	// (predict.StreamingAR, ...) each partition agent colocates with its
	// price feed; prediction strategies then read partition forecasts
	// through O(1) handles instead of refitting from copied history. Empty
	// keeps the legacy batch pipeline — the golden-pinned default.
	Streaming string

	// Bursty background on partition 0: every WavePeriod a wave of WaveJobs
	// heavily-funded batch jobs lands, then completes, producing the sharp
	// spike/trough cycle of §5.4.
	WavePeriod time.Duration
	WaveJobs   int
	// Steady background on the remaining partitions: one modest job every
	// SteadyEvery per partition.
	SteadyEvery time.Duration

	// Measured jobs are submitted through the meta-scheduler at a fixed
	// cadence and constitute the comparison metric.
	MeasureStart    time.Duration
	MeasureEvery    time.Duration
	MeasureBudget   float64 // credits
	MeasureDeadline time.Duration
	MeasureSubJobs  int
	MeasureChunkMin float64
	MeasureMaxNodes int
}

// DefaultStrategiesParams returns the paper-shaped comparison: a six-host
// cluster in three two-host partitions, 30 hours of market activity, waves
// every 80 minutes on the bursty partition, and a measured job through the
// meta-scheduler every 50 minutes.
func DefaultStrategiesParams() StrategiesParams {
	w := PaperWorld()
	w.Hosts = 6
	w.Users = 6
	// Hundreds of single-use jobs per host over 30 h: reap idle VMs or the
	// per-host VM limit starves the second half of the run.
	w.PurgeIdleAfter = 30 * time.Minute
	return StrategiesParams{
		World:      w,
		Partitions: 3,
		Hours:      30,

		Strategies: nil, // all registered
		Horizon:    30 * time.Minute,
		Predictor:  "ar",
		Window:     600, // 100 min of 10 s ticks: > one full wave period

		WavePeriod:  80 * time.Minute,
		WaveJobs:    3,
		SteadyEvery: 25 * time.Minute,

		MeasureStart:    2 * time.Hour,
		MeasureEvery:    50 * time.Minute,
		MeasureBudget:   40,
		MeasureDeadline: 3 * time.Hour,
		MeasureSubJobs:  4,
		MeasureChunkMin: 20,
		MeasureMaxNodes: 2,
	}
}

// StrategyOutcome is one strategy's aggregate over its measured jobs.
type StrategyOutcome struct {
	Strategy string
	Jobs     int // measured jobs that finished
	Failed   int // measured jobs that failed or never finished
	// MeanCost is the mean credits actually charged per finished measured job.
	MeanCost float64
	// MeanMakespanMin is the mean submission-to-completion wall time (minutes).
	MeanMakespanMin float64
	// Volatility is the mean, over measured jobs, of the standard deviation of
	// the chosen partition's spot price during the job's lifetime (credits/s).
	Volatility float64
	// PredMAE is the meta-scheduler's mean absolute predicted-vs-realized
	// price error, scored one horizon after each pick.
	PredMAE float64
	// Picks counts matchmaking decisions per partition name.
	Picks map[string]int
	// Clears and Transfers capture the run's telemetry: auction clears and
	// bank transfers recorded by the process registry while this strategy's
	// world ran (a snapshot delta, deterministic for a seeded serial run).
	Clears    uint64
	Transfers uint64
}

// StrategiesResult is the full comparison.
type StrategiesResult struct {
	Params   StrategiesParams
	Outcomes []StrategyOutcome
}

// RunStrategies replays the scenario once per strategy under the same seed
// and returns the per-strategy outcomes in the order requested.
func RunStrategies(p StrategiesParams) (*StrategiesResult, error) {
	if p.Partitions < 2 {
		return nil, errors.New("experiment: strategies needs at least 2 partitions")
	}
	if p.World.Hosts%p.Partitions != 0 {
		return nil, fmt.Errorf("experiment: %d hosts not divisible into %d partitions",
			p.World.Hosts, p.Partitions)
	}
	if p.Hours <= 0 || p.MeasureEvery <= 0 || p.MeasureDeadline <= 0 {
		return nil, errors.New("experiment: bad strategies timing")
	}
	names := p.Strategies
	if len(names) == 0 {
		names = strategy.Names()
	}
	res := &StrategiesResult{Params: p}
	for _, name := range names {
		out, err := runOneStrategy(p, name)
		if err != nil {
			return nil, fmt.Errorf("experiment: strategy %q: %w", name, err)
		}
		res.Outcomes = append(res.Outcomes, *out)
	}
	return res, nil
}

// stratWorld is the partitioned meta-scheduler testbed.
type stratWorld struct {
	eng        *sim.Engine
	bank       *bank.Bank
	rec        *trace.Recorder
	meta       *arc.Meta
	agents     []*agent.Agent
	partitions [][]string
	hostPart   map[string]int
	users      []*GridUser
	src        *rng.Source
	nonce      int
}

// buildStrategiesWorld assembles one partitioned world: a single cluster,
// one agent + ARC manager per partition — all sharing ONE broker identity,
// account and token verifier (so a token pays "the grid" and verifies no
// matter which partition matchmaking picks) — under a Meta running the named
// strategy.
func buildStrategiesWorld(p StrategiesParams, stratName string) (*stratWorld, error) {
	eng := sim.NewEngine()
	src := rng.New(p.World.Seed)
	tr := p.World.Tracer
	if tr == nil {
		tr = tracing.Default()
	}
	ca, err := pki.NewDeterministicCA("/O=Grid/CN=TycoonCA", seed32(src), pki.WithTimeSource(eng.Now))
	if err != nil {
		return nil, err
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", seed32(src))
	if err != nil {
		return nil, err
	}
	brokerID, err := ca.IssueDeterministic("/CN=Broker", seed32(src))
	if err != nil {
		return nil, err
	}
	b := bank.New(bankID, eng, bank.WithLedgerRetention(100_000), bank.WithTracer(tr))
	if _, err := b.CreateAccount("broker", brokerID.Public()); err != nil {
		return nil, err
	}

	specs := make([]grid.HostSpec, p.World.Hosts)
	for i := range specs {
		specs[i] = grid.HostSpec{
			ID:     fmt.Sprintf("h%02d", i),
			Site:   site(i),
			CPUs:   p.World.CPUsPerHost,
			CPUMHz: p.World.CPUMHz,
			MaxVMs: p.World.MaxVMsPerCPU * p.World.CPUsPerHost,
		}
	}
	cluster, err := grid.New(eng, grid.Config{
		Hosts:          specs,
		ReservePrice:   p.World.ReservePrice,
		Interval:       p.World.Interval,
		PurgeIdleAfter: p.World.PurgeIdleAfter,
		Tracer:         tr,
	})
	if err != nil {
		return nil, err
	}
	if err := cluster.Start(); err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	for _, id := range cluster.HostIDs() {
		h, err := cluster.Host(id)
		if err != nil {
			return nil, err
		}
		h.Market.Observe(rec.Observer(id))
	}

	// One shared verifier: the replay cache must be global, or the same
	// token could be redeemed once per partition.
	verifier, err := token.NewVerifier(b.PublicKey(), ca.Certificate(), "broker", nil)
	if err != nil {
		return nil, err
	}

	per := p.World.Hosts / p.Partitions
	w := &stratWorld{
		eng: eng, bank: b, rec: rec, src: src,
		hostPart: make(map[string]int),
	}
	var managers []*arc.Manager
	for i := 0; i < p.Partitions; i++ {
		part := make([]string, per)
		for j := range part {
			part[j] = fmt.Sprintf("h%02d", i*per+j)
			w.hostPart[part[j]] = i
		}
		ag, err := agent.New(agent.Config{
			Cluster: cluster, Bank: b, Identity: brokerID, Account: "broker",
			Verifier: verifier, Hosts: part, Tracer: tr,
			// Shared broker account: distinct prefixes keep the per-job
			// sub-accounts (broker/p0-0001, ...) collision-free.
			JobIDPrefix: fmt.Sprintf("p%d", i),
			Streaming:   p.Streaming,
			// Streaming runs cap the ring at the batch predictors' window so
			// both pipelines forecast from the same trailing history; the
			// legacy path keeps the golden-pinned default capacity.
			FeedCapacity: streamingFeedCap(p),
		})
		if err != nil {
			return nil, err
		}
		mgr, err := arc.New(arc.Config{
			ClusterName: fmt.Sprintf("p%d", i), Agent: ag, Tracer: tr,
		})
		if err != nil {
			return nil, err
		}
		w.agents = append(w.agents, ag)
		w.partitions = append(w.partitions, part)
		managers = append(managers, mgr)
	}
	meta, err := arc.NewMeta(managers...)
	if err != nil {
		return nil, err
	}
	s, err := strategy.New(stratName, strategy.Config{
		Horizon:   p.Horizon,
		Predictor: p.Predictor,
		Window:    p.Window,
	})
	if err != nil {
		return nil, err
	}
	meta.SetStrategy(s, p.Horizon)
	w.meta = meta

	for i := 0; i < p.World.Users; i++ {
		name := fmt.Sprintf("user%d", i+1)
		id, err := ca.IssueDeterministic(pki.DN("/O=Grid/OU=KTH/CN="+name), seed32(src))
		if err != nil {
			return nil, err
		}
		key, err := ca.IssueDeterministic(pki.DN("/CN="+name+"-bankkey"), seed32(src))
		if err != nil {
			return nil, err
		}
		if _, err := b.CreateAccount(bank.AccountID(name), key.Public()); err != nil {
			return nil, err
		}
		if err := b.Deposit(bank.AccountID(name), p.World.GrantPerUser, "allocation"); err != nil {
			return nil, err
		}
		w.users = append(w.users, &GridUser{
			Name: name, Identity: id, BankKey: key, Account: bank.AccountID(name),
		})
	}
	return w, nil
}

// streamingFeedCap returns the per-host ring capacity for a streaming run
// (the batch window, so both pipelines see the same trailing history) and 0
// — the pricefeed default — for the legacy path, which golden tests pin.
func streamingFeedCap(p StrategiesParams) int {
	if p.Streaming == "" {
		return 0
	}
	return p.Window
}

// mint pays credits from user u to the shared broker account.
func (w *stratWorld) mint(u *GridUser, amount bank.Amount) (token.Token, error) {
	w.nonce++
	req := bank.TransferRequest{
		From: u.Account, To: "broker", Amount: amount,
		Nonce: fmt.Sprintf("%s-s%05d", u.Name, w.nonce),
	}
	req.Sig = u.BankKey.Sign(req.SigningBytes())
	r, err := w.bank.Transfer(req)
	if err != nil {
		return token.Token{}, err
	}
	return token.Attach(r, u.Identity), nil
}

// background submits one direct (non-meta) job to partition pi's agent.
func (w *stratWorld) background(u *GridUser, pi int, credits float64,
	deadline time.Duration, subJobs int, chunkMin float64, maxNodes int) error {
	budget, err := bank.FromCredits(credits)
	if err != nil || budget <= 0 {
		return err
	}
	tok, err := w.mint(u, budget)
	if err != nil {
		return err
	}
	jr := &xrsl.JobRequest{
		JobName: "background", Executable: "scan.sh",
		Count: maxNodes, WallTime: deadline,
	}
	chunks := make([]float64, subJobs)
	for i := range chunks {
		chunks[i] = chunkMin * 60 * workload.ReferenceMHz
	}
	_, err = w.agents[pi].Submit(tok, jr, chunks)
	return err
}

// runOneStrategy executes the full scenario under one matchmaking strategy.
func runOneStrategy(p StrategiesParams, stratName string) (*StrategyOutcome, error) {
	w, err := buildStrategiesWorld(p, stratName)
	if err != nil {
		return nil, err
	}
	horizon := time.Duration(p.Hours * float64(time.Hour))

	// Bursty waves on partition 0. Each wave's jobs are funded heavily and
	// sized to finish within the period, so the partition cycles between
	// expensive (wave running) and reserve-price troughs (wave done).
	waveSrc := w.src.Split()
	waveUser := 0
	var wave func()
	wave = func() {
		for i := 0; i < p.WaveJobs; i++ {
			u := w.users[waveUser%len(w.users)]
			waveUser++
			_ = w.background(u, 0, waveSrc.Uniform(80, 120), p.WavePeriod*3/4,
				5+waveSrc.Intn(3), waveSrc.Uniform(7, 10), len(w.partitions[0]))
		}
		if w.eng.Elapsed()+p.WavePeriod <= horizon {
			_, _ = w.eng.After(p.WavePeriod, wave)
		}
	}
	if p.WavePeriod > 0 && p.WaveJobs > 0 {
		if _, err := w.eng.After(10*time.Minute, wave); err != nil {
			return nil, err
		}
	}

	// Steady medium load on every other partition: modest budgets, long
	// deadlines, continuous overlap — a flat price comfortably above the
	// reserve floor but far below a wave.
	for pi := 1; pi < len(w.partitions); pi++ {
		pi := pi
		steadySrc := w.src.Split()
		userOff := pi
		var drip func()
		drip = func() {
			u := w.users[userOff%len(w.users)]
			userOff += len(w.partitions)
			_ = w.background(u, pi, steadySrc.Uniform(8, 14), 2*time.Hour,
				4, steadySrc.Uniform(12, 18), len(w.partitions[pi]))
			if w.eng.Elapsed()+p.SteadyEvery <= horizon {
				_, _ = w.eng.After(p.SteadyEvery, drip)
			}
		}
		start := time.Duration(steadySrc.Uniform(2, p.SteadyEvery.Minutes()) * float64(time.Minute))
		if _, err := w.eng.After(start, drip); err != nil {
			return nil, err
		}
	}

	// Measured jobs through the meta-scheduler at a fixed, strategy-
	// independent cadence; identical budget, shape and deadline every time.
	measureUser := w.users[len(w.users)-1]
	budget, err := bank.FromCredits(p.MeasureBudget)
	if err != nil {
		return nil, err
	}
	chunks := make([]float64, p.MeasureSubJobs)
	for i := range chunks {
		chunks[i] = p.MeasureChunkMin * 60 * workload.ReferenceMHz
	}
	var measured []*arc.GridJob
	var measureErrs int
	for at := p.MeasureStart; at+p.MeasureDeadline <= horizon; at += p.MeasureEvery {
		at := at
		if _, err := w.eng.After(at, func() {
			tok, err := w.mint(measureUser, budget)
			if err != nil {
				measureErrs++
				return
			}
			enc, err := token.Encode(tok)
			if err != nil {
				measureErrs++
				return
			}
			xrslText := fmt.Sprintf(
				"&(executable=scan.sh)(jobname=measured)(count=%d)(walltime=%d)(transfertoken=%s)",
				p.MeasureMaxNodes, int(p.MeasureDeadline.Minutes()), enc)
			gj, err := w.meta.Submit(xrslText, chunks)
			if err != nil {
				measureErrs++
				return
			}
			measured = append(measured, gj)
		}); err != nil {
			return nil, err
		}
	}

	snapBefore := metrics.Default().Snapshot()
	w.eng.RunFor(horizon)
	telemetry := metrics.Default().Snapshot().Delta(snapBefore)

	if len(measured) == 0 {
		return nil, fmt.Errorf("no measured jobs submitted (%d errors)", measureErrs)
	}
	out := &StrategyOutcome{Strategy: stratName, Picks: map[string]int{}, Failed: measureErrs}
	out.Clears = counterDelta(telemetry, "auction_clears_total")
	out.Transfers = counterDelta(telemetry, "bank_transfers_total")
	var costW, mkspW, volW mathx.Welford
	for _, gj := range measured {
		pi := w.jobPartition(gj)
		if pi >= 0 {
			out.Picks[fmt.Sprintf("p%d", pi)]++
		}
		if gj.State != arc.StateFinished || gj.AgentJob == nil {
			out.Failed++
			continue
		}
		out.Jobs++
		costW.Add(gj.AgentJob.Charged.Credits())
		mkspW.Add(gj.Finished.Sub(gj.Submitted).Minutes())
		if pi >= 0 {
			if sd, ok := w.partitionPriceStd(pi, gj.Submitted, gj.Finished); ok {
				volW.Add(sd)
			}
		}
	}
	if out.Jobs == 0 {
		return nil, fmt.Errorf("no measured jobs finished (%d failed)", out.Failed)
	}
	out.MeanCost = costW.Mean()
	out.MeanMakespanMin = mkspW.Mean()
	out.Volatility = volW.Mean()
	out.PredMAE = w.meta.PredictionStats().MeanAbsError
	return out, nil
}

// counterDelta sums one counter family's children in a snapshot delta.
func counterDelta(s metrics.Snapshot, family string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if c.Name == family {
			sum += c.Value
		}
	}
	return sum
}

// jobPartition maps a measured job to the partition it ran in.
func (w *stratWorld) jobPartition(gj *arc.GridJob) int {
	if gj.AgentJob == nil {
		return -1
	}
	for _, s := range gj.AgentJob.SubJobs {
		if pi, ok := w.hostPart[s.Host]; ok {
			return pi
		}
	}
	for _, h := range gj.AgentJob.Hosts {
		if pi, ok := w.hostPart[h]; ok {
			return pi
		}
	}
	return -1
}

// partitionPriceStd is the standard deviation of the partition's mean spot
// price over [from, to], from the full recorded trace.
func (w *stratWorld) partitionPriceStd(pi int, from, to time.Time) (float64, bool) {
	hosts := w.partitions[pi]
	series := make([][]float64, 0, len(hosts))
	n := math.MaxInt
	for _, h := range hosts {
		s := w.rec.Series(h)
		if s == nil {
			return 0, false
		}
		vs := s.Window(from, to)
		if len(vs) < 2 {
			return 0, false
		}
		series = append(series, vs)
		if len(vs) < n {
			n = len(vs)
		}
	}
	var sd mathx.Welford
	for i := 0; i < n; i++ {
		var sum float64
		for _, vs := range series {
			sum += vs[len(vs)-n+i]
		}
		sd.Add(sum / float64(len(series)))
	}
	return math.Sqrt(sd.SampleVariance()), true
}

// String renders the comparison as an aligned table.
func (r *StrategiesResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %10s %12s %12s %12s %6s %6s %8s %8s  %s\n",
		"strategy", "cost", "makespan_min", "volatility", "pred_mae", "jobs", "fail",
		"clears", "txns", "picks")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&sb, "%-20s %10.3f %12.1f %12.6f %12.6f %6d %6d %8d %8d  %s\n",
			o.Strategy, o.MeanCost, o.MeanMakespanMin, o.Volatility, o.PredMAE,
			o.Jobs, o.Failed, o.Clears, o.Transfers, formatPicks(o.Picks))
	}
	return sb.String()
}

func formatPicks(picks map[string]int) string {
	keys := make([]string, 0, len(picks))
	for k := range picks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, picks[k]))
	}
	return strings.Join(parts, " ")
}

// WriteCSV exports the comparison as strategies.csv, one row per strategy.
func (r *StrategiesResult) WriteCSV(dir string) error {
	header := []string{"strategy", "cost", "makespan_min", "volatility", "pred_mae", "jobs", "failed",
		"clears", "transfers"}
	names := make([]string, len(r.Outcomes))
	rows := make([][]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		names[i] = o.Strategy
		rows[i] = []float64{o.MeanCost, o.MeanMakespanMin, o.Volatility, o.PredMAE,
			float64(o.Jobs), float64(o.Failed), float64(o.Clears), float64(o.Transfers)}
	}
	return writeNamedCSVFile(dir, "strategies.csv", header, names, rows)
}

// RepSpecStrategies replicates the full strategy comparison: each
// replication replays every strategy under one derived seed (a paired
// design), reporting cost, makespan, volatility and prediction error per
// strategy.
func RepSpecStrategies(p StrategiesParams) RepSpec {
	names := p.Strategies
	if len(names) == 0 {
		names = strategy.Names()
	}
	var cols []string
	for _, n := range names {
		short := strings.ReplaceAll(n, "-", "_")
		cols = append(cols, short+"_cost", short+"_mksp_min", short+"_vol", short+"_prederr")
	}
	return RepSpec{
		Name: "strategies",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Strategies = names
			q.World.Seed = seed
			q.World.Tracer = quietTracer()
			res, err := RunStrategies(q)
			if err != nil {
				return nil, err
			}
			var out []float64
			for _, o := range res.Outcomes {
				out = append(out, o.MeanCost, o.MeanMakespanMin, o.Volatility, o.PredMAE)
			}
			return out, nil
		},
	}
}
