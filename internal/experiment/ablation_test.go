package experiment

import (
	"testing"
	"time"
)

func TestAblationSchedulerMarketDifferentiatesBatchDoesNot(t *testing.T) {
	p := Table2Params()
	p.SubJobs = 30
	res, err := RunAblationScheduler(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	// Market: money buys latency.
	if res.Market.HighLatency >= res.Market.LowLatency {
		t.Errorf("market did not differentiate: high %v, low %v",
			res.Market.HighLatency, res.Market.LowLatency)
	}
	// Batch: funding is invisible; the high funders arrive *later* and so do
	// no better than the low funders — admin FIFO inverts the priority.
	if res.Batch.HighLatency < res.Batch.LowLatency {
		t.Errorf("batch somehow rewarded late high-funders: high %v, low %v",
			res.Batch.HighLatency, res.Batch.LowLatency)
	}
	// Differentiation ratio: market's low/high latency ratio clearly above
	// the batch scheduler's.
	mRatio := res.Market.LowLatency / res.Market.HighLatency
	bRatio := res.Batch.LowLatency / res.Batch.HighLatency
	if mRatio <= bRatio {
		t.Errorf("market ratio %.2f not above batch ratio %.2f", mRatio, bRatio)
	}
}

func TestAblationSchedulerValidation(t *testing.T) {
	p := Table2Params()
	p.Budgets = p.Budgets[:1]
	if _, err := RunAblationScheduler(p); err == nil {
		t.Error("budget mismatch accepted")
	}
}

func TestAblationCapUtilityRankingWins(t *testing.T) {
	res, err := RunAblationCap()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	// Ranking by utility contribution keeps the idle (cheap) hosts and
	// achieves strictly higher utility than ranking by raw bid size, which
	// keeps the contested (expensive) hosts.
	if res.UtilityRanked <= res.BidRanked {
		t.Errorf("utility ranking %v not better than bid ranking %v",
			res.UtilityRanked, res.BidRanked)
	}
	// The kept sets differ: utility keeps h00-h04 (idle), bid keeps h05-h09.
	if res.HostsUtility[0] != "h00" {
		t.Errorf("utility ranking kept %v", res.HostsUtility)
	}
	if res.HostsBid[0] != "h05" {
		t.Errorf("bid ranking kept %v", res.HostsBid)
	}
}

func TestAblationSmoothingHelps(t *testing.T) {
	// Run the ablation on the raw 10 s snapshots, where the sharp
	// batch-completion price drops live (pre-aggregating into 10-minute
	// buckets already smooths most of them away).
	p := DefaultFigure4Params()
	p.ResampleSnapshots = 1
	p.Lambda = 2000
	p.HorizonSteps = 360
	p.Stride = 360
	p.FitWindow = 17280
	res, err := RunAblationSmoothing(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.EpsilonSmoothed <= 0 || res.EpsilonRaw <= 0 {
		t.Fatal("degenerate epsilons")
	}
	// Paper §5.4: the raw AR model "had problems predicting future prices
	// due to sharp price drops"; with the coefficient-shrinkage stabilizer
	// also in place the pre-pass must at least not hurt (and both AR
	// variants must beat persistence).
	if res.EpsilonSmoothed > res.EpsilonRaw*1.001 {
		t.Errorf("smoothing hurt: %.4f vs raw %.4f", res.EpsilonSmoothed, res.EpsilonRaw)
	}
	if res.EpsilonSmoothed >= res.EpsilonPers {
		t.Errorf("smoothed AR %.4f not better than persistence %.4f",
			res.EpsilonSmoothed, res.EpsilonPers)
	}
}

func TestAblationIntervalSweep(t *testing.T) {
	res, err := RunAblationInterval([]time.Duration{
		10 * time.Second, 60 * time.Second, 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Differentiation survives at every interval: funded users do better.
		if r.HighLatency >= r.LowLatency {
			t.Errorf("interval %v: no differentiation (high %v, low %v)",
				r.Interval, r.HighLatency, r.LowLatency)
		}
	}
	if _, err := RunAblationInterval(nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestResampleHelper(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	out := resample(xs, 2)
	want := []float64{1.5, 3.5, 5.5}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v", i, out[i])
		}
	}
	if got := resample(xs, 1); len(got) != len(xs) {
		t.Error("n=1 should be identity")
	}
}
