package experiment

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"tycoongrid/internal/batch"
	"tycoongrid/internal/core"
	"tycoongrid/internal/predict"
	"tycoongrid/internal/sim"
)

// ---------------------------------------------------------------------------
// Ablation A — market vs traditional FIFO batch scheduling.
//
// The paper's §2.1 motivation: "traditional queueing and batch scheduling
// algorithms assume that job priorities can simply be set by administrative
// means ... allocations may not reflect the true relative priorities of
// jobs". This ablation runs the Table 2 workload (two-point funding) under
// both schedulers and reports whether urgency expressed as money changes
// anything.
// ---------------------------------------------------------------------------

// SchedulerComparison holds one scheduler's outcome for the low- and
// high-funded user groups.
type SchedulerComparison struct {
	Scheduler   string
	LowLatency  float64 // mean sub-job completion latency, minutes (incl. waiting)
	HighLatency float64
	LowTime     float64 // task wall time, hours
	HighTime    float64
}

// AblationSchedulerResult compares the market against the batch baseline.
type AblationSchedulerResult struct {
	Market SchedulerComparison
	Batch  SchedulerComparison
}

// RunAblationScheduler runs the two-point funding workload under the Tycoon
// market and under a FIFO batch scheduler with identical hardware.
func RunAblationScheduler(p BestResponseParams) (*AblationSchedulerResult, error) {
	if len(p.Budgets) != p.World.Users {
		return nil, fmt.Errorf("experiment: %d budgets for %d users", len(p.Budgets), p.World.Users)
	}
	// --- Market run (reuses the Table harness). -------------------------
	market, err := RunBestResponseTable(p)
	if err != nil {
		return nil, err
	}
	mLow, mHigh := splitGroups(market.Rows)

	// --- Batch run on identical hardware. --------------------------------
	eng := sim.NewEngine()
	sched, err := batch.New(eng, p.World.Hosts, p.World.CPUsPerHost, p.World.CPUMHz)
	if err != nil {
		return nil, err
	}
	jobs := make([]*batch.Job, p.World.Users)
	chunk := p.ChunkMinutes * 60 * p.World.CPUMHz
	var submitErr error
	for i := 0; i < p.World.Users; i++ {
		i := i
		if _, err := eng.After(time.Duration(i)*p.Stagger, func() {
			subJobs := make([]float64, p.SubJobs)
			for k := range subJobs {
				subJobs[k] = chunk
			}
			// Money buys nothing here: every job has admin priority 0.
			j, err := sched.Submit(fmt.Sprintf("user%d", i+1), 0, subJobs, p.MaxNodes)
			if err != nil && submitErr == nil {
				submitErr = err
			}
			jobs[i] = j
		}); err != nil {
			return nil, err
		}
	}
	eng.RunFor(p.Horizon)
	if submitErr != nil {
		return nil, submitErr
	}
	var bRows []UserRow
	for i, j := range jobs {
		if j == nil || !j.Done() {
			return nil, fmt.Errorf("experiment: batch job %d unfinished", i+1)
		}
		bRows = append(bRows, UserRow{
			User:       fmt.Sprintf("user%d", i+1),
			Budget:     p.Budgets[i],
			TimeHours:  j.Duration().Hours(),
			LatencyMin: (j.MeanWait() + j.MeanLatency()).Minutes(),
		})
	}
	bLow, bHigh := splitGroups(bRows)

	return &AblationSchedulerResult{
		Market: SchedulerComparison{
			Scheduler: "tycoon-market", LowLatency: mLow.LatencyMin, HighLatency: mHigh.LatencyMin,
			LowTime: mLow.TimeHours, HighTime: mHigh.TimeHours,
		},
		Batch: SchedulerComparison{
			Scheduler: "fifo-batch", LowLatency: bLow.LatencyMin, HighLatency: bHigh.LatencyMin,
			LowTime: bLow.TimeHours, HighTime: bHigh.TimeHours,
		},
	}, nil
}

// splitGroups averages the first two rows (low funders) and the rest (high
// funders), matching the Table 2 groups.
func splitGroups(rows []UserRow) (low, high UserRow) {
	n := 0
	for i, r := range rows {
		if i < 2 {
			low.TimeHours += r.TimeHours / 2
			low.LatencyMin += r.LatencyMin / 2
		} else {
			high.TimeHours += r.TimeHours
			high.LatencyMin += r.LatencyMin
			n++
		}
	}
	if n > 0 {
		high.TimeHours /= float64(n)
		high.LatencyMin /= float64(n)
	}
	return low, high
}

// String renders the comparison.
func (r *AblationSchedulerResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %16s %16s %12s %12s\n",
		"scheduler", "lat $100 (min)", "lat $500 (min)", "time $100", "time $500")
	for _, row := range []SchedulerComparison{r.Market, r.Batch} {
		fmt.Fprintf(&b, "%-14s %16.1f %16.1f %11.2fh %11.2fh\n",
			row.Scheduler, row.LowLatency, row.HighLatency, row.LowTime, row.HighTime)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablation B — host-cap ranking: utility contribution vs raw bid size.
//
// DESIGN.md flags this choice: when a job's XRSL count caps concurrent
// hosts, ranking candidate hosts by raw bid size keeps the most *expensive*
// hosts (big bids buy contested machines), while ranking by utility
// contribution keeps the best deals. The ablation measures the utility a
// late-arriving user achieves under both rankings.
// ---------------------------------------------------------------------------

// AblationCapResult compares the two ranking rules.
type AblationCapResult struct {
	UtilityRanked float64 // achieved best-response utility
	BidRanked     float64
	HostsUtility  []string
	HostsBid      []string
}

// RunAblationCap sets up a market where half the hosts are contested and
// evaluates the utility a newcomer achieves with each cap rule.
func RunAblationCap() (*AblationCapResult, error) {
	// Build prices directly: 10 hosts, 5 idle (reserve price), 5 contested.
	hosts := make([]core.Host, 10)
	for i := range hosts {
		price := 1.0 / 3600 // idle: reserve
		if i >= 5 {
			price = 50.0 / 3600 // contested
		}
		hosts[i] = core.Host{ID: fmt.Sprintf("h%02d", i), Preference: 5600, Price: price}
	}
	// A budget large enough that the contested hosts enter the best-response
	// support set (with a small budget the optimizer already excludes them
	// and the two rankings coincide).
	budgetRate := 200.0 / 3600
	const capN = 5

	allocs, err := core.BestResponse(budgetRate, hosts)
	if err != nil {
		return nil, err
	}
	eval := func(kept []core.Allocation) ([]string, float64, error) {
		re, err := core.Rebalance(budgetRate, kept)
		if err != nil {
			return nil, 0, err
		}
		ids := make([]string, len(re))
		for i, a := range re {
			ids[i] = a.Host.ID
		}
		sort.Strings(ids)
		return ids, core.Utility(re), nil
	}
	utilityHosts, utilityU, err := eval(core.TopNByUtility(allocs, capN))
	if err != nil {
		return nil, err
	}
	bidHosts, bidU, err := eval(core.TopN(allocs, capN))
	if err != nil {
		return nil, err
	}
	return &AblationCapResult{
		UtilityRanked: utilityU,
		BidRanked:     bidU,
		HostsUtility:  utilityHosts,
		HostsBid:      bidHosts,
	}, nil
}

// String renders the ablation.
func (r *AblationCapResult) String() string {
	return fmt.Sprintf(
		"cap rule          achieved utility   hosts kept\nby-utility        %16.0f   %v\nby-bid-size       %16.0f   %v\n",
		r.UtilityRanked, r.HostsUtility, r.BidRanked, r.HostsBid)
}

// ---------------------------------------------------------------------------
// Ablation C — AR smoothing pre-pass on/off (the paper's §5.4 finding that
// "the basic AR model had problems predicting future prices due to sharp
// price drops ... we applied a smoothing function").
// ---------------------------------------------------------------------------

// AblationSmoothingResult compares forecast errors with and without the
// smoothing-spline pre-pass.
type AblationSmoothingResult struct {
	EpsilonSmoothed float64
	EpsilonRaw      float64
	EpsilonPers     float64
}

// RunAblationSmoothing reuses the Figure 4 pipeline with lambda = 0 as the
// ablated variant.
func RunAblationSmoothing(p Figure4Params) (*AblationSmoothingResult, error) {
	load, err := RunLoad(p.Load)
	if err != nil {
		return nil, err
	}
	series := load.Recorder.Series(load.BusiestID)
	if series == nil {
		return nil, errors.New("experiment: no trace")
	}
	xs := resample(series.Values(), p.ResampleSnapshots)
	fit := len(xs) / 2

	eval := func(f predict.Forecaster) (float64, error) {
		pr, ms, err := predict.HorizonErrors(f, xs, fit, p.HorizonSteps, p.Stride)
		if err != nil {
			return 0, err
		}
		return predict.PredictionError(pr, ms)
	}
	smoothed, err := eval(predict.NewWindowedSmoothedForecaster(p.Order, p.Lambda, p.FitWindow))
	if err != nil {
		return nil, err
	}
	raw, err := eval(predict.NewWindowedSmoothedForecaster(p.Order, 0, p.FitWindow))
	if err != nil {
		return nil, err
	}
	pers, err := eval(predict.Persistence{})
	if err != nil {
		return nil, err
	}
	return &AblationSmoothingResult{EpsilonSmoothed: smoothed, EpsilonRaw: raw, EpsilonPers: pers}, nil
}

func resample(xs []float64, n int) []float64 {
	if n <= 1 {
		return xs
	}
	out := make([]float64, 0, len(xs)/n)
	for i := 0; i+n <= len(xs); i += n {
		var s float64
		for _, v := range xs[i : i+n] {
			s += v
		}
		out = append(out, s/float64(n))
	}
	return out
}

// String renders the ablation.
func (r *AblationSmoothingResult) String() string {
	return fmt.Sprintf(
		"AR(6) with smoothing pre-pass: epsilon %.2f%%\nAR(6) without smoothing:       epsilon %.2f%%\npersistence benchmark:         epsilon %.2f%%\n",
		r.EpsilonSmoothed*100, r.EpsilonRaw*100, r.EpsilonPers*100)
}

// ---------------------------------------------------------------------------
// Ablation D — reallocation interval (the 10 s default vs coarser markets).
// ---------------------------------------------------------------------------

// AblationIntervalRow is one interval's outcome.
type AblationIntervalRow struct {
	Interval    time.Duration
	HighLatency float64 // minutes, funded group
	LowLatency  float64
}

// AblationIntervalResult sweeps the market reallocation period.
type AblationIntervalResult struct {
	Rows []AblationIntervalRow
}

// RunAblationInterval reruns the Table 2 scenario at several reallocation
// intervals: the agility of a 10 s spot market is what lets highly funded
// jobs take effect immediately.
func RunAblationInterval(intervals []time.Duration) (*AblationIntervalResult, error) {
	if len(intervals) == 0 {
		return nil, errors.New("experiment: no intervals")
	}
	res := &AblationIntervalResult{}
	for _, iv := range intervals {
		p := Table2Params()
		p.SubJobs = 30 // lighter for the sweep
		p.World.Interval = iv
		table, err := RunBestResponseTable(p)
		if err != nil {
			return nil, err
		}
		low, high := splitGroups(table.Rows)
		res.Rows = append(res.Rows, AblationIntervalRow{
			Interval:    iv,
			LowLatency:  low.LatencyMin,
			HighLatency: high.LatencyMin,
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *AblationIntervalResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %16s %16s %8s\n", "interval", "lat $100 (min)", "lat $500 (min)", "ratio")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.HighLatency > 0 {
			ratio = row.LowLatency / row.HighLatency
		}
		fmt.Fprintf(&b, "%-12s %16.1f %16.1f %8.2f\n", row.Interval, row.LowLatency, row.HighLatency, ratio)
	}
	return b.String()
}
