package experiment

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tycoongrid/internal/strategy"
)

// shortStrategiesParams shrinks the scenario so the full stack still
// exercises waves, steady load and meta-routed measured jobs, but runs in
// test time: 10 hours on the same 6-host/3-partition shape.
func shortStrategiesParams() StrategiesParams {
	p := DefaultStrategiesParams()
	p.Hours = 10
	p.MeasureStart = time.Hour
	p.MeasureEvery = 45 * time.Minute
	p.MeasureDeadline = 2 * time.Hour
	p.World.Tracer = quietTracer()
	return p
}

func TestRunStrategiesShort(t *testing.T) {
	p := shortStrategiesParams()
	p.Strategies = []string{strategy.CurrentPrice, strategy.Portfolio}
	res, err := RunStrategies(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		if o.Jobs == 0 {
			t.Errorf("%s: no measured jobs finished", o.Strategy)
		}
		if o.MeanCost <= 0 || math.IsNaN(o.MeanCost) {
			t.Errorf("%s: mean cost = %v", o.Strategy, o.MeanCost)
		}
		if o.MeanMakespanMin <= 0 {
			t.Errorf("%s: makespan = %v", o.Strategy, o.MeanMakespanMin)
		}
		if len(o.Picks) == 0 {
			t.Errorf("%s: no picks recorded", o.Strategy)
		}
	}
	// Rendering and CSV export round-trip.
	s := res.String()
	for _, o := range res.Outcomes {
		if !strings.Contains(s, o.Strategy) {
			t.Errorf("String() missing %q:\n%s", o.Strategy, s)
		}
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "strategies.csv")); err != nil {
		t.Fatal(err)
	}
}

// TestRunStrategiesDeterministic: the same params and seed must reproduce
// byte-identical results — the property the replication harness depends on.
func TestRunStrategiesDeterministic(t *testing.T) {
	p := shortStrategiesParams()
	p.Strategies = []string{strategy.PredictedMean}
	a, err := RunStrategies(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStrategies(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("non-deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRepSpecStrategiesColumns(t *testing.T) {
	spec, err := DefaultRepSpec("strategies")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "strategies" {
		t.Errorf("name = %q", spec.Name)
	}
	// 4 metrics per registered strategy.
	want := 4 * len(strategy.Names())
	if len(spec.Cols) != want {
		t.Errorf("cols = %d, want %d: %v", len(spec.Cols), want, spec.Cols)
	}
	for _, c := range spec.Cols {
		if strings.Contains(c, "-") {
			t.Errorf("column %q not CSV-friendly", c)
		}
	}
}
