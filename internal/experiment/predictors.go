package experiment

import (
	"errors"
	"fmt"
	"strings"

	"tycoongrid/internal/predict"
	"tycoongrid/internal/strategy"
)

// This file is the end-to-end check on the streaming-predictor refactor: the
// strategy-comparison world is replayed under predicted-mean matchmaking once
// per prediction *pipeline* — the legacy batch path (copy the partition
// history, refit an AR model per decision) against the streaming path (the
// fit lives with the price ring, updated incrementally every clear) — under
// identical seeds and identical measured jobs. The two pipelines consume the
// same trailing window, so scheduling quality (cost, makespan, prediction
// error) should agree closely while the streaming path does O(1) work per
// decision; a drift here means the incremental fit diverged from the batch
// contract in ways the unit equivalence tests did not cover.

// PredictorPipeline names one prediction configuration under comparison.
type PredictorPipeline struct {
	Label     string // CSV/table identifier, e.g. "batch_ar"
	Predictor string // batch predict registry model (used when Streaming is "")
	Streaming string // streaming family; "" = legacy batch refit
}

// PredictorsParams shapes the pipeline comparison. The embedded scenario is
// reused from the strategies family; Strategies is ignored (every pipeline
// runs predicted-mean so only the prediction machinery differs).
type PredictorsParams struct {
	Scenario  StrategiesParams
	Pipelines []PredictorPipeline
}

// DefaultPredictorsParams compares the legacy batch AR pipeline against its
// streaming replacement on the paper-shaped bursty/steady scenario.
func DefaultPredictorsParams() PredictorsParams {
	return PredictorsParams{
		Scenario: DefaultStrategiesParams(),
		Pipelines: []PredictorPipeline{
			{Label: "batch_ar", Predictor: "ar"},
			{Label: "streaming_ar", Predictor: "ar", Streaming: predict.StreamingAR},
		},
	}
}

// PredictorOutcome is one pipeline's aggregate over its measured jobs.
type PredictorOutcome struct {
	Pipeline PredictorPipeline
	StrategyOutcome
}

// PredictorsResult is the full pipeline comparison.
type PredictorsResult struct {
	Params   PredictorsParams
	Outcomes []PredictorOutcome
}

// RunPredictors replays the scenario once per pipeline under the same seed
// (a paired design: identical waves, identical measured jobs) and returns
// the outcomes in the order requested.
func RunPredictors(p PredictorsParams) (*PredictorsResult, error) {
	if len(p.Pipelines) == 0 {
		return nil, errors.New("experiment: predictors needs at least one pipeline")
	}
	res := &PredictorsResult{Params: p}
	for _, pl := range p.Pipelines {
		if pl.Label == "" {
			return nil, errors.New("experiment: predictor pipeline without a label")
		}
		q := p.Scenario
		q.Predictor = pl.Predictor
		q.Streaming = pl.Streaming
		out, err := runOneStrategy(q, strategy.PredictedMean)
		if err != nil {
			return nil, fmt.Errorf("experiment: pipeline %q: %w", pl.Label, err)
		}
		res.Outcomes = append(res.Outcomes, PredictorOutcome{Pipeline: pl, StrategyOutcome: *out})
	}
	return res, nil
}

// String renders the comparison as an aligned table.
func (r *PredictorsResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-14s %10s %12s %12s %12s %6s %6s  %s\n",
		"pipeline", "streaming", "cost", "makespan_min", "volatility", "pred_mae",
		"jobs", "fail", "picks")
	for _, o := range r.Outcomes {
		stream := o.Pipeline.Streaming
		if stream == "" {
			stream = "(batch)"
		}
		fmt.Fprintf(&sb, "%-16s %-14s %10.3f %12.1f %12.6f %12.6f %6d %6d  %s\n",
			o.Pipeline.Label, stream, o.MeanCost, o.MeanMakespanMin, o.Volatility,
			o.PredMAE, o.Jobs, o.Failed, formatPicks(o.Picks))
	}
	return sb.String()
}

// WriteCSV exports the comparison as predictors.csv, one row per pipeline.
func (r *PredictorsResult) WriteCSV(dir string) error {
	header := []string{"pipeline", "cost", "makespan_min", "volatility", "pred_mae",
		"jobs", "failed"}
	names := make([]string, len(r.Outcomes))
	rows := make([][]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		names[i] = o.Pipeline.Label
		rows[i] = []float64{o.MeanCost, o.MeanMakespanMin, o.Volatility, o.PredMAE,
			float64(o.Jobs), float64(o.Failed)}
	}
	return writeNamedCSVFile(dir, "predictors.csv", header, names, rows)
}

// RepSpecPredictors replicates the pipeline comparison: each replication
// replays every pipeline under one derived seed (paired), reporting
// simulation-deterministic columns only — cost, makespan, volatility and
// prediction error; wall-clock throughput belongs to BENCH_predict.json, not
// here, so the CSVs stay byte-identical across worker counts.
func RepSpecPredictors(p PredictorsParams) RepSpec {
	var cols []string
	for _, pl := range p.Pipelines {
		cols = append(cols, pl.Label+"_cost", pl.Label+"_mksp_min", pl.Label+"_vol", pl.Label+"_prederr")
	}
	return RepSpec{
		Name: "predictors",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Scenario.World.Seed = seed
			q.Scenario.World.Tracer = quietTracer()
			res, err := RunPredictors(q)
			if err != nil {
				return nil, err
			}
			var out []float64
			for _, o := range res.Outcomes {
				out = append(out, o.MeanCost, o.MeanMakespanMin, o.Volatility, o.PredMAE)
			}
			return out, nil
		},
	}
}
