package experiment

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tycoongrid/internal/agent"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/mechanism"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/sla"
)

// MechanismsParams configures the mechanism-comparison family: the same
// competing-users workload run once per clearing rule (proportional share,
// posted price, VCG), plus a market-level probe that measures allocative
// welfare and the incentive to misreport under each rule. Every mechanism
// sees the same seed, so per-seed differences are attributable to the
// clearing rule alone (paired comparison).
type MechanismsParams struct {
	World      WorldConfig
	Mechanisms []string // clearing rules to compare; default mechanism.Names()

	// Full-stack workload shape (as in the scale family).
	Budget       bank.Amount
	Deadline     time.Duration
	SubJobs      int
	ChunkMinutes float64
	MaxNodes     int
	Stagger      time.Duration
	Horizon      time.Duration

	// Probe shape: ProbeProfiles random valuation profiles per run, each
	// deviated ProbeDeviations times to estimate the truthfulness incentive.
	ProbeProfiles   int
	ProbeDeviations int
}

// DefaultMechanismsParams returns a compact three-user scenario over all
// registered mechanisms.
func DefaultMechanismsParams() MechanismsParams {
	w := PaperWorld()
	w.Hosts = 12
	w.Users = 3
	return MechanismsParams{
		World:           w,
		Mechanisms:      mechanism.Names(),
		Budget:          100 * bank.Credit,
		Deadline:        8 * time.Hour,
		SubJobs:         10,
		ChunkMinutes:    10,
		MaxNodes:        6,
		Stagger:         2 * time.Minute,
		Horizon:         12 * time.Hour,
		ProbeProfiles:   40,
		ProbeDeviations: 4,
	}
}

// MechanismRow is one clearing rule's outcome.
type MechanismRow struct {
	Mechanism      string
	JobsDone       int
	JobsTotal      int
	CostPerJob     float64 // mean credits charged per completed job
	ChargedCredits float64 // total credits charged across all jobs
	MoneyConserved bool    // bank supply unchanged by the run

	// Probe metrics, in credits/second over the profile population.
	Welfare   float64 // mean truthful-report welfare sum(V_i(q_i))
	TruthGain float64 // mean positive utility gain from misreporting (0 = truthful)
}

// MechanismsResult is the per-mechanism sweep.
type MechanismsResult struct {
	Rows []MechanismRow
}

// RunMechanisms runs the workload and the probe once per mechanism. Every
// run builds a fresh world from the same seed, so differences between rows
// are attributable to the clearing rule alone.
func RunMechanisms(p MechanismsParams) (*MechanismsResult, error) {
	if len(p.Mechanisms) == 0 {
		return nil, errors.New("experiment: no mechanisms")
	}
	if p.SubJobs <= 0 || p.ChunkMinutes <= 0 || p.MaxNodes <= 0 {
		return nil, errors.New("experiment: bad application shape")
	}
	res := &MechanismsResult{}
	for _, name := range p.Mechanisms {
		row, err := runMechanismOnce(p, name)
		if err != nil {
			return nil, fmt.Errorf("experiment: mechanisms run %q: %w", name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runMechanismOnce(p MechanismsParams, name string) (MechanismRow, error) {
	cfg := p.World
	cfg.Mechanism = name
	w, err := NewWorld(cfg)
	if err != nil {
		return MechanismRow{}, err
	}
	supply := w.Bank.TotalMoney()
	jobs := make([]*agent.Job, len(w.Users))
	var submitErr error
	for i, u := range w.Users {
		i, u := i, u
		if _, err := w.Engine.After(time.Duration(i)*p.Stagger, func() {
			job, err := w.SubmitApp(u, p.Budget, p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes)
			if err != nil && submitErr == nil {
				submitErr = fmt.Errorf("submitting for %s: %w", u.Name, err)
			}
			jobs[i] = job
		}); err != nil {
			return MechanismRow{}, err
		}
	}
	w.Engine.RunFor(p.Horizon)
	if submitErr != nil {
		return MechanismRow{}, submitErr
	}

	row := MechanismRow{Mechanism: name, JobsTotal: len(jobs)}
	for _, job := range jobs {
		if job == nil {
			return MechanismRow{}, errors.New("a user never submitted")
		}
		row.ChargedCredits += job.Charged.Credits()
		if job.State == agent.StateDone {
			row.JobsDone++
			row.CostPerJob += job.Charged.Credits()
		}
	}
	if row.JobsDone > 0 {
		row.CostPerJob /= float64(row.JobsDone)
	}
	row.MoneyConserved = w.Bank.TotalMoney() == supply

	row.Welfare, row.TruthGain, err = probeMechanism(p, name)
	return row, err
}

// probeMechanism measures, over seeded random concave valuation profiles,
// the allocative welfare of truthful reporting and the mean positive utility
// a bidder can gain by misreporting (scaling its reported valuation and
// spend rate). Under VCG the gain is zero by construction; under
// proportional share and posted price it quantifies how much the rule
// rewards strategic bidding — the truthfulness-incentive column of the
// mechanisms table.
func probeMechanism(p MechanismsParams, name string) (welfare, truthGain float64, err error) {
	const capMHz = 3000.0
	capacity := mechanism.Capacity{MHz: capMHz, Reserve: p.World.ReservePrice}
	src := rng.New(rng.DeriveSeed(p.World.Seed, 0x6d656368)) // "mech"
	profiles := p.ProbeProfiles
	if profiles <= 0 {
		profiles = 40
	}
	deviations := p.ProbeDeviations
	if deviations <= 0 {
		deviations = 4
	}
	var gains, gainCount float64
	for profile := 0; profile < profiles; profile++ {
		n := 2 + src.Intn(4)
		vals := make([]sla.Valuation, n)
		bids := make([]mechanism.Bid, n)
		for i := 0; i < n; i++ {
			vals[i] = sla.RandomValuation(src, capMHz)
			bids[i] = mechanism.Bid{
				Bidder:    fmt.Sprintf("u%02d", i),
				Rate:      vals[i].ValueRate(capMHz),
				Valuation: &vals[i],
			}
		}
		mech, err := mechanism.New(name, mechanism.Config{})
		if err != nil {
			return 0, 0, err
		}
		truthful := mech.Quote(bids, capacity)
		for i := 0; i < n; i++ {
			l, _ := truthful.Line(bids[i].Bidder)
			welfare += vals[i].ValueRate(l.Fraction * capMHz)
		}

		for d := 0; d < deviations; d++ {
			i := src.Intn(n)
			factor := src.Uniform(0.2, 3)
			lie := vals[i].Scale(factor)
			deviated := make([]mechanism.Bid, n)
			copy(deviated, bids)
			deviated[i].Rate = bids[i].Rate * factor
			deviated[i].Valuation = &lie
			devOut := mech.Quote(deviated, capacity)

			tl, _ := truthful.Line(bids[i].Bidder)
			dl, _ := devOut.Line(bids[i].Bidder)
			baseUtil := vals[i].ValueRate(tl.Fraction*capMHz) - tl.PayRate
			devUtil := vals[i].ValueRate(dl.Fraction*capMHz) - dl.PayRate
			if gain := devUtil - baseUtil; gain > 1e-9 {
				gains += gain
			}
			gainCount++
		}
	}
	welfare /= float64(profiles)
	if gainCount > 0 {
		truthGain = gains / gainCount
	}
	return welfare, truthGain, nil
}

// String renders the sweep as a table.
func (r *MechanismsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %6s %12s %12s %12s %12s %10s\n",
		"Mechanism", "Done", "Cost/job($)", "Charged($)", "Welfare($/s)", "TruthGain", "Conserved")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-13s %3d/%-3d %12.3f %12.2f %12.6f %12.2e %10v\n",
			row.Mechanism, row.JobsDone, row.JobsTotal, row.CostPerJob,
			row.ChargedCredits, row.Welfare, row.TruthGain, row.MoneyConserved)
	}
	return b.String()
}

// RepSpecMechanisms replicates the mechanism sweep under the paired
// same-seed harness: one column group per clearing rule, every rule driven
// by the same per-replication seed.
func RepSpecMechanisms(p MechanismsParams) RepSpec {
	var cols []string
	for _, name := range p.Mechanisms {
		n := strings.ReplaceAll(name, "-", "_")
		for _, m := range []string{"done", "cost_per_job", "charged", "welfare", "truth_gain", "conserved"} {
			cols = append(cols, fmt.Sprintf("%s_%s", n, m))
		}
	}
	return RepSpec{
		Name: "mechanisms",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.World.Seed = seed
			q.World.Tracer = quietTracer()
			res, err := RunMechanisms(q)
			if err != nil {
				return nil, err
			}
			var out []float64
			for _, row := range res.Rows {
				conserved := 0.0
				if row.MoneyConserved {
					conserved = 1
				}
				out = append(out, float64(row.JobsDone), row.CostPerJob,
					row.ChargedCredits, row.Welfare, row.TruthGain, conserved)
			}
			return out, nil
		},
	}
}
