package experiment

import (
	"errors"
	"fmt"
	"math"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/trace"
)

// LoadParams drives the background-load scenario that generates realistic
// spot-price traces: grid jobs arrive as a Poisson process with lognormal
// budgets and varying shapes, exactly the bursty bag-of-tasks traffic that
// produces the "sharp price drops when batch jobs completed" the paper's
// §5.4 smoothing pre-pass exists for.
type LoadParams struct {
	World WorldConfig
	// Hours of simulated market activity.
	Hours float64
	// MeanInterarrival between job submissions.
	MeanInterarrival time.Duration
	// BudgetMedian and BudgetSigma shape the lognormal budget draw (credits).
	BudgetMedian float64
	BudgetSigma  float64
	// Intensity, if non-nil, scales the arrival rate at a given sim time
	// (1 = nominal); use it for diurnal patterns.
	Intensity func(at time.Duration) float64
	// BatchPeriod, when positive, adds the paper's §5 structure on top of
	// the Poisson background: every period a wave of BatchJobs competing
	// batch submissions arrives (the nightly-proteome-scan pattern whose
	// completion causes the sharp price drops of §5.4). Prices then carry
	// learnable quasi-periodic structure.
	BatchPeriod time.Duration
	BatchJobs   int
}

// DefaultLoadParams returns a medium-load market on a modest cluster.
func DefaultLoadParams() LoadParams {
	w := PaperWorld()
	w.Hosts = 10
	w.Users = 8
	return LoadParams{
		World:            w,
		Hours:            40,
		MeanInterarrival: 25 * time.Minute,
		BudgetMedian:     40,
		BudgetSigma:      0.8,
	}
}

// LoadResult is the recorded market activity.
type LoadResult struct {
	World     *World
	Recorder  *trace.Recorder
	JobsSent  int
	JobsAged  int // submissions rejected (e.g. funds exhausted)
	BusiestID string
}

// RunLoad executes the scenario and returns the recorded traces.
func RunLoad(p LoadParams) (*LoadResult, error) {
	if p.Hours <= 0 {
		return nil, errors.New("experiment: load hours must be positive")
	}
	if p.MeanInterarrival <= 0 {
		return nil, errors.New("experiment: bad interarrival")
	}
	w, err := NewWorld(p.World)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{World: w, Recorder: w.Recorder}
	src := w.src.Split()
	horizon := time.Duration(p.Hours * float64(time.Hour))

	var schedule func(at time.Duration)
	schedule = func(at time.Duration) {
		if at > horizon {
			return
		}
		if _, err := w.Engine.At(w.Engine.Now().Add(at), func() {
			// Submit one random job.
			u := w.Users[src.Intn(len(w.Users))]
			budget, err := bank.FromCredits(src.LogNormal(math.Log(p.BudgetMedian), p.BudgetSigma))
			if err == nil && budget > 0 {
				subJobs := 3 + src.Intn(15)
				chunkMin := src.Uniform(8, 45)
				maxNodes := 2 + src.Intn(8)
				deadline := time.Duration(src.Uniform(1.5, 8) * float64(time.Hour))
				if _, err := w.SubmitApp(u, budget, deadline, subJobs, chunkMin, maxNodes); err != nil {
					res.JobsAged++
				} else {
					res.JobsSent++
				}
			}
			// Next arrival.
			gap := src.Exponential(1 / p.MeanInterarrival.Seconds())
			if p.Intensity != nil {
				f := p.Intensity(w.Engine.Elapsed())
				if f > 0.01 {
					gap /= f
				} else {
					gap *= 100
				}
			}
			schedule(time.Duration(gap * float64(time.Second)))
		}); err != nil {
			return
		}
	}
	schedule(time.Duration(src.Exponential(1/p.MeanInterarrival.Seconds()) * float64(time.Second)))

	if p.BatchPeriod > 0 && p.BatchJobs > 0 {
		batchSrc := src.Split()
		var wave func()
		wave = func() {
			for i := 0; i < p.BatchJobs; i++ {
				u := w.Users[(i+batchSrc.Intn(2))%len(w.Users)]
				budget := bank.MustCredits(batchSrc.Uniform(80, 120))
				subJobs := 18 + batchSrc.Intn(5)
				chunkMin := batchSrc.Uniform(18, 24)
				deadline := p.BatchPeriod * 3 / 4
				if _, err := w.SubmitApp(u, budget, deadline, subJobs, chunkMin, 8); err != nil {
					res.JobsAged++
				} else {
					res.JobsSent++
				}
			}
			if w.Engine.Elapsed()+p.BatchPeriod <= horizon {
				if _, err := w.Engine.After(p.BatchPeriod, wave); err != nil {
					return
				}
			}
		}
		if _, err := w.Engine.After(10*time.Minute, wave); err != nil {
			return nil, err
		}
	}

	w.Engine.RunFor(horizon)
	if res.JobsSent == 0 {
		return nil, fmt.Errorf("experiment: load scenario submitted no jobs (%d failed)", res.JobsAged)
	}

	// Find the busiest host (highest mean recorded price) for the
	// single-host analyses.
	best := ""
	bestMean := -1.0
	for _, h := range w.Recorder.Hosts() {
		vs := w.Recorder.Series(h).Values()
		if len(vs) == 0 {
			continue
		}
		var sum float64
		for _, v := range vs {
			sum += v
		}
		if m := sum / float64(len(vs)); m > bestMean {
			bestMean = m
			best = h
		}
	}
	res.BusiestID = best
	return res, nil
}
