// Package experiment contains one harness per table and figure of the
// paper's evaluation (§5). Each harness builds the full grid-market stack —
// bank, PKI, per-host auctions, VM managers, the ARC-analog job manager and
// the best-response agent — inside the discrete-event simulator, runs the
// paper's scenario, and reports rows shaped like the paper's artifact.
// See DESIGN.md §4 for the experiment index and expected shapes.
package experiment

import (
	"fmt"
	"time"

	"tycoongrid/internal/agent"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/grid"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/sls"
	"tycoongrid/internal/token"
	"tycoongrid/internal/trace"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/workload"
	"tycoongrid/internal/xrsl"
)

// World is the assembled grid-market testbed.
type World struct {
	Engine   *sim.Engine
	CA       *pki.CA
	Bank     *bank.Bank
	Cluster  *grid.Cluster
	Agent    *agent.Agent
	Registry *sls.Registry
	Recorder *trace.Recorder
	Tracer   *tracing.Tracer
	Users    []*GridUser
	src      *rng.Source
	nonce    int
}

// GridUser is one simulated grid user with a bank account and identity.
type GridUser struct {
	Name     string
	Identity *pki.Identity // grid identity (DN)
	BankKey  *pki.Identity // bank account key
	Account  bank.AccountID
}

// WorldConfig shapes the testbed.
type WorldConfig struct {
	Hosts        int
	CPUsPerHost  int
	CPUMHz       float64
	MaxVMsPerCPU int // paper: ~15 virtual CPUs per physical node
	Users        int
	GrantPerUser bank.Amount
	ReservePrice float64       // credits/second floor
	Interval     time.Duration // market reallocation period; 0 = the paper's 10 s
	Seed         int64
	// VM overheads; zero means instant (exact arithmetic in analyses).
	CreateOverhead  time.Duration
	InstallOverhead time.Duration
	VirtOverhead    float64
	// PurgeIdleAfter destroys VMs idle longer than this (0 = never). Long
	// many-job scenarios must set it: every job bids under its own
	// sub-account, so finished jobs' VMs are never reused and would
	// otherwise accumulate until the host's VM limit starves new work.
	PurgeIdleAfter time.Duration
	// Tracer scopes every span this world's services emit. Nil means the
	// process-wide tracing.Default(); replication workers inject a private
	// (and usually unsampled) tracer so concurrent worlds share nothing.
	Tracer *tracing.Tracer
	// Shards partitions the cluster's host markets across this many
	// marketplane auctioneer shards. 0 or 1 is the legacy single-auctioneer
	// tick, bit-for-bit identical to pre-shard releases; >= 2 enables the
	// phased sharded tick (see grid.Config.Shards).
	Shards int
	// Mechanism selects the host markets' clearing rule (see
	// internal/mechanism); empty = proportional share.
	Mechanism string
}

// PaperWorld returns the paper's §5.2 setup: 30 dual-processor hosts, five
// competing users.
func PaperWorld() WorldConfig {
	return WorldConfig{
		Hosts:        30,
		CPUsPerHost:  2,
		CPUMHz:       2800,
		MaxVMsPerCPU: 15,
		Users:        5,
		GrantPerUser: 100000 * bank.Credit,
		ReservePrice: 1.0 / 3600, // one credit/hour baseline
		Seed:         2006,
	}
}

// NewWorld assembles the stack.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Hosts <= 0 || cfg.Users <= 0 {
		return nil, fmt.Errorf("experiment: need hosts and users, got %d/%d", cfg.Hosts, cfg.Users)
	}
	eng := sim.NewEngine()
	src := rng.New(cfg.Seed)
	tr := cfg.Tracer
	if tr == nil {
		tr = tracing.Default()
	}
	ca, err := pki.NewDeterministicCA("/O=Grid/CN=TycoonCA", seed32(src), pki.WithTimeSource(eng.Now))
	if err != nil {
		return nil, err
	}
	bankID, err := ca.IssueDeterministic("/CN=Bank", seed32(src))
	if err != nil {
		return nil, err
	}
	brokerID, err := ca.IssueDeterministic("/CN=Broker", seed32(src))
	if err != nil {
		return nil, err
	}
	// Long simulations generate millions of 10-second micro-charges; keep a
	// bounded audit window rather than the full ledger.
	b := bank.New(bankID, eng, bank.WithLedgerRetention(100_000), bank.WithTracer(tr))
	if _, err := b.CreateAccount("broker", brokerID.Public()); err != nil {
		return nil, err
	}

	specs := make([]grid.HostSpec, cfg.Hosts)
	for i := range specs {
		specs[i] = grid.HostSpec{
			ID:              fmt.Sprintf("h%02d", i),
			Site:            site(i),
			CPUs:            cfg.CPUsPerHost,
			CPUMHz:          cfg.CPUMHz,
			MaxVMs:          cfg.MaxVMsPerCPU * cfg.CPUsPerHost,
			CreateOverhead:  cfg.CreateOverhead,
			InstallOverhead: cfg.InstallOverhead,
			VirtOverhead:    cfg.VirtOverhead,
		}
	}
	cluster, err := grid.New(eng, grid.Config{
		Hosts:          specs,
		ReservePrice:   cfg.ReservePrice,
		Interval:       cfg.Interval,
		PurgeIdleAfter: cfg.PurgeIdleAfter,
		Tracer:         tr,
		Shards:         cfg.Shards,
		Mechanism:      cfg.Mechanism,
	})
	if err != nil {
		return nil, err
	}
	if err := cluster.Start(); err != nil {
		return nil, err
	}

	// Price recording + SLS registration for every host.
	rec := trace.NewRecorder()
	reg := sls.New(eng, sls.WithTTL(24*365*time.Hour))
	for _, id := range cluster.HostIDs() {
		h, err := cluster.Host(id)
		if err != nil {
			return nil, err
		}
		h.Market.Observe(rec.Observer(id))
		if err := reg.Register(sls.HostInfo{
			ID:          id,
			Endpoint:    "sim://" + id,
			CapacityMHz: h.Market.CapacityMHz(),
			CPUs:        h.Spec.CPUs,
			MaxVMs:      h.Spec.MaxVMs,
			Site:        h.Spec.Site,
		}); err != nil {
			return nil, err
		}
	}

	verifier, err := token.NewVerifier(b.PublicKey(), ca.Certificate(), "broker", nil)
	if err != nil {
		return nil, err
	}
	ag, err := agent.New(agent.Config{
		Cluster: cluster, Bank: b, Identity: brokerID, Account: "broker", Verifier: verifier,
		Tracer: tr,
	})
	if err != nil {
		return nil, err
	}

	w := &World{
		Engine: eng, CA: ca, Bank: b, Cluster: cluster, Agent: ag,
		Registry: reg, Recorder: rec, Tracer: tr, src: src,
	}
	for i := 0; i < cfg.Users; i++ {
		name := fmt.Sprintf("user%d", i+1)
		id, err := ca.IssueDeterministic(pki.DN("/O=Grid/OU=KTH/CN="+name), seed32(src))
		if err != nil {
			return nil, err
		}
		key, err := ca.IssueDeterministic(pki.DN("/CN="+name+"-bankkey"), seed32(src))
		if err != nil {
			return nil, err
		}
		if _, err := b.CreateAccount(bank.AccountID(name), key.Public()); err != nil {
			return nil, err
		}
		if err := b.Deposit(bank.AccountID(name), cfg.GrantPerUser, "allocation"); err != nil {
			return nil, err
		}
		w.Users = append(w.Users, &GridUser{
			Name: name, Identity: id, BankKey: key, Account: bank.AccountID(name),
		})
	}
	return w, nil
}

func seed32(src *rng.Source) [32]byte {
	var s [32]byte
	for i := 0; i < 4; i++ {
		v := src.Int63()
		for j := 0; j < 8; j++ {
			s[i*8+j] = byte(v >> (8 * j))
		}
	}
	return s
}

func site(i int) string {
	sites := []string{"hplabs", "intel-oregon", "singapore", "sics"}
	return sites[i%len(sites)]
}

// MintToken pays credits from user to the broker and returns the attached
// transfer token.
func (w *World) MintToken(u *GridUser, amount bank.Amount) (token.Token, error) {
	w.nonce++
	req := bank.TransferRequest{
		From: u.Account, To: "broker", Amount: amount,
		Nonce: fmt.Sprintf("%s-t%05d", u.Name, w.nonce),
	}
	req.Sig = u.BankKey.Sign(req.SigningBytes())
	r, err := w.Bank.Transfer(req)
	if err != nil {
		return token.Token{}, err
	}
	return token.Attach(r, u.Identity), nil
}

// SubmitApp submits the paper's bioinformatics application for user u:
// subJobs chunks of chunkMinutes CPU time each, on at most maxNodes
// concurrent VMs, funded with budget until deadline.
func (w *World) SubmitApp(u *GridUser, budget bank.Amount, deadline time.Duration,
	subJobs int, chunkMinutes float64, maxNodes int) (*agent.Job, error) {
	tok, err := w.MintToken(u, budget)
	if err != nil {
		return nil, err
	}
	jr := &xrsl.JobRequest{
		JobName:     "proteome-scan-" + u.Name,
		Executable:  "scan.sh",
		Count:       maxNodes,
		WallTime:    deadline,
		RuntimeEnvs: []string{"APPS/BIO/BLAST-2.0"},
	}
	chunks := make([]float64, subJobs)
	for i := range chunks {
		chunks[i] = chunkMinutes * 60 * workload.ReferenceMHz
	}
	return w.Agent.Submit(tok, jr, chunks)
}
