package experiment

import (
	"testing"
	"time"

	"tycoongrid/internal/bank"
)

func TestTable1EqualFundsShape(t *testing.T) {
	p := Table1Params()
	res, err := RunBestResponseTable(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Completed != r.Total {
			t.Fatalf("%s completed %d/%d", r.User, r.Completed, r.Total)
		}
		if r.TimeHours <= 0 || r.LatencyMin <= 0 || r.Nodes <= 0 {
			t.Fatalf("%s has empty metrics: %+v", r.User, r)
		}
	}
	// Paper shape: early users (1-2) get at least as many nodes and at
	// least as good latency as late users (3-5).
	early := (res.Rows[0].LatencyMin + res.Rows[1].LatencyMin) / 2
	late := (res.Rows[2].LatencyMin + res.Rows[3].LatencyMin + res.Rows[4].LatencyMin) / 3
	if late < early {
		t.Errorf("late users got better latency (%v) than early (%v)", late, early)
	}
	earlyNodes := (res.Rows[0].Nodes + res.Rows[1].Nodes) / 2
	lateNodes := (res.Rows[2].Nodes + res.Rows[3].Nodes + res.Rows[4].Nodes) / 3
	if lateNodes > earlyNodes {
		t.Errorf("late users used more nodes (%v) than early (%v)", lateNodes, earlyNodes)
	}
	// Equal funding: cost rates are in the same ballpark (within 3x).
	if res.Groups[len(res.Groups)-1].CostPerH > 3*res.Groups[0].CostPerH+1 {
		t.Errorf("cost rates diverge wildly: %+v", res.Groups)
	}
}

func TestTable2TwoPointShape(t *testing.T) {
	res, err := RunBestResponseTable(Table2Params())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	for _, r := range res.Rows {
		if r.Completed != r.Total {
			t.Fatalf("%s completed %d/%d", r.User, r.Completed, r.Total)
		}
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %+v", res.Groups)
	}
	low, high := res.Groups[0], res.Groups[1]
	if high.Budget <= low.Budget {
		t.Fatalf("grouping wrong: %+v", res.Groups)
	}
	// Paper shape: the 500$ users pay a higher price per hour and obtain
	// better latency than the 100$ users.
	if high.CostPerH <= low.CostPerH {
		t.Errorf("high funders cost %.2f <= low funders %.2f", high.CostPerH, low.CostPerH)
	}
	if high.LatencyMin >= low.LatencyMin {
		t.Errorf("high funders latency %.2f >= low funders %.2f", high.LatencyMin, low.LatencyMin)
	}
	if high.TimeHours >= low.TimeHours {
		t.Errorf("high funders time %.2f >= low funders %.2f", high.TimeHours, low.TimeHours)
	}
}

func TestRunBestResponseValidation(t *testing.T) {
	p := Table1Params()
	p.Budgets = p.Budgets[:2]
	if _, err := RunBestResponseTable(p); err == nil {
		t.Error("budget/user mismatch accepted")
	}
	p = Table1Params()
	p.SubJobs = 0
	if _, err := RunBestResponseTable(p); err == nil {
		t.Error("zero sub-jobs accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := Table1Params()
	p.SubJobs = 10
	p.Horizon = 12 * time.Hour
	a, err := RunBestResponseTable(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBestResponseTable(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Fatalf("non-deterministic: %+v vs %+v", a.Rows[i], b.Rows[i])
		}
	}
}

func TestGroupRows(t *testing.T) {
	rows := []UserRow{
		{User: "u1", Budget: 100 * bank.Credit, TimeHours: 2, Nodes: 10},
		{User: "u2", Budget: 100 * bank.Credit, TimeHours: 4, Nodes: 20},
		{User: "u3", Budget: 500 * bank.Credit, TimeHours: 6, Nodes: 30},
	}
	gs := groupRows(rows, nil)
	if len(gs) != 2 {
		t.Fatalf("groups = %+v", gs)
	}
	if gs[0].Label != "1-2" || gs[0].TimeHours != 3 || gs[0].Nodes != 15 {
		t.Errorf("group 0 = %+v", gs[0])
	}
	if gs[1].Label != "3" || gs[1].TimeHours != 6 {
		t.Errorf("group 1 = %+v", gs[1])
	}
	// Explicit partition overrides budget grouping.
	gs = groupRows(rows, []int{1, 2})
	if len(gs) != 2 || gs[0].Label != "1" || gs[1].Label != "2-3" {
		t.Errorf("explicit groups = %+v", gs)
	}
}
