package experiment

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// writeCSV writes a rectangular table of float64 rows with a header.
func writeCSV(w io.Writer, header []string, rows [][]float64) error {
	for i, h := range header {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiment: csv row has %d fields, header %d", len(row), len(header))
		}
		for i, v := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeCSVFile writes a CSV into dir/name.
func writeCSVFile(dir, name string, header []string, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeCSV(f, header, rows); err != nil {
		return err
	}
	return f.Close()
}

// WriteCSV exports the Figure 3 capacity curves (one column per guarantee
// level) as figure3.csv in dir.
func (r *Figure3Result) WriteCSV(dir string) error {
	header := []string{"budget_per_day"}
	for _, g := range r.Guarantees {
		header = append(header, fmt.Sprintf("capacity_mhz_p%02.0f", g*100))
	}
	rows := make([][]float64, len(r.BudgetsPerDay))
	for i, b := range r.BudgetsPerDay {
		row := []float64{b}
		for g := range r.Guarantees {
			row = append(row, r.CurvesMHz[g][i])
		}
		rows[i] = row
	}
	return writeCSVFile(dir, "figure3.csv", header, rows)
}

// WriteCSV exports the Figure 4 evaluation price trace as figure4.csv.
func (r *Figure4Result) WriteCSV(dir string) error {
	rows := make([][]float64, len(r.Series))
	for i, v := range r.Series {
		rows[i] = []float64{float64(i), v}
	}
	return writeCSVFile(dir, "figure4.csv", []string{"bucket", "price"}, rows)
}

// WriteCSV exports the Figure 5 aggregate performance series as figure5.csv.
func (r *Figure5Result) WriteCSV(dir string) error {
	rows := make([][]float64, len(r.RiskFree))
	for i := range r.RiskFree {
		rows[i] = []float64{float64(i), r.RiskFree[i], r.Equal[i]}
	}
	return writeCSVFile(dir, "figure5.csv",
		[]string{"step", "risk_free", "equal_share"}, rows)
}

// WriteCSV exports the Figure 6 window densities as figure6.csv: one row per
// (window, bucket).
func (r *Figure6Result) WriteCSV(dir string) error {
	header := []string{"window_index", "bucket_lo", "bucket_hi", "proportion"}
	var rows [][]float64
	for wi, w := range r.Windows {
		for _, b := range w.Buckets {
			rows = append(rows, []float64{float64(wi), b.Lo, b.Hi, b.Proportion})
		}
	}
	return writeCSVFile(dir, "figure6.csv", header, rows)
}

// WriteCSV exports the Figure 7 approximated densities as figure7.csv.
func (r *Figure7Result) WriteCSV(dir string) error {
	header := []string{"dist_index", "bucket_lo", "bucket_hi", "approx_proportion"}
	var rows [][]float64
	for di, rep := range r.Reports {
		for _, b := range rep.ApproxBuckets {
			rows = append(rows, []float64{float64(di), b.Lo, b.Hi, b.Proportion})
		}
	}
	return writeCSVFile(dir, "figure7.csv", header, rows)
}

// WriteCSV exports a table result (Table 1 or 2) as <name>.csv.
func (r *TableResult) WriteCSV(dir, name string) error {
	rows := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []float64{
			float64(i + 1), row.Budget.Credits(), row.TimeHours,
			row.CostPerH, row.LatencyMin, row.Nodes,
		}
	}
	return writeCSVFile(dir, name,
		[]string{"user", "budget", "time_h", "cost_per_h", "latency_min", "nodes"}, rows)
}
