package experiment

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// writeCSV writes a rectangular table of float64 rows with a header.
func writeCSV(w io.Writer, header []string, rows [][]float64) error {
	for i, h := range header {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiment: csv row has %d fields, header %d", len(row), len(header))
		}
		for i, v := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeNamedCSV writes a table whose first column is a label and whose
// remaining columns are float64 values.
func writeNamedCSV(w io.Writer, header []string, names []string, rows [][]float64) error {
	if len(names) != len(rows) {
		return fmt.Errorf("experiment: csv has %d names for %d rows", len(names), len(rows))
	}
	for i, h := range header {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for r, row := range rows {
		if len(row) != len(header)-1 {
			return fmt.Errorf("experiment: csv row has %d fields, header %d", len(row)+1, len(header))
		}
		if _, err := io.WriteString(w, names[r]); err != nil {
			return err
		}
		for _, v := range row {
			if _, err := io.WriteString(w, ","+strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// writeNamedCSVFile writes a labeled-row CSV into dir/name.
func writeNamedCSVFile(dir, name string, header, names []string, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeNamedCSV(f, header, names, rows); err != nil {
		return err
	}
	return f.Close()
}

// writeCSVFile writes a CSV into dir/name.
func writeCSVFile(dir, name string, header []string, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := writeCSV(f, header, rows); err != nil {
		return err
	}
	return f.Close()
}

// WriteCSV exports the Figure 3 capacity curves (one column per guarantee
// level) as figure3.csv in dir.
func (r *Figure3Result) WriteCSV(dir string) error {
	header := []string{"budget_per_day"}
	for _, g := range r.Guarantees {
		header = append(header, fmt.Sprintf("capacity_mhz_p%02.0f", g*100))
	}
	rows := make([][]float64, len(r.BudgetsPerDay))
	for i, b := range r.BudgetsPerDay {
		row := []float64{b}
		for g := range r.Guarantees {
			row = append(row, r.CurvesMHz[g][i])
		}
		rows[i] = row
	}
	return writeCSVFile(dir, "figure3.csv", header, rows)
}

// WriteCSV exports the Figure 4 evaluation price trace as figure4.csv.
func (r *Figure4Result) WriteCSV(dir string) error {
	rows := make([][]float64, len(r.Series))
	for i, v := range r.Series {
		rows[i] = []float64{float64(i), v}
	}
	return writeCSVFile(dir, "figure4.csv", []string{"bucket", "price"}, rows)
}

// WriteCSV exports the Figure 5 aggregate performance series as figure5.csv.
func (r *Figure5Result) WriteCSV(dir string) error {
	rows := make([][]float64, len(r.RiskFree))
	for i := range r.RiskFree {
		rows[i] = []float64{float64(i), r.RiskFree[i], r.Equal[i]}
	}
	return writeCSVFile(dir, "figure5.csv",
		[]string{"step", "risk_free", "equal_share"}, rows)
}

// WriteCSV exports the Figure 6 window densities as figure6.csv: one row per
// (window, bucket).
func (r *Figure6Result) WriteCSV(dir string) error {
	header := []string{"window_index", "bucket_lo", "bucket_hi", "proportion"}
	var rows [][]float64
	for wi, w := range r.Windows {
		for _, b := range w.Buckets {
			rows = append(rows, []float64{float64(wi), b.Lo, b.Hi, b.Proportion})
		}
	}
	return writeCSVFile(dir, "figure6.csv", header, rows)
}

// WriteCSV exports the Figure 7 approximated densities as figure7.csv.
func (r *Figure7Result) WriteCSV(dir string) error {
	header := []string{"dist_index", "bucket_lo", "bucket_hi", "approx_proportion"}
	var rows [][]float64
	for di, rep := range r.Reports {
		for _, b := range rep.ApproxBuckets {
			rows = append(rows, []float64{float64(di), b.Lo, b.Hi, b.Proportion})
		}
	}
	return writeCSVFile(dir, "figure7.csv", header, rows)
}

// SummaryCSV renders the per-metric mean/stddev/CI table. The bytes are a
// pure function of the aggregate, which Replicate computes in seed order —
// so the rendering is identical for every worker count.
func (a *Aggregate) SummaryCSV() ([]byte, error) {
	var buf bytes.Buffer
	header := []string{"metric", "mean", "stddev", "ci95_half", "reps"}
	rows := make([][]float64, len(a.Cols))
	n := float64(len(a.PerRep))
	for c := range a.Cols {
		rows[c] = []float64{a.Mean[c], a.StdDev[c], a.CI95[c], n}
	}
	if err := writeNamedCSV(&buf, header, a.Cols, rows); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PerRepCSV renders one row per replication: rep index, seed (exact int64,
// not a rounded float), then every metric column.
func (a *Aggregate) PerRepCSV() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString("rep,seed")
	for _, c := range a.Cols {
		buf.WriteString("," + c)
	}
	buf.WriteByte('\n')
	for i, rep := range a.PerRep {
		if len(rep) != len(a.Cols) {
			return nil, fmt.Errorf("experiment: replication %d has %d values for %d columns", i, len(rep), len(a.Cols))
		}
		buf.WriteString(strconv.Itoa(i))
		buf.WriteString("," + strconv.FormatInt(a.Seeds[i], 10))
		for _, v := range rep {
			buf.WriteString("," + strconv.FormatFloat(v, 'g', -1, 64))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// WriteCSV exports <name>_summary.csv and <name>_reps.csv into dir.
func (a *Aggregate) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sum, err := a.SummaryCSV()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, a.Name+"_summary.csv"), sum, 0o644); err != nil {
		return err
	}
	reps, err := a.PerRepCSV()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, a.Name+"_reps.csv"), reps, 0o644)
}

// WriteCSV exports a table result (Table 1 or 2) as <name>.csv.
func (r *TableResult) WriteCSV(dir, name string) error {
	rows := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []float64{
			float64(i + 1), row.Budget.Credits(), row.TimeHours,
			row.CostPerH, row.LatencyMin, row.Nodes,
		}
	}
	return writeCSVFile(dir, name,
		[]string{"user", "budget", "time_h", "cost_per_h", "latency_min", "nodes"}, rows)
}
