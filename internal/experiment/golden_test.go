package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden CSVs from the current implementation")

// TestGoldenLegacyProportionalCSVs pins the legacy proportional-share market
// bit-for-bit across the mechanism refactor: the figure4 and strategies
// replicated summary CSVs (seed 2006, 4 reps, 2 workers — the marketbench
// -reps 4 -parallel 2 invocation) must stay byte-identical to the files
// under testdata/golden, which were generated from the pre-refactor auction.
// Any last-ulp drift in the clearing fold, the charge sequence, or the
// reduction order shows up here as a diff.
//
// Regenerate (only when an intentional behavior change is being made, with
// the change called out in the commit): go test -run Golden -update-golden
// ./internal/experiment
func TestGoldenLegacyProportionalCSVs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden replication run takes ~10s")
	}
	cfg := ReplicationConfig{Reps: 4, Parallel: 2, BaseSeed: 2006}

	fig4, err := DefaultRepSpec("figure4")
	if err != nil {
		t.Fatalf("figure4 spec: %v", err)
	}
	specs := []RepSpec{fig4, RepSpecStrategies(DefaultStrategiesParams())}

	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			agg, err := Replicate(spec, cfg)
			if err != nil {
				t.Fatalf("replicate: %v", err)
			}
			summary, err := agg.SummaryCSV()
			if err != nil {
				t.Fatalf("summary csv: %v", err)
			}
			perRep, err := agg.PerRepCSV()
			if err != nil {
				t.Fatalf("per-rep csv: %v", err)
			}
			compareGolden(t, spec.Name+"_summary.csv", summary)
			compareGolden(t, spec.Name+"_reps.csv", perRep)
		})
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden %s: %v", name, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden baseline (legacy proportional output must stay bit-identical)\n got:\n%s\nwant:\n%s",
			name, got, want)
	}
}
