package experiment

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tycoongrid/internal/predict"
	"tycoongrid/internal/sla"
	"tycoongrid/internal/stats"
)

// SLAParams configures the SLA calibration experiment — the paper's §7
// future-work claim made concrete: reservation mechanisms (SLAs) built on
// the prediction infrastructure, with the empirical-distribution extension
// ("handle arbitrary distributions") compared against the normal model.
type SLAParams struct {
	Load         LoadParams
	CapacityFrac float64   // contracted share of the host, e.g. 0.25
	Confidences  []float64 // quoted confidence levels
}

// DefaultSLAParams contracts a quarter of the busiest host at three
// confidence levels.
func DefaultSLAParams() SLAParams {
	load := DefaultLoadParams()
	load.Hours = 30
	load.BatchPeriod = 4 * time.Hour
	load.BatchJobs = 3
	return SLAParams{
		Load:         load,
		CapacityFrac: 0.25,
		Confidences:  []float64{0.80, 0.90, 0.95},
	}
}

// SLARow is one confidence level's out-of-sample outcome under both pricing
// models.
type SLARow struct {
	Confidence         float64
	TargetViolation    float64 // 1 - p
	NormalViolation    float64
	EmpiricalViolation float64
	NormalPremium      float64 // credits for the evaluation window
	EmpiricalPremium   float64
}

// SLAResult is the calibration table.
type SLAResult struct {
	HostID string
	Rows   []SLARow
}

// RunSLACalibration records a market trace, fits both price models on a
// window, quotes SLAs, and replays that window as the spot market to measure
// realized violation rates. The replay is in-sample deliberately: it isolates
// how faithfully each model represents the window's actual price
// *distribution* (the paper's §7 "handle arbitrary distributions" concern) —
// the empirical model calibrates to 1-p by construction, while the normal
// model drifts whenever the window is skewed. Regime shifts between windows
// are a separate risk the paper assigns to window selection ("crucial ...
// to pick a time window" §7).
func RunSLACalibration(p SLAParams) (*SLAResult, error) {
	if p.CapacityFrac <= 0 || p.CapacityFrac >= 1 {
		return nil, errors.New("experiment: capacity fraction outside (0,1)")
	}
	if len(p.Confidences) == 0 {
		return nil, errors.New("experiment: no confidence levels")
	}
	load, err := RunLoad(p.Load)
	if err != nil {
		return nil, err
	}
	series := load.Recorder.Series(load.BusiestID)
	if series == nil || series.Len() < 1000 {
		return nil, errors.New("experiment: trace too short")
	}
	xs := series.Values()
	fit, eval := xs, xs

	host, err := load.World.Cluster.Host(load.BusiestID)
	if err != nil {
		return nil, err
	}
	hostMHz := host.Market.CapacityMHz()
	capacity := hostMHz * p.CapacityFrac

	d := stats.DescribeSample(fit)
	normal := predict.HostPrice{HostID: load.BusiestID, Preference: hostMHz, Mu: d.Mean, Sigma: d.StdDev}
	empirical, err := predict.NewEmpiricalPriceFromSample(load.BusiestID, hostMHz, fit, 64)
	if err != nil {
		return nil, err
	}
	window := time.Duration(len(eval)) * load.World.intervalOrDefault()

	res := &SLAResult{HostID: load.BusiestID}
	for _, conf := range p.Confidences {
		row := SLARow{Confidence: conf, TargetViolation: 1 - conf}
		for _, m := range []struct {
			model     predict.QuantileModel
			violation *float64
			premium   *float64
		}{
			{normal, &row.NormalViolation, &row.NormalPremium},
			{empirical, &row.EmpiricalViolation, &row.EmpiricalPremium},
		} {
			q, err := sla.PriceAgreement(m.model, load.BusiestID, hostMHz, capacity, window, conf, 0, 1)
			if err != nil {
				return nil, err
			}
			*m.premium = q.Premium.Credits()
			a, err := sla.Accept(q, "customer", load.World.Engine.Now())
			if err != nil {
				return nil, err
			}
			for _, spot := range eval {
				delivered := hostMHz * q.SpendRate / (q.SpendRate + spot)
				if err := a.Observe(delivered, 10*time.Second); err != nil {
					return nil, err
				}
			}
			*m.violation = a.ViolationRate()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// intervalOrDefault returns the cluster interval used by this world.
func (w *World) intervalOrDefault() time.Duration {
	return w.Cluster.Interval()
}

// String renders the calibration table.
func (r *SLAResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLA calibration on host %s (model vs window distribution)\n", r.HostID)
	fmt.Fprintf(&b, "%-6s %8s %14s %14s %12s %12s\n",
		"p", "target", "normal-viol", "empir-viol", "normal-prem", "empir-prem")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6.2f %8.3f %14.3f %14.3f %12.2f %12.2f\n",
			row.Confidence, row.TargetViolation,
			row.NormalViolation, row.EmpiricalViolation,
			row.NormalPremium, row.EmpiricalPremium)
	}
	return b.String()
}
