package experiment

import (
	"testing"
	"time"

	"tycoongrid/internal/bank"
)

func smallScaleParams() ScaleParams {
	w := PaperWorld()
	w.Hosts = 8
	w.Users = 2
	w.Seed = 77
	return ScaleParams{
		World:        w,
		ShardCounts:  []int{1, 3},
		Budget:       50 * bank.Credit,
		Deadline:     4 * time.Hour,
		SubJobs:      6,
		ChunkMinutes: 5,
		MaxNodes:     4,
		Stagger:      time.Minute,
		Horizon:      8 * time.Hour,
	}
}

func TestRunScale(t *testing.T) {
	p := smallScaleParams()
	res, err := RunScale(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.MoneyConserved {
			t.Fatalf("shards=%d: money not conserved", row.Shards)
		}
		if row.JobsDone != row.JobsTotal {
			t.Fatalf("shards=%d: %d/%d jobs done", row.Shards, row.JobsDone, row.JobsTotal)
		}
		if row.ChargedCredits <= 0 {
			t.Fatalf("shards=%d: nothing charged", row.Shards)
		}
	}
	if res.String() == "" {
		t.Fatal("empty rendering")
	}
}

// Shards 0 and 1 are the same legacy code path: their rows must be
// identical, which is the unsharded-compatibility half of the determinism
// contract at the experiment layer.
func TestScaleLegacyPathIdentity(t *testing.T) {
	p := smallScaleParams()
	p.ShardCounts = []int{0, 1}
	res, err := RunScale(p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Rows[0], res.Rows[1]
	a.Shards, b.Shards = 0, 0
	if a != b {
		t.Fatalf("legacy (0) and 1-shard rows differ:\n%+v\n%+v", a, b)
	}
}

// The replication guarantee survives sharding being wired in: a 1-shard
// scale experiment replicated 4 times renders byte-identically whether the
// worker pool has 1 or 2 workers.
func TestScaleReplicationByteIdentical(t *testing.T) {
	p := smallScaleParams()
	p.ShardCounts = []int{1}
	spec := RepSpecScale(p)
	run := func(parallel int) string {
		agg, err := Replicate(spec, ReplicationConfig{Reps: 4, Parallel: parallel, BaseSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := agg.SummaryCSV()
		if err != nil {
			t.Fatal(err)
		}
		per, err := agg.PerRepCSV()
		if err != nil {
			t.Fatal(err)
		}
		return agg.String() + string(sum) + string(per)
	}
	serial := run(1)
	concurrent := run(2)
	if serial != concurrent {
		t.Fatalf("parallel=1 and parallel=2 outputs differ:\n%s\n---\n%s", serial, concurrent)
	}
}
