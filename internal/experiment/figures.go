package experiment

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"tycoongrid/internal/mathx"
	"tycoongrid/internal/portfolio"
	"tycoongrid/internal/predict"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/stats"
)

// ---------------------------------------------------------------------------
// Figure 3 — normal-distribution prediction with guarantee levels.
// ---------------------------------------------------------------------------

// Figure3Params configures the budget-vs-capacity prediction curves.
type Figure3Params struct {
	Load       LoadParams
	Guarantees []float64 // e.g. 0.80, 0.90, 0.99
	// BudgetsPerDay to sweep, in credits/day (the paper plots $0-100/day).
	BudgetsPerDay []float64
	// KneeFraction defines the "recommended budget" flattening point.
	KneeFraction float64
}

// DefaultFigure3Params mirrors the paper's Figure 3 axes.
func DefaultFigure3Params() Figure3Params {
	budgets := make([]float64, 21)
	for i := range budgets {
		budgets[i] = float64(i) * 5 // 0..100 $/day
	}
	budgets[0] = 0.5
	// Lighter load than the default so the measured price level sits where
	// the paper's does: the capacity curves then flatten inside the plotted
	// $0-100/day range.
	load := DefaultLoadParams()
	load.MeanInterarrival = 70 * time.Minute
	load.BudgetMedian = 10
	return Figure3Params{
		Load:          load,
		Guarantees:    []float64{0.80, 0.90, 0.99},
		BudgetsPerDay: budgets,
		KneeFraction:  0.2,
	}
}

// Figure3Result holds one capacity curve per guarantee level.
type Figure3Result struct {
	HostID        string
	Mu, Sigma     float64 // measured price stats, credits/second
	CapacityMHz   float64
	BudgetsPerDay []float64
	// CurvesMHz[g][i] is the guaranteed capacity at Guarantees[g] and
	// BudgetsPerDay[i].
	Guarantees   []float64
	CurvesMHz    [][]float64
	KneePerDay   float64 // recommended budget at the 90% level
	MinUsefulMHz float64
}

// RunFigure3 records a price history under load, then sweeps the stateless
// normal-model prediction (§4.2) over budgets and guarantee levels.
func RunFigure3(p Figure3Params) (*Figure3Result, error) {
	if len(p.Guarantees) == 0 || len(p.BudgetsPerDay) == 0 {
		return nil, errors.New("experiment: figure3 needs guarantees and budgets")
	}
	load, err := RunLoad(p.Load)
	if err != nil {
		return nil, err
	}
	hostID := load.BusiestID
	series := load.Recorder.Series(hostID)
	if series == nil || series.Len() < 100 {
		return nil, errors.New("experiment: price trace too short")
	}
	d := stats.DescribeSample(series.Values())
	host, err := load.World.Cluster.Host(hostID)
	if err != nil {
		return nil, err
	}
	hp := predict.HostPrice{
		HostID:     hostID,
		Preference: host.Market.CapacityMHz(),
		Mu:         d.Mean,
		Sigma:      d.StdDev,
	}
	res := &Figure3Result{
		HostID:        hostID,
		Mu:            d.Mean,
		Sigma:         d.StdDev,
		CapacityMHz:   hp.Preference,
		BudgetsPerDay: p.BudgetsPerDay,
		Guarantees:    p.Guarantees,
	}
	for _, g := range p.Guarantees {
		curve := make([]float64, len(p.BudgetsPerDay))
		for i, b := range p.BudgetsPerDay {
			rate := b / 86400 // credits/day -> credits/second spend rate
			c, err := predict.GuaranteedCapacityMHz(hp, rate, g)
			if err != nil {
				return nil, err
			}
			curve[i] = c
		}
		res.CurvesMHz = append(res.CurvesMHz, curve)
	}
	maxRate := p.BudgetsPerDay[len(p.BudgetsPerDay)-1] / 86400
	knee, err := predict.Knee(hp, 0.90, p.KneeFraction, maxRate)
	if err != nil {
		return nil, err
	}
	res.KneePerDay = knee * 86400
	// "To get any kind of feasible performance ... at least $X/day":
	// smallest budget delivering 10% of the host at the loosest guarantee.
	lo := p.Guarantees[0]
	for _, b := range p.BudgetsPerDay {
		c, err := predict.GuaranteedCapacityMHz(hp, b/86400, lo)
		if err != nil {
			return nil, err
		}
		if c >= hp.Preference*0.10 {
			res.MinUsefulMHz = b
			break
		}
	}
	return res, nil
}

// String renders the curves as aligned columns.
func (r *Figure3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host %s: mu=%.6f sigma=%.6f credits/s, capacity %.0f MHz\n",
		r.HostID, r.Mu, r.Sigma, r.CapacityMHz)
	fmt.Fprintf(&b, "%12s", "Budget($/d)")
	for _, g := range r.Guarantees {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("%.0f%%(MHz)", g*100))
	}
	b.WriteByte('\n')
	for i, bud := range r.BudgetsPerDay {
		fmt.Fprintf(&b, "%12.1f", bud)
		for g := range r.Guarantees {
			fmt.Fprintf(&b, " %9.0f", r.CurvesMHz[g][i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "recommended budget (knee, 90%%): %.1f $/day\n", r.KneePerDay)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 4 — AR(6) one-hour forecast with smoothing vs persistence.
// ---------------------------------------------------------------------------

// Figure4Params configures the AR prediction experiment.
type Figure4Params struct {
	Load LoadParams
	// Order of the AR model (paper: 6) and smoothing strength.
	Order  int
	Lambda float64
	// Horizon is the forecast lead (paper: one hour of 10 s snapshots).
	HorizonSteps int
	// Stride between forecast origins in the validation half.
	Stride int
	// FitWindow restricts each walk-forward fit to the trailing N snapshots
	// (0 = whole history).
	FitWindow int
	// ResampleSnapshots aggregates the 10 s price snapshots into buckets of
	// this many snapshots (mean) before modeling; 1 = raw. The AR lags then
	// live on the coarser timescale, where hour-ahead mean reversion is
	// visible to a low-order model.
	ResampleSnapshots int
}

// DefaultFigure4Params mirrors the paper: AR(6), one-hour forecasts, 40 h of
// history split into 20 h fit + 20 h validation.
func DefaultFigure4Params() Figure4Params {
	load := DefaultLoadParams()
	// The paper's 40 h trace came from its competing-batch-job experiments:
	// waves of proteome-scan batches whose completions produce the sharp,
	// quasi-periodic price drops of §5.4. Reproduce that structure — a wave
	// of four batch submissions every four hours over a Poisson background.
	load.World.Hosts = 6
	load.Hours = 40
	load.MeanInterarrival = 90 * time.Minute
	load.BatchPeriod = 4 * time.Hour
	load.BatchJobs = 4
	return Figure4Params{
		Load:              load,
		Order:             6,
		Lambda:            10,
		HorizonSteps:      6,   // one hour of 10-minute buckets
		Stride:            3,   // forecast origins every 30 minutes
		FitWindow:         576, // trailing four days of 10-minute buckets
		ResampleSnapshots: 60,  // 10 s snapshots -> 10-minute buckets
	}
}

// Figure4Result reports the epsilon prediction errors.
type Figure4Result struct {
	HostID      string
	Points      int
	EpsilonAR   float64 // AR(k) with smoothing pre-pass
	EpsilonPers float64 // persistence benchmark
	// Series is the (resampled) price trace the models were evaluated on,
	// for CSV export.
	Series []float64
}

// RunFigure4 records a 40 h price trace, fits the smoothed AR model
// walk-forward on the first half, and compares epsilon against persistence
// on the second half.
func RunFigure4(p Figure4Params) (*Figure4Result, error) {
	if p.Order < 1 || p.HorizonSteps < 1 || p.Stride < 1 {
		return nil, errors.New("experiment: bad figure4 parameters")
	}
	load, err := RunLoad(p.Load)
	if err != nil {
		return nil, err
	}
	series := load.Recorder.Series(load.BusiestID)
	if series == nil {
		return nil, errors.New("experiment: no trace for busiest host")
	}
	xs := series.Values()
	if rs := p.ResampleSnapshots; rs > 1 {
		agg := make([]float64, 0, len(xs)/rs)
		for i := 0; i+rs <= len(xs); i += rs {
			var s float64
			for _, v := range xs[i : i+rs] {
				s += v
			}
			agg = append(agg, s/float64(rs))
		}
		xs = agg
	}
	if len(xs) < 4*p.HorizonSteps {
		return nil, fmt.Errorf("experiment: trace too short (%d points)", len(xs))
	}
	fit := len(xs) / 2

	ar := predict.NewWindowedSmoothedForecaster(p.Order, p.Lambda, p.FitWindow)
	predAR, measAR, err := predict.HorizonErrors(ar, xs, fit, p.HorizonSteps, p.Stride)
	if err != nil {
		return nil, err
	}
	epsAR, err := predict.PredictionError(predAR, measAR)
	if err != nil {
		return nil, err
	}
	predP, measP, err := predict.HorizonErrors(predict.Persistence{}, xs, fit, p.HorizonSteps, p.Stride)
	if err != nil {
		return nil, err
	}
	epsP, err := predict.PredictionError(predP, measP)
	if err != nil {
		return nil, err
	}
	return &Figure4Result{
		HostID:      load.BusiestID,
		Points:      len(xs),
		EpsilonAR:   epsAR,
		EpsilonPers: epsP,
		Series:      xs,
	}, nil
}

// String renders the comparison like the paper's §5.4 numbers.
func (r *Figure4Result) String() string {
	return fmt.Sprintf(
		"host %s, %d price snapshots\nAR(6)+smoothing 1h-forecast epsilon: %.2f%%\npersistence benchmark epsilon:       %.2f%%\n",
		r.HostID, r.Points, r.EpsilonAR*100, r.EpsilonPers*100)
}

// ---------------------------------------------------------------------------
// Figure 5 — risk-free portfolio vs equal shares.
// ---------------------------------------------------------------------------

// Figure5Params configures the portfolio risk-hedging simulation: the paper
// picks 10 hosts whose mean performance, performance variance, and variance
// of variances are all drawn from normal distributions.
type Figure5Params struct {
	Hosts     int
	Steps     int // performance snapshots
	TrainFrac float64
	MeanPerf  float64 // mean of host mean performance
	MeanSD    float64 // spread of host means
	VarMean   float64 // mean of host performance SDs
	VarSD     float64 // spread of host performance SDs (variance of variances)
	Seed      int64
}

// DefaultFigure5Params mirrors the paper's setup.
func DefaultFigure5Params() Figure5Params {
	return Figure5Params{
		Hosts: 10, Steps: 300, TrainFrac: 0.33,
		MeanPerf: 5, MeanSD: 0.3,
		VarMean: 0.6, VarSD: 0.5,
		Seed: 2006,
	}
}

// Figure5Result compares the two portfolios over the evaluation window.
type Figure5Result struct {
	Steps            int
	RiskFree, Equal  []float64 // aggregate performance series
	WorstRF, WorstEQ float64
	P5RF, P5EQ       float64 // 5th percentile (downside)
	StdRF, StdEQ     float64
	MeanRF, MeanEQ   float64
	Weights          []float64
}

// RunFigure5 builds random host performance processes, computes the
// risk-free (minimum-variance) portfolio from a training prefix, and tracks
// both portfolios' aggregate performance over the remaining steps.
func RunFigure5(p Figure5Params) (*Figure5Result, error) {
	if p.Hosts < 2 || p.Steps < 10 || p.TrainFrac <= 0 || p.TrainFrac >= 1 {
		return nil, errors.New("experiment: bad figure5 parameters")
	}
	src := rng.New(p.Seed)
	means := make([]float64, p.Hosts)
	sds := make([]float64, p.Hosts)
	for i := range means {
		means[i] = src.Normal(p.MeanPerf, p.MeanSD)
		sds[i] = math.Abs(src.Normal(p.VarMean, p.VarSD)) + 0.02
	}
	series := make([][]float64, p.Hosts)
	for i := range series {
		series[i] = make([]float64, p.Steps)
		for k := range series[i] {
			// Variance of variances: each step's SD jitters around the host SD.
			sd := math.Abs(src.Normal(sds[i], p.VarSD/4)) + 0.01
			series[i][k] = src.Normal(means[i], sd)
		}
	}
	train := int(float64(p.Steps) * p.TrainFrac)
	trainSeries := make([][]float64, p.Hosts)
	for i := range series {
		trainSeries[i] = series[i][:train]
	}
	cov, err := portfolio.CovarianceFromSeries(trainSeries)
	if err != nil {
		return nil, err
	}
	assets := make([]portfolio.Asset, p.Hosts)
	trainMeans := portfolio.MeansFromSeries(trainSeries)
	for i := range assets {
		assets[i] = portfolio.Asset{ID: fmt.Sprintf("h%02d", i), Return: trainMeans[i]}
	}
	rf, err := portfolio.MinimumVariance(assets, cov)
	if err != nil {
		return nil, err
	}
	eq, err := portfolio.EqualShares(assets)
	if err != nil {
		return nil, err
	}

	res := &Figure5Result{Steps: p.Steps - train, Weights: rf.Weights}
	evalAgg := func(w []float64, k int) float64 {
		var s float64
		for i := range w {
			s += w[i] * series[i][k]
		}
		return s
	}
	var wrf, weq mathx.Welford
	res.WorstRF, res.WorstEQ = math.Inf(1), math.Inf(1)
	for k := train; k < p.Steps; k++ {
		a := evalAgg(rf.Weights, k)
		b := evalAgg(eq.Weights, k)
		res.RiskFree = append(res.RiskFree, a)
		res.Equal = append(res.Equal, b)
		wrf.Add(a)
		weq.Add(b)
		if a < res.WorstRF {
			res.WorstRF = a
		}
		if b < res.WorstEQ {
			res.WorstEQ = b
		}
	}
	res.MeanRF, res.MeanEQ = wrf.Mean(), weq.Mean()
	res.StdRF, res.StdEQ = wrf.StdDev(), weq.StdDev()
	res.P5RF = percentileOf(res.RiskFree, 0.05)
	res.P5EQ = percentileOf(res.Equal, 0.05)
	return res, nil
}

func percentileOf(xs []float64, q float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	// insertion sort is fine at these sizes
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return stats.Percentile(cp, q)
}

// String summarizes the downside-risk comparison.
func (r *Figure5Result) String() string {
	return fmt.Sprintf(
		"%d evaluation steps\n%-12s %10s %10s %10s %10s\n%-12s %10.3f %10.3f %10.3f %10.3f\n%-12s %10.3f %10.3f %10.3f %10.3f\n",
		r.Steps,
		"portfolio", "mean", "stddev", "worst", "p5",
		"risk-free", r.MeanRF, r.StdRF, r.WorstRF, r.P5RF,
		"equal-share", r.MeanEQ, r.StdEQ, r.WorstEQ, r.P5EQ)
}

// ---------------------------------------------------------------------------
// Figure 6 — price distribution in hour/day/week moving windows.
// ---------------------------------------------------------------------------

// Figure6Params configures the window-distribution experiment.
type Figure6Params struct {
	Load  LoadParams
	Slots int
	// Window sizes in snapshots (10 s each): hour=360, day=8640, week=60480.
	Windows map[string]int
}

// DefaultFigure6Params runs a week of diurnal market load.
func DefaultFigure6Params() Figure6Params {
	load := DefaultLoadParams()
	load.Hours = 7 * 24
	load.World.Hosts = 6
	load.World.Users = 6
	load.MeanInterarrival = 40 * time.Minute
	// Diurnal demand: busy days, quiet nights, quiet final hour.
	load.Intensity = func(at time.Duration) float64 {
		h := math.Mod(at.Hours(), 24)
		f := 0.4 + 0.8*math.Sin(math.Pi*h/24)
		if at > 167*time.Hour {
			f = 0.05
		}
		return f
	}
	return Figure6Params{
		Load:  load,
		Slots: 10,
		Windows: map[string]int{
			"hour": 360,
			"day":  8640,
			"week": 60480,
		},
	}
}

// WindowReport is one window's reported distribution and moments.
type WindowReport struct {
	Name    string
	Buckets []stats.Bucket
	Moments stats.Snapshot
}

// Figure6Result holds the three window reports.
type Figure6Result struct {
	HostID  string
	Windows []WindowReport
}

// RunFigure6 replays the recorded price trace through the dual-array window
// distributions and smoothed moment trackers of §4.5.
func RunFigure6(p Figure6Params) (*Figure6Result, error) {
	if p.Slots < 2 || len(p.Windows) == 0 {
		return nil, errors.New("experiment: bad figure6 parameters")
	}
	load, err := RunLoad(p.Load)
	if err != nil {
		return nil, err
	}
	series := load.Recorder.Series(load.BusiestID)
	if series == nil {
		return nil, errors.New("experiment: no price trace")
	}
	xs := series.Values()

	type tracker struct {
		name string
		dist *stats.WindowDistribution
		mom  *stats.MovingMoments
	}
	var ts []tracker
	for _, name := range sortedKeys(p.Windows) {
		n := p.Windows[name]
		d, err := stats.NewWindowDistribution(n, p.Slots)
		if err != nil {
			return nil, err
		}
		m, err := stats.NewMovingMoments(n)
		if err != nil {
			return nil, err
		}
		ts = append(ts, tracker{name: name, dist: d, mom: m})
	}
	for _, x := range xs {
		for _, t := range ts {
			t.dist.Observe(x)
			t.mom.Observe(x)
		}
	}
	res := &Figure6Result{HostID: load.BusiestID}
	for _, t := range ts {
		res.Windows = append(res.Windows, WindowReport{
			Name:    t.name,
			Buckets: t.dist.Buckets(),
			Moments: t.mom.Snapshot(),
		})
	}
	return res, nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && m[keys[j]] < m[keys[j-1]]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// String renders the densities per bracket, like the paper's bar chart.
func (r *Figure6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "host %s price distribution\n", r.HostID)
	for _, w := range r.Windows {
		fmt.Fprintf(&b, "window %-5s mean=%.5f sd=%.5f skew=%+.2f kurt=%+.2f\n",
			w.Name, w.Moments.Mean, w.Moments.StdDev, w.Moments.Skewness, w.Moments.Kurtosis)
		for _, bk := range w.Buckets {
			fmt.Fprintf(&b, "  [%.5f, %.5f): %5.1f%%\n", bk.Lo, bk.Hi, bk.Proportion*100)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 7 — window approximation of Normal, Exponential, Beta inputs.
// ---------------------------------------------------------------------------

// Figure7Params configures the approximation-accuracy simulation.
type Figure7Params struct {
	Window int // snapshots per window
	Slots  int
	Seed   int64
}

// DefaultFigure7Params mirrors the paper: lag = window/2, uniform noise.
func DefaultFigure7Params() Figure7Params {
	return Figure7Params{Window: 400, Slots: 20, Seed: 2006}
}

// DistReport compares a window approximation against the actual sample.
type DistReport struct {
	Name           string
	ApproxBuckets  []stats.Bucket
	ActualMean     float64
	ApproxMean     float64
	TotalVariation float64 // distance between approx and actual densities
}

// Figure7Result holds one report per tested distribution.
type Figure7Result struct {
	Reports []DistReport
}

// RunFigure7 feeds each distribution through the dual-array window scheme
// with a half-window lag of uniform noise in front (maximum contamination)
// and measures how closely the approximation tracks the actual sample.
func RunFigure7(p Figure7Params) (*Figure7Result, error) {
	if p.Window < 10 || p.Slots < 2 {
		return nil, errors.New("experiment: bad figure7 parameters")
	}
	src := rng.New(p.Seed)
	dists := []struct {
		name string
		draw func() float64
	}{
		{"Norm(0.5,0.15)", func() float64 { return src.Normal(0.5, 0.15) }},
		{"Exp(2)", func() float64 { return src.Exponential(2) }},
		{"Beta(5,1)", func() float64 { return src.Beta(5, 1) }},
	}
	res := &Figure7Result{}
	for _, d := range dists {
		w, err := stats.NewWindowDistribution(p.Window, p.Slots)
		if err != nil {
			return nil, err
		}
		// Half a window of uniform noise: "at this point there is a maximum
		// influence, or noise, from non-window data".
		for i := 0; i < p.Window/2; i++ {
			w.Observe(src.Uniform(0, 1))
		}
		actual := make([]float64, 0, 2*p.Window)
		for i := 0; i < 2*p.Window; i++ {
			x := d.draw()
			actual = append(actual, x)
			w.Observe(x)
		}
		buckets := w.Buckets()
		// Bin the actual sample on the same grid.
		actProps := make([]float64, len(buckets))
		var actMean float64
		for _, x := range actual {
			actMean += x
			for i, bk := range buckets {
				if x >= bk.Lo && (x < bk.Hi || i == len(buckets)-1) {
					actProps[i]++
					break
				}
			}
		}
		actMean /= float64(len(actual))
		var tv, approxMean float64
		for i, bk := range buckets {
			ap := actProps[i] / float64(len(actual))
			tv += math.Abs(bk.Proportion-ap) / 2
			approxMean += bk.Proportion * (bk.Lo + bk.Hi) / 2
		}
		res.Reports = append(res.Reports, DistReport{
			Name:           d.name,
			ApproxBuckets:  buckets,
			ActualMean:     actMean,
			ApproxMean:     approxMean,
			TotalVariation: tv,
		})
	}
	return res, nil
}

// String renders the per-distribution accuracy summary.
func (r *Figure7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %8s\n", "distribution", "actual-mean", "approx-mean", "TV-dist")
	for _, rep := range r.Reports {
		fmt.Fprintf(&b, "%-16s %12.4f %12.4f %8.4f\n",
			rep.Name, rep.ActualMean, rep.ApproxMean, rep.TotalVariation)
	}
	return b.String()
}
