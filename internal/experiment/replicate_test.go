package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"tycoongrid/internal/bank"
)

// shrunkTableParams is a small best-response scenario: three users on six
// hosts, two funding levels, finishing well inside a 6 h horizon.
func shrunkTableParams() BestResponseParams {
	w := PaperWorld()
	w.Hosts = 6
	w.Users = 3
	return BestResponseParams{
		World:        w,
		Budgets:      []bank.Amount{100 * bank.Credit, 100 * bank.Credit, 500 * bank.Credit},
		Deadline:     4 * time.Hour,
		SubJobs:      6,
		ChunkMinutes: 5,
		MaxNodes:     4,
		Stagger:      2 * time.Minute,
		Horizon:      6 * time.Hour,
		GroupSizes:   []int{2, 1},
	}
}

// shrunkLoadParams is a light market: four hosts, four users, 8 h of traffic.
func shrunkLoadParams() LoadParams {
	p := DefaultLoadParams()
	p.World.Hosts = 4
	p.World.Users = 4
	p.Hours = 8
	p.MeanInterarrival = 20 * time.Minute
	p.BudgetMedian = 10
	return p
}

func shrunkFigure4Params() Figure4Params {
	p := DefaultFigure4Params()
	p.Load = shrunkLoadParams()
	p.Load.Hours = 6
	p.Order = 3
	p.HorizonSteps = 3
	p.Stride = 2
	p.FitWindow = 100
	p.ResampleSnapshots = 30
	return p
}

// deterministicSpecs returns one shrunken replication spec per experiment
// family, so the property below covers every figure/table harness.
func deterministicSpecs() []RepSpec {
	f3 := DefaultFigure3Params()
	f3.Load = shrunkLoadParams()
	f3.Guarantees = []float64{0.80, 0.90}
	f3.BudgetsPerDay = []float64{0.5, 10, 50}

	f6 := DefaultFigure6Params()
	f6.Load = shrunkLoadParams()
	f6.Load.Hours = 12
	f6.Load.Intensity = nil
	f6.Slots = 6
	f6.Windows = map[string]int{"hour": 360, "quarter": 1080}

	return []RepSpec{
		RepSpecTable("table-shrunk", shrunkTableParams()),
		RepSpecFigure3(f3),
		RepSpecFigure4(shrunkFigure4Params()),
		RepSpecFigure5(DefaultFigure5Params()),
		RepSpecFigure6(f6),
		RepSpecFigure7(DefaultFigure7Params()),
		RepSpecAblationScheduler(shrunkTableParams()),
		RepSpecAblationSmoothing(shrunkFigure4Params()),
	}
}

// TestReplicationDeterminism is the parallelism property: for every
// experiment family, the same base seed must produce byte-identical CSV
// output and equal aggregates whether the replications run on one worker or
// four.
func TestReplicationDeterminism(t *testing.T) {
	for _, spec := range deterministicSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			serial, err := Replicate(spec, ReplicationConfig{Reps: 3, Parallel: 1, BaseSeed: 2006})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallel, err := Replicate(spec, ReplicationConfig{Reps: 3, Parallel: 4, BaseSeed: 2006})
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("aggregates differ between 1 and 4 workers:\nserial   %+v\nparallel %+v", serial, parallel)
			}
			sSum, err := serial.SummaryCSV()
			if err != nil {
				t.Fatal(err)
			}
			pSum, err := parallel.SummaryCSV()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sSum, pSum) {
				t.Fatalf("summary CSVs differ:\n%s\n---\n%s", sSum, pSum)
			}
			sReps, err := serial.PerRepCSV()
			if err != nil {
				t.Fatal(err)
			}
			pReps, err := parallel.PerRepCSV()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sReps, pReps) {
				t.Fatalf("per-rep CSVs differ:\n%s\n---\n%s", sReps, pReps)
			}
			// Replications are genuinely independent: distinct seeds.
			seen := map[int64]bool{}
			for _, s := range serial.Seeds {
				if seen[s] {
					t.Fatalf("duplicate replication seed %d", s)
				}
				seen[s] = true
			}
		})
	}
}

// TestReplicateRepeatable checks that two identically-configured runs of the
// same spec agree exactly — replications share no hidden state.
func TestReplicateRepeatable(t *testing.T) {
	spec := RepSpecTable("table-shrunk", shrunkTableParams())
	a, err := Replicate(spec, ReplicationConfig{Reps: 2, Parallel: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicate(spec, ReplicationConfig{Reps: 2, Parallel: 2, BaseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs differ:\n%+v\n%+v", a, b)
	}
}

// TestReplicateFirstErrorWins checks error reduction order: the reported
// failure is the lowest-index failing replication regardless of worker
// scheduling.
func TestReplicateFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	spec := RepSpec{
		Name: "failing",
		Cols: []string{"x"},
		Run: func(seed int64) ([]float64, error) {
			return nil, fmt.Errorf("seed %d: %w", seed, boom)
		},
	}
	_, err := Replicate(spec, ReplicationConfig{Reps: 5, Parallel: 4, BaseSeed: 1})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain broken: %v", err)
	}
	if got := err.Error(); !strings.HasPrefix(got, "experiment: replication 0 ") {
		t.Fatalf("first error by index should win, got %q", got)
	}
}

// TestReplicateValidation covers the config error paths.
func TestReplicateValidation(t *testing.T) {
	ok := RepSpec{Name: "ok", Cols: []string{"x"}, Run: func(int64) ([]float64, error) { return []float64{1}, nil }}
	if _, err := Replicate(RepSpec{}, ReplicationConfig{Reps: 1}); err == nil {
		t.Error("nil Run accepted")
	}
	if _, err := Replicate(ok, ReplicationConfig{Reps: 0}); err == nil {
		t.Error("zero reps accepted")
	}
	short := ok
	short.Cols = []string{"x", "y"}
	if _, err := Replicate(short, ReplicationConfig{Reps: 1}); err == nil {
		t.Error("column/value mismatch accepted")
	}
	// Single replication: mean is the value, no spread.
	agg, err := Replicate(ok, ReplicationConfig{Reps: 1, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Mean[0] != 1 || agg.StdDev[0] != 0 || agg.CI95[0] != 0 {
		t.Errorf("single-rep aggregate: %+v", agg)
	}
}

// TestDefaultRepSpecNames pins the dispatcher: every replicable marketbench
// experiment resolves, the deterministic ones refuse.
func TestDefaultRepSpecNames(t *testing.T) {
	for _, name := range []string{
		"table1", "table2", "figure3", "figure4", "figure5", "figure6", "figure7",
		"ablation-scheduler", "ablation-smoothing",
	} {
		spec, err := DefaultRepSpec(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(spec.Cols) == 0 || spec.Run == nil {
			t.Errorf("%s: incomplete spec", name)
		}
	}
	for _, name := range []string{"ablation-cap", "ablation-interval", "sla", "nonsense"} {
		if _, err := DefaultRepSpec(name); err == nil {
			t.Errorf("%s: expected no spec", name)
		}
	}
}
