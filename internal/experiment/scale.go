package experiment

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tycoongrid/internal/agent"
	"tycoongrid/internal/bank"
)

// ScaleParams configures the horizontal-scale experiment family: the same
// competing-users workload run at increasing auctioneer shard counts. Shard
// count 0 (or 1) is the legacy single-auctioneer tick; larger counts enable
// the marketplane's phased sharded tick. The family answers two questions —
// does the sharded plane produce a healthy market (jobs complete, money
// conserved), and how do the outcome metrics move as the plane is
// partitioned. Raw throughput at benchmark scale lives in
// marketplane.RunScaleBench; this family exercises the full stack (agent,
// grid, bank, VM managers) at workload scale.
type ScaleParams struct {
	World        WorldConfig
	ShardCounts  []int         // one run per entry; 0 or 1 = legacy tick
	Budget       bank.Amount   // per-user funding
	Deadline     time.Duration // bid deadline
	SubJobs      int           // chunks per user application
	ChunkMinutes float64       // CPU minutes per chunk at reference speed
	MaxNodes     int           // concurrent VMs per user
	Stagger      time.Duration // delay between user submissions
	Horizon      time.Duration // simulation cut-off
}

// DefaultScaleParams returns a compact four-user scenario run at shard
// counts 1, 2 and 4.
func DefaultScaleParams() ScaleParams {
	w := PaperWorld()
	w.Hosts = 20
	w.Users = 4
	return ScaleParams{
		World:        w,
		ShardCounts:  []int{1, 2, 4},
		Budget:       100 * bank.Credit,
		Deadline:     8 * time.Hour,
		SubJobs:      20,
		ChunkMinutes: 15,
		MaxNodes:     10,
		Stagger:      2 * time.Minute,
		Horizon:      24 * time.Hour,
	}
}

// ScaleRow is one shard count's workload outcome.
type ScaleRow struct {
	Shards         int
	JobsDone       int
	JobsTotal      int
	TimeHours      float64 // mean wall time of completed jobs
	CostPerH       float64 // mean credits/hour of completed jobs
	ChargedCredits float64 // total credits charged across all jobs
	MoneyConserved bool    // bank supply unchanged by the run
}

// ScaleResult is the shard-count sweep.
type ScaleResult struct {
	Rows []ScaleRow
}

// RunScale runs the workload once per shard count. Every run builds a fresh
// world from the same seed, so differences between rows are attributable to
// the tick structure alone.
func RunScale(p ScaleParams) (*ScaleResult, error) {
	if len(p.ShardCounts) == 0 {
		return nil, errors.New("experiment: no shard counts")
	}
	if p.SubJobs <= 0 || p.ChunkMinutes <= 0 || p.MaxNodes <= 0 {
		return nil, errors.New("experiment: bad application shape")
	}
	res := &ScaleResult{}
	for _, shards := range p.ShardCounts {
		row, err := runScaleOnce(p, shards)
		if err != nil {
			return nil, fmt.Errorf("experiment: scale run at %d shards: %w", shards, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runScaleOnce(p ScaleParams, shards int) (ScaleRow, error) {
	cfg := p.World
	cfg.Shards = shards
	w, err := NewWorld(cfg)
	if err != nil {
		return ScaleRow{}, err
	}
	supply := w.Bank.TotalMoney()
	jobs := make([]*agent.Job, len(w.Users))
	var submitErr error
	for i, u := range w.Users {
		i, u := i, u
		if _, err := w.Engine.After(time.Duration(i)*p.Stagger, func() {
			job, err := w.SubmitApp(u, p.Budget, p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes)
			if err != nil && submitErr == nil {
				submitErr = fmt.Errorf("submitting for %s: %w", u.Name, err)
			}
			jobs[i] = job
		}); err != nil {
			return ScaleRow{}, err
		}
	}
	w.Engine.RunFor(p.Horizon)
	if submitErr != nil {
		return ScaleRow{}, submitErr
	}

	row := ScaleRow{Shards: shards, JobsTotal: len(jobs)}
	done := 0.0
	for _, job := range jobs {
		if job == nil {
			return ScaleRow{}, errors.New("a user never submitted")
		}
		row.ChargedCredits += job.Charged.Credits()
		if job.State == agent.StateDone {
			row.JobsDone++
			done++
			row.TimeHours += job.Duration().Hours()
			row.CostPerH += job.CostRate()
		}
	}
	if done > 0 {
		row.TimeHours /= done
		row.CostPerH /= done
	}
	row.MoneyConserved = w.Bank.TotalMoney() == supply
	return row, nil
}

// String renders the sweep as a table.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %6s %9s %10s %12s %10s\n",
		"Shards", "Done", "Time(h)", "Cost($/h)", "Charged($)", "Conserved")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7d %3d/%-3d %9.2f %10.2f %12.2f %10v\n",
			row.Shards, row.JobsDone, row.JobsTotal, row.TimeHours,
			row.CostPerH, row.ChargedCredits, row.MoneyConserved)
	}
	return b.String()
}

// RepSpecScale replicates the shard-count sweep, reporting per shard count
// the completion, timing and conservation metrics.
func RepSpecScale(p ScaleParams) RepSpec {
	var cols []string
	for _, s := range p.ShardCounts {
		for _, m := range []string{"done", "time_h", "cost_per_h", "charged", "conserved"} {
			cols = append(cols, fmt.Sprintf("s%d_%s", s, m))
		}
	}
	return RepSpec{
		Name: "scale",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.World.Seed = seed
			q.World.Tracer = quietTracer()
			res, err := RunScale(q)
			if err != nil {
				return nil, err
			}
			var out []float64
			for _, row := range res.Rows {
				conserved := 0.0
				if row.MoneyConserved {
					conserved = 1
				}
				out = append(out, float64(row.JobsDone), row.TimeHours,
					row.CostPerH, row.ChargedCredits, conserved)
			}
			return out, nil
		},
	}
}
