package experiment

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/mechanism"
)

// TestMoneyConservedAcrossRandomWorkloads is the repository's end-to-end
// economic invariant: across arbitrary random market activity — submissions,
// competition, boosts implied by batch waves, completions, refunds — the
// total money in the bank equals exactly what was deposited. No operation
// may mint or destroy a microcredit.
func TestMoneyConservedAcrossRandomWorkloads(t *testing.T) {
	f := func(seed int64, batch bool) bool {
		p := DefaultLoadParams()
		p.World.Seed = seed
		p.World.Hosts = 4
		p.World.Users = 4
		p.Hours = 8
		p.MeanInterarrival = 20 * time.Minute
		if batch {
			p.BatchPeriod = 3 * time.Hour
			p.BatchJobs = 2
		}
		res, err := RunLoad(p)
		if err != nil {
			return false
		}
		deposited := bank.Amount(p.World.Users) * p.World.GrantPerUser
		return res.World.Bank.TotalMoney() == deposited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestInvariantsAcrossReplications pushes the economic invariants through
// the replication runner: every independently-seeded copy of the ablation
// workloads must conserve the bank's total money, finish with every broker
// escrow sub-account drained, and never drive an account negative — with the
// worlds running concurrently on the worker pool.
func TestInvariantsAcrossReplications(t *testing.T) {
	// Ablation A workload: the market side of the scheduler comparison,
	// run to completion so escrow must be fully unwound.
	table := shrunkTableParams()
	tableSpec := RepSpec{
		Name: "invariants-ablation-scheduler",
		Cols: []string{"money_delta", "undrained_subaccounts", "negative_accounts"},
		Run: func(seed int64) ([]float64, error) {
			p := table
			p.World.Seed = seed
			p.World.Tracer = quietTracer()
			w, err := NewWorld(p.World)
			if err != nil {
				return nil, err
			}
			for i, u := range w.Users {
				if _, err := w.SubmitApp(u, p.Budgets[i], p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes); err != nil {
					return nil, err
				}
			}
			w.Engine.RunFor(p.Horizon)
			deposited := bank.Amount(p.World.Users) * p.World.GrantPerUser
			delta := float64(w.Bank.TotalMoney() - deposited)
			var undrained, negative float64
			for _, id := range w.Bank.Accounts() {
				a, err := w.Bank.Lookup(id)
				if err != nil {
					return nil, err
				}
				if a.Parent == "broker" && a.Balance != 0 {
					undrained++
				}
				if a.Balance < 0 {
					negative++
				}
			}
			return []float64{delta, undrained, negative}, nil
		},
	}
	// Ablation C workload: the load scenario behind the smoothing ablation.
	// Jobs may still be in flight at the horizon, so escrow can legitimately
	// hold money — assert conservation and non-negativity only.
	load := shrunkFigure4Params().Load
	loadSpec := RepSpec{
		Name: "invariants-ablation-smoothing",
		Cols: []string{"money_delta", "negative_accounts"},
		Run: func(seed int64) ([]float64, error) {
			p := load
			p.World.Seed = seed
			p.World.Tracer = quietTracer()
			res, err := RunLoad(p)
			if err != nil {
				return nil, err
			}
			deposited := bank.Amount(p.World.Users) * p.World.GrantPerUser
			delta := float64(res.World.Bank.TotalMoney() - deposited)
			var negative float64
			for _, id := range res.World.Bank.Accounts() {
				a, err := res.World.Bank.Lookup(id)
				if err != nil {
					return nil, err
				}
				if a.Balance < 0 {
					negative++
				}
			}
			return []float64{delta, negative}, nil
		},
	}
	// Mechanism workloads: the ablation-scheduler invariants must hold no
	// matter which clearing rule the host markets run — posted price and VCG
	// charge differently from proportional share, but none may mint, burn or
	// strand a microcredit.
	mechSpecs := make([]RepSpec, 0, len(mechanism.Names()))
	for _, mechName := range mechanism.Names() {
		mechName := mechName
		mechSpecs = append(mechSpecs, RepSpec{
			Name: "invariants-mechanism-" + mechName,
			Cols: []string{"money_delta", "undrained_subaccounts", "negative_accounts"},
			Run: func(seed int64) ([]float64, error) {
				p := table
				p.World.Seed = seed
				p.World.Tracer = quietTracer()
				p.World.Mechanism = mechName
				w, err := NewWorld(p.World)
				if err != nil {
					return nil, err
				}
				for i, u := range w.Users {
					if _, err := w.SubmitApp(u, p.Budgets[i], p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes); err != nil {
						return nil, err
					}
				}
				w.Engine.RunFor(p.Horizon)
				deposited := bank.Amount(p.World.Users) * p.World.GrantPerUser
				delta := float64(w.Bank.TotalMoney() - deposited)
				var undrained, negative float64
				for _, id := range w.Bank.Accounts() {
					a, err := w.Bank.Lookup(id)
					if err != nil {
						return nil, err
					}
					if a.Parent == "broker" && a.Balance != 0 {
						undrained++
					}
					if a.Balance < 0 {
						negative++
					}
				}
				return []float64{delta, undrained, negative}, nil
			},
		})
	}

	for _, spec := range append([]RepSpec{tableSpec, loadSpec}, mechSpecs...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			agg, err := Replicate(spec, ReplicationConfig{Reps: 4, Parallel: 4, BaseSeed: 2006})
			if err != nil {
				t.Fatal(err)
			}
			for i, rep := range agg.PerRep {
				for c, v := range rep {
					if v != 0 {
						t.Errorf("replication %d (seed %d): %s = %v, want 0",
							i, agg.Seeds[i], agg.Cols[c], v)
					}
				}
			}
		})
	}
}

// TestMechanismsFamilyConservation runs the mechanisms experiment family
// end-to-end and asserts TotalMoney conservation held in every replication
// under every clearing rule — the per-mechanism `conserved` column must be
// exactly 1 for each rep.
func TestMechanismsFamilyConservation(t *testing.T) {
	p := DefaultMechanismsParams()
	p.ProbeProfiles = 5 // conservation lives in the full-stack run, keep the probe cheap
	agg, err := Replicate(RepSpecMechanisms(p), ReplicationConfig{Reps: 3, Parallel: 3, BaseSeed: 2006})
	if err != nil {
		t.Fatal(err)
	}
	for c, col := range agg.Cols {
		if !strings.HasSuffix(col, "_conserved") {
			continue
		}
		for i, rep := range agg.PerRep {
			if rep[c] != 1 {
				t.Errorf("replication %d (seed %d): %s = %v, want 1 (money not conserved)",
					i, agg.Seeds[i], col, rep[c])
			}
		}
	}
}

// TestAllBudgetsAccountedFor checks the finer-grained flow on a completed
// Table run: every user's spend equals charges to hosts plus refunds held at
// the broker.
func TestAllBudgetsAccountedFor(t *testing.T) {
	p := Table2Params()
	p.SubJobs = 20
	w, err := NewWorld(p.World)
	if err != nil {
		t.Fatal(err)
	}
	var totalBudget bank.Amount
	for i, u := range w.Users {
		if _, err := w.SubmitApp(u, p.Budgets[i], p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes); err != nil {
			t.Fatal(err)
		}
		totalBudget += p.Budgets[i]
	}
	w.Engine.RunFor(p.Horizon)

	earnings, err := w.Bank.Balance("grid-earnings")
	if err != nil {
		t.Fatal(err)
	}
	broker, err := w.Bank.Balance("broker")
	if err != nil {
		t.Fatal(err)
	}
	if earnings+broker != totalBudget {
		t.Errorf("earnings %v + broker refunds %v != total budgets %v",
			earnings, broker, totalBudget)
	}
	// Every sub-account drained.
	for _, id := range w.Bank.Accounts() {
		a, err := w.Bank.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Parent == "broker" && a.Balance != 0 {
			t.Errorf("sub-account %s still holds %v", id, a.Balance)
		}
		if a.Balance < 0 {
			t.Errorf("account %s is negative: %v", id, a.Balance)
		}
	}
}
