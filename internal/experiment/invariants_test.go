package experiment

import (
	"testing"
	"testing/quick"
	"time"

	"tycoongrid/internal/bank"
)

// TestMoneyConservedAcrossRandomWorkloads is the repository's end-to-end
// economic invariant: across arbitrary random market activity — submissions,
// competition, boosts implied by batch waves, completions, refunds — the
// total money in the bank equals exactly what was deposited. No operation
// may mint or destroy a microcredit.
func TestMoneyConservedAcrossRandomWorkloads(t *testing.T) {
	f := func(seed int64, batch bool) bool {
		p := DefaultLoadParams()
		p.World.Seed = seed
		p.World.Hosts = 4
		p.World.Users = 4
		p.Hours = 8
		p.MeanInterarrival = 20 * time.Minute
		if batch {
			p.BatchPeriod = 3 * time.Hour
			p.BatchJobs = 2
		}
		res, err := RunLoad(p)
		if err != nil {
			return false
		}
		deposited := bank.Amount(p.World.Users) * p.World.GrantPerUser
		return res.World.Bank.TotalMoney() == deposited
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestAllBudgetsAccountedFor checks the finer-grained flow on a completed
// Table run: every user's spend equals charges to hosts plus refunds held at
// the broker.
func TestAllBudgetsAccountedFor(t *testing.T) {
	p := Table2Params()
	p.SubJobs = 20
	w, err := NewWorld(p.World)
	if err != nil {
		t.Fatal(err)
	}
	var totalBudget bank.Amount
	for i, u := range w.Users {
		if _, err := w.SubmitApp(u, p.Budgets[i], p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes); err != nil {
			t.Fatal(err)
		}
		totalBudget += p.Budgets[i]
	}
	w.Engine.RunFor(p.Horizon)

	earnings, err := w.Bank.Balance("grid-earnings")
	if err != nil {
		t.Fatal(err)
	}
	broker, err := w.Bank.Balance("broker")
	if err != nil {
		t.Fatal(err)
	}
	if earnings+broker != totalBudget {
		t.Errorf("earnings %v + broker refunds %v != total budgets %v",
			earnings, broker, totalBudget)
	}
	// Every sub-account drained.
	for _, id := range w.Bank.Accounts() {
		a, err := w.Bank.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.Parent == "broker" && a.Balance != 0 {
			t.Errorf("sub-account %s still holds %v", id, a.Balance)
		}
		if a.Balance < 0 {
			t.Errorf("account %s is negative: %v", id, a.Balance)
		}
	}
}
