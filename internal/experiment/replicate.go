package experiment

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"tycoongrid/internal/mathx"
	"tycoongrid/internal/rng"
	"tycoongrid/internal/tracing"
)

// This file is the replication runner: it executes N independently-seeded
// copies of one experiment across a worker pool and merges the per-replication
// metric vectors into mean / standard deviation / 95% confidence intervals.
// Three properties make the output trustworthy:
//
//   - Seeds are derived statelessly: replication i always runs with
//     rng.DeriveSeed(base, i) no matter which worker picks it up, so the
//     schedule cannot leak into the results.
//   - Every replication builds its own World (engine, cluster, bank, agent)
//     and its own quiet tracer; concurrent worlds share nothing mutable.
//   - Reduction happens in replication-index order after all workers join,
//     so the aggregate (and its CSV rendering) is byte-identical whether it
//     was computed with 1 worker or 16.

// RepSpec describes one replicable experiment: the metric columns a single
// replication produces and a closure that runs one fully-seeded copy.
type RepSpec struct {
	Name string
	Cols []string
	// Run executes one replication with the given seed and returns one value
	// per column. It must not retain or share state across calls: the runner
	// invokes it concurrently from several goroutines.
	Run func(seed int64) ([]float64, error)
}

// ReplicationConfig controls the worker pool.
type ReplicationConfig struct {
	// Reps is the number of independent replications.
	Reps int
	// Parallel is the worker count; <= 0 means GOMAXPROCS. It never exceeds
	// Reps. The aggregate is identical for every value of Parallel.
	Parallel int
	// BaseSeed is the seed the per-replication seeds are derived from.
	BaseSeed int64
}

// Aggregate is the merged outcome of a replicated experiment.
type Aggregate struct {
	Name  string
	Cols  []string
	Seeds []int64 // Seeds[i] drove replication i
	// PerRep[i][c] is replication i's value for column c.
	PerRep [][]float64
	// Mean, StdDev and CI95 hold per-column sample statistics; CI95 is the
	// half-width of the Student-t 95% confidence interval on the mean.
	Mean   []float64
	StdDev []float64
	CI95   []float64
}

// Replicate runs spec.Run once per replication across a pool of workers and
// reduces the results in seed order.
func Replicate(spec RepSpec, cfg ReplicationConfig) (*Aggregate, error) {
	if spec.Run == nil {
		return nil, errors.New("experiment: replication spec has no Run")
	}
	if len(spec.Cols) == 0 {
		return nil, errors.New("experiment: replication spec has no columns")
	}
	if cfg.Reps <= 0 {
		return nil, fmt.Errorf("experiment: need at least one replication, got %d", cfg.Reps)
	}
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Reps {
		workers = cfg.Reps
	}

	seeds := make([]int64, cfg.Reps)
	for i := range seeds {
		seeds[i] = rng.DeriveSeed(cfg.BaseSeed, uint64(i))
	}
	results := make([][]float64, cfg.Reps)
	errs := make([]error, cfg.Reps)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = spec.Run(seeds[i])
			}
		}()
	}
	for i := 0; i < cfg.Reps; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Seed-ordered reduction: the first error by index wins, and the column
	// statistics fold replications in index order.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: replication %d (seed %d): %w", i, seeds[i], err)
		}
	}
	nc := len(spec.Cols)
	for i, row := range results {
		if len(row) != nc {
			return nil, fmt.Errorf("experiment: replication %d returned %d values for %d columns", i, len(row), nc)
		}
	}
	agg := &Aggregate{
		Name: spec.Name, Cols: spec.Cols, Seeds: seeds, PerRep: results,
		Mean: make([]float64, nc), StdDev: make([]float64, nc), CI95: make([]float64, nc),
	}
	for c := 0; c < nc; c++ {
		var w mathx.Welford
		for _, row := range results {
			w.Add(row[c])
		}
		agg.Mean[c] = w.Mean()
		if n := int(w.N()); n >= 2 {
			sd := math.Sqrt(w.SampleVariance())
			agg.StdDev[c] = sd
			agg.CI95[c] = mathx.StudentTQuantile(0.975, n-1) * sd / math.Sqrt(float64(n))
		}
	}
	return agg, nil
}

// String renders the aggregate as an aligned metric table.
func (a *Aggregate) String() string {
	out := fmt.Sprintf("%d replications\n%-24s %14s %14s %14s\n",
		len(a.PerRep), "metric", "mean", "stddev", "ci95")
	for c, col := range a.Cols {
		out += fmt.Sprintf("%-24s %14.4f %14.4f %14.4f\n",
			col, a.Mean[c], a.StdDev[c], a.CI95[c])
	}
	return out
}

// quietTracer builds the private tracer a replication world runs under:
// unsampled (replications need numbers, not span trees) and detached from
// the process-wide scope stack so concurrent worlds cannot cross-pollute
// each other's timelines.
func quietTracer() *tracing.Tracer {
	t := tracing.New(tracing.WithCapacity(64))
	t.SetSampleRatio(0)
	return t
}

// ---------------------------------------------------------------------------
// Spec constructors: one per replicable table/figure harness. Each Run
// closure copies its params value, overrides every seed with the derived
// replication seed, and injects a fresh quiet tracer.
// ---------------------------------------------------------------------------

// tableCols derives the aggregate columns for a table scenario from its
// budget grouping (e.g. u1-2_time_h ... u3-5_nodes).
func tableCols(p BestResponseParams) []string {
	rows := make([]UserRow, len(p.Budgets))
	for i, b := range p.Budgets {
		rows[i].Budget = b
	}
	var cols []string
	for _, g := range groupRows(rows, p.GroupSizes) {
		for _, m := range []string{"time_h", "cost_per_h", "latency_min", "nodes"} {
			cols = append(cols, "u"+g.Label+"_"+m)
		}
	}
	return cols
}

// RepSpecTable replicates a best-response table scenario (Table 1 or 2),
// reporting the per-group outcome metrics.
func RepSpecTable(name string, p BestResponseParams) RepSpec {
	return RepSpec{
		Name: name,
		Cols: tableCols(p),
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.World.Seed = seed
			q.World.Tracer = quietTracer()
			res, err := RunBestResponseTable(q)
			if err != nil {
				return nil, err
			}
			var out []float64
			for _, g := range res.Groups {
				out = append(out, g.TimeHours, g.CostPerH, g.LatencyMin, g.Nodes)
			}
			return out, nil
		},
	}
}

// RepSpecFigure3 replicates the normal-model prediction experiment: the
// measured price moments, the budget recommendations, and every point of
// each guarantee curve (so the mean curve carries a CI band).
func RepSpecFigure3(p Figure3Params) RepSpec {
	cols := []string{"mu", "sigma", "knee_per_day", "min_useful_per_day"}
	for _, g := range p.Guarantees {
		for _, b := range p.BudgetsPerDay {
			cols = append(cols, fmt.Sprintf("cap_p%02.0f_b%g", g*100, b))
		}
	}
	return RepSpec{
		Name: "figure3",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Load.World.Seed = seed
			q.Load.World.Tracer = quietTracer()
			res, err := RunFigure3(q)
			if err != nil {
				return nil, err
			}
			out := []float64{res.Mu, res.Sigma, res.KneePerDay, res.MinUsefulMHz}
			for _, curve := range res.CurvesMHz {
				out = append(out, curve...)
			}
			return out, nil
		},
	}
}

// RepSpecFigure4 replicates the AR-forecast comparison.
func RepSpecFigure4(p Figure4Params) RepSpec {
	return RepSpec{
		Name: "figure4",
		Cols: []string{"eps_ar", "eps_pers", "points"},
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Load.World.Seed = seed
			q.Load.World.Tracer = quietTracer()
			res, err := RunFigure4(q)
			if err != nil {
				return nil, err
			}
			return []float64{res.EpsilonAR, res.EpsilonPers, float64(res.Points)}, nil
		},
	}
}

// RepSpecFigure5 replicates the portfolio downside-risk comparison.
func RepSpecFigure5(p Figure5Params) RepSpec {
	return RepSpec{
		Name: "figure5",
		Cols: []string{
			"mean_rf", "mean_eq", "std_rf", "std_eq",
			"worst_rf", "worst_eq", "p5_rf", "p5_eq",
		},
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Seed = seed
			res, err := RunFigure5(q)
			if err != nil {
				return nil, err
			}
			return []float64{
				res.MeanRF, res.MeanEQ, res.StdRF, res.StdEQ,
				res.WorstRF, res.WorstEQ, res.P5RF, res.P5EQ,
			}, nil
		},
	}
}

// RepSpecFigure6 replicates the moving-window distribution experiment,
// reporting the four moments per window.
func RepSpecFigure6(p Figure6Params) RepSpec {
	names := sortedKeys(p.Windows)
	var cols []string
	for _, n := range names {
		for _, m := range []string{"mean", "sd", "skew", "kurt"} {
			cols = append(cols, n+"_"+m)
		}
	}
	return RepSpec{
		Name: "figure6",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Load.World.Seed = seed
			q.Load.World.Tracer = quietTracer()
			res, err := RunFigure6(q)
			if err != nil {
				return nil, err
			}
			var out []float64
			for _, w := range res.Windows {
				out = append(out, w.Moments.Mean, w.Moments.StdDev, w.Moments.Skewness, w.Moments.Kurtosis)
			}
			return out, nil
		},
	}
}

// RepSpecFigure7 replicates the window-approximation accuracy experiment.
func RepSpecFigure7(p Figure7Params) RepSpec {
	var cols []string
	for _, d := range []string{"norm", "exp", "beta"} {
		cols = append(cols, d+"_tv", d+"_approx_mean", d+"_actual_mean")
	}
	return RepSpec{
		Name: "figure7",
		Cols: cols,
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Seed = seed
			res, err := RunFigure7(q)
			if err != nil {
				return nil, err
			}
			if len(res.Reports) != 3 {
				return nil, fmt.Errorf("experiment: figure7 returned %d reports", len(res.Reports))
			}
			var out []float64
			for _, rep := range res.Reports {
				out = append(out, rep.TotalVariation, rep.ApproxMean, rep.ActualMean)
			}
			return out, nil
		},
	}
}

// RepSpecAblationScheduler replicates the market-vs-batch comparison.
func RepSpecAblationScheduler(p BestResponseParams) RepSpec {
	return RepSpec{
		Name: "ablation-scheduler",
		Cols: []string{
			"market_low_lat_min", "market_high_lat_min", "market_low_time_h", "market_high_time_h",
			"batch_low_lat_min", "batch_high_lat_min", "batch_low_time_h", "batch_high_time_h",
		},
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.World.Seed = seed
			q.World.Tracer = quietTracer()
			res, err := RunAblationScheduler(q)
			if err != nil {
				return nil, err
			}
			return []float64{
				res.Market.LowLatency, res.Market.HighLatency, res.Market.LowTime, res.Market.HighTime,
				res.Batch.LowLatency, res.Batch.HighLatency, res.Batch.LowTime, res.Batch.HighTime,
			}, nil
		},
	}
}

// RepSpecAblationSmoothing replicates the smoothing-pre-pass ablation.
func RepSpecAblationSmoothing(p Figure4Params) RepSpec {
	return RepSpec{
		Name: "ablation-smoothing",
		Cols: []string{"eps_smoothed", "eps_raw", "eps_pers"},
		Run: func(seed int64) ([]float64, error) {
			q := p
			q.Load.World.Seed = seed
			q.Load.World.Tracer = quietTracer()
			res, err := RunAblationSmoothing(q)
			if err != nil {
				return nil, err
			}
			return []float64{res.EpsilonSmoothed, res.EpsilonRaw, res.EpsilonPers}, nil
		},
	}
}

// DefaultRepSpec returns the replication spec for a named experiment with
// the paper-default parameters, matching the marketbench single-run setup.
// It errors for experiments that are deterministic sweeps with no stochastic
// component worth replicating (ablation-cap, ablation-interval, sla).
func DefaultRepSpec(name string) (RepSpec, error) {
	switch name {
	case "table1":
		return RepSpecTable(name, Table1Params()), nil
	case "table2":
		return RepSpecTable(name, Table2Params()), nil
	case "figure3":
		return RepSpecFigure3(DefaultFigure3Params()), nil
	case "figure4":
		return RepSpecFigure4(DefaultFigure4Params()), nil
	case "figure5":
		return RepSpecFigure5(DefaultFigure5Params()), nil
	case "figure6":
		return RepSpecFigure6(DefaultFigure6Params()), nil
	case "figure7":
		return RepSpecFigure7(DefaultFigure7Params()), nil
	case "ablation-scheduler":
		p := Table2Params()
		p.SubJobs = 30
		return RepSpecAblationScheduler(p), nil
	case "ablation-smoothing":
		p := DefaultFigure4Params()
		p.ResampleSnapshots = 1
		p.Lambda = 2000
		p.HorizonSteps = 360
		p.Stride = 360
		p.FitWindow = 17280
		return RepSpecAblationSmoothing(p), nil
	case "strategies":
		return RepSpecStrategies(DefaultStrategiesParams()), nil
	case "predictors":
		return RepSpecPredictors(DefaultPredictorsParams()), nil
	case "scale":
		return RepSpecScale(DefaultScaleParams()), nil
	case "mechanisms":
		return RepSpecMechanisms(DefaultMechanismsParams()), nil
	}
	return RepSpec{}, fmt.Errorf("experiment: %q has no replication spec", name)
}
