package experiment

import (
	"math"
	"testing"
)

func TestSLACalibrationExperiment(t *testing.T) {
	res, err := RunSLACalibration(DefaultSLAParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NormalPremium <= 0 || row.EmpiricalPremium <= 0 {
			t.Errorf("p=%v: degenerate premiums %+v", row.Confidence, row)
		}
		// Violation rates are probabilities.
		for _, v := range []float64{row.NormalViolation, row.EmpiricalViolation} {
			if v < 0 || v > 1 {
				t.Errorf("p=%v: violation %v outside [0,1]", row.Confidence, v)
			}
		}
	}
	// Premiums rise with confidence under both models.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].NormalPremium < res.Rows[i-1].NormalPremium {
			t.Errorf("normal premium not increasing: %+v", res.Rows)
		}
		if res.Rows[i].EmpiricalPremium < res.Rows[i-1].EmpiricalPremium {
			t.Errorf("empirical premium not increasing: %+v", res.Rows)
		}
	}
	// The empirical model sees the actual (skewed) distribution, so its
	// violation rate calibrates tightly to 1-p...
	var errN, errE float64
	for _, row := range res.Rows {
		errN += math.Abs(row.NormalViolation - row.TargetViolation)
		errE += math.Abs(row.EmpiricalViolation - row.TargetViolation)
		if math.Abs(row.EmpiricalViolation-row.TargetViolation) > 0.03 {
			t.Errorf("p=%v: empirical violation %.3f far from target %.3f",
				row.Confidence, row.EmpiricalViolation, row.TargetViolation)
		}
	}
	// ...and beats the normal model overall on this non-normal trace.
	if errE > errN {
		t.Errorf("empirical calibration error %.3f not better than normal %.3f", errE, errN)
	}
}

func TestSLACalibrationValidation(t *testing.T) {
	p := DefaultSLAParams()
	p.CapacityFrac = 0
	if _, err := RunSLACalibration(p); err == nil {
		t.Error("zero capacity accepted")
	}
	p = DefaultSLAParams()
	p.Confidences = nil
	if _, err := RunSLACalibration(p); err == nil {
		t.Error("no confidences accepted")
	}
}
