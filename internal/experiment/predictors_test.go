package experiment

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"tycoongrid/internal/predict"
)

// shrunkPredictorsParams keeps the bursty/steady shape but compresses the
// clock so the paired batch-vs-streaming replay stays test-sized.
func shrunkPredictorsParams() PredictorsParams {
	p := DefaultPredictorsParams()
	p.Scenario.Hours = 10
	p.Scenario.Window = 240
	p.Scenario.Horizon = 15 * time.Minute
	p.Scenario.WavePeriod = 40 * time.Minute
	p.Scenario.SteadyEvery = 15 * time.Minute
	p.Scenario.MeasureStart = time.Hour
	p.Scenario.MeasureEvery = 40 * time.Minute
	p.Scenario.MeasureDeadline = 2 * time.Hour
	return p
}

// TestRunPredictorsPaired runs the paired comparison once and checks both
// pipelines produced finished measured jobs with sane, finite aggregates —
// the end-to-end proof that the streaming path schedules, not just forecasts.
func TestRunPredictorsPaired(t *testing.T) {
	if testing.Short() {
		t.Skip("paired predictor replay takes a few seconds")
	}
	p := shrunkPredictorsParams()
	p.Scenario.World.Seed = 2006
	p.Scenario.World.Tracer = quietTracer()
	res, err := RunPredictors(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(res.Outcomes))
	}
	if res.Outcomes[0].Pipeline.Streaming != "" ||
		res.Outcomes[1].Pipeline.Streaming != predict.StreamingAR {
		t.Fatalf("pipeline order drifted: %+v", res.Outcomes)
	}
	for _, o := range res.Outcomes {
		if o.Jobs == 0 {
			t.Errorf("%s: no measured jobs finished", o.Pipeline.Label)
		}
		for name, v := range map[string]float64{
			"cost": o.MeanCost, "makespan": o.MeanMakespanMin, "pred_mae": o.PredMAE,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("%s: %s = %v", o.Pipeline.Label, name, v)
			}
		}
	}
	// Paired seeds, same scenario: the streaming pipeline must keep scoring
	// predictions (it forecasts through handles, not fallbacks, once warm).
	if res.Outcomes[1].PredMAE == 0 {
		t.Errorf("streaming pipeline scored no predictions (MAE 0): handle path likely dead")
	}
}

// TestPredictorsReplicationDeterminism is the -parallel property for the
// predictors family: identical CSV bytes and aggregates on 1 worker and 3.
func TestPredictorsReplicationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated predictor comparison takes ~10s")
	}
	spec := RepSpecPredictors(shrunkPredictorsParams())
	serial, err := Replicate(spec, ReplicationConfig{Reps: 2, Parallel: 1, BaseSeed: 2006})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := Replicate(spec, ReplicationConfig{Reps: 2, Parallel: 3, BaseSeed: 2006})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("aggregates differ between 1 and 3 workers:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	for _, csv := range []struct {
		name string
		get  func(*Aggregate) ([]byte, error)
	}{
		{"summary", (*Aggregate).SummaryCSV},
		{"per-rep", (*Aggregate).PerRepCSV},
	} {
		s, err := csv.get(serial)
		if err != nil {
			t.Fatal(err)
		}
		p, err := csv.get(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s, p) {
			t.Errorf("%s CSVs differ across worker counts:\n%s\n---\n%s", csv.name, s, p)
		}
	}
}
