package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tycoongrid/internal/bank"
	"tycoongrid/internal/stats"
)

func TestWriteCSVShape(t *testing.T) {
	var b strings.Builder
	err := writeCSV(&b, []string{"a", "b"}, [][]float64{{1, 2}, {3.5, -4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3.5,-4\n"
	if b.String() != want {
		t.Errorf("csv = %q", b.String())
	}
	// Ragged rows rejected.
	if err := writeCSV(&strings.Builder{}, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestResultWriteCSVFiles(t *testing.T) {
	dir := t.TempDir()

	table := &TableResult{Rows: []UserRow{
		{User: "u1", Budget: 100 * bank.Credit, TimeHours: 1.5, CostPerH: 2, LatencyMin: 30, Nodes: 15},
	}}
	if err := table.WriteCSV(dir, "t.csv"); err != nil {
		t.Fatal(err)
	}

	f3 := &Figure3Result{
		BudgetsPerDay: []float64{1, 2},
		Guarantees:    []float64{0.8, 0.9},
		CurvesMHz:     [][]float64{{10, 20}, {5, 15}},
	}
	if err := f3.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	f4 := &Figure4Result{Series: []float64{0.1, 0.2}}
	if err := f4.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	f5 := &Figure5Result{RiskFree: []float64{1, 2}, Equal: []float64{3, 4}}
	if err := f5.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	f6 := &Figure6Result{Windows: []WindowReport{
		{Name: "hour", Buckets: []stats.Bucket{{Lo: 0, Hi: 1, Proportion: 1}}},
	}}
	if err := f6.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	f7 := &Figure7Result{Reports: []DistReport{
		{Name: "n", ApproxBuckets: []stats.Bucket{{Lo: 0, Hi: 1, Proportion: 1}}},
	}}
	if err := f7.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"t.csv", "figure3.csv", "figure4.csv", "figure5.csv", "figure6.csv", "figure7.csv"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: only %d lines", name, len(lines))
		}
		if !strings.Contains(lines[0], ",") {
			t.Errorf("%s: header %q", name, lines[0])
		}
	}
}
