package experiment

import (
	"testing"
	"time"
)

func TestRunLoadProducesTraces(t *testing.T) {
	p := DefaultLoadParams()
	p.Hours = 6
	res, err := RunLoad(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsSent == 0 {
		t.Fatal("no jobs submitted")
	}
	if res.BusiestID == "" {
		t.Fatal("no busiest host")
	}
	s := res.Recorder.Series(res.BusiestID)
	// 6 hours of 10 s ticks = 2160 snapshots.
	if s.Len() < 2000 {
		t.Errorf("trace too short: %d", s.Len())
	}
	// Prices vary under load.
	vals := s.Values()
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max <= min {
		t.Error("price never moved")
	}
}

func TestRunLoadValidation(t *testing.T) {
	p := DefaultLoadParams()
	p.Hours = 0
	if _, err := RunLoad(p); err == nil {
		t.Error("zero hours accepted")
	}
	p = DefaultLoadParams()
	p.MeanInterarrival = 0
	if _, err := RunLoad(p); err == nil {
		t.Error("zero interarrival accepted")
	}
}

func TestFigure3Shape(t *testing.T) {
	p := DefaultFigure3Params()
	p.Load.Hours = 8
	res, err := RunFigure3(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.CurvesMHz) != 3 {
		t.Fatalf("curves = %d", len(res.CurvesMHz))
	}
	// Each curve increases in budget and stays below host capacity.
	for g, curve := range res.CurvesMHz {
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1] {
				t.Errorf("curve %d not increasing at %d", g, i)
			}
			if curve[i] > res.CapacityMHz {
				t.Errorf("curve %d exceeds capacity", g)
			}
		}
	}
	// Ordering: looser guarantee >= stricter at every budget.
	for i := range res.BudgetsPerDay {
		if !(res.CurvesMHz[0][i] >= res.CurvesMHz[1][i] && res.CurvesMHz[1][i] >= res.CurvesMHz[2][i]) {
			t.Errorf("guarantee ordering broken at budget %v: %v %v %v",
				res.BudgetsPerDay[i], res.CurvesMHz[0][i], res.CurvesMHz[1][i], res.CurvesMHz[2][i])
		}
	}
	if res.KneePerDay <= 0 {
		t.Error("no knee found")
	}
}

func TestFigure4ARvsPersistence(t *testing.T) {
	res, err := RunFigure4(DefaultFigure4Params())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if res.EpsilonAR <= 0 || res.EpsilonPers <= 0 {
		t.Fatalf("degenerate epsilons: %+v", res)
	}
	// Paper shape (§5.4): the smoothed AR(6) one-hour forecast beats the
	// persistence benchmark (8.96% vs 9.44% on the paper's testbed).
	if res.EpsilonAR >= res.EpsilonPers {
		t.Errorf("AR epsilon %.4f not better than persistence %.4f",
			res.EpsilonAR, res.EpsilonPers)
	}
}

func TestFigure5RiskFreeBeatsEqualOnDownside(t *testing.T) {
	res, err := RunFigure5(DefaultFigure5Params())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.RiskFree) != res.Steps || len(res.Equal) != res.Steps {
		t.Fatalf("series lengths %d/%d", len(res.RiskFree), len(res.Equal))
	}
	// Paper shape: "downside risk could be improved by using the risk free
	// portfolio" — lower variance and a better worst case.
	if res.StdRF >= res.StdEQ {
		t.Errorf("risk-free stddev %.3f >= equal-share %.3f", res.StdRF, res.StdEQ)
	}
	if res.WorstRF <= res.WorstEQ {
		t.Errorf("risk-free worst %.3f <= equal-share %.3f", res.WorstRF, res.WorstEQ)
	}
	if res.P5RF <= res.P5EQ {
		t.Errorf("risk-free p5 %.3f <= equal-share %.3f", res.P5RF, res.P5EQ)
	}
}

func TestFigure5Validation(t *testing.T) {
	p := DefaultFigure5Params()
	p.Hosts = 1
	if _, err := RunFigure5(p); err == nil {
		t.Error("single host accepted")
	}
	p = DefaultFigure5Params()
	p.TrainFrac = 1
	if _, err := RunFigure5(p); err == nil {
		t.Error("train fraction 1 accepted")
	}
}

func TestFigure6Windows(t *testing.T) {
	p := DefaultFigure6Params()
	// Shrink for test speed: 30 h with hour/day/"30h" windows.
	p.Load.Hours = 30
	p.Windows = map[string]int{"hour": 360, "day": 8640, "alltime": 10800}
	res, err := RunFigure6(p)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	for _, w := range res.Windows {
		var sum float64
		for _, bk := range w.Buckets {
			sum += bk.Proportion
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("window %s proportions sum to %v", w.Name, sum)
		}
		if w.Moments.Count == 0 {
			t.Errorf("window %s saw no data", w.Name)
		}
	}
	// Windows are ordered smallest first (hour, day, alltime).
	if res.Windows[0].Name != "hour" || res.Windows[2].Name != "alltime" {
		t.Errorf("window order: %v, %v, %v", res.Windows[0].Name, res.Windows[1].Name, res.Windows[2].Name)
	}
}

func TestFigure7Approximation(t *testing.T) {
	res, err := RunFigure7(DefaultFigure7Params())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	for _, rep := range res.Reports {
		// Paper shape: "in general the approximations followed the actual
		// distributions closely".
		if rep.TotalVariation > 0.25 {
			t.Errorf("%s: TV distance %.3f too large", rep.Name, rep.TotalVariation)
		}
		if rep.ApproxMean == 0 || rep.ActualMean == 0 {
			t.Errorf("%s: degenerate means", rep.Name)
		}
		diff := rep.ApproxMean - rep.ActualMean
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.15*rep.ActualMean+0.05 {
			t.Errorf("%s: approx mean %.3f vs actual %.3f", rep.Name, rep.ApproxMean, rep.ActualMean)
		}
	}
}

func TestFigure7Validation(t *testing.T) {
	if _, err := RunFigure7(Figure7Params{Window: 5, Slots: 10}); err == nil {
		t.Error("tiny window accepted")
	}
}

func TestFigure4Validation(t *testing.T) {
	p := DefaultFigure4Params()
	p.Order = 0
	if _, err := RunFigure4(p); err == nil {
		t.Error("order 0 accepted")
	}
}

func TestFigure3Validation(t *testing.T) {
	p := DefaultFigure3Params()
	p.Guarantees = nil
	if _, err := RunFigure3(p); err == nil {
		t.Error("no guarantees accepted")
	}
}

func TestLoadIntensityModulation(t *testing.T) {
	p := DefaultLoadParams()
	p.Hours = 5
	quiet := 0
	p.Intensity = func(at time.Duration) float64 {
		if at > 2*time.Hour {
			quiet++
			return 0.001
		}
		return 1
	}
	res, err := RunLoad(p)
	if err != nil {
		t.Fatal(err)
	}
	if quiet == 0 {
		t.Error("intensity function never consulted in quiet phase")
	}
	if res.JobsSent == 0 {
		t.Error("no jobs in busy phase")
	}
}
