package experiment

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"tycoongrid/internal/agent"
	"tycoongrid/internal/bank"
)

// BestResponseParams configures the Table 1 / Table 2 scenario (§5.3): five
// competing users run the same bag-of-tasks application with (possibly)
// different funding, launched in sequence with a slight delay.
type BestResponseParams struct {
	World        WorldConfig
	Budgets      []bank.Amount // one per user; len must equal World.Users
	Deadline     time.Duration // bid deadline (the XRSL walltime)
	SubJobs      int           // chunks per user application
	ChunkMinutes float64       // CPU minutes per chunk at the reference speed
	MaxNodes     int           // XRSL count: concurrent VMs per user
	Stagger      time.Duration // delay between user submissions
	Horizon      time.Duration // simulation cut-off
	// GroupSizes partitions the user rows into report groups, e.g. [2, 3]
	// for the paper's "Users 1-2" / "Users 3-5" rows. Empty means group by
	// equal budgets.
	GroupSizes []int
}

// Table1Params returns the equal-funding scenario defaults.
func Table1Params() BestResponseParams {
	budgets := make([]bank.Amount, 5)
	for i := range budgets {
		budgets[i] = 100 * bank.Credit
	}
	return BestResponseParams{
		World:        PaperWorld(),
		Budgets:      budgets,
		Deadline:     8 * time.Hour,
		SubJobs:      60,
		ChunkMinutes: 25,
		MaxNodes:     15,
		Stagger:      2 * time.Minute,
		Horizon:      48 * time.Hour,
		GroupSizes:   []int{2, 3},
	}
}

// Table2Params returns the two-point funding scenario: 100, 100, 500, 500,
// 500 dollars with a 5.5 hour deadline.
func Table2Params() BestResponseParams {
	p := Table1Params()
	p.Budgets = []bank.Amount{
		100 * bank.Credit, 100 * bank.Credit,
		500 * bank.Credit, 500 * bank.Credit, 500 * bank.Credit,
	}
	p.Deadline = 5*time.Hour + 30*time.Minute
	return p
}

// UserRow is one user's measured outcome (one row of the paper's tables,
// before grouping).
type UserRow struct {
	User       string
	Budget     bank.Amount
	TimeHours  float64 // wall-clock task time
	CostPerH   float64 // credits spent per hour of task time
	LatencyMin float64 // mean sub-job latency, minutes
	Nodes      float64 // distinct hosts used
	Completed  int
	Total      int
}

// GroupRow aggregates users with identical funding, like the paper's
// "Users 1-2" / "Users 3-5" rows.
type GroupRow struct {
	Label      string
	Budget     bank.Amount
	TimeHours  float64
	CostPerH   float64
	LatencyMin float64
	Nodes      float64
}

// TableResult is the harness output for Table 1 or Table 2.
type TableResult struct {
	Rows   []UserRow
	Groups []GroupRow
}

// RunBestResponseTable runs the competing-users scenario.
func RunBestResponseTable(p BestResponseParams) (*TableResult, error) {
	if len(p.Budgets) != p.World.Users {
		return nil, fmt.Errorf("experiment: %d budgets for %d users", len(p.Budgets), p.World.Users)
	}
	if p.SubJobs <= 0 || p.ChunkMinutes <= 0 || p.MaxNodes <= 0 {
		return nil, errors.New("experiment: bad application shape")
	}
	w, err := NewWorld(p.World)
	if err != nil {
		return nil, err
	}
	jobs := make([]*agent.Job, len(w.Users))
	var submitErr error
	for i, u := range w.Users {
		i, u := i, u
		delay := time.Duration(i) * p.Stagger
		if _, err := w.Engine.After(delay, func() {
			job, err := w.SubmitApp(u, p.Budgets[i], p.Deadline, p.SubJobs, p.ChunkMinutes, p.MaxNodes)
			if err != nil && submitErr == nil {
				submitErr = fmt.Errorf("experiment: submitting for %s: %w", u.Name, err)
			}
			jobs[i] = job
		}); err != nil {
			return nil, err
		}
	}
	w.Engine.RunFor(p.Horizon)
	if submitErr != nil {
		return nil, submitErr
	}

	res := &TableResult{}
	for i, job := range jobs {
		if job == nil {
			return nil, fmt.Errorf("experiment: user %d never submitted", i+1)
		}
		row := UserRow{
			User:      w.Users[i].Name,
			Budget:    p.Budgets[i],
			Completed: job.Completed(),
			Total:     job.Total(),
		}
		if job.State == agent.StateDone {
			row.TimeHours = job.Duration().Hours()
			row.CostPerH = job.CostRate()
			row.LatencyMin = job.MeanLatency().Minutes()
			row.Nodes = float64(job.NodesUsed())
		}
		res.Rows = append(res.Rows, row)
	}
	res.Groups = groupRows(res.Rows, p.GroupSizes)
	return res, nil
}

// groupRows merges consecutive user rows. With explicit sizes the rows are
// partitioned accordingly; otherwise users with equal budgets are merged.
func groupRows(rows []UserRow, sizes []int) []GroupRow {
	var out []GroupRow
	i := 0
	k := 0
	for i < len(rows) {
		j := i
		if k < len(sizes) {
			j = i + sizes[k]
			if j > len(rows) {
				j = len(rows)
			}
			k++
		} else {
			for j < len(rows) && rows[j].Budget == rows[i].Budget {
				j++
			}
		}
		g := GroupRow{Budget: rows[i].Budget}
		if j-i == 1 {
			g.Label = fmt.Sprintf("%d", i+1)
		} else {
			g.Label = fmt.Sprintf("%d-%d", i+1, j)
		}
		n := float64(j - i)
		for _, r := range rows[i:j] {
			g.TimeHours += r.TimeHours / n
			g.CostPerH += r.CostPerH / n
			g.LatencyMin += r.LatencyMin / n
			g.Nodes += r.Nodes / n
		}
		out = append(out, g)
		i = j
	}
	return out
}

// String renders the result like the paper's tables.
func (r *TableResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %9s %14s %7s\n",
		"Users", "Budget($)", "Time(h)", "Cost($/h)", "Latency(min/j)", "Nodes")
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "%-8s %9s %9.2f %9.2f %14.2f %7.1f\n",
			g.Label, g.Budget, g.TimeHours, g.CostPerH, g.LatencyMin, g.Nodes)
	}
	return b.String()
}
