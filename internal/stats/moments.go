// Package stats implements the statistics layer of the paper's price
// prediction infrastructure (§4.5): exponentially smoothed moving-window
// moments about zero (mean, standard deviation, skewness, kurtosis) and the
// dual-array slot-table scheme that approximates the price distribution
// inside a moving time window.
//
// Each Auctioneer keeps one MovingMoments and one WindowDistribution per
// configured window (the paper uses an hour, a day and a week); both
// structures are O(1) per snapshot and never store the raw price series.
package stats

import (
	"fmt"
	"math"
)

// MovingMoments tracks the first four sample moments about zero inside a
// moving window of n snapshots using the paper's linear smoothing function
//
//	mu[0][p] = x0^p
//	mu[i][p] = alpha*mu[i-1][p] + (1-alpha)*xi^p,  alpha = 1 - 1/n.
//
// For window size 1 the previous moments are ignored, as the paper notes.
type MovingMoments struct {
	n     int
	alpha float64
	count int64
	mu    [4]float64 // moments about zero, p = 1..4
}

// NewMovingMoments returns a tracker for a window of n snapshots.
func NewMovingMoments(n int) (*MovingMoments, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: window size %d, want >= 1", n)
	}
	return &MovingMoments{n: n, alpha: 1 - 1/float64(n)}, nil
}

// WindowSize returns the configured window length in snapshots.
func (m *MovingMoments) WindowSize() int { return m.n }

// Count returns how many snapshots have been observed.
func (m *MovingMoments) Count() int64 { return m.count }

// Observe records a price snapshot.
func (m *MovingMoments) Observe(x float64) {
	xp := x
	if m.count == 0 {
		for p := 0; p < 4; p++ {
			m.mu[p] = xp
			xp *= x
		}
	} else {
		for p := 0; p < 4; p++ {
			m.mu[p] = m.alpha*m.mu[p] + (1-m.alpha)*xp
			xp *= x
		}
	}
	m.count++
}

// Moment returns the smoothed p-th moment about zero, p in 1..4.
func (m *MovingMoments) Moment(p int) float64 {
	if p < 1 || p > 4 {
		panic("stats: moment order out of range")
	}
	return m.mu[p-1]
}

// Mean returns the smoothed window mean.
func (m *MovingMoments) Mean() float64 { return m.mu[0] }

// StdDev returns the smoothed window standard deviation
// sigma = sqrt(mu2 - mu1^2). Smoothing can transiently make the radicand
// slightly negative; it is clamped at zero.
func (m *MovingMoments) StdDev() float64 {
	v := m.mu[1] - m.mu[0]*m.mu[0]
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// Variance returns the smoothed window variance.
func (m *MovingMoments) Variance() float64 {
	s := m.StdDev()
	return s * s
}

// Skewness returns the smoothed window skewness
// gamma1 = (mu3 - 3*mu1*mu2 + 2*mu1^3) / sigma^3.
// It returns 0 when the window variance vanishes.
func (m *MovingMoments) Skewness() float64 {
	s := m.StdDev()
	if s == 0 {
		return 0
	}
	mu1, mu2, mu3 := m.mu[0], m.mu[1], m.mu[2]
	return (mu3 - 3*mu1*mu2 + 2*mu1*mu1*mu1) / (s * s * s)
}

// Kurtosis returns the smoothed window excess kurtosis
// gamma2 = (mu4 - 4*mu3*mu1 + 6*mu2*mu1^2 - 3*mu1^4) / sigma^4 - 3.
// It returns 0 when the window variance vanishes.
func (m *MovingMoments) Kurtosis() float64 {
	s := m.StdDev()
	if s == 0 {
		return 0
	}
	mu1, mu2, mu3, mu4 := m.mu[0], m.mu[1], m.mu[2], m.mu[3]
	num := mu4 - 4*mu3*mu1 + 6*mu2*mu1*mu1 - 3*mu1*mu1*mu1*mu1
	return num/(s*s*s*s) - 3
}

// Snapshot bundles the four derived window statistics for reporting to the
// prediction clients.
type Snapshot struct {
	Mean     float64
	StdDev   float64
	Skewness float64
	Kurtosis float64
	Count    int64
}

// Snapshot returns the current derived statistics.
func (m *MovingMoments) Snapshot() Snapshot {
	return Snapshot{
		Mean:     m.Mean(),
		StdDev:   m.StdDev(),
		Skewness: m.Skewness(),
		Kurtosis: m.Kurtosis(),
		Count:    m.count,
	}
}

// Describe summarizes a raw sample (used by the experiment harnesses to
// report exact rather than smoothed statistics).
type Describe struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	Max      float64
	Skewness float64
	Kurtosis float64
}

// DescribeSample computes exact sample statistics of xs. An empty sample
// yields a zero Describe.
func DescribeSample(xs []float64) Describe {
	d := Describe{N: len(xs)}
	if d.N == 0 {
		return d
	}
	d.Min, d.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < d.Min {
			d.Min = x
		}
		if x > d.Max {
			d.Max = x
		}
	}
	d.Mean = sum / float64(d.N)
	var m2, m3, m4 float64
	for _, x := range xs {
		dx := x - d.Mean
		m2 += dx * dx
		m3 += dx * dx * dx
		m4 += dx * dx * dx * dx
	}
	m2 /= float64(d.N)
	m3 /= float64(d.N)
	m4 /= float64(d.N)
	d.StdDev = math.Sqrt(m2)
	if m2 > 0 {
		d.Skewness = m3 / math.Pow(m2, 1.5)
		d.Kurtosis = m4/(m2*m2) - 3
	}
	return d
}

// Percentile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs must be sorted ascending.
func Percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
