package stats

import (
	"math"
	"testing"
	"testing/quick"

	"tycoongrid/internal/mathx"
	"tycoongrid/internal/rng"
)

func TestNewSlotTableValidation(t *testing.T) {
	if _, err := NewSlotTable(1); err == nil {
		t.Error("want error for 1 slot")
	}
	if _, err := NewSlotTable(2); err != nil {
		t.Errorf("2 slots should be fine: %v", err)
	}
}

func TestSlotTableBasicCounting(t *testing.T) {
	st, _ := NewSlotTable(10)
	for i := 0; i < 100; i++ {
		st.Observe(1.0)
	}
	if st.Count() != 100 {
		t.Errorf("count = %v", st.Count())
	}
	props := st.Proportions()
	var sum float64
	for _, p := range props {
		sum += p
	}
	if !mathx.AlmostEqual(sum, 1, 1e-12) {
		t.Errorf("proportions sum to %v", sum)
	}
}

func TestSlotTableExpandsRange(t *testing.T) {
	st, _ := NewSlotTable(8)
	st.Observe(1)
	st.Observe(100) // far outside the seeded range
	st.Observe(-50)
	min, width := st.Bounds()
	if min > -50 {
		t.Errorf("min = %v should cover -50", min)
	}
	if min+width*8 < 100 {
		t.Errorf("range [%v, %v) should cover 100", min, min+width*8)
	}
	if st.Count() != 3 {
		t.Errorf("count = %v, expansion must not lose observations", st.Count())
	}
}

func TestSlotTableIgnoresNonFinite(t *testing.T) {
	st, _ := NewSlotTable(4)
	st.Observe(math.NaN())
	st.Observe(math.Inf(1))
	st.Observe(math.Inf(-1))
	if st.Count() != 0 {
		t.Error("non-finite prices must be dropped")
	}
	st.Observe(2)
	if st.Count() != 1 {
		t.Error("finite price after junk must count")
	}
}

func TestSlotTableZeroSeed(t *testing.T) {
	st, _ := NewSlotTable(4)
	st.Observe(0)
	_, width := st.Bounds()
	if width <= 0 {
		t.Errorf("width = %v after zero seed", width)
	}
}

func TestSlotTableResetKeepsRange(t *testing.T) {
	st, _ := NewSlotTable(4)
	st.Observe(10)
	st.Observe(20)
	minBefore, widthBefore := st.Bounds()
	st.Reset()
	if st.Count() != 0 {
		t.Error("reset should clear counts")
	}
	minAfter, widthAfter := st.Bounds()
	if minBefore != minAfter || widthBefore != widthAfter {
		t.Error("reset should keep learned range")
	}
}

func TestSlotTableProportionsSumToOneProperty(t *testing.T) {
	f := func(seed int64, kind uint8) bool {
		src := rng.New(seed)
		st, _ := NewSlotTable(16)
		n := 50 + src.Intn(200)
		for i := 0; i < n; i++ {
			var x float64
			switch kind % 3 {
			case 0:
				x = src.Normal(5, 2)
			case 1:
				x = src.Exponential(0.5)
			default:
				x = src.Uniform(-100, 100)
			}
			st.Observe(x)
		}
		var sum float64
		for _, p := range st.Proportions() {
			sum += p
		}
		return mathx.AlmostEqual(sum, 1, 1e-9) && st.Count() == float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSlotTableBuckets(t *testing.T) {
	st, _ := NewSlotTable(4)
	for _, x := range []float64{1, 1, 2, 3} {
		st.Observe(x)
	}
	bs := st.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %d", len(bs))
	}
	var sum float64
	for i, b := range bs {
		if b.Hi <= b.Lo {
			t.Errorf("bucket %d: Hi <= Lo", i)
		}
		sum += b.Proportion
	}
	if !mathx.AlmostEqual(sum, 1, 1e-12) {
		t.Errorf("bucket proportions sum to %v", sum)
	}
}

func TestWindowDistributionValidation(t *testing.T) {
	if _, err := NewWindowDistribution(0, 8); err == nil {
		t.Error("want error for window 0")
	}
	if _, err := NewWindowDistribution(5, 1); err == nil {
		t.Error("want error for 1 slot")
	}
}

func TestWindowDistributionWarmup(t *testing.T) {
	w, _ := NewWindowDistribution(10, 8)
	for i := 0; i < 5; i++ {
		w.Observe(1)
	}
	props := w.Proportions()
	var sum float64
	for _, p := range props {
		sum += p
	}
	if !mathx.AlmostEqual(sum, 1, 1e-9) {
		t.Errorf("warm-up proportions sum to %v", sum)
	}
}

func TestWindowDistributionProportionsAlwaysNormalized(t *testing.T) {
	src := rng.New(17)
	w, _ := NewWindowDistribution(20, 10)
	for i := 0; i < 500; i++ {
		w.Observe(src.Normal(0.5, 0.15))
		var sum float64
		for _, p := range w.Proportions() {
			sum += p
		}
		if !mathx.AlmostEqual(sum, 1, 1e-9) {
			t.Fatalf("step %d: proportions sum to %v", i, sum)
		}
	}
}

func TestWindowDistributionArrayRecycling(t *testing.T) {
	w, _ := NewWindowDistribution(5, 8)
	// After many observations both arrays must stay within [0, 2n).
	for i := 0; i < 100; i++ {
		w.Observe(float64(i))
		if w.na >= 2*w.n || w.nb >= 2*w.n {
			t.Fatalf("step %d: array counts na=%d nb=%d exceed 2n", i, w.na, w.nb)
		}
	}
	// Invariant from the paper after warm-up: |n1 - n2| = n.
	diff := w.na - w.nb
	if diff < 0 {
		diff = -diff
	}
	if diff != w.n {
		t.Errorf("|na-nb| = %d, want n = %d", diff, w.n)
	}
}

// TestWindowApproximationTracksActual is a miniature of the paper's Figure 7
// experiment: a distribution shift lag of half the window, uniform noise, and
// the approximation should still track the current distribution closely.
func TestWindowApproximationTracksActual(t *testing.T) {
	src := rng.New(42)
	const window = 200
	w, _ := NewWindowDistribution(window, 20)

	// Noise phase: uniform junk older than the window plus half-window lag.
	for i := 0; i < window/2; i++ {
		w.Observe(src.Uniform(0, 1))
	}
	// Signal phase: Normal(0.5, 0.15) for 2 windows so the signal dominates.
	actual := make([]float64, 0, 2*window)
	for i := 0; i < 2*window; i++ {
		x := src.Normal(0.5, 0.15)
		actual = append(actual, x)
		w.Observe(x)
	}

	// Compare approximated mean against the actual signal mean by
	// integrating the reported buckets.
	var mean float64
	for _, b := range w.Buckets() {
		mean += b.Proportion * (b.Lo + b.Hi) / 2
	}
	d := DescribeSample(actual)
	if !mathx.AlmostEqual(mean, d.Mean, 0.08) {
		t.Errorf("approximated mean %v vs actual %v", mean, d.Mean)
	}
}

func BenchmarkWindowDistributionObserve(b *testing.B) {
	w, _ := NewWindowDistribution(360, 20)
	for i := 0; i < b.N; i++ {
		w.Observe(float64(i%100) / 10)
	}
}
