package stats

import (
	"math"
	"sort"
	"testing"

	"tycoongrid/internal/mathx"
	"tycoongrid/internal/rng"
)

func TestNewMovingMomentsValidation(t *testing.T) {
	if _, err := NewMovingMoments(0); err == nil {
		t.Error("want error for window 0")
	}
	if _, err := NewMovingMoments(1); err != nil {
		t.Errorf("window 1 should be allowed: %v", err)
	}
}

func TestWindowOneIgnoresHistory(t *testing.T) {
	m, _ := NewMovingMoments(1)
	m.Observe(100)
	m.Observe(3)
	// With alpha = 0, previous moments are ignored: mean is the last price.
	if m.Mean() != 3 {
		t.Errorf("mean = %v, want 3", m.Mean())
	}
	if m.StdDev() != 0 {
		t.Errorf("stddev = %v, want 0 (single point)", m.StdDev())
	}
}

func TestMovingMomentsMatchRecurrence(t *testing.T) {
	n := 5
	m, _ := NewMovingMoments(n)
	alpha := 1 - 1/float64(n)
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var mu [4]float64
	for i, x := range xs {
		m.Observe(x)
		xp := x
		for p := 0; p < 4; p++ {
			if i == 0 {
				mu[p] = xp
			} else {
				mu[p] = alpha*mu[p] + (1-alpha)*xp
			}
			xp *= x
		}
	}
	for p := 1; p <= 4; p++ {
		if !mathx.AlmostEqual(m.Moment(p), mu[p-1], 1e-12) {
			t.Errorf("moment %d = %v, want %v", p, m.Moment(p), mu[p-1])
		}
	}
	if m.Count() != int64(len(xs)) {
		t.Errorf("count = %d", m.Count())
	}
}

func TestMovingMomentsConstantSeries(t *testing.T) {
	m, _ := NewMovingMoments(10)
	for i := 0; i < 100; i++ {
		m.Observe(7)
	}
	if !mathx.AlmostEqual(m.Mean(), 7, 1e-12) {
		t.Errorf("mean = %v", m.Mean())
	}
	if m.StdDev() > 1e-6 {
		t.Errorf("stddev = %v, want ~0", m.StdDev())
	}
	if m.Skewness() != 0 || m.Kurtosis() != 0 {
		t.Error("degenerate sigma should yield zero skewness/kurtosis")
	}
}

func TestMovingMomentsConvergeToDistribution(t *testing.T) {
	// Feed a long i.i.d. normal stream: the smoothed window stats must land
	// near the true distribution's moments.
	src := rng.New(99)
	m, _ := NewMovingMoments(2000)
	for i := 0; i < 200000; i++ {
		m.Observe(src.Normal(10, 2))
	}
	if !mathx.AlmostEqual(m.Mean(), 10, 0.2) {
		t.Errorf("mean = %v, want ~10", m.Mean())
	}
	if !mathx.AlmostEqual(m.StdDev(), 2, 0.2) {
		t.Errorf("stddev = %v, want ~2", m.StdDev())
	}
	if math.Abs(m.Skewness()) > 0.25 {
		t.Errorf("skewness = %v, want ~0", m.Skewness())
	}
	if math.Abs(m.Kurtosis()) > 0.5 {
		t.Errorf("kurtosis = %v, want ~0", m.Kurtosis())
	}
}

func TestMovingMomentsSkewedDistribution(t *testing.T) {
	// Exp(1) has skewness 2 and excess kurtosis 6.
	src := rng.New(123)
	m, _ := NewMovingMoments(5000)
	for i := 0; i < 400000; i++ {
		m.Observe(src.Exponential(1))
	}
	if !mathx.AlmostEqual(m.Skewness(), 2, 0.4) {
		t.Errorf("skewness = %v, want ~2", m.Skewness())
	}
	if !mathx.AlmostEqual(m.Kurtosis(), 6, 2.0) {
		t.Errorf("kurtosis = %v, want ~6", m.Kurtosis())
	}
}

func TestMomentPanicsOutOfRange(t *testing.T) {
	m, _ := NewMovingMoments(3)
	m.Observe(1)
	for _, p := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Moment(%d) did not panic", p)
				}
			}()
			m.Moment(p)
		}()
	}
}

func TestSnapshotBundles(t *testing.T) {
	m, _ := NewMovingMoments(4)
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Observe(x)
	}
	s := m.Snapshot()
	if s.Mean != m.Mean() || s.StdDev != m.StdDev() ||
		s.Skewness != m.Skewness() || s.Kurtosis != m.Kurtosis() || s.Count != 5 {
		t.Error("snapshot fields do not match accessors")
	}
}

func TestDescribeSample(t *testing.T) {
	d := DescribeSample([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if d.N != 8 || d.Mean != 5 || !mathx.AlmostEqual(d.StdDev, 2, 1e-12) {
		t.Errorf("describe = %+v", d)
	}
	if d.Min != 2 || d.Max != 9 {
		t.Errorf("min/max = %v/%v", d.Min, d.Max)
	}
	if DescribeSample(nil).N != 0 {
		t.Error("empty sample")
	}
}

func TestDescribeSampleMomentsOfNormal(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = src.Normal(0, 1)
	}
	d := DescribeSample(xs)
	if math.Abs(d.Skewness) > 0.05 || math.Abs(d.Kurtosis) > 0.1 {
		t.Errorf("normal sample skew=%v kurt=%v", d.Skewness, d.Kurtosis)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	sort.Float64s(xs)
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	// Interpolation between order statistics.
	if got := Percentile([]float64{0, 10}, 0.35); !mathx.AlmostEqual(got, 3.5, 1e-12) {
		t.Errorf("interpolated percentile = %v", got)
	}
}

func BenchmarkMovingMomentsObserve(b *testing.B) {
	m, _ := NewMovingMoments(360)
	for i := 0; i < b.N; i++ {
		m.Observe(float64(i % 17))
	}
}
