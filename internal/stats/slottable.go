package stats

import (
	"fmt"
	"math"
)

// SlotTable is the paper's "self-adjusting slot table recording the
// proportion of prices that fall into certain ranges". It is a fixed-slot
// histogram whose covered range doubles (rebinning existing counts) whenever
// a price lands outside it, so no a-priori knowledge of the price range is
// needed.
type SlotTable struct {
	slots []float64 // counts per slot
	min   float64   // inclusive lower bound of slot 0
	width float64   // width of each slot
	n     float64   // total observations
	init  bool
}

// NewSlotTable returns a table with the given number of slots. The range is
// seeded by the first observation.
func NewSlotTable(slots int) (*SlotTable, error) {
	if slots < 2 {
		return nil, fmt.Errorf("stats: slot table needs >= 2 slots, got %d", slots)
	}
	return &SlotTable{slots: make([]float64, slots)}, nil
}

// Slots returns the number of slots.
func (t *SlotTable) Slots() int { return len(t.slots) }

// Count returns the number of observations recorded.
func (t *SlotTable) Count() float64 { return t.n }

// Reset clears all observations but keeps the learned range, so a recycled
// window array starts with sensible bins.
func (t *SlotTable) Reset() {
	for i := range t.slots {
		t.slots[i] = 0
	}
	t.n = 0
}

// Observe records one price.
func (t *SlotTable) Observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return // defensive: corrupt snapshots must not poison the table
	}
	if !t.init {
		// Seed a range around the first value. A zero first price gets a
		// unit-width seed so the width is non-degenerate.
		span := math.Abs(x)
		if span == 0 {
			span = 1
		}
		t.min = x - span/2
		t.width = span / float64(len(t.slots))
		t.init = true
	}
	for x < t.min || x >= t.min+t.width*float64(len(t.slots)) {
		t.expand(x)
	}
	idx := int((x - t.min) / t.width)
	if idx == len(t.slots) { // guard float edge
		idx--
	}
	t.slots[idx]++
	t.n++
}

// expand doubles the covered range toward x, rebinning existing counts.
// Counts land in the slot containing their old slot's midpoint; with the
// range doubling, two old slots merge into one new slot.
func (t *SlotTable) expand(x float64) {
	k := len(t.slots)
	oldMin, oldWidth := t.min, t.width
	newWidth := oldWidth * 2
	var newMin float64
	if x < oldMin {
		// Grow downward.
		newMin = oldMin - oldWidth*float64(k)
	} else {
		// Grow upward.
		newMin = oldMin
	}
	newSlots := make([]float64, k)
	for i, c := range t.slots {
		if c == 0 {
			continue
		}
		mid := oldMin + (float64(i)+0.5)*oldWidth
		j := int((mid - newMin) / newWidth)
		if j < 0 {
			j = 0
		}
		if j >= k {
			j = k - 1
		}
		newSlots[j] += c
	}
	t.slots = newSlots
	t.min = newMin
	t.width = newWidth
}

// Proportions returns s_j, the fraction of observations in each slot. An
// empty table yields all zeros.
func (t *SlotTable) Proportions() []float64 {
	out := make([]float64, len(t.slots))
	if t.n == 0 {
		return out
	}
	for i, c := range t.slots {
		out[i] = c / t.n
	}
	return out
}

// Bounds returns the lower edge of slot j and the slot width.
func (t *SlotTable) Bounds() (min, width float64) { return t.min, t.width }

// Bucket describes one reported slot: its price range and the proportion of
// observations inside it.
type Bucket struct {
	Lo, Hi     float64
	Proportion float64
}

// Buckets renders the table as labeled buckets for reporting.
func (t *SlotTable) Buckets() []Bucket {
	props := t.Proportions()
	out := make([]Bucket, len(props))
	for i, p := range props {
		out[i] = Bucket{
			Lo:         t.min + t.width*float64(i),
			Hi:         t.min + t.width*float64(i+1),
			Proportion: p,
		}
	}
	return out
}

// WindowDistribution approximates the price distribution within a moving
// window of n snapshots using the paper's dual-array scheme: two slot tables
// that each collect up to 2n snapshots with a mutual time lag of n. The
// reported distribution merges both arrays with weights proportional to how
// close each is to holding exactly n snapshots:
//
//	w1 = 1 - |n1 - n| / n,   r_j = w1*s1_j + (1-w1)*s2_j.
type WindowDistribution struct {
	n     int
	a, b  *SlotTable
	na    int // snapshots currently in a
	nb    int // snapshots currently in b
	seen  int // total snapshots observed
	slots int
}

// NewWindowDistribution returns a distribution tracker for a window of n
// snapshots using the given number of slots per array.
func NewWindowDistribution(n, slots int) (*WindowDistribution, error) {
	if n < 1 {
		return nil, fmt.Errorf("stats: window size %d, want >= 1", n)
	}
	a, err := NewSlotTable(slots)
	if err != nil {
		return nil, err
	}
	b, err := NewSlotTable(slots)
	if err != nil {
		return nil, err
	}
	return &WindowDistribution{n: n, a: a, b: b, slots: slots}, nil
}

// WindowSize returns n.
func (w *WindowDistribution) WindowSize() int { return w.n }

// Observe records one price snapshot into both arrays, maintaining the
// invariant |n1 - n2| = n (after warm-up): array B starts collecting n
// snapshots after A, and an array that reaches 2n snapshots is reset.
func (w *WindowDistribution) Observe(x float64) {
	w.a.Observe(x)
	w.na++
	if w.seen >= w.n {
		w.b.Observe(x)
		w.nb++
	}
	w.seen++
	if w.na >= 2*w.n {
		w.a.Reset()
		w.na = 0
	}
	if w.nb >= 2*w.n {
		w.b.Reset()
		w.nb = 0
	}
}

// Proportions returns the merged window distribution r_j. During warm-up
// (fewer than n snapshots seen) it reports array A alone.
func (w *WindowDistribution) Proportions() []float64 {
	if w.seen < w.n || w.nb == 0 {
		return w.a.Proportions()
	}
	w1 := 1 - math.Abs(float64(w.na-w.n))/float64(w.n)
	if w1 < 0 {
		w1 = 0
	}
	if w1 > 1 {
		w1 = 1
	}
	s1 := w.a.Proportions()
	s2 := w.b.Proportions()
	// The two arrays can have different learned ranges; merge on a common
	// grid spanning both.
	return mergeOnCommonGrid(w.a, w.b, s1, s2, w1, w.slots)
}

// Buckets reports the merged distribution with price-range labels.
func (w *WindowDistribution) Buckets() []Bucket {
	props := w.Proportions()
	lo, width := w.grid()
	out := make([]Bucket, len(props))
	for i, p := range props {
		out[i] = Bucket{Lo: lo + width*float64(i), Hi: lo + width*float64(i+1), Proportion: p}
	}
	return out
}

// grid returns the common reporting grid spanning both arrays.
func (w *WindowDistribution) grid() (lo, width float64) {
	aMin, aW := w.a.Bounds()
	bMin, bW := w.b.Bounds()
	aMax := aMin + aW*float64(w.slots)
	bMax := bMin + bW*float64(w.slots)
	lo = math.Min(aMin, bMin)
	hi := math.Max(aMax, bMax)
	if w.nb == 0 || w.seen < w.n {
		lo, hi = aMin, aMax
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, (hi - lo) / float64(w.slots)
}

func mergeOnCommonGrid(a, b *SlotTable, s1, s2 []float64, w1 float64, slots int) []float64 {
	aMin, aW := a.Bounds()
	bMin, bW := b.Bounds()
	lo := math.Min(aMin, bMin)
	hi := math.Max(aMin+aW*float64(slots), bMin+bW*float64(slots))
	if hi <= lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(slots)
	out := make([]float64, slots)
	put := func(min, w float64, props []float64, weight float64) {
		for i, p := range props {
			if p == 0 {
				continue
			}
			mid := min + (float64(i)+0.5)*w
			j := int((mid - lo) / width)
			if j < 0 {
				j = 0
			}
			if j >= slots {
				j = slots - 1
			}
			out[j] += weight * p
		}
	}
	put(aMin, aW, s1, w1)
	put(bMin, bW, s2, 1-w1)
	return out
}
