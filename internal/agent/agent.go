// Package agent implements the paper's scheduling agent (§2.3, §3): the
// resource-broker side of the Grid market integration. The agent verifies a
// job's transfer token, creates a funded sub-account, runs the Best Response
// algorithm to distribute bids over candidate hosts, creates virtual
// machines by starting tasks, monitors sub-jobs, supports performance
// boosting with additional funds, and refunds unspent balances when the job
// completes — "job stage-in, execution, monitoring, performance boosting (by
// adding funds) and stage-out are all handled by the agent".
package agent

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"time"

	"tycoongrid/internal/auction"
	"tycoongrid/internal/bank"
	"tycoongrid/internal/core"
	"tycoongrid/internal/grid"
	"tycoongrid/internal/pki"
	"tycoongrid/internal/predict"
	"tycoongrid/internal/pricefeed"
	"tycoongrid/internal/sim"
	"tycoongrid/internal/strategy"
	"tycoongrid/internal/token"
	"tycoongrid/internal/tracing"
	"tycoongrid/internal/xrsl"
)

// JobState is a job's lifecycle state.
type JobState int

// Job lifecycle states.
const (
	StateRunning JobState = iota
	StateDone
	StateFailed
)

// String renders the state.
func (s JobState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SubJob tracks one chunk's execution. A chunk whose host crashed is marked
// Failed and its work re-queued; the resubmission appears as a fresh SubJob
// record, so the history of where each attempt ran is preserved.
type SubJob struct {
	Index   int
	Host    string
	TaskID  string
	Started time.Time
	Done    time.Time
	Failed  bool // host crashed mid-run; chunk was re-queued
}

// Latency returns the sub-job's wall-clock duration (zero until done).
func (s SubJob) Latency() time.Duration {
	if s.Done.IsZero() {
		return 0
	}
	return s.Done.Sub(s.Started)
}

// Job is one submitted grid task (a batch of sub-jobs).
type Job struct {
	ID         string
	DN         pki.DN
	SubAccount bank.AccountID
	Budget     bank.Amount
	Deadline   time.Time
	Submitted  time.Time
	State      JobState

	Hosts   []string // hosts funded by the best response placement
	SubJobs []SubJob
	Charged bank.Amount // money actually paid to hosts

	// OnComplete, when set before the job finishes, fires once when the
	// last sub-job completes (after refunds are issued). The ARC layer uses
	// it to trigger stage-out.
	OnComplete func(*Job)
	// OnFail fires once when the job terminates as failed (every funded
	// host died, the deadline passed with work outstanding, or it was
	// cancelled), after the unspent balance has been refunded. FailReason
	// says why.
	OnFail     func(*Job)
	FailReason string

	// Span is the job's lifecycle span, inherited from the scope active at
	// Submit (the arc layer's job.lifecycle span). The agent appends its
	// market decisions — funding, bids, placements, preemptions, failovers —
	// as events here, with prices and escrow balances attached; nil-safe
	// when tracing is off.
	Span *tracing.Span

	chunks  []float64 // remaining chunk sizes (MHz-seconds), FIFO
	envs    []string
	busy    map[string]bool // host -> has a running sub-job of this job
	done    int
	total   int
	endedAt time.Time
}

// Completed reports how many sub-jobs have finished.
func (j *Job) Completed() int { return j.done }

// Total returns the number of sub-jobs.
func (j *Job) Total() int { return j.total }

// Duration returns submission-to-last-completion wall time (zero while
// running).
func (j *Job) Duration() time.Duration {
	if j.endedAt.IsZero() {
		return 0
	}
	return j.endedAt.Sub(j.Submitted)
}

// MeanLatency returns the average completed sub-job latency.
func (j *Job) MeanLatency() time.Duration {
	var sum time.Duration
	n := 0
	for _, s := range j.SubJobs {
		if !s.Done.IsZero() {
			sum += s.Latency()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// NodesUsed returns the number of distinct hosts that ran sub-jobs.
func (j *Job) NodesUsed() int {
	seen := map[string]bool{}
	for _, s := range j.SubJobs {
		seen[s.Host] = true
	}
	return len(seen)
}

// CostRate returns charged credits per hour of job wall time — the paper's
// "Cost($/h)" column.
func (j *Job) CostRate() float64 {
	d := j.Duration()
	if d <= 0 {
		return 0
	}
	return j.Charged.Credits() / d.Hours()
}

// Ledger is the banking surface the agent needs: account creation, job
// sub-accounts, balance reads and owner-authorized moves. *bank.Bank
// satisfies it, and so does marketplane.ShardedBank — the agent neither
// knows nor cares how accounts are partitioned across bank shards.
type Ledger interface {
	CreateAccount(id bank.AccountID, owner ed25519.PublicKey) (*bank.Account, error)
	CreateSubAccount(parent bank.AccountID, child string, owner ed25519.PublicKey) (*bank.Account, error)
	Balance(id bank.AccountID) (bank.Amount, error)
	MoveInternal(owner *pki.Identity, from, to bank.AccountID, amount bank.Amount, kind bank.EntryKind, memo string) error
}

// Config wires an Agent.
type Config struct {
	Cluster  *grid.Cluster
	Bank     Ledger
	Identity *pki.Identity  // broker identity (owns the broker account)
	Account  bank.AccountID // broker bank account tokens pay into
	Verifier *token.Verifier
	// HostOwnerAccount maps a host to the account its earnings accrue to.
	// Defaults to one shared "grid-earnings" account created on first use.
	HostOwnerAccount func(hostID string) bank.AccountID
	// Hosts restricts this agent to a subset of the cluster's hosts — the
	// paper's partitioned-agent deployment ("the agent itself can be
	// replicated and partitioned to pick up a different set of compute
	// nodes", §3). Empty means the whole cluster.
	Hosts []string
	// Tracer supplies the job-lifecycle scope (and receives the agent's
	// scoped teardown pushes). Nil means tracing.Default(). Replicated
	// experiments give each world its own tracer so concurrently running
	// worlds never share a scope stack.
	Tracer *tracing.Tracer
	// JobIDPrefix names this agent's jobs ("<prefix>-0001", ...). Partitioned
	// deployments sharing one broker account must use distinct prefixes so
	// their job sub-accounts never collide. Empty means "job", preserving the
	// historical single-agent IDs.
	JobIDPrefix string
	// FeedCapacity bounds the per-host price-history ring the agent records
	// from the auction clears. 0 means pricefeed.DefaultCapacity.
	FeedCapacity int
	// Streaming names a streaming predictor family (predict.StreamingAR,
	// predict.StreamingNormal, predict.StreamingWindow) to colocate with the
	// price feed: one predictor per partition host, attached as a ring sink
	// and updated incrementally on every auction clear, so matchmaking reads
	// forecasts through ForecastHandle instead of refitting from a copied
	// history per decision. Empty disables streaming (the legacy batch path).
	Streaming string
	// BidSplit, when set, is consulted before Best Response: if it accepts
	// (returns allocations), the job's budget is split by its weights instead
	// of the KKT solution — the paper's §4.4 portfolio bidding. On decline
	// (nil, nil) or error the agent falls back to Best Response.
	BidSplit strategy.BidSplitter
}

// Agent is the broker-side scheduler. Not safe for concurrent use; it runs
// inside the simulation's single-threaded event loop.
type Agent struct {
	cfg      Config
	jobs     map[string]*Job
	byBidder map[auction.BidderID]*Job
	seq      int
	earnings bank.AccountID
	pump     *sim.Ticker
	feed     *pricefeed.Hub
	stream   *predict.FeedForecasts // nil unless Config.Streaming is set
}

// Errors returned by the agent.
var (
	ErrUnknownJob = errors.New("agent: unknown job")
	ErrJobDone    = errors.New("agent: job already finished")
	ErrNoBudget   = errors.New("agent: token amount too small to fund any host")
	// ErrHoldBack is returned when the job's minhosts threshold (paper
	// §5.3's proposed hold-back policy) cannot be met; the job's funds are
	// refunded in full.
	ErrHoldBack = errors.New("agent: best response funded fewer hosts than minhosts")
)

// New creates an agent and installs its charge/refund hooks on the cluster.
func New(cfg Config) (*Agent, error) {
	if cfg.Cluster == nil || cfg.Bank == nil || cfg.Identity == nil || cfg.Verifier == nil {
		return nil, errors.New("agent: incomplete configuration")
	}
	if cfg.Account == "" {
		return nil, errors.New("agent: empty broker account")
	}
	if cfg.Tracer == nil {
		cfg.Tracer = tracing.Default()
	}
	if cfg.JobIDPrefix == "" {
		cfg.JobIDPrefix = "job"
	}
	if cfg.FeedCapacity <= 0 {
		cfg.FeedCapacity = pricefeed.DefaultCapacity
	}
	a := &Agent{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		byBidder: make(map[auction.BidderID]*Job),
		feed:     pricefeed.NewHub(cfg.FeedCapacity),
	}
	// Record every auction clear of this agent's partition into the price
	// feed; the histories drive the prediction strategies and portfolio bid
	// splitting.
	for _, id := range a.hostIDs() {
		h, err := cfg.Cluster.Host(id)
		if err != nil {
			return nil, fmt.Errorf("agent: partition host %q: %w", id, err)
		}
		h.Market.Observe(a.feed.Observer(id))
	}
	// Colocate streaming predictors with the feed: attached before the first
	// clear, each sees the exact sample stream its host's ring records.
	if cfg.Streaming != "" {
		stream, err := predict.AttachHub(a.feed, cfg.Streaming, predict.PredictorConfig{
			Window: cfg.FeedCapacity,
			Step:   cfg.Cluster.Interval(),
		}, a.hostIDs()...)
		if err != nil {
			return nil, fmt.Errorf("agent: streaming predictor: %w", err)
		}
		a.stream = stream
	}
	// Route market charges to bank transfers: sub-account -> host earnings.
	// Chain rather than replace any existing hook, so replicated agents
	// (paper §3: "the agent itself can be replicated and partitioned") can
	// share one cluster — each ignores bidders it does not manage.
	if prev := cfg.Cluster.OnCharge; prev != nil {
		cfg.Cluster.OnCharge = func(hostID string, ch auction.Charge) {
			prev(hostID, ch)
			a.onCharge(hostID, ch)
		}
	} else {
		cfg.Cluster.OnCharge = a.onCharge
	}
	// Subscribe to host failures the same way, so killed chunks are
	// resubmitted and freed escrow re-bid on surviving hosts.
	if prev := cfg.Cluster.OnHostFailure; prev != nil {
		cfg.Cluster.OnHostFailure = func(f grid.HostFailure) {
			prev(f)
			a.onHostFailure(f)
		}
	} else {
		cfg.Cluster.OnHostFailure = a.onHostFailure
	}
	return a, nil
}

// event appends a lifecycle event to job's span, stamped with engine time so
// the timeline reads in simulated time. No-op (one nil check) when the job
// has no recording span.
func (a *Agent) event(job *Job, name string, attrs ...tracing.Attr) {
	if !job.Span.Recording() {
		return
	}
	job.Span.AddEventAt(a.cfg.Cluster.Engine().Now(), name, attrs...)
}

// escrowAttr snapshots the job sub-account's balance — the escrow backing
// its outstanding bids — for timeline events.
func (a *Agent) escrowAttr(job *Job) tracing.Attr {
	bal, err := a.cfg.Bank.Balance(job.SubAccount)
	if err != nil {
		return tracing.String("escrow", "unknown")
	}
	return tracing.String("escrow", bal.String())
}

func (a *Agent) earningsAccount(hostID string) bank.AccountID {
	if a.cfg.HostOwnerAccount != nil {
		return a.cfg.HostOwnerAccount(hostID)
	}
	if a.earnings == "" {
		a.earnings = "grid-earnings"
		if _, err := a.cfg.Bank.CreateAccount(a.earnings, a.cfg.Identity.Public()); err != nil &&
			!errors.Is(err, bank.ErrDuplicateAccount) {
			panic(fmt.Sprintf("agent: creating earnings account: %v", err))
		}
	}
	return a.earnings
}

// onCharge moves real money for every market charge.
func (a *Agent) onCharge(hostID string, ch auction.Charge) {
	job, ok := a.byBidder[ch.Bidder]
	if !ok {
		return // bidder not managed by this agent
	}
	dest := a.earningsAccount(hostID)
	if err := a.cfg.Bank.MoveInternal(a.cfg.Identity, bank.AccountID(ch.Bidder), dest,
		ch.Amount, bank.EntryCharge, "cpu "+hostID); err != nil {
		// The sub-account holds the full verified budget and market charges
		// never exceed placed bids, so this indicates an internal bug.
		panic(fmt.Sprintf("agent: charging %s: %v", ch.Bidder, err))
	}
	job.Charged += ch.Amount
}

// Submit verifies tok, funds a sub-account, distributes bids with Best
// Response, and starts the job's sub-jobs. chunkWork lists each sub-job's
// size in MHz-seconds; jr.Count caps concurrent hosts.
func (a *Agent) Submit(tok token.Token, jr *xrsl.JobRequest, chunkWork []float64) (*Job, error) {
	if jr == nil || len(chunkWork) == 0 {
		return nil, errors.New("agent: empty job")
	}
	now := a.cfg.Cluster.Engine().Now()
	amount, err := a.cfg.Verifier.Verify(tok, now)
	if err != nil {
		mTokenRejections.Inc()
		return nil, fmt.Errorf("agent: token rejected: %w", err)
	}
	mTokenRedemptions.Inc()

	a.seq++
	jobID := fmt.Sprintf("%s-%04d", a.cfg.JobIDPrefix, a.seq)
	sub, err := a.cfg.Bank.CreateSubAccount(a.cfg.Account, jobID, a.cfg.Identity.Public())
	if err != nil {
		return nil, fmt.Errorf("agent: sub-account: %w", err)
	}
	if err := a.cfg.Bank.MoveInternal(a.cfg.Identity, a.cfg.Account, sub.ID, amount,
		bank.EntryTransfer, "fund "+jobID); err != nil {
		return nil, fmt.Errorf("agent: funding sub-account: %w", err)
	}

	deadline := now.Add(jr.Deadline())
	job := &Job{
		ID:         jobID,
		DN:         tok.GridDN,
		SubAccount: sub.ID,
		Budget:     amount,
		Deadline:   deadline,
		Submitted:  now,
		State:      StateRunning,
		Span:       a.cfg.Tracer.Current(),
		chunks:     append([]float64(nil), chunkWork...),
		envs:       jr.RuntimeEnvs,
		busy:       make(map[string]bool),
		total:      len(chunkWork),
	}
	a.event(job, "funded",
		tracing.String("sub_account", string(sub.ID)),
		tracing.String("budget", amount.String()),
		a.escrowAttr(job))

	if err := a.placeBids(job, jr.Count); err != nil {
		a.unwind(job)
		return nil, err
	}
	// The paper's hold-back policy: if the market is too expensive to fund
	// the required number of hosts, do not start at all — refund instead of
	// delivering degraded QoS.
	if jr.MinHosts > 0 && len(job.Hosts) < jr.MinHosts {
		a.unwind(job)
		return nil, fmt.Errorf("%w: funded %d, need %d", ErrHoldBack, len(job.Hosts), jr.MinHosts)
	}
	a.jobs[jobID] = job
	a.byBidder[auction.BidderID(sub.ID)] = job

	// Launch the first wave: one sub-job per funded host. Hosts whose VM
	// slots are all taken right now are fine — the pump ticker retries
	// queued chunks every reallocation interval.
	for _, h := range job.Hosts {
		if len(job.chunks) == 0 {
			break
		}
		a.startChunk(job, h)
	}
	a.ensurePump()
	return job, nil
}

// ensurePump starts the retry ticker that re-attempts queued chunks (e.g.
// after a host's VM limit rejected them) once per reallocation interval, and
// enforces deadlines: a job past its deadline with work outstanding can
// never finish (its bids have expired, so tasks run at zero share), so it is
// failed and refunded rather than left running forever.
func (a *Agent) ensurePump() {
	if a.pump != nil {
		return
	}
	t, err := a.cfg.Cluster.Engine().Every(a.cfg.Cluster.Interval(), func() {
		now := a.cfg.Cluster.Engine().Now()
		for _, id := range a.jobIDs() {
			job := a.jobs[id]
			if job.State != StateRunning {
				continue
			}
			if now.After(job.Deadline) && job.done < job.total {
				a.failJob(job, "deadline exceeded")
				continue
			}
			if len(job.chunks) == 0 {
				continue
			}
			for _, h := range job.Hosts {
				if len(job.chunks) == 0 {
					break
				}
				a.startChunk(job, h)
			}
		}
	})
	if err != nil {
		panic(fmt.Sprintf("agent: starting pump: %v", err))
	}
	a.pump = t
}

// jobIDs returns all job ids sorted, for deterministic iteration.
func (a *Agent) jobIDs() []string {
	ids := make([]string, 0, len(a.jobs))
	for id := range a.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// placeBids runs Best Response over the cluster's hosts and enters bids for
// the job's sub-account.
func (a *Agent) placeBids(job *Job, count int) error {
	cl := a.cfg.Cluster
	bidder := auction.BidderID(job.SubAccount)
	now := cl.Engine().Now()
	horizon := job.Deadline.Sub(now).Seconds()
	if horizon <= 0 {
		return errors.New("agent: deadline already passed")
	}

	var hosts []core.Host
	for _, id := range a.hostIDs() {
		h, err := cl.Host(id)
		if err != nil {
			return err
		}
		if h.Down() {
			continue // a failed host cannot take bids
		}
		hosts = append(hosts, core.Host{
			ID:         id,
			Preference: h.Market.CapacityMHz(),
			Price:      h.Market.PriceExcluding(bidder),
		})
	}
	budgetRate := job.Budget.Credits() / horizon
	allocs, split := a.splitBids(job, budgetRate, hosts)
	if allocs == nil {
		br, err := core.BestResponse(budgetRate, hosts)
		if err != nil {
			return fmt.Errorf("agent: best response: %w", err)
		}
		allocs = br
	}
	if count > 0 && len(allocs) > count {
		if split {
			// Keep the portfolio's top-weighted hosts and rescale so the full
			// budget still follows the weights; Rebalance would re-run Best
			// Response and discard them.
			allocs = rescale(core.TopN(allocs, count), budgetRate)
		} else {
			rb, err := core.Rebalance(budgetRate, core.TopNByUtility(allocs, count))
			if err != nil {
				return fmt.Errorf("agent: rebalance: %w", err)
			}
			allocs = rb
		}
	}
	var allocated bank.Amount
	for _, al := range allocs {
		budget, err := bank.FromCredits(al.Bid * horizon)
		if err != nil || budget <= 0 {
			continue
		}
		// Rounding each host budget to the nearest microcredit can push the
		// total past the verified amount; never bid more than the
		// sub-account holds.
		if allocated+budget > job.Budget {
			budget = job.Budget - allocated
		}
		if budget <= 0 {
			break
		}
		if _, err := cl.PlaceBid(al.Host.ID, bidder, budget, job.Deadline); err != nil {
			return fmt.Errorf("agent: bidding on %s: %w", al.Host.ID, err)
		}
		allocated += budget
		job.Hosts = append(job.Hosts, al.Host.ID)
		a.event(job, "bid",
			tracing.String("host", al.Host.ID),
			tracing.String("amount", budget.String()),
			tracing.String("price", fmt.Sprintf("%.6f", al.Host.Price)))
	}
	sort.Strings(job.Hosts)
	if len(job.Hosts) == 0 {
		return ErrNoBudget
	}
	return nil
}

// splitBids consults the configured BidSplitter, handing it each host's
// recorded price history. A decline (no splitter, nil result, or error)
// returns nil allocations and the caller falls back to Best Response.
func (a *Agent) splitBids(job *Job, budgetRate float64, hosts []core.Host) ([]core.Allocation, bool) {
	if a.cfg.BidSplit == nil {
		return nil, false
	}
	allocs, err := a.cfg.BidSplit.Split(budgetRate, hosts, func(id string) []float64 {
		return a.feed.History(id, 0)
	})
	if err != nil || len(allocs) == 0 {
		return nil, false
	}
	mBidSplits.Inc()
	a.event(job, "bid-split",
		tracing.String("splitter", a.cfg.BidSplit.Name()),
		tracing.String("hosts", fmt.Sprintf("%d/%d", len(allocs), len(hosts))))
	return allocs, true
}

// rescale scales kept allocations so their bids again sum to budgetRate.
func rescale(allocs []core.Allocation, budgetRate float64) []core.Allocation {
	var total float64
	for _, al := range allocs {
		total += al.Bid
	}
	if total <= 0 {
		return allocs
	}
	out := make([]core.Allocation, len(allocs))
	copy(out, allocs)
	for i := range out {
		out[i].Bid *= budgetRate / total
	}
	return out
}

// startChunk pops the next chunk and runs it on host. One concurrent
// sub-job per host per job keeps the paper's one-VM-per-user-per-machine
// restriction.
func (a *Agent) startChunk(job *Job, host string) {
	if len(job.chunks) == 0 || job.busy[host] {
		return
	}
	work := job.chunks[0]
	idx := job.total - len(job.chunks)
	bidder := auction.BidderID(job.SubAccount)
	t, err := a.cfg.Cluster.StartTask(host, bidder, job.envs, work, func(t *grid.Task) {
		a.onTaskDone(job, host, t)
	})
	if err != nil {
		// Host cannot take the chunk now (e.g. VM limit); leave the chunk
		// queued — it will be retried when any sub-job completes.
		return
	}
	job.chunks = job.chunks[1:]
	job.busy[host] = true
	job.SubJobs = append(job.SubJobs, SubJob{
		Index:   idx,
		Host:    host,
		TaskID:  t.ID,
		Started: a.cfg.Cluster.Engine().Now(),
	})
	if job.Span.Recording() {
		price := "unknown"
		if h, err := a.cfg.Cluster.Host(host); err == nil {
			price = fmt.Sprintf("%.6f", h.Market.SpotPrice())
		}
		a.event(job, "placed",
			tracing.String("host", host),
			tracing.String("task", t.ID),
			tracing.String("sub_job", fmt.Sprintf("%d/%d", idx+1, job.total)),
			tracing.String("price", price))
	}
}

// onTaskDone records completion and schedules the next chunk.
func (a *Agent) onTaskDone(job *Job, host string, t *grid.Task) {
	for i := range job.SubJobs {
		if job.SubJobs[i].TaskID == t.ID {
			job.SubJobs[i].Done = t.DoneAt
			break
		}
	}
	job.done++
	job.busy[host] = false
	if job.done >= job.total {
		a.finish(job)
		return
	}
	// Keep this host busy with the next chunk; also retry hosts that were
	// previously full.
	a.startChunk(job, host)
	for _, h := range job.Hosts {
		if len(job.chunks) == 0 {
			break
		}
		a.startChunk(job, h)
	}
}

// onHostFailure is the broker half of fault tolerance: for every managed job
// hit by the crash it re-queues the killed chunks and moves the freed bid
// escrow to a surviving host (the Nimrod-G resubmission duty). Note that no
// bank money moves here — bid budgets live in the job's sub-account until
// charged, so cancelled-bid remainders are simply free to re-bid.
func (a *Agent) onHostFailure(f grid.HostFailure) {
	freed := make(map[string]bank.Amount)
	affected := make(map[string]*Job)
	for _, b := range f.Bids {
		if job, ok := a.byBidder[b.Bidder]; ok && job.State == StateRunning {
			freed[job.ID] += b.Amount
			affected[job.ID] = job
		}
	}
	for _, t := range f.Tasks {
		job, ok := a.byBidder[t.Owner]
		if !ok || job.State != StateRunning {
			continue
		}
		affected[job.ID] = job
		for i := range job.SubJobs {
			s := &job.SubJobs[i]
			if s.TaskID == t.ID && s.Done.IsZero() && !s.Failed {
				s.Failed = true
				break
			}
		}
		// Progress on the dead host is lost; re-queue the whole chunk (the
		// paper's jobs are restartable bag-of-tasks chunks).
		job.chunks = append(job.chunks, t.TotalWork)
		job.busy[f.HostID] = false
		mChunksResubmitted.Inc()
		a.event(job, "preempted",
			tracing.String("host", f.HostID),
			tracing.String("task", t.ID),
			tracing.String("reason", "host failure"))
	}
	ids := make([]string, 0, len(affected))
	for id := range affected {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a.failover(affected[id], f.HostID, freed[id])
	}
}

// failover repairs one job's placement after failedHost died: the host is
// dropped, the freed escrow is re-bid on the cheapest surviving host, and
// re-queued chunks are restarted. A job with no surviving hosts is failed
// with a full refund of its unspent balance.
func (a *Agent) failover(job *Job, failedHost string, freed bank.Amount) {
	for i, h := range job.Hosts {
		if h == failedHost {
			job.Hosts = append(job.Hosts[:i], job.Hosts[i+1:]...)
			break
		}
	}
	delete(job.busy, failedHost)
	if freed > 0 {
		if host := a.cheapestLiveHost(); host != "" {
			bidder := auction.BidderID(job.SubAccount)
			// Boost an existing bid rather than re-placing: PlaceBid REPLACES
			// a live bid and would hand back its remainder, silently shrinking
			// the job's working escrow.
			err := a.cfg.Cluster.Boost(host, bidder, freed)
			if errors.Is(err, auction.ErrUnknownBidder) {
				if _, err = a.cfg.Cluster.PlaceBid(host, bidder, freed, job.Deadline); err == nil {
					job.Hosts = append(job.Hosts, host)
					sort.Strings(job.Hosts)
				}
			}
			if err == nil {
				mEscrowFailedOver.Inc()
				a.event(job, "failed-over",
					tracing.String("from", failedHost),
					tracing.String("to", host),
					tracing.String("amount", freed.String()),
					a.escrowAttr(job))
			}
			// On error (deadline passed, host just died) the money simply
			// stays in the sub-account and is refunded at job end.
		}
	}
	if len(job.Hosts) == 0 {
		a.failJob(job, "all funded hosts failed")
		return
	}
	for _, h := range job.Hosts {
		if len(job.chunks) == 0 {
			break
		}
		a.startChunk(job, h)
	}
}

// cheapestLiveHost returns the up host with the lowest spot price among this
// agent's hosts (deterministic tie-break on id), or "" if every host is down.
func (a *Agent) cheapestLiveHost() string {
	best := ""
	bestPrice := 0.0
	for _, id := range a.hostIDs() {
		h, err := a.cfg.Cluster.Host(id)
		if err != nil || h.Down() {
			continue
		}
		if p := h.Market.SpotPrice(); best == "" || p < bestPrice {
			best, bestPrice = id, p
		}
	}
	return best
}

// failJob terminates a running job as failed: live tasks are killed, queued
// chunks dropped, bids cancelled and the unspent balance refunded. OnFail
// fires last, with FailReason set.
func (a *Agent) failJob(job *Job, reason string) {
	if job.State != StateRunning {
		return
	}
	for _, s := range job.SubJobs {
		if s.Done.IsZero() && !s.Failed {
			// Already-finished tasks error harmlessly.
			_ = a.cfg.Cluster.CancelTask(s.Host, s.TaskID)
		}
	}
	job.chunks = nil
	job.FailReason = reason
	a.event(job, "failed", tracing.String("reason", reason), a.escrowAttr(job))
	// Scope the unwind so the bank's refund entry lands on the timeline.
	release := a.cfg.Tracer.PushScope(job.Span)
	a.unwind(job) // cancels bids, refunds the sub-account, marks StateFailed
	release()
	mJobsFailed.Inc()
	if job.OnFail != nil {
		job.OnFail(job)
	}
}

// unwind cancels any placed bids and returns the job's full sub-account
// balance to the broker — used when a submission is rejected after funding
// (hold-back policy or a bidding failure).
func (a *Agent) unwind(job *Job) {
	bidder := auction.BidderID(job.SubAccount)
	for _, h := range job.Hosts {
		host, err := a.cfg.Cluster.Host(h)
		if err != nil {
			continue
		}
		if _, err := host.Market.CancelBid(bidder); err != nil &&
			!errors.Is(err, auction.ErrUnknownBidder) {
			panic(fmt.Sprintf("agent: unwinding bid on %s: %v", h, err))
		}
	}
	job.Hosts = nil
	job.State = StateFailed
	bal, err := a.cfg.Bank.Balance(job.SubAccount)
	if err == nil && bal > 0 {
		if err := a.cfg.Bank.MoveInternal(a.cfg.Identity, job.SubAccount, a.cfg.Account,
			bal, bank.EntryRefund, "hold-back refund "+job.ID); err != nil {
			panic(fmt.Sprintf("agent: unwinding %s: %v", job.ID, err))
		}
	}
}

// finish cancels outstanding bids and refunds the sub-account's unspent
// balance to the broker account ("the outstanding balance will be refunded
// to the user").
func (a *Agent) finish(job *Job) {
	job.State = StateDone
	// Exact end: the latest sub-job completion (back-dated by the grid).
	job.endedAt = latestDone(job.SubJobs, a.cfg.Cluster.Engine().Now())
	// Scope the teardown so the bank's refund entry lands on the timeline.
	release := a.cfg.Tracer.PushScope(job.Span)
	defer release()
	bidder := auction.BidderID(job.SubAccount)
	for _, h := range job.Hosts {
		host, err := a.cfg.Cluster.Host(h)
		if err != nil {
			continue
		}
		if _, err := host.Market.CancelBid(bidder); err != nil &&
			!errors.Is(err, auction.ErrUnknownBidder) {
			panic(fmt.Sprintf("agent: cancel bid on %s: %v", h, err))
		}
	}
	bal, err := a.cfg.Bank.Balance(job.SubAccount)
	if err == nil && bal > 0 {
		if err := a.cfg.Bank.MoveInternal(a.cfg.Identity, job.SubAccount, a.cfg.Account,
			bal, bank.EntryRefund, "refund "+job.ID); err != nil {
			panic(fmt.Sprintf("agent: refund %s: %v", job.ID, err))
		}
	}
	a.event(job, "completed",
		tracing.String("charged", job.Charged.String()),
		tracing.String("refunded", bal.String()),
		tracing.String("sub_jobs", fmt.Sprintf("%d/%d", job.done, job.total)))
	if job.OnComplete != nil {
		job.OnComplete(job)
	}
}

func latestDone(subs []SubJob, fallback time.Time) time.Time {
	latest := time.Time{}
	for _, s := range subs {
		if s.Done.After(latest) {
			latest = s.Done
		}
	}
	if latest.IsZero() {
		return fallback
	}
	return latest
}

// Cancel aborts a running job: running tasks are killed, queued chunks are
// dropped, outstanding bids cancelled, and the unspent balance refunded to
// the broker account. Completed sub-job records are kept.
func (a *Agent) Cancel(jobID string) error {
	job, ok := a.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, jobID)
	}
	if job.State != StateRunning {
		return ErrJobDone
	}
	// Kill running tasks; sub-jobs whose host already crashed have no task
	// left to cancel.
	for _, s := range job.SubJobs {
		if s.Done.IsZero() && !s.Failed {
			if err := a.cfg.Cluster.CancelTask(s.Host, s.TaskID); err != nil {
				// Already finished in this tick; harmless.
				continue
			}
		}
	}
	job.chunks = nil
	job.FailReason = "cancelled"
	a.event(job, "cancelled", a.escrowAttr(job))
	release := a.cfg.Tracer.PushScope(job.Span)
	a.unwind(job) // cancels bids, refunds, marks StateFailed
	release()
	mJobsFailed.Inc()
	return nil
}

// Boost verifies an additional transfer token and spreads its amount over
// the job's funded hosts proportionally to their current bids — the paper's
// "jobs that have been submitted may be boosted with additional funding to
// complete sooner".
func (a *Agent) Boost(jobID string, tok token.Token) error {
	job, ok := a.jobs[jobID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, jobID)
	}
	if job.State != StateRunning {
		return ErrJobDone
	}
	now := a.cfg.Cluster.Engine().Now()
	amount, err := a.cfg.Verifier.Verify(tok, now)
	if err != nil {
		mTokenRejections.Inc()
		return fmt.Errorf("agent: boost token rejected: %w", err)
	}
	mTokenRedemptions.Inc()
	if err := a.cfg.Bank.MoveInternal(a.cfg.Identity, a.cfg.Account, job.SubAccount,
		amount, bank.EntryTransfer, "boost "+jobID); err != nil {
		return err
	}
	job.Budget += amount
	a.event(job, "boosted",
		tracing.String("amount", amount.String()),
		tracing.String("budget", job.Budget.String()),
		a.escrowAttr(job))
	bidder := auction.BidderID(job.SubAccount)
	// Proportional to remaining bid budgets.
	remaining := make(map[string]bank.Amount, len(job.Hosts))
	var total bank.Amount
	for _, h := range job.Hosts {
		host, err := a.cfg.Cluster.Host(h)
		if err != nil || host.Down() {
			continue
		}
		r, err := host.Market.Remaining(bidder)
		if err != nil {
			continue
		}
		remaining[h] = r
		total += r
	}
	if total == 0 {
		// All bids exhausted: split evenly.
		per := amount / bank.Amount(len(job.Hosts))
		for _, h := range job.Hosts {
			if per > 0 {
				_ = a.cfg.Cluster.Boost(h, bidder, per)
			}
		}
		return nil
	}
	for h, r := range remaining {
		share := bank.Amount(int64(float64(amount) * float64(r) / float64(total)))
		if share > 0 {
			if err := a.cfg.Cluster.Boost(h, bidder, share); err != nil {
				return err
			}
		}
	}
	return nil
}

// hostIDs returns the hosts this agent schedules onto.
func (a *Agent) hostIDs() []string {
	if len(a.cfg.Hosts) > 0 {
		return a.cfg.Hosts
	}
	return a.cfg.Cluster.HostIDs()
}

// HostIDs returns the (possibly partitioned) host set this agent uses.
func (a *Agent) HostIDs() []string {
	out := make([]string, len(a.hostIDs()))
	copy(out, a.hostIDs())
	return out
}

// MeanSpotPrice returns the average spot price over this agent's hosts —
// the matchmaking signal a meta-scheduler uses to pick a replica.
func (a *Agent) MeanSpotPrice() float64 {
	ids := a.hostIDs()
	if len(ids) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, id := range ids {
		h, err := a.cfg.Cluster.Host(id)
		if err != nil || h.Down() {
			continue
		}
		sum += h.Market.SpotPrice()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PriceHistory returns the partition's mean spot-price history (oldest
// first), averaged across this agent's hosts per auction tick. max <= 0
// returns everything recorded; samples are spaced Cluster().Interval() apart.
// This is the history a meta-scheduler strategy forecasts from.
func (a *Agent) PriceHistory(max int) []float64 {
	return a.feed.MeanHistory(a.hostIDs(), max)
}

// HostHistory returns one host's recorded spot-price history, oldest first.
func (a *Agent) HostHistory(hostID string) []float64 {
	return a.feed.History(hostID, 0)
}

// Feed exposes the agent's price-feed hub (e.g. for daemon diagnostics).
func (a *Agent) Feed() *pricefeed.Hub { return a.feed }

// ForecastHandle returns a partition-level streaming forecast handle — the
// combined forecast over this agent's hosts, read from predictor state that
// the feed updates on every clear — or nil when Config.Streaming is unset.
// A meta-scheduler puts the handle on its strategy.Candidate so prediction
// strategies skip the history-copy-and-refit path entirely.
func (a *Agent) ForecastHandle() strategy.ForecastFunc {
	if a.stream == nil {
		return nil
	}
	return func(horizon time.Duration) (predict.Forecast, error) {
		return a.stream.ForecastMean(a.hostIDs(), horizon)
	}
}

// Streaming returns the name of the attached streaming predictor family, or
// "" when the agent runs the legacy batch prediction path.
func (a *Agent) Streaming() string {
	if a.stream == nil {
		return ""
	}
	return a.stream.Name()
}

// Cluster returns the grid cluster the agent schedules onto.
func (a *Agent) Cluster() *grid.Cluster { return a.cfg.Cluster }

// Engine returns the simulation engine (via the cluster).
func (a *Agent) Engine() *sim.Engine { return a.cfg.Cluster.Engine() }

// Job returns a submitted job by id.
func (a *Agent) Job(id string) (*Job, error) {
	j, ok := a.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs returns all jobs sorted by id.
func (a *Agent) Jobs() []*Job {
	out := make([]*Job, 0, len(a.jobs))
	for _, j := range a.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
